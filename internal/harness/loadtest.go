package harness

import (
	"context"
	"fmt"
	"math"
	"time"

	"casc/internal/shard"
	"casc/internal/workload"
)

// ExpShards is the sharded-platform load test: the same skewed blob
// workload (workload.GenerateBlobs — contention confined to a hot band of
// the unit square) driven through shard.Cluster at K ∈ {1, 2, 4, 8},
// measuring end-to-end batch-round latency. K = 1 is the monolithic
// baseline; the committed BENCH_shards.json documents the speedup (and, by
// the equal per-K scores, the bitwise round equivalence) on one core: the
// win is algorithmic — per-shard solves dodge the global best-response
// round coupling and stage-one rescans — not parallelism.
const ExpShards = "shards"

// ShardCounts is the load-test sweep.
var ShardCounts = []int{1, 2, 4, 8}

// runShards drives R batch rounds per shard count over a skewed
// 100k-worker blob workload (scaled by opt.Scale). Registration, task
// posting and ratings are untimed; each RunBatch is one latency sample.
func runShards(ctx context.Context, opt Options) (*Series, error) {
	series := &Series{Experiment: ExpShards, Figure: "Load test", XLabel: "shards K"}
	params := workload.BlobParams{NumWorkers: opt.scaled(100000), Seed: opt.Seed}.WithBlobDefaults()
	var baseScore float64
	for i, k := range ShardCounts {
		pt, score, err := runShardPoint(ctx, opt, params, k)
		if err != nil {
			return series, err
		}
		if i == 0 {
			baseScore = score
		} else if math.Float64bits(score) != math.Float64bits(baseScore) {
			return series, fmt.Errorf("harness: K=%d total score %v diverges from K=1 score %v — shard equivalence broken",
				k, score, baseScore)
		}
		series.Points = append(series.Points, pt)
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "point K=%d done\n", k)
		}
	}
	return series, nil
}

func runShardPoint(ctx context.Context, opt Options, params workload.BlobParams, k int) (Point, float64, error) {
	pt := Point{Label: fmt.Sprintf("%d", k)}
	c, err := shard.NewCluster(shard.Config{
		K: k, B: params.B, Metrics: opt.Metrics, SolveBudget: opt.Budget,
	})
	if err != nil {
		return pt, 0, err
	}
	w := workload.GenerateBlobs(params)
	for _, wk := range w.Workers {
		if _, err := c.RegisterWorker(wk.Loc, wk.Speed, wk.Radius); err != nil {
			return pt, 0, err
		}
	}
	res := SolverResult{Name: "GT"}
	var totalScore float64
	for round := 0; round < opt.Rounds; round++ {
		if ctx.Err() != nil {
			return pt, 0, ctx.Err()
		}
		// Repost the round's tasks; the short relative deadline expires
		// last round's leftovers, keeping the open set bounded.
		for _, t := range w.Tasks {
			if _, err := c.PostTask(t.Loc, t.Capacity, c.Now()+t.Deadline); err != nil {
				return pt, 0, err
			}
		}
		start := time.Now()
		r, err := c.RunBatch(ctx, "GT")
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return pt, 0, fmt.Errorf("harness: K=%d round %d: %w", k, round, err)
		}
		res.Score += r.Score
		totalScore += r.Score
		pt.Upper += r.Upper
		res.BatchSeconds += elapsed / float64(opt.Rounds)
		res.LatencySeconds = append(res.LatencySeconds, elapsed)
		// Rate every dispatched task so later rounds solve against a
		// populated cooperation history (rating values are exactly
		// representable, keeping cross-shard aggregation order-free).
		rated := map[int]bool{}
		for _, p := range r.Pairs {
			if rated[p.Task] {
				continue
			}
			rated[p.Task] = true
			score := 0.5
			if p.Task%2 == 1 {
				score = 1.0
			}
			if err := c.RateTask(p.Task, score); err != nil {
				return pt, 0, err
			}
		}
	}
	pt.Results = []SolverResult{res}
	return pt, totalScore, nil
}

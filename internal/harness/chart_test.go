package harness

import (
	"bytes"
	"strings"
	"testing"
)

func chartSeries() *Series {
	return &Series{
		Experiment: "capacity",
		Figure:     "Figure 2",
		XLabel:     "capacity a_j",
		Points: []Point{
			{Label: "3", Upper: 100, Results: []SolverResult{
				{Name: "TPG", Score: 70}, {Name: "GT", Score: 75}, {Name: "RAND", Score: 40},
			}},
			{Label: "4", Upper: 110, Results: []SolverResult{
				{Name: "TPG", Score: 80}, {Name: "GT", Score: 85}, {Name: "RAND", Score: 45},
			}},
		},
	}
}

func TestChartRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := chartSeries().Chart(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 2", "legend:", "G=GT", "T=TPG", "^=UPPER"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Marks must appear in the grid.
	for _, mark := range []string{"G", "T", "R", "^"} {
		if strings.Count(out, mark) < 1 {
			t.Errorf("mark %q absent:\n%s", mark, out)
		}
	}
	// UPPER row (value 110) should be the top axis label.
	if !strings.Contains(out, "110 |") {
		t.Errorf("max axis label missing:\n%s", out)
	}
}

func TestChartOrdersVertically(t *testing.T) {
	var buf bytes.Buffer
	if err := chartSeries().Chart(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	rowOf := func(mark byte, col int) int {
		for i, line := range lines {
			bar := strings.IndexByte(line, '|')
			if bar < 0 {
				continue
			}
			body := line[bar+1:]
			for j := 0; j < len(body); j++ {
				if body[j] == mark {
					// Column index by label bucket.
					if j < len(body)/2 && col == 0 || j >= len(body)/2 && col == 1 {
						return i
					}
				}
			}
		}
		return -1
	}
	// In column 0: UPPER (100) above GT (75) above RAND (40): smaller row
	// index means higher on screen.
	up, gt, rnd := rowOf('^', 0), rowOf('G', 0), rowOf('R', 0)
	if up < 0 || gt < 0 || rnd < 0 {
		t.Fatalf("marks not found (rows %d %d %d)", up, gt, rnd)
	}
	if !(up <= gt && gt < rnd) {
		t.Errorf("vertical order wrong: upper=%d gt=%d rand=%d", up, gt, rnd)
	}
}

func TestChartEmptySeries(t *testing.T) {
	var buf bytes.Buffer
	s := &Series{Figure: "Figure X"}
	if err := s.Chart(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty series should say so")
	}
}

func TestChartZeroScores(t *testing.T) {
	s := &Series{
		Figure: "Figure Z",
		Points: []Point{{Label: "1", Results: []SolverResult{{Name: "TPG", Score: 0}}}},
	}
	var buf bytes.Buffer
	if err := s.Chart(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "T") {
		t.Error("zero-score mark missing")
	}
}

package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// This file emits the machine-readable bench trajectory: one
// BENCH_<experiment>.json per experiment, so every bench run adds a perf
// datapoint future PRs can diff against.

// BenchEntry is one (sweep point, solver) datapoint.
type BenchEntry struct {
	Experiment string  `json:"experiment"`
	Figure     string  `json:"figure,omitempty"`
	X          string  `json:"x"`
	Solver     string  `json:"solver"`
	N          int     `json:"n"` // solve samples behind the latency stats
	Score      float64 `json:"score"`
	Upper      float64 `json:"upper,omitempty"`
	MeanMS     float64 `json:"mean_ms"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	// AllocsPerOp is the steady-state heap allocation count per solve
	// (minimum Mallocs delta over the rounds). Present only when the run
	// recorded allocations (-benchmem or the paperscale experiment); a nil
	// pointer distinguishes "not measured" from a genuine zero.
	AllocsPerOp *uint64 `json:"allocs_per_op,omitempty"`
	// Regret is the mean per-round counterfactual regret recorded by the
	// scenario experiment. Deterministic like Score, so DiffAgainst gates
	// it bitwise wherever the baseline carries it; nil means the run did
	// no decision tracing.
	Regret *float64 `json:"regret,omitempty"`
}

// BenchFile is the top-level BENCH_<experiment>.json document.
type BenchFile struct {
	Experiment string  `json:"experiment"`
	Figure     string  `json:"figure,omitempty"`
	XLabel     string  `json:"x_label"`
	Rounds     int     `json:"rounds"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
	// Parallel and Workers record whether the run solved decomposed
	// components concurrently, so BENCH files from decomposed and
	// monolithic runs are distinguishable in the perf trajectory.
	Parallel bool `json:"parallel,omitempty"`
	Workers  int  `json:"workers,omitempty"`
	// BudgetMS records the per-solve ladder budget in milliseconds (0:
	// unbudgeted), so score-vs-budget sweeps are distinguishable in the
	// perf trajectory.
	BudgetMS float64 `json:"budget_ms,omitempty"`
	// Incremental records an engine-only run (Options.Incremental): its
	// files lack the from-scratch baseline entries and must not be diffed
	// against dual-mode baselines.
	Incremental bool `json:"incremental,omitempty"`
	// Arena and Benchmem record the scratch-reuse and allocation-tracking
	// modes of the run, so arena-warm baselines are distinguishable from
	// cold-scratch ones in the perf trajectory. Benchmem is set whenever
	// any entry carries allocs_per_op, however it was recorded.
	Arena    bool         `json:"arena,omitempty"`
	Benchmem bool         `json:"benchmem,omitempty"`
	Entries  []BenchEntry `json:"entries"`
}

// quantile returns the q-quantile of the samples by linear interpolation
// between order statistics; 0 with no samples.
func quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo] + (s[lo+1]-s[lo])*frac
}

func mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// BenchEntries flattens the series into per-(point, solver) datapoints.
func (s *Series) BenchEntries() []BenchEntry {
	var out []BenchEntry
	for _, pt := range s.Points {
		for _, r := range pt.Results {
			const toMS = 1e3
			e := BenchEntry{
				Experiment: s.Experiment,
				Figure:     s.Figure,
				X:          pt.Label,
				Solver:     r.Name,
				N:          len(r.LatencySeconds),
				Score:      r.Score,
				Upper:      pt.Upper,
				MeanMS:     mean(r.LatencySeconds) * toMS,
				P50MS:      quantile(r.LatencySeconds, 0.50) * toMS,
				P95MS:      quantile(r.LatencySeconds, 0.95) * toMS,
			}
			if n, ok := r.AllocsPerOp(); ok {
				e.AllocsPerOp = &n
			}
			if r.Regret != nil {
				v := *r.Regret
				e.Regret = &v
			}
			out = append(out, e)
		}
	}
	return out
}

// BenchFile assembles the JSON document for this series.
func (s *Series) BenchFile(opt Options) *BenchFile {
	opt = opt.withDefaults()
	b := &BenchFile{
		Experiment:  s.Experiment,
		Figure:      s.Figure,
		XLabel:      s.XLabel,
		Rounds:      opt.Rounds,
		Seed:        opt.Seed,
		Scale:       opt.Scale,
		Parallel:    opt.Parallel,
		Workers:     opt.Workers,
		BudgetMS:    float64(opt.Budget) / float64(time.Millisecond),
		Incremental: opt.Incremental,
		Arena:       opt.Arena,
		Benchmem:    opt.Benchmem,
		Entries:     s.BenchEntries(),
	}
	// Some experiments (paperscale) record allocations regardless of the
	// flag; mark the file so readers and DiffAgainst treat it as measured.
	for _, e := range b.Entries {
		if e.AllocsPerOp != nil {
			b.Benchmem = true
			break
		}
	}
	return b
}

// LoadBench reads the committed BENCH_<experiment>.json baseline from dir.
func LoadBench(dir, experiment string) (*BenchFile, error) {
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", experiment))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var b BenchFile
	if err := json.NewDecoder(f).Decode(&b); err != nil {
		return nil, fmt.Errorf("harness: %s: %w", path, err)
	}
	return &b, nil
}

// Latency regression tolerances for DiffAgainst. Scores are deterministic
// for a fixed (seed, scale, rounds) configuration and must match exactly;
// latencies depend on the machine, so a fresh run only fails when it is
// implausibly slower than the committed baseline.
const (
	// DiffLatencyFactor is the multiple of the baseline latency a fresh
	// run may reach before the diff fails.
	DiffLatencyFactor = 5.0
	// DiffLatencyFloorMS absorbs noise on sub-millisecond baselines where
	// a pure factor would trip on scheduler jitter.
	DiffLatencyFloorMS = 50.0
)

// DiffAllocFloor absorbs runtime-internal allocation jitter (GC pacing
// puts a handful of runtime mallocs inside some solve windows, varying run
// to run) on near-zero baselines, the alloc analogue of
// DiffLatencyFloorMS. It is far below the thousands of allocs/op a lost
// arena path would reintroduce, so the gate still catches real
// regressions.
const DiffAllocFloor = 16

// allocLimit is the highest steady-state allocs/op a fresh run may report
// against a baseline of `want` before the diff fails: 12.5% proportional
// headroom plus the absolute jitter floor.
func allocLimit(want uint64) uint64 {
	return want + want/8 + DiffAllocFloor
}

// DiffAgainst compares a fresh bench run to a committed baseline: the
// configurations must agree, every (sweep point, solver) datapoint must be
// present, scores (and upper bounds) must match bitwise, mean/p95
// latencies must stay under DiffLatencyFactor× the baseline (plus
// DiffLatencyFloorMS), and wherever the baseline recorded allocs/op the
// fresh run must have measured them and stay within allocLimit. Arena mode
// is deliberately absent from the config check: arenas are
// output-preserving, so a mismatch surfaces as an alloc or latency
// regression, not a config error. It returns an error describing the first
// few mismatches, nil when the run is clean.
func (b *BenchFile) DiffAgainst(base *BenchFile) error {
	var errs []string
	fail := func(format string, args ...any) {
		if len(errs) < 10 {
			errs = append(errs, fmt.Sprintf(format, args...))
		}
	}
	if b.Experiment != base.Experiment {
		fail("experiment %q != baseline %q", b.Experiment, base.Experiment)
	}
	if b.Rounds != base.Rounds || b.Seed != base.Seed || b.Scale != base.Scale ||
		b.Parallel != base.Parallel || b.BudgetMS != base.BudgetMS ||
		b.Incremental != base.Incremental {
		fail("run config (rounds=%d seed=%d scale=%v parallel=%v budget=%vms) != baseline (rounds=%d seed=%d scale=%v parallel=%v budget=%vms); regenerate the baseline or fix the flags",
			b.Rounds, b.Seed, b.Scale, b.Parallel, b.BudgetMS,
			base.Rounds, base.Seed, base.Scale, base.Parallel, base.BudgetMS)
	}
	type key struct{ x, solver string }
	fresh := make(map[key]BenchEntry, len(b.Entries))
	for _, e := range b.Entries {
		fresh[key{e.X, e.Solver}] = e
	}
	for _, want := range base.Entries {
		got, ok := fresh[key{want.X, want.Solver}]
		if !ok {
			fail("datapoint (%s=%s, %s) missing from fresh run", b.XLabel, want.X, want.Solver)
			continue
		}
		if got.Score != want.Score {
			fail("(%s=%s, %s) score %v != baseline %v", b.XLabel, want.X, want.Solver, got.Score, want.Score)
		}
		if got.Upper != want.Upper {
			fail("(%s=%s, %s) upper %v != baseline %v", b.XLabel, want.X, want.Solver, got.Upper, want.Upper)
		}
		if lim := want.P95MS*DiffLatencyFactor + DiffLatencyFloorMS; got.P95MS > lim {
			fail("(%s=%s, %s) p95 %.1fms exceeds %.1fms (baseline %.1fms × %v + %vms)",
				b.XLabel, want.X, want.Solver, got.P95MS, lim, want.P95MS, DiffLatencyFactor, DiffLatencyFloorMS)
		}
		if lim := want.MeanMS*DiffLatencyFactor + DiffLatencyFloorMS; got.MeanMS > lim {
			fail("(%s=%s, %s) mean %.1fms exceeds %.1fms (baseline %.1fms × %v + %vms)",
				b.XLabel, want.X, want.Solver, got.MeanMS, lim, want.MeanMS, DiffLatencyFactor, DiffLatencyFloorMS)
		}
		if want.Regret != nil {
			switch {
			case got.Regret == nil:
				fail("(%s=%s, %s) baseline gates regret (%v) but fresh run did not measure it",
					b.XLabel, want.X, want.Solver, *want.Regret)
			case *got.Regret != *want.Regret:
				fail("(%s=%s, %s) regret %v != baseline %v", b.XLabel, want.X, want.Solver, *got.Regret, *want.Regret)
			}
		}
		if want.AllocsPerOp != nil {
			switch {
			case got.AllocsPerOp == nil:
				fail("(%s=%s, %s) baseline gates allocs/op (%d) but fresh run did not measure them; rerun with -benchmem",
					b.XLabel, want.X, want.Solver, *want.AllocsPerOp)
			case *got.AllocsPerOp > allocLimit(*want.AllocsPerOp):
				fail("(%s=%s, %s) allocs/op %d exceeds %d (baseline %d)",
					b.XLabel, want.X, want.Solver, *got.AllocsPerOp, allocLimit(*want.AllocsPerOp), *want.AllocsPerOp)
			}
		}
	}
	if len(b.Entries) > len(base.Entries) {
		fail("fresh run has %d datapoints, baseline %d — commit a regenerated baseline", len(b.Entries), len(base.Entries))
	}
	if errs != nil {
		return fmt.Errorf("bench diff vs baseline failed:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

// WriteBench writes the document as indented JSON.
func (b *BenchFile) WriteBench(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(b)
}

// SaveBench writes BENCH_<experiment>.json into dir and returns the path.
func (b *BenchFile) SaveBench(dir string) (string, error) {
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", b.Experiment))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := b.WriteBench(f); err != nil {
		return "", err
	}
	return path, f.Close()
}

// Package harness regenerates every figure of the paper's experimental
// study (§VI). Each Experiment sweeps one Table II parameter, runs R rounds
// of batch assignment per sweep value with every approach (TPG, GT, GT+LUB,
// GT+TSI, GT+ALL, MFLOW, RAND) plus the UPPER estimate, and reports the two
// measures the paper plots: total cooperation score and average batch
// running time.
package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"casc/internal/assign"
	"casc/internal/checkin"
	"casc/internal/meetup"
	"casc/internal/metrics"
	"casc/internal/model"
	"casc/internal/resilience"
	"casc/internal/stats"
	"casc/internal/workload"
)

// SolverResult is one approach's aggregate over the R rounds of one sweep
// point.
type SolverResult struct {
	Name string
	// Score is the total cooperation quality revenue summed over rounds.
	Score float64
	// BatchSeconds is the mean per-batch running time.
	BatchSeconds float64
	// LatencySeconds holds every per-round solve time, so the bench JSON
	// can report exact p50/p95 rather than bucket estimates.
	LatencySeconds []float64
	// Allocs holds each round's heap allocation count during the solve
	// (runtime Mallocs delta). Recorded only under Options.Benchmem.
	Allocs []uint64
	// Regret is the mean per-round counterfactual regret — best alternate
	// solver's score minus the chosen solver's, floored at zero — when the
	// experiment performed decision tracing (ExpScenario). Nil otherwise,
	// distinguishing "not measured" from a genuine zero.
	Regret *float64
}

// AllocsPerOp reduces the recorded per-round allocation counts to the
// steady-state figure: the minimum over rounds, because the first solve on
// a fresh arena pays its growth and later rounds show the reusable cost.
// ok is false when Benchmem was off and nothing was recorded.
func (r SolverResult) AllocsPerOp() (n uint64, ok bool) {
	if len(r.Allocs) == 0 {
		return 0, false
	}
	n = r.Allocs[0]
	for _, v := range r.Allocs[1:] {
		if v < n {
			n = v
		}
	}
	return n, true
}

// Point is one x-axis value of a figure.
type Point struct {
	Label   string
	Results []SolverResult
	// Upper is the summed UPPER estimate (Equation 9) over the rounds.
	Upper float64
}

// Series is one regenerated figure.
type Series struct {
	Experiment string
	Figure     string
	XLabel     string
	Points     []Point
}

// Options configure an experiment run.
type Options struct {
	// Rounds is R (Table II: 10).
	Rounds int
	// Seed drives all randomness.
	Seed int64
	// Solvers restricts the approaches (nil: all of assign.AllNames).
	Solvers []string
	// Scale multiplies m and n to shrink runs for tests/benches (default 1).
	Scale float64
	// Progress, when non-nil, receives one line per sweep point.
	Progress io.Writer
	// Metrics, when non-nil, receives solver instrumentation for every
	// solve the experiment performs (latency/score histograms plus the
	// GT/TPG internals), so a bench run doubles as a metrics datapoint.
	Metrics *metrics.Registry
	// Parallel decomposes every batch into the connected components of its
	// validity graph and solves them concurrently (assign.NewParallel), so
	// experiments can be rerun decomposed-vs-monolithic.
	Parallel bool
	// Workers bounds the component pool under Parallel (0: GOMAXPROCS).
	Workers int
	// Budget, when positive, bounds each solve's wall time by wrapping
	// every solver in a resilience.Ladder (solver → TPG → RAND), so the
	// experiment measures what each approach delivers *within* the budget
	// rather than letting slow solvers run unboundedly.
	Budget time.Duration
	// Incremental makes the round-based experiments (ExpIncremental) run
	// only the persistent-engine mode, skipping the from-scratch baseline
	// and its bitwise comparison — an engine-only timing run.
	Incremental bool
	// Arena gives every arena-capable solver (assign.ArenaHolder) one
	// persistent scratch arena per solver name, reused across the rounds of
	// each sweep point, so the experiment measures the steady-state
	// allocation-free solve path instead of cold throwaway scratch.
	// Output-preserving: arenas never change scores.
	Arena bool
	// Benchmem records each solve's heap allocation count (Mallocs delta
	// around the solve, read outside the timed window) into
	// SolverResult.Allocs, so bench JSON can carry and gate allocs/op.
	Benchmem bool
}

// parallelize wraps s in the decomposing decorator when Parallel is set;
// otherwise it returns s untouched.
func (o Options) parallelize(s assign.Solver) assign.Solver {
	if !o.Parallel {
		return s
	}
	return assign.NewParallel(s, assign.ParallelOptions{
		Workers: o.Workers,
		Seed:    o.Seed,
		Metrics: o.Metrics,
	})
}

// decorate applies the experiment's solver decorators in wiring order:
// decomposition under Parallel, then the anytime ladder under Budget.
func (o Options) decorate(s assign.Solver) assign.Solver {
	s = o.parallelize(s)
	if o.Budget <= 0 {
		return s
	}
	l, err := resilience.NewLadder(
		resilience.Config{Budget: o.Budget, Metrics: o.Metrics},
		resilience.Chain(s, o.Seed)...)
	if err != nil {
		panic(err) // unreachable: Chain always yields ≥ 1 rung
	}
	return l
}

func (o Options) withDefaults() Options {
	if o.Rounds <= 0 {
		o.Rounds = workload.DefaultRounds
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Solvers == nil {
		o.Solvers = assign.AllNames()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) scaled(v int) int {
	s := int(float64(v) * o.Scale)
	if s < 1 {
		s = 1
	}
	return s
}

// Names of the experiments, in the paper's figure order.
const (
	ExpCapacity = "capacity" // Fig. 2
	ExpSpeed    = "speed"    // Fig. 3
	ExpRadius   = "radius"   // Fig. 4
	ExpDeadline = "deadline" // Fig. 5
	ExpEpsilon  = "epsilon"  // Fig. 6
	ExpWorkers  = "workers"  // Fig. 7
	ExpTasks    = "tasks"    // Fig. 8
)

// ExpDistribution is an extra (non-figure) experiment comparing the UNIF
// and SKEW location distributions of §VI-C at Table II defaults.
const ExpDistribution = "distribution"

// ExpOptGap is an extra experiment measuring the true optimality gap of the
// heuristics: tiny instances solved to proven optimality by branch and
// bound, swept over the worker count. The paper cannot report this (its
// instances are too large for exact solving); at toy sizes it calibrates
// how much the 50-97%-of-UPPER figures understate solution quality, since
// UPPER itself is loose.
const ExpOptGap = "optgap"

// ExpAnytime is an extra experiment tracing GT's anytime profile (§V-D):
// the total cooperation score after each best-response round, averaged
// over R default instances, starting from the random initialization so
// the climb is visible. The flattening curve is the empirical basis of
// the TSI optimization.
const ExpAnytime = "anytime"

// ExpSources is an extra robustness experiment: the same Table II defaults
// run over three data sources — synthetic UNIF, the Meetup-style event
// network, and the check-in trace — to show the solver ordering is a
// property of the problem, not of one generator.
const ExpSources = "sources"

// ExpPaperScale is an extra experiment pinning the paper's default grid
// (Table II: m = 1000, n = 500 at Scale 1) as a latency and allocation
// baseline. The same instances are solved twice — point "alloc" with
// throwaway per-solve scratch and point "arena" with persistent per-solver
// arenas — so one committed bench file records both the bitwise-equal
// scores (arenas must not change output) and the steady-state latency win.
const ExpPaperScale = "paperscale"

// AllExperiments lists every experiment name in figure order.
func AllExperiments() []string {
	return []string{ExpCapacity, ExpSpeed, ExpRadius, ExpDeadline, ExpEpsilon, ExpWorkers, ExpTasks}
}

// ExtraExperiments lists experiments beyond the paper's figures.
func ExtraExperiments() []string {
	return []string{ExpDistribution, ExpOptGap, ExpAnytime, ExpSources, ExpPaperScale, ExpIncremental, ExpScenario}
}

// Run executes the named experiment.
func Run(ctx context.Context, name string, opt Options) (*Series, error) {
	opt = opt.withDefaults()
	switch name {
	case ExpCapacity, ExpSpeed, ExpRadius, ExpDeadline:
		return runMeetup(ctx, name, opt)
	case ExpEpsilon:
		return runEpsilon(ctx, opt)
	case ExpWorkers, ExpTasks:
		return runSynthetic(ctx, name, opt)
	case ExpDistribution:
		return runDistribution(ctx, opt)
	case ExpOptGap:
		return runOptGap(ctx, opt)
	case ExpAnytime:
		return runAnytime(ctx, opt)
	case ExpSources:
		return runSources(ctx, opt)
	case ExpPaperScale:
		return runPaperScale(ctx, opt)
	case ExpShards:
		return runShards(ctx, opt)
	case ExpIncremental:
		return runIncremental(ctx, opt)
	case ExpScenario:
		return runScenario(ctx, opt)
	default:
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", name, AllExperiments())
	}
}

// instanceMaker yields the round-th instance of one sweep point.
type instanceMaker func(round int) (*model.Instance, error)

// sweepPoint runs all solvers for R rounds of instances.
func sweepPoint(ctx context.Context, label string, opt Options, mk instanceMaker) (Point, error) {
	pt := Point{Label: label}
	agg := make(map[string]*SolverResult)
	for _, name := range opt.Solvers {
		agg[name] = &SolverResult{Name: name}
	}
	// Under Options.Arena each solver name keeps one scratch arena for the
	// whole sweep point: solvers are rebuilt every round (seed hygiene), but
	// the arena persists so rounds ≥ 2 run the allocation-free path.
	var arenas map[string]*assign.Arena
	if opt.Arena {
		arenas = make(map[string]*assign.Arena, len(opt.Solvers))
	}
	for round := 0; round < opt.Rounds; round++ {
		if ctx.Err() != nil {
			return pt, ctx.Err()
		}
		in, err := mk(round)
		if err != nil {
			return pt, err
		}
		pt.Upper += assign.Upper(in)
		for _, name := range opt.Solvers {
			solver, err := assign.ByName(name, opt.Seed+int64(round))
			if err != nil {
				return pt, err
			}
			if opt.Arena {
				// Attach before decoration so the arena lands on the raw
				// solver; Parallel forks manage their own pool arenas.
				if h, ok := solver.(assign.ArenaHolder); ok {
					ar := arenas[name]
					if ar == nil {
						ar = assign.NewArena()
						arenas[name] = ar
					}
					h.SetArena(ar)
				}
			}
			solver = assign.Instrument(opt.decorate(solver), opt.Metrics)
			var m0 runtime.MemStats
			if opt.Benchmem {
				runtime.ReadMemStats(&m0)
			}
			start := time.Now()
			a, err := solver.Solve(ctx, in)
			elapsed := time.Since(start).Seconds()
			if err != nil {
				return pt, fmt.Errorf("harness: %s round %d: %w", name, round, err)
			}
			r := agg[name]
			if opt.Benchmem {
				var m1 runtime.MemStats
				runtime.ReadMemStats(&m1)
				r.Allocs = append(r.Allocs, m1.Mallocs-m0.Mallocs)
			}
			r.Score += a.TotalScore(in)
			r.BatchSeconds += elapsed / float64(opt.Rounds)
			r.LatencySeconds = append(r.LatencySeconds, elapsed)
		}
	}
	for _, name := range opt.Solvers {
		pt.Results = append(pt.Results, *agg[name])
	}
	if opt.Progress != nil {
		fmt.Fprintf(opt.Progress, "point %s done\n", label)
	}
	return pt, nil
}

// runMeetup handles the "real data" experiments (Figs. 2-5): sweep one
// parameter of the per-round sample drawn from the synthetic Meetup city.
func runMeetup(ctx context.Context, name string, opt Options) (*Series, error) {
	cityCfg := meetup.Default()
	cityCfg.Seed = opt.Seed
	// Shrink the city along with the sample when scaling down.
	if opt.Scale < 1 {
		cityCfg.NumUsers = opt.scaled(cityCfg.NumUsers)
		cityCfg.NumEvents = opt.scaled(cityCfg.NumEvents)
		cityCfg.NumGroups = opt.scaled(cityCfg.NumGroups)
	}
	city := meetup.Generate(cityCfg)

	base := meetup.DefaultSample()
	base.NumWorkers = opt.scaled(base.NumWorkers)
	base.NumTasks = opt.scaled(base.NumTasks)

	var (
		series  *Series
		labels  []string
		configs []meetup.SampleParams
	)
	switch name {
	case ExpCapacity:
		series = &Series{Experiment: name, Figure: "Figure 2", XLabel: "capacity a_j"}
		for _, c := range workload.CapacityValues {
			p := base
			p.Capacity = c
			labels = append(labels, fmt.Sprintf("%d", c))
			configs = append(configs, p)
		}
	case ExpSpeed:
		series = &Series{Experiment: name, Figure: "Figure 3", XLabel: "[v-,v+] (%)"}
		for _, v := range workload.SpeedRanges {
			p := base
			p.SpeedRange = v
			labels = append(labels, rangeLabel(v))
			configs = append(configs, p)
		}
	case ExpRadius:
		series = &Series{Experiment: name, Figure: "Figure 4", XLabel: "[r-,r+] (%)"}
		for _, v := range workload.RadiusRanges {
			p := base
			p.RadiusRange = v
			labels = append(labels, rangeLabel(v))
			configs = append(configs, p)
		}
	case ExpDeadline:
		series = &Series{Experiment: name, Figure: "Figure 5", XLabel: "remaining time τ_j"}
		for _, v := range workload.RemainingTimes {
			p := base
			p.RemainingTime = v
			labels = append(labels, fmt.Sprintf("%g", v))
			configs = append(configs, p)
		}
	}
	for i, cfg := range configs {
		cfg := cfg
		rng := stats.NewRNG(opt.Seed + int64(i)*101)
		pt, err := sweepPoint(ctx, labels[i], opt, func(round int) (*model.Instance, error) {
			return city.Sample(rng, cfg, float64(round))
		})
		if err != nil {
			return series, err
		}
		series.Points = append(series.Points, pt)
	}
	return series, nil
}

func rangeLabel(v [2]float64) string {
	return fmt.Sprintf("[%g,%g]", v[0]*100, v[1]*100)
}

// runSynthetic handles Figs. 7 and 8: sweep m or n over UNIF synthetic data.
func runSynthetic(ctx context.Context, name string, opt Options) (*Series, error) {
	base := workload.Default()
	base.NumWorkers = opt.scaled(base.NumWorkers)
	base.NumTasks = opt.scaled(base.NumTasks)

	var series *Series
	var params []workload.Params
	var labels []string
	switch name {
	case ExpWorkers:
		series = &Series{Experiment: name, Figure: "Figure 7", XLabel: "workers m"}
		for _, m := range workload.WorkerCounts {
			p := base
			p.NumWorkers = opt.scaled(m)
			labels = append(labels, countLabel(m))
			params = append(params, p)
		}
	case ExpTasks:
		series = &Series{Experiment: name, Figure: "Figure 8", XLabel: "tasks n"}
		for _, n := range workload.TaskCounts {
			p := base
			p.NumTasks = opt.scaled(n)
			labels = append(labels, countLabel(n))
			params = append(params, p)
		}
	}
	for i, p := range params {
		p := p
		pt, err := sweepPoint(ctx, labels[i], opt, func(round int) (*model.Instance, error) {
			return p.WithSeed(opt.Seed+int64(i)*1000+int64(round)).Instance(float64(round), model.IndexRTree)
		})
		if err != nil {
			return series, err
		}
		series.Points = append(series.Points, pt)
	}
	return series, nil
}

// runDistribution compares UNIF against SKEW at Table II defaults (§VI-C
// generates both; the paper's scalability figures use them as alternative
// synthetic workloads).
func runDistribution(ctx context.Context, opt Options) (*Series, error) {
	base := workload.Default()
	base.NumWorkers = opt.scaled(base.NumWorkers)
	base.NumTasks = opt.scaled(base.NumTasks)
	series := &Series{Experiment: ExpDistribution, Figure: "Extra", XLabel: "distribution"}
	for i, dist := range []workload.Dist{workload.UNIF, workload.SKEW} {
		p := base
		p.Dist = dist
		pt, err := sweepPoint(ctx, dist.String(), opt, func(round int) (*model.Instance, error) {
			return p.WithSeed(opt.Seed+int64(i)*1000+int64(round)).Instance(float64(round), model.IndexRTree)
		})
		if err != nil {
			return series, err
		}
		series.Points = append(series.Points, pt)
	}
	return series, nil
}

// runOptGap solves tiny instances with branch and bound and reports TPG,
// GT and the OPT*/UPPER reference points. OPT* is the proven optimum when
// the branch and bound closes within its node budget; on draws where it
// cannot, OPT* falls back to the best assignment any method found, so the
// invariant "no solver exceeds OPT*" holds either way. Sweep:
// m ∈ {10, 14, 18, 22} with n = m/3 tasks.
func runOptGap(ctx context.Context, opt Options) (*Series, error) {
	series := &Series{Experiment: ExpOptGap, Figure: "Extra", XLabel: "workers m (tiny)"}
	sizes := []int{10, 14, 18, 22}
	solvers := []string{"TPG", "GT", "MFLOW", "RAND"}
	for i, m := range sizes {
		pt := Point{Label: fmt.Sprintf("%d", m)}
		agg := map[string]*SolverResult{}
		for _, name := range solvers {
			agg[name] = &SolverResult{Name: name}
		}
		exactAgg := &SolverResult{Name: "OPT*"}
		for round := 0; round < opt.Rounds; round++ {
			if ctx.Err() != nil {
				return series, ctx.Err()
			}
			p := workload.Default()
			p.NumWorkers = m
			p.NumTasks = m / 3
			// Tiny instances need generous reach or most draws have no
			// feasible B-group at all; these settings make ~every draw
			// solvable while keeping the search space exact-solver sized.
			p.RadiusRange = [2]float64{0.4, 0.7}
			p.SpeedRange = [2]float64{0.1, 0.3}
			p.RemainingTime = 5
			p.Seed = opt.Seed + int64(i)*100 + int64(round)
			in, err := p.Instance(0, model.IndexLinear)
			if err != nil {
				return series, err
			}
			pt.Upper += assign.Upper(in)
			bestKnown := 0.0
			for _, name := range solvers {
				s, err := assign.ByName(name, p.Seed)
				if err != nil {
					return series, err
				}
				s = assign.Instrument(opt.decorate(s), opt.Metrics)
				st := time.Now()
				a, err := s.Solve(ctx, in)
				if err != nil {
					return series, err
				}
				elapsed := time.Since(st).Seconds()
				score := a.TotalScore(in)
				if score > bestKnown {
					bestKnown = score
				}
				agg[name].Score += score
				agg[name].BatchSeconds += elapsed / float64(opt.Rounds)
				agg[name].LatencySeconds = append(agg[name].LatencySeconds, elapsed)
			}
			ex := &assign.Exact{MaxNodes: 4e6}
			start := time.Now()
			optA, err := ex.Solve(ctx, in)
			if err != nil {
				return series, err
			}
			if score := optA.TotalScore(in); score > bestKnown {
				bestKnown = score
			}
			exactAgg.Score += bestKnown
			exactAgg.BatchSeconds += time.Since(start).Seconds() / float64(opt.Rounds)
		}
		for _, name := range solvers {
			pt.Results = append(pt.Results, *agg[name])
		}
		pt.Results = append(pt.Results, *exactAgg)
		series.Points = append(series.Points, pt)
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "point %s done\n", pt.Label)
		}
	}
	return series, nil
}

// runSources runs Table II defaults over three data sources.
func runSources(ctx context.Context, opt Options) (*Series, error) {
	series := &Series{Experiment: ExpSources, Figure: "Extra", XLabel: "data source"}
	m := opt.scaled(1000)
	n := opt.scaled(500)

	// UNIF.
	unif := workload.Default()
	unif.NumWorkers, unif.NumTasks = m, n
	pt, err := sweepPoint(ctx, "UNIF", opt, func(round int) (*model.Instance, error) {
		return unif.WithSeed(opt.Seed+int64(round)).Instance(float64(round), model.IndexRTree)
	})
	if err != nil {
		return series, err
	}
	series.Points = append(series.Points, pt)

	// Meetup city.
	mcfg := meetup.Default()
	mcfg.Seed = opt.Seed
	if opt.Scale < 1 {
		mcfg.NumUsers = opt.scaled(mcfg.NumUsers)
		mcfg.NumEvents = opt.scaled(mcfg.NumEvents)
		mcfg.NumGroups = opt.scaled(mcfg.NumGroups)
	}
	city := meetup.Generate(mcfg)
	msp := meetup.DefaultSample()
	msp.NumWorkers, msp.NumTasks = m, n
	mrng := stats.NewRNG(opt.Seed + 11)
	pt, err = sweepPoint(ctx, "MEETUP", opt, func(round int) (*model.Instance, error) {
		return city.Sample(mrng, msp, float64(round))
	})
	if err != nil {
		return series, err
	}
	series.Points = append(series.Points, pt)

	// Check-in trace.
	ccfg := checkin.Default()
	ccfg.Seed = opt.Seed
	if opt.Scale < 1 {
		ccfg.NumUsers = opt.scaled(ccfg.NumUsers)
		ccfg.NumVenues = opt.scaled(ccfg.NumVenues)
	}
	if ccfg.NumUsers < m {
		ccfg.NumUsers = m
	}
	tr := checkin.Generate(ccfg)
	csp := checkin.DefaultSample()
	csp.NumWorkers, csp.NumTasks = m, n
	crng := stats.NewRNG(opt.Seed + 13)
	pt, err = sweepPoint(ctx, "CHECKIN", opt, func(round int) (*model.Instance, error) {
		return tr.Sample(crng, csp, float64(round))
	})
	if err != nil {
		return series, err
	}
	series.Points = append(series.Points, pt)
	return series, nil
}

// runPaperScale solves the same paper-default instances in both scratch
// modes. The "alloc" point runs every solver with throwaway per-solve
// scratch; the "arena" point reruns the identical rounds with persistent
// arenas (and always records Benchmem, so the committed file carries the
// steady-state allocs/op even when the flag is off). Identical scores
// between the two points are the output-preservation invariant made
// visible in the bench trajectory.
func runPaperScale(ctx context.Context, opt Options) (*Series, error) {
	base := workload.Default()
	base.NumWorkers = opt.scaled(base.NumWorkers)
	base.NumTasks = opt.scaled(base.NumTasks)
	series := &Series{Experiment: ExpPaperScale, Figure: "Extra", XLabel: "scratch mode"}
	for _, mode := range []struct {
		label string
		arena bool
	}{{"alloc", false}, {"arena", true}} {
		o := opt
		o.Arena = mode.arena
		o.Benchmem = true
		pt, err := sweepPoint(ctx, mode.label, o, func(round int) (*model.Instance, error) {
			return base.WithSeed(opt.Seed+int64(round)).Instance(float64(round), model.IndexRTree)
		})
		if err != nil {
			return series, err
		}
		series.Points = append(series.Points, pt)
	}
	return series, nil
}

// runAnytime traces GT's per-round score profile from a random start.
func runAnytime(ctx context.Context, opt Options) (*Series, error) {
	base := workload.Default()
	base.NumWorkers = opt.scaled(base.NumWorkers)
	base.NumTasks = opt.scaled(base.NumTasks)
	series := &Series{Experiment: ExpAnytime, Figure: "Extra", XLabel: "best-response round"}
	// Accumulate potential per round across instances; instances may
	// converge at different round counts, so carry each one's final value
	// forward (interrupting a converged run returns its final result).
	var profiles [][]assign.AnytimePoint
	var uppers float64
	maxRounds := 0
	for round := 0; round < opt.Rounds; round++ {
		if ctx.Err() != nil {
			return series, ctx.Err()
		}
		in, err := base.WithSeed(opt.Seed+int64(round)).Instance(float64(round), model.IndexRTree)
		if err != nil {
			return series, err
		}
		uppers += assign.Upper(in)
		gt := assign.NewGT(assign.GTOptions{RandomInit: true, RecordAnytime: true, Seed: opt.Seed})
		if _, err := gt.Solve(ctx, in); err != nil {
			return series, err
		}
		prof := append([]assign.AnytimePoint(nil), gt.Anytime...)
		profiles = append(profiles, prof)
		if len(prof) > maxRounds {
			maxRounds = len(prof)
		}
	}
	for r := 0; r < maxRounds; r++ {
		var total float64
		for _, prof := range profiles {
			idx := r
			if idx >= len(prof) {
				idx = len(prof) - 1
			}
			if idx >= 0 {
				total += prof[idx].Potential
			}
		}
		series.Points = append(series.Points, Point{
			Label:   fmt.Sprintf("%d", r+1),
			Upper:   uppers,
			Results: []SolverResult{{Name: "GT", Score: total}},
		})
	}
	if opt.Progress != nil {
		fmt.Fprintf(opt.Progress, "anytime profile over %d rounds\n", maxRounds)
	}
	return series, nil
}

func countLabel(v int) string {
	if v >= 1000 && v%1000 == 0 {
		return fmt.Sprintf("%dK", v/1000)
	}
	return fmt.Sprintf("%d", v)
}

// runEpsilon handles Fig. 6: GT+TSI under different TSI thresholds ε over
// UNIF synthetic data.
func runEpsilon(ctx context.Context, opt Options) (*Series, error) {
	base := workload.Default()
	base.NumWorkers = opt.scaled(base.NumWorkers)
	base.NumTasks = opt.scaled(base.NumTasks)
	series := &Series{Experiment: ExpEpsilon, Figure: "Figure 6", XLabel: "threshold ε"}
	for i, eps := range workload.EpsilonValues {
		pt := Point{Label: fmt.Sprintf("%g", eps)}
		res := SolverResult{Name: "GT+TSI"}
		for round := 0; round < opt.Rounds; round++ {
			if ctx.Err() != nil {
				return series, ctx.Err()
			}
			in, err := base.WithSeed(opt.Seed+int64(round)).Instance(float64(round), model.IndexRTree)
			if err != nil {
				return series, err
			}
			pt.Upper += assign.Upper(in)
			solver := assign.Instrument(opt.decorate(assign.NewGT(assign.GTOptions{Epsilon: eps})), opt.Metrics)
			start := time.Now()
			a, err := solver.Solve(ctx, in)
			elapsed := time.Since(start).Seconds()
			if err != nil {
				return series, err
			}
			res.Score += a.TotalScore(in)
			res.BatchSeconds += elapsed / float64(opt.Rounds)
			res.LatencySeconds = append(res.LatencySeconds, elapsed)
		}
		pt.Results = []SolverResult{res}
		series.Points = append(series.Points, pt)
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "point %s done (%d/%d)\n", pt.Label, i+1, len(workload.EpsilonValues))
		}
	}
	return series, nil
}

// Render writes the series as two aligned text tables (score and time),
// mirroring how the paper presents each figure's two panels.
func (s *Series) Render(w io.Writer) error {
	names := s.solverNames()
	write := func(title string, value func(SolverResult) string, extra func(Point) string, extraHead string) error {
		var b strings.Builder
		fmt.Fprintf(&b, "%s — %s (%s)\n", s.Figure, s.Experiment, title)
		fmt.Fprintf(&b, "%-12s", s.XLabel)
		for _, n := range names {
			fmt.Fprintf(&b, "%12s", n)
		}
		if extraHead != "" {
			fmt.Fprintf(&b, "%12s", extraHead)
		}
		b.WriteByte('\n')
		for _, pt := range s.Points {
			fmt.Fprintf(&b, "%-12s", pt.Label)
			byName := map[string]SolverResult{}
			for _, r := range pt.Results {
				byName[r.Name] = r
			}
			for _, n := range names {
				fmt.Fprintf(&b, "%12s", value(byName[n]))
			}
			if extraHead != "" {
				fmt.Fprintf(&b, "%12s", extra(pt))
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := write("total cooperation score",
		func(r SolverResult) string { return fmt.Sprintf("%.1f", r.Score) },
		func(p Point) string { return fmt.Sprintf("%.1f", p.Upper) }, "UPPER"); err != nil {
		return err
	}
	if err := write("batch running time (s)",
		func(r SolverResult) string { return fmt.Sprintf("%.4f", r.BatchSeconds) },
		nil, ""); err != nil {
		return err
	}
	if s.hasRegret() {
		if err := write("mean counterfactual regret",
			func(r SolverResult) string {
				if r.Regret != nil {
					return fmt.Sprintf("%.4f", *r.Regret)
				}
				return "-"
			}, nil, ""); err != nil {
			return err
		}
	}
	if !s.hasAllocs() {
		return nil
	}
	return write("steady-state allocs per solve",
		func(r SolverResult) string {
			if n, ok := r.AllocsPerOp(); ok {
				return fmt.Sprintf("%d", n)
			}
			return "-"
		}, nil, "")
}

// hasRegret reports whether any result carries counterfactual regret.
func (s *Series) hasRegret() bool {
	for _, pt := range s.Points {
		for _, r := range pt.Results {
			if r.Regret != nil {
				return true
			}
		}
	}
	return false
}

// hasAllocs reports whether any result recorded allocation counts.
func (s *Series) hasAllocs() bool {
	for _, pt := range s.Points {
		for _, r := range pt.Results {
			if len(r.Allocs) > 0 {
				return true
			}
		}
	}
	return false
}

// CSV writes the series as one CSV block per measure.
func (s *Series) CSV(w io.Writer) error {
	names := s.solverNames()
	var b strings.Builder
	fmt.Fprintf(&b, "experiment,measure,x")
	for _, n := range names {
		fmt.Fprintf(&b, ",%s", n)
	}
	fmt.Fprintf(&b, ",UPPER\n")
	for _, pt := range s.Points {
		byName := map[string]SolverResult{}
		for _, r := range pt.Results {
			byName[r.Name] = r
		}
		fmt.Fprintf(&b, "%s,score,%s", s.Experiment, pt.Label)
		for _, n := range names {
			fmt.Fprintf(&b, ",%.4f", byName[n].Score)
		}
		fmt.Fprintf(&b, ",%.4f\n", pt.Upper)
	}
	for _, pt := range s.Points {
		byName := map[string]SolverResult{}
		for _, r := range pt.Results {
			byName[r.Name] = r
		}
		fmt.Fprintf(&b, "%s,seconds,%s", s.Experiment, pt.Label)
		for _, n := range names {
			fmt.Fprintf(&b, ",%.6f", byName[n].BatchSeconds)
		}
		fmt.Fprintf(&b, ",\n")
	}
	if s.hasRegret() {
		for _, pt := range s.Points {
			byName := map[string]SolverResult{}
			for _, r := range pt.Results {
				byName[r.Name] = r
			}
			fmt.Fprintf(&b, "%s,regret,%s", s.Experiment, pt.Label)
			for _, n := range names {
				if r := byName[n].Regret; r != nil {
					fmt.Fprintf(&b, ",%.6f", *r)
				} else {
					fmt.Fprintf(&b, ",")
				}
			}
			fmt.Fprintf(&b, ",\n")
		}
	}
	if s.hasAllocs() {
		for _, pt := range s.Points {
			byName := map[string]SolverResult{}
			for _, r := range pt.Results {
				byName[r.Name] = r
			}
			fmt.Fprintf(&b, "%s,allocs,%s", s.Experiment, pt.Label)
			for _, n := range names {
				if v, ok := byName[n].AllocsPerOp(); ok {
					fmt.Fprintf(&b, ",%d", v)
				} else {
					fmt.Fprintf(&b, ",")
				}
			}
			fmt.Fprintf(&b, ",\n")
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (s *Series) solverNames() []string {
	set := map[string]bool{}
	var names []string
	for _, pt := range s.Points {
		for _, r := range pt.Results {
			if !set[r.Name] {
				set[r.Name] = true
				names = append(names, r.Name)
			}
		}
	}
	// Preserve the canonical order where possible.
	order := map[string]int{}
	for i, n := range assign.AllNames() {
		order[n] = i
	}
	sort.SliceStable(names, func(i, j int) bool { return order[names[i]] < order[names[j]] })
	return names
}

// Result lookup helpers for tests and EXPERIMENTS.md generation.

// Score returns the score of the named solver at the given point label.
func (s *Series) Score(label, solver string) (float64, bool) {
	for _, pt := range s.Points {
		if pt.Label != label {
			continue
		}
		for _, r := range pt.Results {
			if r.Name == solver {
				return r.Score, true
			}
		}
	}
	return 0, false
}

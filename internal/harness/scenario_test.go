package harness

import (
	"context"
	"testing"
)

func TestScenarioExperiment(t *testing.T) {
	opt := Options{Rounds: 4, Seed: 5, Scale: 0.3, Solvers: []string{"TPG", "GT"}}
	s, err := Run(context.Background(), ExpScenario, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != len(scenarioVariants()) {
		t.Fatalf("points = %d, want %d", len(s.Points), len(scenarioVariants()))
	}
	for _, pt := range s.Points {
		if len(pt.Results) != 2 {
			t.Fatalf("point %s has %d results", pt.Label, len(pt.Results))
		}
		for _, r := range pt.Results {
			if r.Regret == nil {
				t.Fatalf("point %s solver %s has no regret", pt.Label, r.Name)
			}
			if *r.Regret < 0 {
				t.Fatalf("point %s solver %s regret %v negative", pt.Label, r.Name, *r.Regret)
			}
			if r.Score < 0 {
				t.Fatalf("point %s solver %s score %v", pt.Label, r.Name, r.Score)
			}
		}
	}
	// The regret column must survive into the bench entries and the run
	// must be deterministic end to end.
	for _, e := range s.BenchFile(opt).Entries {
		if e.Regret == nil {
			t.Fatalf("entry (%s, %s) lost its regret column", e.X, e.Solver)
		}
	}
	s2, err := Run(context.Background(), ExpScenario, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Latencies are wall-clock; the deterministic columns must agree
	// bitwise across reruns.
	e1, e2 := s.BenchFile(opt).Entries, s2.BenchFile(opt).Entries
	if len(e1) != len(e2) {
		t.Fatalf("rerun produced %d entries vs %d", len(e2), len(e1))
	}
	for i := range e1 {
		if e1[i].Score != e2[i].Score || *e1[i].Regret != *e2[i].Regret || e1[i].Upper != e2[i].Upper {
			t.Fatalf("entry (%s, %s) drifted across reruns: score %v/%v regret %v/%v",
				e1[i].X, e1[i].Solver, e1[i].Score, e2[i].Score, *e1[i].Regret, *e2[i].Regret)
		}
	}
}

func TestBenchDiffRegret(t *testing.T) {
	r1, r2 := 0.5, 0.75
	base := &BenchFile{Experiment: ExpScenario, Entries: []BenchEntry{
		{Experiment: ExpScenario, X: "poisson", Solver: "GT", Score: 10, Regret: &r1},
	}}
	fresh := &BenchFile{Experiment: ExpScenario, Entries: []BenchEntry{
		{Experiment: ExpScenario, X: "poisson", Solver: "GT", Score: 10, Regret: &r2},
	}}
	if err := fresh.DiffAgainst(base); err == nil {
		t.Fatal("regret drift passed the diff")
	}
	missing := &BenchFile{Experiment: ExpScenario, Entries: []BenchEntry{
		{Experiment: ExpScenario, X: "poisson", Solver: "GT", Score: 10},
	}}
	if err := missing.DiffAgainst(base); err == nil {
		t.Fatal("missing regret passed the diff")
	}
	same := &BenchFile{Experiment: ExpScenario, Entries: []BenchEntry{
		{Experiment: ExpScenario, X: "poisson", Solver: "GT", Score: 10, Regret: &r1},
	}}
	if err := same.DiffAgainst(base); err != nil {
		t.Fatalf("clean regret diff failed: %v", err)
	}
}

package harness

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

// quickOpts shrinks every experiment enough for the unit-test budget.
func quickOpts() Options {
	return Options{Rounds: 2, Seed: 3, Scale: 0.08}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run(context.Background(), "figure-99", quickOpts()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAllExperimentsRunScaledDown(t *testing.T) {
	ctx := context.Background()
	for _, name := range AllExperiments() {
		name := name
		t.Run(name, func(t *testing.T) {
			opt := quickOpts()
			if name == ExpWorkers || name == ExpTasks {
				// The scalability sweeps multiply already-large counts; use
				// an even smaller scale and fewer solvers to stay quick.
				opt.Scale = 0.04
				opt.Solvers = []string{"TPG", "GT", "MFLOW", "RAND"}
			}
			s, err := Run(ctx, name, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(s.Points) == 0 {
				t.Fatal("no sweep points")
			}
			for _, pt := range s.Points {
				if len(pt.Results) == 0 {
					t.Fatalf("point %s has no results", pt.Label)
				}
				for _, r := range pt.Results {
					if r.Score < 0 {
						t.Errorf("point %s solver %s: negative score", pt.Label, r.Name)
					}
					if r.Score > pt.Upper+1e-6 {
						t.Errorf("point %s solver %s: score %v above UPPER %v",
							pt.Label, r.Name, r.Score, pt.Upper)
					}
				}
			}
		})
	}
}

func TestCooperationAwareApproachesWin(t *testing.T) {
	// The paper's headline shape on the capacity experiment: GT ≥ TPG and
	// both far above RAND.
	s, err := Run(context.Background(), ExpCapacity, Options{Rounds: 2, Seed: 4, Scale: 0.15,
		Solvers: []string{"TPG", "GT", "MFLOW", "RAND"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range s.Points {
		byName := map[string]float64{}
		for _, r := range pt.Results {
			byName[r.Name] = r.Score
		}
		if byName["GT"] < byName["TPG"]-1e-9 {
			t.Errorf("point %s: GT %v below TPG %v", pt.Label, byName["GT"], byName["TPG"])
		}
		if byName["TPG"] <= byName["RAND"] {
			t.Errorf("point %s: TPG %v not above RAND %v", pt.Label, byName["TPG"], byName["RAND"])
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	s, err := Run(context.Background(), ExpEpsilon, Options{Rounds: 1, Seed: 5, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 6", "GT+TSI", "UPPER", "total cooperation score", "running time"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := s.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.Contains(csv, "epsilon,score,0") || !strings.Contains(csv, "epsilon,seconds,") {
		t.Errorf("csv missing rows:\n%s", csv)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+2*len(s.Points) {
		t.Errorf("csv has %d lines, want %d", len(lines), 1+2*len(s.Points))
	}
}

func TestScoreLookup(t *testing.T) {
	s := &Series{Points: []Point{{Label: "3", Results: []SolverResult{{Name: "GT", Score: 7}}}}}
	if v, ok := s.Score("3", "GT"); !ok || v != 7 {
		t.Errorf("Score = %v,%v", v, ok)
	}
	if _, ok := s.Score("4", "GT"); ok {
		t.Error("missing label found")
	}
	if _, ok := s.Score("3", "TPG"); ok {
		t.Error("missing solver found")
	}
}

func TestContextCancelledPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, ExpCapacity, quickOpts()); err == nil {
		t.Error("cancelled context not propagated")
	}
}

func TestProgressWriter(t *testing.T) {
	var buf bytes.Buffer
	opt := quickOpts()
	opt.Progress = &buf
	if _, err := Run(context.Background(), ExpDeadline, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "done") {
		t.Error("no progress lines written")
	}
}

func TestDistributionExperiment(t *testing.T) {
	s, err := Run(context.Background(), ExpDistribution,
		Options{Rounds: 1, Seed: 6, Scale: 0.1, Solvers: []string{"TPG", "RAND"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 || s.Points[0].Label != "UNIF" || s.Points[1].Label != "SKEW" {
		t.Fatalf("points: %+v", s.Points)
	}
	for _, pt := range s.Points {
		if tpg, ok := s.Score(pt.Label, "TPG"); !ok || tpg < 0 {
			t.Errorf("bad TPG score at %s: %v, %v", pt.Label, tpg, ok)
		}
	}
	if got := ExtraExperiments(); len(got) != 7 || got[4] != ExpPaperScale || got[6] != ExpScenario {
		t.Errorf("ExtraExperiments = %v", got)
	}
}

func TestOptGapExperiment(t *testing.T) {
	s, err := Run(context.Background(), ExpOptGap, Options{Rounds: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("points: %d", len(s.Points))
	}
	for _, pt := range s.Points {
		exact, ok := s.Score(pt.Label, "OPT*")
		if !ok {
			t.Fatalf("no OPT* at %s", pt.Label)
		}
		for _, name := range []string{"TPG", "GT", "MFLOW", "RAND"} {
			sc, ok := s.Score(pt.Label, name)
			if !ok {
				t.Fatalf("no %s at %s", name, pt.Label)
			}
			if sc > exact+1e-9 {
				t.Errorf("point %s: %s (%v) beats proven optimum (%v)", pt.Label, name, sc, exact)
			}
		}
		if exact > pt.Upper+1e-9 {
			t.Errorf("point %s: OPT %v above UPPER %v", pt.Label, exact, pt.Upper)
		}
		gt, _ := s.Score(pt.Label, "GT")
		if exact > 0 && gt/exact < 0.7 {
			t.Errorf("point %s: GT only %.2f of OPT", pt.Label, gt/exact)
		}
	}
}

func TestAnytimeExperiment(t *testing.T) {
	s, err := Run(context.Background(), ExpAnytime, Options{Rounds: 2, Seed: 8, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) == 0 {
		t.Fatal("no rounds recorded")
	}
	last := -1.0
	for _, pt := range s.Points {
		score, ok := s.Score(pt.Label, "GT")
		if !ok {
			t.Fatalf("no GT at round %s", pt.Label)
		}
		if score < last-1e-9 {
			t.Fatalf("anytime curve decreased at round %s: %v -> %v", pt.Label, last, score)
		}
		last = score
		if score > pt.Upper+1e-6 {
			t.Fatalf("round %s: score above UPPER", pt.Label)
		}
	}
}

func TestSourcesExperiment(t *testing.T) {
	s, err := Run(context.Background(), ExpSources,
		Options{Rounds: 1, Seed: 9, Scale: 0.1, Solvers: []string{"TPG", "GT", "RAND"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points: %d", len(s.Points))
	}
	for _, pt := range s.Points {
		tpg, _ := s.Score(pt.Label, "TPG")
		gt, _ := s.Score(pt.Label, "GT")
		rnd, _ := s.Score(pt.Label, "RAND")
		if tpg <= 0 || gt < tpg-1e-9 {
			t.Errorf("%s: GT %v vs TPG %v", pt.Label, gt, tpg)
		}
		// The headline ordering must hold on every data source.
		if tpg <= rnd {
			t.Errorf("%s: TPG %v not above RAND %v", pt.Label, tpg, rnd)
		}
	}
}

func TestPaperScaleExperiment(t *testing.T) {
	// Paper-grid experiment at toy scale: the "alloc" and "arena" points
	// solve the same instances, so every solver's score must be bitwise
	// equal across the two points — the output-preservation invariant the
	// committed BENCH_paperscale.json encodes — and the arena point must
	// report zero steady-state allocs for the arena-capable solvers.
	s, err := Run(context.Background(), ExpPaperScale,
		Options{Rounds: 4, Seed: 12, Scale: 0.08, Solvers: []string{"TPG", "GT", "RAND"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 || s.Points[0].Label != "alloc" || s.Points[1].Label != "arena" {
		t.Fatalf("points: %+v", s.Points)
	}
	for _, name := range []string{"TPG", "GT", "RAND"} {
		cold, ok1 := s.Score("alloc", name)
		warm, ok2 := s.Score("arena", name)
		if !ok1 || !ok2 {
			t.Fatalf("%s missing from a point", name)
		}
		if math.Float64bits(cold) != math.Float64bits(warm) {
			t.Errorf("%s: arena changed the score: %v != %v", name, warm, cold)
		}
	}
	if u1, u2 := s.Points[0].Upper, s.Points[1].Upper; math.Float64bits(u1) != math.Float64bits(u2) {
		t.Errorf("UPPER differs across points: %v != %v", u1, u2)
	}
	for _, pt := range s.Points {
		for _, r := range pt.Results {
			if len(r.Allocs) != 4 {
				t.Errorf("point %s solver %s: %d alloc samples, want 4", pt.Label, r.Name, len(r.Allocs))
			}
		}
	}
	cold := map[string]uint64{}
	for _, r := range s.Points[0].Results {
		n, ok := r.AllocsPerOp()
		if !ok {
			t.Fatalf("alloc point %s: no alloc samples", r.Name)
		}
		cold[r.Name] = n
	}
	for _, r := range s.Points[1].Results {
		if r.Name == "RAND" {
			continue // not an ArenaHolder; allocates every solve
		}
		// Each round solves a fresh instance, so the arena may still grow a
		// little on shape changes; the invariant here is "near-free vs the
		// throwaway-scratch point", while the exact-zero steady state is
		// asserted on repeated shapes in internal/assign's alloc tests.
		n, ok := r.AllocsPerOp()
		if !ok {
			t.Fatalf("arena point %s: no alloc samples", r.Name)
		}
		if n > 64 || n*2 > cold[r.Name] {
			t.Errorf("arena point %s: steady-state allocs/op = %d (cold %d), want near zero",
				r.Name, n, cold[r.Name])
		}
	}
}

func TestAllocsPerOpReduction(t *testing.T) {
	if _, ok := (SolverResult{}).AllocsPerOp(); ok {
		t.Error("AllocsPerOp reported ok with no samples")
	}
	r := SolverResult{Allocs: []uint64{120, 0, 3}}
	if n, ok := r.AllocsPerOp(); !ok || n != 0 {
		t.Errorf("AllocsPerOp = %d, %v; want min 0", n, ok)
	}
}

package harness

import (
	"context"
	"fmt"

	"casc/internal/scenario"
)

// ExpScenario is an extra experiment driving the discrete-event scenario
// engine: each sweep point is one built-in arrival-process scenario
// (Poisson baseline, heavy-tailed Gamma and Weibull renewal streams, and
// the hotspot flash crowd), run end to end through batch.Run with every
// solver as the dispatch policy and counterfactual decision tracing
// enabled — so the bench baseline pins, per (scenario, solver), both the
// deterministic total score and the mean per-round regret against the
// alternates not chosen.
const ExpScenario = "scenario"

// scenarioVariants are the sweep points, in x-axis order. The diurnal
// builtin is exercised by the unit tests instead; its 12-round cycle
// would force a different Rounds than the other points.
func scenarioVariants() []string { return []string{"poisson", "gamma", "weibull", "flash"} }

func runScenario(ctx context.Context, opt Options) (*Series, error) {
	series := &Series{
		Experiment: ExpScenario,
		Figure:     "Extra: scenario engine — arrival processes, SLO tiers, counterfactual regret",
		XLabel:     "scenario",
	}
	parallelism := 0
	if opt.Parallel {
		parallelism = opt.Workers
		if parallelism == 0 {
			parallelism = -1
		}
	}
	for _, variant := range scenarioVariants() {
		spec, err := scenario.Load(variant)
		if err != nil {
			return nil, err
		}
		spec.Seed = opt.Seed
		spec.Rounds = opt.Rounds
		spec.Workers.Rate *= opt.Scale
		spec.Tasks.Rate *= opt.Scale
		plan, err := scenario.Generate(spec)
		if err != nil {
			return nil, err
		}
		pt := Point{Label: variant}
		for _, name := range opt.Solvers {
			rep, err := scenario.Run(ctx, scenario.RunConfig{
				Plan:            plan,
				Solver:          name,
				CounterfactualK: -1,
				Parallelism:     parallelism,
				Budget:          opt.Budget,
				Metrics:         opt.Metrics,
			})
			if err != nil {
				return nil, fmt.Errorf("harness: scenario %s/%s: %w", variant, name, err)
			}
			r := SolverResult{Name: name, Score: rep.Score}
			for _, bs := range rep.Result.Batches {
				sec := bs.Elapsed.Seconds()
				r.LatencySeconds = append(r.LatencySeconds, sec)
				r.BatchSeconds += sec
			}
			if len(rep.Result.Batches) > 0 {
				r.BatchSeconds /= float64(len(rep.Result.Batches))
			}
			if cf := rep.Counterfactual; cf != nil {
				regret := cf.MeanRegret
				r.Regret = &regret
			}
			pt.Results = append(pt.Results, r)
			if pt.Upper == 0 {
				// The carry-over dynamics — and therefore UPPER — depend on
				// the dispatch policy; record the first solver's bound as the
				// point's reference.
				pt.Upper = rep.Upper
			}
			if opt.Progress != nil {
				fmt.Fprintf(opt.Progress, "scenario %-8s %-7s score %10.2f regret %8.4f\n",
					variant, name, rep.Score, *r.Regret)
			}
		}
		series.Points = append(series.Points, pt)
	}
	return series, nil
}

package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders the series' score panel as an ASCII chart, one mark per
// solver per sweep point plus the UPPER estimate — a terminal-friendly
// rendition of the paper's figures. Marks share a column per x value;
// when two solvers land on the same cell the later one wins (they are
// drawn in reverse-importance order so TPG/GT stay visible).
func (s *Series) Chart(w io.Writer) error {
	const height = 14
	if len(s.Points) == 0 {
		_, err := fmt.Fprintf(w, "%s — no data\n", s.Figure)
		return err
	}
	names := s.solverNames()
	marks := map[string]byte{
		"TPG": 'T', "GT": 'G', "GT+LUB": 'L', "GT+TSI": 'S', "GT+ALL": 'A',
		"MFLOW": 'M', "RAND": 'R', "WST": 'W',
	}
	// Scale.
	maxV := 0.0
	for _, pt := range s.Points {
		if pt.Upper > maxV {
			maxV = pt.Upper
		}
		for _, r := range pt.Results {
			if r.Score > maxV {
				maxV = r.Score
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	colWidth := 0
	for _, pt := range s.Points {
		if len(pt.Label) > colWidth {
			colWidth = len(pt.Label)
		}
	}
	colWidth += 3
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(s.Points)*colWidth))
	}
	put := func(col int, v float64, mark byte) {
		row := int(math.Round(v / maxV * float64(height-1)))
		if row < 0 {
			row = 0
		}
		if row > height-1 {
			row = height - 1
		}
		grid[height-1-row][col*colWidth+colWidth/2] = mark
	}
	for ci, pt := range s.Points {
		put(ci, pt.Upper, '^')
		// Draw least-important first so headline solvers overwrite.
		order := append([]SolverResult(nil), pt.Results...)
		for i := len(order) - 1; i >= 0; i-- {
			r := order[i]
			mark, ok := marks[r.Name]
			if !ok {
				mark = '?'
			}
			put(ci, r.Score, mark)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (score; ^ = UPPER)\n", s.Figure, s.Experiment)
	for i, row := range grid {
		axis := " "
		switch i {
		case 0:
			axis = fmt.Sprintf("%8.0f", maxV)
		case height - 1:
			axis = fmt.Sprintf("%8.0f", 0.0)
		default:
			axis = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s |%s\n", axis, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", len(s.Points)*colWidth))
	fmt.Fprintf(&b, "%s  ", strings.Repeat(" ", 8))
	for _, pt := range s.Points {
		fmt.Fprintf(&b, "%-*s", colWidth, centerLabel(pt.Label, colWidth))
	}
	b.WriteByte('\n')
	// Legend.
	fmt.Fprintf(&b, "legend: ")
	for _, n := range names {
		fmt.Fprintf(&b, "%c=%s ", marks[n], n)
	}
	b.WriteString("^=UPPER\n\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func centerLabel(label string, width int) string {
	pad := (width - len(label)) / 2
	if pad < 0 {
		pad = 0
	}
	return strings.Repeat(" ", pad) + label
}

package harness

import (
	"strings"
	"testing"
)

func u64(v uint64) *uint64 { return &v }

// benchPair builds a fresh/baseline file pair sharing one config, with a
// single datapoint whose allocs/op can be varied per side.
func benchPair(got, want *uint64) (*BenchFile, *BenchFile) {
	mk := func(allocs *uint64) *BenchFile {
		return &BenchFile{
			Experiment: "paperscale",
			XLabel:     "scratch mode",
			Rounds:     2,
			Seed:       1,
			Scale:      1,
			Benchmem:   allocs != nil,
			Entries: []BenchEntry{{
				Experiment: "paperscale", X: "arena", Solver: "TPG",
				N: 2, Score: 10, Upper: 12,
				MeanMS: 1, P50MS: 1, P95MS: 1,
				AllocsPerOp: allocs,
			}},
		}
	}
	return mk(got), mk(want)
}

func TestBenchDiffAllocGate(t *testing.T) {
	cases := []struct {
		name    string
		got     *uint64
		want    *uint64
		wantErr string // substring of the expected error; "" = clean
	}{
		{name: "both zero", got: u64(0), want: u64(0)},
		{name: "within jitter floor", got: u64(DiffAllocFloor), want: u64(0)},
		{name: "above jitter floor", got: u64(DiffAllocFloor + 1), want: u64(0), wantErr: "allocs/op"},
		{name: "within proportional headroom", got: u64(2200), want: u64(2000)},
		{name: "regression", got: u64(2400), want: u64(2000), wantErr: "allocs/op 2400 exceeds"},
		{name: "baseline unmeasured ignores fresh", got: u64(9999), want: nil},
		{name: "fresh unmeasured fails", got: nil, want: u64(5), wantErr: "rerun with -benchmem"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh, base := benchPair(tc.got, tc.want)
			err := fresh.DiffAgainst(base)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected diff failure: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestBenchFileMarksBenchmemFromEntries(t *testing.T) {
	// paperscale records allocs regardless of Options.Benchmem; the file
	// marker must follow the entries so DiffAgainst treats it as measured.
	s := &Series{
		Experiment: "paperscale",
		Points: []Point{{Label: "arena", Results: []SolverResult{
			{Name: "TPG", Score: 1, LatencySeconds: []float64{0.01}, Allocs: []uint64{3}},
		}}},
	}
	b := s.BenchFile(Options{Rounds: 1})
	if !b.Benchmem {
		t.Error("Benchmem marker not derived from entries")
	}
	if len(b.Entries) != 1 || b.Entries[0].AllocsPerOp == nil || *b.Entries[0].AllocsPerOp != 3 {
		t.Errorf("entries: %+v", b.Entries)
	}
}

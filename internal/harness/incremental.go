package harness

import (
	"context"
	"fmt"
	"math"

	"casc/internal/assign"
	"casc/internal/batch"
	"casc/internal/coop"
	"casc/internal/workload"
)

// ExpIncremental is the incremental-engine benchmark: the churn workload
// (workload.NewChurn — a grid of isolated sites where only a small active
// subset changes between rounds) simulated through batch.Run twice per
// sweep point, once rebuilding and re-solving every round from scratch and
// once through the persistent engine of internal/incremental. The run
// verifies the two modes' round scores are bitwise identical before
// reporting, so the committed BENCH_incremental.json documents both the
// speedup and the equivalence. With Options.Incremental set, the
// from-scratch baseline (and the comparison) is skipped — an engine-only
// timing run.
const ExpIncremental = "incremental"

// ChurnGridSizes is the sweep: sites per axis of the churn grid. The
// band is deliberate: below 24 the stuck population is small enough that
// the engine's per-round graph upkeep rivals what carrying saves, and
// past about 36 that upkeep — BeginRound touches every live edge —
// erodes the carried savings again. Either side sinks the speedup
// toward the noise floor.
var ChurnGridSizes = []int{24, 28, 32}

// churnMode labels the two entries of each sweep point.
const (
	churnScratch     = "scratch"
	churnIncremental = "incremental"
)

// runIncremental drives the churn workload through both round paths.
func runIncremental(ctx context.Context, opt Options) (*Series, error) {
	series := &Series{Experiment: ExpIncremental, Figure: "Engine bench", XLabel: "workers m"}
	for _, g := range ChurnGridSizes {
		gs := opt.scaled(g)
		if gs < 2 {
			gs = 2
		}
		churn := workload.NewChurn(workload.ChurnParams{GridSize: gs, Seed: opt.Seed})
		pt := Point{Label: fmt.Sprintf("%d", churn.MaxWorkers(opt.Rounds))}
		var scratch, incr *batch.Result
		var err error
		if !opt.Incremental {
			var res SolverResult
			scratch, res, err = runChurn(ctx, opt, churn, false)
			if err != nil {
				return series, err
			}
			pt.Results = append(pt.Results, res)
		}
		var res SolverResult
		incr, res, err = runChurn(ctx, opt, churn, true)
		if err != nil {
			return series, err
		}
		pt.Results = append(pt.Results, res)
		pt.Upper = incr.UpperTotal
		if scratch != nil {
			if math.Float64bits(scratch.TotalScore) != math.Float64bits(incr.TotalScore) ||
				math.Float64bits(scratch.UpperTotal) != math.Float64bits(incr.UpperTotal) {
				return series, fmt.Errorf("harness: grid %d: incremental total score %v/upper %v diverge from scratch %v/%v — engine equivalence broken",
					gs, incr.TotalScore, incr.UpperTotal, scratch.TotalScore, scratch.UpperTotal)
			}
			for i := range scratch.Batches {
				if math.Float64bits(scratch.Batches[i].Score) != math.Float64bits(incr.Batches[i].Score) {
					return series, fmt.Errorf("harness: grid %d round %d: incremental score %v diverges from scratch %v",
						gs, i, incr.Batches[i].Score, scratch.Batches[i].Score)
				}
			}
		}
		series.Points = append(series.Points, pt)
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "point m=%s done\n", pt.Label)
		}
	}
	return series, nil
}

// runChurn runs one batch simulation over the churn workload; each round's
// elapsed time is one latency sample.
func runChurn(ctx context.Context, opt Options, churn *workload.Churn, incremental bool) (*batch.Result, SolverResult, error) {
	name := churnScratch
	if incremental {
		name = churnIncremental
	}
	res := SolverResult{Name: name}
	// GT is the representative solver (the paper's primary); restricting
	// the run to exactly one solver via -solvers overrides it.
	solverName := "GT"
	if len(opt.Solvers) == 1 {
		solverName = opt.Solvers[0]
	}
	solver, err := assign.ByName(solverName, opt.Seed)
	if err != nil {
		return nil, res, err
	}
	src := &batch.GeneratorSource{
		WorkersFn: churn.WorkersAt,
		TasksFn:   churn.TasksAt,
		Model:     coop.Synthetic{N: churn.MaxWorkers(opt.Rounds), Seed: uint64(opt.Seed)},
	}
	cfg := batch.Config{
		Solver:      solver,
		Rounds:      opt.Rounds,
		B:           churn.B(),
		Seed:        opt.Seed,
		Metrics:     opt.Metrics,
		RoundBudget: opt.Budget,
		Incremental: incremental,
	}
	r, err := batch.Run(ctx, cfg, src)
	if err != nil {
		return nil, res, fmt.Errorf("harness: churn %s: %w", name, err)
	}
	warm := 0
	if len(r.Batches) > 1 {
		warm = 1
	}
	for bi, b := range r.Batches {
		// Round latency is the full pipeline: graph maintenance (candidate
		// building and partitioning, or the engine's BeginRound/Add/Plan)
		// plus the solve. Round 0 is the cold start — both modes build and
		// solve the full initial population from scratch, which is exactly
		// the work the engine exists to avoid repeating — so it warms up the
		// run and is excluded from the latency samples.
		elapsed := (b.Build + b.Elapsed).Seconds()
		res.Score += b.Score
		if bi == 0 && warm == 1 {
			continue
		}
		res.BatchSeconds += elapsed / float64(len(r.Batches)-warm)
		res.LatencySeconds = append(res.LatencySeconds, elapsed)
	}
	return r, res, nil
}

package batch

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"casc/internal/assign"
	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/metrics"
	"casc/internal/model"
	"casc/internal/resilience"
	"casc/internal/stats"
	"casc/internal/trace"
)

// uniformSource generates fresh workers and tasks every round over a fixed
// synthetic quality universe.
func uniformSource(perRoundWorkers, perRoundTasks, rounds int, seed int64) *GeneratorSource {
	universe := perRoundWorkers * rounds
	return &GeneratorSource{
		Model: coop.Synthetic{N: universe, Seed: uint64(seed)},
		WorkersFn: func(round int) []model.Worker {
			r := stats.NewRNG(seed + int64(round))
			ws := make([]model.Worker, perRoundWorkers)
			for i := range ws {
				ws[i] = model.Worker{
					ID:     round*perRoundWorkers + i,
					Loc:    geo.Pt(r.Float64(), r.Float64()),
					Speed:  0.02 + r.Float64()*0.06,
					Radius: 0.08 + r.Float64()*0.12,
					Arrive: float64(round),
				}
			}
			return ws
		},
		TasksFn: func(round int) []model.Task {
			r := stats.NewRNG(seed + 1000 + int64(round))
			ts := make([]model.Task, perRoundTasks)
			for j := range ts {
				ts[j] = model.Task{
					ID:       round*perRoundTasks + j,
					Loc:      geo.Pt(r.Float64(), r.Float64()),
					Capacity: 4,
					Created:  float64(round),
					Deadline: float64(round) + 3,
				}
			}
			return ts
		},
	}
}

func TestRunBasics(t *testing.T) {
	src := uniformSource(60, 15, 5, 1)
	res, err := Run(context.Background(), Config{
		Solver: assign.NewTPG(),
		Rounds: 5,
		B:      3,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 5 {
		t.Fatalf("ran %d batches", len(res.Batches))
	}
	if res.TotalScore <= 0 {
		t.Error("no cooperation score accumulated")
	}
	if res.DispatchedTasks == 0 {
		t.Error("no tasks dispatched")
	}
	var sum float64
	disp := 0
	for i, b := range res.Batches {
		if b.Round != i {
			t.Errorf("batch %d has round %d", i, b.Round)
		}
		if b.Score < 0 || b.AssignedWorkers < 0 {
			t.Errorf("batch %d has negative stats", i)
		}
		if b.AssignedWorkers > 0 && b.DispatchedTasks == 0 {
			t.Errorf("batch %d assigned workers without dispatching tasks", i)
		}
		sum += b.Score
		disp += b.DispatchedTasks
	}
	if sum != res.TotalScore || disp != res.DispatchedTasks {
		t.Error("aggregates inconsistent with per-batch stats")
	}
	if res.UpperTotal < res.TotalScore-1e-9 {
		t.Errorf("UPPER total %v below achieved %v", res.UpperTotal, res.TotalScore)
	}
}

func TestBusyWorkersAreUnavailable(t *testing.T) {
	// One round's dispatched workers must not be available in the next
	// round while still busy (travel + service time spans > 1 interval).
	src := uniformSource(40, 10, 3, 2)
	res, err := Run(context.Background(), Config{
		Solver:          assign.NewTPG(),
		Rounds:          3,
		B:               3,
		ServiceDuration: 10, // busy for the whole simulation once dispatched
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Batches); i++ {
		prev, cur := res.Batches[i-1], res.Batches[i]
		// Workers available = previous leftover + 40 new arrivals. Leftover
		// excludes everyone dispatched earlier.
		wantMax := prev.AvailableWorkers - prev.AssignedWorkers + 40
		if cur.AvailableWorkers > wantMax {
			t.Errorf("round %d: %d workers available, want ≤ %d (dispatched workers leaked back)",
				i, cur.AvailableWorkers, wantMax)
		}
	}
}

func TestWorkersReturnAfterService(t *testing.T) {
	// With a short service duration workers must come back to the pool.
	src := uniformSource(40, 10, 4, 3)
	cfgShort := Config{Solver: assign.NewTPG(), Rounds: 4, B: 3, ServiceDuration: 0.01}
	short, err := Run(context.Background(), cfgShort, src)
	if err != nil {
		t.Fatal(err)
	}
	srcLong := uniformSource(40, 10, 4, 3)
	long, err := Run(context.Background(), Config{Solver: assign.NewTPG(), Rounds: 4, B: 3, ServiceDuration: 50}, srcLong)
	if err != nil {
		t.Fatal(err)
	}
	// Short service ⇒ strictly more worker availability in later rounds.
	shortAvail, longAvail := 0, 0
	for i := 1; i < 4; i++ {
		shortAvail += short.Batches[i].AvailableWorkers
		longAvail += long.Batches[i].AvailableWorkers
	}
	if shortAvail <= longAvail {
		t.Errorf("short-service availability %d not above long-service %d", shortAvail, longAvail)
	}
}

func TestExpiredTasksCounted(t *testing.T) {
	// Tasks nobody can reach must eventually expire.
	src := &GeneratorSource{
		Model: coop.Synthetic{N: 10, Seed: 1},
		WorkersFn: func(round int) []model.Worker {
			if round > 0 {
				return nil
			}
			ws := make([]model.Worker, 5)
			for i := range ws {
				ws[i] = model.Worker{ID: i, Loc: geo.Pt(0.05, 0.05), Speed: 0.01, Radius: 0.01}
			}
			return ws
		},
		TasksFn: func(round int) []model.Task {
			if round > 0 {
				return nil
			}
			return []model.Task{{ID: 0, Loc: geo.Pt(0.9, 0.9), Capacity: 3, Created: 0, Deadline: 2}}
		},
	}
	res, err := Run(context.Background(), Config{Solver: assign.NewTPG(), Rounds: 5, B: 3}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpiredTasks != 1 {
		t.Errorf("expired tasks = %d, want 1", res.ExpiredTasks)
	}
	if res.DispatchedTasks != 0 || res.TotalScore != 0 {
		t.Error("unreachable task was dispatched")
	}
}

func TestUnderfilledTasksRetryNextRound(t *testing.T) {
	// Two workers in round 0 (below B=3), a third arrives in round 1; the
	// task must be dispatched in round 1.
	mkWorker := func(id int, arrive float64) model.Worker {
		return model.Worker{ID: id, Loc: geo.Pt(0.5, 0.5), Speed: 0.2, Radius: 0.5, Arrive: arrive}
	}
	q := coop.NewMatrix(3)
	q.Set(0, 1, 0.9)
	q.Set(0, 2, 0.9)
	q.Set(1, 2, 0.9)
	src := &GeneratorSource{
		Model: q,
		WorkersFn: func(round int) []model.Worker {
			switch round {
			case 0:
				return []model.Worker{mkWorker(0, 0), mkWorker(1, 0)}
			case 1:
				return []model.Worker{mkWorker(2, 1)}
			}
			return nil
		},
		TasksFn: func(round int) []model.Task {
			if round == 0 {
				return []model.Task{{ID: 0, Loc: geo.Pt(0.5, 0.5), Capacity: 3, Created: 0, Deadline: 10}}
			}
			return nil
		},
	}
	res, err := Run(context.Background(), Config{Solver: assign.NewTPG(), Rounds: 3, B: 3}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches[0].DispatchedTasks != 0 {
		t.Error("task dispatched below B in round 0")
	}
	if res.Batches[1].DispatchedTasks != 1 {
		t.Errorf("task not dispatched in round 1: %+v", res.Batches[1])
	}
	if res.TotalScore <= 0 {
		t.Error("no score for the dispatched task")
	}
}

func TestConfigValidation(t *testing.T) {
	src := uniformSource(10, 5, 1, 4)
	cases := map[string]Config{
		"nil solver": {Rounds: 1, B: 3},
		"no rounds":  {Solver: assign.NewTPG(), B: 3},
		"bad B":      {Solver: assign.NewTPG(), Rounds: 1, B: 1},
	}
	for name, cfg := range cases {
		if _, err := Run(context.Background(), cfg, src); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Task capacity below B is rejected at runtime.
	bad := &GeneratorSource{
		Model:     coop.Synthetic{N: 5, Seed: 1},
		WorkersFn: func(int) []model.Worker { return nil },
		TasksFn: func(round int) []model.Task {
			return []model.Task{{ID: 0, Capacity: 2, Deadline: 5}}
		},
	}
	if _, err := Run(context.Background(), Config{Solver: assign.NewTPG(), Rounds: 1, B: 3}, bad); err == nil {
		t.Error("capacity below B accepted")
	}
}

func TestContextCancelled(t *testing.T) {
	src := uniformSource(30, 10, 5, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{Solver: assign.NewTPG(), Rounds: 5, B: 3}, src); err == nil {
		t.Error("cancelled context not reported")
	}
}

func TestGTOutperformsRandInSimulation(t *testing.T) {
	run := func(s assign.Solver, seed int64) float64 {
		src := uniformSource(80, 20, 4, seed)
		res, err := Run(context.Background(), Config{Solver: s, Rounds: 4, B: 3}, src)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalScore
	}
	gt := run(assign.NewGT(assign.GTOptions{}), 6)
	rnd := run(assign.NewRandom(1), 6)
	if gt <= rnd {
		t.Errorf("GT total %v not above RAND %v in end-to-end simulation", gt, rnd)
	}
}

func TestRoundRobinIDs(t *testing.T) {
	ws := []model.Worker{{ID: 99}, {ID: 98}}
	out := RoundRobinIDs(ws, 2, 2, 5)
	if out[0].ID != 4 || out[1].ID != 0 {
		t.Errorf("IDs = %d,%d want 4,0", out[0].ID, out[1].ID)
	}
	if ws[0].ID != 99 {
		t.Error("input mutated")
	}
}

func TestDerivedMetrics(t *testing.T) {
	src := uniformSource(60, 15, 4, 8)
	res, err := Run(context.Background(), Config{Solver: assign.NewTPG(), Rounds: 4, B: 3}, src)
	if err != nil {
		t.Fatal(err)
	}
	if u := res.WorkerUtilization(); u < 0 || u > 1 {
		t.Errorf("utilization %v outside [0,1]", u)
	}
	if w := res.TaskWaitMean(); w < 0 {
		t.Errorf("negative mean wait %v", w)
	}
	if dr := res.DispatchRate(); dr < 0 || dr > 1 {
		t.Errorf("dispatch rate %v outside [0,1]", dr)
	}
	// Empty result: all metrics zero.
	empty := &Result{}
	if empty.WorkerUtilization() != 0 || empty.TaskWaitMean() != 0 || empty.DispatchRate() != 0 {
		t.Error("empty result metrics nonzero")
	}
}

func TestTaskWaitAccountsForRetries(t *testing.T) {
	// The task from TestUnderfilledTasksRetryNextRound waits exactly one
	// batch interval.
	mkWorker := func(id int, arrive float64) model.Worker {
		return model.Worker{ID: id, Loc: geo.Pt(0.5, 0.5), Speed: 0.2, Radius: 0.5, Arrive: arrive}
	}
	q := coop.NewMatrix(3)
	q.Set(0, 1, 0.9)
	q.Set(0, 2, 0.9)
	q.Set(1, 2, 0.9)
	src := &GeneratorSource{
		Model: q,
		WorkersFn: func(round int) []model.Worker {
			switch round {
			case 0:
				return []model.Worker{mkWorker(0, 0), mkWorker(1, 0)}
			case 1:
				return []model.Worker{mkWorker(2, 1)}
			}
			return nil
		},
		TasksFn: func(round int) []model.Task {
			if round == 0 {
				return []model.Task{{ID: 0, Loc: geo.Pt(0.5, 0.5), Capacity: 3, Created: 0, Deadline: 10}}
			}
			return nil
		},
	}
	res, err := Run(context.Background(), Config{Solver: assign.NewTPG(), Rounds: 3, B: 3}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.DispatchedTasks != 1 {
		t.Fatalf("dispatched %d", res.DispatchedTasks)
	}
	if w := res.TaskWaitMean(); w != 1 {
		t.Errorf("mean wait %v, want 1 (one retry round)", w)
	}
}

func TestTraceRecording(t *testing.T) {
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	src := uniformSource(60, 15, 3, 9)
	res, err := Run(context.Background(), Config{
		Solver: assign.NewTPG(), Rounds: 3, B: 3, Trace: tw, TraceRun: "test-run",
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("traced %d records, want 3", len(recs))
	}
	if err := trace.Validate(recs); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	sums := trace.Summarize(recs)
	if len(sums) != 1 || sums[0].Run != "test-run" || sums[0].Solver != "TPG" {
		t.Fatalf("summary: %+v", sums)
	}
	if math.Abs(sums[0].TotalScore-res.TotalScore) > 1e-9 {
		t.Errorf("trace score %v, simulation %v", sums[0].TotalScore, res.TotalScore)
	}
	pairs := 0
	for _, b := range res.Batches {
		pairs += b.AssignedWorkers
	}
	if sums[0].DispatchedPairs != pairs {
		t.Errorf("trace pairs %d, simulation %d", sums[0].DispatchedPairs, pairs)
	}
}

func TestWorkerPatience(t *testing.T) {
	// A lone worker can never form a B=3 group; with Patience=2 it departs
	// after two idle batches.
	src := &GeneratorSource{
		Model: coop.Synthetic{N: 1, Seed: 1},
		WorkersFn: func(round int) []model.Worker {
			if round == 0 {
				return []model.Worker{{ID: 0, Loc: geo.Pt(0.5, 0.5), Speed: 0.1, Radius: 0.3}}
			}
			return nil
		},
		TasksFn: func(round int) []model.Task { return nil },
	}
	res, err := Run(context.Background(), Config{
		Solver: assign.NewTPG(), Rounds: 4, B: 3, Patience: 2,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.DepartedWorkers != 1 {
		t.Fatalf("departed = %d, want 1", res.DepartedWorkers)
	}
	if res.Batches[0].AvailableWorkers != 1 || res.Batches[1].AvailableWorkers != 1 {
		t.Error("worker should wait through its patience window")
	}
	if res.Batches[2].AvailableWorkers != 0 {
		t.Errorf("worker still present after patience expired: %+v", res.Batches[2])
	}
	// Without patience the worker waits forever.
	res2, err := Run(context.Background(), Config{
		Solver: assign.NewTPG(), Rounds: 4, B: 3,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res2.DepartedWorkers != 0 || res2.Batches[3].AvailableWorkers != 1 {
		t.Error("patience=0 should keep workers indefinitely")
	}
}

func TestPatienceReducesScoreButModelsChurn(t *testing.T) {
	// Tight patience can only reduce (or keep) the achievable score: fewer
	// workers accumulate.
	srcA := uniformSource(40, 15, 5, 21)
	patient, err := Run(context.Background(), Config{Solver: assign.NewTPG(), Rounds: 5, B: 3}, srcA)
	if err != nil {
		t.Fatal(err)
	}
	srcB := uniformSource(40, 15, 5, 21)
	churn, err := Run(context.Background(), Config{Solver: assign.NewTPG(), Rounds: 5, B: 3, Patience: 1}, srcB)
	if err != nil {
		t.Fatal(err)
	}
	if churn.TotalScore > patient.TotalScore+1e-9 {
		t.Errorf("churn run scored %v above patient run %v", churn.TotalScore, patient.TotalScore)
	}
	if churn.DepartedWorkers == 0 {
		t.Error("patience=1 departed nobody")
	}
}

func TestParallelismMatchesMonolithic(t *testing.T) {
	run := func(parallelism int) *Result {
		t.Helper()
		res, err := Run(context.Background(), Config{
			Solver:      assign.NewTPG(),
			Rounds:      4,
			B:           3,
			Parallelism: parallelism,
			Seed:        31,
		}, uniformSource(60, 20, 4, 31))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mono := run(0)
	for _, parallelism := range []int{-1, 1, 4} {
		par := run(parallelism)
		if par.TotalScore != mono.TotalScore {
			t.Errorf("Parallelism=%d: score %v != monolithic %v", parallelism, par.TotalScore, mono.TotalScore)
		}
		if par.DispatchedTasks != mono.DispatchedTasks {
			t.Errorf("Parallelism=%d: dispatched %d != monolithic %d", parallelism, par.DispatchedTasks, mono.DispatchedTasks)
		}
	}
}

// TestBudgetedRoundsCompleteUnderFullChaos is the engine-level version of
// the acceptance criterion: with 100% rung-failure injection and a 50ms
// round budget, every round completes on the feasibility floor, tasks
// carry over as pending, and the ladder fallback counter moves.
func TestBudgetedRoundsCompleteUnderFullChaos(t *testing.T) {
	src := uniformSource(60, 15, 5, 3)
	reg := metrics.NewRegistry()
	res, err := Run(context.Background(), Config{
		Solver:      assign.NewTPG(),
		Rounds:      5,
		B:           3,
		Metrics:     reg,
		Seed:        7,
		RoundBudget: 50 * time.Millisecond,
		Chaos:       &resilience.ChaosConfig{FailRate: 1},
	}, src)
	if err != nil {
		t.Fatalf("Run under full chaos: %v", err)
	}
	if len(res.Batches) != 5 {
		t.Fatalf("completed %d rounds, want 5", len(res.Batches))
	}
	if res.DispatchedTasks != 0 || res.TotalScore != 0 {
		t.Fatalf("full chaos dispatched %d tasks (score %v); every rung should fail",
			res.DispatchedTasks, res.TotalScore)
	}
	var fallbacks uint64
	for _, rung := range []string{"TPG", "RAND"} {
		fallbacks += reg.Counter(resilience.MetricLadderFallbacks, "",
			metrics.L("solver", "TPG"), metrics.L("rung", rung),
			metrics.L("reason", resilience.ReasonError)).Value()
	}
	if fallbacks == 0 {
		t.Error("casc_ladder_fallback_total stayed 0 under full chaos")
	}
	// Undispatched tasks carried over until their deadlines: 15 tasks per
	// round, 3-round deadlines, so rounds 0-1 tasks expired by round 4.
	if res.ExpiredTasks == 0 {
		t.Error("no tasks expired; carry-over semantics not exercised")
	}
}

// TestBudgetedRoundsMatchUnbudgetedWhenFast proves the ladder is invisible
// when the primary rung finishes in budget: identical result to a plain
// run, round for round.
func TestBudgetedRoundsMatchUnbudgetedWhenFast(t *testing.T) {
	plain, err := Run(context.Background(), Config{
		Solver: assign.NewTPG(), Rounds: 5, B: 3,
	}, uniformSource(60, 15, 5, 4))
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := Run(context.Background(), Config{
		Solver: assign.NewTPG(), Rounds: 5, B: 3,
		RoundBudget: time.Hour,
	}, uniformSource(60, 15, 5, 4))
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalScore != budgeted.TotalScore || plain.DispatchedTasks != budgeted.DispatchedTasks {
		t.Fatalf("budgeted run diverged: score %v vs %v, dispatched %d vs %d",
			budgeted.TotalScore, plain.TotalScore, budgeted.DispatchedTasks, plain.DispatchedTasks)
	}
}

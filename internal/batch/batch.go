// Package batch implements the batch-based framework of §III (Algorithm 1):
// over a time interval Φ the platform periodically gathers the available
// spatial tasks and cooperation-aware workers, retrieves each worker's
// valid tasks through the spatial index, delegates the batch to a solver
// (TPG, GT, ...), and dispatches the resulting worker-and-task pairs.
//
// The simulator tracks worker availability across batches: workers
// committed to a task travel to it, perform it for its service duration,
// and rejoin the pool at the task's location. Tasks that fail to attract at
// least B workers stay available until their deadlines pass; tasks assigned
// fewer than B workers in a batch are not dispatched (their revenue would
// be zero), so those workers also stay available — matching the paper's
// retry semantics for "tasks that are not assigned with enough workers
// during the last batch".
package batch

import (
	"context"
	"fmt"
	"time"

	"casc/internal/assign"
	"casc/internal/coop"
	"casc/internal/incremental"
	"casc/internal/metrics"
	"casc/internal/model"
	"casc/internal/resilience"
	"casc/internal/trace"
)

// Metric names recorded by the batch engine when Config.Metrics is set.
const (
	MetricRounds          = "casc_batch_rounds_total"
	MetricNoopRounds      = "casc_batch_noop_rounds_total"
	MetricDispatchedTasks = "casc_batch_dispatched_tasks_total"
	MetricDispatchedPairs = "casc_batch_dispatched_pairs_total"
	MetricExpiredTasks    = "casc_batch_expired_tasks_total"
	MetricDepartedWorkers = "casc_batch_departed_workers_total"
	MetricRoundScore      = "casc_batch_score"
	MetricPendingTasks    = "casc_batch_pending_tasks"
	MetricAvailWorkers    = "casc_batch_available_workers"
	MetricBusyWorkers     = "casc_batch_busy_workers"
)

// engineMetrics holds the resolved metric handles for one Run.
type engineMetrics struct {
	rounds     *metrics.Counter
	noopRounds *metrics.Counter
	dispTasks  *metrics.Counter
	dispPairs  *metrics.Counter
	expired    *metrics.Counter
	departed   *metrics.Counter
	roundScore *metrics.Histogram
	pending    *metrics.Gauge
	avail      *metrics.Gauge
	busy       *metrics.Gauge
}

func newEngineMetrics(reg *metrics.Registry, solver string) *engineMetrics {
	if reg == nil {
		return nil
	}
	lbl := metrics.L("solver", solver)
	return &engineMetrics{
		rounds:     reg.Counter(MetricRounds, "Batch rounds simulated.", lbl),
		noopRounds: reg.Counter(MetricNoopRounds, "Rounds short-circuited as provably no-op.", lbl),
		dispTasks:  reg.Counter(MetricDispatchedTasks, "Tasks dispatched with ≥ B workers.", lbl),
		dispPairs:  reg.Counter(MetricDispatchedPairs, "Worker-and-task pairs dispatched.", lbl),
		expired:    reg.Counter(MetricExpiredTasks, "Tasks dropped past their deadline.", lbl),
		departed:   reg.Counter(MetricDepartedWorkers, "Workers who ran out of patience.", lbl),
		roundScore: reg.Histogram(MetricRoundScore, "Cooperation score per batch round.", metrics.ScoreBuckets(), lbl),
		pending:    reg.Gauge(MetricPendingTasks, "Tasks awaiting assignment after the last round.", lbl),
		avail:      reg.Gauge(MetricAvailWorkers, "Workers available after the last round.", lbl),
		busy:       reg.Gauge(MetricBusyWorkers, "Workers travelling or performing after the last round.", lbl),
	}
}

// Source feeds workers and tasks into the simulation. Rounds are numbered
// from 0; round r starts at time Config.Interval * r.
type Source interface {
	// WorkersAt returns the workers that newly arrive at round r. Worker IDs
	// must be globally unique and index into Quality().
	WorkersAt(round int) []model.Worker
	// TasksAt returns the tasks that are newly created at round r.
	TasksAt(round int) []model.Task
	// Quality is the global cooperation model, indexed by worker ID.
	Quality() model.QualityModel
}

// Config drives a simulation.
type Config struct {
	// Solver performs each batch assignment.
	Solver assign.Solver
	// Rounds is the number of batches (the paper's R; Table II uses 10).
	Rounds int
	// Interval is the wall-clock length of one batch (default 1.0).
	Interval float64
	// B is the least required number of workers per task.
	B int
	// ServiceDuration is how long a dispatched task takes once all its
	// workers arrive (default 1.0).
	ServiceDuration float64
	// Index selects the spatial index (default R-tree).
	Index model.IndexKind
	// Patience, when positive, makes workers leave the platform after
	// sitting unassigned for that many consecutive batches — real platforms
	// lose idle workers. Zero means workers wait forever (the paper's
	// implicit assumption).
	Patience int
	// Trace, when non-nil, receives one record per batch (the dispatched
	// pairs carry external worker/task IDs).
	Trace *trace.Writer
	// TraceRun names the run in trace records (default: the solver name).
	TraceRun string
	// Metrics, when non-nil, receives structured instrumentation: per-round
	// gauges (pending tasks, available/busy workers), counters (rounds,
	// dispatched pairs/tasks, expired tasks, departed workers), the
	// per-round score histogram, and — via assign.Instrument — the
	// solver's wall-time/score histograms and internal counters. This is
	// the structured replacement for reading BatchStats.Elapsed by hand;
	// the field stays for backward compatibility.
	Metrics *metrics.Registry
	// Parallelism, when non-zero, wraps Solver in assign.NewParallel so
	// every batch instance is decomposed into the connected components of
	// its validity graph and the components are solved concurrently:
	// positive values bound the worker pool, negative values use
	// runtime.GOMAXPROCS(0). Zero keeps the monolithic solve.
	Parallelism int
	// Seed feeds per-component seed derivation under Parallelism (only
	// randomized solvers notice) and the chaos fault schedule under Chaos.
	Seed int64
	// RoundBudget, when positive, bounds each round's solve wall time by
	// wrapping the solver in a resilience.Ladder over the default anytime
	// chain (Solver → TPG → RAND): a round whose primary solve overruns
	// the budget falls through to cheaper rungs and, at worst, to the
	// empty feasibility floor, so the batch loop keeps its cadence. Tasks
	// left unassigned by a degraded round simply stay pending and carry
	// over to the next round, exactly like tasks that failed to attract B
	// workers (§V deadline semantics).
	RoundBudget time.Duration
	// Chaos, when non-nil, wraps every ladder rung in seeded fault
	// injection (see resilience.ChaosConfig) — rehearsal mode for the
	// ladder's fallback paths. Setting Chaos forces the ladder on even
	// with a zero RoundBudget. The Seed field above drives the schedule;
	// ChaosConfig.Seed is overridden per rung.
	Chaos *resilience.ChaosConfig
	// Observer, when non-nil, receives every round after the solved
	// assignment has been validated and the round's trace record written,
	// outside the timed build/solve windows — the hook behind scenario
	// decision tracing (SLO accounting, counterfactual alternate solves).
	// in and a are nil on short-circuited no-op rounds (nothing was solved
	// by construction). The observer must not mutate in or a; a returned
	// error aborts the run.
	Observer func(ctx context.Context, round int, now float64, in *model.Instance, a *model.Assignment) error
	// Incremental replaces the per-round rebuild-and-solve with the
	// persistent cross-round engine of internal/incremental: the candidate
	// graph is maintained under churn, only components touched since the
	// previous round are re-solved (warm-starting the solver), and clean
	// components carry their assignment forward. For deterministic solvers
	// (TPG, GT, GT+LUB) every round's score and assignment is bitwise
	// identical to the default path.
	Incremental bool
	// Predict configures the incremental engine's arrival predictor (only
	// read when Incremental is set; zero value disables prediction).
	Predict incremental.PredictConfig
}

// BatchStats records one batch of the simulation.
type BatchStats struct {
	Round            int
	Time             float64
	AvailableWorkers int
	AvailableTasks   int
	ValidPairs       int
	AssignedWorkers  int
	DispatchedTasks  int
	Score            float64
	// Build is the round's graph-maintenance time: aging and expiry
	// bookkeeping plus candidate building and partitioning (the persistent
	// engine's BeginRound/Add/Plan on the incremental path). Elapsed is the
	// solve proper; Build+Elapsed is the round's pipeline latency.
	Build   time.Duration
	Elapsed time.Duration
}

// Result aggregates a simulation.
type Result struct {
	Batches         []BatchStats
	TotalScore      float64
	DispatchedTasks int
	ExpiredTasks    int
	// UpperTotal sums the per-batch UPPER estimates (Equation 9).
	UpperTotal float64
	// TaskWaitTotal sums, over dispatched tasks, the time between creation
	// and the batch that dispatched them.
	TaskWaitTotal float64
	// DepartedWorkers counts workers who ran out of patience.
	DepartedWorkers int
}

// TaskWaitMean returns the mean wait (creation → dispatching batch) of the
// dispatched tasks, or 0 when none dispatched. Tasks dispatched in their
// creation round wait 0.
func (r *Result) TaskWaitMean() float64 {
	if r.DispatchedTasks == 0 {
		return 0
	}
	return r.TaskWaitTotal / float64(r.DispatchedTasks)
}

// WorkerUtilization returns the fraction of available worker-batches that
// ended up assigned: Σ assigned / Σ available over all batches.
func (r *Result) WorkerUtilization() float64 {
	assigned, avail := 0, 0
	for _, b := range r.Batches {
		assigned += b.AssignedWorkers
		avail += b.AvailableWorkers
	}
	if avail == 0 {
		return 0
	}
	return float64(assigned) / float64(avail)
}

// DispatchRate returns the fraction of concluded tasks (dispatched or
// expired) that were dispatched.
func (r *Result) DispatchRate() float64 {
	total := r.DispatchedTasks + r.ExpiredTasks
	if total == 0 {
		return 0
	}
	return float64(r.DispatchedTasks) / float64(total)
}

// pendingTask is a task waiting for assignment.
type pendingTask struct {
	task model.Task
}

// busyWorker is a worker performing a task.
type busyWorker struct {
	worker  model.Worker
	freeAt  float64
	locWhen model.Task // task whose location the worker ends at
}

// sim is one prepared simulation: the normalized config, the decorated
// solver stack, and the metric handles. Both round loops (the from-scratch
// default and the incremental engine) run off the same sim so dispatch,
// accounting, metrics, and tracing stay a single code path.
type sim struct {
	cfg     Config
	src     Source
	quality model.QualityModel
	solver  assign.Solver
	em      *engineMetrics
}

// newSim validates cfg and builds the solver stack exactly once:
// Parallel decomposition, the budget/chaos ladder, and instrumentation.
func newSim(cfg Config, src Source) (*sim, error) {
	if cfg.Solver == nil {
		return nil, fmt.Errorf("batch: nil solver")
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("batch: rounds = %d", cfg.Rounds)
	}
	if cfg.B < 2 {
		return nil, fmt.Errorf("batch: B = %d, want ≥ 2", cfg.B)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 1
	}
	if cfg.ServiceDuration <= 0 {
		cfg.ServiceDuration = 1
	}
	solver := cfg.Solver
	if cfg.Parallelism != 0 {
		workers := cfg.Parallelism
		if workers < 0 {
			workers = 0 // NewParallel resolves 0 to GOMAXPROCS
		}
		solver = assign.NewParallel(solver, assign.ParallelOptions{
			Workers: workers,
			Seed:    cfg.Seed,
			Metrics: cfg.Metrics,
		})
	}
	if cfg.RoundBudget > 0 || cfg.Chaos != nil {
		// The ladder wraps the (possibly parallel) solver as its primary
		// rung so the budget bounds the whole decomposed solve, not each
		// component; fallback rungs are monolithic but cheap.
		rungs := resilience.Chain(solver, cfg.Seed)
		if cfg.Chaos != nil {
			cc := *cfg.Chaos
			cc.Seed = cfg.Seed
			if cc.Metrics == nil {
				cc.Metrics = cfg.Metrics
			}
			rungs = resilience.WithChaos(rungs, cc)
		}
		ladder, err := resilience.NewLadder(resilience.Config{
			Budget:  cfg.RoundBudget,
			Metrics: cfg.Metrics,
		}, rungs...)
		if err != nil {
			return nil, err
		}
		solver = ladder
	}
	if cfg.Metrics != nil {
		solver = assign.Instrument(solver, cfg.Metrics)
	}
	return &sim{
		cfg:     cfg,
		src:     src,
		quality: src.Quality(),
		solver:  solver,
		em:      newEngineMetrics(cfg.Metrics, cfg.Solver.Name()),
	}, nil
}

// Run simulates Algorithm 1 for cfg.Rounds batches.
func Run(ctx context.Context, cfg Config, src Source) (*Result, error) {
	s, err := newSim(cfg, src)
	if err != nil {
		return nil, err
	}
	if s.cfg.Incremental {
		return s.runIncremental(ctx)
	}
	return s.run(ctx)
}

// run is the from-scratch round loop: every round rebuilds the instance,
// its candidate lists, and the solution from the live pool.
func (s *sim) run(ctx context.Context) (*Result, error) {
	cfg := s.cfg
	var (
		pool    []model.Worker // available workers
		idleFor []int          // consecutive unassigned batches per pool entry
		pending []pendingTask  // available tasks
		busy    []busyWorker
		res     = &Result{}
		prevVP  = -1 // previous round's valid-pair count; -1 = unknown
	)

	for round := 0; round < cfg.Rounds; round++ {
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		now := float64(round) * cfg.Interval
		expiredBefore, departedBefore := res.ExpiredTasks, res.DepartedWorkers

		// Sources are consulted exactly once per round, short-circuit or not.
		newWorkers := s.src.WorkersAt(round)
		newTasks := s.src.TasksAt(round)

		// No-op short-circuit: with zero churn (no frees, arrivals, or
		// expiries) and a previous round that had zero valid pairs with
		// every time gate already passed, this round provably reproduces
		// it — empty assignment, zero score, zero upper — so skip the
		// instance build and solve and run only the aging bookkeeping.
		// The time-gate scan is needed because a worker Arrive or task
		// Created in the future can validate pairs by time alone.
		if prevVP == 0 && len(newWorkers) == 0 && len(newTasks) == 0 &&
			quiescent(pool, pending, busy, now, now-cfg.Interval) {
			bs := BatchStats{
				Round:            round,
				Time:             now,
				AvailableWorkers: len(pool),
				AvailableTasks:   len(pending),
			}
			var nextPool []model.Worker
			var nextIdle []int
			for i, w := range pool {
				idle := idleFor[i] + 1
				if cfg.Patience > 0 && idle >= cfg.Patience {
					res.DepartedWorkers++
					continue
				}
				nextPool = append(nextPool, w)
				nextIdle = append(nextIdle, idle)
			}
			pool = nextPool
			idleFor = nextIdle
			res.Batches = append(res.Batches, bs)
			s.emitRound(&bs, res, expiredBefore, departedBefore, len(pending), len(pool), len(busy))
			if s.em != nil {
				s.em.noopRounds.Inc()
			}
			if err := s.traceRound(round, now, &bs, 0, 0, nil, nil); err != nil {
				return res, err
			}
			if err := s.observe(ctx, round, now, nil, nil); err != nil {
				return res, err
			}
			continue
		}

		// Release workers whose tasks finished (Algorithm 1: "workers that
		// have finished the previous assigned tasks").
		buildStart := time.Now()
		stillBusy := busy[:0]
		for _, b := range busy {
			if b.freeAt <= now {
				w := b.worker
				w.Loc = b.locWhen.Loc
				w.Arrive = b.freeAt
				pool = append(pool, w)
				idleFor = append(idleFor, 0)
			} else {
				stillBusy = append(stillBusy, b)
			}
		}
		busy = stillBusy

		// Drop expired tasks, admit arrivals.
		livePending := pending[:0]
		for _, p := range pending {
			if p.task.Deadline > now {
				livePending = append(livePending, p)
			} else {
				res.ExpiredTasks++
			}
		}
		pending = livePending
		for _, w := range newWorkers {
			pool = append(pool, w)
			idleFor = append(idleFor, 0)
		}
		for _, t := range newTasks {
			if t.Capacity < cfg.B {
				return nil, fmt.Errorf("batch: task %d capacity %d below B=%d", t.ID, t.Capacity, cfg.B)
			}
			pending = append(pending, pendingTask{task: t})
		}

		// Build the batch instance (Algorithm 1 lines 2-5).
		ids := make([]int, len(pool))
		in := &model.Instance{B: cfg.B, Now: now}
		for i, w := range pool {
			ids[i] = w.ID
			in.Workers = append(in.Workers, w)
		}
		for _, p := range pending {
			in.Tasks = append(in.Tasks, p.task)
		}
		in.Quality = coop.NewSubset(asCoopModel(s.quality), ids)
		in.BuildCandidates(cfg.Index)
		build := time.Since(buildStart)

		// Solve the batch (line 6).
		start := time.Now()
		a, err := s.solver.Solve(ctx, in)
		elapsed := time.Since(start)
		if err != nil {
			return res, fmt.Errorf("batch: round %d: %w", round, err)
		}
		if err := a.Validate(in); err != nil {
			return res, fmt.Errorf("batch: round %d solver produced invalid assignment: %w", round, err)
		}

		// Dispatch (lines 7-8): only groups reaching B perform the task.
		bs := BatchStats{
			Round:            round,
			Time:             now,
			AvailableWorkers: len(pool),
			AvailableTasks:   len(pending),
			ValidPairs:       in.NumValidPairs(),
			Build:            build,
			Elapsed:          elapsed,
		}
		dispatchedWorker, dispatchedTask := s.dispatch(in, a, now, &bs, &busy, res)
		batchUpper := assign.Upper(in)
		res.UpperTotal += batchUpper

		// Rebuild the pool and pending lists; undispatched workers lose
		// patience and may depart.
		var nextPool []model.Worker
		var nextIdle []int
		for i, w := range pool {
			if dispatchedWorker[i] {
				continue
			}
			idle := idleFor[i] + 1
			if cfg.Patience > 0 && idle >= cfg.Patience {
				res.DepartedWorkers++
				continue
			}
			nextPool = append(nextPool, w)
			nextIdle = append(nextIdle, idle)
		}
		pool = nextPool
		idleFor = nextIdle
		var nextPending []pendingTask
		for i, p := range pending {
			if !dispatchedTask[i] {
				nextPending = append(nextPending, p)
			}
		}
		pending = nextPending

		res.Batches = append(res.Batches, bs)
		res.TotalScore += bs.Score
		res.DispatchedTasks += bs.DispatchedTasks
		prevVP = bs.ValidPairs

		s.emitRound(&bs, res, expiredBefore, departedBefore, len(pending), len(pool), len(busy))
		if err := s.traceRound(round, now, &bs, batchUpper, float64(elapsed.Microseconds())/1000, in, a); err != nil {
			return res, err
		}
		if err := s.observe(ctx, round, now, in, a); err != nil {
			return res, err
		}
	}
	return res, nil
}

// observe invokes the configured round observer, if any.
func (s *sim) observe(ctx context.Context, round int, now float64, in *model.Instance, a *model.Assignment) error {
	if s.cfg.Observer == nil {
		return nil
	}
	if err := s.cfg.Observer(ctx, round, now, in, a); err != nil {
		return fmt.Errorf("batch: round %d observer: %w", round, err)
	}
	return nil
}

// quiescent reports whether the round can be short-circuited given zero
// churn: no busy worker frees, no pending task expires, and every time
// gate (worker arrival, task creation) had already passed at prevNow, the
// timestamp the previous zero-valid-pair verdict was computed at.
func quiescent(pool []model.Worker, pending []pendingTask, busy []busyWorker, now, prevNow float64) bool {
	for _, b := range busy {
		if b.freeAt <= now {
			return false
		}
	}
	for _, p := range pending {
		if p.task.Deadline <= now || p.task.Created > prevNow {
			return false
		}
	}
	for _, w := range pool {
		if w.Arrive > prevNow {
			return false
		}
	}
	return true
}

// dispatch applies the dispatch semantics of Algorithm 1 lines 7-8 to a
// solved round: every group reaching B performs its task, its workers go
// busy until all have arrived and the service completed. It fills bs and
// res and returns the dispatched worker/task position marks.
func (s *sim) dispatch(in *model.Instance, a *model.Assignment, now float64, bs *BatchStats, busy *[]busyWorker, res *Result) (dispatchedWorker, dispatchedTask []bool) {
	cfg := s.cfg
	dispatchedWorker = make([]bool, len(in.Workers))
	dispatchedTask = make([]bool, len(in.Tasks))
	for ti, ws := range a.TaskWorkers {
		if len(ws) < cfg.B {
			continue
		}
		task := in.Tasks[ti]
		// All workers must arrive before cooperation starts.
		arrival := now
		for _, wi := range ws {
			t := now + in.Workers[wi].Loc.Dist(task.Loc)/maxf(in.Workers[wi].Speed, 1e-9)
			if t > arrival {
				arrival = t
			}
		}
		freeAt := arrival + cfg.ServiceDuration
		for _, wi := range ws {
			dispatchedWorker[wi] = true
			*busy = append(*busy, busyWorker{worker: in.Workers[wi], freeAt: freeAt, locWhen: task})
		}
		dispatchedTask[ti] = true
		bs.DispatchedTasks++
		bs.AssignedWorkers += len(ws)
		bs.Score += in.GroupQuality(ws, task.Capacity)
		res.TaskWaitTotal += now - task.Created
	}
	return dispatchedWorker, dispatchedTask
}

// emitRound flushes the per-round metric series.
func (s *sim) emitRound(bs *BatchStats, res *Result, expiredBefore, departedBefore, pending, avail, busy int) {
	if s.em == nil {
		return
	}
	s.em.rounds.Inc()
	s.em.dispTasks.Add(uint64(bs.DispatchedTasks))
	s.em.dispPairs.Add(uint64(bs.AssignedWorkers))
	s.em.expired.Add(uint64(res.ExpiredTasks - expiredBefore))
	s.em.departed.Add(uint64(res.DepartedWorkers - departedBefore))
	s.em.roundScore.Observe(bs.Score)
	s.em.pending.Set(float64(pending))
	s.em.avail.Set(float64(avail))
	s.em.busy.Set(float64(busy))
}

// traceRound appends one trace record; in and a may be nil for rounds that
// were short-circuited (no pairs by construction).
func (s *sim) traceRound(round int, now float64, bs *BatchStats, upper, elapsedMS float64, in *model.Instance, a *model.Assignment) error {
	if s.cfg.Trace == nil {
		return nil
	}
	runName := s.cfg.TraceRun
	if runName == "" {
		runName = s.cfg.Solver.Name()
	}
	rec := trace.Record{
		Run:       runName,
		Round:     round,
		Time:      now,
		Solver:    s.cfg.Solver.Name(),
		Workers:   bs.AvailableWorkers,
		Tasks:     bs.AvailableTasks,
		Score:     bs.Score,
		Upper:     upper,
		ElapsedMS: elapsedMS,
	}
	if a != nil {
		for ti, ws := range a.TaskWorkers {
			if len(ws) < s.cfg.B {
				continue
			}
			for _, wi := range ws {
				rec.Pairs = append(rec.Pairs, model.Pair{
					Worker: in.Workers[wi].ID,
					Task:   in.Tasks[ti].ID,
				})
			}
		}
	}
	return s.cfg.Trace.Append(rec)
}

// runIncremental is the persistent-engine round loop: the incremental
// engine maintains the candidate graph and component partition across
// rounds, re-solves only the components touched since the previous round,
// and carries every clean component's assignment forward verbatim. Entity
// ordering, dispatch, and accounting replicate run exactly, so for
// deterministic solvers the two paths are bitwise interchangeable.
func (s *sim) runIncremental(ctx context.Context) (*Result, error) {
	cfg := s.cfg
	eng := incremental.New(incremental.Config{
		B:       cfg.B,
		Carry:   true,
		Seed:    cfg.Seed,
		Metrics: cfg.Metrics,
		Predict: cfg.Predict,
	})
	var (
		idleFor []int // aligned with the engine's worker order
		busy    []busyWorker
		res     = &Result{}
	)

	for round := 0; round < cfg.Rounds; round++ {
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		now := float64(round) * cfg.Interval
		expiredBefore, departedBefore := res.ExpiredTasks, res.DepartedWorkers

		// Sources are consulted outside the timed build window, as in run.
		newWorkers := s.src.WorkersAt(round)
		newTasks := s.src.TasksAt(round)

		// Expire tasks and re-check every candidate edge, then admit the
		// freed workers and the arrivals in the same order run grows its
		// pool: survivors (order preserved), frees in busy order, arrivals.
		buildStart := time.Now()
		res.ExpiredTasks += len(eng.BeginRound(now))
		stillBusy := busy[:0]
		for _, b := range busy {
			if b.freeAt <= now {
				w := b.worker
				w.Loc = b.locWhen.Loc
				w.Arrive = b.freeAt
				eng.AddWorker(w)
				idleFor = append(idleFor, 0)
			} else {
				stillBusy = append(stillBusy, b)
			}
		}
		busy = stillBusy
		for _, w := range newWorkers {
			eng.AddWorker(w)
			idleFor = append(idleFor, 0)
		}
		for _, t := range newTasks {
			if t.Capacity < cfg.B {
				return nil, fmt.Errorf("batch: task %d capacity %d below B=%d", t.ID, t.Capacity, cfg.B)
			}
			eng.AddTask(t)
		}

		// Plan the round and attach the quality model (a fixed function of
		// worker external IDs, which is what licenses carry and warm reuse).
		r := eng.Plan()
		in := r.In
		ids := make([]int, len(in.Workers))
		for i, w := range in.Workers {
			ids[i] = w.ID
		}
		in.Quality = coop.NewSubset(asCoopModel(s.quality), ids)
		build := time.Since(buildStart)

		start := time.Now()
		a, err := eng.Solve(ctx, s.solver)
		elapsed := time.Since(start)
		if err != nil {
			return res, fmt.Errorf("batch: round %d: %w", round, err)
		}
		if err := a.Validate(in); err != nil {
			return res, fmt.Errorf("batch: round %d solver produced invalid assignment: %w", round, err)
		}

		bs := BatchStats{
			Round:            round,
			Time:             now,
			AvailableWorkers: len(in.Workers),
			AvailableTasks:   len(in.Tasks),
			ValidPairs:       in.NumValidPairs(),
			Build:            build,
			Elapsed:          elapsed,
		}
		dispatchedWorker, dispatchedTask := s.dispatch(in, a, now, &bs, &busy, res)
		batchUpper := assign.Upper(in)
		res.UpperTotal += batchUpper

		// Dispatched workers leave the pool; the rest age and may depart.
		// The removal order (ascending positions) matches the engine's
		// order-preserving compaction, keeping idleFor aligned.
		var removeW, removeT []int
		var nextIdle []int
		for i := range in.Workers {
			if dispatchedWorker[i] {
				removeW = append(removeW, i)
				continue
			}
			idle := idleFor[i] + 1
			if cfg.Patience > 0 && idle >= cfg.Patience {
				res.DepartedWorkers++
				removeW = append(removeW, i)
				continue
			}
			nextIdle = append(nextIdle, idle)
		}
		idleFor = nextIdle
		for i := range in.Tasks {
			if dispatchedTask[i] {
				removeT = append(removeT, i)
			}
		}
		eng.Commit(a, removeW, removeT)

		res.Batches = append(res.Batches, bs)
		res.TotalScore += bs.Score
		res.DispatchedTasks += bs.DispatchedTasks

		s.emitRound(&bs, res, expiredBefore, departedBefore, eng.NumTasks(), eng.NumWorkers(), len(busy))
		if err := s.traceRound(round, now, &bs, batchUpper, float64(elapsed.Microseconds())/1000, in, a); err != nil {
			return res, err
		}
		if err := s.observe(ctx, round, now, in, a); err != nil {
			return res, err
		}
	}
	return res, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// asCoopModel adapts model.QualityModel to coop.Model (identical method
// sets; the indirection exists only because model must not import coop).
func asCoopModel(q model.QualityModel) coop.Model { return coopAdapter{q} }

type coopAdapter struct{ q model.QualityModel }

func (c coopAdapter) Quality(i, k int) float64 { return c.q.Quality(i, k) }
func (c coopAdapter) NumWorkers() int          { return c.q.NumWorkers() }

// GeneratorSource adapts per-round generator functions to Source.
type GeneratorSource struct {
	WorkersFn func(round int) []model.Worker
	TasksFn   func(round int) []model.Task
	Model     model.QualityModel
}

// WorkersAt implements Source.
func (g *GeneratorSource) WorkersAt(round int) []model.Worker {
	if g.WorkersFn == nil {
		return nil
	}
	return g.WorkersFn(round)
}

// TasksAt implements Source.
func (g *GeneratorSource) TasksAt(round int) []model.Task {
	if g.TasksFn == nil {
		return nil
	}
	return g.TasksFn(round)
}

// Quality implements Source.
func (g *GeneratorSource) Quality() model.QualityModel { return g.Model }

// RoundRobinIDs renumbers worker IDs across rounds so they stay unique and
// within the quality model's range: round r worker i gets ID
// (r*perRound + i) mod modelSize. Helper for synthetic sources whose
// quality model is defined over a fixed universe.
func RoundRobinIDs(ws []model.Worker, round, perRound, modelSize int) []model.Worker {
	out := make([]model.Worker, len(ws))
	for i, w := range ws {
		w.ID = (round*perRound + i) % modelSize
		out[i] = w
	}
	return out
}

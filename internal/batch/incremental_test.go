package batch

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"casc/internal/assign"
	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/incremental"
	"casc/internal/metrics"
	"casc/internal/model"
	"casc/internal/resilience"
	"casc/internal/stats"
	"casc/internal/trace"
)

// churnSource has a heavy wave of arrivals in the first few rounds, then a
// thin trickle over a large standing population — the workload the
// incremental engine is built for. Deadlines are long enough that stuck
// sub-B components persist for many rounds.
func churnSource(rounds int, seed int64) *GeneratorSource {
	const initialW, initialT, trickleW, trickleT = 300, 120, 6, 3
	universe := initialW + trickleW*rounds
	nextID := func(round, i, per, base int) int { return base + round*per + i }
	return &GeneratorSource{
		Model: coop.Synthetic{N: universe + 1, Seed: uint64(seed)},
		WorkersFn: func(round int) []model.Worker {
			n := trickleW
			if round == 0 {
				n = initialW
			}
			r := stats.NewRNG(seed + int64(round))
			ws := make([]model.Worker, n)
			for i := range ws {
				ws[i] = model.Worker{
					ID:     nextID(round, i, trickleW, 0) % universe,
					Loc:    geo.Pt(r.Float64(), r.Float64()),
					Speed:  0.02 + r.Float64()*0.06,
					Radius: 0.03 + r.Float64()*0.05,
					Arrive: float64(round),
				}
			}
			return ws
		},
		TasksFn: func(round int) []model.Task {
			n := trickleT
			if round == 0 {
				n = initialT
			}
			r := stats.NewRNG(seed + 1000 + int64(round))
			ts := make([]model.Task, n)
			for j := range ts {
				ts[j] = model.Task{
					ID:       round*trickleT + j,
					Loc:      geo.Pt(r.Float64(), r.Float64()),
					Capacity: 4,
					Created:  float64(round),
					Deadline: float64(round) + 2 + r.Float64()*8,
				}
			}
			return ts
		},
	}
}

// quietSource stops producing anything after the first rounds so the tail
// of the simulation exercises no-op rounds and mass expiry.
func quietSource(activeRounds, rounds int, seed int64) *GeneratorSource {
	inner := uniformSource(50, 12, rounds, seed)
	return &GeneratorSource{
		Model: inner.Model,
		WorkersFn: func(round int) []model.Worker {
			if round >= activeRounds {
				return nil
			}
			return inner.WorkersFn(round)
		},
		TasksFn: func(round int) []model.Task {
			if round >= activeRounds {
				return nil
			}
			return inner.TasksFn(round)
		},
	}
}

// runBoth runs the same config from scratch and incrementally, returning
// both results and decoded traces.
func runBoth(t *testing.T, cfg Config, src Source) (base, inc *Result, baseTr, incTr []trace.Record) {
	t.Helper()
	var baseBuf, incBuf bytes.Buffer

	c := cfg
	c.Incremental = false
	c.Trace = trace.NewWriter(&baseBuf)
	base, err := Run(context.Background(), c, src)
	if err != nil {
		t.Fatalf("from-scratch run: %v", err)
	}

	c = cfg
	c.Incremental = true
	c.Trace = trace.NewWriter(&incBuf)
	inc, err = Run(context.Background(), c, src)
	if err != nil {
		t.Fatalf("incremental run: %v", err)
	}

	baseTr, err = trace.Read(&baseBuf)
	if err != nil {
		t.Fatal(err)
	}
	incTr, err = trace.Read(&incBuf)
	if err != nil {
		t.Fatal(err)
	}
	return base, inc, baseTr, incTr
}

// assertBitwiseEqual requires the incremental run to reproduce the
// from-scratch run exactly: every per-round stat, every score bit, and
// every dispatched pair. Elapsed timing is the only tolerated difference.
func assertBitwiseEqual(t *testing.T, base, inc *Result, baseTr, incTr []trace.Record) {
	t.Helper()
	if len(base.Batches) != len(inc.Batches) {
		t.Fatalf("batch counts differ: %d vs %d", len(base.Batches), len(inc.Batches))
	}
	for i := range base.Batches {
		b, n := base.Batches[i], inc.Batches[i]
		if b.Round != n.Round || b.Time != n.Time ||
			b.AvailableWorkers != n.AvailableWorkers || b.AvailableTasks != n.AvailableTasks ||
			b.ValidPairs != n.ValidPairs || b.AssignedWorkers != n.AssignedWorkers ||
			b.DispatchedTasks != n.DispatchedTasks {
			t.Fatalf("round %d stats differ:\nfrom-scratch %+v\nincremental  %+v", i, b, n)
		}
		if math.Float64bits(b.Score) != math.Float64bits(n.Score) {
			t.Fatalf("round %d score differs bitwise: %v vs %v", i, b.Score, n.Score)
		}
	}
	if math.Float64bits(base.TotalScore) != math.Float64bits(inc.TotalScore) {
		t.Fatalf("total score differs bitwise: %v vs %v", base.TotalScore, inc.TotalScore)
	}
	if math.Float64bits(base.UpperTotal) != math.Float64bits(inc.UpperTotal) {
		t.Fatalf("upper total differs bitwise: %v vs %v", base.UpperTotal, inc.UpperTotal)
	}
	if math.Float64bits(base.TaskWaitTotal) != math.Float64bits(inc.TaskWaitTotal) {
		t.Fatalf("task wait differs bitwise: %v vs %v", base.TaskWaitTotal, inc.TaskWaitTotal)
	}
	if base.DispatchedTasks != inc.DispatchedTasks || base.ExpiredTasks != inc.ExpiredTasks ||
		base.DepartedWorkers != inc.DepartedWorkers {
		t.Fatalf("aggregates differ: from-scratch %+v incremental %+v", base, inc)
	}
	if len(baseTr) != len(incTr) {
		t.Fatalf("trace lengths differ: %d vs %d", len(baseTr), len(incTr))
	}
	for i := range baseTr {
		b, n := baseTr[i], incTr[i]
		if math.Float64bits(b.Upper) != math.Float64bits(n.Upper) {
			t.Fatalf("round %d upper differs bitwise: %v vs %v", i, b.Upper, n.Upper)
		}
		if len(b.Pairs) != len(n.Pairs) {
			t.Fatalf("round %d pair counts differ: %d vs %d", i, len(b.Pairs), len(n.Pairs))
		}
		for k := range b.Pairs {
			if b.Pairs[k] != n.Pairs[k] {
				t.Fatalf("round %d pair %d differs: %+v vs %+v (dispatch order must match)",
					i, k, b.Pairs[k], n.Pairs[k])
			}
		}
	}
}

// checkEquivalence runs cfg both ways and asserts bitwise equality.
func checkEquivalence(t *testing.T, cfg Config, src Source) {
	t.Helper()
	base, inc, baseTr, incTr := runBoth(t, cfg, src)
	assertBitwiseEqual(t, base, inc, baseTr, incTr)
}

func solversUnderTest() []assign.Solver {
	return []assign.Solver{
		assign.NewTPG(),
		assign.NewGT(assign.GTOptions{}),
		assign.NewGT(assign.GTOptions{LUB: true}),
	}
}

func TestIncrementalMatchesFromScratchChurn(t *testing.T) {
	for _, s := range solversUnderTest() {
		t.Run(s.Name(), func(t *testing.T) {
			src := churnSource(12, 7)
			cfg := Config{Solver: s, Rounds: 12, B: 3, ServiceDuration: 2}
			checkEquivalence(t, cfg, src)
		})
	}
}

func TestIncrementalMatchesFromScratchHeavyArrivals(t *testing.T) {
	for _, s := range solversUnderTest() {
		t.Run(s.Name(), func(t *testing.T) {
			src := uniformSource(80, 20, 8, 11)
			cfg := Config{Solver: s, Rounds: 8, B: 3}
			checkEquivalence(t, cfg, src)
		})
	}
}

func TestIncrementalMatchesFromScratchMassExpiryAndNoopTail(t *testing.T) {
	// After round 2 nothing arrives: the standing population drains through
	// dispatch and deadline expiry, and the tail rounds are no-ops (which
	// the default path short-circuits — equivalence must survive that too).
	for _, s := range solversUnderTest() {
		t.Run(s.Name(), func(t *testing.T) {
			src := quietSource(3, 10, 23)
			cfg := Config{Solver: s, Rounds: 10, B: 3, Patience: 4}
			checkEquivalence(t, cfg, src)
		})
	}
}

func TestIncrementalMatchesFromScratchWithPatience(t *testing.T) {
	src := churnSource(10, 31)
	cfg := Config{Solver: assign.NewTPG(), Rounds: 10, B: 3, Patience: 3, ServiceDuration: 1.5}
	checkEquivalence(t, cfg, src)
}

func TestIncrementalMatchesFromScratchWithPredictor(t *testing.T) {
	// The predictor is a pure performance device: pre-built superset lists
	// filtered through the exact predicate must not move a single bit.
	src := churnSource(12, 43)
	cfg := Config{
		Solver: assign.NewTPG(), Rounds: 12, B: 3, ServiceDuration: 2,
		Predict: incremental.PredictConfig{Cells: 8, Alpha: 0.5, Threshold: 0.2},
	}
	checkEquivalence(t, cfg, src)
}

func TestIncrementalMatchesFromScratchUnderGenerousBudget(t *testing.T) {
	// With a budget no solve can overrun, the ladder completes on the
	// primary rung in both modes and equivalence must hold bitwise.
	src := churnSource(8, 53)
	cfg := Config{Solver: assign.NewTPG(), Rounds: 8, B: 3, RoundBudget: time.Minute}
	checkEquivalence(t, cfg, src)
}

func TestIncrementalUnderChaosStaysRobust(t *testing.T) {
	// Chaos injects per-Solve faults, and the incremental path issues one
	// Solve per dirty component rather than one per round, so outcomes
	// legitimately diverge — the guarantee here is robustness only: the
	// run completes, every round's assignment validates, scores are finite.
	src := churnSource(10, 61)
	cfg := Config{
		Solver: assign.NewTPG(), Rounds: 10, B: 3, Incremental: true,
		Chaos: &resilience.ChaosConfig{Seed: 5, FailRate: 0.3, TruncateRate: 0.3},
	}
	res, err := Run(context.Background(), cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 10 {
		t.Fatalf("ran %d rounds, want 10", len(res.Batches))
	}
	for _, b := range res.Batches {
		if math.IsNaN(b.Score) || math.IsInf(b.Score, 0) || b.Score < 0 {
			t.Fatalf("round %d has bad score %v", b.Round, b.Score)
		}
	}
}

func TestNoopRoundsShortCircuit(t *testing.T) {
	// A tail of empty rounds after everything dispatched or expired must be
	// detected as no-ops: same results, and the counter records the skips.
	reg := metrics.NewRegistry()
	src := quietSource(2, 12, 71)
	cfg := Config{Solver: assign.NewTPG(), Rounds: 12, B: 3, Metrics: reg}
	res, err := Run(context.Background(), cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	noops, _ := reg.Snapshot().Counter(MetricNoopRounds, metrics.L("solver", "TPG"))
	if noops == 0 {
		t.Fatal("no rounds were short-circuited; expected a no-op tail")
	}
	// The skipped rounds must still be accounted in the result.
	if len(res.Batches) != 12 {
		t.Fatalf("ran %d rounds, want 12", len(res.Batches))
	}
}

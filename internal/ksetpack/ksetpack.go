// Package ksetpack implements the weighted k-set packing problem (k-SP) and
// the polynomial-time reduction from k-SP to CA-SC used in the paper's
// NP-hardness proof (Theorem II.1). Having the reduction as executable,
// tested code both documents the proof and provides adversarial CA-SC
// instances whose optima are known exactly.
package ksetpack

import (
	"fmt"
	"sort"
)

// Instance is a weighted k-set packing instance: a universe {0,...,U-1}, a
// collection of subsets with weights, and the size bound K. The goal is a
// maximum-weight collection of pairwise disjoint subsets of size ≤ K.
type Instance struct {
	U       int
	K       int
	Sets    [][]int
	Weights []float64
}

// Validate checks structural sanity.
func (in *Instance) Validate() error {
	if in.U < 0 || in.K < 1 {
		return fmt.Errorf("ksetpack: bad U=%d K=%d", in.U, in.K)
	}
	if len(in.Sets) != len(in.Weights) {
		return fmt.Errorf("ksetpack: %d sets but %d weights", len(in.Sets), len(in.Weights))
	}
	for i, s := range in.Sets {
		if len(s) == 0 || len(s) > in.K {
			return fmt.Errorf("ksetpack: set %d has size %d, want 1..%d", i, len(s), in.K)
		}
		seen := map[int]bool{}
		for _, e := range s {
			if e < 0 || e >= in.U {
				return fmt.Errorf("ksetpack: set %d contains element %d outside universe", i, e)
			}
			if seen[e] {
				return fmt.Errorf("ksetpack: set %d contains duplicate element %d", i, e)
			}
			seen[e] = true
		}
		if in.Weights[i] < 0 {
			return fmt.Errorf("ksetpack: set %d has negative weight", i)
		}
	}
	return nil
}

// Solution is the indices of the selected subsets.
type Solution []int

// Weight returns the total weight of the solution.
func (in *Instance) Weight(sol Solution) float64 {
	var w float64
	for _, i := range sol {
		w += in.Weights[i]
	}
	return w
}

// Feasible reports whether sol selects pairwise-disjoint sets.
func (in *Instance) Feasible(sol Solution) bool {
	used := map[int]bool{}
	for _, i := range sol {
		if i < 0 || i >= len(in.Sets) {
			return false
		}
		for _, e := range in.Sets[i] {
			if used[e] {
				return false
			}
			used[e] = true
		}
	}
	return true
}

// SolveExact finds a maximum-weight packing by branch and bound over sets.
// Exponential; intended for the small instances in tests.
func (in *Instance) SolveExact() Solution {
	n := len(in.Sets)
	// Order sets by weight descending for better pruning.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return in.Weights[order[a]] > in.Weights[order[b]] })
	suffix := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + in.Weights[order[i]]
	}
	used := make([]bool, in.U)
	var best Solution
	bestW := -1.0
	var cur Solution
	curW := 0.0
	var rec func(pos int)
	rec = func(pos int) {
		if curW > bestW {
			bestW = curW
			best = append(Solution(nil), cur...)
		}
		if pos == n || curW+suffix[pos] <= bestW {
			return
		}
		si := order[pos]
		ok := true
		for _, e := range in.Sets[si] {
			if used[e] {
				ok = false
				break
			}
		}
		if ok {
			for _, e := range in.Sets[si] {
				used[e] = true
			}
			cur = append(cur, si)
			curW += in.Weights[si]
			rec(pos + 1)
			curW -= in.Weights[si]
			cur = cur[:len(cur)-1]
			for _, e := range in.Sets[si] {
				used[e] = false
			}
		}
		rec(pos + 1)
	}
	rec(0)
	sort.Ints(best)
	return best
}

// SolveGreedy packs sets by descending weight, skipping conflicts — the
// classical 1/k-approximation.
func (in *Instance) SolveGreedy() Solution {
	order := make([]int, len(in.Sets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return in.Weights[order[a]] > in.Weights[order[b]] })
	used := make([]bool, in.U)
	var sol Solution
	for _, si := range order {
		ok := true
		for _, e := range in.Sets[si] {
			if used[e] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, e := range in.Sets[si] {
			used[e] = true
		}
		sol = append(sol, si)
	}
	sort.Ints(sol)
	return sol
}

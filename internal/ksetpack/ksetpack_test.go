package ksetpack

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"casc/internal/assign"
)

func smallInstance() *Instance {
	return &Instance{
		U: 6,
		K: 3,
		Sets: [][]int{
			{0, 1, 2},
			{2, 3},
			{3, 4, 5},
			{0, 5},
		},
		Weights: []float64{3, 2, 3, 1},
	}
}

func TestValidate(t *testing.T) {
	if err := smallInstance().Validate(); err != nil {
		t.Fatalf("good instance rejected: %v", err)
	}
	cases := map[string]*Instance{
		"oversized set":  {U: 3, K: 2, Sets: [][]int{{0, 1, 2}}, Weights: []float64{1}},
		"out of range":   {U: 2, K: 2, Sets: [][]int{{0, 5}}, Weights: []float64{1}},
		"duplicate elem": {U: 3, K: 3, Sets: [][]int{{1, 1}}, Weights: []float64{1}},
		"neg weight":     {U: 2, K: 2, Sets: [][]int{{0, 1}}, Weights: []float64{-1}},
		"len mismatch":   {U: 2, K: 2, Sets: [][]int{{0, 1}}, Weights: nil},
		"empty set":      {U: 2, K: 2, Sets: [][]int{{}}, Weights: []float64{1}},
	}
	for name, in := range cases {
		if err := in.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSolveExactSmall(t *testing.T) {
	in := smallInstance()
	sol := in.SolveExact()
	if !in.Feasible(sol) {
		t.Fatalf("exact solution infeasible: %v", sol)
	}
	// Best packing: {0,1,2} (w=3) + {3,4,5} (w=3) = 6.
	if w := in.Weight(sol); math.Abs(w-6) > 1e-12 {
		t.Errorf("exact weight = %v, want 6 (solution %v)", w, sol)
	}
}

func TestSolveGreedyFeasibleAndBounded(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		in := randomKSP(r, 10, 3, 8)
		g := in.SolveGreedy()
		if !in.Feasible(g) {
			t.Fatalf("greedy infeasible on trial %d", trial)
		}
		e := in.SolveExact()
		if !in.Feasible(e) {
			t.Fatalf("exact infeasible on trial %d", trial)
		}
		gw, ew := in.Weight(g), in.Weight(e)
		if gw > ew+1e-9 {
			t.Fatalf("greedy %v beats exact %v", gw, ew)
		}
		// Greedy is a 1/k approximation.
		if ew > 0 && gw < ew/float64(in.K)-1e-9 {
			t.Fatalf("greedy %v below 1/k of exact %v", gw, ew)
		}
	}
}

// randomKSP builds a random linear set system (each element pair in at most
// one set) so it is also reducible.
func randomKSP(r *rand.Rand, u, k, sets int) *Instance {
	in := &Instance{U: u, K: k}
	type pair struct{ a, b int }
	used := map[pair]bool{}
	for len(in.Sets) < sets {
		size := 2 + r.Intn(k-1)
		perm := r.Perm(u)[:size]
		ok := true
		for a := 0; a < size && ok; a++ {
			for b := a + 1; b < size && ok; b++ {
				p := pair{min(perm[a], perm[b]), max(perm[a], perm[b])}
				if used[p] {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		for a := 0; a < size; a++ {
			for b := a + 1; b < size; b++ {
				used[pair{min(perm[a], perm[b]), max(perm[a], perm[b])}] = true
			}
		}
		in.Sets = append(in.Sets, perm)
		in.Weights = append(in.Weights, r.Float64()*3)
	}
	return in
}

func TestReductionValuePreservation(t *testing.T) {
	// Every feasible packing must map to a CA-SC assignment whose score (in
	// weight units) equals the packing weight — this is the inequality
	// OPT_CASC ≥ OPT_kSP that Theorem II.1 relies on.
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		ksp := randomKSP(r, 9, 3, 6)
		// The reduction requires uniform treatment of B; use only instances
		// where min set size ≥ 2 (randomKSP guarantees it).
		red, err := Build(ksp)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, sol := range []Solution{ksp.SolveGreedy(), ksp.SolveExact()} {
			a := red.FromPacking(sol)
			if err := a.Validate(red.CASC); err != nil {
				t.Fatalf("trial %d: induced assignment invalid: %v", trial, err)
			}
			got := red.ScoreToWeight(a.TotalScore(red.CASC))
			want := ksp.Weight(sol)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: induced score %v, packing weight %v", trial, got, want)
			}
		}
	}
}

func TestReductionOptimumDominatesKSP(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ctx := context.Background()
	for trial := 0; trial < 10; trial++ {
		ksp := randomKSP(r, 7, 3, 4)
		red, err := Build(ksp)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := assign.NewBruteForce().Solve(ctx, red.CASC)
		if err != nil {
			t.Fatal(err)
		}
		cascOpt := red.ScoreToWeight(opt.TotalScore(red.CASC))
		kspOpt := ksp.Weight(ksp.SolveExact())
		if cascOpt < kspOpt-1e-9 {
			t.Errorf("trial %d: OPT_CASC %v < OPT_kSP %v", trial, cascOpt, kspOpt)
		}
	}
}

func TestReductionChunkCreditGap(t *testing.T) {
	// Documents why the converse direction of the paper's Theorem II.1
	// sketch is loose: CA-SC rewards partial subsets. With
	// C1={0,1,2} w=1, C2={2,3,4} w=1 and a third disjoint set C3={5,6,7},
	// k-SP can pick C1+C3 (weight 2; C2 conflicts with C1 on element 2).
	// CA-SC additionally earns chunk credit by grouping {3,4,8} (element 8
	// belongs to no set, so worker 8 is a free filler): the pair (3,4) ∈ C2
	// contributes even though C2 is not fully served.
	ksp := &Instance{
		U: 9, K: 3,
		Sets:    [][]int{{0, 1, 2}, {2, 3, 4}, {5, 6, 7}},
		Weights: []float64{1, 1, 1},
	}
	red, err := Build(ksp)
	if err != nil {
		t.Fatal(err)
	}
	kspOpt := ksp.Weight(ksp.SolveExact())
	if math.Abs(kspOpt-2) > 1e-12 {
		t.Fatalf("k-SP optimum = %v, want 2", kspOpt)
	}
	opt, err := assign.NewBruteForce().Solve(context.Background(), red.CASC)
	if err != nil {
		t.Fatal(err)
	}
	cascOpt := red.ScoreToWeight(opt.TotalScore(red.CASC))
	if cascOpt <= kspOpt+1e-9 {
		t.Errorf("expected chunk credit: OPT_CASC %v should exceed OPT_kSP %v", cascOpt, kspOpt)
	}
}

func TestBuildRejectsOverconstrainedPairs(t *testing.T) {
	// Element pair (0,1) in two sets with different weights cannot receive a
	// single quality value.
	ksp := &Instance{
		U: 3, K: 2,
		Sets:    [][]int{{0, 1}, {0, 1}},
		Weights: []float64{1, 2},
	}
	if _, err := Build(ksp); err == nil {
		t.Error("overconstrained pair accepted")
	}
}

func TestBuildRejectsSingletons(t *testing.T) {
	ksp := &Instance{U: 2, K: 2, Sets: [][]int{{0}}, Weights: []float64{1}}
	if _, err := Build(ksp); err == nil {
		t.Error("singleton set accepted")
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build(&Instance{U: 0, K: 2}); err == nil {
		t.Error("empty instance accepted")
	}
}

func TestReductionScalesLargeWeights(t *testing.T) {
	ksp := &Instance{
		U: 4, K: 2,
		Sets:    [][]int{{0, 1}, {2, 3}},
		Weights: []float64{10, 4},
	}
	red, err := Build(ksp)
	if err != nil {
		t.Fatal(err)
	}
	a := red.FromPacking(Solution{0, 1})
	got := red.ScoreToWeight(a.TotalScore(red.CASC))
	if math.Abs(got-14) > 1e-9 {
		t.Errorf("scaled score = %v, want 14", got)
	}
}

package ksetpack

import (
	"fmt"

	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/model"
)

// Reduction materializes the polynomial-time transformation of Theorem II.1
// from a k-SP instance to a CA-SC instance:
//
//   - one worker per universe element, one task per subset C_j;
//   - every worker can reach every task before its deadline (the paper
//     "configures that each worker can arrive at every task");
//   - task t_j has capacity |C_j| and B = min_j |C_j|;
//   - pairwise qualities are chosen so that assigning exactly the workers of
//     C_j to t_j yields Q(W_j) = w(C_j): pairs inside C_j get
//     q = w(C_j)/(|C_j|·(|C_j|−1)) · (|C_j|−1) = w(C_j)/|C_j| … folded into
//     the pair constant qualityOf below; cross-set pairs get 0.
//
// The quality assignment is well-defined only when no unordered element
// pair appears in more than one subset (a "linear" set system); Build
// rejects other inputs. Weights are scaled so qualities stay in [0,1].
//
// Value preservation: every feasible packing maps to an assignment of equal
// total cooperation score (tested), hence OPT_CASC ≥ OPT_kSP — the
// direction the NP-hardness proof needs. The converse inequality can fail:
// CA-SC additionally rewards *partial* subsets embedded in mixed groups
// (see TestReductionChunkCreditGap for the concrete counterexample), so the
// paper's claim that the instances have exactly equal optima is loose; the
// reduction still proves hardness for the decision version restricted to
// uniform set sizes k = B, where groups below size B earn nothing.
type Reduction struct {
	KSP  *Instance
	CASC *model.Instance
	// scale converts CA-SC scores back to k-SP weights: weight = score*scale.
	scale float64
}

// Build constructs the reduction. It returns an error when the set system
// reuses an element pair (quality would be overconstrained) or the instance
// is invalid.
func Build(ksp *Instance) (*Reduction, error) {
	if err := ksp.Validate(); err != nil {
		return nil, err
	}
	if len(ksp.Sets) == 0 || ksp.U == 0 {
		return nil, fmt.Errorf("ksetpack: empty instance")
	}
	// Scale weights so every pair quality lands in [0,1].
	maxW := 0.0
	minSize := ksp.K
	for i, s := range ksp.Sets {
		if ksp.Weights[i] > maxW {
			maxW = ksp.Weights[i]
		}
		if len(s) < minSize {
			minSize = len(s)
		}
	}
	scale := 1.0
	if maxW > 1 {
		scale = maxW
	}

	q := coop.NewMatrix(ksp.U)
	type pair struct{ a, b int }
	owner := map[pair]int{}
	for si, s := range ksp.Sets {
		size := len(s)
		if size < 2 {
			// Singleton sets induce no pairs; their tasks can never earn
			// revenue under Equation 2 (B = minSize could be 1, but a group
			// of one has no pairs). Reject: the reduction needs k ≥ 2.
			return nil, fmt.Errorf("ksetpack: set %d has size 1; reduction needs sizes ≥ 2", si)
		}
		// Q(W_j) = 2·C(size,2)·q / (size−1) = size·q, so q = w/size (scaled).
		qv := ksp.Weights[si] / scale / float64(size)
		for a := 0; a < size; a++ {
			for b := a + 1; b < size; b++ {
				p := pair{a: min(s[a], s[b]), b: max(s[a], s[b])}
				if prev, dup := owner[p]; dup {
					return nil, fmt.Errorf("ksetpack: element pair (%d,%d) appears in sets %d and %d; quality assignment overconstrained",
						p.a, p.b, prev, si)
				}
				owner[p] = si
				q.Set(s[a], s[b], qv)
			}
		}
	}

	casc := &model.Instance{Quality: q, B: minSize, Now: 0}
	for e := 0; e < ksp.U; e++ {
		casc.Workers = append(casc.Workers, model.Worker{
			ID:  e,
			Loc: geo.Pt(0.5, 0.5), Speed: 10, Radius: 2, // reaches everything
		})
	}
	for si, s := range ksp.Sets {
		casc.Tasks = append(casc.Tasks, model.Task{
			ID:       si,
			Loc:      geo.Pt(0.5, 0.5),
			Capacity: len(s),
			Deadline: 1,
		})
	}
	casc.BuildCandidates(model.IndexLinear)
	return &Reduction{KSP: ksp, CASC: casc, scale: scale}, nil
}

// FromPacking converts a feasible packing into the induced CA-SC assignment
// (the workers of each selected set serve that set's task).
func (r *Reduction) FromPacking(sol Solution) *model.Assignment {
	a := model.NewAssignment(r.CASC)
	for _, si := range sol {
		for _, e := range r.KSP.Sets[si] {
			a.Assign(e, si)
		}
	}
	return a
}

// ScoreToWeight converts a CA-SC cooperation score back into k-SP weight
// units (undoing the normalization).
func (r *Reduction) ScoreToWeight(score float64) float64 { return score * r.scale }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

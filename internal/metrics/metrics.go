// Package metrics is a zero-dependency observability subsystem for the
// CA-SC platform: atomic counters, float gauges, and sharded histograms
// with fixed exponential bucket bounds, collected in a Registry that
// exposes Prometheus text format (see expose.go) and a structured
// Snapshot for tests and the bench tools (see registry.go).
//
// Everything is safe for concurrent use without locks on the hot path:
// counters and gauges are single atomics, histograms shard their buckets
// per P via a sync.Pool so concurrent Observe calls rarely contend. The
// intended usage pattern is to resolve metric handles once (at component
// construction or per batch) and update them from the hot loops.
package metrics

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension. Construct with L.
type Label struct {
	Key   string
	Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only go up; Add of a negative delta is the
// caller's bug and is not supported by the type.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (possibly negative) atomically.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicFloat is an atomically-updatable float64 accumulator.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// histShard is one shard of a histogram. Shards are updated with atomics
// only, so two goroutines handed the same shard remain correct.
type histShard struct {
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
	count  atomic.Uint64
}

// Histogram observes a distribution of float values into fixed buckets.
// Bucket semantics follow Prometheus: bucket i counts observations
// v <= bounds[i]; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	shards []histShard
	pool   sync.Pool
	next   atomic.Uint32
}

func newHistogram(bounds []float64) *Histogram {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		shards: make([]histShard, n),
	}
	sort.Float64s(h.bounds)
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, len(h.bounds)+1)
	}
	// The pool gives each P an affine shard; on a miss, hand shards out
	// round-robin. Duplicate hand-outs are fine — shards are atomic.
	h.pool.New = func() any {
		i := h.next.Add(1)
		return &h.shards[int(i-1)%len(h.shards)]
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	s := h.pool.Get().(*histShard)
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bounds[i]
	s.counts[i].Add(1)
	s.count.Add(1)
	s.sum.add(v)
	h.pool.Put(s)
}

// ObserveDuration records a duration given in seconds. It is Observe
// with a name that reads right at call sites timing code.
func (h *Histogram) ObserveDuration(seconds float64) { h.Observe(seconds) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.shards {
		total += h.shards[i].count.Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	var total float64
	for i := range h.shards {
		total += h.shards[i].sum.value()
	}
	return total
}

// bucketCounts merges the shards into per-bucket (non-cumulative) counts,
// one entry per bound plus the final +Inf bucket.
func (h *Histogram) bucketCounts() []uint64 {
	out := make([]uint64, len(h.bounds)+1)
	for i := range h.shards {
		for b := range out {
			out[b] += h.shards[i].counts[b].Load()
		}
	}
	return out
}

// ExponentialBuckets returns n upper bounds starting at start and growing
// by factor: start, start*factor, ... Start must be positive and factor
// greater than one; it panics otherwise (a programmer error, caught at
// metric construction, never at observation time).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets covers 100µs to ~104s in doubling steps — suitable for
// every solver and HTTP latency in this system.
func LatencyBuckets() []float64 { return ExponentialBuckets(100e-6, 2, 21) }

// ScoreBuckets covers cooperation-score style values from 1/16 to 2048 in
// doubling steps (per-batch scores at paper scale land mid-range).
func ScoreBuckets() []float64 { return ExponentialBuckets(1.0/16, 2, 16) }

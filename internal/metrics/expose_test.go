package metrics

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("casc_requests_total", "Total requests.", L("route", "/batch"), L("code", "200")).Add(7)
	r.Gauge("casc_open_tasks", "Open tasks.").Set(3)
	h := r.Histogram("casc_solve_seconds", "Solve latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP casc_requests_total Total requests.",
		"# TYPE casc_requests_total counter",
		`casc_requests_total{code="200",route="/batch"} 7`,
		"# TYPE casc_open_tasks gauge",
		"casc_open_tasks 3",
		"# TYPE casc_solve_seconds histogram",
		`casc_solve_seconds_bucket{le="0.1"} 1`,
		`casc_solve_seconds_bucket{le="1"} 2`,
		`casc_solve_seconds_bucket{le="+Inf"} 3`,
		"casc_solve_seconds_sum 5.55",
		"casc_solve_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q; got:\n%s", want, out)
		}
	}
}

// TestWriteTextParses walks every sample line and checks it splits into a
// metric id and a numeric value — the shape any Prometheus scraper needs.
func TestWriteTextParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help with \n newline", L("k", `quote " and \ slash`)).Inc()
	r.Histogram("b_seconds", "", []float64{0.5}).Observe(0.2)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, "\n") {
			t.Fatalf("raw newline escaped into sample line %q", line)
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[idx+1:], 64); err != nil {
			t.Fatalf("sample value in %q is not numeric: %v", line, err)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "x_total 1") {
		t.Fatalf("handler output missing sample: %s", buf[:n])
	}
}

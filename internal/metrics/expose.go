package metrics

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4): one # HELP and # TYPE line per family, then one sample
// line per child, histograms expanded into cumulative _bucket{le=...}
// series plus _sum and _count.

// escapeLabelValue escapes backslash, double-quote and newline per the
// exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...}; extra appends one more pair (used for
// histogram le labels). Empty input renders as "".
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders every metric in the registry to w.
func (r *Registry) WriteText(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range f.sortedChildren() {
			switch m := c.metric.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(c.labels), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(c.labels), formatFloat(m.Value()))
			case *Histogram:
				counts := m.bucketCounts()
				var cum uint64
				for i, bound := range m.bounds {
					cum += counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						f.name, labelString(c.labels, L("le", formatFloat(bound))), cum)
				}
				cum += counts[len(counts)-1]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(c.labels, L("le", "+Inf")), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(c.labels), formatFloat(m.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(c.labels), cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

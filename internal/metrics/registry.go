package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry holds metric families keyed by name. Getter methods are
// idempotent: the first call for a (name, labels) pair creates the metric,
// later calls return the same instance, so call sites never need
// registration boilerplate. Mixing kinds under one name panics — that is
// a programmer error, not a runtime condition.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family groups the children of one metric name.
type family struct {
	name   string
	help   string
	kind   string // "counter", "gauge", "histogram"
	bounds []float64
	// children maps a label signature to its metric.
	children map[string]*child
}

type child struct {
	labels []Label
	metric any // *Counter, *Gauge, or *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSig canonicalizes labels into a deterministic signature. Labels
// are sorted by key; duplicate keys keep the last value.
func labelSig(labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return "", nil
	}
	ls := append([]Label(nil), labels...)
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String(), ls
}

// lookup returns the metric for (name, labels), creating family and child
// on first use via mk.
func (r *Registry) lookup(name, help, kind string, bounds []float64, labels []Label, mk func() any) any {
	sig, canon := labelSig(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			r.mu.RUnlock()
			panic(fmt.Sprintf("metrics: %s already registered as %s, requested as %s", name, f.kind, kind))
		}
		if c, ok := f.children[sig]; ok {
			r.mu.RUnlock()
			return c.metric
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, children: make(map[string]*child)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s already registered as %s, requested as %s", name, f.kind, kind))
	}
	if c, ok := f.children[sig]; ok {
		return c.metric
	}
	c := &child{labels: canon, metric: mk()}
	f.children[sig] = c
	return c.metric
}

// Counter returns the counter for (name, labels), creating it on first
// use. The help string of the first call wins.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, "counter", nil, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, "gauge", nil, labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket upper bounds on first use. The bounds of the first
// call win; later calls may pass nil.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.RLock()
	if f, ok := r.families[name]; ok && f.kind == "histogram" {
		bounds = f.bounds
	}
	r.mu.RUnlock()
	if bounds == nil {
		bounds = LatencyBuckets()
	}
	return r.lookup(name, help, "histogram", bounds, labels, func() any { return newHistogram(bounds) }).(*Histogram)
}

// sortedFamilies returns the families sorted by name and each family's
// children sorted by label signature — the deterministic order used by
// both exposition and snapshots.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (f *family) sortedChildren() []*child {
	sigs := make([]string, 0, len(f.children))
	for sig := range f.children {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	out := make([]*child, 0, len(sigs))
	for _, sig := range sigs {
		out = append(out, f.children[sig])
	}
	return out
}

// Snapshot is a point-in-time copy of every metric in a registry,
// JSON-serializable so simulation runs can dump it as a perf datapoint.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// CounterSnapshot is one counter's state.
type CounterSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  uint64            `json:"value"`
}

// GaugeSnapshot is one gauge's state.
type GaugeSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// Bucket is one cumulative histogram bucket: Count observations were
// less than or equal to UpperBound.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramSnapshot is one histogram's state. Buckets are cumulative and
// exclude the implicit +Inf bucket, whose count equals Count.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets []Bucket          `json:"buckets"`
}

// Mean returns the mean observed value, or 0 with no observations.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket containing it, the same estimate Prometheus's
// histogram_quantile computes. Observations beyond the last finite bound
// clamp to that bound.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	for i, b := range h.Buckets {
		if float64(b.Count) >= rank {
			lower, lowerCount := 0.0, uint64(0)
			if i > 0 {
				lower = h.Buckets[i-1].UpperBound
				lowerCount = h.Buckets[i-1].Count
			}
			span := float64(b.Count - lowerCount)
			if span == 0 {
				return b.UpperBound
			}
			frac := (rank - float64(lowerCount)) / span
			return lower + (b.UpperBound-lower)*frac
		}
	}
	return h.Buckets[len(h.Buckets)-1].UpperBound
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot copies the current state of every metric.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	for _, f := range r.sortedFamilies() {
		for _, c := range f.sortedChildren() {
			switch m := c.metric.(type) {
			case *Counter:
				snap.Counters = append(snap.Counters, CounterSnapshot{
					Name: f.name, Labels: labelMap(c.labels), Value: m.Value(),
				})
			case *Gauge:
				snap.Gauges = append(snap.Gauges, GaugeSnapshot{
					Name: f.name, Labels: labelMap(c.labels), Value: m.Value(),
				})
			case *Histogram:
				hs := HistogramSnapshot{Name: f.name, Labels: labelMap(c.labels)}
				counts := m.bucketCounts()
				var cum uint64
				for i, bound := range m.bounds {
					cum += counts[i]
					hs.Buckets = append(hs.Buckets, Bucket{UpperBound: bound, Count: cum})
				}
				hs.Count = cum + counts[len(counts)-1]
				hs.Sum = m.Sum()
				snap.Histograms = append(snap.Histograms, hs)
			}
		}
	}
	return snap
}

func matchLabels(have map[string]string, want []Label) bool {
	if len(have) != len(want) {
		return false
	}
	for _, l := range want {
		if have[l.Key] != l.Value {
			return false
		}
	}
	return true
}

// Counter looks up a counter value in the snapshot.
func (s *Snapshot) Counter(name string, labels ...Label) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name && matchLabels(c.Labels, labels) {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge looks up a gauge value in the snapshot.
func (s *Snapshot) Gauge(name string, labels ...Label) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name && matchLabels(g.Labels, labels) {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram looks up a histogram in the snapshot.
func (s *Snapshot) Histogram(name string, labels ...Label) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name && matchLabels(h.Labels, labels) {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

package metrics

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", "ignored"); again != c {
		t.Fatal("second Counter call returned a different instance")
	}

	g := r.Gauge("pool_size", "Current pool size.")
	g.Set(10)
	g.Add(-3.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 6.5 {
		t.Fatalf("gauge = %v, want 6.5", got)
	}
}

func TestLabeledChildrenAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("solves_total", "", L("solver", "TPG"))
	b := r.Counter("solves_total", "", L("solver", "GT"))
	if a == b {
		t.Fatal("different labels returned the same child")
	}
	a.Inc()
	a.Inc()
	b.Inc()
	snap := r.Snapshot()
	if v, ok := snap.Counter("solves_total", L("solver", "TPG")); !ok || v != 2 {
		t.Fatalf("TPG child = %d (found %v), want 2", v, ok)
	}
	if v, ok := snap.Counter("solves_total", L("solver", "GT")); !ok || v != 1 {
		t.Fatalf("GT child = %d (found %v), want 1", v, ok)
	}
	// Label order must not matter.
	x := r.Counter("multi", "", L("a", "1"), L("b", "2"))
	y := r.Counter("multi", "", L("b", "2"), L("a", "1"))
	if x != y {
		t.Fatal("label order produced distinct children")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering thing as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("thing", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-102.65) > 1e-9 {
		t.Fatalf("sum = %v, want 102.65", got)
	}
	hs, ok := r.Snapshot().Histogram("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// Cumulative: v<=0.1 → 2 (0.05 and the boundary 0.1), v<=1 → 3, v<=10 → 4.
	want := []uint64{2, 3, 4}
	for i, b := range hs.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket le=%v count = %d, want %d", b.UpperBound, b.Count, want[i])
		}
	}
	if hs.Count != 5 {
		t.Fatalf("snapshot count = %d, want 5 (one obs beyond the last bound)", hs.Count)
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 4, 8})
	// 100 observations uniform in (0,1]: everything lands in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	hs, _ := r.Snapshot().Histogram("lat")
	if got := hs.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.5 (interpolated within first bucket)", got)
	}
	if got := hs.Quantile(1.0); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("p100 = %v, want 1.0", got)
	}
	if got := hs.Mean(); math.Abs(got-0.505) > 1e-9 {
		t.Fatalf("mean = %v, want 0.505", got)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram should report zero quantile and mean")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Getter races exercise the registry's double-checked creation.
			c := r.Counter("hits_total", "", L("g", "x"))
			g := r.Gauge("level", "")
			h := r.Histogram("obs", "", []float64{0.25, 0.5, 1})
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%4) / 4)
			}
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	if v, _ := snap.Counter("hits_total", L("g", "x")); v != goroutines*perG {
		t.Fatalf("counter = %d, want %d", v, goroutines*perG)
	}
	if v, _ := snap.Gauge("level"); v != goroutines*perG {
		t.Fatalf("gauge = %v, want %d", v, goroutines*perG)
	}
	hs, _ := snap.Histogram("obs")
	if hs.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", hs.Count, goroutines*perG)
	}
	wantSum := float64(goroutines) * perG / 4 * (0 + 0.25 + 0.5 + 0.75)
	if math.Abs(hs.Sum-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", hs.Sum, wantSum)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad args did not panic")
		}
	}()
	ExponentialBuckets(0, 2, 4)
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", L("k", "v")).Add(3)
	r.Gauge("b", "").Set(1.5)
	r.Histogram("c", "", []float64{1}).Observe(0.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Counter("a_total", L("k", "v")); !ok || v != 3 {
		t.Fatalf("round-tripped counter = %d (found %v)", v, ok)
	}
	if h, ok := back.Histogram("c"); !ok || h.Count != 1 {
		t.Fatalf("round-tripped histogram count = %d (found %v)", h.Count, ok)
	}
}

// Package roadnet provides a road-network movement model for CA-SC
// instances. The paper evaluates with Euclidean ("crow flies") travel, but
// workers in a real city move along streets; the related work it builds on
// (ridesharing [7], [10], [15]) is all road-network based. This package
// builds a perturbed-grid road graph over the unit square, answers
// shortest-path travel times with Dijkstra, and plugs into
// model.Instance.Travel so every solver runs unchanged under realistic
// detours. The extra experiment in TestRoadVsEuclideanShrinksCandidates
// quantifies how road detours thin candidate sets and scores relative to
// the paper's Euclidean setting.
package roadnet

import (
	"container/heap"
	"fmt"
	"math"

	"casc/internal/geo"
	"casc/internal/model"
	"casc/internal/stats"
)

// Network is an undirected road graph embedded in the unit square.
type Network struct {
	nodes []geo.Point
	adj   [][]arc
	// rows/cols of the generating grid (0 for custom graphs).
	rows, cols int
}

type arc struct {
	to   int32
	dist float64
}

// GridConfig configures a perturbed-grid road network: a rows × cols
// lattice of intersections jittered by Jitter, with every lattice edge
// present except a DropRate fraction removed at random (dead ends and
// detours). Removal never disconnects the network: candidate edges are
// only dropped when both endpoints keep ≥ 2 other arcs and the graph stays
// connected.
type GridConfig struct {
	Rows, Cols int
	Jitter     float64 // ≤ half the lattice spacing; default 0.15 of spacing
	DropRate   float64 // fraction of edges to attempt to drop
	Seed       int64
}

// DefaultGrid is a 24×24 Manhattan-ish street grid.
func DefaultGrid() GridConfig {
	return GridConfig{Rows: 24, Cols: 24, DropRate: 0.12, Seed: 1}
}

// NewGrid builds a perturbed-grid network.
func NewGrid(cfg GridConfig) (*Network, error) {
	if cfg.Rows < 2 || cfg.Cols < 2 {
		return nil, fmt.Errorf("roadnet: grid %dx%d too small", cfg.Rows, cfg.Cols)
	}
	if cfg.DropRate < 0 || cfg.DropRate >= 1 {
		return nil, fmt.Errorf("roadnet: drop rate %v outside [0,1)", cfg.DropRate)
	}
	r := stats.NewRNG(cfg.Seed)
	n := cfg.Rows * cfg.Cols
	nw := &Network{
		nodes: make([]geo.Point, n),
		adj:   make([][]arc, n),
		rows:  cfg.Rows,
		cols:  cfg.Cols,
	}
	dx := 1.0 / float64(cfg.Cols-1)
	dy := 1.0 / float64(cfg.Rows-1)
	jitter := cfg.Jitter
	if jitter <= 0 {
		jitter = 0.15 * math.Min(dx, dy)
	}
	for row := 0; row < cfg.Rows; row++ {
		for col := 0; col < cfg.Cols; col++ {
			p := geo.Pt(
				float64(col)*dx+(r.Float64()*2-1)*jitter,
				float64(row)*dy+(r.Float64()*2-1)*jitter,
			).Clamp(0, 1)
			nw.nodes[row*cfg.Cols+col] = p
		}
	}
	type edge struct{ a, b int }
	var edges []edge
	id := func(row, col int) int { return row*cfg.Cols + col }
	for row := 0; row < cfg.Rows; row++ {
		for col := 0; col < cfg.Cols; col++ {
			if col+1 < cfg.Cols {
				edges = append(edges, edge{id(row, col), id(row, col+1)})
			}
			if row+1 < cfg.Rows {
				edges = append(edges, edge{id(row, col), id(row+1, col)})
			}
		}
	}
	for _, e := range edges {
		nw.addEdge(e.a, e.b)
	}
	// Drop edges without disconnecting.
	stats.Shuffle(r, edges)
	toDrop := int(float64(len(edges)) * cfg.DropRate)
	for _, e := range edges {
		if toDrop == 0 {
			break
		}
		if len(nw.adj[e.a]) <= 2 || len(nw.adj[e.b]) <= 2 {
			continue
		}
		nw.removeEdge(e.a, e.b)
		if nw.connected() {
			toDrop--
		} else {
			nw.addEdge(e.a, e.b)
		}
	}
	return nw, nil
}

func (nw *Network) addEdge(a, b int) {
	d := nw.nodes[a].Dist(nw.nodes[b])
	nw.adj[a] = append(nw.adj[a], arc{to: int32(b), dist: d})
	nw.adj[b] = append(nw.adj[b], arc{to: int32(a), dist: d})
}

func (nw *Network) removeEdge(a, b int) {
	rm := func(from, to int) {
		s := nw.adj[from]
		for i, e := range s {
			if int(e.to) == to {
				s[i] = s[len(s)-1]
				nw.adj[from] = s[:len(s)-1]
				return
			}
		}
	}
	rm(a, b)
	rm(b, a)
}

func (nw *Network) connected() bool {
	if len(nw.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(nw.nodes))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range nw.adj[v] {
			if !seen[e.to] {
				seen[e.to] = true
				count++
				stack = append(stack, int(e.to))
			}
		}
	}
	return count == len(nw.nodes)
}

// NumNodes returns the number of intersections.
func (nw *Network) NumNodes() int { return len(nw.nodes) }

// Node returns an intersection's location.
func (nw *Network) Node(i int) geo.Point { return nw.nodes[i] }

// NearestNode returns the intersection closest to p (linear scan for the
// grid sizes in use; the generating grid gives a good initial guess).
func (nw *Network) NearestNode(p geo.Point) int {
	best, bestD := 0, math.Inf(1)
	for i, n := range nw.nodes {
		if d := n.Dist2(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// ShortestFrom computes road distances from the given node to every node
// (Dijkstra with a binary heap).
func (nw *Network) ShortestFrom(src int) []float64 {
	dist := make([]float64, len(nw.nodes))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &nodeHeap{{node: int32(src), dist: 0}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(nodeDist)
		if top.dist > dist[top.node] {
			continue
		}
		for _, e := range nw.adj[top.node] {
			if nd := top.dist + e.dist; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, nodeDist{node: e.to, dist: nd})
			}
		}
	}
	return dist
}

type nodeDist struct {
	node int32
	dist float64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Distance returns the road distance between two arbitrary points: walk to
// the nearest intersections (Euclidean), traverse the network between them.
func (nw *Network) Distance(a, b geo.Point) float64 {
	na, nb := nw.NearestNode(a), nw.NearestNode(b)
	road := nw.ShortestFrom(na)[nb]
	return a.Dist(nw.nodes[na]) + road + nw.nodes[nb].Dist(b)
}

// Travel returns a model.TravelFunc that precomputes, per worker, the road
// distances from the worker's nearest intersection, so candidate
// construction costs one Dijkstra per worker instead of one per pair.
// Travel time = road distance / worker speed (with the same zero-speed
// semantics as geo.TravelTime).
func (nw *Network) Travel(workers []model.Worker, tasks []model.Task) model.TravelFunc {
	type cache struct {
		node int
		dist []float64
	}
	workerCache := make(map[int]*cache, len(workers))
	taskNode := make(map[int]int, len(tasks))
	return func(w model.Worker, t model.Task) float64 {
		c, ok := workerCache[w.ID]
		if !ok {
			node := nw.NearestNode(w.Loc)
			c = &cache{node: node, dist: nw.ShortestFrom(node)}
			workerCache[w.ID] = c
		}
		tn, ok := taskNode[t.ID]
		if !ok {
			tn = nw.NearestNode(t.Loc)
			taskNode[t.ID] = tn
		}
		d := w.Loc.Dist(nw.nodes[c.node]) + c.dist[tn] + nw.nodes[tn].Dist(t.Loc)
		if d == 0 {
			return 0
		}
		if w.Speed <= 0 {
			return math.Inf(1)
		}
		return d / w.Speed
	}
}

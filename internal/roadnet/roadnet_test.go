package roadnet

import (
	"context"
	"math"
	"testing"

	"casc/internal/assign"
	"casc/internal/geo"
	"casc/internal/model"
	"casc/internal/workload"
)

func TestNewGridShape(t *testing.T) {
	nw, err := NewGrid(GridConfig{Rows: 5, Cols: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumNodes() != 35 {
		t.Fatalf("nodes = %d", nw.NumNodes())
	}
	for i := 0; i < nw.NumNodes(); i++ {
		p := nw.Node(i)
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("node %d at %v outside unit square", i, p)
		}
	}
	if !nw.connected() {
		t.Fatal("grid not connected")
	}
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(GridConfig{Rows: 1, Cols: 5}); err == nil {
		t.Error("1-row grid accepted")
	}
	if _, err := NewGrid(GridConfig{Rows: 5, Cols: 5, DropRate: 1.5}); err == nil {
		t.Error("bad drop rate accepted")
	}
}

func TestDropKeepsConnectivity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := DefaultGrid()
		cfg.Seed = seed
		cfg.DropRate = 0.3
		nw, err := NewGrid(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !nw.connected() {
			t.Fatalf("seed %d: dropped edges disconnected the network", seed)
		}
	}
}

func TestShortestFromAgainstTriangleAndSymmetry(t *testing.T) {
	nw, err := NewGrid(GridConfig{Rows: 6, Cols: 6, Seed: 2, DropRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	d0 := nw.ShortestFrom(0)
	for v := 0; v < nw.NumNodes(); v++ {
		if math.IsInf(d0[v], 0) {
			t.Fatalf("node %d unreachable", v)
		}
		// Road distance ≥ Euclidean (paths can't beat straight lines).
		if eu := nw.Node(0).Dist(nw.Node(v)); d0[v] < eu-1e-9 {
			t.Fatalf("road distance %v below Euclidean %v", d0[v], eu)
		}
	}
	// Symmetry on an undirected graph.
	d5 := nw.ShortestFrom(5)
	if math.Abs(d0[5]-d5[0]) > 1e-9 {
		t.Fatalf("asymmetric shortest path: %v vs %v", d0[5], d5[0])
	}
	// Triangle inequality via an intermediate node.
	d7 := nw.ShortestFrom(7)
	for v := 0; v < nw.NumNodes(); v++ {
		if d0[v] > d0[7]+d7[v]+1e-9 {
			t.Fatalf("triangle violated at %d", v)
		}
	}
}

func TestDistanceDominatesEuclidean(t *testing.T) {
	nw, err := NewGrid(DefaultGrid())
	if err != nil {
		t.Fatal(err)
	}
	pts := []geo.Point{geo.Pt(0.1, 0.1), geo.Pt(0.9, 0.2), geo.Pt(0.5, 0.5), geo.Pt(0.05, 0.95)}
	for _, a := range pts {
		for _, b := range pts {
			road := nw.Distance(a, b)
			eu := a.Dist(b)
			if road < eu-1e-9 {
				t.Fatalf("road %v < euclidean %v between %v and %v", road, eu, a, b)
			}
		}
	}
	if d := nw.Distance(pts[0], pts[0]); d < 0 || d > 0.2 {
		t.Errorf("self distance %v should be ~2×(walk to nearest node)", d)
	}
}

func roadInstance(t *testing.T, travel model.TravelFunc) *model.Instance {
	t.Helper()
	p := workload.Default()
	p.NumWorkers, p.NumTasks = 300, 100
	p.Seed = 5
	in, err := p.Instance(0, model.IndexRTree)
	if err != nil {
		t.Fatal(err)
	}
	in.Travel = travel
	in.BuildCandidates(model.IndexRTree)
	return in
}

func TestRoadVsEuclideanShrinksCandidates(t *testing.T) {
	nw, err := NewGrid(DefaultGrid())
	if err != nil {
		t.Fatal(err)
	}
	euclid := roadInstance(t, nil)
	road := roadInstance(t, nw.Travel(euclid.Workers, euclid.Tasks))
	ne, nr := euclid.NumValidPairs(), road.NumValidPairs()
	if nr > ne {
		t.Fatalf("road detours grew candidate sets: %d > %d", nr, ne)
	}
	if nr == ne {
		t.Fatalf("road travel changed nothing; detours should prune some deadline-tight pairs")
	}
	// Road candidates must be a subset of Euclidean candidates per worker.
	for w := range euclid.Workers {
		set := map[int]bool{}
		for _, c := range euclid.WorkerCand[w] {
			set[c] = true
		}
		for _, c := range road.WorkerCand[w] {
			if !set[c] {
				t.Fatalf("worker %d gained candidate %d under road travel", w, c)
			}
		}
	}
	// Solvers run unchanged and their assignments validate under the road
	// model.
	for _, name := range []string{"TPG", "GT"} {
		s, _ := assign.ByName(name, 1)
		a, err := s.Solve(context.Background(), road)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(road); err != nil {
			t.Fatalf("%s under road travel: %v", name, err)
		}
		if a.TotalScore(road) <= 0 {
			t.Fatalf("%s scored zero under road travel", name)
		}
	}
}

func TestTravelZeroSpeed(t *testing.T) {
	nw, err := NewGrid(GridConfig{Rows: 4, Cols: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	travel := nw.Travel(nil, nil)
	w := model.Worker{ID: 1, Loc: geo.Pt(0.2, 0.2), Speed: 0}
	task := model.Task{ID: 1, Loc: geo.Pt(0.8, 0.8)}
	if got := travel(w, task); !math.IsInf(got, 1) {
		t.Errorf("zero-speed travel = %v, want +Inf", got)
	}
}

package scenario

import (
	"context"
	"errors"
	"fmt"
	"time"

	"casc/internal/assign"
	"casc/internal/batch"
	"casc/internal/metrics"
	"casc/internal/model"
	"casc/internal/resilience"
	"casc/internal/shard"
	"casc/internal/trace"
)

// RunConfig drives one scenario run on top of a generated (or replayed)
// plan.
type RunConfig struct {
	// Plan is the fully generated arrival schedule.
	Plan *Plan
	// Solver overrides the spec's solver ("" keeps it) — the knob behind
	// counterfactual replays under a different policy.
	Solver string
	// CounterfactualK enables decision tracing: each round, the first K
	// spec alternates re-solve the identical instance and the score gap is
	// recorded as regret. Negative runs every alternate; zero disables.
	// Counterfactuals need the monolithic observer hook and therefore
	// reject Shards > 0.
	CounterfactualK int
	// Parallelism, Budget, Chaos and Incremental mirror the batch.Config
	// fields of the same names.
	Parallelism int
	Budget      time.Duration
	Chaos       *resilience.ChaosConfig
	Incremental bool
	// Shards, when positive, routes the plan through a sharded cluster of
	// that many shards instead of the monolithic batch loop.
	Shards int
	// Patience mirrors batch.Config.Patience (monolithic only).
	Patience int
	// Trace, when non-nil, receives the per-round decision records — the
	// chosen run under the solver's name, counterfactuals under
	// "cf:<solver>".
	Trace *trace.Writer
	// Metrics, when non-nil, receives engine instrumentation plus the
	// casc_scenario_* series.
	Metrics *metrics.Registry
}

// Report is the outcome of a scenario run.
type Report struct {
	// Scenario and Solver identify the run.
	Scenario string `json:"scenario"`
	Solver   string `json:"solver"`
	// Workers and Tasks are the plan's arrival totals.
	Workers int `json:"workers"`
	Tasks   int `json:"tasks"`
	// Score, Upper, Dispatched and Expired aggregate the run; Exhausted
	// counts sharded rounds dropped by budget admission.
	Score      float64 `json:"score"`
	Upper      float64 `json:"upper"`
	Dispatched int     `json:"dispatched"`
	Expired    int     `json:"expired"`
	Exhausted  int     `json:"exhausted,omitempty"`
	// Result is the monolithic engine's full result (nil when sharded).
	Result *batch.Result `json:"-"`
	// SLO is the per-class outcome (nil when the spec declares no classes).
	SLO *SLOReport `json:"slo,omitempty"`
	// Counterfactual is the decision-tracing report (nil when disabled).
	Counterfactual *CounterfactualReport `json:"counterfactual,omitempty"`
}

// Run executes the plan. Same plan, same config, same result — including
// the trace stream — bitwise (deterministic solvers; sharded runs need no
// solve budget for this to hold, since budgets measure wall time).
func Run(ctx context.Context, cfg RunConfig) (*Report, error) {
	if cfg.Plan == nil {
		return nil, fmt.Errorf("scenario: RunConfig.Plan is nil")
	}
	solverName := cfg.Solver
	if solverName == "" {
		solverName = cfg.Plan.Spec.Solver
	}
	if cfg.Shards > 0 {
		if cfg.CounterfactualK != 0 {
			return nil, fmt.Errorf("scenario: counterfactuals need the monolithic engine (drop -shards or -counterfactual-k)")
		}
		return runSharded(ctx, cfg, solverName)
	}
	return runMonolithic(ctx, cfg, solverName)
}

func runMonolithic(ctx context.Context, cfg RunConfig, solverName string) (*Report, error) {
	plan := cfg.Plan
	spec := plan.Spec
	solver, err := assign.ByName(solverName, spec.Seed)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	slo := newSLOTracker(plan)
	var cf *counterfactual
	if cfg.CounterfactualK != 0 {
		cfSpec := spec
		cfSpec.Solver = solverName
		if cfg.Solver != "" && cfg.Solver != spec.Solver {
			// Replaying under a different policy: the original solver is the
			// natural alternate unless the spec already lists others.
			cfSpec.Alternates = remove(spec.Alternates, solverName)
			if len(cfSpec.Alternates) == 0 {
				cfSpec.Alternates = []string{spec.Solver}
			}
		}
		k := cfg.CounterfactualK
		if k < 0 {
			k = 0 // keep all alternates
		}
		cf, err = newCounterfactual(cfSpec, k, cfg.Parallelism != 0, cfg.Parallelism, cfg.Trace)
		if err != nil {
			return nil, err
		}
	}
	observer := func(octx context.Context, round int, now float64, in *model.Instance, a *model.Assignment) error {
		if in != nil && a != nil {
			for ti, ws := range a.TaskWorkers {
				if len(ws) < spec.B {
					continue
				}
				slo.observeDispatch(in.Tasks[ti].ID, round)
			}
		}
		if cf != nil {
			return cf.observe(octx, round, now, in, a)
		}
		return nil
	}
	res, err := batch.Run(ctx, batch.Config{
		Solver:      solver,
		Rounds:      plan.Rounds(),
		Interval:    Interval,
		B:           spec.B,
		Patience:    cfg.Patience,
		Trace:       cfg.Trace,
		Metrics:     cfg.Metrics,
		Parallelism: cfg.Parallelism,
		Seed:        spec.Seed,
		RoundBudget: cfg.Budget,
		Chaos:       cfg.Chaos,
		Observer:    observer,
		Incremental: cfg.Incremental,
	}, plan.Source())
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Scenario:   spec.Name,
		Solver:     solverName,
		Workers:    plan.NumWorkers(),
		Tasks:      plan.NumTasks(),
		Score:      res.TotalScore,
		Upper:      res.UpperTotal,
		Dispatched: res.DispatchedTasks,
		Expired:    res.ExpiredTasks,
		Result:     res,
	}
	if len(spec.SLOClasses) > 0 {
		rep.SLO = slo.report(plan.Rounds())
	}
	if cf != nil {
		rep.Counterfactual = cf.report()
	}
	publishMetrics(cfg.Metrics, plan, rep.SLO, rep.Counterfactual)
	return rep, nil
}

// runSharded feeds the plan's arrivals into a sharded cluster round by
// round. Cluster IDs are allocated in registration order, so the runner
// keeps explicit plan-ID ↔ cluster-ID maps and reports everything —
// trace pairs, SLO accounting — in plan IDs.
func runSharded(ctx context.Context, cfg RunConfig, solverName string) (*Report, error) {
	plan := cfg.Plan
	spec := plan.Spec
	c, err := shard.NewCluster(shard.Config{
		K: cfg.Shards, B: spec.B, Metrics: cfg.Metrics,
		SolveBudget: cfg.Budget, Chaos: cfg.Chaos,
		Incremental: cfg.Incremental,
	})
	if err != nil {
		return nil, err
	}
	slo := newSLOTracker(plan)
	taskOfCluster := map[int]int{}   // cluster task ID -> plan task ID
	workerOfCluster := map[int]int{} // cluster worker ID -> plan worker ID
	rep := &Report{
		Scenario: spec.Name,
		Solver:   solverName,
		Workers:  plan.NumWorkers(),
		Tasks:    plan.NumTasks(),
	}
	for round := 0; round < plan.Rounds(); round++ {
		for _, w := range plan.workersByRound[round] {
			cid, err := c.RegisterWorker(w.Loc, w.Speed, w.Radius)
			if err != nil {
				return nil, fmt.Errorf("scenario: round %d register worker %d: %w", round, w.ID, err)
			}
			workerOfCluster[cid] = w.ID
		}
		for _, t := range plan.tasksByRound[round] {
			cid, err := c.PostTask(t.Loc, t.Capacity, t.Deadline)
			if err != nil {
				return nil, fmt.Errorf("scenario: round %d post task %d: %w", round, t.ID, err)
			}
			taskOfCluster[cid] = t.ID
		}
		res, err := c.RunBatch(ctx, solverName)
		if errors.Is(err, shard.ErrBudgetExhausted) {
			rep.Exhausted++
			if cfg.Trace != nil {
				if err := cfg.Trace.Append(trace.Record{
					Run: solverName, Round: round, Time: float64(round) * Interval,
					Solver: solverName,
				}); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		rep.Score += res.Score
		rep.Upper += res.Upper
		rep.Dispatched += res.DispatchedTasks
		rep.Expired += res.ExpiredTasks
		rec := trace.Record{
			Run: solverName, Round: round, Time: float64(round) * Interval,
			Solver: solverName, Score: res.Score, Upper: res.Upper,
		}
		rated := map[int]bool{}
		for _, pr := range res.Pairs {
			planTask, ok := taskOfCluster[pr.Task]
			if !ok {
				return nil, fmt.Errorf("scenario: round %d dispatched unknown cluster task %d", round, pr.Task)
			}
			planWorker, ok := workerOfCluster[pr.Worker]
			if !ok {
				return nil, fmt.Errorf("scenario: round %d dispatched unknown cluster worker %d", round, pr.Worker)
			}
			rec.Pairs = append(rec.Pairs, model.Pair{Worker: planWorker, Task: planTask})
			slo.observeDispatch(planTask, round)
			if !rated[pr.Task] {
				rated[pr.Task] = true
				// Deterministic rating keeps the cluster's learned quality
				// model — and therefore subsequent rounds — replayable.
				s := 0.5
				if planTask%2 == 1 {
					s = 1.0
				}
				if err := c.RateTask(pr.Task, s); err != nil {
					return nil, err
				}
			}
		}
		if cfg.Trace != nil {
			if err := cfg.Trace.Append(rec); err != nil {
				return nil, err
			}
		}
	}
	if len(spec.SLOClasses) > 0 {
		rep.SLO = slo.report(plan.Rounds())
	}
	publishMetrics(cfg.Metrics, plan, rep.SLO, nil)
	return rep, nil
}

// remove returns names without any occurrence of drop.
func remove(names []string, drop string) []string {
	var out []string
	for _, n := range names {
		if n != drop {
			out = append(out, n)
		}
	}
	return out
}

package scenario

import (
	"math"
	"math/rand"

	"casc/internal/assign"
	"casc/internal/geo"
	"casc/internal/model"
	"casc/internal/stats"
)

// This file turns a Spec into the complete per-round arrival schedule. The
// whole schedule is generated up front from seeded RNG streams — one per
// entity kind, derived from the spec seed via assign.ComponentSeed — so it
// is a pure function of the spec: the determinism contract every replay,
// shard, and incremental-mode property rests on (DESIGN.md §14).

// Seed-derivation keys for the per-kind generator streams.
const (
	seedKeyWorkers = 1
	seedKeyTasks   = 2
)

// Interval is the scenario round length (batch.Config.Interval); scenarios
// always use the default 1.0, so round r happens at time r.
const Interval = 1.0

// cellGrid is the spatial discretization the arrival rates are driven
// over: GridSize×GridSize uniform cells on [0,1]².
type cellGrid struct {
	size    int
	weights []float64 // per-cell rate share, sums to 1
}

// center returns the center point of cell c.
func (g *cellGrid) center(c int) geo.Point {
	cx, cy := c%g.size, c/g.size
	return geo.Pt((float64(cx)+0.5)/float64(g.size), (float64(cy)+0.5)/float64(g.size))
}

// point draws a uniform location inside cell c.
func (g *cellGrid) point(r *rand.Rand, c int) geo.Point {
	cx, cy := c%g.size, c/g.size
	return geo.Pt(
		(float64(cx)+r.Float64())/float64(g.size),
		(float64(cy)+r.Float64())/float64(g.size),
	)
}

// newCellGrid builds the grid and its per-cell weights: uniform without
// hotspots, otherwise a Gaussian mixture around `hotspots` seeded centers
// with a small uniform floor so no cell starves completely.
func newCellGrid(r *rand.Rand, size, hotspots int) *cellGrid {
	g := &cellGrid{size: size, weights: make([]float64, size*size)}
	n := len(g.weights)
	if hotspots <= 0 {
		for c := range g.weights {
			g.weights[c] = 1 / float64(n)
		}
		return g
	}
	centers := make([]geo.Point, hotspots)
	for i := range centers {
		centers[i] = geo.Pt(r.Float64(), r.Float64())
	}
	const sigma = 0.15
	const floor = 0.1
	total := 0.0
	for c := range g.weights {
		p := g.center(c)
		w := floor
		for _, h := range centers {
			d2 := p.Dist2(h)
			w += math.Exp(-d2 / (2 * sigma * sigma))
		}
		g.weights[c] = w
		total += w
	}
	for c := range g.weights {
		g.weights[c] /= total
	}
	return g
}

// diurnalFactor is the rate multiplier of d at round r (1 when d is nil).
func diurnalFactor(d *DiurnalSpec, round int) float64 {
	if d == nil {
		return 1
	}
	f := 1 + d.Amplitude*math.Sin(2*math.Pi*(float64(round)/d.Period+d.Phase))
	if f < 0 {
		return 0
	}
	return f
}

// burstFactor is the product of the multipliers of every burst active at
// round r whose footprint covers pt (Radius 0 covers the whole grid).
func burstFactor(bursts []BurstSpec, round int, pt geo.Point) float64 {
	f := 1.0
	for _, b := range bursts {
		length := b.Length
		if length <= 0 {
			length = 1
		}
		if round < b.Round || round >= b.Round+length {
			continue
		}
		if b.Radius > 0 && pt.Dist(geo.Pt(b.X, b.Y)) > b.Radius {
			continue
		}
		f *= b.Multiplier
	}
	return f
}

// arrivalCounter draws one round's arrival count for a whole process.
// The count is drawn once per round at the grid level — where the renewal
// window Λ is large enough that the renewal families' short-window bias
// is negligible — and arrivals are then distributed over cells by
// weighted draw. The constant family keeps a fractional carry so its
// long-run rate is exact; the renewal families count unit-mean
// interarrival draws in a window of length Λ, so the mean tracks Λ while
// the shape parameter controls burstiness.
type arrivalCounter struct {
	p     ProcessSpec
	rng   *rand.Rand
	carry float64 // constant-family fractional remainder
}

func newArrivalCounter(p ProcessSpec, rng *rand.Rand) *arrivalCounter {
	return &arrivalCounter{p: p, rng: rng}
}

// count draws the number of arrivals this round given the round's total
// rate Λ (the per-cell rates summed over the grid).
func (a *arrivalCounter) count(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	switch a.p.Process {
	case ProcPoisson:
		return stats.Poisson(a.rng, lambda)
	case ProcGamma:
		shape := a.p.Shape
		return stats.RenewalCount(lambda, func() float64 {
			return stats.Gamma(a.rng, shape, 1/shape)
		})
	case ProcWeibull:
		shape := a.p.Shape
		scale := 1 / math.Gamma(1+1/shape)
		return stats.RenewalCount(lambda, func() float64 {
			return stats.Weibull(a.rng, shape, scale)
		})
	case ProcConstant:
		a.carry += lambda
		n := int(a.carry)
		a.carry -= float64(n)
		return n
	}
	return 0
}

// roundRates fills lam with each cell's rate this round — base rate share
// times diurnal and burst modulation — and returns their sum.
func roundRates(lam []float64, p ProcessSpec, g *cellGrid, round int) float64 {
	df := diurnalFactor(p.Diurnal, round)
	total := 0.0
	for c := range g.weights {
		lam[c] = p.Rate * g.weights[c] * df * burstFactor(p.Bursts, round, g.center(c))
		total += lam[c]
	}
	return total
}

// pickCell draws a cell index proportional to lam (which sums to total).
func pickCell(r *rand.Rand, lam []float64, total float64) int {
	u := r.Float64() * total
	acc := 0.0
	for c, l := range lam {
		acc += l
		if u < acc {
			return c
		}
	}
	return len(lam) - 1
}

// Plan is a fully generated scenario: every arrival of every round, the
// SLO class of every task, and the quality-model universe size. Plans are
// immutable once built; Source adapts one to batch.Source.
type Plan struct {
	Spec Spec
	// workersByRound[r] and tasksByRound[r] hold round r's arrivals in
	// generation order (IDs are globally sequential).
	workersByRound [][]model.Worker
	tasksByRound   [][]model.Task
	// taskClass[id] is the SLO class index of task id (-1: no class).
	taskClass []int
	// Universe is the number of distinct worker IDs (the quality-model
	// size).
	Universe int
}

// Generate builds the complete event schedule for the spec. The result is
// bitwise-deterministic in the spec: same spec, same plan.
func Generate(spec Spec) (*Plan, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{
		Spec:           spec,
		workersByRound: make([][]model.Worker, spec.Rounds),
		tasksByRound:   make([][]model.Task, spec.Rounds),
	}
	// Workers stream.
	wrng := stats.NewRNG(assign.ComponentSeed(spec.Seed, seedKeyWorkers))
	wgrid := newCellGrid(wrng, spec.GridSize, spec.Workers.Hotspots)
	wcount := newArrivalCounter(spec.Workers, wrng)
	wlam := make([]float64, len(wgrid.weights))
	wid := 0
	for r := 0; r < spec.Rounds; r++ {
		now := float64(r) * Interval
		total := roundRates(wlam, spec.Workers, wgrid, r)
		n := wcount.count(total)
		for k := 0; k < n; k++ {
			c := pickCell(wrng, wlam, total)
			p.workersByRound[r] = append(p.workersByRound[r], model.Worker{
				ID:     wid,
				Loc:    wgrid.point(wrng, c),
				Speed:  stats.TruncGaussian(wrng, spec.SpeedRange[0], spec.SpeedRange[1], stats.PaperSigma),
				Radius: stats.TruncGaussian(wrng, spec.RadiusRange[0], spec.RadiusRange[1], stats.PaperSigma),
				Arrive: now,
			})
			wid++
		}
	}
	p.Universe = wid
	if p.Universe == 0 {
		p.Universe = 1 // coop.Synthetic needs a non-empty universe
	}

	// Tasks stream. Per arrival the draw order is fixed and documented:
	// cell, then SLO class (when classes exist), then location.
	trng := stats.NewRNG(assign.ComponentSeed(spec.Seed, seedKeyTasks))
	tgrid := newCellGrid(trng, spec.GridSize, spec.Tasks.Hotspots)
	tcount := newArrivalCounter(spec.Tasks, trng)
	tlam := make([]float64, len(tgrid.weights))
	shareTotal := 0.0
	for _, c := range spec.SLOClasses {
		shareTotal += c.Share
	}
	tid := 0
	for r := 0; r < spec.Rounds; r++ {
		now := float64(r) * Interval
		total := roundRates(tlam, spec.Tasks, tgrid, r)
		n := tcount.count(total)
		for k := 0; k < n; k++ {
			c := pickCell(trng, tlam, total)
			class := -1
			deadline := spec.Deadline
			if len(spec.SLOClasses) > 0 {
				u := trng.Float64() * shareTotal
				acc := 0.0
				class = len(spec.SLOClasses) - 1
				for ci, cl := range spec.SLOClasses {
					acc += cl.Share
					if u < acc {
						class = ci
						break
					}
				}
				deadline = spec.SLOClasses[class].Deadline
			}
			p.tasksByRound[r] = append(p.tasksByRound[r], model.Task{
				ID:       tid,
				Loc:      tgrid.point(trng, c),
				Capacity: spec.Capacity,
				Created:  now,
				Deadline: now + deadline,
			})
			p.taskClass = append(p.taskClass, class)
			tid++
		}
	}
	return p, nil
}

// NumWorkers returns the total worker arrivals over all rounds.
func (p *Plan) NumWorkers() int {
	n := 0
	for _, ws := range p.workersByRound {
		n += len(ws)
	}
	return n
}

// NumTasks returns the total task arrivals over all rounds.
func (p *Plan) NumTasks() int { return len(p.taskClass) }

// Rounds returns the plan's round count.
func (p *Plan) Rounds() int { return len(p.workersByRound) }

// ClassOf returns the SLO class index of task id (-1 when the scenario
// declares no classes or the id is unknown).
func (p *Plan) ClassOf(taskID int) int {
	if taskID < 0 || taskID >= len(p.taskClass) {
		return -1
	}
	return p.taskClass[taskID]
}

// ClassName returns the SLO class name of task id ("" for none).
func (p *Plan) ClassName(taskID int) string {
	ci := p.ClassOf(taskID)
	if ci < 0 || ci >= len(p.Spec.SLOClasses) {
		return ""
	}
	return p.Spec.SLOClasses[ci].Name
}

package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// SLO accounting: every task carries an SLO class drawn at generation
// time; the tracker observes which tasks were dispatched in which round
// and reports per-class wait distributions, violation counts, and a
// cross-class fairness index.

// SLOClassReport summarizes one class (or the implicit "all" aggregate).
type SLOClassReport struct {
	Name string `json:"name"`
	// Tasks is how many tasks of this class arrived.
	Tasks int `json:"tasks"`
	// Dispatched is how many of them were dispatched before run end.
	Dispatched int `json:"dispatched"`
	// Violations counts tasks dispatched later than the class wait target
	// plus tasks that expired undispatched.
	Violations int `json:"violations"`
	// MeanWait is the mean dispatch wait in rounds over dispatched tasks.
	MeanWait float64 `json:"mean_wait"`
	// MaxWait is the worst dispatch wait in rounds.
	MaxWait int `json:"max_wait"`
}

// DispatchRate is the fraction of this class's tasks that were dispatched.
func (c SLOClassReport) DispatchRate() float64 {
	if c.Tasks == 0 {
		return 0
	}
	return float64(c.Dispatched) / float64(c.Tasks)
}

// SLOReport is the per-class SLO outcome of a run.
type SLOReport struct {
	Classes []SLOClassReport `json:"classes"`
	// Fairness is Jain's index over per-class dispatch rates: 1 when every
	// class is served at the same rate, 1/n when one class takes all.
	Fairness float64 `json:"fairness"`
}

// String renders the report as a fixed-order table.
func (r *SLOReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %10s %10s %10s %8s\n",
		"class", "tasks", "dispatched", "violations", "mean_wait", "max_wait")
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "%-12s %8d %10d %10d %10.2f %8d\n",
			c.Name, c.Tasks, c.Dispatched, c.Violations, c.MeanWait, c.MaxWait)
	}
	fmt.Fprintf(&b, "fairness (Jain) = %.4f\n", r.Fairness)
	return b.String()
}

// sloTracker accumulates dispatch observations over a run.
type sloTracker struct {
	plan *Plan
	// createdRound[id] is the round task id arrived; dispatchRound[id] is
	// -1 until the task is dispatched.
	createdRound  map[int]int
	dispatchRound map[int]int
}

func newSLOTracker(p *Plan) *sloTracker {
	t := &sloTracker{
		plan:          p,
		createdRound:  make(map[int]int, p.NumTasks()),
		dispatchRound: make(map[int]int, p.NumTasks()),
	}
	for r := 0; r < p.Rounds(); r++ {
		for _, task := range p.tasksByRound[r] {
			t.createdRound[task.ID] = r
			t.dispatchRound[task.ID] = -1
		}
	}
	return t
}

// observeDispatch records that task id was dispatched at round r (first
// dispatch wins; carry-over re-solves never re-dispatch a task).
func (t *sloTracker) observeDispatch(taskID, round int) {
	if cur, ok := t.dispatchRound[taskID]; ok && cur < 0 {
		t.dispatchRound[taskID] = round
	}
}

// report folds the observations into per-class summaries. endRound is the
// first round index after the run (tasks still waiting whose deadline is
// at or before that time count as violations).
func (t *sloTracker) report(endRound int) *SLOReport {
	classes := t.plan.Spec.SLOClasses
	n := len(classes)
	if n == 0 {
		// No declared classes: everything aggregates under one row.
		n = 1
	}
	rep := &SLOReport{Classes: make([]SLOClassReport, n)}
	for i := range rep.Classes {
		if len(classes) > 0 {
			rep.Classes[i].Name = classes[i].Name
		} else {
			rep.Classes[i].Name = "all"
		}
	}
	waitSum := make([]float64, n)
	ids := make([]int, 0, len(t.createdRound))
	for id := range t.createdRound {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ci := t.plan.ClassOf(id)
		if ci < 0 {
			ci = 0
		}
		c := &rep.Classes[ci]
		c.Tasks++
		created := t.createdRound[id]
		disp := t.dispatchRound[id]
		if disp >= 0 {
			wait := disp - created
			c.Dispatched++
			waitSum[ci] += float64(wait)
			if wait > c.MaxWait {
				c.MaxWait = wait
			}
			if len(classes) > 0 && float64(wait) > classes[ci].TargetWait {
				c.Violations++
			}
		} else {
			// Undispatched: a violation once its deadline has passed by run
			// end (it can never be served within target).
			deadline := float64(created)*Interval + t.deadlineOf(ci)
			if deadline <= float64(endRound)*Interval {
				c.Violations++
			}
		}
	}
	rates := make([]float64, 0, n)
	for i := range rep.Classes {
		if rep.Classes[i].Dispatched > 0 {
			rep.Classes[i].MeanWait = waitSum[i] / float64(rep.Classes[i].Dispatched)
		}
		if rep.Classes[i].Tasks > 0 {
			rates = append(rates, rep.Classes[i].DispatchRate())
		}
	}
	rep.Fairness = jain(rates)
	return rep
}

func (t *sloTracker) deadlineOf(class int) float64 {
	classes := t.plan.Spec.SLOClasses
	if class >= 0 && class < len(classes) {
		return classes[class].Deadline
	}
	return t.plan.Spec.Deadline
}

// jain computes Jain's fairness index (Σx)² / (n·Σx²) over the rates.
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum, sum2 := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sum2 += x * x
	}
	if sum2 == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sum2)
}

// Package scenario is the discrete-event workload layer: seeded arrival
// processes (Poisson, Gamma/Weibull renewal, diurnal curves, flash-crowd
// bursts) driven per grid cell, per-request SLO classes with fairness and
// violation reporting, deterministic trace record/replay through
// internal/trace event streams, and decision tracing with counterfactual
// evaluation of the solvers not chosen. A scenario's entire event schedule
// is a pure function of its spec — generation happens up front, so the
// same spec replays bitwise into batch.Run (from-scratch or incremental)
// and into sharded clusters.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"casc/internal/assign"
)

// Arrival process names accepted by ProcessSpec.Process.
const (
	ProcPoisson  = "poisson"
	ProcGamma    = "gamma"
	ProcWeibull  = "weibull"
	ProcConstant = "constant"
)

// DiurnalSpec modulates a process's rate over the day: the multiplier at
// round r is 1 + Amplitude·sin(2π·(r/Period + Phase)), clamped at 0.
type DiurnalSpec struct {
	// Period is the cycle length in rounds (must be positive).
	Period float64 `json:"period"`
	// Amplitude in [0,1] scales the swing; 1 means the trough hits zero.
	Amplitude float64 `json:"amplitude"`
	// Phase shifts the curve by this fraction of a cycle.
	Phase float64 `json:"phase,omitempty"`
}

// BurstSpec overlays a flash crowd: rounds [Round, Round+Length) multiply
// the rate by Multiplier, either everywhere (Radius 0) or only in grid
// cells whose center lies within Radius of (X, Y).
type BurstSpec struct {
	Round      int     `json:"round"`
	Length     int     `json:"length,omitempty"` // default 1
	Multiplier float64 `json:"multiplier"`
	X          float64 `json:"x,omitempty"`
	Y          float64 `json:"y,omitempty"`
	Radius     float64 `json:"radius,omitempty"`
}

// ProcessSpec describes one arrival process (workers or tasks).
type ProcessSpec struct {
	// Process selects the arrival family: poisson, gamma, weibull, or
	// constant (deterministic rate with fractional carry).
	Process string `json:"process"`
	// Rate is the expected arrivals per round over the whole grid.
	Rate float64 `json:"rate"`
	// Shape is the gamma/weibull shape parameter k; values below 1 give
	// heavy-tailed, bursty interarrivals. Ignored by poisson/constant.
	Shape float64 `json:"shape,omitempty"`
	// Hotspots, when positive, concentrates arrivals around this many
	// seeded Gaussian centers instead of spreading them uniformly.
	Hotspots int `json:"hotspots,omitempty"`
	// Diurnal, when non-nil, modulates the rate over a daily cycle.
	Diurnal *DiurnalSpec `json:"diurnal,omitempty"`
	// Bursts overlays flash crowds on specific rounds and regions.
	Bursts []BurstSpec `json:"bursts,omitempty"`
}

// SLOClass is one latency/deadline tier. Tasks are assigned a class at
// generation time by seeded draw proportional to Share.
type SLOClass struct {
	Name string `json:"name"`
	// Share is the fraction of tasks in this class (normalized over all
	// classes).
	Share float64 `json:"share"`
	// Deadline is the class's task lifetime in rounds (creation → expiry).
	Deadline float64 `json:"deadline"`
	// TargetWait is the SLO: a task dispatched after waiting more than
	// this many rounds (or never dispatched before expiring) violates it.
	TargetWait float64 `json:"target_wait"`
}

// Spec is a complete scenario description, loadable from JSON.
type Spec struct {
	Name   string `json:"name"`
	Seed   int64  `json:"seed"`
	Rounds int    `json:"rounds"`
	// B is the least required workers per task (default 3).
	B int `json:"b,omitempty"`
	// Capacity is a_j for every task (default 5).
	Capacity int `json:"capacity,omitempty"`
	// GridSize is the number of cells per axis the arrival processes are
	// driven over (default 8 → 64 cells).
	GridSize int `json:"grid_size,omitempty"`
	// Solver dispatches each round (default GT).
	Solver string `json:"solver,omitempty"`
	// Alternates are the counterfactual solvers scored against the chosen
	// one when counterfactual evaluation is enabled (default: TPG and GT,
	// minus the chosen solver).
	Alternates []string `json:"alternates,omitempty"`
	// CounterfactualK bounds how many alternates are solved per round
	// (0: disabled unless overridden at run time).
	CounterfactualK int `json:"counterfactual_k,omitempty"`
	// SpeedRange and RadiusRange are the worker attribute ranges, drawn
	// with the paper's truncated Gaussian (defaults: Table II).
	SpeedRange  [2]float64 `json:"speed_range,omitempty"`
	RadiusRange [2]float64 `json:"radius_range,omitempty"`
	// Deadline is the task lifetime in rounds for tasks without an SLO
	// class (default 3, the paper's τ).
	Deadline float64 `json:"deadline,omitempty"`
	// Workers and Tasks are the two arrival processes.
	Workers ProcessSpec `json:"workers"`
	Tasks   ProcessSpec `json:"tasks"`
	// SLOClasses partitions tasks into latency tiers; empty means one
	// implicit tier with Spec.Deadline and no wait target.
	SLOClasses []SLOClass `json:"slo_classes,omitempty"`
}

// withDefaults fills the zero-value fields.
func (s Spec) withDefaults() Spec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Rounds <= 0 {
		s.Rounds = 10
	}
	if s.B == 0 {
		s.B = 3
	}
	if s.Capacity == 0 {
		s.Capacity = 5
	}
	if s.GridSize <= 0 {
		s.GridSize = 8
	}
	if s.Solver == "" {
		s.Solver = "GT"
	}
	if s.SpeedRange == [2]float64{} {
		s.SpeedRange = [2]float64{0.01, 0.05}
	}
	if s.RadiusRange == [2]float64{} {
		s.RadiusRange = [2]float64{0.05, 0.10}
	}
	if s.Deadline <= 0 {
		s.Deadline = 3
	}
	if s.Workers.Shape == 0 {
		s.Workers.Shape = 1
	}
	if s.Tasks.Shape == 0 {
		s.Tasks.Shape = 1
	}
	if len(s.Alternates) == 0 {
		for _, alt := range []string{"TPG", "GT"} {
			if alt != s.Solver {
				s.Alternates = append(s.Alternates, alt)
			}
		}
	}
	return s
}

// validProcess reports whether name is a known arrival family.
func validProcess(name string) bool {
	switch name {
	case ProcPoisson, ProcGamma, ProcWeibull, ProcConstant:
		return true
	}
	return false
}

// Validate rejects specs the generator cannot honour. Call on the
// defaulted spec (Load and Generate do this for you).
func (s Spec) Validate() error {
	if s.Rounds <= 0 {
		return fmt.Errorf("scenario: rounds = %d", s.Rounds)
	}
	if s.B < 2 {
		return fmt.Errorf("scenario: B = %d, want ≥ 2", s.B)
	}
	if s.Capacity < s.B {
		return fmt.Errorf("scenario: capacity %d below B = %d", s.Capacity, s.B)
	}
	if _, err := assign.ByName(s.Solver, s.Seed); err != nil {
		return fmt.Errorf("scenario: solver: %w", err)
	}
	for _, alt := range s.Alternates {
		if _, err := assign.ByName(alt, s.Seed); err != nil {
			return fmt.Errorf("scenario: alternate: %w", err)
		}
	}
	for _, kp := range []struct {
		kind string
		p    ProcessSpec
	}{{"workers", s.Workers}, {"tasks", s.Tasks}} {
		kind, p := kp.kind, kp.p
		if !validProcess(p.Process) {
			return fmt.Errorf("scenario: %s process %q (want poisson|gamma|weibull|constant)", kind, p.Process)
		}
		if p.Rate < 0 {
			return fmt.Errorf("scenario: %s rate %v negative", kind, p.Rate)
		}
		if p.Shape <= 0 {
			return fmt.Errorf("scenario: %s shape %v, want > 0", kind, p.Shape)
		}
		if p.Hotspots < 0 {
			return fmt.Errorf("scenario: %s hotspots %d negative", kind, p.Hotspots)
		}
		if d := p.Diurnal; d != nil {
			if d.Period <= 0 {
				return fmt.Errorf("scenario: %s diurnal period %v, want > 0", kind, d.Period)
			}
			if d.Amplitude < 0 || d.Amplitude > 1 {
				return fmt.Errorf("scenario: %s diurnal amplitude %v outside [0,1]", kind, d.Amplitude)
			}
		}
		for i, b := range p.Bursts {
			if b.Round < 0 || b.Multiplier < 0 {
				return fmt.Errorf("scenario: %s burst %d has negative round or multiplier", kind, i)
			}
		}
	}
	if s.SpeedRange[0] > s.SpeedRange[1] || s.SpeedRange[0] < 0 {
		return fmt.Errorf("scenario: bad speed range %v", s.SpeedRange)
	}
	if s.RadiusRange[0] > s.RadiusRange[1] || s.RadiusRange[0] < 0 {
		return fmt.Errorf("scenario: bad radius range %v", s.RadiusRange)
	}
	if s.Deadline <= 0 {
		return fmt.Errorf("scenario: deadline %v, want > 0", s.Deadline)
	}
	total := 0.0
	for i, c := range s.SLOClasses {
		if c.Name == "" {
			return fmt.Errorf("scenario: SLO class %d has no name", i)
		}
		if c.Share <= 0 {
			return fmt.Errorf("scenario: SLO class %q share %v, want > 0", c.Name, c.Share)
		}
		if c.Deadline <= 0 {
			return fmt.Errorf("scenario: SLO class %q deadline %v, want > 0", c.Name, c.Deadline)
		}
		if c.TargetWait < 0 {
			return fmt.Errorf("scenario: SLO class %q target wait %v negative", c.Name, c.TargetWait)
		}
		total += c.Share
	}
	if len(s.SLOClasses) > 0 && total <= 0 {
		return fmt.Errorf("scenario: SLO class shares sum to %v", total)
	}
	return nil
}

// Builtins returns the names of the built-in example scenarios, sorted.
func Builtins() []string {
	names := make([]string, 0, len(builtins))
	for name := range builtins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// builtins are ready-made specs: each arrival family at a modest scale,
// with SLO tiers and counterfactual alternates wired in so the tooling and
// the bench baseline have stable, committed-in-code workloads.
var builtins = map[string]Spec{
	"poisson": {
		Name: "poisson", Seed: 1, Rounds: 10,
		Workers: ProcessSpec{Process: ProcPoisson, Rate: 120},
		Tasks:   ProcessSpec{Process: ProcPoisson, Rate: 60},
		SLOClasses: []SLOClass{
			{Name: "gold", Share: 0.2, Deadline: 2, TargetWait: 0},
			{Name: "standard", Share: 0.8, Deadline: 4, TargetWait: 2},
		},
	},
	"gamma": {
		Name: "gamma", Seed: 1, Rounds: 10,
		Workers: ProcessSpec{Process: ProcGamma, Rate: 120, Shape: 0.5},
		Tasks:   ProcessSpec{Process: ProcGamma, Rate: 60, Shape: 0.5},
		SLOClasses: []SLOClass{
			{Name: "gold", Share: 0.2, Deadline: 2, TargetWait: 0},
			{Name: "standard", Share: 0.8, Deadline: 4, TargetWait: 2},
		},
	},
	"weibull": {
		Name: "weibull", Seed: 1, Rounds: 10,
		Workers: ProcessSpec{Process: ProcWeibull, Rate: 120, Shape: 0.7},
		Tasks:   ProcessSpec{Process: ProcWeibull, Rate: 60, Shape: 0.7},
		SLOClasses: []SLOClass{
			{Name: "gold", Share: 0.2, Deadline: 2, TargetWait: 0},
			{Name: "standard", Share: 0.8, Deadline: 4, TargetWait: 2},
		},
	},
	"diurnal": {
		Name: "diurnal", Seed: 1, Rounds: 12,
		Workers: ProcessSpec{
			Process: ProcPoisson, Rate: 120,
			Diurnal: &DiurnalSpec{Period: 12, Amplitude: 0.8},
		},
		Tasks: ProcessSpec{
			Process: ProcPoisson, Rate: 60,
			Diurnal: &DiurnalSpec{Period: 12, Amplitude: 0.8, Phase: 0.25},
		},
	},
	"flash": {
		Name: "flash", Seed: 1, Rounds: 10,
		Workers: ProcessSpec{Process: ProcPoisson, Rate: 100, Hotspots: 3},
		Tasks: ProcessSpec{
			Process: ProcPoisson, Rate: 40, Hotspots: 3,
			Bursts: []BurstSpec{{Round: 4, Length: 2, Multiplier: 6, X: 0.5, Y: 0.5, Radius: 0.25}},
		},
		SLOClasses: []SLOClass{
			{Name: "gold", Share: 0.3, Deadline: 2, TargetWait: 1},
			{Name: "standard", Share: 0.7, Deadline: 4, TargetWait: 3},
		},
	},
}

// Load resolves a spec reference: the name of a built-in scenario, or a
// path to a JSON spec file. The result has defaults applied and is
// validated.
func Load(ref string) (Spec, error) {
	if s, ok := builtins[ref]; ok {
		s = s.withDefaults()
		return s, s.Validate()
	}
	data, err := os.ReadFile(ref)
	if err != nil {
		if os.IsNotExist(err) {
			return Spec{}, fmt.Errorf("scenario: %q is neither a built-in (%v) nor a readable spec file", ref, Builtins())
		}
		return Spec{}, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing %s: %w", ref, err)
	}
	if s.Name == "" {
		s.Name = ref
	}
	s = s.withDefaults()
	return s, s.Validate()
}

package scenario

import (
	"fmt"
	"math"
	"sort"

	"casc/internal/assign"
	"casc/internal/checkin"
	"casc/internal/coop"
	"casc/internal/model"
	"casc/internal/stats"
	"casc/internal/trace"
)

// This file adapts plans to batch.Source and to the internal/trace event
// stream: recording exports a plan's schedule, replaying rebuilds an
// identical plan from the stream, and FromCheckin maps a check-in-shaped
// real trace onto the same event format.

// planSource feeds a plan into batch.Run.
type planSource struct{ p *Plan }

// Source adapts the plan to batch.Source. The quality model is the
// deterministic synthetic cooperation model over the plan's worker
// universe, seeded by the spec seed — the same construction for original
// runs and replays, which is what makes scores comparable bitwise.
func (p *Plan) Source() *planSource { return &planSource{p} }

func (s *planSource) WorkersAt(round int) []model.Worker {
	if round < 0 || round >= len(s.p.workersByRound) {
		return nil
	}
	return s.p.workersByRound[round]
}

func (s *planSource) TasksAt(round int) []model.Task {
	if round < 0 || round >= len(s.p.tasksByRound) {
		return nil
	}
	return s.p.tasksByRound[round]
}

func (s *planSource) Quality() model.QualityModel {
	return coop.Synthetic{N: s.p.Universe, Seed: uint64(s.p.Spec.Seed)}
}

// Events exports the plan as a replayable event stream: the meta header
// plus every arrival in schedule order (round-major, workers before
// tasks within a round, generation order within a kind).
func (p *Plan) Events(solver string) (trace.ReplayMeta, []trace.Event) {
	meta := trace.ReplayMeta{
		Scenario: p.Spec.Name,
		Seed:     p.Spec.Seed,
		Rounds:   p.Rounds(),
		B:        p.Spec.B,
		Solver:   solver,
		Universe: p.Universe,
	}
	var events []trace.Event
	for r := 0; r < p.Rounds(); r++ {
		for i := range p.workersByRound[r] {
			w := p.workersByRound[r][i]
			events = append(events, trace.Event{Kind: trace.EventWorker, Round: r, Worker: &w})
		}
		for i := range p.tasksByRound[r] {
			t := p.tasksByRound[r][i]
			events = append(events, trace.Event{
				Kind: trace.EventTask, Round: r, Task: &t,
				Class: p.ClassName(t.ID),
			})
		}
	}
	return meta, events
}

// FromEvents rebuilds a plan from a recorded event stream. The plan
// carries the meta's seed, B and round count; SLO classes are
// reconstructed from the per-task class names (deadline and wait targets
// default to the observed deadline spread when the original spec is not
// available, which preserves class membership — the property replay
// verification needs — even though the numeric targets may differ).
func FromEvents(meta trace.ReplayMeta, events []trace.Event) (*Plan, error) {
	if meta.Rounds <= 0 {
		return nil, fmt.Errorf("scenario: event stream meta has rounds = %d", meta.Rounds)
	}
	spec := Spec{
		Name:   meta.Scenario,
		Seed:   meta.Seed,
		Rounds: meta.Rounds,
		B:      meta.B,
		Solver: meta.Solver,
	}
	spec = spec.withDefaults()
	p := &Plan{
		Spec:           spec,
		workersByRound: make([][]model.Worker, meta.Rounds),
		tasksByRound:   make([][]model.Task, meta.Rounds),
	}
	classIndex := map[string]int{}
	classByTask := map[int]string{}
	maxWorkerID := -1
	maxTaskID := -1
	for i, ev := range events {
		if ev.Round >= meta.Rounds {
			return nil, fmt.Errorf("scenario: event %d at round %d beyond meta rounds %d", i, ev.Round, meta.Rounds)
		}
		switch ev.Kind {
		case trace.EventWorker:
			p.workersByRound[ev.Round] = append(p.workersByRound[ev.Round], *ev.Worker)
			if ev.Worker.ID > maxWorkerID {
				maxWorkerID = ev.Worker.ID
			}
		case trace.EventTask:
			p.tasksByRound[ev.Round] = append(p.tasksByRound[ev.Round], *ev.Task)
			if ev.Task.ID > maxTaskID {
				maxTaskID = ev.Task.ID
			}
			if ev.Class != "" {
				if _, ok := classIndex[ev.Class]; !ok {
					classIndex[ev.Class] = 0 // index assigned after the scan
				}
				classByTask[ev.Task.ID] = ev.Class
			}
		default:
			return nil, fmt.Errorf("scenario: event %d has kind %q", i, ev.Kind)
		}
	}
	p.Universe = meta.Universe
	if p.Universe <= maxWorkerID {
		p.Universe = maxWorkerID + 1
	}
	if p.Universe == 0 {
		p.Universe = 1
	}
	// Rebuild the class table in sorted-name order (first-seen order would
	// leak map iteration into nothing, but sorted is simplest to pin).
	names := make([]string, 0, len(classIndex))
	for name := range classIndex {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		classIndex[name] = i
		p.Spec.SLOClasses = append(p.Spec.SLOClasses, SLOClass{
			Name: name, Share: 1, Deadline: p.Spec.Deadline, TargetWait: math.Inf(1),
		})
	}
	if maxTaskID >= 0 {
		p.taskClass = make([]int, maxTaskID+1)
		for i := range p.taskClass {
			p.taskClass[i] = -1
		}
		for id, name := range classByTask {
			p.taskClass[id] = classIndex[name]
		}
	}
	return p, nil
}

// CheckinParams configures the check-in trace conversion.
type CheckinParams struct {
	// Rounds is how many batch rounds the trace's time span is mapped
	// onto.
	Rounds int
	// MaxTasks caps the number of visits converted to tasks (0: all);
	// visits are taken at an even stride so the cap preserves the trace's
	// temporal shape.
	MaxTasks int
	// B, Capacity, Deadline, SpeedRange and RadiusRange fill the worker
	// and task attributes the check-in trace does not carry.
	B           int
	Capacity    int
	Deadline    float64
	SpeedRange  [2]float64
	RadiusRange [2]float64
	// Seed drives the attribute draws and seeds the replay quality model.
	Seed int64
}

// DefaultCheckinParams mirrors the Table II bold defaults.
func DefaultCheckinParams() CheckinParams {
	return CheckinParams{
		Rounds:      10,
		B:           3,
		Capacity:    5,
		Deadline:    3,
		SpeedRange:  [2]float64{0.01, 0.05},
		RadiusRange: [2]float64{0.05, 0.10},
		Seed:        1,
	}
}

// FromCheckin converts a check-in trace into a scenario event stream:
// each user becomes a worker arriving at their home location in the round
// of their first visit, and each (strided) visit becomes a task at its
// venue in the round its timestamp maps to. The result plugs into the
// same record/replay machinery as generated scenarios, so a real-world-
// shaped trace drives batch.Run identically.
func FromCheckin(tr *checkin.Trace, p CheckinParams) (*Plan, error) {
	if p.Rounds <= 0 {
		return nil, fmt.Errorf("scenario: checkin conversion needs rounds > 0")
	}
	if p.B < 2 || p.Capacity < p.B {
		return nil, fmt.Errorf("scenario: checkin conversion B=%d capacity=%d invalid", p.B, p.Capacity)
	}
	visits := tr.Visits
	if len(visits) == 0 {
		return nil, fmt.Errorf("scenario: check-in trace has no visits")
	}
	tmin, tmax := visits[0].Time, visits[len(visits)-1].Time
	span := tmax - tmin
	roundOf := func(t float64) int {
		if span <= 0 {
			return 0
		}
		r := int((t - tmin) / span * float64(p.Rounds))
		if r >= p.Rounds {
			r = p.Rounds - 1
		}
		return r
	}
	spec := Spec{
		Name: "checkin", Seed: p.Seed, Rounds: p.Rounds, B: p.B,
		Capacity: p.Capacity, Deadline: p.Deadline,
		SpeedRange: p.SpeedRange, RadiusRange: p.RadiusRange,
		Workers: ProcessSpec{Process: ProcConstant, Rate: 0},
		Tasks:   ProcessSpec{Process: ProcConstant, Rate: 0},
	}
	spec = spec.withDefaults()
	plan := &Plan{
		Spec:           spec,
		workersByRound: make([][]model.Worker, p.Rounds),
		tasksByRound:   make([][]model.Task, p.Rounds),
	}
	rng := stats.NewRNG(assign.ComponentSeed(p.Seed, seedKeyWorkers))
	// Workers: one per user, arriving at the round of their first visit.
	firstRound := make([]int, tr.NumUsers())
	for u := range firstRound {
		firstRound[u] = -1
	}
	for _, v := range visits {
		if firstRound[v.User] < 0 {
			firstRound[v.User] = roundOf(v.Time)
		}
	}
	for u, r := range firstRound {
		if r < 0 {
			continue // user never checked in
		}
		plan.workersByRound[r] = append(plan.workersByRound[r], model.Worker{
			ID:     u,
			Loc:    tr.HomeLocs[u],
			Speed:  stats.TruncGaussian(rng, spec.SpeedRange[0], spec.SpeedRange[1], stats.PaperSigma),
			Radius: stats.TruncGaussian(rng, spec.RadiusRange[0], spec.RadiusRange[1], stats.PaperSigma),
			Arrive: float64(r) * Interval,
		})
	}
	plan.Universe = tr.NumUsers()
	// Tasks: strided visits become venue tasks.
	stride := 1
	if p.MaxTasks > 0 && len(visits) > p.MaxTasks {
		stride = (len(visits) + p.MaxTasks - 1) / p.MaxTasks
	}
	tid := 0
	for i := 0; i < len(visits); i += stride {
		v := visits[i]
		r := roundOf(v.Time)
		now := float64(r) * Interval
		plan.tasksByRound[r] = append(plan.tasksByRound[r], model.Task{
			ID:       tid,
			Loc:      tr.VenueLocs[v.Venue],
			Capacity: p.Capacity,
			Created:  now,
			Deadline: now + spec.Deadline,
		})
		plan.taskClass = append(plan.taskClass, -1)
		tid++
	}
	return plan, nil
}

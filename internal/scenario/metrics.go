package scenario

import "casc/internal/metrics"

// Scenario metric names. Constants so the metricname lint rule can verify
// every registered name appears in docs/OPERATIONS.md.
const (
	metricArrivals       = "casc_scenario_arrivals_total"
	metricSLOTasks       = "casc_scenario_slo_tasks_total"
	metricSLODispatched  = "casc_scenario_slo_dispatched_total"
	metricSLOViolations  = "casc_scenario_slo_violations_total"
	metricSLOWait        = "casc_scenario_slo_wait_rounds"
	metricRegret         = "casc_scenario_regret"
	metricCounterfactual = "casc_scenario_counterfactual_solves_total"
)

// publishMetrics pushes a finished run's scenario outcome into reg.
// Counters are registered once per label set, so repeated runs against the
// same registry accumulate.
func publishMetrics(reg *metrics.Registry, plan *Plan, slo *SLOReport, cf *CounterfactualReport) {
	if reg == nil {
		return
	}
	reg.Counter(metricArrivals, "Scenario arrivals generated, by entity kind.",
		metrics.L("kind", "worker")).Add(uint64(plan.NumWorkers()))
	reg.Counter(metricArrivals, "Scenario arrivals generated, by entity kind.",
		metrics.L("kind", "task")).Add(uint64(plan.NumTasks()))
	if slo != nil {
		waitBounds := metrics.ExponentialBuckets(1, 2, 8)
		for _, c := range slo.Classes {
			lbl := metrics.L("class", c.Name)
			reg.Counter(metricSLOTasks, "Scenario task arrivals, by SLO class.", lbl).Add(uint64(c.Tasks))
			reg.Counter(metricSLODispatched, "Scenario tasks dispatched, by SLO class.", lbl).Add(uint64(c.Dispatched))
			reg.Counter(metricSLOViolations, "Scenario SLO violations (late dispatch or expiry), by class.", lbl).Add(uint64(c.Violations))
			if c.Dispatched > 0 {
				h := reg.Histogram(metricSLOWait, "Scenario dispatch wait in rounds, by SLO class.", waitBounds, lbl)
				// The tracker keeps only the mean; observe it Dispatched
				// times so count and sum stay consistent.
				for i := 0; i < c.Dispatched; i++ {
					h.Observe(c.MeanWait)
				}
			}
		}
	}
	if cf != nil {
		reg.Counter(metricCounterfactual, "Counterfactual alternate solves performed.").Add(uint64(cf.Solves))
		h := reg.Histogram(metricRegret, "Per-round counterfactual regret (best alternate minus chosen score).", metrics.ScoreBuckets())
		for _, d := range cf.Decisions {
			h.Observe(d.Regret)
		}
	}
}

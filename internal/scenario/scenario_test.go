package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"casc/internal/checkin"
	"casc/internal/trace"
)

// churnSpec is the 50-round property-test workload: steady worker churn,
// heavy-tailed task arrivals, two SLO tiers.
func churnSpec() Spec {
	return Spec{
		Name: "churn", Seed: 7, Rounds: 50,
		Workers: ProcessSpec{Process: ProcPoisson, Rate: 30},
		Tasks:   ProcessSpec{Process: ProcGamma, Rate: 15, Shape: 0.6},
		SLOClasses: []SLOClass{
			{Name: "gold", Share: 0.25, Deadline: 2, TargetWait: 0},
			{Name: "standard", Share: 0.75, Deadline: 4, TargetWait: 2},
		},
	}
}

func TestSpecDefaultsAndValidate(t *testing.T) {
	s := Spec{
		Workers: ProcessSpec{Process: ProcPoisson, Rate: 10},
		Tasks:   ProcessSpec{Process: ProcPoisson, Rate: 5},
	}.withDefaults()
	if s.Seed != 1 || s.Rounds != 10 || s.B != 3 || s.Capacity != 5 || s.Solver != "GT" {
		t.Fatalf("defaults = %+v", s)
	}
	if got := s.Alternates; len(got) != 1 || got[0] != "TPG" {
		t.Fatalf("default alternates = %v (chosen GT must be excluded)", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("defaulted spec invalid: %v", err)
	}
	bad := []Spec{
		{Workers: ProcessSpec{Process: "pareto", Rate: 1}, Tasks: ProcessSpec{Process: ProcPoisson, Rate: 1}},
		{Workers: ProcessSpec{Process: ProcPoisson, Rate: -1}, Tasks: ProcessSpec{Process: ProcPoisson, Rate: 1}},
		{Solver: "NOPE", Workers: ProcessSpec{Process: ProcPoisson, Rate: 1}, Tasks: ProcessSpec{Process: ProcPoisson, Rate: 1}},
		{
			Workers:    ProcessSpec{Process: ProcPoisson, Rate: 1},
			Tasks:      ProcessSpec{Process: ProcPoisson, Rate: 1},
			SLOClasses: []SLOClass{{Name: "", Share: 1, Deadline: 1}},
		},
	}
	for i, b := range bad {
		if err := b.withDefaults().Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

func TestBuiltinsLoad(t *testing.T) {
	names := Builtins()
	if len(names) == 0 {
		t.Fatal("no builtins")
	}
	for _, name := range names {
		s, err := Load(name)
		if err != nil {
			t.Fatalf("Load(%q): %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("Load(%q).Name = %q", name, s.Name)
		}
		if _, err := Generate(s); err != nil {
			t.Fatalf("Generate(%q): %v", name, err)
		}
	}
	if _, err := Load("no-such-scenario"); err == nil {
		t.Fatal("unknown ref loaded")
	}
}

func TestLoadJSONFile(t *testing.T) {
	spec := churnSpec()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "churn.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load(file): %v", err)
	}
	if got.Name != "churn" || got.Rounds != 50 || got.Tasks.Shape != 0.6 {
		t.Fatalf("loaded spec = %+v", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(churnSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(churnSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations of the same spec differ")
	}
	if a.NumWorkers() == 0 || a.NumTasks() == 0 {
		t.Fatalf("empty plan: %d workers, %d tasks", a.NumWorkers(), a.NumTasks())
	}
}

func TestArrivalRatesTrackSpec(t *testing.T) {
	spec := Spec{
		Name: "rates", Seed: 11, Rounds: 40,
		Workers: ProcessSpec{Process: ProcPoisson, Rate: 50},
		Tasks:   ProcessSpec{Process: ProcWeibull, Rate: 25, Shape: 0.8},
	}
	p, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantW, wantT := 50.0*40, 25.0*40
	if got := float64(p.NumWorkers()); math.Abs(got-wantW)/wantW > 0.15 {
		t.Errorf("worker arrivals = %v, want ≈ %v", got, wantW)
	}
	if got := float64(p.NumTasks()); math.Abs(got-wantT)/wantT > 0.20 {
		t.Errorf("task arrivals = %v, want ≈ %v", got, wantT)
	}
}

func TestSLOClassShares(t *testing.T) {
	p, err := Generate(churnSpec())
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(p.Spec.SLOClasses))
	for id := 0; id < p.NumTasks(); id++ {
		ci := p.ClassOf(id)
		if ci < 0 {
			t.Fatalf("task %d has no class", id)
		}
		counts[ci]++
	}
	goldFrac := float64(counts[0]) / float64(p.NumTasks())
	if math.Abs(goldFrac-0.25) > 0.06 {
		t.Errorf("gold share = %v, want ≈ 0.25", goldFrac)
	}
	if got := p.ClassName(0); got != "gold" && got != "standard" {
		t.Errorf("ClassName(0) = %q", got)
	}
}

func TestBurstRaisesArrivals(t *testing.T) {
	base := Spec{
		Name: "burst", Seed: 3, Rounds: 8, GridSize: 4,
		Workers: ProcessSpec{Process: ProcConstant, Rate: 10},
		Tasks: ProcessSpec{
			Process: ProcConstant, Rate: 20,
			Bursts: []BurstSpec{{Round: 3, Length: 2, Multiplier: 5}},
		},
	}
	p, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	quiet, burst := len(p.tasksByRound[1]), len(p.tasksByRound[3])
	if burst < 3*quiet {
		t.Errorf("burst round has %d tasks vs quiet %d, want ≥ 3×", burst, quiet)
	}
}

func TestDiurnalModulatesArrivals(t *testing.T) {
	spec := Spec{
		Name: "wave", Seed: 5, Rounds: 12,
		Workers: ProcessSpec{
			Process: ProcConstant, Rate: 40,
			Diurnal: &DiurnalSpec{Period: 12, Amplitude: 1},
		},
		Tasks: ProcessSpec{Process: ProcConstant, Rate: 1},
	}
	p, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	peak := len(p.workersByRound[3])   // sin peaks at r = Period/4
	trough := len(p.workersByRound[9]) // trough at 3·Period/4, factor 0
	if peak <= trough {
		t.Errorf("peak round arrivals %d not above trough %d", peak, trough)
	}
	if trough != 0 {
		t.Errorf("amplitude-1 trough should generate 0 workers, got %d", trough)
	}
}

// runPlan executes the plan and returns the run's trace records.
func runPlan(t *testing.T, cfg RunConfig) ([]trace.Record, *Report) {
	t.Helper()
	var buf bytes.Buffer
	cfg.Trace = trace.NewWriter(&buf)
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(recs); err != nil {
		t.Fatal(err)
	}
	return recs, rep
}

// sameDecisions fails unless both runs made bitwise-identical decisions:
// same scores (Float64bits) and the same dispatched pair sets per record.
func sameDecisions(t *testing.T, label string, a, b []trace.Record) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d records vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Run != b[i].Run || a[i].Round != b[i].Round {
			t.Fatalf("%s: record %d identity differs: %+v vs %+v", label, i, a[i], b[i])
		}
		if math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			t.Fatalf("%s: record %d score %v vs %v (not bitwise equal)", label, i, a[i].Score, b[i].Score)
		}
		if !reflect.DeepEqual(a[i].Pairs, b[i].Pairs) {
			t.Fatalf("%s: record %d pairs differ:\n%v\nvs\n%v", label, i, a[i].Pairs, b[i].Pairs)
		}
	}
}

// roundTripPlan records the plan to an event stream and replays it back.
func roundTripPlan(t *testing.T, p *Plan) *Plan {
	t.Helper()
	meta, events := p.Events(p.Spec.Solver)
	var buf bytes.Buffer
	if err := trace.WriteEvents(&buf, meta, events); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotEvents, err := trace.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := FromEvents(gotMeta, gotEvents)
	if err != nil {
		t.Fatal(err)
	}
	return replay
}

// TestReplayBitwise is the PR's acceptance property: a recorded 50-round
// churn run replays bitwise — identical trace scores and pair sets — in
// from-scratch mode, under the incremental engine, and on a 4-shard
// cluster.
func TestReplayBitwise(t *testing.T) {
	plan, err := Generate(churnSpec())
	if err != nil {
		t.Fatal(err)
	}
	replay := roundTripPlan(t, plan)
	if plan.NumWorkers() != replay.NumWorkers() || plan.NumTasks() != replay.NumTasks() {
		t.Fatalf("replayed plan sized %d/%d, want %d/%d",
			replay.NumWorkers(), replay.NumTasks(), plan.NumWorkers(), plan.NumTasks())
	}

	modes := []struct {
		name string
		cfg  func(p *Plan) RunConfig
	}{
		{"scratch", func(p *Plan) RunConfig { return RunConfig{Plan: p} }},
		{"incremental", func(p *Plan) RunConfig { return RunConfig{Plan: p, Incremental: true} }},
		{"shards4", func(p *Plan) RunConfig { return RunConfig{Plan: p, Shards: 4} }},
	}
	var scratch []trace.Record
	for _, m := range modes {
		orig, _ := runPlan(t, m.cfg(plan))
		re, _ := runPlan(t, m.cfg(replay))
		sameDecisions(t, m.name, orig, re)
		if m.name == "scratch" {
			scratch = orig
		}
		if m.name == "incremental" {
			// The incremental engine itself must agree with the from-scratch
			// loop on the same plan (deterministic solver).
			sameDecisions(t, "scratch-vs-incremental", scratch, orig)
		}
	}
}

func TestCounterfactualReport(t *testing.T) {
	spec, err := Load("poisson")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]trace.Record, *Report) {
		return runPlan(t, RunConfig{Plan: plan, CounterfactualK: -1})
	}
	recs, rep := run()
	cf := rep.Counterfactual
	if cf == nil {
		t.Fatal("no counterfactual report")
	}
	if cf.Chosen != "GT" {
		t.Fatalf("chosen = %q", cf.Chosen)
	}
	if len(cf.Decisions) == 0 || cf.Solves != len(cf.Decisions)*len(cf.AltTotals) {
		t.Fatalf("decisions=%d solves=%d alts=%d", len(cf.Decisions), cf.Solves, len(cf.AltTotals))
	}
	for _, d := range cf.Decisions {
		if d.Regret < 0 {
			t.Fatalf("round %d negative regret %v", d.Round, d.Regret)
		}
	}
	if cf.MaxRegret < cf.MeanRegret {
		t.Fatalf("max regret %v below mean %v", cf.MaxRegret, cf.MeanRegret)
	}
	sawCF := false
	for _, r := range recs {
		if strings.HasPrefix(r.Run, "cf:") {
			sawCF = true
			break
		}
	}
	if !sawCF {
		t.Fatal("no cf: records in trace")
	}
	// Counterfactuals must not perturb determinism: a second run agrees
	// bitwise, decisions included.
	recs2, rep2 := run()
	sameDecisions(t, "cf-rerun", recs, recs2)
	j1, _ := json.Marshal(rep.Counterfactual)
	j2, _ := json.Marshal(rep2.Counterfactual)
	if !bytes.Equal(j1, j2) {
		t.Fatal("counterfactual reports differ across reruns")
	}
	// And the chosen run's records must match a plain run without them.
	plain, _ := runPlan(t, RunConfig{Plan: plan})
	var chosenOnly []trace.Record
	for _, r := range recs {
		if !strings.HasPrefix(r.Run, "cf:") {
			chosenOnly = append(chosenOnly, r)
		}
	}
	sameDecisions(t, "cf-vs-plain", plain, chosenOnly)
}

func TestCounterfactualRejectsShards(t *testing.T) {
	plan, err := Generate(churnSpec())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), RunConfig{Plan: plan, Shards: 2, CounterfactualK: 1})
	if err == nil {
		t.Fatal("counterfactual + shards accepted")
	}
}

func TestSLOReport(t *testing.T) {
	plan, err := Generate(churnSpec())
	if err != nil {
		t.Fatal(err)
	}
	_, rep := runPlan(t, RunConfig{Plan: plan})
	if rep.SLO == nil {
		t.Fatal("no SLO report")
	}
	total := 0
	for _, c := range rep.SLO.Classes {
		total += c.Tasks
		if c.Dispatched > c.Tasks {
			t.Fatalf("class %s dispatched %d of %d", c.Name, c.Dispatched, c.Tasks)
		}
		if c.Violations > c.Tasks {
			t.Fatalf("class %s violations %d of %d", c.Name, c.Violations, c.Tasks)
		}
	}
	if total != plan.NumTasks() {
		t.Fatalf("SLO classes cover %d tasks, plan has %d", total, plan.NumTasks())
	}
	if rep.SLO.Fairness <= 0 || rep.SLO.Fairness > 1+1e-9 {
		t.Fatalf("fairness = %v", rep.SLO.Fairness)
	}
	if rep.SLO.String() == "" {
		t.Fatal("empty SLO rendering")
	}
}

func TestReplaySolverOverride(t *testing.T) {
	plan, err := Generate(churnSpec())
	if err != nil {
		t.Fatal(err)
	}
	_, gt := runPlan(t, RunConfig{Plan: plan})
	_, tpg := runPlan(t, RunConfig{Plan: plan, Solver: "TPG"})
	if gt.Solver != "GT" || tpg.Solver != "TPG" {
		t.Fatalf("solver labels %q / %q", gt.Solver, tpg.Solver)
	}
	if gt.Score < tpg.Score {
		t.Logf("note: GT %v below TPG %v on this workload", gt.Score, tpg.Score)
	}
}

func TestFromCheckin(t *testing.T) {
	cfg := checkin.Default()
	cfg.NumUsers, cfg.NumVenues, cfg.VisitsPerUser = 200, 50, 10
	tr := checkin.Generate(cfg)
	p := DefaultCheckinParams()
	p.Rounds = 6
	p.MaxTasks = 300
	plan, err := FromCheckin(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rounds() != 6 {
		t.Fatalf("rounds = %d", plan.Rounds())
	}
	if plan.NumWorkers() == 0 || plan.NumWorkers() > cfg.NumUsers {
		t.Fatalf("workers = %d of %d users", plan.NumWorkers(), cfg.NumUsers)
	}
	if plan.NumTasks() == 0 || plan.NumTasks() > 300+50 {
		t.Fatalf("tasks = %d, cap 300", plan.NumTasks())
	}
	// The converted plan must survive record → replay → run like any other.
	replay := roundTripPlan(t, plan)
	orig, _ := runPlan(t, RunConfig{Plan: plan})
	re, _ := runPlan(t, RunConfig{Plan: replay})
	sameDecisions(t, "checkin-replay", orig, re)
}

func TestEventStreamErrors(t *testing.T) {
	if _, _, err := trace.ReadEvents(strings.NewReader(`{"kind":"worker"}`)); err == nil {
		t.Fatal("worker event without payload accepted")
	}
	if _, _, err := trace.ReadEvents(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted (no meta)")
	}
	meta := trace.ReplayMeta{Seed: 1, Rounds: 2, B: 3, Solver: "GT", Universe: 1}
	var buf bytes.Buffer
	if err := trace.WriteEvents(&buf, meta, []trace.Event{{Kind: trace.EventMeta, Meta: &meta}}); err == nil {
		t.Fatal("duplicate meta accepted")
	}
}

package scenario

import (
	"context"
	"fmt"

	"casc/internal/assign"
	"casc/internal/model"
	"casc/internal/trace"
)

// Counterfactual decision tracing: after every round's chosen assignment
// is committed, the evaluator re-solves the identical instance with each
// alternate solver and records the score of the road not taken. The
// per-round regret — best alternate score minus chosen score, floored at
// zero — quantifies what the chosen policy left on the table.
//
// Alternate solves are seeded assign.ComponentSeed(seed, round*K+i+1):
// forked from the component-seed derivation rather than the round seed so
// a randomized alternate's stream can never collide with (or perturb) the
// chosen solver's own per-component streams. Deterministic alternates
// ignore the seed entirely, which keeps replays bitwise-stable with
// counterfactuals enabled (DESIGN.md §14).

// AlternateScore is one alternate solver's outcome on a round's instance.
type AlternateScore struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// Decision records one round's chosen score against its alternates.
type Decision struct {
	Round       int              `json:"round"`
	ChosenScore float64          `json:"chosen_score"`
	Alternates  []AlternateScore `json:"alternates"`
	// Regret is max(0, best alternate − chosen).
	Regret float64 `json:"regret"`
}

// CounterfactualReport aggregates the decisions of a run.
type CounterfactualReport struct {
	Chosen    string     `json:"chosen"`
	Decisions []Decision `json:"decisions"`
	// Solves counts alternate solver invocations.
	Solves int `json:"solves"`
	// TotalRegret, MeanRegret and MaxRegret summarize per-round regret
	// over rounds that solved an instance.
	TotalRegret float64 `json:"total_regret"`
	MeanRegret  float64 `json:"mean_regret"`
	MaxRegret   float64 `json:"max_regret"`
	// AltTotals[i] is alternate i's summed score over all solved rounds,
	// aligned with the alternate order of the spec.
	AltTotals []AlternateScore `json:"alt_totals"`
}

// finish computes the aggregate fields from the decision list.
func (r *CounterfactualReport) finish() {
	if len(r.Decisions) == 0 {
		return
	}
	for _, d := range r.Decisions {
		r.TotalRegret += d.Regret
		if d.Regret > r.MaxRegret {
			r.MaxRegret = d.Regret
		}
	}
	r.MeanRegret = r.TotalRegret / float64(len(r.Decisions))
}

// counterfactual is the batch.Config.Observer implementation.
type counterfactual struct {
	chosen     string
	alternates []string
	seed       int64
	parallel   bool
	workers    int
	tw         *trace.Writer
	rep        CounterfactualReport
	altTotals  []float64
}

// newCounterfactual builds the evaluator for spec's alternates, keeping
// the first k (k ≤ 0 keeps all). tw, when non-nil, receives one
// trace.Record per alternate per round under run name "cf:<solver>" —
// interleaved after the chosen record, so casc-trace summarize shows the
// chosen run and every counterfactual side by side.
func newCounterfactual(spec Spec, k int, parallel bool, workers int, tw *trace.Writer) (*counterfactual, error) {
	alts := spec.Alternates
	if k > 0 && k < len(alts) {
		alts = alts[:k]
	}
	if len(alts) == 0 {
		return nil, fmt.Errorf("scenario: counterfactuals requested but spec has no alternates")
	}
	for _, name := range alts {
		if name == spec.Solver {
			return nil, fmt.Errorf("scenario: alternate %q is the chosen solver", name)
		}
	}
	c := &counterfactual{
		chosen:     spec.Solver,
		alternates: alts,
		seed:       spec.Seed,
		parallel:   parallel,
		workers:    workers,
		tw:         tw,
		altTotals:  make([]float64, len(alts)),
	}
	c.rep.Chosen = spec.Solver
	return c, nil
}

// observe scores every alternate on the round's instance. in and a are
// nil on short-circuited rounds (nothing to re-solve). The instance is
// treated as read-only, per the batch.Config.Observer contract.
func (c *counterfactual) observe(ctx context.Context, round int, now float64, in *model.Instance, a *model.Assignment) error {
	if in == nil || a == nil {
		return nil
	}
	k := len(c.alternates)
	d := Decision{
		Round:       round,
		ChosenScore: dispatchScore(in, a),
		Alternates:  make([]AlternateScore, 0, k),
	}
	best := 0.0
	for i, name := range c.alternates {
		altSeed := assign.ComponentSeed(c.seed, round*k+i+1)
		solver, err := assign.ByName(name, altSeed)
		if err != nil {
			return fmt.Errorf("scenario: alternate %q: %w", name, err)
		}
		if c.parallel {
			solver = assign.NewParallel(solver, assign.ParallelOptions{Workers: c.workers, Seed: altSeed})
		}
		alt, err := solver.Solve(ctx, in)
		if err != nil {
			return fmt.Errorf("scenario: round %d alternate %q: %w", round, name, err)
		}
		if err := alt.Validate(in); err != nil {
			return fmt.Errorf("scenario: round %d alternate %q invalid: %w", round, name, err)
		}
		score := dispatchScore(in, alt)
		c.rep.Solves++
		c.altTotals[i] += score
		d.Alternates = append(d.Alternates, AlternateScore{Name: name, Score: score})
		if score > best {
			best = score
		}
		if c.tw != nil {
			rec := trace.Record{
				Run:     "cf:" + name,
				Round:   round,
				Time:    now,
				Solver:  name,
				Workers: len(in.Workers),
				Tasks:   len(in.Tasks),
				Score:   score,
				Upper:   assign.Upper(in),
			}
			for ti, ws := range alt.TaskWorkers {
				if len(ws) < in.B {
					continue
				}
				for _, wi := range ws {
					rec.Pairs = append(rec.Pairs, model.Pair{Worker: in.Workers[wi].ID, Task: in.Tasks[ti].ID})
				}
			}
			if err := c.tw.Append(rec); err != nil {
				return err
			}
		}
	}
	if best > d.ChosenScore {
		d.Regret = best - d.ChosenScore
	}
	c.rep.Decisions = append(c.rep.Decisions, d)
	return nil
}

// report finalizes and returns the run's counterfactual report.
func (c *counterfactual) report() *CounterfactualReport {
	for i, name := range c.alternates {
		c.rep.AltTotals = append(c.rep.AltTotals, AlternateScore{Name: name, Score: c.altTotals[i]})
	}
	c.rep.finish()
	return &c.rep
}

// dispatchScore is the dispatch-eligible score of an assignment: the sum
// of group qualities over tasks holding at least B workers — exactly the
// quantity batch.Run accumulates into BatchStats.Score at dispatch
// (model.GroupQuality is zero below B, so TotalScore matches).
func dispatchScore(in *model.Instance, a *model.Assignment) float64 {
	return a.TotalScore(in)
}

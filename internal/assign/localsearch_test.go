package assign

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"casc/internal/coop"
	"casc/internal/game"
	"casc/internal/geo"
	"casc/internal/model"
)

// exchangeBlockedInstance builds the canonical case where a pure Nash
// equilibrium admits a profitable pairwise swap: two capacity-2 tasks,
// four workers, qualities arranged so the current grouping {a,b},{c,d} is
// stable under every unilateral move (including crowding) yet the swap
// b↔c improves both groups simultaneously.
func exchangeBlockedInstance() (*model.Instance, *model.Assignment) {
	q := coop.NewMatrix(4)
	q.Set(0, 1, 0.5) // a-b
	q.Set(2, 3, 0.5) // c-d
	q.Set(0, 2, 0.6) // a-c
	q.Set(1, 3, 0.6) // b-d
	in := &model.Instance{Quality: q, B: 2}
	for i := 0; i < 4; i++ {
		in.Workers = append(in.Workers, model.Worker{ID: i, Loc: geo.Pt(0.5, 0.5), Speed: 1, Radius: 1})
	}
	in.Tasks = []model.Task{
		{ID: 0, Loc: geo.Pt(0.4, 0.5), Capacity: 2, Deadline: 10},
		{ID: 1, Loc: geo.Pt(0.6, 0.5), Capacity: 2, Deadline: 10},
	}
	in.BuildCandidates(model.IndexLinear)
	a := model.NewAssignment(in)
	a.Assign(0, 0) // a
	a.Assign(1, 0) // b
	a.Assign(2, 1) // c
	a.Assign(3, 1) // d
	return in, a
}

// fixedSolver returns a pre-built assignment; used to seed LocalSearch.
type fixedSolver struct{ a *model.Assignment }

func (f fixedSolver) Name() string { return "FIXED" }
func (f fixedSolver) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	return f.a.Clone(), nil
}

func TestLocalSearchEscapesNash(t *testing.T) {
	in, a := exchangeBlockedInstance()
	// Verify the starting point is a genuine Nash equilibrium.
	g := newCASCGame(in, a)
	if !game.IsNash(g, 1e-9) {
		t.Fatal("setup: grouping {a,b},{c,d} should be Nash")
	}
	if got := a.TotalScore(in); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("starting score %v, want 2.0", got)
	}
	ls := NewLocalSearch(fixedSolver{a: a})
	out, err := ls.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.TotalScore(in); math.Abs(got-2.4) > 1e-9 {
		t.Fatalf("local search score %v, want 2.4 (swap b↔c)", got)
	}
	if ls.Swaps == 0 {
		t.Error("no swaps recorded")
	}
	if err := out.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestLocalSearchNeverHurts(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	ctx := context.Background()
	for trial := 0; trial < 8; trial++ {
		in := randomInstance(r, 60, 20, 3)
		base, err := NewGT(GTOptions{}).Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		ls := NewLocalSearch(fixedSolver{a: base})
		out, err := ls.Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Validate(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if out.TotalScore(in) < base.TotalScore(in)-1e-9 {
			t.Fatalf("trial %d: LS lowered score %v -> %v",
				trial, base.TotalScore(in), out.TotalScore(in))
		}
		if ub := Upper(in); out.TotalScore(in) > ub+1e-9 {
			t.Fatalf("trial %d: LS score above UPPER", trial)
		}
	}
}

func TestLocalSearchSometimesImprovesGT(t *testing.T) {
	// Over enough random instances the swap neighbourhood finds something
	// GT's unilateral moves missed at least once.
	r := rand.New(rand.NewSource(62))
	ctx := context.Background()
	improved := 0
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(r, 50, 15, 3)
		base, _ := NewGT(GTOptions{}).Solve(ctx, in)
		ls := NewLocalSearch(fixedSolver{a: base})
		out, _ := ls.Solve(ctx, in)
		if out.TotalScore(in) > base.TotalScore(in)+1e-9 {
			improved++
		}
	}
	if improved == 0 {
		t.Error("LS never improved any of 20 GT equilibria; swap move broken?")
	}
}

func TestLocalSearchName(t *testing.T) {
	ls := NewLocalSearch(nil)
	if ls.Name() != "GT+LS" {
		t.Errorf("Name = %q", ls.Name())
	}
	if ls.Base == nil {
		t.Error("nil base not defaulted")
	}
}

func TestLocalSearchCancelledContext(t *testing.T) {
	in, a := exchangeBlockedInstance()
	ls := NewLocalSearch(fixedSolver{a: a})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := ls.Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(in); err != nil {
		t.Fatal(err)
	}
}

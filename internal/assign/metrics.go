package assign

import (
	"context"

	"casc/internal/metrics"
	"casc/internal/model"
)

// Metric names recorded by the solver layer. Solver-agnostic series carry
// a solver="<Name>" label; solver-specific series are listed with the
// solver that emits them.
const (
	// MetricSolveSeconds is the per-Solve wall time histogram (all solvers).
	MetricSolveSeconds = "casc_solver_solve_seconds"
	// MetricSolveScore is the per-Solve total cooperation score histogram.
	MetricSolveScore = "casc_solver_score"
	// MetricSolves counts Solve calls.
	MetricSolves = "casc_solver_solves_total"
	// MetricSolveErrors counts Solve calls that returned an error.
	MetricSolveErrors = "casc_solver_errors_total"

	// MetricGTRounds counts best-response rounds run (GT family).
	MetricGTRounds = "casc_gt_rounds_total"
	// MetricGTSwaps counts strategy switches applied (GT family).
	MetricGTSwaps = "casc_gt_swaps_total"
	// MetricGTBestResponses counts utility maximizations performed; with
	// LUB this stays well below players×rounds — the pruning shows here.
	MetricGTBestResponses = "casc_gt_best_response_calls_total"
	// MetricGTPrunedBestResponses counts best-response evaluations the LUB
	// dirty-set tracking skipped (players×rounds − calls, clamped at 0).
	MetricGTPrunedBestResponses = "casc_gt_lub_pruned_best_responses_total"
	// MetricGTStops counts terminations by reason (nash, threshold,
	// max-rounds, context); reason="threshold" is the TSI prune firing.
	MetricGTStops = "casc_gt_stops_total"

	// MetricTPGHeapPushes / MetricTPGHeapPops count stage-two lazy-heap
	// operations (TPG).
	MetricTPGHeapPushes = "casc_tpg_heap_pushes_total"
	MetricTPGHeapPops   = "casc_tpg_heap_pops_total"
	// MetricTPGStaleReevals counts stage-two heap entries whose cached ΔQ
	// was stale and had to be re-evaluated (TPG).
	MetricTPGStaleReevals = "casc_tpg_stale_reevals_total"
	// MetricTPGSubsetRefreshes counts stage-one best-B-subset
	// recomputations; the dirty-tracking prune keeps this far below
	// tasks×iterations (TPG).
	MetricTPGSubsetRefreshes = "casc_tpg_subset_refreshes_total"
	// MetricTPGSubsetSkips counts stage-one iterations that reused a
	// cached best B-subset instead of recomputing it (TPG prune hits).
	MetricTPGSubsetSkips = "casc_tpg_subset_skips_total"
	// MetricTPGWarmHits / MetricTPGWarmMisses count stage-one iteration-0
	// subsets served from (or recomputed into) a cross-round Warm cache
	// (TPG under SolveWarm).
	MetricTPGWarmHits   = "casc_tpg_warm_hits_total"
	MetricTPGWarmMisses = "casc_tpg_warm_misses_total"

	// MetricArenaReuses counts solves served by an already-used scratch
	// arena — the zero-allocation steady state (TPG and GT families).
	MetricArenaReuses = "casc_arena_reuses_total"
	// MetricArenaGrows counts scratch-arena buffer (re)allocations during a
	// solve. The first solve of a size regime grows; a steady nonzero rate
	// afterwards means instance sizes keep outrunning the arena.
	MetricArenaGrows = "casc_arena_grows_total"
)

// Instrument wraps s so every Solve records wall time, score, and call
// counts into reg under a solver="<Name>" label, and hands reg to solvers
// with internal instrumentation (GT's round/swap/prune counters, TPG's
// heap and subset counters). The wrapper is itself a Solver, so it drops
// into the batch engine, the platform, and the harness unchanged.
func Instrument(s Solver, reg *metrics.Registry) Solver {
	if reg == nil {
		return s
	}
	switch v := s.(type) {
	case *GT:
		v.Metrics = reg
	case *TPG:
		v.Metrics = reg
	case *Parallel:
		// The decorator records its component gauges itself, and every
		// component fork inherits the registry through the inner solver's
		// Metrics field.
		v.opts.Metrics = reg
		switch inner := v.inner.(type) {
		case *GT:
			inner.Metrics = reg
		case *TPG:
			inner.Metrics = reg
		}
	case *instrumented:
		return v // already wrapped
	}
	return &instrumented{inner: s, reg: reg}
}

type instrumented struct {
	inner Solver
	reg   *metrics.Registry
}

// Name implements Solver.
func (i *instrumented) Name() string { return i.inner.Name() }

// Solve implements Solver.
func (i *instrumented) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	lbl := metrics.L("solver", i.inner.Name())
	start := now()
	a, err := i.inner.Solve(ctx, in)
	i.reg.Histogram(MetricSolveSeconds, "Solver wall time per batch in seconds.",
		metrics.LatencyBuckets(), lbl).Observe(now().Sub(start).Seconds())
	i.reg.Counter(MetricSolves, "Solve calls.", lbl).Inc()
	if err != nil {
		i.reg.Counter(MetricSolveErrors, "Solve calls that failed.", lbl).Inc()
		return a, err
	}
	if a != nil {
		i.reg.Histogram(MetricSolveScore, "Total cooperation score per batch.",
			metrics.ScoreBuckets(), lbl).Observe(a.TotalScore(in))
	}
	return a, nil
}

// SolveWarm implements WarmStarter by forwarding the warm cache to the
// wrapped solver when it supports warm starts, recording the same series as
// Solve. A non-warm inner solver just solves cold — the wrapper therefore
// always satisfies WarmStarter without changing any result.
func (i *instrumented) SolveWarm(ctx context.Context, in *model.Instance, warm *Warm) (*model.Assignment, error) {
	ws, ok := i.inner.(WarmStarter)
	if !ok || warm == nil {
		return i.Solve(ctx, in)
	}
	lbl := metrics.L("solver", i.inner.Name())
	start := now()
	a, err := ws.SolveWarm(ctx, in, warm)
	i.reg.Histogram(MetricSolveSeconds, "Solver wall time per batch in seconds.",
		metrics.LatencyBuckets(), lbl).Observe(now().Sub(start).Seconds())
	i.reg.Counter(MetricSolves, "Solve calls.", lbl).Inc()
	if err != nil {
		i.reg.Counter(MetricSolveErrors, "Solve calls that failed.", lbl).Inc()
		return a, err
	}
	if a != nil {
		i.reg.Histogram(MetricSolveScore, "Total cooperation score per batch.",
			metrics.ScoreBuckets(), lbl).Observe(a.TotalScore(in))
	}
	return a, nil
}

package assign

import (
	"casc/internal/game"
	"casc/internal/model"
)

// Arena is the reusable scratch memory of one solver's hot path. TPG and GT
// draw every per-solve buffer — the result assignment, the per-task
// GroupScores, the stage-one bitsets and flat B-set slots, the stage-two
// heap, and the best-response engine's queues — from here, so a solver that
// keeps one arena across solves reaches a zero-allocation steady state: the
// first solve of a size regime grows the buffers, subsequent solves only
// re-slice them (asserted by TestTPGSteadyStateAllocs / BenchEntry
// AllocsPerOp gating).
//
// The arena never changes what a solve computes — every buffer is fully
// re-initialized before use, so an arena-backed solve is bitwise identical
// to one running on fresh allocations (FuzzArenaEquivalence). What it does
// change is result lifetime: the *model.Assignment returned by a solve is
// arena-owned and valid only until the next solve on the same arena.
// Callers that retain results across solves (the harness tables, batch
// history) must consume or Clone them first; the Parallel pool and the
// incremental engine lift each component result before reusing the arena.
//
// An Arena is not safe for concurrent use. Solvers default to a throwaway
// arena per Solve (same code path, no reuse), so plain TPG/GT values stay
// as concurrency-safe as before; reuse is opt-in via SetArena, and
// Parallel's forks each get a per-pool-worker arena.
type Arena struct {
	// used reports whether any solve has drawn from the arena; reuses and
	// grows accumulate across solves and are flushed as metric deltas by the
	// owning solver's recordMetrics.
	used   bool
	reuses uint64
	grows  uint64

	// Worker-sized buffers.
	avail      []bool
	chosenMark []int // bestBSubset membership marks, epoch-stamped
	markEpoch  int

	// Task-sized buffers (TPG stage one / stage two).
	served    []bool
	remaining []bool
	dirty     []bool
	bestScore []float64
	bestSet   [][]int
	candCount []int
	version   []int
	groups    []*model.GroupScore

	// Flat B-set storage: bestSet[t] is filled in place from the slot
	// setStore[t*stride : t*stride+stride], stride = Instance.B.
	setStore  []int
	setStride int

	// bestBSubset candidate scratch and the truncateByAffinity sorter.
	cands  []int
	scored scoredCands

	// Stage-two lazy heap.
	pairs pairHeap

	// GT state: the strategic game and the best-response engine's queues.
	casc cascGame
	game game.Scratch

	// The result assignment handed back to the caller.
	result model.Assignment
}

// NewArena returns an empty arena; buffers grow on first use.
func NewArena() *Arena { return &Arena{} }

// ArenaHolder is implemented by solvers whose hot path can run on a caller
// supplied scratch arena (TPG and the GT family). Setting an arena makes
// Solve results arena-owned (valid until the next Solve on that arena) and
// the solver unsafe for concurrent Solve calls; passing nil restores the
// default throwaway-arena behaviour. Forks never inherit the parent's
// arena — Parallel runs forks concurrently and assigns each pool worker its
// own.
type ArenaHolder interface {
	SetArena(*Arena)
}

// begin marks the start of one top-level solve for the reuse statistics.
func (ar *Arena) begin() {
	if ar.used {
		ar.reuses++
	} else {
		ar.used = true
	}
}

// assignmentFor returns the arena's result assignment, emptied for in.
func (ar *Arena) assignmentFor(in *model.Instance) *model.Assignment {
	ar.result.Reset(in)
	return &ar.result
}

// groupsFor returns one emptied GroupScore per task of in.
func (ar *Arena) groupsFor(in *model.Instance) []*model.GroupScore {
	n := len(in.Tasks)
	if cap(ar.groups) < n {
		grown := make([]*model.GroupScore, len(ar.groups), n)
		copy(grown, ar.groups)
		ar.groups = grown
		ar.grows++
	}
	for len(ar.groups) < n {
		ar.groups = append(ar.groups, &model.GroupScore{})
	}
	gs := ar.groups[:n]
	for t := range gs {
		gs[t].Reset(in, in.Tasks[t].Capacity)
	}
	return gs
}

// boolsFor resizes *buf to n elements, all set to fill.
func (ar *Arena) boolsFor(buf *[]bool, n int, fill bool) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
		ar.grows++
	}
	b := (*buf)[:n]
	for i := range b {
		b[i] = fill
	}
	return b
}

// intsFor resizes *buf to n elements without clearing them; callers that
// need a defined initial value fill it themselves.
func (ar *Arena) intsFor(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
		ar.grows++
	}
	return (*buf)[:n]
}

// floatsFor resizes *buf to n elements without clearing them.
func (ar *Arena) floatsFor(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
		ar.grows++
	}
	return (*buf)[:n]
}

// setsFor readies the per-task B-set slots: n nil entries in bestSet backed
// by flat stride-b storage (see setSlot).
func (ar *Arena) setsFor(n, b int) [][]int {
	if cap(ar.bestSet) < n {
		ar.bestSet = make([][]int, n)
		ar.grows++
	}
	ar.bestSet = ar.bestSet[:n]
	for i := range ar.bestSet {
		ar.bestSet[i] = nil
	}
	if b < 1 {
		b = 1
	}
	if need := n * b; cap(ar.setStore) < need {
		ar.setStore = make([]int, need)
		ar.grows++
	}
	ar.setStride = b
	return ar.bestSet
}

// setSlot returns task t's empty B-set slot (length 0, capacity B) carved
// out of the flat store. Appending up to B workers never allocates, and
// slots of distinct tasks never alias.
func (ar *Arena) setSlot(t int) []int {
	off := t * ar.setStride
	return ar.setStore[off : off : off+ar.setStride]
}

// nextEpoch readies the chosenMark buffer for nWorkers and opens a fresh
// mark epoch: entries stamped with the returned value are "in the current
// set", everything older is free. This replaces a per-call map without any
// clearing loop.
func (ar *Arena) nextEpoch(nWorkers int) int {
	if cap(ar.chosenMark) < nWorkers {
		ar.chosenMark = make([]int, nWorkers)
		ar.markEpoch = 0
		ar.grows++
	}
	ar.chosenMark = ar.chosenMark[:nWorkers]
	ar.markEpoch++
	return ar.markEpoch
}

// scoredFor resizes the affinity sorter to n entries.
func (ar *Arena) scoredFor(n int) *scoredCands {
	if cap(ar.scored.w) < n {
		ar.scored.w = make([]int, n)
		ar.scored.s = make([]float64, n)
		ar.grows++
	}
	ar.scored.w = ar.scored.w[:n]
	ar.scored.s = ar.scored.s[:n]
	return &ar.scored
}

// scoredCands sorts candidate workers by descending affinity score for
// truncateByAffinity. Structure-of-arrays so sort.Sort works on a
// pre-existing pointer without the closure and reflect.Swapper allocations
// of sort.Slice; both run the identical pdqsort, so the resulting
// permutation — ties included — matches the previous sort.Slice exactly.
type scoredCands struct {
	w []int
	s []float64
}

func (sc *scoredCands) Len() int           { return len(sc.w) }
func (sc *scoredCands) Less(i, j int) bool { return sc.s[i] > sc.s[j] }
func (sc *scoredCands) Swap(i, j int) {
	sc.w[i], sc.w[j] = sc.w[j], sc.w[i]
	sc.s[i], sc.s[j] = sc.s[j], sc.s[i]
}

// gameFor readies the arena's CA-SC strategic game over init. The groups
// are rebuilt by replaying init.TaskWorkers in order, reproducing the float
// accumulation order of a freshly constructed game bit for bit.
func (ar *Arena) gameFor(in *model.Instance, init *model.Assignment) *cascGame {
	g := &ar.casc
	g.in = in
	g.groups = ar.groupsFor(in)
	g.cur = ar.intsFor(&g.cur, len(in.Workers))
	for w := range g.cur {
		g.cur[w] = model.Unassigned
	}
	g.affected = g.affected[:0]
	for t, ws := range init.TaskWorkers {
		for _, w := range ws {
			g.groups[t].Join(w)
			g.cur[w] = t
		}
	}
	return g
}

package assign

import (
	"context"
	"math/rand"
	"testing"
)

func TestGTHasZeroRegret(t *testing.T) {
	// The paper's fairness claim, operationalized: a converged GT
	// assignment leaves no worker with a profitable unilateral deviation.
	r := rand.New(rand.NewSource(81))
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(r, 60, 20, 3)
		a, err := NewGT(GTOptions{}).Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		s := SummarizeRegret(Regret(in, a))
		if s.Max > 1e-9 {
			t.Errorf("trial %d: GT equilibrium has max regret %v (workers: %d)",
				trial, s.Max, s.Workers)
		}
	}
}

func TestTPGLeavesRegret(t *testing.T) {
	// ... while TPG, being centrally greedy, generally leaves some workers
	// wishing they had chosen differently. Aggregated over instances the
	// effect must show (a single instance might coincidentally be stable).
	r := rand.New(rand.NewSource(82))
	totalWorkersWithRegret := 0
	for trial := 0; trial < 8; trial++ {
		in := randomInstance(r, 60, 20, 3)
		a, err := NewTPG().Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		s := SummarizeRegret(Regret(in, a))
		totalWorkersWithRegret += s.Workers
	}
	if totalWorkersWithRegret == 0 {
		t.Error("TPG produced zero-regret assignments on all 8 instances; " +
			"either miraculous or Regret is broken")
	}
}

func TestRandHasMoreRegretThanTPG(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	var tpgTotal, randTotal float64
	for trial := 0; trial < 8; trial++ {
		in := randomInstance(r, 60, 20, 3)
		aT, _ := NewTPG().Solve(context.Background(), in)
		aR, _ := NewRandom(int64(trial)).Solve(context.Background(), in)
		tpgTotal += SummarizeRegret(Regret(in, aT)).Total
		randTotal += SummarizeRegret(Regret(in, aR)).Total
	}
	if randTotal <= tpgTotal {
		t.Errorf("RAND total regret %v not above TPG %v", randTotal, tpgTotal)
	}
}

func TestSummarizeRegretEdgeCases(t *testing.T) {
	s := SummarizeRegret(nil)
	if s.Workers != 0 || s.Max != 0 || s.P95 != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	s = SummarizeRegret([]float64{0, 0, 0.5, 0.1})
	if s.Workers != 2 || s.Max != 0.5 || s.Total != 0.6 {
		t.Errorf("summary: %+v", s)
	}
}

func TestSampleEquilibria(t *testing.T) {
	r := rand.New(rand.NewSource(84))
	in := randomInstance(r, 60, 20, 3)
	sp, err := SampleEquilibria(context.Background(), in, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Scores) != 7 { // 6 random inits + TPG init
		t.Fatalf("sampled %d equilibria", len(sp.Scores))
	}
	if sp.Worst > sp.Mean || sp.Mean > sp.Best {
		t.Fatalf("spread ordering broken: %v ≤ %v ≤ %v", sp.Worst, sp.Mean, sp.Best)
	}
	if sp.Best > sp.Upper+1e-9 {
		t.Fatalf("best equilibrium %v above UPPER %v (PoS ≤ 1 violated)", sp.Best, sp.Upper)
	}
	if sp.Worst <= 0 {
		t.Fatal("worst equilibrium scored zero on a connected instance")
	}
	// §V-C: equilibria genuinely differ in quality. With 7 samples on a
	// random instance at least two distinct values are expected.
	distinct := 1
	for i := 1; i < len(sp.Scores); i++ {
		if sp.Scores[i] != sp.Scores[i-1] {
			distinct++
		}
	}
	if distinct < 2 {
		t.Log("all sampled equilibria identical (possible but unusual)")
	}
	// The TPG-initialized equilibrium should be competitive with the
	// random-start ones (the paper chose it for a reason).
	if sp.TPGInitScore < sp.Mean*0.95 {
		t.Errorf("TPG-init equilibrium %v well below the mean %v", sp.TPGInitScore, sp.Mean)
	}
}

func TestSampleEquilibriaCancelled(t *testing.T) {
	r := rand.New(rand.NewSource(85))
	in := randomInstance(r, 30, 10, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SampleEquilibria(ctx, in, 2); err != nil {
		t.Fatalf("cancelled sampling errored: %v", err)
	}
}

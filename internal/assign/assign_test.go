package assign

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"casc/internal/coop"
	"casc/internal/game"
	"casc/internal/geo"
	"casc/internal/model"
)

// exampleInstance reproduces Example 1 / Figure 1 of the paper: two tasks
// needing two workers each (B = a_j = 2) and four workers. Worker w1 can
// only accept t1; w2, w3, w4 reach both tasks. Qualities make the naive
// assignment score 0.2 and the good one 1.8.
func exampleInstance() *model.Instance {
	q := coop.NewMatrix(4)
	q.Set(0, 1, 0.05) // q(w1,w2)
	q.Set(2, 3, 0.05) // q(w3,w4)
	q.Set(0, 3, 0.50) // q(w1,w4)
	q.Set(1, 2, 0.40) // q(w2,w3)
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 1, Loc: geo.Pt(0.25, 0.25), Speed: 1, Radius: 0.15},
			{ID: 2, Loc: geo.Pt(0.45, 0.45), Speed: 1, Radius: 0.9},
			{ID: 3, Loc: geo.Pt(0.55, 0.55), Speed: 1, Radius: 0.9},
			{ID: 4, Loc: geo.Pt(0.35, 0.35), Speed: 1, Radius: 0.9},
		},
		Tasks: []model.Task{
			{ID: 1, Loc: geo.Pt(0.3, 0.3), Capacity: 2, Deadline: 10},
			{ID: 2, Loc: geo.Pt(0.7, 0.7), Capacity: 2, Deadline: 10},
		},
		Quality: q,
		B:       2,
	}
	in.BuildCandidates(model.IndexLinear)
	return in
}

// randomInstance builds a well-connected random CA-SC batch.
func randomInstance(r *rand.Rand, nW, nT, b int) *model.Instance {
	in := &model.Instance{
		Quality: coop.Synthetic{N: nW, Seed: uint64(r.Int63())},
		B:       b,
		Now:     0,
	}
	for i := 0; i < nW; i++ {
		in.Workers = append(in.Workers, model.Worker{
			ID:     i,
			Loc:    geo.Pt(r.Float64(), r.Float64()),
			Speed:  0.02 + r.Float64()*0.08,
			Radius: 0.1 + r.Float64()*0.2,
		})
	}
	for j := 0; j < nT; j++ {
		in.Tasks = append(in.Tasks, model.Task{
			ID:       j,
			Loc:      geo.Pt(r.Float64(), r.Float64()),
			Capacity: b + r.Intn(3),
			Deadline: 2 + r.Float64()*3,
		})
	}
	in.BuildCandidates(model.IndexRTree)
	return in
}

func allSolvers(t *testing.T) []Solver {
	t.Helper()
	var out []Solver
	for _, name := range AllNames() {
		s, err := ByName(name, 7)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, s.Name())
		}
		out = append(out, s)
	}
	return out
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("SIMPLEX", 0); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestAllSolversProduceValidAssignments(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ctx := context.Background()
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(r, 60, 20, 3)
		for _, s := range allSolvers(t) {
			a, err := s.Solve(ctx, in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, s.Name(), err)
			}
			if err := a.Validate(in); err != nil {
				t.Fatalf("trial %d %s: invalid assignment: %v", trial, s.Name(), err)
			}
			if score := a.TotalScore(in); score < 0 {
				t.Fatalf("trial %d %s: negative score %v", trial, s.Name(), score)
			}
		}
	}
}

func TestExample1TPGFindsGoodAssignment(t *testing.T) {
	in := exampleInstance()
	a, err := NewTPG().Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.TotalScore(in); math.Abs(got-1.8) > 1e-9 {
		t.Errorf("TPG score = %v, want 1.8 (the example's good assignment)", got)
	}
	// w1 (index 0) and w4 (index 3) must share task t1 (index 0).
	if a.TaskOf(0) != 0 || a.TaskOf(3) != 0 {
		t.Errorf("w1,w4 not on t1: tasks %d,%d", a.TaskOf(0), a.TaskOf(3))
	}
	if a.TaskOf(1) != 1 || a.TaskOf(2) != 1 {
		t.Errorf("w2,w3 not on t2: tasks %d,%d", a.TaskOf(1), a.TaskOf(2))
	}
}

func TestExample1GTFindsGoodAssignment(t *testing.T) {
	in := exampleInstance()
	gt := NewGT(GTOptions{})
	a, err := gt.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.TotalScore(in); math.Abs(got-1.8) > 1e-9 {
		t.Errorf("GT score = %v, want 1.8", got)
	}
	if gt.Stats.Reason != game.StopNash {
		t.Errorf("GT stopped by %s, want nash", gt.Stats.Reason)
	}
}

func TestGTReachesNashEquilibrium(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(r, 50, 15, 3)
		for _, opts := range []GTOptions{{}, {LUB: true}} {
			gt := NewGT(opts)
			a, err := gt.Solve(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			if gt.Stats.Reason != game.StopNash {
				t.Fatalf("trial %d %s: stopped by %s", trial, gt.Name(), gt.Stats.Reason)
			}
			// Rebuild the game at the final assignment and verify the Nash
			// property independently.
			g := newCASCGame(in, a)
			if !game.IsNash(g, 1e-9) {
				t.Fatalf("trial %d %s: final assignment is not a Nash equilibrium", trial, gt.Name())
			}
		}
	}
}

func TestGTImprovesOnTPG(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	worse := 0
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(r, 70, 25, 3)
		tpg, _ := NewTPG().Solve(context.Background(), in)
		gt, _ := NewGT(GTOptions{}).Solve(context.Background(), in)
		st, sg := tpg.TotalScore(in), gt.TotalScore(in)
		if sg < st-1e-9 {
			worse++
			t.Logf("trial %d: GT %v < TPG %v", trial, sg, st)
		}
	}
	// Best-response dynamics start from TPG and the potential only
	// increases, so GT can never score below TPG.
	if worse > 0 {
		t.Errorf("GT scored below its TPG initialization in %d/10 trials", worse)
	}
}

func TestExactPotentialPropertyTheoremV1(t *testing.T) {
	// For random unilateral deviations to non-full tasks, the utility change
	// must equal the potential change exactly (Theorem V.1).
	r := rand.New(rand.NewSource(4))
	in := randomInstance(r, 40, 12, 2)
	init, _ := NewRandom(1).Solve(context.Background(), in)
	g := newCASCGame(in, init)
	checked := 0
	for trial := 0; trial < 500; trial++ {
		w := r.Intn(len(in.Workers))
		cand := in.WorkerCand[w]
		if len(cand) == 0 {
			continue
		}
		si := r.Intn(len(cand) + 1) // include the "leave" strategy
		var utilityGain float64
		if si == len(cand) {
			if g.cur[w] == model.Unassigned {
				continue
			}
			utilityGain = -g.groups[g.cur[w]].LeaveDelta(w)
		} else {
			tsk := cand[si]
			if tsk == g.cur[w] {
				continue
			}
			if g.groups[tsk].Len() >= g.groups[tsk].Capacity() {
				continue // crowding moves are not exact-potential; skip
			}
			gain, evict := g.moveGain(w, tsk)
			if evict >= 0 {
				continue
			}
			utilityGain = gain
		}
		before := g.Potential()
		g.Apply(w, si)
		after := g.Potential()
		if math.Abs((after-before)-utilityGain) > 1e-9 {
			t.Fatalf("trial %d: ΔF = %v, ΔU = %v (exact potential violated)",
				trial, after-before, utilityGain)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d deviations checked; instance too sparse", checked)
	}
}

func TestUpperBoundsEverySolver(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ctx := context.Background()
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(r, 60, 20, 3)
		ub := Upper(in)
		for _, s := range allSolvers(t) {
			a, err := s.Solve(ctx, in)
			if err != nil {
				t.Fatal(err)
			}
			if score := a.TotalScore(in); score > ub+1e-9 {
				t.Errorf("trial %d: %s score %v exceeds UPPER %v", trial, s.Name(), score, ub)
			}
		}
	}
}

func TestUpperBoundsBruteForceOptimum(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(r, 7, 3, 2)
		opt, err := NewBruteForce().Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.Validate(in); err != nil {
			t.Fatalf("brute force produced invalid assignment: %v", err)
		}
		optScore := opt.TotalScore(in)
		if ub := Upper(in); optScore > ub+1e-9 {
			t.Errorf("trial %d: OPT %v > UPPER %v", trial, optScore, ub)
		}
		// Heuristics never beat the optimum.
		for _, name := range []string{"TPG", "GT"} {
			s, _ := ByName(name, 1)
			a, _ := s.Solve(ctx, in)
			if sc := a.TotalScore(in); sc > optScore+1e-9 {
				t.Errorf("trial %d: %s %v beats OPT %v", trial, name, sc, optScore)
			}
		}
	}
}

func TestGTNearOptimalOnSmallInstances(t *testing.T) {
	// The paper reports GT achieving 50-97% of UPPER; against the true
	// optimum on small instances it should do even better. We assert ≥ 80%
	// of OPT on average.
	r := rand.New(rand.NewSource(7))
	ctx := context.Background()
	var ratioSum float64
	trials := 0
	for trials < 15 {
		in := randomInstance(r, 8, 3, 2)
		opt, _ := NewBruteForce().Solve(ctx, in)
		optScore := opt.TotalScore(in)
		if optScore < 1e-9 {
			continue // degenerate: nothing assignable
		}
		a, _ := NewGT(GTOptions{}).Solve(ctx, in)
		ratioSum += a.TotalScore(in) / optScore
		trials++
	}
	if avg := ratioSum / float64(trials); avg < 0.8 {
		t.Errorf("GT averages %.2f of OPT on small instances, want ≥ 0.80", avg)
	}
}

func TestMFlowMaximizesAssignedPairs(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	ctx := context.Background()
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(r, 50, 15, 3)
		mf, _ := NewMFlow().Solve(ctx, in)
		for _, name := range []string{"TPG", "GT", "RAND"} {
			s, _ := ByName(name, 3)
			a, _ := s.Solve(ctx, in)
			if a.NumAssigned() > mf.NumAssigned() {
				t.Errorf("trial %d: %s assigned %d pairs, MFLOW only %d — max flow not maximal",
					trial, name, a.NumAssigned(), mf.NumAssigned())
			}
		}
	}
}

func TestCooperationAwareBeatsBaselines(t *testing.T) {
	// The paper's headline result: TPG and GT score far above MFLOW and
	// RAND. Check it holds on random instances in aggregate.
	r := rand.New(rand.NewSource(9))
	ctx := context.Background()
	var tpgSum, gtSum, mflowSum, randSum float64
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(r, 80, 25, 3)
		score := func(name string) float64 {
			s, _ := ByName(name, int64(trial))
			a, _ := s.Solve(ctx, in)
			return a.TotalScore(in)
		}
		tpgSum += score("TPG")
		gtSum += score("GT")
		mflowSum += score("MFLOW")
		randSum += score("RAND")
	}
	if tpgSum <= mflowSum || tpgSum <= randSum {
		t.Errorf("TPG (%v) does not beat MFLOW (%v) / RAND (%v)", tpgSum, mflowSum, randSum)
	}
	if gtSum < tpgSum-1e-9 {
		t.Errorf("GT (%v) below TPG (%v)", gtSum, tpgSum)
	}
}

func TestTSIStopsEarlier(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	in := randomInstance(r, 120, 40, 3)
	plain := NewGT(GTOptions{})
	aPlain, _ := plain.Solve(context.Background(), in)
	tsi := NewGT(GTOptions{Epsilon: 0.05})
	aTSI, _ := tsi.Solve(context.Background(), in)
	if tsi.Stats.Rounds > plain.Stats.Rounds {
		t.Errorf("TSI used %d rounds, plain GT %d", tsi.Stats.Rounds, plain.Stats.Rounds)
	}
	// TSI may lose a little score but not much (paper: "only slightly hurt").
	sp, st := aPlain.TotalScore(in), aTSI.TotalScore(in)
	if st < 0.85*sp {
		t.Errorf("TSI score %v below 85%% of GT score %v", st, sp)
	}
}

func TestLUBSavesBestResponseCalls(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	in := randomInstance(r, 150, 50, 3)
	plain := NewGT(GTOptions{})
	if _, err := plain.Solve(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	lub := NewGT(GTOptions{LUB: true})
	if _, err := lub.Solve(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Rounds > 2 && lub.Stats.BestResponseCalls >= plain.Stats.BestResponseCalls {
		t.Errorf("LUB made %d best-response calls, plain %d — no savings",
			lub.Stats.BestResponseCalls, plain.Stats.BestResponseCalls)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	in := randomInstance(r, 40, 10, 3)
	a1, _ := NewRandom(5).Solve(context.Background(), in)
	a2, _ := NewRandom(5).Solve(context.Background(), in)
	p1, p2 := a1.Pairs(), a2.Pairs()
	if len(p1) != len(p2) {
		t.Fatal("same seed produced different assignments")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestEmptyInstances(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name   string
		nW, nT int
	}{
		{"no workers", 0, 5},
		{"no tasks", 5, 0},
		{"nothing", 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := &model.Instance{Quality: coop.Synthetic{N: tc.nW, Seed: 1}, B: 3}
			r := rand.New(rand.NewSource(1))
			for i := 0; i < tc.nW; i++ {
				in.Workers = append(in.Workers, model.Worker{Loc: geo.Pt(r.Float64(), r.Float64()), Speed: 0.1, Radius: 0.3})
			}
			for j := 0; j < tc.nT; j++ {
				in.Tasks = append(in.Tasks, model.Task{Loc: geo.Pt(r.Float64(), r.Float64()), Capacity: 3, Deadline: 5})
			}
			in.BuildCandidates(model.IndexRTree)
			for _, s := range allSolvers(t) {
				a, err := s.Solve(ctx, in)
				if err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				if err := a.Validate(in); err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				if a.TotalScore(in) != 0 {
					t.Fatalf("%s: nonzero score on empty instance", s.Name())
				}
			}
			if ub := Upper(in); ub != 0 {
				t.Errorf("UPPER = %v on empty instance", ub)
			}
		})
	}
}

func TestNoValidPairs(t *testing.T) {
	// Workers with tiny radii far from every task.
	in := &model.Instance{Quality: coop.Synthetic{N: 5, Seed: 1}, B: 2}
	for i := 0; i < 5; i++ {
		in.Workers = append(in.Workers, model.Worker{Loc: geo.Pt(0.1, 0.1), Speed: 0.1, Radius: 0.01})
	}
	in.Tasks = append(in.Tasks, model.Task{Loc: geo.Pt(0.9, 0.9), Capacity: 3, Deadline: 5})
	in.BuildCandidates(model.IndexLinear)
	ctx := context.Background()
	for _, s := range allSolvers(t) {
		a, err := s.Solve(ctx, in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if a.NumAssigned() != 0 {
			t.Errorf("%s assigned workers with no valid pairs", s.Name())
		}
	}
}

func TestContextCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	in := randomInstance(r, 100, 30, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, s := range allSolvers(t) {
		a, err := s.Solve(ctx, in)
		if err != nil {
			t.Fatalf("%s returned error on cancelled context: %v", s.Name(), err)
		}
		if a == nil {
			t.Fatalf("%s returned nil assignment", s.Name())
		}
		if err := a.Validate(in); err != nil {
			t.Fatalf("%s: partial assignment invalid: %v", s.Name(), err)
		}
	}
}

func TestGTRandomInitAblation(t *testing.T) {
	// Random-init GT must still reach a Nash equilibrium; TPG init usually
	// gives it a head start but both end stable.
	r := rand.New(rand.NewSource(14))
	in := randomInstance(r, 60, 20, 3)
	gt := NewGT(GTOptions{RandomInit: true})
	a, err := gt.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Stats.Reason != game.StopNash {
		t.Fatalf("stopped by %s", gt.Stats.Reason)
	}
	g := newCASCGame(in, a)
	if !game.IsNash(g, 1e-9) {
		t.Fatal("random-init GT did not reach Nash")
	}
}

func TestTPGRespectsCapacityAndB(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(r, 60, 20, 3)
		a, _ := NewTPG().Solve(context.Background(), in)
		for tsk, ws := range a.TaskWorkers {
			if len(ws) > 0 && len(ws) < in.B {
				t.Errorf("trial %d: task %d holds %d workers (< B=%d) after TPG",
					trial, tsk, len(ws), in.B)
			}
		}
	}
}

func TestBruteForcePanicsOnHugeInstance(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	in := randomInstance(r, 100, 50, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for oversized brute force")
		}
	}()
	_, _ = NewBruteForce().Solve(context.Background(), in)
}

func TestUpperMonotoneInCapacity(t *testing.T) {
	// Raising every task's capacity can only raise the upper bound.
	r := rand.New(rand.NewSource(17))
	in := randomInstance(r, 50, 15, 3)
	lo := Upper(in)
	for j := range in.Tasks {
		in.Tasks[j].Capacity += 2
	}
	hi := Upper(in)
	if hi < lo-1e-9 {
		t.Errorf("UPPER decreased when capacities grew: %v -> %v", lo, hi)
	}
}

func TestGTAnytimeProfile(t *testing.T) {
	// §V-D: "the increase of the total cooperation score for each round
	// will become smaller and smaller until convergence" — GT's anytime
	// profile must be monotone in potential with non-negative gains, and
	// the first round (starting from random init so there is room to climb)
	// must gain the most in aggregate.
	r := rand.New(rand.NewSource(91))
	in := randomInstance(r, 80, 25, 3)
	gt := NewGT(GTOptions{RandomInit: true, RecordAnytime: true})
	a, err := gt.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt.Anytime) == 0 {
		t.Fatal("no anytime profile recorded")
	}
	last := -1.0
	for i, pt := range gt.Anytime {
		if pt.Gain < -1e-9 {
			t.Fatalf("round %d: negative gain %v", pt.Round, pt.Gain)
		}
		if pt.Potential < last-1e-9 {
			t.Fatalf("round %d: potential decreased %v -> %v", pt.Round, last, pt.Potential)
		}
		last = pt.Potential
		if pt.Round != i+1 {
			t.Fatalf("round numbering: %d at index %d", pt.Round, i)
		}
	}
	final := gt.Anytime[len(gt.Anytime)-1].Potential
	if math.Abs(final-a.TotalScore(in)) > 1e-9 {
		t.Fatalf("final potential %v != assignment score %v", final, a.TotalScore(in))
	}
	if len(gt.Anytime) >= 3 {
		if gt.Anytime[0].Gain < gt.Anytime[len(gt.Anytime)-1].Gain {
			t.Errorf("gains did not shrink: first %v, last %v",
				gt.Anytime[0].Gain, gt.Anytime[len(gt.Anytime)-1].Gain)
		}
	}
}

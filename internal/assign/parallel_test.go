package assign

import (
	"context"
	"io"
	"math/rand"
	"sync"
	"testing"

	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/metrics"
	"casc/internal/model"
	"casc/internal/partition"
)

// clusteredInstance builds an instance whose validity graph splits into at
// least `clusters` connected components: workers and tasks live in small
// spatial clusters whose centers sit 0.25 apart on a grid while every
// working area is ≤ 0.1, so no worker reaches another cluster's tasks.
// Positions are interleaved round-robin so components are non-contiguous
// index sets.
func clusteredInstance(r *rand.Rand, clusters, wPer, tPer, b int) *model.Instance {
	cols := 1
	for cols*cols < clusters {
		cols++
	}
	centers := make([]geo.Point, clusters)
	for c := range centers {
		centers[c] = geo.Pt(0.125+0.25*float64(c%cols), 0.125+0.25*float64(c/cols))
	}
	jitter := func(c int) geo.Point {
		return geo.Pt(centers[c].X+(r.Float64()-0.5)*0.08, centers[c].Y+(r.Float64()-0.5)*0.08)
	}
	in := &model.Instance{
		Quality: coop.Synthetic{N: clusters * wPer, Seed: uint64(r.Int63())},
		B:       b,
	}
	for i := 0; i < clusters*wPer; i++ {
		in.Workers = append(in.Workers, model.Worker{
			ID:     i,
			Loc:    jitter(i % clusters),
			Speed:  0.05 + r.Float64()*0.05,
			Radius: 0.09 + r.Float64()*0.01,
		})
	}
	for j := 0; j < clusters*tPer; j++ {
		in.Tasks = append(in.Tasks, model.Task{
			ID:       j,
			Loc:      jitter(j % clusters),
			Capacity: b + r.Intn(2),
			Deadline: 5 + r.Float64()*5,
		})
	}
	in.BuildCandidates(model.IndexRTree)
	return in
}

// TestParallelEquivalence is the decomposition property test: for the
// deterministic solvers, a decomposed solve must match the monolithic one.
// TPG, GT, GT+LUB and EXACT are score-identical (their decisions depend
// only on index order within a component, which SubInstance preserves);
// EXACT additionally matches exactly because the optimum is additive over
// components. MFLOW's maximum is only unique in pair count, and the GT
// epsilon variants stop relative to the *global* potential, so those three
// are held to the guarantees they actually give.
func TestParallelEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	instances := []*model.Instance{
		randomInstance(r, 60, 20, 2),
		randomInstance(r, 80, 30, 3),
		clusteredInstance(r, 6, 10, 4, 2),
	}
	mk := map[string]func() Solver{
		"TPG":    func() Solver { return NewTPG() },
		"GT":     func() Solver { return NewGT(GTOptions{}) },
		"GT+LUB": func() Solver { return NewGT(GTOptions{LUB: true}) },
	}
	for name, make := range mk {
		for ii, in := range instances {
			mono, err := make().Solve(context.Background(), in)
			if err != nil {
				t.Fatalf("%s monolithic: %v", name, err)
			}
			par, err := NewParallel(make(), ParallelOptions{Workers: 4, Seed: 1}).Solve(context.Background(), in)
			if err != nil {
				t.Fatalf("%s parallel: %v", name, err)
			}
			if err := par.Validate(in); err != nil {
				t.Fatalf("%s parallel assignment invalid: %v", name, err)
			}
			if ms, ps := mono.TotalScore(in), par.TotalScore(in); ms != ps {
				t.Errorf("%s instance %d: parallel score %v != monolithic %v", name, ii, ps, ms)
			}
			// Component-by-component: the per-component scores agree too.
			for ci, c := range partition.Components(in) {
				if ms, ps := componentScore(in, mono, c), componentScore(in, par, c); ms != ps {
					t.Errorf("%s instance %d component %d: parallel %v != monolithic %v", name, ii, ci, ps, ms)
				}
			}
		}
	}

	// MFLOW: the max-flow value (pair count) is unique, the assignment not.
	for ii, in := range instances {
		mono, _ := NewMFlow().Solve(context.Background(), in)
		par, err := NewParallel(NewMFlow(), ParallelOptions{Workers: 4}).Solve(context.Background(), in)
		if err != nil {
			t.Fatalf("MFLOW parallel: %v", err)
		}
		if err := par.Validate(in); err != nil {
			t.Fatalf("MFLOW parallel assignment invalid: %v", err)
		}
		if mono.NumAssigned() != par.NumAssigned() {
			t.Errorf("MFLOW instance %d: parallel pairs %d != monolithic %d", ii, par.NumAssigned(), mono.NumAssigned())
		}
	}

	// Epsilon variants only promise a valid assignment (their stop rule is
	// relative to the global potential, which decomposition changes).
	for _, name := range []string{"GT+TSI", "GT+ALL"} {
		for _, in := range instances {
			s, err := ByName(name, 7)
			if err != nil {
				t.Fatal(err)
			}
			a, err := NewParallel(s, ParallelOptions{Workers: 4, Seed: 7}).Solve(context.Background(), in)
			if err != nil {
				t.Fatalf("%s parallel: %v", name, err)
			}
			if err := a.Validate(in); err != nil {
				t.Fatalf("%s parallel assignment invalid: %v", name, err)
			}
		}
	}
}

// componentScore sums the assignment's task scores over one component.
func componentScore(in *model.Instance, a *model.Assignment, c partition.Component) float64 {
	var total float64
	for _, task := range c.Tasks {
		if ws := a.TaskWorkers[task]; len(ws) >= in.B {
			total += in.GroupQuality(ws, in.Tasks[task].Capacity)
		}
	}
	return total
}

// TestParallelExactEquivalence pins the satellite requirement that EXACT
// decomposed equals EXACT monolithic *exactly*: the optimum is additive
// over components and the branch-and-bound is deterministic, so both the
// score and the assignment vector must coincide.
func TestParallelExactEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for i := 0; i < 3; i++ {
		in := clusteredInstance(r, 4, 5, 2, 2)
		mono, err := (&Exact{}).Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewParallel(&Exact{}, ParallelOptions{Workers: 3}).Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if err := par.Validate(in); err != nil {
			t.Fatalf("parallel EXACT invalid: %v", err)
		}
		if ms, ps := mono.TotalScore(in), par.TotalScore(in); ms != ps {
			t.Fatalf("instance %d: parallel EXACT score %v != monolithic %v", i, ps, ms)
		}
		for w := range mono.WorkerTask {
			if mono.WorkerTask[w] != par.WorkerTask[w] {
				t.Fatalf("instance %d: worker %d assigned %d vs %d", i, w, par.WorkerTask[w], mono.WorkerTask[w])
			}
		}
	}
}

// TestParallelMatchesMonolithicOnClustered is the acceptance scenario: a
// generated instance with ≥ 8 components where Parallel(TPG) and
// Parallel(GT) score identically to their monolithic runs.
func TestParallelMatchesMonolithicOnClustered(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	in := clusteredInstance(r, 9, 14, 6, 3)
	comps := partition.Components(in)
	if len(comps) < 8 {
		t.Fatalf("only %d components, want ≥ 8", len(comps))
	}
	for name, make := range map[string]func() Solver{
		"TPG": func() Solver { return NewTPG() },
		"GT":  func() Solver { return NewGT(GTOptions{}) },
	} {
		mono, err := make().Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewParallel(make(), ParallelOptions{Workers: 8}).Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if ms, ps := mono.TotalScore(in), par.TotalScore(in); ms != ps {
			t.Errorf("%s: parallel score %v != monolithic %v over %d components", name, ps, ms, len(comps))
		}
	}
}

// TestParallelSeedDeterminism: a randomized inner solver must produce the
// same assignment no matter the pool size or scheduling, because component
// seeds derive from the component identity, not the execution order.
func TestParallelSeedDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	in := clusteredInstance(r, 9, 10, 4, 2)
	solve := func(workers int) *model.Assignment {
		a, err := NewParallel(NewRandom(99), ParallelOptions{Workers: workers, Seed: 42}).
			Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	want := solve(1)
	for _, workers := range []int{2, 4, 8} {
		got := solve(workers)
		for w := range want.WorkerTask {
			if want.WorkerTask[w] != got.WorkerTask[w] {
				t.Fatalf("workers=%d: worker %d assigned %d, want %d (pool size changed the result)",
					workers, w, got.WorkerTask[w], want.WorkerTask[w])
			}
		}
	}
	// And the derivation itself is pure.
	if ComponentSeed(42, 3) != ComponentSeed(42, 3) || ComponentSeed(42, 3) == ComponentSeed(42, 4) {
		t.Fatal("ComponentSeed not a pure injective-ish derivation")
	}
}

// TestParallelCancellationMidFanout mirrors cancel_test.go: a countdown
// context trips mid-fan-out; the merged result must still be a valid
// (partial) assignment and the decorator must not keep solving components
// long past the trip.
func TestParallelCancellationMidFanout(t *testing.T) {
	r := rand.New(rand.NewSource(39))
	in := clusteredInstance(r, 16, 12, 5, 2)
	const budget = 25
	cc := &countdownCtx{Context: context.Background(), budget: budget}
	p := NewParallel(NewTPG(), ParallelOptions{Workers: 2})
	a, err := p.Solve(cc, in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := a.Validate(in); err != nil {
		t.Fatalf("partial assignment invalid: %v", err)
	}
	if calls := cc.calls.Load(); calls <= budget {
		t.Fatalf("only %d ctx polls; instance too small to trip the %d budget", calls, budget)
	}
	// Cancellation before the fan-out even starts: empty but valid.
	done, cancel := context.WithCancel(context.Background())
	cancel()
	a, err = p.Solve(done, in)
	if err != nil {
		t.Fatalf("pre-cancelled Solve: %v", err)
	}
	if got := a.NumAssigned(); got != 0 {
		t.Fatalf("pre-cancelled solve assigned %d pairs", got)
	}
}

// TestParallelNonForkableSerialized covers the fallback path: an inner
// solver without Fork is serialized behind the decorator's mutex, still
// benefits from the decomposition, and matches its monolithic score
// (LocalSearch only ever applies intra-component swaps — a cross-component
// swap is never valid).
func TestParallelNonForkableSerialized(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	in := clusteredInstance(r, 6, 8, 3, 2)
	ls := NewLocalSearch(NewTPG())
	if _, ok := interface{}(ls).(Forker); ok {
		t.Fatal("test premise broken: LocalSearch grew a Fork; pick another non-forkable solver")
	}
	mono, err := NewLocalSearch(NewTPG()).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallel(ls, ParallelOptions{Workers: 4}).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := par.Validate(in); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if ms, ps := mono.TotalScore(in), par.TotalScore(in); ms != ps {
		t.Errorf("serialized fallback score %v != monolithic %v", ps, ms)
	}
}

// TestParallelMetrics checks the decorator's registry wiring: component
// count gauge, size histogram and latency histogram, labeled with the
// (transparent) solver name, both set directly and via Instrument.
func TestParallelMetrics(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	in := clusteredInstance(r, 9, 8, 3, 2)
	nComps := len(partition.Components(in))

	reg := metrics.NewRegistry()
	p := NewParallel(NewTPG(), ParallelOptions{Workers: 4})
	s := Instrument(p, reg)
	if s.Name() != "TPG" {
		t.Fatalf("Name = %q, want transparent %q", s.Name(), "TPG")
	}
	if _, err := s.Solve(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	lbl := metrics.L("solver", "TPG")
	if v, ok := snap.Gauge(MetricParallelComponents, lbl); !ok || v != float64(nComps) {
		t.Errorf("%s = %v (ok=%v), want %d", MetricParallelComponents, v, ok, nComps)
	}
	for _, name := range []string{MetricParallelComponentSize, MetricParallelComponentSeconds} {
		h, ok := snap.Histogram(name, lbl)
		if !ok || h.Count != uint64(nComps) {
			t.Errorf("%s count = %d (ok=%v), want %d", name, h.Count, ok, nComps)
		}
	}
	// The wrapper's own solve counter still accrues under the same name.
	if v, _ := snap.Counter(MetricSolves, lbl); v != 1 {
		t.Errorf("%s = %d, want 1", MetricSolves, v)
	}
}

// TestParallelRace exercises concurrent Solve calls on one decorator plus a
// goroutine hammering the shared registry; run under -race in CI.
func TestParallelRace(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	in := clusteredInstance(r, 9, 8, 3, 2)
	reg := metrics.NewRegistry()
	p := NewParallel(NewGT(GTOptions{LUB: true}), ParallelOptions{Workers: 4, Metrics: reg})

	stop := make(chan struct{})
	var hammer sync.WaitGroup
	hammer.Add(1)
	go func() {
		defer hammer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.WriteText(io.Discard)
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := p.Solve(context.Background(), in)
			if err != nil {
				t.Errorf("Solve: %v", err)
				return
			}
			if err := a.Validate(in); err != nil {
				t.Errorf("invalid: %v", err)
			}
		}()
	}
	wg.Wait()
	close(stop)
	hammer.Wait()
}

// TestParallelClippedComponentNeverHalfMerged is the regression test for
// the clipped-merge audit: when cancellation lands while a component is
// being solved, that component's possibly-cut partial must be dropped, so
// in the merged result every component is either bitwise-identical to its
// clean solve or entirely unassigned — never a half-solved component
// presented as complete.
func TestParallelClippedComponentNeverHalfMerged(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	in := clusteredInstance(r, 16, 12, 5, 2)
	comps := partition.Components(in)
	if len(comps) < 8 {
		t.Fatalf("only %d components; instance not clustered enough", len(comps))
	}

	// Reference: the clean (uncancelled) decomposed solve. Workers: 1 so
	// countdown budgets below map deterministically onto component order.
	ref, err := NewParallel(NewTPG(), ParallelOptions{Workers: 1}).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	sawClip := false
	for budget := int64(5); budget <= 120; budget += 5 {
		cc := &countdownCtx{Context: context.Background(), budget: budget}
		reg := metrics.NewRegistry()
		p := NewParallel(NewTPG(), ParallelOptions{Workers: 1, Metrics: reg})
		a, err := p.Solve(cc, in)
		if err != nil {
			t.Fatalf("budget=%d: Solve: %v", budget, err)
		}
		if err := a.Validate(in); err != nil {
			t.Fatalf("budget=%d: invalid merge: %v", budget, err)
		}
		clips := reg.Counter(MetricParallelClipped, "", metrics.L("solver", "TPG")).Value()
		if clips > 0 {
			sawClip = true
		}
		for _, c := range comps {
			full, empty := true, true
			for _, w := range c.Workers {
				if a.WorkerTask[w] != ref.WorkerTask[w] {
					full = false
				}
				if a.WorkerTask[w] != model.Unassigned {
					empty = false
				}
			}
			if !full && !empty {
				t.Fatalf("budget=%d: component key=%d half-merged: neither clean nor empty (clipped=%d)",
					budget, c.Key(), clips)
			}
		}
	}
	if !sawClip {
		t.Error("no budget in the sweep clipped a component; regression not exercised")
	}
}

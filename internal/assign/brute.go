package assign

import (
	"context"

	"casc/internal/model"
)

// BruteForce finds the true optimal assignment by exhaustive search over
// every worker's choice of candidate task (or none). CA-SC is NP-hard
// (Theorem II.1), so this is only feasible for tiny instances; tests use it
// as ground truth for the heuristics and the UPPER bound. The search space
// is Π_w (|cand_w|+1); Solve panics beyond MaxStates states to catch
// accidental misuse.
type BruteForce struct {
	// MaxStates caps the search-space size (default 50 million).
	MaxStates float64
}

// NewBruteForce returns a brute-force solver.
func NewBruteForce() *BruteForce { return &BruteForce{} }

// Name implements Solver.
func (s *BruteForce) Name() string { return "OPT" }

// Solve implements Solver.
func (s *BruteForce) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	maxStates := s.MaxStates
	if maxStates <= 0 {
		maxStates = 5e7
	}
	states := 1.0
	for w := range in.Workers {
		states *= float64(len(in.WorkerCand[w]) + 1)
		if states > maxStates {
			panic("assign: brute-force search space too large")
		}
	}
	groups := newGroups(in)
	cur := make([]int, len(in.Workers))
	best := make([]int, len(in.Workers))
	for i := range cur {
		cur[i] = model.Unassigned
		best[i] = model.Unassigned
	}
	bestScore := -1.0
	var rec func(w int)
	rec = func(w int) {
		if ctx.Err() != nil {
			return
		}
		if w == len(in.Workers) {
			var total float64
			//casclint:ignore ctxloop bounded leaf evaluation over task groups; rec polls ctx on entry
			for _, g := range groups {
				total += g.Q()
			}
			if total > bestScore {
				bestScore = total
				copy(best, cur)
			}
			return
		}
		// Option: leave worker w unassigned.
		rec(w + 1)
		//casclint:ignore ctxloop cancellation is polled at every rec() entry, bounding the reaction to one branch step
		for _, t := range in.WorkerCand[w] {
			g := groups[t]
			if g.Len() >= g.Capacity() {
				continue
			}
			g.Join(w)
			cur[w] = t
			rec(w + 1)
			g.Leave(w)
			cur[w] = model.Unassigned
		}
	}
	rec(0)
	a := model.NewAssignment(in)
	//casclint:ignore ctxloop bounded materialization of the best assignment found before cancellation
	for w, t := range best {
		if t != model.Unassigned {
			a.Assign(w, t)
		}
	}
	return a, nil
}

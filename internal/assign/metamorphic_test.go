package assign

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/model"
)

// Metamorphic tests: known transformations of an instance must transform
// solver outputs predictably. These catch bugs no oracle-based test can —
// a solver that silently mixes up coordinates or mishandles quality
// normalization still produces "valid" assignments.

// denseMatrixInstance builds an instance backed by an explicit matrix so a
// transformed copy can be derived exactly.
func denseMatrixInstance(r *rand.Rand, nW, nT int) (*model.Instance, *coop.Matrix) {
	q := coop.NewMatrix(nW)
	for i := 0; i < nW; i++ {
		for k := i + 1; k < nW; k++ {
			q.Set(i, k, r.Float64()*0.9)
		}
	}
	in := &model.Instance{Quality: q, B: 3}
	for i := 0; i < nW; i++ {
		in.Workers = append(in.Workers, model.Worker{
			ID:     i,
			Loc:    geo.Pt(r.Float64(), r.Float64()),
			Speed:  0.02 + r.Float64()*0.08,
			Radius: 0.15 + r.Float64()*0.15,
		})
	}
	for j := 0; j < nT; j++ {
		in.Tasks = append(in.Tasks, model.Task{
			ID: j, Loc: geo.Pt(r.Float64(), r.Float64()),
			Capacity: 3 + r.Intn(3), Deadline: 3 + r.Float64()*2,
		})
	}
	in.BuildCandidates(model.IndexRTree)
	return in, q
}

func cloneWithQuality(in *model.Instance, q model.QualityModel) *model.Instance {
	out := &model.Instance{
		Workers: append([]model.Worker(nil), in.Workers...),
		Tasks:   append([]model.Task(nil), in.Tasks...),
		Quality: q,
		B:       in.B,
		Now:     in.Now,
	}
	out.BuildCandidates(model.IndexRTree)
	return out
}

func TestMetamorphicQualityScaling(t *testing.T) {
	// Scaling every pairwise quality by c ∈ (0,1] scales every group score
	// by c (Equation 2 is linear in q), so deterministic solvers must
	// return the SAME assignment and a score scaled by exactly c.
	r := rand.New(rand.NewSource(71))
	ctx := context.Background()
	for trial := 0; trial < 3; trial++ {
		in, q := denseMatrixInstance(r, 50, 15)
		const c = 0.37
		scaled := coop.NewMatrix(50)
		for i := 0; i < 50; i++ {
			for k := i + 1; k < 50; k++ {
				scaled.Set(i, k, q.Quality(i, k)*c)
			}
		}
		inScaled := cloneWithQuality(in, scaled)
		for _, name := range []string{"TPG", "GT", "MFLOW"} {
			s1, _ := ByName(name, 1)
			s2, _ := ByName(name, 1)
			a1, err := s1.Solve(ctx, in)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := s2.Solve(ctx, inScaled)
			if err != nil {
				t.Fatal(err)
			}
			sc1, sc2 := a1.TotalScore(in), a2.TotalScore(inScaled)
			if math.Abs(sc2-c*sc1) > 1e-6*(1+sc1) {
				t.Errorf("trial %d %s: scaled score %v, want %v·%v = %v",
					trial, name, sc2, c, sc1, c*sc1)
			}
			// The assignments themselves must agree for TPG and MFLOW
			// (fully deterministic, scale-invariant selection). GT's
			// epsilon floor could theoretically tip a near-tie, so we only
			// check scores there.
			if name != "GT" {
				p1, p2 := a1.Pairs(), a2.Pairs()
				if len(p1) != len(p2) {
					t.Fatalf("trial %d %s: pair counts differ under scaling", trial, name)
				}
				for i := range p1 {
					if p1[i] != p2[i] {
						t.Fatalf("trial %d %s: assignment changed under scaling", trial, name)
					}
				}
			}
		}
		// UPPER scales linearly too.
		u1, u2 := Upper(in), Upper(inScaled)
		if math.Abs(u2-c*u1) > 1e-6*(1+u1) {
			t.Errorf("trial %d: UPPER %v scaled to %v, want %v", trial, u1, u2, c*u1)
		}
	}
}

func TestMetamorphicTranslationInvariance(t *testing.T) {
	// Translating every location by the same vector (staying in bounds)
	// preserves all distances, hence candidates, hence solver outputs.
	r := rand.New(rand.NewSource(72))
	ctx := context.Background()
	in, q := denseMatrixInstance(r, 40, 12)
	// Shrink into [0, 0.8] so the +0.1 shift stays in bounds.
	shift := geo.Pt(0.1, 0.1)
	shrunk := cloneWithQuality(in, q)
	for i := range shrunk.Workers {
		shrunk.Workers[i].Loc = geo.Pt(shrunk.Workers[i].Loc.X*0.8, shrunk.Workers[i].Loc.Y*0.8)
	}
	for j := range shrunk.Tasks {
		shrunk.Tasks[j].Loc = geo.Pt(shrunk.Tasks[j].Loc.X*0.8, shrunk.Tasks[j].Loc.Y*0.8)
	}
	shrunk.BuildCandidates(model.IndexRTree)
	moved := cloneWithQuality(shrunk, q)
	for i := range moved.Workers {
		moved.Workers[i].Loc = moved.Workers[i].Loc.Add(shift.X, shift.Y)
	}
	for j := range moved.Tasks {
		moved.Tasks[j].Loc = moved.Tasks[j].Loc.Add(shift.X, shift.Y)
	}
	moved.BuildCandidates(model.IndexRTree)

	for w := range shrunk.Workers {
		if len(shrunk.WorkerCand[w]) != len(moved.WorkerCand[w]) {
			t.Fatalf("worker %d: candidate sets differ under translation", w)
		}
		for i := range shrunk.WorkerCand[w] {
			if shrunk.WorkerCand[w][i] != moved.WorkerCand[w][i] {
				t.Fatalf("worker %d: candidate sets differ under translation", w)
			}
		}
	}
	for _, name := range []string{"TPG", "GT"} {
		s1, _ := ByName(name, 1)
		s2, _ := ByName(name, 1)
		a1, _ := s1.Solve(ctx, shrunk)
		a2, _ := s2.Solve(ctx, moved)
		if math.Abs(a1.TotalScore(shrunk)-a2.TotalScore(moved)) > 1e-9 {
			t.Errorf("%s: score changed under translation: %v vs %v",
				name, a1.TotalScore(shrunk), a2.TotalScore(moved))
		}
	}
}

func TestMetamorphicWorkerRelabeling(t *testing.T) {
	// Permuting worker order (with the quality matrix permuted to match)
	// must not change the total score of deterministic solvers' outputs —
	// tie-breaking may differ, so we compare scores, not assignments.
	r := rand.New(rand.NewSource(73))
	ctx := context.Background()
	in, q := denseMatrixInstance(r, 30, 10)
	perm := r.Perm(30) // perm[newIdx] = oldIdx
	qPerm := coop.NewMatrix(30)
	for a := 0; a < 30; a++ {
		for b := a + 1; b < 30; b++ {
			if v := q.Quality(perm[a], perm[b]); v > 0 {
				qPerm.Set(a, b, v)
			}
		}
	}
	relabeled := &model.Instance{Quality: qPerm, B: in.B}
	for newIdx := 0; newIdx < 30; newIdx++ {
		relabeled.Workers = append(relabeled.Workers, in.Workers[perm[newIdx]])
	}
	relabeled.Tasks = append([]model.Task(nil), in.Tasks...)
	relabeled.BuildCandidates(model.IndexRTree)

	for _, name := range []string{"TPG", "MFLOW"} {
		s1, _ := ByName(name, 1)
		s2, _ := ByName(name, 1)
		a1, _ := s1.Solve(ctx, in)
		a2, _ := s2.Solve(ctx, relabeled)
		d := math.Abs(a1.TotalScore(in) - a2.TotalScore(relabeled))
		// TPG's tie-breaks are order-dependent, so allow a small relative
		// slack; systematic relabeling bugs produce large gaps.
		if d > 0.05*(1+a1.TotalScore(in)) {
			t.Errorf("%s: relabeling changed score %v -> %v",
				name, a1.TotalScore(in), a2.TotalScore(relabeled))
		}
	}
}

package assign

import (
	"sort"

	"casc/internal/model"
)

// Regret quantifies the paper's fairness argument for GT (§III, §V): TPG
// "is local optimal and may be unfair for some workers as they may have
// better choices if they are allowed to select tasks by themselves",
// whereas a Nash equilibrium "is fair to every worker, as each single
// worker is assigned with his/her optimal strategy upon the other workers'
// current choices".
//
// A worker's regret under an assignment is the utility (Equation 5) it
// could gain by unilaterally deviating — switching to its best alternative
// task (with crowding, per Theorems V.3/V.4) or leaving. A pure Nash
// equilibrium has zero regret for every worker by definition; the regret
// profile of any other assignment measures exactly how far from "fair" it
// is in the paper's sense.
func Regret(in *model.Instance, a *model.Assignment) []float64 {
	g := newCASCGame(in, a)
	out := make([]float64, len(in.Workers))
	for w := range out {
		if _, gain, improving := g.BestResponse(w); improving {
			out[w] = gain
		}
	}
	return out
}

// RegretSummary aggregates a regret profile.
type RegretSummary struct {
	// Workers is the number of workers with strictly positive regret.
	Workers int
	// Max and Total are the largest and summed regrets.
	Max, Total float64
	// P95 is the 95th percentile over all workers (including zeros).
	P95 float64
}

// SummarizeRegret aggregates per-worker regrets.
func SummarizeRegret(regrets []float64) RegretSummary {
	s := RegretSummary{}
	sorted := append([]float64(nil), regrets...)
	sort.Float64s(sorted)
	for _, r := range regrets {
		if r > 1e-12 {
			s.Workers++
			s.Total += r
		}
		if r > s.Max {
			s.Max = r
		}
	}
	if n := len(sorted); n > 0 {
		idx := int(0.95 * float64(n-1))
		s.P95 = sorted[idx]
	}
	return s
}

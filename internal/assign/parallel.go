package assign

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"casc/internal/metrics"
	"casc/internal/model"
	"casc/internal/partition"
)

// Metric names recorded by the Parallel decorator. All carry a
// {solver="<inner name>"} label.
const (
	// MetricParallelComponents is a gauge: the component count of the most
	// recent decomposed Solve.
	MetricParallelComponents = "casc_parallel_components"
	// MetricParallelComponentSize is a histogram of component node counts
	// (workers + tasks).
	MetricParallelComponentSize = "casc_parallel_component_size"
	// MetricParallelComponentSeconds is a histogram of per-component solve
	// latency.
	MetricParallelComponentSeconds = "casc_parallel_component_solve_seconds"
	// MetricParallelClipped counts component results dropped from the merge
	// because cancellation landed while the component was solving, so the
	// result may have been cut mid-run.
	MetricParallelClipped = "casc_parallel_clipped_components_total"
)

// ComponentSizeBuckets covers component node counts from singleton pairs up
// to whole-batch scale.
func ComponentSizeBuckets() []float64 { return metrics.ExponentialBuckets(2, 2, 12) }

// Forker is implemented by solvers that can hand out an independent copy of
// themselves for one component of a decomposed instance. The copy must not
// share mutable state with the receiver (Parallel runs forks concurrently);
// seed is the deterministically derived component seed, which randomized
// solvers must adopt so results are reproducible regardless of scheduling.
// Solvers without a Fork are still usable under Parallel — they are
// serialized behind a mutex and only benefit from the decomposition, not
// the concurrency.
type Forker interface {
	Fork(seed int64) Solver
}

// ParallelOptions configures the Parallel decorator.
type ParallelOptions struct {
	// Workers bounds the component worker pool. Zero or negative selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Seed is the parent seed that per-component seeds are derived from
	// (see ComponentSeed).
	Seed int64
	// Metrics, when non-nil, receives the component count gauge and the
	// component-size and per-component latency histograms.
	Metrics *metrics.Registry
}

// Parallel decomposes every instance into the connected components of its
// validity graph (see internal/partition) and solves them concurrently on a
// bounded worker pool, merging the sub-assignments back into one valid
// assignment over the parent. Because Q(T) is additive over tasks and no
// constraint crosses component boundaries, the merge is exactly as good as
// the component-wise solves — and for deterministic inner solvers whose
// decisions depend only on index order within a component (TPG, GT, GT+LUB,
// EXACT) the merged result is identical to the monolithic one.
//
// Name is transparent (it reports the inner solver's name), so Parallel
// composes with Instrument and the harness tables exactly like the bare
// solver.
type Parallel struct {
	inner Solver
	opts  ParallelOptions
	// mu serializes Solve calls on non-Forker inner solvers, which may
	// carry mutable per-Solve state.
	mu sync.Mutex
}

// NewParallel wraps inner in the decomposing decorator.
func NewParallel(inner Solver, opts ParallelOptions) *Parallel {
	return &Parallel{inner: inner, opts: opts}
}

// Name implements Solver; it is transparent like Instrument's wrapper.
func (p *Parallel) Name() string { return p.inner.Name() }

// Inner returns the wrapped solver.
func (p *Parallel) Inner() Solver { return p.inner }

// splitmix64 is the standard SplitMix64 finalizer — a cheap, well-mixed
// bijection used to spread (parent seed, component key) pairs across the
// seed space.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ComponentSeed derives the seed of the component whose lowest parent task
// position is key. The derivation depends only on the parent seed and the
// component's identity — never on scheduling or component order — so a
// randomized solver produces the same per-component stream no matter how
// the pool interleaves.
func ComponentSeed(parent int64, key int) int64 {
	return int64(splitmix64(uint64(parent) ^ splitmix64(uint64(key))))
}

// Solve implements Solver. Cancellation mid-fan-out leaves the remaining
// components unassigned, and a component whose solve was still running
// when cancellation landed is dropped from the merge entirely (counted by
// casc_parallel_clipped_components_total): its partial may have been cut
// mid-run, and merging it would present a half-solved component as that
// component's complete result. The merge therefore carries exactly the
// components that finished cleanly before the cut — the pre-merge best —
// which is still a valid assignment per the Solver contract. The first
// error from any component solve is returned alongside whatever merged
// without error.
func (p *Parallel) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	merged := model.NewAssignment(in)
	comps := partition.Components(in)

	var sizeH, latH *metrics.Histogram
	if reg := p.opts.Metrics; reg != nil {
		lbl := metrics.L("solver", p.Name())
		reg.Gauge(MetricParallelComponents,
			"Connected components in the most recent decomposed solve.", lbl).
			Set(float64(len(comps)))
		sizeH = reg.Histogram(MetricParallelComponentSize,
			"Component node count (workers + tasks).", ComponentSizeBuckets(), lbl)
		latH = reg.Histogram(MetricParallelComponentSeconds,
			"Per-component solve latency in seconds.", metrics.LatencyBuckets(), lbl)
	}
	if len(comps) == 0 {
		return merged, nil
	}

	workers := p.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(comps) {
		workers = len(comps)
	}

	errs := make([]error, len(comps))
	var clipped atomic.Uint64
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			// One scratch arena per pool worker, attached to every fork this
			// worker runs and reused across all its components — the
			// allocation-free steady state of the fan-out. Reuse is sound
			// because each arena-owned component result is lifted into the
			// merged assignment below, before the next solve recycles its
			// memory; lifting here (instead of after the barrier) is
			// race-free since components write disjoint worker and task
			// slots of the parent.
			arena := NewArena()
			for ci := range jobs {
				// One poll per component bounds the cancellation reaction
				// even when the inner solver's own polls are sparse; a
				// skipped component simply stays unassigned in the merge.
				if ctx.Err() != nil {
					continue
				}
				c := comps[ci]
				sub, m := in.SubInstance(c.Workers, c.Tasks)
				start := now()
				a, err := p.solveComponent(ctx, sub, ComponentSeed(p.opts.Seed, c.Key()), arena)
				if latH != nil {
					latH.Observe(now().Sub(start).Seconds())
				}
				if sizeH != nil {
					sizeH.Observe(float64(c.Size()))
				}
				if err == nil && ctx.Err() != nil {
					// Cancellation landed while this component was solving:
					// its partial may be cut mid-run, so drop it rather than
					// merge a half-solved component as if complete.
					a = nil
					clipped.Add(1)
				}
				errs[ci] = err
				if err == nil && a != nil {
					m.Lift(a, merged)
				}
			}
		}()
	}
	for ci := range comps {
		jobs <- ci
	}
	close(jobs)
	wg.Wait()

	if n := clipped.Load(); n > 0 && p.opts.Metrics != nil {
		p.opts.Metrics.Counter(MetricParallelClipped,
			"Component results dropped from the merge because cancellation cut them mid-solve.",
			metrics.L("solver", p.Name())).Add(n)
	}

	var firstErr error
	for ci := range comps {
		if errs[ci] != nil {
			firstErr = errs[ci]
			break
		}
	}
	return merged, firstErr
}

// solveComponent runs one component through a fork of the inner solver
// (handing arena-capable forks the pool worker's scratch arena), or through
// the shared inner under the mutex when it cannot fork. The shared inner
// keeps whatever arena its owner configured — the mutex serializes it, so
// that stays sound.
func (p *Parallel) solveComponent(ctx context.Context, sub *model.Instance, seed int64, ar *Arena) (*model.Assignment, error) {
	if f, ok := p.inner.(Forker); ok {
		fork := f.Fork(seed)
		if h, ok := fork.(ArenaHolder); ok {
			h.SetArena(ar)
		}
		return fork.Solve(ctx, sub)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inner.Solve(ctx, sub)
}

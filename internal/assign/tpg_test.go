package assign

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/model"
)

// lineInstance builds an instance where worker reachability is controlled
// purely by distance on a line: tasks at x-positions, workers at
// x-positions with the given radii.
func lineInstance(q model.QualityModel, b int, workerX []float64, radii []float64, taskX []float64, caps []int) *model.Instance {
	in := &model.Instance{Quality: q, B: b}
	for i, x := range workerX {
		in.Workers = append(in.Workers, model.Worker{
			ID: i, Loc: geo.Pt(x, 0.5), Speed: 10, Radius: radii[i],
		})
	}
	for j, x := range taskX {
		in.Tasks = append(in.Tasks, model.Task{
			ID: j, Loc: geo.Pt(x, 0.5), Capacity: caps[j], Deadline: 100,
		})
	}
	in.BuildCandidates(model.IndexLinear)
	return in
}

func TestTPGTieBreakPrefersTaskWithMorePotential(t *testing.T) {
	// Workers 0,1 reach both tasks; worker 2 reaches only task 1. The best
	// B-set {0,1} ties between the tasks; Algorithm 2 lines 6-9 assign it
	// to the task with more available candidates — task 1 — leaving task 0
	// unserved but letting stage 2 (nothing here: capacity 2) finish.
	q := coop.NewMatrix(3)
	q.Set(0, 1, 0.9)
	q.Set(0, 2, 0.1)
	q.Set(1, 2, 0.1)
	in := lineInstance(q, 2,
		[]float64{0.5, 0.5, 0.6}, []float64{0.2, 0.2, 0.11},
		[]float64{0.45, 0.55}, []int{2, 2})
	// Sanity: worker 2 (radius 0.11 at 0.6) reaches task 1 (0.55) but not
	// task 0 (0.45).
	if len(in.TaskCand[0]) != 2 || len(in.TaskCand[1]) != 3 {
		t.Fatalf("candidates: %v / %v", in.TaskCand[0], in.TaskCand[1])
	}
	a, err := NewTPG().Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if a.TaskOf(0) != 1 || a.TaskOf(1) != 1 {
		t.Errorf("best pair went to task %d/%d, want task 1 (more potential workers)",
			a.TaskOf(0), a.TaskOf(1))
	}
}

func TestTPGStageTwoStopsAtNonPositiveDelta(t *testing.T) {
	// Three workers with strong mutual quality form the B-set; a fourth
	// worker with zero quality to everyone would only dilute the average
	// (ΔQ < 0), so stage 2 must leave it unassigned even though capacity
	// remains.
	q := coop.NewMatrix(4)
	q.Set(0, 1, 0.9)
	q.Set(0, 2, 0.9)
	q.Set(1, 2, 0.9)
	// worker 3: all zeros.
	in := lineInstance(q, 3,
		[]float64{0.5, 0.5, 0.5, 0.5}, []float64{0.3, 0.3, 0.3, 0.3},
		[]float64{0.5}, []int{4})
	a, err := NewTPG().Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if a.TaskOf(3) != model.Unassigned {
		t.Errorf("diluting worker was assigned (ΔQ = %v)",
			in.DeltaQuality(3, []int{0, 1, 2}, 4))
	}
	want := in.GroupQuality([]int{0, 1, 2}, 4)
	if got := a.TotalScore(in); math.Abs(got-want) > 1e-9 {
		t.Errorf("score %v, want %v", got, want)
	}
}

func TestTPGStageTwoAddsImprovingWorker(t *testing.T) {
	// A fourth worker with strong quality to the B-set must be added.
	q := coop.NewMatrix(4)
	q.Set(0, 1, 0.5)
	q.Set(0, 2, 0.5)
	q.Set(1, 2, 0.5)
	q.Set(0, 3, 0.9)
	q.Set(1, 3, 0.9)
	q.Set(2, 3, 0.9)
	in := lineInstance(q, 3,
		[]float64{0.5, 0.5, 0.5, 0.5}, []float64{0.3, 0.3, 0.3, 0.3},
		[]float64{0.5}, []int{4})
	a, err := NewTPG().Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if a.TaskOf(3) != 0 {
		t.Error("improving worker not added in stage 2")
	}
	if a.NumAssigned() != 4 {
		t.Errorf("assigned %d workers, want 4", a.NumAssigned())
	}
}

func TestTPGSeedLimitTruncationPath(t *testing.T) {
	// Force the truncateByAffinity path with a tiny SeedLimit and verify
	// the result is still a valid assignment with a sane score.
	r := rand.New(rand.NewSource(41))
	in := randomInstance(r, 120, 10, 3)
	full := &TPG{SeedLimit: DefaultSeedLimit}
	tiny := &TPG{SeedLimit: 4}
	aFull, err := full.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	aTiny, err := tiny.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := aTiny.Validate(in); err != nil {
		t.Fatalf("truncated TPG produced invalid assignment: %v", err)
	}
	sf, st := aFull.TotalScore(in), aTiny.TotalScore(in)
	if st <= 0 {
		t.Fatal("truncated TPG scored zero on a dense instance")
	}
	// Truncation is a heuristic; allow degradation but not collapse.
	if st < 0.5*sf {
		t.Errorf("truncated score %v below half of full %v", st, sf)
	}
}

func TestTPGWorkersNeverSplitBelowB(t *testing.T) {
	// Property: after TPG, every nonempty group has ≥ B members (stage one
	// only commits full B-sets; stage two only adds to served tasks).
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(r, 50+trial*10, 15+trial, 3)
		a, err := NewTPG().Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		for tsk, ws := range a.TaskWorkers {
			if len(ws) > 0 && len(ws) < in.B {
				t.Fatalf("trial %d: task %d has %d < B members", trial, tsk, len(ws))
			}
		}
	}
}

func TestTPGDirtyCacheMatchesNaiveRecompute(t *testing.T) {
	// The stage-one dirty-marking optimization (only recompute when a
	// chosen worker is taken) must not change results relative to a
	// maximally-dirty variant. We emulate the naive variant by a TPG whose
	// cache is always invalidated — equivalently, compare against stage-one
	// outcomes across many random instances using score equality with the
	// greedy's deterministic trace.
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(r, 60, 20, 3)
		a1, err := NewTPG().Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := NewTPG().Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		// Determinism check: two runs agree exactly.
		p1, p2 := a1.Pairs(), a2.Pairs()
		if len(p1) != len(p2) {
			t.Fatalf("trial %d: nondeterministic TPG", trial)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("trial %d: nondeterministic TPG at pair %d", trial, i)
			}
		}
	}
}

// Package assign implements every CA-SC assignment approach evaluated in
// the paper: the task-priority greedy approach TPG (§IV, Algorithm 2), the
// game theoretic approach GT (§V, Algorithm 3) with its LUB and TSI
// optimizations (§V-D), the two baselines MFLOW (GeoCrowd-style maximum
// flow [11]) and RAND, the UPPER bound estimate of Equation 9, and an exact
// brute-force optimum for small instances (used by tests; CA-SC is NP-hard,
// Theorem II.1).
package assign

import (
	"context"
	"fmt"

	"casc/internal/model"
)

// Solver computes an assignment for one batch instance. Implementations
// must return assignments that pass (*model.Assignment).Validate.
type Solver interface {
	// Name returns the solver's display name as used in the paper's plots
	// (TPG, GT, GT+LUB, GT+TSI, GT+ALL, MFLOW, RAND).
	Name() string
	// Solve computes an assignment. The instance must have candidate sets
	// built (model.Instance.BuildCandidates). Solve must honour ctx
	// cancellation for long runs and still return a valid (possibly partial)
	// assignment alongside ctx.Err() == nil results; a nil assignment is
	// only allowed with a non-nil error.
	Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error)
}

// ByName returns the named solver with default options. Recognized names:
// TPG, GT, GT+LUB, GT+TSI, GT+ALL, MFLOW, RAND, plus the extra WST baseline
// (worker-selected-tasks mode, not part of the paper's figures). The seed
// parameterizes randomized solvers (RAND); others ignore it.
func ByName(name string, seed int64) (Solver, error) {
	switch name {
	case "TPG":
		return NewTPG(), nil
	case "GT":
		return NewGT(GTOptions{}), nil
	case "GT+LUB":
		return NewGT(GTOptions{LUB: true}), nil
	case "GT+TSI":
		return NewGT(GTOptions{Epsilon: DefaultEpsilon}), nil
	case "GT+ALL":
		return NewGT(GTOptions{LUB: true, Epsilon: DefaultEpsilon}), nil
	case "MFLOW":
		return NewMFlow(), nil
	case "RAND":
		return NewRandom(seed), nil
	case "WST":
		return NewWST(), nil
	default:
		return nil, fmt.Errorf("assign: unknown solver %q", name)
	}
}

// DefaultEpsilon is the paper's default TSI threshold (Table II, ε = 0.05).
const DefaultEpsilon = 0.05

// AllNames lists the solver names in the order the paper's figures present
// them.
func AllNames() []string {
	return []string{"TPG", "GT", "GT+LUB", "GT+TSI", "GT+ALL", "MFLOW", "RAND"}
}

package assign

import "time"

// now is the package clock used for latency instrumentation. It is a
// variable holding time.Now rather than direct calls so the clock is
// injectable (tests can substitute a fake) and so no solver path reads
// the wall clock directly — the seededrand invariant casc-lint enforces.
var now = time.Now

package assign

import (
	"context"
	"math/rand"
	"testing"

	"casc/internal/model"
)

// These tests pin the tentpole invariant of the arena refactor: once a
// solver with a persistent arena has seen one instance (the sizing solve,
// which grows every buffer), repeat solves of comparable instances perform
// zero heap allocations. A regression here means a hot-path make, map, or
// interface boxing crept back into the solve loop — exactly what the
// hotalloc lint rule guards statically; this guards it dynamically.

func steadyStateInstance(t testing.TB) *model.Instance {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	return randomInstance(r, 120, 30, 3)
}

func requireZeroAllocs(t *testing.T, label string, f func()) {
	t.Helper()
	f() // sizing solve: grows the arena to this instance's footprint
	if avg := testing.AllocsPerRun(20, f); avg != 0 {
		t.Fatalf("%s steady-state solve allocates %.1f times per run, want 0", label, avg)
	}
}

func TestTPGSteadyStateAllocs(t *testing.T) {
	in := steadyStateInstance(t)
	ctx := context.Background()
	s := NewTPG()
	s.SetArena(NewArena())
	requireZeroAllocs(t, "TPG", func() {
		if _, err := s.Solve(ctx, in); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTPGWarmSteadyStateAllocs(t *testing.T) {
	in := steadyStateInstance(t)
	ctx := context.Background()
	s := NewTPG()
	s.SetArena(NewArena())
	warm := NewWarm()
	requireZeroAllocs(t, "TPG+warm", func() {
		if _, err := s.SolveWarm(ctx, in, warm); err != nil {
			t.Fatal(err)
		}
	})
}

func TestGTSteadyStateAllocs(t *testing.T) {
	in := steadyStateInstance(t)
	ctx := context.Background()
	for _, opts := range []GTOptions{{}, {LUB: true}, {LUB: true, Epsilon: 0.01}} {
		s := NewGT(opts)
		s.SetArena(NewArena())
		requireZeroAllocs(t, s.Name(), func() {
			if _, err := s.Solve(ctx, in); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestThrowawayArenaStillWorks covers the nil-arena path: same code, fresh
// scratch per call — correctness only, no alloc assertion.
func TestThrowawayArenaStillWorks(t *testing.T) {
	in := steadyStateInstance(t)
	ctx := context.Background()
	withArena := NewTPG()
	withArena.SetArena(NewArena())
	want, err := withArena.Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewTPG().Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwiseEqual(t, in, got, want, "TPG nil-arena vs persistent-arena")
}

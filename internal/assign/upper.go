package assign

import (
	"sort"

	"casc/internal/model"
)

// Upper computes the UPPER estimate of the paper's experiments: the bound
// on the total cooperation quality revenue from Equation 9,
//
//	Q̂(ϕ) = min( Σ_j Q̂_tj , Σ_i q̂_{i,B} )
//
// where q̂_{i,B} (Lemma V.2) is worker i's largest possible average quality
// in any group of ≥ B workers — the mean of their B−1 highest pairwise
// qualities — and Q̂_tj (Equation 8) sums the a_j highest q̂ values among
// the task's candidate workers.
//
// Two refinements keep the bound valid while tightening it: q̂_{i,B} is
// computed over workers that share at least one candidate task with i
// (any feasible group containing i consists of such workers), and tasks
// with fewer than B candidates contribute zero (they can never be served).
func Upper(in *model.Instance) float64 {
	nW := len(in.Workers)
	B := in.B
	if B < 2 {
		return 0
	}
	qhat := make([]float64, nW)
	coworkers := coCandidateSets(in)
	topQ := make([]float64, 0, 64)
	for w := 0; w < nW; w++ {
		peers := coworkers[w]
		if len(peers) < B-1 {
			continue // cannot be in any feasible group
		}
		topQ = topQ[:0]
		for _, k := range peers {
			topQ = append(topQ, in.Quality.Quality(w, k))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(topQ)))
		var sum float64
		for i := 0; i < B-1; i++ {
			sum += topQ[i]
		}
		qhat[w] = sum / float64(B-1)
	}

	// Task side (Equation 8): Q̂_tj = Σ of the top-a_j q̂ values among the
	// task's candidates. The paper's Q(W_j) sums each member's average
	// quality twice (ordered pairs), i.e. Q(W_j) = Σ_{i∈W_j} q_i(W_j) with
	// q_i(W_j) ≤ q̂_i for symmetric models counted per direction; summing
	// q̂ over members bounds Σ_i q_i(W_j) because Lemma V.2 bounds each
	// term. Ordered-pair sums are already folded into q̂ via Quality being
	// symmetric in all paper models.
	var taskSide float64
	var cq []float64
	for t := range in.Tasks {
		cand := in.TaskCand[t]
		if len(cand) < B {
			continue
		}
		cq = cq[:0]
		for _, w := range cand {
			cq = append(cq, qhat[w])
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(cq)))
		take := in.Tasks[t].Capacity
		if take > len(cq) {
			take = len(cq)
		}
		for i := 0; i < take; i++ {
			taskSide += cq[i]
		}
	}

	var workerSide float64
	for _, q := range qhat {
		workerSide += q
	}
	if workerSide < taskSide {
		return workerSide
	}
	return taskSide
}

// UpperTight is a strictly tighter (but costlier) variant of Upper: the
// per-task bound Q̂_tj evaluates each candidate worker's q̂ *within that
// task's own candidate set* — any feasible group at t_j consists solely of
// t_j's candidates, so restricting the top-(B−1) average to them remains a
// valid upper bound on q_i(W_j) (the Lemma V.2 argument applied per task).
// The worker-side term is unchanged. UpperTight ≤ Upper always; the gap
// measures how much of UPPER's looseness comes from workers "borrowing"
// good partners they could never actually share a task with.
func UpperTight(in *model.Instance) float64 {
	B := in.B
	if B < 2 {
		return 0
	}
	var taskSide float64
	qs := make([]float64, 0, 64)
	qhatLocal := make([]float64, 0, 64)
	for t := range in.Tasks {
		cand := in.TaskCand[t]
		if len(cand) < B {
			continue
		}
		qhatLocal = qhatLocal[:0]
		for _, w := range cand {
			qs = qs[:0]
			for _, k := range cand {
				if k != w {
					qs = append(qs, in.Quality.Quality(w, k))
				}
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(qs)))
			var sum float64
			for i := 0; i < B-1; i++ {
				sum += qs[i]
			}
			qhatLocal = append(qhatLocal, sum/float64(B-1))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(qhatLocal)))
		take := in.Tasks[t].Capacity
		if take > len(qhatLocal) {
			take = len(qhatLocal)
		}
		for i := 0; i < take; i++ {
			taskSide += qhatLocal[i]
		}
	}
	global := Upper(in)
	if taskSide < global {
		return taskSide
	}
	return global
}

// coCandidateSets returns, per worker, the sorted distinct workers sharing
// at least one candidate task with it.
func coCandidateSets(in *model.Instance) [][]int {
	nW := len(in.Workers)
	out := make([][]int, nW)
	seen := make([]int, nW) // visit stamp per (worker, stamp) pair
	for i := range seen {
		seen[i] = -1
	}
	for w := 0; w < nW; w++ {
		var peers []int
		for _, t := range in.WorkerCand[w] {
			for _, k := range in.TaskCand[t] {
				if k != w && seen[k] != w {
					seen[k] = w
					peers = append(peers, k)
				}
			}
		}
		sort.Ints(peers)
		out[w] = peers
	}
	return out
}

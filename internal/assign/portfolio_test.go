package assign

import (
	"context"
	"math/rand"
	"testing"
)

func TestPortfolioPicksBest(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	ctx := context.Background()
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(r, 60, 20, 3)
		p, err := NewPortfolio([]string{"RAND", "MFLOW", "TPG", "GT"}, 1)
		if err != nil {
			t.Fatal(err)
		}
		a, err := p.Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(in); err != nil {
			t.Fatal(err)
		}
		best := a.TotalScore(in)
		for _, s := range p.Solvers {
			b, err := s.Solve(ctx, in)
			if err != nil {
				t.Fatal(err)
			}
			if b.TotalScore(in) > best+1e-9 {
				t.Fatalf("trial %d: member %s (%v) beats portfolio (%v)",
					trial, s.Name(), b.TotalScore(in), best)
			}
		}
		if p.Winner == "" {
			t.Fatal("no winner recorded")
		}
	}
}

func TestPortfolioWinnerUsuallyGT(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	gtWins := 0
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(r, 60, 20, 3)
		p, _ := NewPortfolio([]string{"RAND", "GT"}, 1)
		if _, err := p.Solve(context.Background(), in); err != nil {
			t.Fatal(err)
		}
		if p.Winner == "GT" {
			gtWins++
		}
	}
	if gtWins < 4 {
		t.Errorf("GT won only %d/5 portfolios against RAND", gtWins)
	}
}

func TestPortfolioErrors(t *testing.T) {
	if _, err := NewPortfolio(nil, 0); err == nil {
		t.Error("empty portfolio accepted")
	}
	if _, err := NewPortfolio([]string{"NOPE"}, 0); err == nil {
		t.Error("unknown member accepted")
	}
	p := &Portfolio{}
	if _, err := p.Solve(context.Background(), nil); err == nil {
		t.Error("solving empty portfolio succeeded")
	}
}

func TestPortfolioCancelledContext(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	in := randomInstance(r, 30, 10, 3)
	p, _ := NewPortfolio([]string{"TPG", "GT"}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, err := p.Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if a == nil {
		t.Fatal("nil assignment on cancelled context")
	}
	if err := a.Validate(in); err != nil {
		t.Fatal(err)
	}
}

package assign

import (
	"context"
	"sort"

	"casc/internal/model"
)

// EquilibriumSpread reports the empirical quality spread across sampled
// Nash equilibria of one instance. §V-C observes that "for any strategic
// game, there may be many Nash equilibriums with different qualities";
// sampling best-response runs from different random initializations makes
// that spread measurable — an empirical stand-in for the (intractable)
// exact PoS and PoA.
type EquilibriumSpread struct {
	// Scores of the sampled equilibria, ascending.
	Scores []float64
	// Best, Worst and Mean of Scores.
	Best, Worst, Mean float64
	// TPGInitScore is the equilibrium reached from the TPG initialization
	// (Algorithm 3 line 1) for reference.
	TPGInitScore float64
	// Upper is the Equation 9 bound; Best/Upper lower-bounds PoS·(OPT/Upper)
	// and Worst/Upper lower-bounds PoA·(OPT/Upper).
	Upper float64
}

// SampleEquilibria runs GT from k random initializations (plus once from
// TPG) and collects the resulting equilibrium scores.
func SampleEquilibria(ctx context.Context, in *model.Instance, k int) (EquilibriumSpread, error) {
	sp := EquilibriumSpread{Upper: Upper(in)}
	for i := 0; i < k; i++ {
		gt := NewGT(GTOptions{RandomInit: true, Seed: int64(i + 1)})
		a, err := gt.Solve(ctx, in)
		if err != nil {
			return sp, err
		}
		sp.Scores = append(sp.Scores, a.TotalScore(in))
	}
	gt := NewGT(GTOptions{})
	a, err := gt.Solve(ctx, in)
	if err != nil {
		return sp, err
	}
	sp.TPGInitScore = a.TotalScore(in)
	sp.Scores = append(sp.Scores, sp.TPGInitScore)
	sort.Float64s(sp.Scores)
	sp.Worst = sp.Scores[0]
	sp.Best = sp.Scores[len(sp.Scores)-1]
	var sum float64
	for _, s := range sp.Scores {
		sum += s
	}
	sp.Mean = sum / float64(len(sp.Scores))
	return sp, nil
}

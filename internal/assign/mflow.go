package assign

import (
	"context"

	"casc/internal/maxflow"
	"casc/internal/model"
)

// MFlow is the maximum-flow baseline of the paper's experiments (§VI-A),
// following GeoCrowd [11]: each batch becomes a flow network
//
//	source → each worker (capacity 1) → each valid task (capacity 1)
//	      → sink (capacity a_j)
//
// and a maximum flow yields the assignment with the maximum number of valid
// worker-and-task pairs. MFLOW is cooperation-oblivious — it never looks at
// q_i(w_k) — which is exactly why the paper uses it as a baseline.
type MFlow struct{}

// NewMFlow returns the MFLOW baseline solver.
func NewMFlow() *MFlow { return &MFlow{} }

// Name implements Solver.
func (s *MFlow) Name() string { return "MFLOW" }

// Fork implements Forker: MFlow keeps no state across Solve calls, so the
// receiver itself is safe to share.
func (s *MFlow) Fork(int64) Solver { return s }

// Solve implements Solver.
func (s *MFlow) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	nW, nT := len(in.Workers), len(in.Tasks)
	// Node layout: workers [0,nW), tasks [nW,nW+nT), source, sink.
	src := nW + nT
	sink := src + 1
	g := maxflow.NewGraph(nW + nT + 2)
	type edgeRef struct {
		worker, task, idx int
	}
	var refs []edgeRef
	for w := 0; w < nW; w++ {
		// Graph construction dominates the pre-flow cost; checking here
		// bounds the cancellation reaction to one worker's edges.
		if ctx.Err() != nil {
			return model.NewAssignment(in), nil
		}
		if len(in.WorkerCand[w]) == 0 {
			continue
		}
		g.AddEdge(src, w, 1)
		for _, t := range in.WorkerCand[w] {
			refs = append(refs, edgeRef{worker: w, task: t, idx: g.AddEdge(w, nW+t, 1)})
		}
	}
	//casclint:ignore ctxloop O(tasks) cheap edge appends; ctx is polled immediately after
	for t := 0; t < nT; t++ {
		g.AddEdge(nW+t, sink, in.Tasks[t].Capacity)
	}
	if ctx.Err() != nil {
		return model.NewAssignment(in), nil
	}
	g.MaxFlow(src, sink)
	a := model.NewAssignment(in)
	//casclint:ignore ctxloop bounded flow-to-assignment extraction after the max-flow run completed
	for _, r := range refs {
		if g.Flow(r.idx) > 0 {
			a.Assign(r.worker, r.task)
		}
	}
	return a, nil
}

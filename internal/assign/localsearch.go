package assign

import (
	"context"

	"casc/internal/model"
)

// LocalSearch refines a base solver's assignment with pairwise *swap*
// moves: two workers assigned to different tasks exchange places when both
// are candidates of each other's task and the exchange raises the total
// cooperation score. Best-response dynamics (GT) only ever move one worker
// at a time, so a Nash equilibrium can still admit profitable swaps — the
// classic exchange-blocked local optimum (see TestLocalSearchEscapesNash
// for a concrete 2-task instance). LocalSearch is the natural "future
// work" refinement on top of the paper's GT: it starts from the base
// solver's output and applies first-improvement swap passes until a full
// pass finds nothing or MaxPasses is hit.
type LocalSearch struct {
	Base Solver
	// MaxPasses caps full swap sweeps (default 20).
	MaxPasses int
	// Swaps reports how many improving swaps the last Solve applied.
	Swaps int
}

// NewLocalSearch wraps base (nil means GT with defaults).
func NewLocalSearch(base Solver) *LocalSearch {
	if base == nil {
		base = NewGT(GTOptions{})
	}
	return &LocalSearch{Base: base}
}

// Name implements Solver.
func (s *LocalSearch) Name() string { return s.Base.Name() + "+LS" }

// Solve implements Solver.
func (s *LocalSearch) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	a, err := s.Base.Solve(ctx, in)
	if err != nil {
		return nil, err
	}
	s.Swaps = 0
	maxPasses := s.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 20
	}

	groups := newGroups(in)
	//casclint:ignore ctxloop bounded group initialization from the base assignment; the pass loop below polls ctx
	for t, ws := range a.TaskWorkers {
		for _, w := range ws {
			groups[t].Join(w)
		}
	}
	// candSet[w] is a lookup for "is t a candidate of w".
	candSet := make([]map[int]bool, len(in.Workers))
	memberOf := func(w int) int { return a.WorkerTask[w] }
	isCand := func(w, t int) bool {
		if candSet[w] == nil {
			set := make(map[int]bool, len(in.WorkerCand[w]))
			for _, c := range in.WorkerCand[w] {
				set[c] = true
			}
			candSet[w] = set
		}
		return candSet[w][t]
	}

	for pass := 0; pass < maxPasses; pass++ {
		if ctx.Err() != nil {
			break
		}
		improved := false
		for w1 := range in.Workers {
			t1 := memberOf(w1)
			if t1 == model.Unassigned {
				continue
			}
			for _, t2 := range in.WorkerCand[w1] {
				if t2 == t1 {
					continue
				}
				g1, g2 := groups[t1], groups[t2]
				for _, w2 := range g2.Members() {
					if !isCand(w2, t1) {
						continue
					}
					delta := g1.SwapDelta(w1, w2) + g2.SwapDelta(w2, w1)
					if delta <= 1e-12 {
						continue
					}
					// Apply the swap.
					g1.Leave(w1)
					g2.Leave(w2)
					g1.Join(w2)
					g2.Join(w1)
					a.Unassign(w1)
					a.Unassign(w2)
					a.Assign(w1, t2)
					a.Assign(w2, t1)
					s.Swaps++
					improved = true
					break // w1 moved; restart its scan from the new task
				}
				if memberOf(w1) != t1 {
					break
				}
			}
		}
		if !improved {
			break
		}
	}
	return a, nil
}

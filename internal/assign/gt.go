package assign

import (
	"context"

	"casc/internal/game"
	"casc/internal/metrics"
	"casc/internal/model"
	"casc/internal/stats"
)

// GTOptions configure the game theoretic approach.
type GTOptions struct {
	// LUB enables lazy updating of best responses (§V-D, Theorems V.3/V.4).
	LUB bool
	// Epsilon enables threshold stop of the iteration (§V-D): stop once a
	// round improves the total cooperation score by less than Epsilon times
	// its current value. Zero runs to a pure Nash equilibrium.
	Epsilon float64
	// RandomInit initializes each worker on a uniformly random valid task
	// (the generic best-response framework's "randomly selects a strategy
	// for each player", §V-A) instead of the TPG assignment of Algorithm 3
	// line 1. Exposed for the ablation bench. Note that the *empty*
	// assignment would be useless here: it is itself a (worthless) Nash
	// equilibrium, since no single worker joining a below-B group gains
	// anything — a nice illustration of why equilibrium selection matters.
	RandomInit bool
	// Seed drives RandomInit's randomness.
	Seed int64
	// MaxRounds caps best-response rounds (0: engine default).
	MaxRounds int
	// RecordAnytime captures the per-round potential profile into
	// GT.Anytime after Solve — the anytime behaviour §V-D describes (score
	// climbs round by round; interrupt anywhere and keep a valid result).
	RecordAnytime bool
	// GainPriority processes workers in descending order of their last
	// observed improvement within a round (scheduling ablation; see
	// game.Options.GainPriority).
	GainPriority bool
}

// AnytimePoint is one round of GT's anytime profile.
type AnytimePoint struct {
	Round     int
	Potential float64
	Gain      float64
}

// GT is the game theoretic approach of §V (Algorithm 3): model each worker
// as a player whose strategies are their valid tasks and whose utility is
// the cooperation quality increase ΔQ (Equation 5), initialize with TPG,
// then run best-response dynamics until a pure Nash equilibrium. The CA-SC
// strategic game is an exact potential game with potential Q(T)
// (Theorem V.1), so the dynamics converge.
type GT struct {
	opts GTOptions
	// Stats of the last Solve call.
	Stats game.Result
	// Anytime holds the per-round potential profile of the last Solve when
	// GTOptions.RecordAnytime is set.
	Anytime []AnytimePoint
	// Metrics, when non-nil, receives the dynamics counters of every Solve
	// (rounds, swaps, best-response calls, LUB prune savings, stop
	// reasons). Set it directly or via Instrument.
	Metrics *metrics.Registry
	// Arena, when non-nil, is the scratch memory every Solve draws from —
	// shared by the TPG initialization, the strategic game state, and the
	// best-response engine's queues — making steady-state solves
	// allocation-free at the price of arena-owned results and no
	// concurrent Solve calls (see Arena). Nil uses a throwaway arena per
	// Solve; the output is identical either way.
	Arena *Arena
	// inner runs the Algorithm 3 line 1 TPG initialization on the shared
	// arena. Held by value so the solver allocates it exactly once; its
	// Metrics stay nil — the initialization's counters are not flushed, as
	// before.
	inner TPG
}

// NewGT returns a GT solver with the given options.
func NewGT(opts GTOptions) *GT { return &GT{opts: opts} }

// SetArena implements ArenaHolder.
func (s *GT) SetArena(ar *Arena) { s.Arena = ar }

// Fork implements Forker: the fork shares nothing mutable with the
// receiver (Stats/Anytime are per-fork, and the arena is deliberately not
// inherited — forks run concurrently; the pool attaches per-worker arenas
// via SetArena) and adopts the derived component seed, which only matters
// under RandomInit.
func (s *GT) Fork(seed int64) Solver {
	opts := s.opts
	opts.Seed = seed
	return &GT{opts: opts, Metrics: s.Metrics}
}

// Name implements Solver.
func (s *GT) Name() string {
	switch {
	case s.opts.LUB && s.opts.Epsilon > 0:
		return "GT+ALL"
	case s.opts.LUB:
		return "GT+LUB"
	case s.opts.Epsilon > 0:
		return "GT+TSI"
	default:
		return "GT"
	}
}

// Solve implements Solver.
func (s *GT) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	return s.solve(ctx, in, nil)
}

// SolveWarm implements WarmStarter: the warm cache accelerates the TPG
// initialization of Algorithm 3 line 1 only. Best-response dynamics from an
// identical initial assignment replay identically, so the output matches a
// cold Solve exactly; warm-starting from the previous round's *equilibrium*
// would change the dynamics and is deliberately not done.
func (s *GT) SolveWarm(ctx context.Context, in *model.Instance, warm *Warm) (*model.Assignment, error) {
	return s.solve(ctx, in, warm)
}

func (s *GT) solve(ctx context.Context, in *model.Instance, warm *Warm) (*model.Assignment, error) {
	ar := s.Arena
	if ar == nil {
		ar = NewArena()
	}
	reuses0, grows0 := ar.reuses, ar.grows
	var a *model.Assignment
	if s.opts.RandomInit {
		ar.begin()
		a = randomInit(in, s.opts.Seed)
	} else {
		// The initialization shares the arena; its solve calls ar.begin(),
		// so the reuse statistics count one solve for the whole GT run.
		s.inner.Arena = ar
		init, err := s.inner.solve(ctx, in, warm)
		if err != nil {
			return nil, err
		}
		a = init
	}
	if ctx.Err() != nil {
		return a, nil
	}
	// gameFor replays a into the arena's game state, after which a (the
	// arena's result assignment on the TPG path) is no longer read — the
	// final assignment is materialized back into that same slot below.
	g := ar.gameFor(in, a)
	gopts := game.Options{
		Epsilon:      s.opts.Epsilon,
		Lazy:         s.opts.LUB,
		MaxRounds:    s.opts.MaxRounds,
		Context:      ctx,
		GainPriority: s.opts.GainPriority,
		Scratch:      &ar.game,
	}
	if s.opts.RecordAnytime {
		s.Anytime = s.Anytime[:0]
		gopts.OnRound = func(round int, potential, gain float64) {
			s.Anytime = append(s.Anytime, AnytimePoint{Round: round, Potential: potential, Gain: gain})
		}
	}
	s.Stats = game.Run(g, gopts)
	s.recordMetrics(len(in.Workers), ar.reuses-reuses0, ar.grows-grows0)
	return g.assignmentInto(ar), nil
}

// recordMetrics flushes the last run's dynamics counters into Metrics.
func (s *GT) recordMetrics(players int, arenaReuses, arenaGrows uint64) {
	if s.Metrics == nil {
		return
	}
	lbl := metrics.L("solver", s.Name())
	s.Metrics.Counter(MetricGTRounds, "Best-response rounds run.", lbl).Add(uint64(s.Stats.Rounds))
	s.Metrics.Counter(MetricGTSwaps, "Strategy switches applied.", lbl).Add(uint64(s.Stats.Moves))
	s.Metrics.Counter(MetricGTBestResponses, "Best-response evaluations performed.", lbl).
		Add(uint64(s.Stats.BestResponseCalls))
	if s.opts.LUB {
		if full := s.Stats.Rounds * players; full > s.Stats.BestResponseCalls {
			s.Metrics.Counter(MetricGTPrunedBestResponses,
				"Best-response evaluations skipped by LUB dirty tracking.", lbl).
				Add(uint64(full - s.Stats.BestResponseCalls))
		}
	}
	s.Metrics.Counter(MetricGTStops, "Dynamics terminations by reason.",
		lbl, metrics.L("reason", string(s.Stats.Reason))).Inc()
	recordArenaMetrics(s.Metrics, s.Name(), arenaReuses, arenaGrows)
}

// randomInit assigns each worker a uniformly random candidate task with
// spare capacity (workers with no open candidate stay unassigned).
func randomInit(in *model.Instance, seed int64) *model.Assignment {
	r := stats.NewRNG(seed)
	a := model.NewAssignment(in)
	load := make([]int, len(in.Tasks))
	var open []int
	for w := range in.Workers {
		open = open[:0]
		for _, t := range in.WorkerCand[w] {
			if load[t] < in.Tasks[t].Capacity {
				open = append(open, t)
			}
		}
		if len(open) == 0 {
			continue
		}
		t := open[r.Intn(len(open))]
		a.Assign(w, t)
		load[t]++
	}
	return a
}

// cascGame is the CA-SC strategic game (§V-B). Strategies of worker w are
// encoded as indices into model.Instance.WorkerCand[w], with the sentinel
// stratNone meaning "no task".
type cascGame struct {
	in     *model.Instance
	groups []*model.GroupScore
	cur    []int // worker -> task index or model.Unassigned
	// affected is Apply's reusable output buffer; the engine consumes it
	// before the next Apply, so one buffer per game suffices.
	affected []int
}

const stratNone = -1

// newCASCGame builds a freshly allocated game over init. The GT hot path
// uses Arena.gameFor instead; this stays for one-shot analyses (regret
// evaluation, tests) where the game outlives any solver arena.
func newCASCGame(in *model.Instance, init *model.Assignment) *cascGame {
	g := &cascGame{
		in:     in,
		groups: newGroups(in),
		cur:    make([]int, len(in.Workers)),
	}
	for w := range g.cur {
		g.cur[w] = model.Unassigned
	}
	for t, ws := range init.TaskWorkers {
		for _, w := range ws {
			g.groups[t].Join(w)
			g.cur[w] = t
		}
	}
	return g
}

// NumPlayers implements game.Game.
func (g *cascGame) NumPlayers() int { return len(g.cur) }

// moveGain returns the potential (= total cooperation score) change of
// moving worker w to task t, together with the member that must be evicted
// when t is full (-1 when none). For non-crowding moves the potential
// change equals the utility change of Equation 5 because the game is an
// exact potential game (Theorem V.1); for crowding moves we use the
// potential change directly, which keeps the dynamics monotone and
// convergent (DESIGN.md §4.3).
func (g *cascGame) moveGain(w, t int) (gain float64, evict int) {
	leaveLoss := 0.0
	if ct := g.cur[w]; ct != model.Unassigned {
		leaveLoss = g.groups[ct].LeaveDelta(w)
	}
	grp := g.groups[t]
	if grp.Len() < grp.Capacity() {
		return grp.JoinDelta(w) - leaveLoss, -1
	}
	// Full task: joining must crowd out the member whose replacement by w
	// yields the best resulting quality (Theorems V.3/V.4 semantics).
	bestDelta, bestOut := 0.0, -1
	for _, out := range grp.Members() {
		if d := grp.SwapDelta(out, w); bestOut < 0 || d > bestDelta {
			bestDelta, bestOut = d, out
		}
	}
	return bestDelta - leaveLoss, bestOut
}

// BestResponse implements game.Game. Strategy encoding: 0..len(cand)-1 are
// the worker's candidate tasks, len(cand) is "no task".
func (g *cascGame) BestResponse(w int) (int, float64, bool) {
	cand := g.in.WorkerCand[w]
	bestS, bestGain := stratNone, 0.0
	// Option: leave the current task entirely. Gain = -(LeaveDelta), which
	// is positive when the worker's presence lowers its group's quality.
	if ct := g.cur[w]; ct != model.Unassigned {
		if gain := -g.groups[ct].LeaveDelta(w); gain > bestGain {
			bestS, bestGain = len(cand), gain
		}
	}
	for si, t := range cand {
		if t == g.cur[w] {
			continue
		}
		gain, _ := g.moveGain(w, t)
		if gain > bestGain {
			bestS, bestGain = si, gain
		}
	}
	if bestS == stratNone {
		return 0, 0, false
	}
	return bestS, bestGain, true
}

// Apply implements game.Game. The returned slice aliases the game's
// reusable buffer and is only valid until the next Apply — exactly the
// engine's consumption pattern. A nil return (nothing affected) preserves
// the engine's "unknown" convention of the original per-call slices,
// though in this game every legal move touches at least one candidate
// list.
func (g *cascGame) Apply(w, strategy int) []int {
	cand := g.in.WorkerCand[w]
	g.affected = g.affected[:0]
	leave := func() {
		if ct := g.cur[w]; ct != model.Unassigned {
			g.groups[ct].Leave(w)
			g.cur[w] = model.Unassigned
			g.affected = append(g.affected, g.in.TaskCand[ct]...)
		}
	}
	if strategy == len(cand) {
		leave()
		if len(g.affected) == 0 {
			return nil
		}
		return g.affected
	}
	t := cand[strategy]
	grp := g.groups[t]
	if grp.Len() >= grp.Capacity() {
		// Crowd out the best-replacement member (recomputed here; the group
		// may have changed since BestResponse ran under eager dynamics, but
		// within one engine step it has not).
		_, out := g.moveGain(w, t)
		if out >= 0 {
			grp.Leave(out)
			g.cur[out] = model.Unassigned
			g.affected = append(g.affected, out)
		}
	}
	leave()
	grp.Join(w)
	g.cur[w] = t
	g.affected = append(g.affected, g.in.TaskCand[t]...)
	return g.affected
}

// Potential implements game.Game: the overall cooperation quality revenue
// Q(T) of Equation 3, which is the exact potential of the game.
func (g *cascGame) Potential() float64 {
	var total float64
	for _, grp := range g.groups {
		total += grp.Q()
	}
	return total
}

// assignmentInto materializes the current joint strategy into the arena's
// result assignment.
func (g *cascGame) assignmentInto(ar *Arena) *model.Assignment {
	a := ar.assignmentFor(g.in)
	for w, t := range g.cur {
		if t != model.Unassigned {
			a.Assign(w, t)
		}
	}
	return a
}

package assign

import (
	"context"
	"sort"

	"casc/internal/model"
)

// This file implements the per-worker quality bounds of Lemmas V.2 and V.3
// and the equilibrium quality measures of Theorem V.2 (price of anarchy /
// price of stability).

// WorkerBounds carries q̂_{i,B} and q̌_{i,B} for one worker: the highest and
// lowest average quality score the worker can have in any group of at least
// B workers (Lemmas V.2 and V.3). Workers that cannot join any feasible
// group (fewer than B−1 co-candidates) have Feasible == false and zero
// bounds.
type WorkerBounds struct {
	QHat     float64 // q̂_{i,B}: mean of the B−1 highest pair qualities
	QCheck   float64 // q̌_{i,B}: mean of the B−1 lowest pair qualities
	Feasible bool
}

// Bounds computes WorkerBounds for every worker over its co-candidate set
// (workers sharing at least one candidate task — the only workers it can
// ever share a group with).
func Bounds(in *model.Instance) []WorkerBounds {
	nW := len(in.Workers)
	B := in.B
	out := make([]WorkerBounds, nW)
	if B < 2 {
		return out
	}
	coworkers := coCandidateSets(in)
	qs := make([]float64, 0, 64)
	for w := 0; w < nW; w++ {
		peers := coworkers[w]
		if len(peers) < B-1 {
			continue
		}
		qs = qs[:0]
		for _, k := range peers {
			qs = append(qs, in.Quality.Quality(w, k))
		}
		sort.Float64s(qs)
		var lo, hi float64
		for i := 0; i < B-1; i++ {
			lo += qs[i]
			hi += qs[len(qs)-1-i]
		}
		out[w] = WorkerBounds{
			QHat:     hi / float64(B-1),
			QCheck:   lo / float64(B-1),
			Feasible: true,
		}
	}
	return out
}

// EquilibriumQuality reports the Theorem V.2 measures for a GT run on one
// instance: the UPPER estimate standing in for the social optimum, the
// achieved score, the PoA lower bound N_init·B·q̌ (where N_init is the
// number of tasks the TPG initialization finished and q̌ the minimum
// feasible q̌_{i,B}), and the resulting bracket on the achieved-to-optimal
// ratio.
type EquilibriumQuality struct {
	Upper         float64 // Q̂(ϕ) of Equation 9
	Achieved      float64 // Q of the equilibrium assignment
	PoALowerBound float64 // N_init·B·q̌ (Theorem V.2)
	// AchievedRatio is Achieved/Upper (≤ PoS ≤ 1); zero when Upper is 0.
	AchievedRatio float64
}

// AnalyzeEquilibrium evaluates an assignment (typically a GT equilibrium)
// against the Theorem V.2 bounds. nInit is the number of tasks the
// initialization stage finished; pass InitTasksOf(ctx, in) when the assignment
// came from a default GT run.
func AnalyzeEquilibrium(in *model.Instance, a *model.Assignment, nInit int) EquilibriumQuality {
	eq := EquilibriumQuality{
		Upper:    Upper(in),
		Achieved: a.TotalScore(in),
	}
	bounds := Bounds(in)
	qCheck := -1.0
	for _, b := range bounds {
		if !b.Feasible {
			continue
		}
		if qCheck < 0 || b.QCheck < qCheck {
			qCheck = b.QCheck
		}
	}
	if qCheck < 0 {
		qCheck = 0
	}
	eq.PoALowerBound = float64(nInit) * float64(in.B) * qCheck
	if eq.Upper > 0 {
		eq.AchievedRatio = eq.Achieved / eq.Upper
	}
	return eq
}

// InitTasksOf runs the TPG initialization and returns N_init, the number of
// tasks finished in the initialization stage of GT (Theorem V.2's N_init).
// The caller's ctx bounds the embedded solve.
func InitTasksOf(ctx context.Context, in *model.Instance) int {
	a, err := NewTPG().Solve(ctx, in)
	if err != nil {
		return 0
	}
	return a.CompletedTasks(in)
}

package assign

import (
	"context"

	"casc/internal/model"
)

// WST is the worker-selected-tasks publishing mode discussed in the paper's
// related work (§VII, after [8]): instead of the server optimizing the
// assignment, each worker autonomously picks the valid task that maximizes
// their own cooperation utility given the choices made so far, in a single
// pass and in arrival order. It is exactly one round of best-response
// dynamics from the empty assignment — GT without iteration — which makes
// it the natural ablation between RAND and GT: self-interested but
// uncoordinated.
type WST struct{}

// NewWST returns the worker-selected-tasks baseline.
func NewWST() *WST { return &WST{} }

// Name implements Solver.
func (s *WST) Name() string { return "WST" }

// Fork implements Forker: WST is stateless.
func (s *WST) Fork(int64) Solver { return s }

// Solve implements Solver.
func (s *WST) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	groups := newGroups(in)
	a := model.NewAssignment(in)
	for w := range in.Workers {
		if ctx.Err() != nil {
			return a, nil
		}
		bestT, bestGain := -1, 0.0
		for _, t := range in.WorkerCand[w] {
			g := groups[t]
			if g.Len() >= g.Capacity() {
				continue
			}
			if gain := g.JoinDelta(w); gain > bestGain {
				bestT, bestGain = t, gain
			}
		}
		if bestT >= 0 {
			groups[bestT].Join(w)
			a.Assign(w, bestT)
			continue
		}
		// No positive-gain task: a self-interested worker still joins the
		// task where they'd contribute most once the group reaches B (zero
		// utility now, potential reputation later). Pick the valid task with
		// the largest group so groups actually form.
		bestT, bestLen := -1, -1
		for _, t := range in.WorkerCand[w] {
			g := groups[t]
			if g.Len() >= g.Capacity() {
				continue
			}
			if g.Len() > bestLen {
				bestT, bestLen = t, g.Len()
			}
		}
		if bestT >= 0 {
			groups[bestT].Join(w)
			a.Assign(w, bestT)
		}
	}
	return a, nil
}

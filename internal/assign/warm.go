package assign

import (
	"context"

	"casc/internal/model"
)

// Warm carries output-preserving warm-start state for TPG stage one across
// consecutive solves of slowly-changing instances (the incremental batch
// engine's rounds). The cache holds, per task, the iteration-0 best-B-subset
// — the one bestBSubset computes with every worker available — keyed by the
// task's external ID and guarded by an exact fingerprint: the external IDs
// of the task's candidate workers in TaskCand order, plus its capacity.
//
// Reuse is sound only because a fingerprint match pins every input of the
// iteration-0 computation: the candidate sequence (hence the affinity
// truncation and the greedy trace), the capacity (hence the score
// denominator), and — by contract — the quality values. Callers must only
// share a Warm across solves whose quality model is a fixed function of
// worker external IDs (the batch tier's Subset over a static model is; a
// position-keyed or mutating history is not). A hit therefore reproduces
// the cold computation bit for bit; anything else is a miss and the entry
// is recomputed and replaced. Warm is not safe for concurrent use.
type Warm struct {
	tasks map[int]*warmTask
}

// warmTask is one task's cached iteration-0 subset.
type warmTask struct {
	candIDs  []int // external IDs of TaskCand workers, in list order
	capacity int
	set      []int // chosen indices into candIDs, in greedy commit order; nil = no B-set
	score    float64
}

// NewWarm returns an empty warm-start cache.
func NewWarm() *Warm { return &Warm{tasks: make(map[int]*warmTask)} }

// Len returns the number of cached task entries.
func (w *Warm) Len() int { return len(w.tasks) }

// Prune drops entries whose task external ID is no longer live.
func (w *Warm) Prune(live func(taskID int) bool) {
	for id := range w.tasks {
		if !live(id) {
			delete(w.tasks, id)
		}
	}
}

// lookup returns the cached entry for task position t if its fingerprint
// matches the instance exactly, else nil.
func (w *Warm) lookup(in *model.Instance, t int) *warmTask {
	wt := w.tasks[in.Tasks[t].ID]
	if wt == nil || wt.capacity != in.Tasks[t].Capacity {
		return nil
	}
	cand := in.TaskCand[t]
	if len(wt.candIDs) != len(cand) {
		return nil
	}
	for i, p := range cand {
		if wt.candIDs[i] != in.Workers[p].ID {
			return nil
		}
	}
	return wt
}

// apply materializes the cached subset as worker positions of in, in the
// original greedy commit order (group member order feeds the float
// summation order of GroupQuality, so it must be preserved exactly). The
// subset is appended to dst — the task's arena B-set slot — so a cache hit
// allocates nothing.
func (wt *warmTask) apply(in *model.Instance, t int, dst []int) ([]int, float64) {
	if wt.set == nil {
		return nil, 0
	}
	for _, idx := range wt.set {
		dst = append(dst, in.TaskCand[t][idx])
	}
	return dst, wt.score
}

// store records task position t's freshly computed iteration-0 subset,
// replacing any stale entry. The chosen worker positions are re-expressed
// as indices into the fingerprint sequence so a later hit can remap them
// onto that round's positions.
func (w *Warm) store(in *model.Instance, t int, set []int, score float64) {
	cand := in.TaskCand[t]
	wt := w.tasks[in.Tasks[t].ID]
	if wt == nil {
		wt = &warmTask{}
		w.tasks[in.Tasks[t].ID] = wt
	}
	wt.candIDs = wt.candIDs[:0]
	for _, p := range cand {
		wt.candIDs = append(wt.candIDs, in.Workers[p].ID)
	}
	wt.capacity = in.Tasks[t].Capacity
	wt.score = score
	if set == nil {
		wt.set = nil
		return
	}
	wt.set = wt.set[:0]
	for _, p := range set {
		idx := -1
		for i, c := range cand {
			if c == p {
				idx = i
				break
			}
		}
		if idx < 0 {
			// The chosen worker is not in TaskCand (cannot happen for
			// bestBSubset output); refuse to cache rather than corrupt.
			wt.set = nil
			wt.candIDs = wt.candIDs[:0]
			return
		}
		wt.set = append(wt.set, idx)
	}
}

// WarmStarter is implemented by solvers that can exploit a Warm cache while
// guaranteeing the exact output of a cold Solve on the same instance. The
// contract is strictly output-preserving: SolveWarm(ctx, in, warm) must
// return an assignment bitwise identical (same pairs, same group member
// order, same scores) to Solve(ctx, in); the cache only shortcuts
// recomputation. SolveWarm with a nil warm behaves exactly like Solve.
type WarmStarter interface {
	Solver
	SolveWarm(ctx context.Context, in *model.Instance, warm *Warm) (*model.Assignment, error)
}

// SolveMaybeWarm dispatches to s.SolveWarm when s supports warm starts and
// warm is non-nil, else to s.Solve. Helper for engines holding a decorated
// solver stack.
func SolveMaybeWarm(ctx context.Context, s Solver, in *model.Instance, warm *Warm) (*model.Assignment, error) {
	if ws, ok := s.(WarmStarter); ok && warm != nil {
		return ws.SolveWarm(ctx, in, warm)
	}
	return s.Solve(ctx, in)
}

package assign

import (
	"context"
	"fmt"

	"casc/internal/model"
)

// Portfolio runs several solvers on the same instance and keeps the best
// assignment. CA-SC heuristics have no dominance relation in general
// (GT ≥ its own TPG initialization, but a differently-seeded start can end
// in a different equilibrium), so a portfolio is the cheap way to buy the
// max. Solvers run sequentially and share the context.
type Portfolio struct {
	Solvers []Solver
	// Winner records which member produced the returned assignment.
	Winner string
}

// NewPortfolio builds a portfolio from solver names.
func NewPortfolio(names []string, seed int64) (*Portfolio, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("assign: empty portfolio")
	}
	p := &Portfolio{}
	for _, n := range names {
		s, err := ByName(n, seed)
		if err != nil {
			return nil, err
		}
		p.Solvers = append(p.Solvers, s)
	}
	return p, nil
}

// Name implements Solver.
func (p *Portfolio) Name() string { return "PORTFOLIO" }

// Solve implements Solver.
func (p *Portfolio) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	if len(p.Solvers) == 0 {
		return nil, fmt.Errorf("assign: empty portfolio")
	}
	var best *model.Assignment
	bestScore := -1.0
	for _, s := range p.Solvers {
		if ctx.Err() != nil {
			break
		}
		a, err := s.Solve(ctx, in)
		if err != nil {
			return nil, fmt.Errorf("assign: portfolio member %s: %w", s.Name(), err)
		}
		if score := a.TotalScore(in); score > bestScore {
			best, bestScore = a, score
			p.Winner = s.Name()
		}
	}
	if best == nil {
		best = model.NewAssignment(in)
		p.Winner = ""
	}
	return best, nil
}

package assign

import (
	"context"

	"casc/internal/model"
	"casc/internal/stats"
)

// Random is the RAND baseline of the paper's experiments (§VI-A): "it
// randomly chooses a task, and then randomly assigns a set of valid workers
// to it". Tasks are visited in random order; each receives up to a_j random
// available candidate workers, but only when at least B are available
// (groups below B produce zero revenue and would only waste workers).
type Random struct {
	seed int64
}

// NewRandom returns a RAND solver with the given seed.
func NewRandom(seed int64) *Random { return &Random{seed: seed} }

// Name implements Solver.
func (s *Random) Name() string { return "RAND" }

// Fork implements Forker: the fork adopts the derived component seed, so a
// decomposed RAND run is reproducible regardless of pool scheduling.
func (s *Random) Fork(seed int64) Solver { return NewRandom(seed) }

// Solve implements Solver.
func (s *Random) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	r := stats.NewRNG(s.seed)
	a := model.NewAssignment(in)
	avail := make([]bool, len(in.Workers))
	for i := range avail {
		avail[i] = true
	}
	order := r.Perm(len(in.Tasks))
	var pool []int
	for _, t := range order {
		if ctx.Err() != nil {
			return a, nil
		}
		pool = pool[:0]
		for _, w := range in.TaskCand[t] {
			if avail[w] {
				pool = append(pool, w)
			}
		}
		if len(pool) < in.B {
			continue
		}
		stats.Shuffle(r, pool)
		take := in.Tasks[t].Capacity
		if take > len(pool) {
			take = len(pool)
		}
		for _, w := range pool[:take] {
			a.Assign(w, t)
			avail[w] = false
		}
	}
	return a, nil
}

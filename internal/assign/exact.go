package assign

import (
	"context"
	"sort"

	"casc/internal/model"
	"casc/internal/partition"
)

// Exact is a branch-and-bound optimal solver. Like BruteForce it explores
// every worker's choice of candidate task (or none), but it prunes with the
// Lemma V.2 bound: the objective decomposes as Q(T) = Σ_{assigned i}
// q_i(W_j) and every term is at most q̂_{i,B}, so
//
//	best-completion(partial) ≤ current-score-if-all-groups-close +
//	                           Σ_{undecided i} q̂_{i,B}.
//
// The subtlety is that a partial assignment's groups may still be below B;
// their members' eventual contribution is also bounded by q̂, so the bound
// sums q̂ over undecided workers plus members of open groups, and adds Q of
// groups that already reached B. Workers are branched in descending-q̂
// order, which makes the bound bite early. Exact handles tens of workers —
// an order of magnitude beyond BruteForce — and exists to measure the true
// optimality gap of TPG and GT on mid-size instances (see
// TestExactMatchesBruteForce and the optgap analysis in EXPERIMENTS.md).
type Exact struct {
	// MaxNodes caps the search tree (default 20 million); Solve returns the
	// best assignment found so far when the cap is hit, with Optimal=false.
	MaxNodes int
	// Optimal reports whether the last Solve proved optimality.
	Optimal bool
}

// NewExact returns a branch-and-bound optimal solver.
func NewExact() *Exact { return &Exact{} }

// Name implements Solver.
func (s *Exact) Name() string { return "EXACT" }

// Fork implements Forker: the fork carries the node cap; Optimal is
// per-fork state.
func (s *Exact) Fork(int64) Solver { return &Exact{MaxNodes: s.MaxNodes} }

// Solve implements Solver. The instance is first split into the connected
// components of its validity graph (internal/partition) and each component
// is searched independently — the optimum is additive across components, so
// this loses nothing while bounding the tractable instance size by the
// largest component instead of the whole batch. The node budget is shared:
// components are searched in partition order (largest first) until MaxNodes
// is exhausted, after which the remaining components still get a
// best-effort search of whatever budget trickles through (at least the
// root), and Optimal reports false.
func (s *Exact) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	maxNodes := s.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 2e7
	}
	subs, maps := partition.Decompose(in)
	a := model.NewAssignment(in)
	s.Optimal = true
	remaining := maxNodes
	for i, sub := range subs {
		budget := remaining
		if budget < 1 {
			budget = 1 // still visit the root so Optimal turns false
		}
		best, nodes, optimal := exactSearch(ctx, sub, budget)
		remaining -= nodes
		if !optimal {
			s.Optimal = false
		}
		sa := model.NewAssignment(sub)
		for w, t := range best {
			if t != model.Unassigned {
				sa.Assign(w, t)
			}
		}
		maps[i].Lift(sa, a)
	}
	return a, nil
}

// exactSearch runs the Lemma V.2 branch and bound on one (sub-)instance,
// returning the best worker→task vector found, the nodes expanded, and
// whether the search closed within maxNodes.
func exactSearch(ctx context.Context, in *model.Instance, maxNodes int) ([]int, int, bool) {
	nW := len(in.Workers)
	bounds := Bounds(in)

	// Branch order: feasible workers by descending q̂, then the rest (which
	// can never contribute and are skipped outright).
	order := make([]int, 0, nW)
	for w := 0; w < nW; w++ {
		if bounds[w].Feasible && len(in.WorkerCand[w]) > 0 {
			order = append(order, w)
		}
	}
	sort.Slice(order, func(a, b int) bool { return bounds[order[a]].QHat > bounds[order[b]].QHat })
	// suffixHat[i] = Σ_{j≥i} q̂ of order[j].
	suffixHat := make([]float64, len(order)+1)
	for i := len(order) - 1; i >= 0; i-- {
		suffixHat[i] = suffixHat[i+1] + bounds[order[i]].QHat
	}

	groups := newGroups(in)
	cur := make([]int, nW)
	best := make([]int, nW)
	for i := range cur {
		cur[i] = model.Unassigned
		best[i] = model.Unassigned
	}
	bestScore := -1.0
	nodes := 0
	optimal := true

	// score of the current partial assignment counting only closed groups
	// (≥ B) is recomputed cheaply from the GroupScores on demand.
	closedScore := func() float64 {
		var total float64
		for _, g := range groups {
			total += g.Q()
		}
		return total
	}
	// openPotential sums q̂ of members of groups still below B: they might
	// yet earn up to q̂ each if the group closes.
	openPotential := func() float64 {
		var total float64
		for _, g := range groups {
			if g.Len() >= in.B {
				continue
			}
			for _, w := range g.Members() {
				total += bounds[w].QHat
			}
		}
		return total
	}

	var rec func(pos int)
	rec = func(pos int) {
		if nodes >= maxNodes || ctx.Err() != nil {
			optimal = false
			return
		}
		nodes++
		if cs := closedScore(); cs > bestScore {
			bestScore = cs
			copy(best, cur)
		}
		if pos == len(order) {
			return
		}
		// Prune: even if every undecided worker and every open-group member
		// contributes its maximum possible average, can we beat the best?
		if closedScore()+openPotential()+suffixHat[pos] <= bestScore+1e-12 {
			return
		}
		w := order[pos]
		for _, t := range in.WorkerCand[w] {
			g := groups[t]
			if g.Len() >= g.Capacity() {
				continue
			}
			g.Join(w)
			cur[w] = t
			rec(pos + 1)
			g.Leave(w)
			cur[w] = model.Unassigned
			if nodes >= maxNodes || ctx.Err() != nil {
				return
			}
		}
		rec(pos + 1) // leave w unassigned
	}
	rec(0)
	return best, nodes, optimal
}

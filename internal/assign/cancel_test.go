package assign

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"casc/internal/metrics"
)

// countdownCtx is a context whose Err starts returning context.Canceled
// after budget calls. It makes cancellation reaction deterministic: a
// solver that polls ctx.Err() in its inner loop must return after a
// bounded number of further calls, with no wall-clock dependence.
type countdownCtx struct {
	context.Context
	budget int64
	calls  atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.budget {
		return context.Canceled
	}
	return nil
}

// TestCancellationBoundedReaction verifies the inner-loop cancellation
// audit: every solver polls the context often enough on a 150x50 instance
// to trip a 30-call budget, and once tripped returns within a handful of
// further polls, still producing a valid (partial) assignment.
func TestCancellationBoundedReaction(t *testing.T) {
	const budget, slack = 30, 5
	r := rand.New(rand.NewSource(21))
	in := randomInstance(r, 150, 50, 3)
	for _, s := range allSolvers(t) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			cc := &countdownCtx{Context: context.Background(), budget: budget}
			a, err := s.Solve(cc, in)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if err := a.Validate(in); err != nil {
				t.Fatalf("partial assignment invalid: %v", err)
			}
			calls := cc.calls.Load()
			if calls <= budget {
				t.Fatalf("only %d ctx polls; instance too small to trip the %d budget", calls, budget)
			}
			if calls > budget+slack {
				t.Errorf("%d ctx polls after cancellation (allowed %d): solver keeps working past cancel", calls-budget, slack)
			}
		})
	}
}

// TestPreCancelledSolversDoNoStageWork asserts via the instrumentation
// counters that a context cancelled before Solve prevents any stage work:
// TPG performs no subset refreshes or heap operations, GT runs no
// best-response rounds, and both return an empty valid assignment.
func TestPreCancelledSolversDoNoStageWork(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	in := randomInstance(r, 100, 30, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	reg := metrics.NewRegistry()
	tpg := NewTPG()
	gt := NewGT(GTOptions{LUB: true, Epsilon: 0.05})
	for _, s := range []Solver{Instrument(tpg, reg), Instrument(gt, reg)} {
		a, err := s.Solve(ctx, in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if got := a.NumAssigned(); got != 0 {
			t.Fatalf("%s assigned %d pairs under a pre-cancelled context", s.Name(), got)
		}
	}

	snap := reg.Snapshot()
	for _, name := range []string{MetricTPGSubsetRefreshes, MetricTPGHeapPushes, MetricTPGHeapPops} {
		if v, ok := snap.Counter(name, metrics.L("solver", "TPG")); ok && v != 0 {
			t.Errorf("%s = %d, want 0 under pre-cancelled context", name, v)
		}
	}
	if v, ok := snap.Counter(MetricGTRounds, metrics.L("solver", gt.Name())); ok && v != 0 {
		t.Errorf("%s = %d, want 0 under pre-cancelled context", MetricGTRounds, v)
	}
	// The wrapper still accounts for the (no-op) solves themselves.
	for _, name := range []string{"TPG", gt.Name()} {
		if v, _ := snap.Counter(MetricSolves, metrics.L("solver", name)); v != 1 {
			t.Errorf("%s{solver=%s} = %d, want 1", MetricSolves, name, v)
		}
	}
}

// TestCountdownStopsGTWithContextReason checks the dynamics report
// Reason "context" when cancellation hits mid-run rather than pre-Solve.
func TestCountdownStopsGTWithContextReason(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	in := randomInstance(r, 150, 50, 3)
	// Measure the polls a full TPG init costs on this instance, then set the
	// budget just past it so the trip lands inside the best-response
	// dynamics rather than the init.
	probe := &countdownCtx{Context: context.Background(), budget: 1 << 30}
	if _, err := NewTPG().Solve(probe, in); err != nil {
		t.Fatalf("probe solve: %v", err)
	}
	cc := &countdownCtx{Context: context.Background(), budget: probe.calls.Load() + 10}
	gt := NewGT(GTOptions{})
	a, err := gt.Solve(cc, in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := a.Validate(in); err != nil {
		t.Fatalf("assignment invalid: %v", err)
	}
	if cc.calls.Load() <= cc.budget {
		t.Skip("instance solved within the poll budget; nothing to observe")
	}
	if gt.Stats.Reason != "context" {
		t.Errorf("Stats.Reason = %q, want %q", gt.Stats.Reason, "context")
	}
}

package assign

import (
	"context"
	"sort"

	"casc/internal/metrics"
	"casc/internal/model"
)

// TPG is the task-priority greedy approach of §IV (Algorithm 2). Stage one
// iteratively gives each not-yet-served task the best set of B workers and
// commits the globally best such set, breaking ties toward the task with
// the most remaining candidate workers; stage two keeps committing the
// single worker-and-task pair with the largest cooperation quality increase
// ΔQ (Equation 4) until no pair improves the objective.
type TPG struct {
	// SeedLimit bounds the exhaustive best-pair seeding of the B-subset
	// search; candidate pools larger than this are truncated to the workers
	// with the highest sampled affinity first (see DESIGN.md §4.2). Zero
	// selects DefaultSeedLimit.
	SeedLimit int
	// Metrics, when non-nil, receives per-Solve counters: stage-one subset
	// refreshes and prune hits, stage-two heap operations and stale
	// re-evaluations. Set it directly or via Instrument.
	Metrics *metrics.Registry
	// Arena, when non-nil, is the scratch memory every Solve draws from,
	// making steady-state solves allocation-free at the price of
	// arena-owned results and no concurrent Solve calls (see Arena). Nil
	// uses a throwaway arena per Solve — the exact same code path, so the
	// output is identical either way.
	Arena *Arena
}

// DefaultSeedLimit is the largest candidate pool searched exhaustively for
// the best seeding pair.
const DefaultSeedLimit = 512

// NewTPG returns a TPG solver with default options.
func NewTPG() *TPG { return &TPG{} }

// Name implements Solver.
func (s *TPG) Name() string { return "TPG" }

// SetArena implements ArenaHolder.
func (s *TPG) SetArena(ar *Arena) { s.Arena = ar }

// Fork implements Forker: TPG is deterministic, so the fork just carries
// the configuration (and the shared, concurrency-safe metrics registry)
// while leaving no mutable state in common — the arena in particular is
// deliberately NOT inherited, since forks run concurrently; the pool that
// forked us attaches a per-worker arena via SetArena if it wants one.
func (s *TPG) Fork(int64) Solver { return &TPG{SeedLimit: s.SeedLimit, Metrics: s.Metrics} }

// tpgCounters accumulates per-Solve instrumentation locally so the hot
// loops pay plain integer increments, flushed to the registry once.
type tpgCounters struct {
	subsetRefreshes uint64
	subsetSkips     uint64
	heapPushes      uint64
	heapPops        uint64
	staleReevals    uint64
	warmHits        uint64
	warmMisses      uint64
}

// Solve implements Solver.
func (s *TPG) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	return s.solve(ctx, in, nil)
}

// SolveWarm implements WarmStarter: identical output to Solve, with stage
// one's iteration-0 best-B-subsets served from the cache on exact
// fingerprint hits (see Warm) and refreshed into it on misses.
func (s *TPG) SolveWarm(ctx context.Context, in *model.Instance, warm *Warm) (*model.Assignment, error) {
	return s.solve(ctx, in, warm)
}

func (s *TPG) solve(ctx context.Context, in *model.Instance, warm *Warm) (*model.Assignment, error) {
	ar := s.Arena
	if ar == nil {
		ar = NewArena()
	}
	reuses0, grows0 := ar.reuses, ar.grows
	ar.begin()
	a := ar.assignmentFor(in)
	groups := ar.groupsFor(in)
	avail := ar.boolsFor(&ar.avail, len(in.Workers), true)
	var c tpgCounters
	served := s.stageOne(ctx, in, a, groups, avail, ar, &c, warm)
	if ctx.Err() == nil {
		s.stageTwo(ctx, in, a, groups, avail, served, ar, &c)
	}
	s.recordMetrics(&c, ar.reuses-reuses0, ar.grows-grows0)
	return a, nil
}

// recordMetrics flushes the accumulated counters into Metrics.
func (s *TPG) recordMetrics(c *tpgCounters, arenaReuses, arenaGrows uint64) {
	if s.Metrics == nil {
		return
	}
	lbl := metrics.L("solver", s.Name())
	s.Metrics.Counter(MetricTPGSubsetRefreshes, "Stage-one best-B-subset recomputations.", lbl).Add(c.subsetRefreshes)
	s.Metrics.Counter(MetricTPGSubsetSkips, "Stage-one iterations that reused a cached subset.", lbl).Add(c.subsetSkips)
	s.Metrics.Counter(MetricTPGHeapPushes, "Stage-two heap pushes.", lbl).Add(c.heapPushes)
	s.Metrics.Counter(MetricTPGHeapPops, "Stage-two heap pops.", lbl).Add(c.heapPops)
	s.Metrics.Counter(MetricTPGStaleReevals, "Stage-two stale deltas re-evaluated.", lbl).Add(c.staleReevals)
	s.Metrics.Counter(MetricTPGWarmHits, "Stage-one iteration-0 subsets served from the warm cache.", lbl).Add(c.warmHits)
	s.Metrics.Counter(MetricTPGWarmMisses, "Stage-one iteration-0 subsets recomputed into the warm cache.", lbl).Add(c.warmMisses)
	recordArenaMetrics(s.Metrics, s.Name(), arenaReuses, arenaGrows)
}

// recordArenaMetrics flushes one solve's arena reuse/grow deltas.
func recordArenaMetrics(reg *metrics.Registry, solver string, reuses, grows uint64) {
	lbl := metrics.L("solver", solver)
	if reuses > 0 {
		reg.Counter(MetricArenaReuses, "Solves served by an already-used scratch arena.", lbl).Add(reuses)
	}
	if grows > 0 {
		reg.Counter(MetricArenaGrows, "Scratch-arena buffer growths during solves.", lbl).Add(grows)
	}
}

// newGroups allocates one GroupScore per task. The TPG/GT hot paths draw
// groups from the arena instead (Arena.groupsFor); this stays for the
// simpler solvers (WST, EXACT, local search) where allocation is not the
// bottleneck.
func newGroups(in *model.Instance) []*model.GroupScore {
	gs := make([]*model.GroupScore, len(in.Tasks))
	for t := range in.Tasks {
		gs[t] = in.NewGroupScore(in.Tasks[t].Capacity)
	}
	return gs
}

// stageOne runs Algorithm 2 lines 1-14 and returns the set of tasks that
// received a B-worker set.
func (s *TPG) stageOne(ctx context.Context, in *model.Instance, a *model.Assignment, groups []*model.GroupScore, avail []bool, ar *Arena, c *tpgCounters, warm *Warm) []bool {
	n := len(in.Tasks)
	served := ar.boolsFor(&ar.served, n, false)
	remaining := ar.boolsFor(&ar.remaining, n, true)
	dirty := ar.boolsFor(&ar.dirty, n, true)
	bestScore := ar.floatsFor(&ar.bestScore, n)
	bestSet := ar.setsFor(n, in.B)
	// candCount[t] tracks |TaskCand[t] ∩ avail| exactly: every worker starts
	// available and is committed (made unavailable) at most once, so
	// decrementing the counts of its candidate tasks at commit time keeps
	// the cache equal to a fresh recount. This hoists the per-candidate
	// availableCands sweep out of the tie-break loop.
	candCount := ar.intsFor(&ar.candCount, n)
	for t := 0; t < n; t++ {
		candCount[t] = len(in.TaskCand[t])
	}

	if warm != nil {
		// Iteration-0 sweep: with every worker still available, each task's
		// best B-subset is a pure function of its candidate sequence,
		// capacity, B and the quality rows — exactly the fingerprint a Warm
		// entry pins. Hits replay the cached subset (in its original greedy
		// commit order) bit for bit; misses compute as usual and refresh the
		// cache. The main loop below then starts with nothing dirty, just as
		// a cold solve does after its own first pass.
		for t := 0; t < n; t++ {
			if ctx.Err() != nil {
				return served
			}
			if wt := warm.lookup(in, t); wt != nil {
				bestSet[t], bestScore[t] = wt.apply(in, t, ar.setSlot(t))
				c.warmHits++
			} else {
				bestSet[t], bestScore[t] = s.bestBSubset(in, t, avail, ar)
				warm.store(in, t, bestSet[t], bestScore[t])
				c.subsetRefreshes++
				c.warmMisses++
			}
			dirty[t] = false
		}
	}

	for {
		if ctx.Err() != nil {
			return served
		}
		// Refresh dirty tasks and find the global best B-set (lines 3-5).
		bestTask := -1
		for t := 0; t < n; t++ {
			if !remaining[t] {
				continue
			}
			if dirty[t] {
				// The subset search dominates stage-one cost; honouring
				// cancellation here bounds the reaction to one refresh.
				if ctx.Err() != nil {
					return served
				}
				bestSet[t], bestScore[t] = s.bestBSubset(in, t, avail, ar)
				dirty[t] = false
				c.subsetRefreshes++
			} else {
				c.subsetSkips++
			}
			if bestSet[t] == nil {
				continue
			}
			if bestTask < 0 || bestScore[t] > bestScore[bestTask] {
				bestTask = t
			}
		}
		if bestTask < 0 {
			break // no remaining task can be served with B workers
		}
		// Tie-break (lines 6-9): among tasks whose best set is the same
		// worker set with the same score, prefer the task with the most
		// remaining candidate workers.
		winner := bestTask
		winnerCands := candCount[bestTask]
		for t := 0; t < n; t++ {
			if t == bestTask || !remaining[t] || bestSet[t] == nil {
				continue
			}
			if bestScore[t] == bestScore[bestTask] && sameSet(bestSet[t], bestSet[bestTask]) {
				if cc := candCount[t]; cc > winnerCands {
					winner, winnerCands = t, cc
				}
			}
		}
		// Commit (lines 10-13). Removing a worker from the pool only changes
		// another task's cached best B-set when that worker is IN the cached
		// set: the greedy construction's comparisons never involve
		// non-selected candidates, so shrinking the pool by one of them
		// leaves the greedy trace intact. Marking only those tasks dirty
		// cuts stage-one recomputation by roughly cands/B.
		for _, w := range bestSet[winner] {
			a.Assign(w, winner)
			groups[winner].Join(w)
			avail[w] = false
			for _, t := range in.WorkerCand[w] {
				candCount[t]--
				if dirty[t] || !remaining[t] {
					continue
				}
				for _, m := range bestSet[t] {
					if m == w {
						dirty[t] = true
						break
					}
				}
			}
		}
		remaining[winner] = false
		served[winner] = true
	}
	return served
}

// sameSet reports whether two B-sets contain the same workers. Each set
// holds distinct workers, so mutual size equality plus one-sided membership
// is set equality; B is 3 in all experiments, making the O(B²) scan cheaper
// than the sort copies it replaced.
func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if y == x {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// bestBSubset greedily builds the B-worker set with the highest cooperation
// quality for task t from the available candidates, into task t's arena
// B-set slot. It returns (nil, 0) when fewer than B candidates are
// available. The greedy: seed with the best available pair (exhaustive up
// to SeedLimit candidates), then add the worker with the maximum marginal
// pair-sum gain until B workers are chosen. Finding the true optimum is
// NP-hard (max-weight k-induced subgraph, §V-C), so a heuristic here
// matches both the paper's complexity budget (O(m̄) per task and iteration)
// and its spirit.
func (s *TPG) bestBSubset(in *model.Instance, t int, avail []bool, ar *Arena) ([]int, float64) {
	limit := s.SeedLimit
	if limit <= 0 {
		limit = DefaultSeedLimit
	}
	cands := ar.cands[:0]
	for _, w := range in.TaskCand[t] {
		if avail[w] {
			cands = append(cands, w)
		}
	}
	ar.cands = cands // keep grown capacity for the next call
	B := in.B
	if len(cands) < B {
		return nil, 0
	}
	if len(cands) > limit {
		cands = truncateByAffinity(in, cands, limit, ar)
	}
	// Seed: best ordered-pair sum.
	q := in.Quality
	bi, bk, bSum := -1, -1, -1.0
	for x := 0; x < len(cands); x++ {
		for y := x + 1; y < len(cands); y++ {
			sum := q.Quality(cands[x], cands[y]) + q.Quality(cands[y], cands[x])
			if sum > bSum {
				bi, bk, bSum = x, y, sum
			}
		}
	}
	chosen := ar.setSlot(t)
	chosen = append(chosen, cands[bi], cands[bk])
	// Epoch-stamped marks replace the per-call inChosen map: stamping w
	// with this call's epoch marks membership without any clearing loop.
	epoch := ar.nextEpoch(len(in.Workers))
	mark := ar.chosenMark
	mark[cands[bi]] = epoch
	mark[cands[bk]] = epoch
	pairSum := bSum
	for len(chosen) < B {
		bestW, bestGain := -1, -1.0
		for _, w := range cands {
			if mark[w] == epoch {
				continue
			}
			gain := 0.0
			for _, m := range chosen {
				gain += q.Quality(w, m) + q.Quality(m, w)
			}
			if gain > bestGain {
				bestW, bestGain = w, gain
			}
		}
		if bestW < 0 {
			return nil, 0 // cannot happen: len(cands) >= B
		}
		chosen = append(chosen, bestW)
		mark[bestW] = epoch
		pairSum += bestGain
	}
	denom := B
	if c := in.Tasks[t].Capacity; c < denom {
		denom = c
	}
	if denom < 2 {
		return nil, 0
	}
	return chosen, pairSum / float64(denom-1)
}

// truncateByAffinity keeps the limit candidates with the highest total
// affinity to a fixed sample of the pool, a cheap proxy for q̂ when the
// pool is too large for exhaustive pair seeding. The surviving workers are
// written back into cands[:limit].
func truncateByAffinity(in *model.Instance, cands []int, limit int, ar *Arena) []int {
	const sample = 32
	step := len(cands) / sample
	if step < 1 {
		step = 1
	}
	sc := ar.scoredFor(len(cands))
	for i, w := range cands {
		var sum float64
		for j := 0; j < len(cands); j += step {
			o := cands[j]
			if o != w {
				sum += in.Quality.Quality(w, o)
			}
		}
		sc.w[i] = w
		sc.s[i] = sum
	}
	sort.Sort(sc)
	out := cands[:limit]
	for i := range out {
		out[i] = sc.w[i]
	}
	return out
}

// pairEntry is a lazily evaluated stage-two heap element.
type pairEntry struct {
	delta   float64
	worker  int
	task    int
	version int // task membership version the delta was computed at
}

// pairHeap is a binary max-heap of pairEntry with container/heap's exact
// sift semantics, implemented as concrete push/pop methods because the
// stdlib driver boxes every element through interface{} — an allocation per
// operation on the hottest stage-two loop.
type pairHeap []pairEntry

func (h pairHeap) Len() int { return len(h) }

// Less orders by descending gain with a (task, worker) lexicographic
// tie-break. Exact ΔQ ties are common — a cold history model gives every
// pair the identical prior — and without the tie-break the pop order among
// equal gains would depend on incidental heap layout, i.e. on which other
// pairs happen to share the heap. The tie-break makes stage two a function
// of the component alone, so solving components separately (parallel or
// sharded decomposition) commits the same pairs as one monolithic solve.
func (h pairHeap) Less(i, j int) bool {
	if h[i].delta != h[j].delta {
		return h[i].delta > h[j].delta
	}
	if h[i].task != h[j].task {
		return h[i].task < h[j].task
	}
	return h[i].worker < h[j].worker
}
func (h pairHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// push appends e and sifts it up — heap.Push without the interface boxing.
func (h *pairHeap) push(e pairEntry) {
	*h = append(*h, e)
	s := *h
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !s.Less(j, i) {
			break
		}
		s.Swap(i, j)
		j = i
	}
}

// pop removes and returns the top entry — heap.Pop's swap-to-end then
// sift-down, without the interface boxing.
func (h *pairHeap) pop() pairEntry {
	s := *h
	n := len(s) - 1
	s.Swap(0, n)
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s.Less(j2, j) {
			j = j2
		}
		if !s.Less(j, i) {
			break
		}
		s.Swap(i, j)
		i = j
	}
	e := s[n]
	*h = s[:n]
	return e
}

// stageTwo runs Algorithm 2 lines 15-20: it repeatedly commits the
// available worker-and-task pair with the highest ΔQ (Equation 4) over the
// tasks served in stage one, until tasks are full, workers are exhausted,
// or no pair increases the objective. A lazy max-heap with per-task version
// stamps keeps each selection near O(log |pairs|).
func (s *TPG) stageTwo(ctx context.Context, in *model.Instance, a *model.Assignment, groups []*model.GroupScore, avail []bool, served []bool, ar *Arena, c *tpgCounters) {
	version := ar.intsFor(&ar.version, len(in.Tasks))
	for t := range version {
		version[t] = 0
	}
	h := &ar.pairs
	*h = (*h)[:0]
	for t := range in.Tasks {
		if !served[t] || groups[t].Len() >= groups[t].Capacity() {
			continue
		}
		for _, w := range in.TaskCand[t] {
			if avail[w] {
				h.push(pairEntry{delta: groups[t].JoinDelta(w), worker: w, task: t, version: version[t]})
				c.heapPushes++
			}
		}
	}
	for h.Len() > 0 {
		if ctx.Err() != nil {
			return
		}
		e := h.pop()
		c.heapPops++
		if !avail[e.worker] {
			continue
		}
		g := groups[e.task]
		if g.Len() >= g.Capacity() {
			continue
		}
		if e.version != version[e.task] {
			// Stale delta: re-evaluate and reinsert.
			e.delta = g.JoinDelta(e.worker)
			e.version = version[e.task]
			h.push(e)
			c.heapPushes++
			c.staleReevals++
			continue
		}
		if e.delta <= 0 {
			// This pair no longer increases Q(T), but the rest of the heap
			// is not done: entries below it ordered by a stale delta may
			// re-evaluate higher once their task's group has grown. Drop
			// just this pair and keep draining — terminating here instead
			// would also couple components through the shared heap (one
			// component's non-positive pop abandoning another's pending
			// re-evaluations), breaking the Less contract that stage two is
			// a function of the component alone.
			continue
		}
		a.Assign(e.worker, e.task)
		g.Join(e.worker)
		avail[e.worker] = false
		version[e.task]++
	}
}

package assign

import (
	"container/heap"
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"casc/internal/game"
	"casc/internal/model"
)

// This file pins the arena refactor to the allocating implementation it
// replaced: refTPGSolve / refGTSolve below are the pre-arena solver hot
// paths, kept verbatim (per-call makes, sort copies in sameSet, an inChosen
// map, container/heap with its interface boxing, per-Apply affected
// slices). The property and fuzz tests assert that the arena-backed solvers
// — both with a throwaway arena and with one persistent arena reused across
// many solves — reproduce the reference output bitwise: identical pairs,
// identical group member order, identical Float64bits of the score.

func refTPGSolve(ctx context.Context, s *TPG, in *model.Instance) *model.Assignment {
	a := model.NewAssignment(in)
	groups := newGroups(in)
	avail := make([]bool, len(in.Workers))
	for i := range avail {
		avail[i] = true
	}
	served := refStageOne(ctx, s, in, a, groups, avail)
	if ctx.Err() == nil {
		refStageTwo(ctx, in, a, groups, avail, served)
	}
	return a
}

func refStageOne(ctx context.Context, s *TPG, in *model.Instance, a *model.Assignment, groups []*model.GroupScore, avail []bool) []bool {
	n := len(in.Tasks)
	served := make([]bool, n)
	remaining := make([]bool, n)
	for t := range remaining {
		remaining[t] = true
	}
	bestSet := make([][]int, n)
	bestScore := make([]float64, n)
	dirty := make([]bool, n)
	for t := range dirty {
		dirty[t] = true
	}
	for {
		if ctx.Err() != nil {
			return served
		}
		bestTask := -1
		for t := 0; t < n; t++ {
			if !remaining[t] {
				continue
			}
			if dirty[t] {
				if ctx.Err() != nil {
					return served
				}
				bestSet[t], bestScore[t] = refBestBSubset(s, in, t, avail)
				dirty[t] = false
			}
			if bestSet[t] == nil {
				continue
			}
			if bestTask < 0 || bestScore[t] > bestScore[bestTask] {
				bestTask = t
			}
		}
		if bestTask < 0 {
			break
		}
		winner := bestTask
		winnerCands := refAvailableCands(in, bestTask, avail)
		for t := 0; t < n; t++ {
			if t == bestTask || !remaining[t] || bestSet[t] == nil {
				continue
			}
			if bestScore[t] == bestScore[bestTask] && refSameSet(bestSet[t], bestSet[bestTask]) {
				if c := refAvailableCands(in, t, avail); c > winnerCands {
					winner, winnerCands = t, c
				}
			}
		}
		for _, w := range bestSet[winner] {
			a.Assign(w, winner)
			groups[winner].Join(w)
			avail[w] = false
			for _, t := range in.WorkerCand[w] {
				if dirty[t] || !remaining[t] {
					continue
				}
				for _, m := range bestSet[t] {
					if m == w {
						dirty[t] = true
						break
					}
				}
			}
		}
		remaining[winner] = false
		served[winner] = true
	}
	return served
}

func refAvailableCands(in *model.Instance, t int, avail []bool) int {
	c := 0
	for _, w := range in.TaskCand[t] {
		if avail[w] {
			c++
		}
	}
	return c
}

func refSameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func refBestBSubset(s *TPG, in *model.Instance, t int, avail []bool) ([]int, float64) {
	limit := s.SeedLimit
	if limit <= 0 {
		limit = DefaultSeedLimit
	}
	cands := make([]int, 0, len(in.TaskCand[t]))
	for _, w := range in.TaskCand[t] {
		if avail[w] {
			cands = append(cands, w)
		}
	}
	B := in.B
	if len(cands) < B {
		return nil, 0
	}
	if len(cands) > limit {
		cands = refTruncateByAffinity(in, cands, limit)
	}
	q := in.Quality
	bi, bk, bSum := -1, -1, -1.0
	for x := 0; x < len(cands); x++ {
		for y := x + 1; y < len(cands); y++ {
			sum := q.Quality(cands[x], cands[y]) + q.Quality(cands[y], cands[x])
			if sum > bSum {
				bi, bk, bSum = x, y, sum
			}
		}
	}
	chosen := []int{cands[bi], cands[bk]}
	inChosen := map[int]bool{cands[bi]: true, cands[bk]: true}
	pairSum := bSum
	for len(chosen) < B {
		bestW, bestGain := -1, -1.0
		for _, w := range cands {
			if inChosen[w] {
				continue
			}
			gain := 0.0
			for _, m := range chosen {
				gain += q.Quality(w, m) + q.Quality(m, w)
			}
			if gain > bestGain {
				bestW, bestGain = w, gain
			}
		}
		if bestW < 0 {
			return nil, 0
		}
		chosen = append(chosen, bestW)
		inChosen[bestW] = true
		pairSum += bestGain
	}
	denom := B
	if cap := in.Tasks[t].Capacity; cap < denom {
		denom = cap
	}
	if denom < 2 {
		return nil, 0
	}
	return chosen, pairSum / float64(denom-1)
}

func refTruncateByAffinity(in *model.Instance, cands []int, limit int) []int {
	const sample = 32
	step := len(cands) / sample
	if step < 1 {
		step = 1
	}
	type scored struct {
		w int
		s float64
	}
	scoredCands := make([]scored, len(cands))
	for i, w := range cands {
		var sum float64
		for j := 0; j < len(cands); j += step {
			o := cands[j]
			if o != w {
				sum += in.Quality.Quality(w, o)
			}
		}
		scoredCands[i] = scored{w: w, s: sum}
	}
	sort.Slice(scoredCands, func(i, j int) bool { return scoredCands[i].s > scoredCands[j].s })
	out := make([]int, limit)
	for i := range out {
		out[i] = scoredCands[i].w
	}
	return out
}

type refPairHeap []pairEntry

func (h refPairHeap) Len() int { return len(h) }
func (h refPairHeap) Less(i, j int) bool {
	if h[i].delta != h[j].delta {
		return h[i].delta > h[j].delta
	}
	if h[i].task != h[j].task {
		return h[i].task < h[j].task
	}
	return h[i].worker < h[j].worker
}
func (h refPairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refPairHeap) Push(x interface{}) { *h = append(*h, x.(pairEntry)) }
func (h *refPairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func refStageTwo(ctx context.Context, in *model.Instance, a *model.Assignment, groups []*model.GroupScore, avail []bool, served []bool) {
	version := make([]int, len(in.Tasks))
	h := &refPairHeap{}
	for t := range in.Tasks {
		if !served[t] || groups[t].Len() >= groups[t].Capacity() {
			continue
		}
		for _, w := range in.TaskCand[t] {
			if avail[w] {
				heap.Push(h, pairEntry{delta: groups[t].JoinDelta(w), worker: w, task: t, version: version[t]})
			}
		}
	}
	for h.Len() > 0 {
		if ctx.Err() != nil {
			return
		}
		e := heap.Pop(h).(pairEntry)
		if !avail[e.worker] {
			continue
		}
		g := groups[e.task]
		if g.Len() >= g.Capacity() {
			continue
		}
		if e.version != version[e.task] {
			e.delta = g.JoinDelta(e.worker)
			e.version = version[e.task]
			heap.Push(h, e)
			continue
		}
		if e.delta <= 0 {
			continue
		}
		a.Assign(e.worker, e.task)
		g.Join(e.worker)
		avail[e.worker] = false
		version[e.task]++
	}
}

// refCASCGame is the pre-arena strategic game with per-Apply affected
// slices.
type refCASCGame struct {
	in     *model.Instance
	groups []*model.GroupScore
	cur    []int
}

func newRefCASCGame(in *model.Instance, init *model.Assignment) *refCASCGame {
	g := &refCASCGame{
		in:     in,
		groups: newGroups(in),
		cur:    make([]int, len(in.Workers)),
	}
	for w := range g.cur {
		g.cur[w] = model.Unassigned
	}
	for t, ws := range init.TaskWorkers {
		for _, w := range ws {
			g.groups[t].Join(w)
			g.cur[w] = t
		}
	}
	return g
}

func (g *refCASCGame) NumPlayers() int { return len(g.cur) }

func (g *refCASCGame) moveGain(w, t int) (gain float64, evict int) {
	leaveLoss := 0.0
	if ct := g.cur[w]; ct != model.Unassigned {
		leaveLoss = g.groups[ct].LeaveDelta(w)
	}
	grp := g.groups[t]
	if grp.Len() < grp.Capacity() {
		return grp.JoinDelta(w) - leaveLoss, -1
	}
	bestDelta, bestOut := 0.0, -1
	for _, out := range grp.Members() {
		if d := grp.SwapDelta(out, w); bestOut < 0 || d > bestDelta {
			bestDelta, bestOut = d, out
		}
	}
	return bestDelta - leaveLoss, bestOut
}

func (g *refCASCGame) BestResponse(w int) (int, float64, bool) {
	cand := g.in.WorkerCand[w]
	bestS, bestGain := stratNone, 0.0
	if ct := g.cur[w]; ct != model.Unassigned {
		if gain := -g.groups[ct].LeaveDelta(w); gain > bestGain {
			bestS, bestGain = len(cand), gain
		}
	}
	for si, t := range cand {
		if t == g.cur[w] {
			continue
		}
		gain, _ := g.moveGain(w, t)
		if gain > bestGain {
			bestS, bestGain = si, gain
		}
	}
	if bestS == stratNone {
		return 0, 0, false
	}
	return bestS, bestGain, true
}

func (g *refCASCGame) Apply(w, strategy int) []int {
	cand := g.in.WorkerCand[w]
	var affected []int
	leave := func() {
		if ct := g.cur[w]; ct != model.Unassigned {
			g.groups[ct].Leave(w)
			g.cur[w] = model.Unassigned
			affected = append(affected, g.in.TaskCand[ct]...)
		}
	}
	if strategy == len(cand) {
		leave()
		return affected
	}
	t := cand[strategy]
	grp := g.groups[t]
	if grp.Len() >= grp.Capacity() {
		_, out := g.moveGain(w, t)
		if out >= 0 {
			grp.Leave(out)
			g.cur[out] = model.Unassigned
			affected = append(affected, out)
		}
	}
	leave()
	grp.Join(w)
	g.cur[w] = t
	affected = append(affected, g.in.TaskCand[t]...)
	return affected
}

func (g *refCASCGame) Potential() float64 {
	var total float64
	for _, grp := range g.groups {
		total += grp.Q()
	}
	return total
}

func refGTSolve(ctx context.Context, opts GTOptions, in *model.Instance) *model.Assignment {
	var a *model.Assignment
	if opts.RandomInit {
		a = randomInit(in, opts.Seed)
	} else {
		a = refTPGSolve(ctx, NewTPG(), in)
	}
	if ctx.Err() != nil {
		return a
	}
	g := newRefCASCGame(in, a)
	game.Run(g, game.Options{
		Epsilon:      opts.Epsilon,
		Lazy:         opts.LUB,
		MaxRounds:    opts.MaxRounds,
		Context:      ctx,
		GainPriority: opts.GainPriority,
	})
	out := model.NewAssignment(in)
	for w, t := range g.cur {
		if t != model.Unassigned {
			out.Assign(w, t)
		}
	}
	return out
}

// requireBitwiseEqual asserts the two assignments are indistinguishable:
// same worker→task map, same per-task member order (which feeds the float
// summation order), and bit-identical total score.
func requireBitwiseEqual(t *testing.T, in *model.Instance, got, want *model.Assignment, label string) {
	t.Helper()
	for w := range in.Workers {
		if got.WorkerTask[w] != want.WorkerTask[w] {
			t.Fatalf("%s: worker %d: got task %d, reference %d", label, w, got.WorkerTask[w], want.WorkerTask[w])
		}
	}
	for tt := range in.Tasks {
		g, r := got.TaskWorkers[tt], want.TaskWorkers[tt]
		if len(g) != len(r) {
			t.Fatalf("%s: task %d: got %d members, reference %d", label, tt, len(g), len(r))
		}
		for i := range g {
			if g[i] != r[i] {
				t.Fatalf("%s: task %d member %d: got w%d, reference w%d (member order must match bitwise)", label, tt, i, g[i], r[i])
			}
		}
	}
	gs, rs := got.TotalScore(in), want.TotalScore(in)
	if math.Float64bits(gs) != math.Float64bits(rs) {
		t.Fatalf("%s: score %v (bits %x) != reference %v (bits %x)", label, gs, math.Float64bits(gs), rs, math.Float64bits(rs))
	}
}

// TestArenaTPGEquivalence checks TPG against the pre-arena reference on
// random instances, with one persistent arena reused across every trial —
// so cross-solve contamination (stale marks, dirty buffers, slot reuse)
// shows up as a bitwise diff.
func TestArenaTPGEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ctx := context.Background()
	s := NewTPG()
	s.SetArena(NewArena()) // persistent across trials, including shrinking sizes
	for trial := 0; trial < 30; trial++ {
		nW := 10 + r.Intn(120)
		nT := 2 + r.Intn(30)
		b := 2 + r.Intn(2)
		in := randomInstance(r, nW, nT, b)
		got, err := s.Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		requireBitwiseEqual(t, in, got, refTPGSolve(ctx, NewTPG(), in), "TPG")
	}
}

// TestArenaTPGSeedLimitEquivalence forces the truncateByAffinity path.
func TestArenaTPGSeedLimitEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ctx := context.Background()
	s := &TPG{SeedLimit: 8, Arena: NewArena()}
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(r, 80+r.Intn(80), 2+r.Intn(10), 3)
		got, err := s.Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		requireBitwiseEqual(t, in, got, refTPGSolve(ctx, &TPG{SeedLimit: 8}, in), "TPG/SeedLimit=8")
	}
}

// TestArenaGTEquivalence checks every GT variant against the pre-arena
// reference, again with persistent arenas.
func TestArenaGTEquivalence(t *testing.T) {
	ctx := context.Background()
	variants := []GTOptions{
		{},
		{LUB: true},
		{Epsilon: 0.01},
		{LUB: true, Epsilon: 0.01},
		{RandomInit: true, Seed: 5},
		{GainPriority: true},
	}
	for vi, opts := range variants {
		r := rand.New(rand.NewSource(int64(100 + vi)))
		s := NewGT(opts)
		s.SetArena(NewArena())
		for trial := 0; trial < 12; trial++ {
			in := randomInstance(r, 10+r.Intn(90), 2+r.Intn(20), 2+r.Intn(2))
			got, err := s.Solve(ctx, in)
			if err != nil {
				t.Fatal(err)
			}
			requireBitwiseEqual(t, in, got, refGTSolve(ctx, opts, in), s.Name())
		}
	}
}

// TestArenaWarmEquivalence reuses one arena AND one warm cache across
// rounds over a slowly-mutating instance sequence, against cold reference
// solves.
func TestArenaWarmEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	ctx := context.Background()
	s := NewTPG()
	s.SetArena(NewArena())
	warm := NewWarm()
	in := randomInstance(r, 80, 16, 3)
	for round := 0; round < 8; round++ {
		got, err := s.SolveWarm(ctx, in, warm)
		if err != nil {
			t.Fatal(err)
		}
		requireBitwiseEqual(t, in, got, refTPGSolve(ctx, NewTPG(), in), "TPG+warm")
		// Mutate a corner of the instance: move one worker, which flips a
		// few fingerprints and leaves the rest warm.
		w := r.Intn(len(in.Workers))
		in.Workers[w].Loc = in.Workers[w].Loc.Add(0.01*(r.Float64()-0.5), 0.01*(r.Float64()-0.5))
		in.BuildCandidates(model.IndexRTree)
	}
}

// FuzzArenaEquivalence drives random instance shapes through arena-backed
// TPG and GT (persistent arena per fuzz process) and requires bitwise
// equality with the pre-arena reference implementations.
func FuzzArenaEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(10), uint8(2), false)
	f.Add(int64(2), uint8(90), uint8(25), uint8(3), true)
	f.Add(int64(3), uint8(5), uint8(2), uint8(2), false)
	f.Add(int64(4), uint8(120), uint8(3), uint8(3), true)
	tpg := NewTPG()
	tpg.SetArena(NewArena())
	gt := NewGT(GTOptions{LUB: true})
	gt.SetArena(NewArena())
	f.Fuzz(func(t *testing.T, seed int64, nw, nt, b uint8, lub bool) {
		nW := 4 + int(nw)
		nT := 1 + int(nt)%40
		B := 2 + int(b)%2
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, nW, nT, B)
		ctx := context.Background()

		got, err := tpg.Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		ref := refTPGSolve(ctx, NewTPG(), in)
		requireBitwiseEqualFuzz(t, in, got, ref, "TPG")

		opts := GTOptions{LUB: lub}
		gt.opts = opts
		gotGT, err := gt.Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		requireBitwiseEqualFuzz(t, in, gotGT, refGTSolve(ctx, opts, in), "GT")
	})
}

func requireBitwiseEqualFuzz(t *testing.T, in *model.Instance, got, want *model.Assignment, label string) {
	t.Helper()
	for w := range in.Workers {
		if got.WorkerTask[w] != want.WorkerTask[w] {
			t.Fatalf("%s: worker %d: got task %d, reference %d", label, w, got.WorkerTask[w], want.WorkerTask[w])
		}
	}
	for tt := range in.Tasks {
		g, r := got.TaskWorkers[tt], want.TaskWorkers[tt]
		if len(g) != len(r) {
			t.Fatalf("%s: task %d: got %d members, reference %d", label, tt, len(g), len(r))
		}
		for i := range g {
			if g[i] != r[i] {
				t.Fatalf("%s: task %d member %d: got w%d, reference w%d", label, tt, i, g[i], r[i])
			}
		}
	}
	if g, r := got.TotalScore(in), want.TotalScore(in); math.Float64bits(g) != math.Float64bits(r) {
		t.Fatalf("%s: score %v != reference %v", label, g, r)
	}
}

package assign

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"casc/internal/model"
)

func TestBoundsLemmaV2V3(t *testing.T) {
	// For every worker in every feasible group drawn from its co-candidate
	// set, the average quality must sit inside [q̌_{i,B}, q̂_{i,B}].
	r := rand.New(rand.NewSource(21))
	in := randomInstance(r, 40, 12, 3)
	bounds := Bounds(in)
	co := coCandidateSets(in)
	for w := 0; w < len(in.Workers); w++ {
		if !bounds[w].Feasible {
			if len(co[w]) >= in.B-1 {
				t.Fatalf("worker %d has %d peers but marked infeasible", w, len(co[w]))
			}
			continue
		}
		if bounds[w].QCheck > bounds[w].QHat+1e-12 {
			t.Fatalf("worker %d: q̌ %v > q̂ %v", w, bounds[w].QCheck, bounds[w].QHat)
		}
		// Sample random groups of B..B+2 peers containing w.
		for trial := 0; trial < 50; trial++ {
			size := in.B + r.Intn(3)
			if size-1 > len(co[w]) {
				continue
			}
			peers := append([]int(nil), co[w]...)
			r.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
			group := append([]int{w}, peers[:size-1]...)
			avg := in.WorkerAvgQuality(w, group, size)
			if avg > bounds[w].QHat+1e-9 {
				t.Fatalf("worker %d: avg %v exceeds q̂ %v (Lemma V.2 violated)", w, avg, bounds[w].QHat)
			}
			if avg < bounds[w].QCheck-1e-9 {
				t.Fatalf("worker %d: avg %v below q̌ %v (Lemma V.3 violated)", w, avg, bounds[w].QCheck)
			}
		}
	}
}

func TestBoundsDegenerateB(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	in := randomInstance(r, 10, 4, 2)
	in.B = 1
	for _, b := range Bounds(in) {
		if b.Feasible || b.QHat != 0 {
			t.Fatal("B<2 should produce zero bounds")
		}
	}
}

func TestAnalyzeEquilibrium(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	in := randomInstance(r, 60, 20, 3)
	gt := NewGT(GTOptions{})
	a, err := gt.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	nInit := InitTasksOf(context.Background(), in)
	eq := AnalyzeEquilibrium(in, a, nInit)
	if eq.Upper <= 0 {
		t.Fatal("UPPER should be positive on a connected instance")
	}
	if eq.Achieved > eq.Upper+1e-9 {
		t.Fatalf("achieved %v above UPPER %v", eq.Achieved, eq.Upper)
	}
	// Theorem V.2: the worst equilibrium still earns at least N_init·B·q̌,
	// so the one GT found must too.
	if eq.Achieved < eq.PoALowerBound-1e-9 {
		t.Fatalf("achieved %v below the PoA lower bound %v", eq.Achieved, eq.PoALowerBound)
	}
	if eq.AchievedRatio <= 0 || eq.AchievedRatio > 1 {
		t.Fatalf("achieved ratio %v outside (0,1]", eq.AchievedRatio)
	}
}

func TestAnalyzeEquilibriumEmptyInstance(t *testing.T) {
	in := &model.Instance{Quality: fakeQ{}, B: 3}
	in.BuildCandidates(model.IndexLinear)
	a := model.NewAssignment(in)
	eq := AnalyzeEquilibrium(in, a, 0)
	if eq.Upper != 0 || eq.Achieved != 0 || eq.PoALowerBound != 0 || eq.AchievedRatio != 0 {
		t.Fatalf("nonzero analysis on empty instance: %+v", eq)
	}
}

type fakeQ struct{}

func (fakeQ) Quality(i, k int) float64 { return 0 }
func (fakeQ) NumWorkers() int          { return 0 }

func TestWSTBetweenRandAndGT(t *testing.T) {
	// WST is self-interested but uncoordinated: across instances it should
	// land between RAND and GT in aggregate.
	r := rand.New(rand.NewSource(24))
	ctx := context.Background()
	var wst, gt, rnd float64
	for trial := 0; trial < 6; trial++ {
		in := randomInstance(r, 80, 25, 3)
		score := func(s Solver) float64 {
			a, err := s.Solve(ctx, in)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Validate(in); err != nil {
				t.Fatalf("WST-family solver produced invalid assignment: %v", err)
			}
			return a.TotalScore(in)
		}
		wst += score(NewWST())
		gt += score(NewGT(GTOptions{}))
		rnd += score(NewRandom(int64(trial)))
	}
	if wst <= rnd {
		t.Errorf("WST aggregate %v not above RAND %v", wst, rnd)
	}
	if wst >= gt {
		t.Errorf("WST aggregate %v not below GT %v", wst, gt)
	}
}

func TestWSTByName(t *testing.T) {
	s, err := ByName("WST", 0)
	if err != nil || s.Name() != "WST" {
		t.Fatalf("ByName(WST) = %v, %v", s, err)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	ctx := context.Background()
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(r, 8, 3, 2)
		brute, err := NewBruteForce().Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		ex := NewExact()
		opt, err := ex.Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Optimal {
			t.Fatalf("trial %d: exact did not prove optimality on a tiny instance", trial)
		}
		if err := opt.Validate(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bs, es := brute.TotalScore(in), opt.TotalScore(in)
		if math.Abs(bs-es) > 1e-9 {
			t.Fatalf("trial %d: exact %v != brute force %v", trial, es, bs)
		}
	}
}

func TestExactScalesBeyondBruteForce(t *testing.T) {
	// 18 workers with ~4 candidates each: ~5^18 brute-force states, far out
	// of reach, but branch and bound closes it.
	r := rand.New(rand.NewSource(26))
	in := randomInstance(r, 18, 5, 2)
	ex := NewExact()
	a, err := ex.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Optimal {
		t.Skip("bound too weak for this draw; acceptable, B&B is best-effort beyond tiny sizes")
	}
	// GT can at best match the optimum.
	gt, _ := NewGT(GTOptions{}).Solve(context.Background(), in)
	if gt.TotalScore(in) > a.TotalScore(in)+1e-9 {
		t.Fatalf("GT %v beats proven optimum %v", gt.TotalScore(in), a.TotalScore(in))
	}
}

func TestExactNodeCap(t *testing.T) {
	r := rand.New(rand.NewSource(27))
	in := randomInstance(r, 40, 15, 3)
	ex := &Exact{MaxNodes: 100}
	a, err := ex.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Optimal {
		t.Error("node cap hit but Optimal still true")
	}
	if err := a.Validate(in); err != nil {
		t.Fatalf("capped exact returned invalid assignment: %v", err)
	}
}

func TestExactContextCancel(t *testing.T) {
	r := rand.New(rand.NewSource(28))
	in := randomInstance(r, 30, 10, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := NewExact()
	a, err := ex.Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Optimal {
		t.Error("cancelled run claimed optimality")
	}
	if a == nil {
		t.Fatal("nil assignment")
	}
}

func TestUpperTightIsValidAndTighter(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	ctx := context.Background()
	tighterSomewhere := false
	for trial := 0; trial < 8; trial++ {
		// Capacity-scarce shape: Σ a_j well below the worker count, so the
		// task-side term (the one UpperTight improves) is the binding one.
		in := randomInstance(r, 80, 8, 3)
		loose, tight := Upper(in), UpperTight(in)
		if tight > loose+1e-9 {
			t.Fatalf("trial %d: UpperTight %v above Upper %v", trial, tight, loose)
		}
		if tight < loose-1e-9 {
			tighterSomewhere = true
		}
		// Still a valid bound on every solver.
		for _, name := range []string{"TPG", "GT"} {
			s, _ := ByName(name, 1)
			a, err := s.Solve(ctx, in)
			if err != nil {
				t.Fatal(err)
			}
			if sc := a.TotalScore(in); sc > tight+1e-9 {
				t.Fatalf("trial %d: %s score %v above UpperTight %v", trial, name, sc, tight)
			}
		}
		// And on the true optimum of a tiny instance.
		if trial == 0 {
			small := randomInstance(r, 7, 3, 2)
			opt, err := NewBruteForce().Solve(ctx, small)
			if err != nil {
				t.Fatal(err)
			}
			if opt.TotalScore(small) > UpperTight(small)+1e-9 {
				t.Fatal("OPT above UpperTight")
			}
		}
	}
	if !tighterSomewhere {
		t.Error("UpperTight never improved on Upper across 8 instances")
	}
}

package shard

import (
	"testing"

	"casc/internal/geo"
)

func TestNewPolicyNames(t *testing.T) {
	for _, name := range []string{"region", "REGION", "", "round-robin", "rr", "least-loaded", "least"} {
		if _, err := NewPolicy(name); err != nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
		}
	}
	if _, err := NewPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestRegionPolicy(t *testing.T) {
	p, _ := NewPolicy(PolicyRegion)
	if got := p.Route(RouteInfo{Owner: 3, Loads: []int{9, 9, 9, 0}}); got != 3 {
		t.Errorf("region routed to %d, want owner 3", got)
	}
}

func TestRoundRobinPolicy(t *testing.T) {
	p, _ := NewPolicy(PolicyRoundRobin)
	info := RouteInfo{Loc: geo.Pt(0.5, 0.5), Loads: []int{0, 0, 0}}
	for i := 0; i < 7; i++ {
		if got, want := p.Route(info), i%3; got != want {
			t.Fatalf("route %d = %d, want %d", i, got, want)
		}
	}
}

func TestLeastLoadedPolicy(t *testing.T) {
	p, _ := NewPolicy(PolicyLeastLoad)
	if got := p.Route(RouteInfo{Loads: []int{5, 2, 2, 9}}); got != 1 {
		t.Errorf("least-loaded routed to %d, want 1 (lowest index tie)", got)
	}
}

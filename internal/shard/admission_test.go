package shard

import (
	"errors"
	"testing"
	"time"

	"casc/internal/metrics"
)

// withFakeClock substitutes the package clock for the test's lifetime and
// returns an advance function.
func withFakeClock(t *testing.T) func(time.Duration) {
	t.Helper()
	cur := time.Unix(1_000_000, 0)
	old := now
	now = func() time.Time { return cur }
	t.Cleanup(func() { now = old })
	return func(d time.Duration) { cur = cur.Add(d) }
}

func TestTokenBucketValidation(t *testing.T) {
	for _, rate := range []float64{0, -1} {
		if _, err := NewTokenBucket(rate, 1, nil); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
}

func TestTokenBucketBurstThenShed(t *testing.T) {
	advance := withFakeClock(t)
	reg := metrics.NewRegistry()
	tb, err := NewTokenBucket(2, 3, reg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := tb.Admit(); err != nil {
			t.Fatalf("admit %d within burst: %v", i, err)
		}
	}
	err = tb.Admit()
	var shed *ErrAdmission
	if !errors.As(err, &shed) {
		t.Fatalf("drained bucket admitted: %v", err)
	}
	// At 2 tokens/s an empty bucket has a whole token after 500ms.
	if shed.RetryAfter <= 0 || shed.RetryAfter > 500*time.Millisecond {
		t.Errorf("RetryAfter = %v, want (0, 500ms]", shed.RetryAfter)
	}
	advance(500 * time.Millisecond)
	if err := tb.Admit(); err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	// Refill is capped at the burst: a long idle stretch must not bank
	// more than 3 tokens.
	advance(time.Hour)
	for i := 0; i < 3; i++ {
		if err := tb.Admit(); err != nil {
			t.Fatalf("admit %d after idle: %v", i, err)
		}
	}
	if err := tb.Admit(); err == nil {
		t.Error("burst cap not enforced after idle refill")
	}
}

package shard

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"casc/internal/geo"
	"casc/internal/model"
	"casc/internal/resilience"
)

// newTestCluster builds a K-shard cluster with test-friendly defaults.
func newTestCluster(t *testing.T, k int, opts ...func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{K: k, B: 3, Alpha: 0.5, Omega: 0.5}
	for _, o := range opts {
		o(&cfg)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// roundTrace is one round's observable outcome, compared across shard
// counts: the dispatched pairs and the bitwise score.
type roundTrace struct {
	Pairs     []model.Pair
	ScoreBits uint64
	UpperBits uint64
	Disp      int
}

// driveCluster runs the same seeded multi-round workload against a
// K-shard cluster and returns the per-round traces plus a sample of final
// quality estimates. Ratings use only 0.5 and 1.0 — exactly representable,
// so per-pair history sums are independent of which shard accumulated them.
func driveCluster(t *testing.T, k int, seed int64, solver string) ([]roundTrace, []uint64) {
	t.Helper()
	c := newTestCluster(t, k)
	rng := rand.New(rand.NewSource(seed))
	const m = 60
	for i := 0; i < m; i++ {
		if _, err := c.RegisterWorker(geo.Pt(rng.Float64(), rng.Float64()), 0.05, 0.15); err != nil {
			t.Fatal(err)
		}
	}
	var traces []roundTrace
	for round := 0; round < 3; round++ {
		for j := 0; j < 15; j++ {
			_, err := c.PostTask(geo.Pt(rng.Float64(), rng.Float64()), 3+rng.Intn(3), c.clock()+2.5)
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := c.RunBatch(context.Background(), solver)
		if err != nil {
			t.Fatalf("K=%d round %d: %v", k, round, err)
		}
		traces = append(traces, roundTrace{
			Pairs:     res.Pairs,
			ScoreBits: math.Float64bits(res.Score),
			UpperBits: math.Float64bits(res.Upper),
			Disp:      res.DispatchedTasks,
		})
		// Rate every dispatched task in ascending task order so the rating
		// sequence is identical for every K. The rating value depends only
		// on the task ID.
		rated := map[int]bool{}
		for _, p := range res.Pairs {
			if rated[p.Task] {
				continue
			}
			rated[p.Task] = true
			score := 0.5
			if p.Task%2 == 1 {
				score = 1.0
			}
			if err := c.RateTask(p.Task, score); err != nil {
				t.Fatalf("K=%d rate task %d: %v", k, p.Task, err)
			}
		}
	}
	var qs []uint64
	n := int(c.nextWorkerID.Load())
	for i := 0; i < 10; i++ {
		a, b := (i*7)%n, (i*13+1)%n
		if a == b {
			continue
		}
		q, err := c.Quality(a, b)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, math.Float64bits(q))
	}
	return traces, qs
}

// TestShardCountInvariance is the subsystem's core guarantee: for the
// decomposition-invariant solver family, an N-shard cluster commits
// bitwise-identical rounds to a 1-shard (monolithic) cluster on the same
// seed — same pairs, same scores, same upper bounds, same resulting
// quality estimates. The workload rates tasks between rounds, so later
// rounds exercise the history-backed quality model whose exact ties are
// the hardest part of the guarantee.
func TestShardCountInvariance(t *testing.T) {
	for _, solver := range []string{"GT", "TPG", "GT+LUB"} {
		for _, seed := range []int64{1, 42, 2019} {
			base, baseQ := driveCluster(t, 1, seed, solver)
			dispatched := 0
			for _, tr := range base {
				dispatched += tr.Disp
			}
			if dispatched == 0 {
				t.Fatalf("%s seed %d: workload dispatched nothing; the test is vacuous", solver, seed)
			}
			for _, k := range []int{2, 3, 4, 8} {
				got, gotQ := driveCluster(t, k, seed, solver)
				if !reflect.DeepEqual(base, got) {
					t.Errorf("%s seed %d: K=%d rounds diverge from K=1\n K=1: %+v\n K=%d: %+v",
						solver, seed, k, base, k, got)
				}
				if !reflect.DeepEqual(baseQ, gotQ) {
					t.Errorf("%s seed %d: K=%d final qualities diverge from K=1", solver, seed, k)
				}
			}
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{K: 1, B: 1}); err == nil {
		t.Error("B=1 accepted")
	}
	if _, err := NewCluster(Config{K: 0, B: 3}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewCluster(Config{K: 2, B: 3, Chaos: &resilience.ChaosConfig{Seed: 1}}); err == nil {
		t.Error("chaos without a solve budget accepted")
	}
	c := newTestCluster(t, 2)
	if _, err := c.RegisterWorker(geo.Pt(0.5, 0.5), -1, 0.1); err == nil {
		t.Error("negative speed accepted")
	}
	if _, err := c.PostTask(geo.Pt(0.5, 0.5), 2, 5); err == nil {
		t.Error("capacity below B accepted")
	}
	if _, err := c.PostTask(geo.Pt(0.5, 0.5), 3, 0); err == nil {
		t.Error("past deadline accepted")
	}
	if err := c.RateTask(0, 0.5); err == nil {
		t.Error("rating an undispatched task accepted")
	}
	if err := c.RateTask(0, 1.5); err == nil {
		t.Error("rating outside [0,1] accepted")
	}
	if _, err := c.RunBatch(context.Background(), "NOPE"); err == nil {
		t.Error("unknown solver accepted")
	}
}

// TestRegionRoutingAndHandoff pins the ghost/handoff mechanics: a task on
// the boundary draws workers homed on both sides into one component, the
// component is pinned to the shard owning its lowest cell, and the rating
// re-homes every member at the task location — counting a handoff for each
// worker that crossed.
func TestRegionRoutingAndHandoff(t *testing.T) {
	c := newTestCluster(t, 2)
	// Shard 0 owns the lower half of the unit square, shard 1 the upper.
	low, _ := c.RegisterWorker(geo.Pt(0.5, 0.45), 0.05, 0.2)
	high1, _ := c.RegisterWorker(geo.Pt(0.5, 0.55), 0.05, 0.2)
	high2, _ := c.RegisterWorker(geo.Pt(0.52, 0.56), 0.05, 0.2)
	if got := c.shards[0].load(); got != 1 {
		t.Fatalf("shard 0 load = %d, want 1 (worker %d)", got, low)
	}
	if got := c.shards[1].load(); got != 2 {
		t.Fatalf("shard 1 load = %d, want 2 (workers %d,%d)", got, high1, high2)
	}
	taskID, err := c.PostTask(geo.Pt(0.5, 0.52), 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunBatch(context.Background(), "GT")
	if err != nil {
		t.Fatal(err)
	}
	if res.DispatchedTasks != 1 || len(res.Pairs) != 3 {
		t.Fatalf("dispatched %d tasks / %d pairs, want 1/3", res.DispatchedTasks, len(res.Pairs))
	}
	if res.BorderComponents != 1 {
		t.Errorf("BorderComponents = %d, want 1", res.BorderComponents)
	}
	if res.GhostWorkers == 0 {
		t.Errorf("GhostWorkers = 0, want > 0 (component spans both shards)")
	}
	// The task at y=0.52 belongs to shard 1; rating it re-homes all three
	// workers there, handing off the shard-0 worker.
	if err := c.RateTask(taskID, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := c.RateTask(taskID, 1.0); err == nil {
		t.Error("double rating accepted")
	}
	if got := c.shards[1].load(); got != 3 {
		t.Errorf("shard 1 load after rating = %d, want 3", got)
	}
	if got := c.shards[1].sm.handoffs.Value(); got != 1 {
		t.Errorf("handoffs = %d, want 1", got)
	}
	q, err := c.Quality(low, high1)
	if err != nil {
		t.Fatal(err)
	}
	// α·ω + (1−α)·1.0 with α=ω=0.5.
	if want := 0.75; q != want {
		t.Errorf("Quality(%d,%d) = %v, want %v", low, high1, q, want)
	}
	st := c.Status()
	if st.AvailableWorkers != 3 || st.BusyWorkers != 0 || st.DispatchedTasks != 1 {
		t.Errorf("status = %+v", st)
	}
	if len(st.PerShard) != 2 {
		t.Fatalf("PerShard has %d entries, want 2", len(st.PerShard))
	}
}

func TestClusterExpiry(t *testing.T) {
	c := newTestCluster(t, 4)
	if _, err := c.PostTask(geo.Pt(0.1, 0.1), 3, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunBatch(context.Background(), "GT"); err != nil {
		t.Fatal(err)
	}
	// Clock advanced to 1 by the first round; the task expires next round.
	res, err := c.RunBatch(context.Background(), "GT")
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpiredTasks != 1 {
		t.Errorf("ExpiredTasks = %d, want 1", res.ExpiredTasks)
	}
}

// TestClusterConcurrentHammer drives registrations, posts, reads and batch
// rounds from many goroutines at once; run under -race it is the shard
// tier's synchronization audit.
func TestClusterConcurrentHammer(t *testing.T) {
	c := newTestCluster(t, 4)
	const (
		writers  = 8
		perG     = 50
		batchers = 2
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				if rng.Intn(3) == 0 {
					_, _ = c.PostTask(geo.Pt(rng.Float64(), rng.Float64()), 3, c.clock()+5)
				} else {
					_, _ = c.RegisterWorker(geo.Pt(rng.Float64(), rng.Float64()), 0.05, 0.1)
				}
				_ = c.Status()
				_, _ = c.Quality(0, 1+i%7)
			}
		}(g)
	}
	done := make(chan struct{})
	var batchWG sync.WaitGroup
	for b := 0; b < batchers; b++ {
		batchWG.Add(1)
		go func() {
			defer batchWG.Done()
			for {
				select {
				case <-done:
					return
				default:
					if _, err := c.RunBatch(context.Background(), "GT"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	batchWG.Wait()
	st := c.Status()
	total := st.AvailableWorkers + st.BusyWorkers
	if want := int(c.nextWorkerID.Load()); total != want {
		t.Errorf("workers accounted = %d, want %d", total, want)
	}
}

package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"casc/internal/assign"
	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/incremental"
	"casc/internal/metrics"
	"casc/internal/model"
	"casc/internal/partition"
	"casc/internal/resilience"
)

// Cluster-level metric names.
const (
	MetricClusterShards       = "casc_cluster_shards"
	MetricClusterBatches      = "casc_cluster_batches_total"
	MetricClusterBatchSeconds = "casc_cluster_batch_seconds"
	MetricClusterDispatched   = "casc_cluster_dispatched_tasks_total"
	MetricClusterPairs        = "casc_cluster_dispatched_pairs_total"
	MetricClusterExpired      = "casc_cluster_expired_tasks_total"
	MetricClusterScore        = "casc_cluster_total_score"
)

// ErrBudgetExhausted reports a RunBatch whose Config.SolveBudget ran out
// before every shard delivered: either the request's deadline passed while
// queued for the round lock, or some shard's ladder had no rung finish in
// time. Nothing is dispatched — a partial round would break the N-vs-1
// shard equivalence — and the HTTP layer maps the error to 503 with a
// Retry-After header.
var ErrBudgetExhausted = errors.New("shard: solve budget exhausted")

// Config configures a Cluster.
type Config struct {
	// K is the number of spatial shards (>= 1).
	K int
	// B is the least required number of workers per task (>= 2).
	B int
	// Alpha and Omega parameterize the Equation 1 estimator (default 0.5
	// each, the paper's configuration).
	Alpha, Omega float64
	// Resolution is the per-axis cell resolution of the shard geometry
	// (0: DefaultResolution).
	Resolution int
	// Router is the placement policy for new workers and tasks
	// (nil: region affinity).
	Router Policy
	// AdmissionRate, when positive, enables token-bucket admission control
	// at this many admitted requests per second on the mutating HTTP
	// endpoints; AdmissionBurst is the bucket capacity (0: ceil of rate).
	AdmissionRate  float64
	AdmissionBurst int
	// Clock returns the current platform time; defaults to a monotonic
	// round counter advanced by RunBatch.
	Clock func() float64
	// Metrics receives all cluster and per-shard instrumentation and is
	// served by GET /metrics. Defaults to a fresh registry.
	Metrics *metrics.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// SolveBudget, when positive, bounds each shard's per-round solve with
	// a resilience.Ladder (solver -> TPG -> RAND) and each POST /batch with
	// a context deadline, exactly like the unsharded platform.
	SolveBudget time.Duration
	// Chaos, when non-nil, wraps every ladder rung with seeded fault
	// injection (requires SolveBudget > 0); used by the chaos rehearsals.
	Chaos *resilience.ChaosConfig
	// Incremental maintains the cluster-wide candidate graph in a
	// persistent engine across rounds instead of rebuilding it from the
	// shard snapshots each RunBatch. Results are bitwise identical; only
	// the per-round graph work shrinks. Carry-forward stays off here
	// because the cooperation history mutates between rounds.
	Incremental bool
}

// Cluster is a K-shard CA-SC platform. All methods are safe for concurrent
// use. Registrations, ratings and reads synchronize per shard; RunBatch
// serializes rounds on its own lock but solves outside the shard locks, so
// no read or registration ever waits on a solve.
type Cluster struct {
	b           int
	alpha       float64
	omega       float64
	solveBudget time.Duration
	chaos       *resilience.ChaosConfig
	geom        Geometry
	router      Policy
	admission   *TokenBucket
	shards      []*Shard
	pprof       bool

	nextWorkerID atomic.Int64
	nextTaskID   atomic.Int64
	rounds       atomic.Int64
	clock        func() float64
	advance      func()

	batchMu sync.Mutex // serializes RunBatch rounds

	// Incremental-round state, guarded by batchMu: the persistent engine
	// and the home shard of every entity currently inside it.
	inc        *incremental.Engine
	workerHome map[int]int
	taskHome   map[int]int

	metrics *metrics.Registry
	cm      clusterMetrics
}

// clusterMetrics holds the cluster's resolved metric handles.
type clusterMetrics struct {
	shardsGauge *metrics.Gauge
	batches     *metrics.Counter
	batchSec    *metrics.Histogram
	dispatched  *metrics.Counter
	pairs       *metrics.Counter
	expired     *metrics.Counter
	scoreGauge  *metrics.Gauge
}

// NewCluster returns an empty K-shard cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.B < 2 {
		return nil, fmt.Errorf("shard: B = %d, want >= 2", cfg.B)
	}
	geom, err := NewGeometry(cfg.Resolution, cfg.K)
	if err != nil {
		return nil, err
	}
	if cfg.Alpha == 0 && cfg.Omega == 0 {
		cfg.Alpha, cfg.Omega = 0.5, 0.5
	}
	if cfg.Chaos != nil && cfg.SolveBudget <= 0 {
		return nil, fmt.Errorf("shard: chaos injection requires SolveBudget > 0")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	router := cfg.Router
	if router == nil {
		router = regionPolicy{}
	}
	c := &Cluster{
		b:           cfg.B,
		alpha:       cfg.Alpha,
		omega:       cfg.Omega,
		solveBudget: cfg.SolveBudget,
		chaos:       cfg.Chaos,
		geom:        geom,
		router:      router,
		pprof:       cfg.EnablePprof,
		clock:       cfg.Clock,
		metrics:     reg,
		cm: clusterMetrics{
			shardsGauge: reg.Gauge(MetricClusterShards, "Number of spatial shards."),
			batches:     reg.Counter(MetricClusterBatches, "Cluster batch rounds completed."),
			batchSec: reg.Histogram(MetricClusterBatchSeconds, "End-to-end cluster batch round latency.",
				metrics.LatencyBuckets()),
			dispatched: reg.Counter(MetricClusterDispatched, "Tasks dispatched with >= B workers, cluster-wide."),
			pairs:      reg.Counter(MetricClusterPairs, "Worker-and-task pairs dispatched, cluster-wide."),
			expired:    reg.Counter(MetricClusterExpired, "Tasks dropped past their deadline, cluster-wide."),
			scoreGauge: reg.Gauge(MetricClusterScore, "Cumulative cooperation score, cluster-wide."),
		},
	}
	if cfg.AdmissionRate > 0 {
		burst := cfg.AdmissionBurst
		if burst <= 0 {
			burst = int(cfg.AdmissionRate + 0.999)
		}
		c.admission, err = NewTokenBucket(cfg.AdmissionRate, burst, reg)
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.K; i++ {
		c.shards = append(c.shards, newShard(i, cfg.Alpha, cfg.Omega, reg))
	}
	if cfg.Incremental {
		c.inc = incremental.New(incremental.Config{B: cfg.B, OrderByID: true, Metrics: reg})
		c.workerHome = make(map[int]int)
		c.taskHome = make(map[int]int)
		for _, sh := range c.shards {
			sh.trackPending = true
		}
	}
	if c.clock == nil {
		c.clock = func() float64 { return float64(c.rounds.Load()) }
		c.advance = func() { c.rounds.Add(1) }
	}
	c.cm.shardsGauge.Set(float64(cfg.K))
	return c, nil
}

// Metrics returns the shared registry all shards report into.
func (c *Cluster) Metrics() *metrics.Registry { return c.metrics }

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Router returns the active routing policy's name.
func (c *Cluster) Router() string { return c.router.Name() }

// Now returns the cluster's current platform time.
func (c *Cluster) Now() float64 { return c.clock() }

// clusterQuality estimates Equation 1 qualities from the pair statistics
// accumulated across every shard's history: ratings recorded on different
// shards for the same worker pair aggregate exactly as one global history
// would (sums and counts add).
type clusterQuality struct{ c *Cluster }

func (q clusterQuality) Quality(i, k int) float64 {
	if i == k {
		return 0
	}
	var sum float64
	var cnt int
	for _, sh := range q.c.shards {
		s, n := sh.history.PairStats(i, k)
		sum += s
		cnt += n
	}
	hist := q.c.omega
	if cnt > 0 {
		hist = sum / float64(cnt)
	}
	return q.c.alpha*q.c.omega + (1-q.c.alpha)*hist
}

func (q clusterQuality) NumWorkers() int { return int(q.c.nextWorkerID.Load()) }

// route picks the home shard for a new entity at loc.
func (c *Cluster) route(loc geo.Point) int {
	loads := make([]int, len(c.shards))
	for i, sh := range c.shards {
		loads[i] = sh.load()
	}
	s := c.router.Route(RouteInfo{Loc: loc, Owner: c.geom.ShardOf(loc), Loads: loads})
	if s < 0 || s >= len(c.shards) {
		s = c.geom.ShardOf(loc)
	}
	return s
}

// RegisterWorker adds an available worker and returns its cluster-unique ID.
func (c *Cluster) RegisterWorker(loc geo.Point, speed, radius float64) (int, error) {
	if speed < 0 || radius < 0 {
		return 0, fmt.Errorf("shard: negative speed or radius")
	}
	id := int(c.nextWorkerID.Add(1) - 1)
	c.shards[c.route(loc)].addWorker(model.Worker{
		ID: id, Loc: loc, Speed: speed, Radius: radius, Arrive: c.clock(),
	})
	return id, nil
}

// PostTask adds an open task and returns its cluster-unique ID. Deadline is
// absolute platform time.
func (c *Cluster) PostTask(loc geo.Point, capacity int, deadline float64) (int, error) {
	if capacity < c.b {
		return 0, fmt.Errorf("shard: capacity %d below B=%d", capacity, c.b)
	}
	if deadline <= c.clock() {
		return 0, fmt.Errorf("shard: deadline %v not in the future (now %v)", deadline, c.clock())
	}
	id := int(c.nextTaskID.Add(1) - 1)
	c.shards[c.route(loc)].addTask(model.Task{
		ID: id, Loc: loc, Capacity: capacity, Created: c.clock(), Deadline: deadline,
	})
	return id, nil
}

// Quality returns the current cluster-wide Equation 1 estimate for two
// workers.
func (c *Cluster) Quality(i, k int) (float64, error) {
	n := int(c.nextWorkerID.Load())
	if i == k || i < 0 || k < 0 || i >= n || k >= n {
		return 0, fmt.Errorf("shard: bad worker pair (%d,%d)", i, k)
	}
	return clusterQuality{c}.Quality(i, k), nil
}

// RateTask records the requester's rating s in [0,1] for a dispatched task.
// The rating lands in the history of the shard that owns the task's region;
// the group's workers rejoin the pool at the task's location, re-homed by
// the router — the rating-side half of the ghost/handoff protocol.
func (c *Cluster) RateTask(taskID int, score float64) error {
	if score < 0 || score > 1 {
		return fmt.Errorf("shard: rating %v outside [0,1]", score)
	}
	for _, sh := range c.shards {
		grp, ok := sh.takeRated(taskID)
		if !ok {
			continue
		}
		sh.history.RecordGroup(grp.ids, score)
		for i, w := range grp.workers {
			w.Loc = grp.loc
			w.Arrive = c.clock()
			home := c.route(w.Loc)
			c.shards[home].addWorker(w)
			if home != grp.homes[i] {
				c.shards[home].sm.handoffs.Inc()
			}
		}
		return nil
	}
	for _, sh := range c.shards {
		if sh.hasDispatched(taskID) {
			return fmt.Errorf("shard: task %d already rated", taskID)
		}
	}
	return fmt.Errorf("shard: task %d was not dispatched", taskID)
}

// BatchResult reports one cluster RunBatch round.
type BatchResult struct {
	Pairs           []model.Pair // worker ID -> task ID pairs actually dispatched
	Score           float64
	Upper           float64
	DispatchedTasks int
	ExpiredTasks    int
	// Components is the number of validity-graph components this round;
	// BorderComponents of them crossed a shard boundary and were pinned to
	// the shard owning their lowest cell. GhostWorkers counts workers
	// solved by a shard other than their registry home.
	Components       int
	BorderComponents int
	GhostWorkers     int
}

// pinnedWork is the per-shard slice of one round: the components pinned to
// the shard and the union of their global instance positions.
type pinnedWork struct {
	comps   int
	border  int
	ghosts  int
	workers []int
	tasks   []int
}

// RunBatch executes one globally coordinated batch round of Algorithm 1
// with the named solver. Every shard drops its expired tasks and snapshots
// its registries; the coordinator merges the snapshots into one instance
// (positions ordered by cluster-unique ID, so the merge is independent of
// K), builds candidates, and decomposes the validity graph into connected
// components. Each component is pinned to the shard owning its lowest cell
// — a component touching several shard regions is a border component, and
// the workers it drags across the boundary are ghosts — and every shard
// with pinned work solves its union sub-instance concurrently. The merged
// result is bitwise-identical to a 1-shard (monolithic) run for the
// deterministic solver family (TPG, GT, GT+LUB, EXACT), because those
// solvers' decisions depend only on index order within a component.
//
// With Config.SolveBudget set, each shard's solve runs under a resilience
// ladder; if any shard exhausts its budget the whole round returns
// ErrBudgetExhausted and dispatches nothing, keeping rounds all-or-nothing.
func (c *Cluster) RunBatch(ctx context.Context, solverName string) (*BatchResult, error) {
	if _, err := assign.ByName(solverName, 0); err != nil {
		return nil, err
	}
	c.batchMu.Lock()
	defer c.batchMu.Unlock()
	if ctx.Err() != nil {
		return nil, fmt.Errorf("%w: deadline passed while queued", ErrBudgetExhausted)
	}
	start := now()
	seed := c.rounds.Load()
	nowT := c.clock()
	res := &BatchResult{}

	// Phases A+B: assemble the round's global instance and components —
	// either rebuilt from fresh shard snapshots, or maintained across
	// rounds by the persistent engine. Both produce the identical
	// ID-ordered instance, so everything downstream is mode-blind.
	var in *model.Instance
	var comps []partition.Component
	var workerHome, taskHome map[int]int
	if c.inc != nil {
		in, comps, workerHome, taskHome = c.incrementalRound(nowT, res)
	} else {
		in, comps, workerHome, taskHome = c.snapshotRound(nowT, res)
	}
	// Snapshot the per-shard histories into one flat history for the whole
	// round: solves then pay a single map probe per quality miss instead of
	// K locked probes. Merging in shard order accumulates each pair's total
	// exactly as clusterQuality would, so scores stay bitwise K-invariant.
	hist := coop.NewHistory(int(c.nextWorkerID.Load()), c.alpha, c.omega)
	for _, sh := range c.shards {
		hist.AddFrom(sh.history)
	}
	in.Quality = hist
	res.Components = len(comps)

	// Phase C: pin each component to the shard owning its lowest cell.
	pinned := make([]pinnedWork, len(c.shards))
	for _, comp := range comps {
		minCell, border := c.componentCells(in, comp)
		owner := c.geom.ShardOfCell(minCell)
		p := &pinned[owner]
		p.comps++
		if border {
			p.border++
			res.BorderComponents++
		}
		p.workers = append(p.workers, comp.Workers...)
		p.tasks = append(p.tasks, comp.Tasks...)
	}
	for s := range pinned {
		sort.Ints(pinned[s].workers)
		sort.Ints(pinned[s].tasks)
		for _, w := range pinned[s].workers {
			if workerHome[in.Workers[w].ID] != s {
				pinned[s].ghosts++
			}
		}
		res.GhostWorkers += pinned[s].ghosts
	}

	// Phase D: concurrent per-shard solves over the pinned unions.
	subs := make([]*model.SubIndex, len(c.shards))
	results := make([]*model.Assignment, len(c.shards))
	errs := make([]error, len(c.shards))
	exhausted := make([]bool, len(c.shards))
	var wg sync.WaitGroup
	for s, sh := range c.shards {
		sh.sm.compGauge.Set(float64(pinned[s].comps))
		sh.sm.border.Add(uint64(pinned[s].border))
		sh.sm.ghosts.Add(uint64(pinned[s].ghosts))
		if len(pinned[s].tasks) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, sh *Shard) {
			defer wg.Done()
			results[s], subs[s], exhausted[s], errs[s] =
				c.solveShard(ctx, sh, solverName, seed, in, pinned[s].workers, pinned[s].tasks)
		}(s, sh)
	}
	wg.Wait()
	for s := range c.shards {
		if errs[s] != nil {
			return nil, fmt.Errorf("shard %d: %w", s, errs[s])
		}
		if exhausted[s] {
			return nil, fmt.Errorf("%w: shard %d had no rung finish within %v",
				ErrBudgetExhausted, s, c.solveBudget)
		}
	}

	// Phase E: merge sub-assignments, score on the global instance (its
	// group member order and task order are K-independent), and apply the
	// per-shard deltas. A dispatched task's rating is owned by the shard of
	// its region — the workers are handed off there.
	a := model.NewAssignment(in)
	for s := range c.shards {
		if results[s] != nil {
			subs[s].Lift(results[s], a)
		}
	}
	in.Quality = coop.NewCached(in.Quality) // single-threaded from here on
	res.Upper = assign.Upper(in)

	deltas := make([]*roundDelta, len(c.shards))
	for s := range deltas {
		deltas[s] = &roundDelta{groups: make(map[int]dispatchedGroup)}
	}
	var engineRemoveW, engineRemoveT []int // instance positions leaving the engine
	for ti, ws := range a.TaskWorkers {
		if len(ws) < c.b {
			continue // below B: keep the task open and the workers available
		}
		task := in.Tasks[ti]
		owner := c.geom.ShardOf(task.Loc)
		grp := dispatchedGroup{loc: task.Loc}
		if c.inc != nil {
			engineRemoveT = append(engineRemoveT, ti)
			engineRemoveW = append(engineRemoveW, ws...)
			delete(c.taskHome, task.ID)
		}
		for _, wi := range ws {
			w := in.Workers[wi]
			grp.ids = append(grp.ids, w.ID)
			grp.workers = append(grp.workers, w)
			home := workerHome[w.ID]
			grp.homes = append(grp.homes, home)
			if c.inc != nil {
				delete(c.workerHome, w.ID)
			}
			deltas[home].removeWorkers = append(deltas[home].removeWorkers, w.ID)
			res.Pairs = append(res.Pairs, model.Pair{Worker: w.ID, Task: task.ID})
		}
		sortGroup(&grp)
		score := in.GroupQuality(ws, task.Capacity)
		res.Score += score
		deltas[owner].score += score
		deltas[owner].groups[task.ID] = grp
		deltas[owner].dispatched++
		deltas[taskHome[task.ID]].removeTasks = append(deltas[taskHome[task.ID]].removeTasks, task.ID)
		res.DispatchedTasks++
	}
	sort.Slice(res.Pairs, func(i, j int) bool {
		if res.Pairs[i].Task != res.Pairs[j].Task {
			return res.Pairs[i].Task < res.Pairs[j].Task
		}
		return res.Pairs[i].Worker < res.Pairs[j].Worker
	})
	if c.inc != nil {
		c.inc.Commit(nil, engineRemoveW, engineRemoveT)
	}
	for s, sh := range c.shards {
		sh.applyRound(deltas[s])
	}
	c.cm.batches.Inc()
	c.cm.dispatched.Add(uint64(res.DispatchedTasks))
	c.cm.pairs.Add(uint64(len(res.Pairs)))
	c.cm.expired.Add(uint64(res.ExpiredTasks))
	c.cm.scoreGauge.Set(c.totalScore())
	c.cm.batchSec.Observe(now().Sub(start).Seconds())
	if c.advance != nil {
		c.advance()
	} else {
		c.rounds.Add(1)
	}
	return res, nil
}

// snapshotRound is the from-scratch round assembly: every shard drops its
// expired tasks and snapshots its registries, and the coordinator merges
// the snapshots into one instance ordered by cluster-unique ID (so
// positions, and therefore every solver tie-break, are identical for any
// K), rebuilds candidates, and decomposes the validity graph.
func (c *Cluster) snapshotRound(nowT float64, res *BatchResult) (*model.Instance, []partition.Component, map[int]int, map[int]int) {
	var workers []model.Worker
	var tasks []model.Task
	workerHome := make(map[int]int)
	taskHome := make(map[int]int)
	for si, sh := range c.shards {
		ws, ts, expired := sh.beginRound(nowT)
		for _, w := range ws {
			workerHome[w.ID] = si
		}
		for _, t := range ts {
			taskHome[t.ID] = si
		}
		workers = append(workers, ws...)
		tasks = append(tasks, ts...)
		res.ExpiredTasks += expired
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i].ID < workers[j].ID })
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].ID < tasks[j].ID })
	in := &model.Instance{B: c.b, Now: nowT}
	in.Workers = workers
	in.Tasks = tasks
	in.BuildCandidates(model.IndexRTree)
	return in, partition.Components(in), workerHome, taskHome
}

// incrementalRound is the engine-backed round assembly: the persistent
// engine expires tasks and re-validates its maintained edges, each shard's
// queued arrivals are drained into it, and Plan assembles the same
// ID-ordered instance and components snapshotRound would have built —
// without touching the standing population. Shard registries are kept in
// step so status, routing load, and the next rounds see one truth.
func (c *Cluster) incrementalRound(nowT float64, res *BatchResult) (*model.Instance, []partition.Component, map[int]int, map[int]int) {
	for _, id := range c.inc.BeginRound(nowT) {
		c.shards[c.taskHome[id]].forgetTask(id)
		delete(c.taskHome, id)
		res.ExpiredTasks++
	}
	for si, sh := range c.shards {
		ws, ts := sh.drainPending()
		for _, w := range ws {
			c.workerHome[w.ID] = si
			c.inc.AddWorker(w)
		}
		for _, t := range ts {
			if t.Deadline <= nowT {
				// Expired while queued: the snapshot path would have
				// dropped it in this round's expiry sweep too.
				sh.forgetTask(t.ID)
				res.ExpiredTasks++
				continue
			}
			c.taskHome[t.ID] = si
			c.inc.AddTask(t)
		}
	}
	r := c.inc.Plan()
	return r.In, r.Comps, c.workerHome, c.taskHome
}

// componentCells returns the lowest cell any of the component's entities
// occupies and whether the component touches more than one shard's region.
func (c *Cluster) componentCells(in *model.Instance, comp partition.Component) (minCell int, border bool) {
	minCell = c.geom.Cells()
	first := -1
	for _, w := range comp.Workers {
		cell := c.geom.CellOf(in.Workers[w].Loc)
		if cell < minCell {
			minCell = cell
		}
		if s := c.geom.ShardOfCell(cell); first == -1 {
			first = s
		} else if s != first {
			border = true
		}
	}
	for _, t := range comp.Tasks {
		cell := c.geom.CellOf(in.Tasks[t].Loc)
		if cell < minCell {
			minCell = cell
		}
		if s := c.geom.ShardOfCell(cell); s != first {
			border = true
		}
	}
	return minCell, border
}

// solveShard solves one shard's pinned union sub-instance. The sub-instance
// preserves relative index order (SubInstance canonicalises ascending), so
// deterministic solvers produce exactly the slice of the monolithic result
// covering these components. Each shard memoizes qualities privately —
// coop.Cached is not safe for concurrent use, and shards solve in parallel.
func (c *Cluster) solveShard(ctx context.Context, sh *Shard, solverName string, seed int64, in *model.Instance, workers, tasks []int) (*model.Assignment, *model.SubIndex, bool, error) {
	t0 := now()
	sub, idx := in.SubInstance(workers, tasks)
	sub.Quality = coop.NewCached(sub.Quality)
	solver, err := assign.ByName(solverName, assign.ComponentSeed(seed, sh.id))
	if err != nil {
		return nil, nil, false, err
	}
	solver = assign.Instrument(solver, c.metrics)
	var a *model.Assignment
	if c.solveBudget > 0 {
		rungs := resilience.Chain(solver, seed)
		if c.chaos != nil {
			cc := *c.chaos
			cc.Seed = assign.ComponentSeed(cc.Seed, sh.id)
			cc.Metrics = c.metrics
			rungs = resilience.WithChaos(rungs, cc)
		}
		ladder, lerr := resilience.NewLadder(
			resilience.Config{Budget: c.solveBudget, Metrics: c.metrics}, rungs...)
		if lerr != nil {
			return nil, nil, false, lerr
		}
		var out resilience.Outcome
		a, out = ladder.SolveBudgeted(ctx, sub)
		if out.Exhausted {
			return nil, nil, true, nil
		}
	} else {
		a, err = solver.Solve(ctx, sub)
		if err != nil {
			return nil, nil, false, err
		}
	}
	sh.sm.solves.Inc()
	sh.sm.solveSec.Observe(now().Sub(t0).Seconds())
	return a, idx, false, nil
}

// sortGroup canonicalises a dispatched group's bookkeeping order (ids
// ascending with workers/homes in step), matching the unsharded platform's
// rating semantics.
func sortGroup(grp *dispatchedGroup) {
	ord := make([]int, len(grp.ids))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return grp.ids[ord[a]] < grp.ids[ord[b]] })
	ids := make([]int, len(ord))
	ws := make([]model.Worker, len(ord))
	homes := make([]int, len(ord))
	for i, o := range ord {
		ids[i] = grp.ids[o]
		ws[i] = grp.workers[o]
		homes[i] = grp.homes[o]
	}
	grp.ids, grp.workers, grp.homes = ids, ws, homes
}

// totalScore sums the per-shard cumulative scores.
func (c *Cluster) totalScore() float64 {
	var sum float64
	for _, sh := range c.shards {
		sh.mu.RLock()
		sum += sh.totalScore
		sh.mu.RUnlock()
	}
	return sum
}

// Status is a cluster snapshot.
type Status struct {
	Shards           int           `json:"shards"`
	Router           string        `json:"router"`
	AvailableWorkers int           `json:"available_workers"`
	BusyWorkers      int           `json:"busy_workers"`
	OpenTasks        int           `json:"open_tasks"`
	Batches          int           `json:"batches"`
	DispatchedTasks  int           `json:"dispatched_tasks"`
	TotalScore       float64       `json:"total_score"`
	Now              float64       `json:"now"`
	PerShard         []ShardStatus `json:"per_shard"`
}

// Status reports the cluster snapshot, including every shard's slice.
func (c *Cluster) Status() Status {
	st := Status{
		Shards: len(c.shards),
		Router: c.router.Name(),
		Now:    c.clock(),
	}
	for _, sh := range c.shards {
		ss := sh.status()
		st.AvailableWorkers += ss.AvailableWorkers
		st.BusyWorkers += ss.BusyWorkers
		st.OpenTasks += ss.OpenTasks
		st.TotalScore += ss.TotalScore
		st.DispatchedTasks += ss.DispatchedTasks
		st.PerShard = append(st.PerShard, ss)
	}
	st.Batches = int(c.rounds.Load())
	return st
}

package shard

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"casc/internal/geo"
	"casc/internal/resilience"
)

// chaosSeeds mirrors the resilience suite's convention: a fixed seed set,
// extended by the CI chaos matrix through CASC_CHAOS_SEED.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	seeds := []int64{1, 7, 1337}
	if env := os.Getenv("CASC_CHAOS_SEED"); env != "" {
		s, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CASC_CHAOS_SEED=%q: %v", env, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// TestClusterChaosRounds drives a 4-shard cluster through batch rounds
// with fault injection on every ladder rung. Rounds either complete with a
// consistent dispatch or fail all-or-nothing with ErrBudgetExhausted;
// either way the registries stay balanced (every worker is available or
// busy, never lost), which is the property chaos is most likely to break.
func TestClusterChaosRounds(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			c := newTestCluster(t, 4, func(cfg *Config) {
				cfg.SolveBudget = 2 * time.Second
				cfg.Chaos = &resilience.ChaosConfig{
					Seed:         seed,
					FailRate:     0.4,
					TruncateRate: 0.3,
					TruncateFrac: 0.5,
				}
			})
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				if _, err := c.RegisterWorker(geo.Pt(rng.Float64(), rng.Float64()), 0.05, 0.15); err != nil {
					t.Fatal(err)
				}
			}
			for round := 0; round < 4; round++ {
				for j := 0; j < 8; j++ {
					if _, err := c.PostTask(geo.Pt(rng.Float64(), rng.Float64()), 3, c.clock()+3); err != nil {
						t.Fatal(err)
					}
				}
				res, err := c.RunBatch(context.Background(), "GT")
				if errors.Is(err, ErrBudgetExhausted) {
					// Every rung of some shard's ladder was killed by the
					// injected faults: an all-or-nothing no-op round.
					continue
				}
				if err != nil {
					t.Fatalf("seed %d round %d: %v", seed, round, err)
				}
				rated := map[int]bool{}
				for _, p := range res.Pairs {
					if rated[p.Task] {
						continue
					}
					rated[p.Task] = true
					if err := c.RateTask(p.Task, 1.0); err != nil {
						t.Fatal(err)
					}
				}
				st := c.Status()
				if got := st.AvailableWorkers + st.BusyWorkers; got != int(c.nextWorkerID.Load()) {
					t.Fatalf("seed %d round %d: %d workers accounted, want %d",
						seed, round, got, c.nextWorkerID.Load())
				}
			}
		})
	}
}

// TestClusterBudgetExhaustion forces a hopeless budget and checks the
// round fails closed: ErrBudgetExhausted, nothing dispatched, registries
// untouched.
func TestClusterBudgetExhaustion(t *testing.T) {
	c := newTestCluster(t, 2, func(cfg *Config) {
		cfg.SolveBudget = time.Nanosecond
	})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		if _, err := c.RegisterWorker(geo.Pt(rng.Float64(), rng.Float64()), 0.05, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 10; j++ {
		if _, err := c.PostTask(geo.Pt(rng.Float64(), rng.Float64()), 3, 5); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := c.RunBatch(ctx, "GT")
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("RunBatch with expired deadline: %v, want ErrBudgetExhausted", err)
	}
	st := c.Status()
	if st.BusyWorkers != 0 || st.AvailableWorkers != 30 || st.OpenTasks != 10 {
		t.Errorf("failed round mutated state: %+v", st)
	}
}

// Package shard partitions the CA-SC platform into K spatial shards, each
// owning its own worker/task registries, cooperation history and metric
// namespace, fronted by a pluggable Router and token-bucket admission
// control. Batch rounds stay globally coordinated: every round gathers one
// world-wide instance, decomposes it into the connected components of its
// validity graph (package partition), pins each component to the shard that
// owns its lowest cell — components crossing a boundary are "border"
// components and ride the ghost/handoff protocol — and lets every shard
// solve its pinned region concurrently. Because the paper's objective is
// additive over components and the solvers are decomposition-invariant for
// their deterministic family (TPG, GT, GT+LUB, EXACT), a 1-shard run is
// bitwise-equal to an N-shard run on the same seed, while the per-shard
// solves dodge the monolithic superlinear costs (TPG's stage-one task scan,
// GT's full-population round sweeps).
package shard

import (
	"fmt"

	"casc/internal/geo"
)

// DefaultResolution is the per-axis cell resolution of the shard geometry:
// the unit square is cut into Resolution x Resolution cells addressed
// row-major (y*Resolution + x), the same clamped addressing scheme as
// internal/grid. 64 gives 4096 cells — fine-grained enough that contiguous
// cell ranges split the world evenly for any practical K.
const DefaultResolution = 64

// Geometry maps locations to cells and cells to owning shards. Shard s owns
// the contiguous cell range [s*C/K, (s+1)*C/K) where C = Resolution^2; with
// row-major cell numbering the shards are horizontal bands of the unit
// square. The mapping is pure arithmetic, so every node of a deployment
// agrees on ownership without coordination.
type Geometry struct {
	Resolution int
	K          int
}

// NewGeometry returns a Geometry with K shards at the given per-axis
// resolution (0 selects DefaultResolution). K must be at least 1 and no
// larger than the cell count.
func NewGeometry(resolution, k int) (Geometry, error) {
	if resolution <= 0 {
		resolution = DefaultResolution
	}
	if k < 1 {
		return Geometry{}, fmt.Errorf("shard: K = %d, want >= 1", k)
	}
	if cells := resolution * resolution; k > cells {
		return Geometry{}, fmt.Errorf("shard: K = %d exceeds %d cells", k, cells)
	}
	return Geometry{Resolution: resolution, K: k}, nil
}

// Cells returns the total cell count.
func (g Geometry) Cells() int { return g.Resolution * g.Resolution }

// CellOf returns the row-major cell index of p. Points outside the unit
// square are clamped into it, mirroring internal/grid cell addressing.
func (g Geometry) CellOf(p geo.Point) int {
	c := p.Clamp(0, 1)
	x := int(c.X * float64(g.Resolution))
	y := int(c.Y * float64(g.Resolution))
	if x == g.Resolution {
		x--
	}
	if y == g.Resolution {
		y--
	}
	return y*g.Resolution + x
}

// ShardOfCell returns the shard owning the given cell.
func (g Geometry) ShardOfCell(cell int) int {
	return cell * g.K / g.Cells()
}

// ShardOf returns the shard owning the cell containing p.
func (g Geometry) ShardOf(p geo.Point) int { return g.ShardOfCell(g.CellOf(p)) }

package shard

import (
	"fmt"
	"math"
	"sync"
	"time"

	"casc/internal/metrics"
)

// Admission metric names.
const (
	MetricAdmissionAllowed = "casc_admission_allowed_total"
	MetricAdmissionShed    = "casc_admission_shed_total"
	MetricAdmissionTokens  = "casc_admission_tokens"
)

// ErrAdmission reports a request shed by admission control. RetryAfter is
// how long until the bucket next has a token; the HTTP layer maps the error
// to 503 Service Unavailable with a Retry-After header, composing with the
// resilience ladder's budget-exhaustion shedding: admission rejects work
// the cluster should not even start, the ladder bounds work it did start.
type ErrAdmission struct {
	RetryAfter time.Duration
}

func (e *ErrAdmission) Error() string {
	return fmt.Sprintf("shard: admission shed, retry in %v", e.RetryAfter)
}

// TokenBucket is a classic token-bucket admission controller: tokens refill
// continuously at Rate per second up to Burst, and every admitted request
// spends one. It is safe for concurrent use.
type TokenBucket struct {
	rate  float64
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time

	allowed *metrics.Counter
	shed    *metrics.Counter
	gauge   *metrics.Gauge
}

// NewTokenBucket returns a bucket admitting rate requests per second with
// the given burst capacity (values < 1 are raised to 1 so a drained bucket
// can always recover to a whole token). The registry, when non-nil,
// receives the admission counters and token gauge.
func NewTokenBucket(rate float64, burst int, reg *metrics.Registry) (*TokenBucket, error) {
	if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
		return nil, fmt.Errorf("shard: admission rate %v, want > 0", rate)
	}
	if burst < 1 {
		burst = 1
	}
	tb := &TokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   now(),
	}
	if reg != nil {
		tb.allowed = reg.Counter(MetricAdmissionAllowed, "Requests admitted by the token bucket.")
		tb.shed = reg.Counter(MetricAdmissionShed, "Requests shed by the token bucket.")
		tb.gauge = reg.Gauge(MetricAdmissionTokens, "Admission tokens currently available.")
		tb.gauge.Set(tb.tokens)
	}
	return tb, nil
}

// Admit spends one token if available. When the bucket is empty it returns
// an *ErrAdmission carrying the time until the next token accrues.
func (tb *TokenBucket) Admit() error {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	t := now()
	tb.tokens = math.Min(tb.burst, tb.tokens+tb.rate*t.Sub(tb.last).Seconds())
	tb.last = t
	if tb.tokens < 1 {
		wait := time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
		if tb.shed != nil {
			tb.shed.Inc()
			tb.gauge.Set(tb.tokens)
		}
		return &ErrAdmission{RetryAfter: wait}
	}
	tb.tokens--
	if tb.allowed != nil {
		tb.allowed.Inc()
		tb.gauge.Set(tb.tokens)
	}
	return nil
}

package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"casc/internal/geo"
)

// RouteInfo is the per-request context a routing policy decides on.
type RouteInfo struct {
	// Loc is the location of the worker or task being placed.
	Loc geo.Point
	// Owner is the shard whose region contains Loc.
	Owner int
	// Loads[s] is the number of registered entities (available workers plus
	// open tasks) shard s currently holds.
	Loads []int
}

// Policy decides which shard stores a newly registered worker or posted
// task. Routing is a *placement* decision only: batch assignment gathers
// the whole world each round and pins work by component geometry, so any
// policy yields the same assignments — policies trade registry balance
// against locality. Policies must be safe for concurrent use.
type Policy interface {
	Name() string
	Route(info RouteInfo) int
}

// Router names, accepted by NewPolicy and the casc-server -router flag.
const (
	PolicyRegion     = "region"
	PolicyRoundRobin = "round-robin"
	PolicyLeastLoad  = "least-loaded"
)

// NewPolicy returns the named routing policy. Names are case-insensitive;
// "rr" and "least" are accepted shorthands.
func NewPolicy(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case PolicyRegion, "":
		return regionPolicy{}, nil
	case PolicyRoundRobin, "rr":
		return &roundRobinPolicy{}, nil
	case PolicyLeastLoad, "least":
		return leastLoadedPolicy{}, nil
	}
	return nil, fmt.Errorf("shard: unknown router policy %q (want %s)",
		name, strings.Join(PolicyNames(), ", "))
}

// PolicyNames lists the registered policy names, sorted.
func PolicyNames() []string {
	names := []string{PolicyRegion, PolicyRoundRobin, PolicyLeastLoad}
	sort.Strings(names)
	return names
}

// regionPolicy places every entity on the shard owning its location cell:
// maximal locality, so border traffic and rating handoffs are rare, at the
// cost of mirroring any spatial skew straight into registry load.
type regionPolicy struct{}

func (regionPolicy) Name() string             { return PolicyRegion }
func (regionPolicy) Route(info RouteInfo) int { return info.Owner }

// roundRobinPolicy spreads placements evenly regardless of location — the
// classic stateless spreader. An atomic cursor keeps it safe under
// concurrent registrations.
type roundRobinPolicy struct {
	next atomic.Uint64
}

func (*roundRobinPolicy) Name() string { return PolicyRoundRobin }

func (p *roundRobinPolicy) Route(info RouteInfo) int {
	return int((p.next.Add(1) - 1) % uint64(len(info.Loads)))
}

// leastLoadedPolicy places on the shard with the fewest registered
// entities, ties broken toward the lowest shard index. It consumes exactly
// the per-shard arrival-intensity signal the prediction-based assignment
// literature motivates for load models.
type leastLoadedPolicy struct{}

func (leastLoadedPolicy) Name() string { return PolicyLeastLoad }

func (leastLoadedPolicy) Route(info RouteInfo) int {
	best := 0
	for s := 1; s < len(info.Loads); s++ {
		if info.Loads[s] < info.Loads[best] {
			best = s
		}
	}
	return best
}

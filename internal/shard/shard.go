package shard

import (
	"sort"
	"strconv"
	"sync"

	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/metrics"
	"casc/internal/model"
)

// Per-shard metric names. Every series carries a shard="<id>" label, so one
// shared registry namespaces all K shards on a single GET /metrics page.
const (
	MetricShardWorkers          = "casc_shard_available_workers"
	MetricShardBusyWorkers      = "casc_shard_busy_workers"
	MetricShardOpenTasks        = "casc_shard_open_tasks"
	MetricShardScore            = "casc_shard_total_score"
	MetricShardRegistered       = "casc_shard_workers_registered_total"
	MetricShardPosted           = "casc_shard_tasks_posted_total"
	MetricShardRatings          = "casc_shard_ratings_total"
	MetricShardSolves           = "casc_shard_solves_total"
	MetricShardSolveSeconds     = "casc_shard_solve_seconds"
	MetricShardComponents       = "casc_shard_components"
	MetricShardBorderComponents = "casc_shard_border_components_total"
	MetricShardGhostWorkers     = "casc_shard_ghost_workers_total"
	MetricShardHandoffs         = "casc_shard_handoffs_total"
)

// Shard is one spatial shard: a self-contained registry of available
// workers, open tasks, dispatched groups awaiting ratings, and the
// cooperation history accumulated from ratings recorded here. All methods
// are safe for concurrent use; batch rounds snapshot under the lock and
// solve outside it, so reads and registrations never wait on a solve.
type Shard struct {
	id int

	mu         sync.RWMutex
	workers    map[int]model.Worker
	tasks      map[int]model.Task
	dispatched map[int]dispatchedGroup
	rated      map[int]bool
	busyCount  int
	dispCount  int
	totalScore float64

	// trackPending, set once at cluster construction under incremental
	// rounds, makes addWorker/addTask also queue arrivals for the next
	// round's engine drain.
	trackPending bool
	pendingW     []model.Worker
	pendingT     []model.Task

	// history accumulates the ratings of tasks dispatched from this shard
	// (Equation 1 numerators); the cluster aggregates pair statistics
	// across all shards when estimating qualities.
	history *coop.History

	sm shardMetrics
}

// dispatchedGroup snapshots a dispatched task's worker group together with
// each member's home shard at dispatch time, so a later rating can rejoin
// the workers and count cross-shard handoffs.
type dispatchedGroup struct {
	ids     []int
	workers []model.Worker
	homes   []int
	loc     geo.Point
}

// shardMetrics holds the shard's resolved metric handles.
type shardMetrics struct {
	availGauge *metrics.Gauge
	busyGauge  *metrics.Gauge
	openGauge  *metrics.Gauge
	scoreGauge *metrics.Gauge
	registered *metrics.Counter
	posted     *metrics.Counter
	ratings    *metrics.Counter
	solves     *metrics.Counter
	solveSec   *metrics.Histogram
	compGauge  *metrics.Gauge
	border     *metrics.Counter
	ghosts     *metrics.Counter
	handoffs   *metrics.Counter
}

// newShard returns an empty shard with metric series labelled shard="<id>"
// on reg.
func newShard(id int, alpha, omega float64, reg *metrics.Registry) *Shard {
	lbl := metrics.L("shard", strconv.Itoa(id))
	return &Shard{
		id:         id,
		workers:    make(map[int]model.Worker),
		tasks:      make(map[int]model.Task),
		dispatched: make(map[int]dispatchedGroup),
		rated:      make(map[int]bool),
		history:    coop.NewHistory(0, alpha, omega),
		sm: shardMetrics{
			availGauge: reg.Gauge(MetricShardWorkers, "Workers currently available, by shard.", lbl),
			busyGauge:  reg.Gauge(MetricShardBusyWorkers, "Workers on dispatched, unrated tasks, by shard.", lbl),
			openGauge:  reg.Gauge(MetricShardOpenTasks, "Tasks currently open, by shard.", lbl),
			scoreGauge: reg.Gauge(MetricShardScore, "Cumulative cooperation score dispatched, by shard.", lbl),
			registered: reg.Counter(MetricShardRegistered, "Workers ever registered, by shard.", lbl),
			posted:     reg.Counter(MetricShardPosted, "Tasks ever posted, by shard.", lbl),
			ratings:    reg.Counter(MetricShardRatings, "Requester ratings recorded, by shard.", lbl),
			solves:     reg.Counter(MetricShardSolves, "Batch rounds this shard solved pinned work in.", lbl),
			solveSec: reg.Histogram(MetricShardSolveSeconds, "Per-round solve latency of this shard's pinned region.",
				metrics.LatencyBuckets(), lbl),
			compGauge: reg.Gauge(MetricShardComponents, "Components pinned to this shard in the last round.", lbl),
			border:    reg.Counter(MetricShardBorderComponents, "Boundary-crossing components pinned to this shard.", lbl),
			ghosts:    reg.Counter(MetricShardGhostWorkers, "Workers solved here while homed on another shard.", lbl),
			handoffs:  reg.Counter(MetricShardHandoffs, "Workers re-homed to a different shard after a rating.", lbl),
		},
	}
}

// syncGauges refreshes the state gauges. Callers must hold s.mu.
func (s *Shard) syncGauges() {
	s.sm.availGauge.Set(float64(len(s.workers)))
	s.sm.busyGauge.Set(float64(s.busyCount))
	s.sm.openGauge.Set(float64(len(s.tasks)))
	s.sm.scoreGauge.Set(s.totalScore)
}

// addWorker stores an available worker.
func (s *Shard) addWorker(w model.Worker) {
	s.mu.Lock()
	s.workers[w.ID] = w
	if s.trackPending {
		s.pendingW = append(s.pendingW, w)
	}
	s.sm.registered.Inc()
	s.syncGauges()
	s.mu.Unlock()
}

// addTask stores an open task.
func (s *Shard) addTask(t model.Task) {
	s.mu.Lock()
	s.tasks[t.ID] = t
	if s.trackPending {
		s.pendingT = append(s.pendingT, t)
	}
	s.sm.posted.Inc()
	s.syncGauges()
	s.mu.Unlock()
}

// drainPending hands the arrivals queued since the previous drain to the
// caller (the incremental round coordinator) and resets the queues.
func (s *Shard) drainPending() (ws []model.Worker, ts []model.Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ws, ts = s.pendingW, s.pendingT
	s.pendingW, s.pendingT = nil, nil
	return ws, ts
}

// forgetTask drops an open task that the incremental engine expired, keeping
// the shard registry in step with the engine's population.
func (s *Shard) forgetTask(id int) {
	s.mu.Lock()
	delete(s.tasks, id)
	s.syncGauges()
	s.mu.Unlock()
}

// load returns the shard's registered-entity count, the least-loaded
// router's signal.
func (s *Shard) load() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.workers) + len(s.tasks)
}

// beginRound drops expired tasks and snapshots the shard's available
// workers and open tasks sorted ascending by ID. The snapshot is what the
// round's coordinator merges into the global instance; registrations
// landing after it join the next round.
func (s *Shard) beginRound(nowT float64) (ws []model.Worker, ts []model.Task, expired int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, t := range s.tasks {
		if t.Deadline <= nowT {
			delete(s.tasks, id)
			expired++
		}
	}
	ws = make([]model.Worker, 0, len(s.workers))
	for _, w := range s.workers {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
	ts = make([]model.Task, 0, len(s.tasks))
	for _, t := range s.tasks {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
	s.syncGauges()
	return ws, ts, expired
}

// roundDelta is the mutation a batch round applies to one shard: workers
// leaving the pool (dispatched from their home here), tasks leaving the
// open set, and dispatched groups this shard now owns the ratings for.
type roundDelta struct {
	removeWorkers []int
	removeTasks   []int
	groups        map[int]dispatchedGroup // by task ID
	dispatched    int
	score         float64
}

// applyRound commits a round's delta under one lock acquisition.
func (s *Shard) applyRound(d *roundDelta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range d.removeWorkers {
		delete(s.workers, id)
	}
	for _, id := range d.removeTasks {
		delete(s.tasks, id)
	}
	for taskID, grp := range d.groups {
		s.dispatched[taskID] = grp
		s.busyCount += len(grp.ids)
	}
	s.dispCount += d.dispatched
	s.totalScore += d.score
	s.syncGauges()
}

// takeRated claims the dispatched group of taskID for rating, returning
// ok=false when this shard does not own the task or it was already rated.
// The rating itself is recorded by the caller (cluster), which also
// re-homes the group's workers.
func (s *Shard) takeRated(taskID int) (dispatchedGroup, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	grp, ok := s.dispatched[taskID]
	if !ok || s.rated[taskID] {
		return dispatchedGroup{}, false
	}
	s.rated[taskID] = true
	s.busyCount -= len(grp.ids)
	s.sm.ratings.Inc()
	s.syncGauges()
	return grp, true
}

// hasDispatched reports whether this shard owns taskID's dispatched group
// (rated or not).
func (s *Shard) hasDispatched(taskID int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.dispatched[taskID]
	return ok
}

// ShardStatus is one shard's slice of the cluster status.
type ShardStatus struct {
	Shard            int     `json:"shard"`
	AvailableWorkers int     `json:"available_workers"`
	BusyWorkers      int     `json:"busy_workers"`
	OpenTasks        int     `json:"open_tasks"`
	DispatchedTasks  int     `json:"dispatched_tasks"`
	TotalScore       float64 `json:"total_score"`
}

// status snapshots the shard.
func (s *Shard) status() ShardStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return ShardStatus{
		Shard:            s.id,
		AvailableWorkers: len(s.workers),
		BusyWorkers:      s.busyCount,
		OpenTasks:        len(s.tasks),
		DispatchedTasks:  s.dispCount,
		TotalScore:       s.totalScore,
	}
}

package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"casc/internal/geo"
	"casc/internal/metrics"
	"casc/internal/server"
)

// Handler returns the cluster's HTTP API. It speaks the same wire protocol
// as the unsharded platform (request bodies are the server package's DTOs,
// so clients need no changes to point at a cluster) plus one extra route:
//
//	POST /workers   {"x":0.2,"y":0.3,"speed":0.05,"radius":0.1} → {"id":0}
//	POST /tasks     {"x":0.5,"y":0.5,"capacity":5,"deadline":3} → {"id":0}
//	POST /batch     {"solver":"GT"}                             → batch result
//	POST /ratings   {"task_id":0,"score":0.9}                   → {}
//	GET  /quality?i=0&k=1                                       → {"quality":0.5}
//	GET  /status                                                → cluster snapshot
//	GET  /shards                                                → per-shard snapshots
//	GET  /metrics                                               → Prometheus text
//
// When admission control is configured, every mutating POST passes through
// the token bucket first and shed requests get 503 with a Retry-After
// header — the same contract budget exhaustion uses, so clients implement
// one backoff path for both.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	c.httpRoute(mux, "POST /workers", c.admitted(c.handleRegisterWorker))
	c.httpRoute(mux, "POST /tasks", c.admitted(c.handlePostTask))
	c.httpRoute(mux, "POST /batch", c.admitted(c.handleBatch))
	c.httpRoute(mux, "POST /ratings", c.admitted(c.handleRate))
	c.httpRoute(mux, "GET /quality", c.handleQuality)
	c.httpRoute(mux, "GET /status", c.handleStatus)
	c.httpRoute(mux, "GET /shards", c.handleShards)
	c.httpRoute(mux, "GET /metrics", c.metrics.Handler().ServeHTTP)
	if c.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// httpRoute registers pattern with the platform's request-counting and
// latency-recording convention (casc_http_* series, route label = pattern).
func (c *Cluster) httpRoute(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	routeLbl := metrics.L("route", pattern)
	lat := c.metrics.Histogram(server.MetricHTTPRequestSeconds, "HTTP request latency in seconds.",
		metrics.LatencyBuckets(), routeLbl)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		lat.Observe(now().Sub(start).Seconds())
		c.metrics.Counter(server.MetricHTTPRequests, "HTTP requests by route and status code.",
			routeLbl, metrics.L("code", strconv.Itoa(sw.code))).Inc()
	})
}

// admitted wraps a mutating handler with token-bucket admission control.
func (c *Cluster) admitted(h http.HandlerFunc) http.HandlerFunc {
	if c.admission == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if err := c.admission.Admit(); err != nil {
			var shed *ErrAdmission
			if errors.As(err, &shed) {
				w.Header().Set("Retry-After", retryAfterSeconds(shed.RetryAfter))
			}
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
		h(w, r)
	}
}

// retryAfterSeconds renders a duration as whole seconds, rounded up so the
// advertised wait is never shorter than the real one.
func retryAfterSeconds(d time.Duration) string {
	s := int64(d / time.Second)
	if d%time.Second != 0 || s == 0 {
		s++
	}
	return strconv.FormatInt(s, 10)
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (c *Cluster) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	var req server.WorkerRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := c.RegisterWorker(geo.Pt(req.X, req.Y), req.Speed, req.Radius)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"id": id})
}

func (c *Cluster) handlePostTask(w http.ResponseWriter, r *http.Request) {
	var req server.TaskRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := c.PostTask(geo.Pt(req.X, req.Y), req.Capacity, req.Deadline)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"id": id})
}

// BatchResponse is the cluster's POST /batch reply: the platform's reply
// shape plus the round's sharding observability.
type BatchResponse struct {
	server.BatchResponse
	Components       int `json:"components"`
	BorderComponents int `json:"border_components"`
	GhostWorkers     int `json:"ghost_workers"`
}

func (c *Cluster) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req server.BatchRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Solver == "" {
		req.Solver = "GT+ALL"
	}
	ctx := r.Context()
	if c.solveBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.solveBudget)
		defer cancel()
	}
	res, err := c.RunBatch(ctx, req.Solver)
	if errors.Is(err, ErrBudgetExhausted) {
		w.Header().Set("Retry-After", retryAfterSeconds(c.solveBudget))
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := BatchResponse{
		BatchResponse: server.BatchResponse{
			Score:           res.Score,
			Upper:           res.Upper,
			DispatchedTasks: res.DispatchedTasks,
			ExpiredTasks:    res.ExpiredTasks,
			Pairs:           []server.PairJSON{},
		},
		Components:       res.Components,
		BorderComponents: res.BorderComponents,
		GhostWorkers:     res.GhostWorkers,
	}
	for _, pr := range res.Pairs {
		resp.Pairs = append(resp.Pairs, server.PairJSON{Worker: pr.Worker, Task: pr.Task})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Cluster) handleRate(w http.ResponseWriter, r *http.Request) {
	var req server.RatingRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := c.RateTask(req.TaskID, req.Score); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{})
}

func (c *Cluster) handleQuality(w http.ResponseWriter, r *http.Request) {
	i, err1 := strconv.Atoi(r.URL.Query().Get("i"))
	k, err2 := strconv.Atoi(r.URL.Query().Get("k"))
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("quality needs integer i and k params"))
		return
	}
	q, err := c.Quality(i, k)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"quality": q})
}

func (c *Cluster) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

func (c *Cluster) handleShards(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status().PerShard)
}

package shard

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"casc/internal/geo"
	"casc/internal/model"
)

// incRoundTrace is one round's full observable outcome, compared between
// the snapshot and incremental round assemblies.
type incRoundTrace struct {
	Pairs      []model.Pair
	ScoreBits  uint64
	UpperBits  uint64
	Dispatched int
	Expired    int
	Components int
	Border     int
	Ghosts     int
}

// driveIncremental runs a seeded workload with churn — registrations and
// posts every round, mixed deadlines so some tasks expire undispatched,
// and ratings that re-home dispatched workers — and returns per-round
// traces plus final quality samples.
func driveIncremental(t *testing.T, seed int64, solver string, opts ...func(*Config)) ([]incRoundTrace, []uint64) {
	t.Helper()
	c := newTestCluster(t, 4, opts...)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 70; i++ {
		if _, err := c.RegisterWorker(geo.Pt(rng.Float64(), rng.Float64()), 0.05, 0.15); err != nil {
			t.Fatal(err)
		}
	}
	var traces []incRoundTrace
	for round := 0; round < 6; round++ {
		for j := 0; j < 10; j++ {
			// Half the tasks get a deadline too tight to survive past the
			// next round, forcing the expiry path to stay equivalent too.
			horizon := 1.5
			if j%2 == 0 {
				horizon = 4.5
			}
			if _, err := c.PostTask(geo.Pt(rng.Float64(), rng.Float64()), 3+rng.Intn(3), c.clock()+horizon); err != nil {
				t.Fatal(err)
			}
		}
		res, err := c.RunBatch(context.Background(), solver)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		tr := incRoundTrace{
			ScoreBits:  math.Float64bits(res.Score),
			UpperBits:  math.Float64bits(res.Upper),
			Dispatched: res.DispatchedTasks,
			Expired:    res.ExpiredTasks,
			Components: res.Components,
			Border:     res.BorderComponents,
			Ghosts:     res.GhostWorkers,
		}
		tr.Pairs = append(tr.Pairs, res.Pairs...)
		traces = append(traces, tr)
		// Rate every other dispatched task so some workers re-home between
		// rounds while others stay busy across several rounds.
		rated := map[int]bool{}
		for _, p := range res.Pairs {
			if rated[p.Task] || p.Task%2 == 0 {
				continue
			}
			rated[p.Task] = true
			if err := c.RateTask(p.Task, 0.5+0.5*float64(p.Task%2)); err != nil {
				t.Fatalf("rate task %d: %v", p.Task, err)
			}
		}
	}
	var qs []uint64
	n := int(c.nextWorkerID.Load())
	for i := 0; i < 12; i++ {
		a, b := (i*7)%n, (i*13+1)%n
		if a == b {
			continue
		}
		q, err := c.Quality(a, b)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, math.Float64bits(q))
	}
	return traces, qs
}

// TestIncrementalClusterMatchesSnapshot is the shard tier's incremental
// guarantee: a cluster maintaining its candidate graph in the persistent
// engine commits bitwise-identical rounds to one rebuilding it from shard
// snapshots — same pairs, scores, uppers, expiry counts, components, and
// final quality estimates — under churn, expiry, and rating re-homes.
func TestIncrementalClusterMatchesSnapshot(t *testing.T) {
	for _, solver := range []string{"TPG", "GT", "GT+LUB"} {
		for _, seed := range []int64{3, 77} {
			base, baseQ := driveIncremental(t, seed, solver)
			dispatched, expired := 0, 0
			for _, tr := range base {
				dispatched += tr.Dispatched
				expired += tr.Expired
			}
			if dispatched == 0 || expired == 0 {
				t.Fatalf("%s seed %d: workload dispatched %d, expired %d; the test is vacuous",
					solver, seed, dispatched, expired)
			}
			got, gotQ := driveIncremental(t, seed, solver, func(cfg *Config) { cfg.Incremental = true })
			if !reflect.DeepEqual(base, got) {
				t.Errorf("%s seed %d: incremental rounds diverge from snapshot\n snapshot:    %+v\n incremental: %+v",
					solver, seed, base, got)
			}
			if !reflect.DeepEqual(baseQ, gotQ) {
				t.Errorf("%s seed %d: final qualities diverge", solver, seed)
			}
		}
	}
}

// TestIncrementalClusterUnderGenerousBudget checks the ladder path: with a
// budget no rung can overrun, budgeted incremental rounds still match the
// budgeted snapshot rounds bitwise.
func TestIncrementalClusterUnderGenerousBudget(t *testing.T) {
	budget := func(cfg *Config) { cfg.SolveBudget = time.Minute }
	base, baseQ := driveIncremental(t, 9, "TPG", budget)
	got, gotQ := driveIncremental(t, 9, "TPG", budget, func(cfg *Config) { cfg.Incremental = true })
	if !reflect.DeepEqual(base, got) {
		t.Errorf("budgeted incremental rounds diverge from snapshot\n snapshot:    %+v\n incremental: %+v", base, got)
	}
	if !reflect.DeepEqual(baseQ, gotQ) {
		t.Error("budgeted final qualities diverge")
	}
}

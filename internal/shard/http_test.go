package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func postJSON(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decoding body: %v", path, err)
	}
	return resp, out
}

// TestHTTPEndToEnd drives the full wire protocol against a 4-shard
// cluster: register, post, batch, rate, quality, status, shards, metrics.
func TestHTTPEndToEnd(t *testing.T) {
	c := newTestCluster(t, 4)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	for i := 0; i < 4; i++ {
		resp, out := postJSON(t, srv, "/workers",
			fmt.Sprintf(`{"x":%g,"y":0.31,"speed":0.05,"radius":0.2}`, 0.3+float64(i)/50))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /workers: %d %v", resp.StatusCode, out)
		}
	}
	resp, out := postJSON(t, srv, "/tasks", `{"x":0.33,"y":0.3,"capacity":3,"deadline":5}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /tasks: %d %v", resp.StatusCode, out)
	}
	taskID := int(out["id"].(float64))

	resp, out = postJSON(t, srv, "/batch", `{"solver":"GT"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /batch: %d %v", resp.StatusCode, out)
	}
	if disp := out["dispatched_tasks"].(float64); disp != 1 {
		t.Fatalf("dispatched %v tasks, want 1 (body %v)", disp, out)
	}
	if _, ok := out["components"]; !ok {
		t.Error("batch response missing sharding observability fields")
	}

	resp, out = postJSON(t, srv, "/ratings", fmt.Sprintf(`{"task_id":%d,"score":1}`, taskID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ratings: %d %v", resp.StatusCode, out)
	}
	resp, _ = postJSON(t, srv, "/ratings", fmt.Sprintf(`{"task_id":%d,"score":1}`, taskID))
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("double rating: %d, want 409", resp.StatusCode)
	}

	qresp, err := http.Get(srv.URL + "/quality?i=0&k=1")
	if err != nil {
		t.Fatal(err)
	}
	var q map[string]float64
	_ = json.NewDecoder(qresp.Body).Decode(&q)
	qresp.Body.Close()
	if q["quality"] != 0.75 {
		t.Errorf("quality = %v, want 0.75 after a 1.0 rating", q["quality"])
	}

	sresp, err := http.Get(srv.URL + "/shards")
	if err != nil {
		t.Fatal(err)
	}
	var perShard []ShardStatus
	_ = json.NewDecoder(sresp.Body).Decode(&perShard)
	sresp.Body.Close()
	if len(perShard) != 4 {
		t.Errorf("GET /shards returned %d entries, want 4", len(perShard))
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		MetricShardWorkers, MetricShardHandoffs, MetricClusterBatches, MetricClusterScore,
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("GET /metrics missing %s", series)
		}
	}
	if !strings.Contains(string(body), `shard="0"`) {
		t.Error("GET /metrics missing shard labels")
	}
}

// TestHTTPAdmissionShedding pins the 503 + Retry-After contract: with a
// one-token bucket the second mutating request in the same instant is shed
// with a whole-second Retry-After hint, and read endpoints stay open.
func TestHTTPAdmissionShedding(t *testing.T) {
	advance := withFakeClock(t)
	c := newTestCluster(t, 2, func(cfg *Config) {
		cfg.AdmissionRate = 0.5
		cfg.AdmissionBurst = 1
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resp, _ := postJSON(t, srv, "/workers", `{"x":0.5,"y":0.5,"speed":0.05,"radius":0.1}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first request shed: %d", resp.StatusCode)
	}
	resp, out := postJSON(t, srv, "/workers", `{"x":0.5,"y":0.5,"speed":0.05,"radius":0.1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request: %d %v, want 503", resp.StatusCode, out)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Errorf("Retry-After = %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}
	if gresp, err := http.Get(srv.URL + "/status"); err != nil || gresp.StatusCode != http.StatusOK {
		t.Errorf("GET /status while shedding: %v %v", gresp, err)
	} else {
		gresp.Body.Close()
	}
	// After the advertised wait the bucket has recovered a token.
	advance(time.Duration(retry) * time.Second)
	resp, _ = postJSON(t, srv, "/workers", `{"x":0.5,"y":0.5,"speed":0.05,"radius":0.1}`)
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("request after Retry-After still shed: %d", resp.StatusCode)
	}
	if c.admission.shed.Value() == 0 {
		t.Error("casc_admission_shed_total not incremented")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	c := newTestCluster(t, 2)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	for _, tc := range []struct{ path, body string }{
		{"/workers", `{"x":0.5,"y":0.5,"speed":-1,"radius":0.1}`},
		{"/workers", `{"nope":1}`},
		{"/tasks", `{"x":0.5,"y":0.5,"capacity":1,"deadline":5}`},
		{"/batch", `{"solver":"NOPE"}`},
	} {
		resp, _ := postJSON(t, srv, tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %s: %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
	qresp, err := http.Get(srv.URL + "/quality?i=zero&k=1")
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /quality with bad params: %d, want 400", qresp.StatusCode)
	}
}

package shard

import (
	"testing"

	"casc/internal/geo"
)

func TestNewGeometryValidation(t *testing.T) {
	if _, err := NewGeometry(0, 0); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewGeometry(4, 17); err == nil {
		t.Error("K above cell count accepted")
	}
	g, err := NewGeometry(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Resolution != DefaultResolution {
		t.Errorf("Resolution = %d, want default %d", g.Resolution, DefaultResolution)
	}
}

// TestGeometryPartition checks the ownership map is a partition: every
// cell belongs to exactly one shard, shard IDs are contiguous starting at
// zero, and ownership is monotone in the cell index (contiguous bands).
func TestGeometryPartition(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8} {
		g, err := NewGeometry(8, k)
		if err != nil {
			t.Fatal(err)
		}
		prev := 0
		seen := make(map[int]bool)
		for cell := 0; cell < g.Cells(); cell++ {
			s := g.ShardOfCell(cell)
			if s < 0 || s >= k {
				t.Fatalf("K=%d: cell %d maps to shard %d", k, cell, s)
			}
			if s < prev {
				t.Fatalf("K=%d: ownership not monotone at cell %d", k, cell)
			}
			prev = s
			seen[s] = true
		}
		if len(seen) != k {
			t.Errorf("K=%d: only %d shards own cells", k, len(seen))
		}
	}
}

func TestGeometryClamping(t *testing.T) {
	g, err := NewGeometry(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []geo.Point{
		geo.Pt(-1, -1), geo.Pt(0, 0), geo.Pt(1, 1), geo.Pt(2, 2), geo.Pt(0.5, -0.5),
	} {
		cell := g.CellOf(p)
		if cell < 0 || cell >= g.Cells() {
			t.Errorf("CellOf(%v) = %d outside [0,%d)", p, cell, g.Cells())
		}
		s := g.ShardOf(p)
		if s < 0 || s >= 2 {
			t.Errorf("ShardOf(%v) = %d", p, s)
		}
	}
}

package shard

import "time"

// now is the package wall clock used for admission-control refills and
// solve-latency instrumentation. It is a variable holding time.Now rather
// than direct calls so tests can substitute a fake and so no assignment
// path reads the wall clock directly — the seededrand invariant casc-lint
// enforces for this package.
var now = time.Now

package incremental_test

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"casc/internal/assign"
	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/incremental"
	"casc/internal/model"
	"casc/internal/stats"
)

// FuzzIncrementalDirtySet drives the engine through a script of random
// churn (arrivals with future time gates, expiries, removals) and checks
// the three pillars of the engine contract against a from-scratch oracle
// every round:
//
//  1. the maintained candidate graph equals BuildCandidates on a fresh
//     instance of the same population,
//  2. the engine's assignment is bitwise identical to solving that fresh
//     instance directly (dirty-set completeness: a missed dirty component
//     would carry a stale assignment and diverge), and
//  3. every component carried as clean has an identical membership and
//     edge fingerprint to the previous round (dirty-set soundness of the
//     carry decision, independent of whether the solver output happens to
//     coincide).
func FuzzIncrementalDirtySet(f *testing.F) {
	f.Add(int64(1), []byte{3, 5, 2, 9, 1, 4, 7, 0, 6, 2})
	f.Add(int64(7), []byte{8, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add(int64(42), []byte{2, 2, 2, 2, 16, 16, 1, 3})
	f.Add(int64(99), []byte{12, 1, 1, 9, 9, 9, 0, 0, 4})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		if len(script) == 0 {
			t.Skip("empty script")
		}
		const B = 2
		eng := incremental.New(incremental.Config{B: B, Carry: true, Seed: seed})
		base := coop.Synthetic{N: 4096, Seed: uint64(seed) + 1}
		rng := stats.NewRNG(seed)
		solver := assign.NewTPG()
		ctx := context.Background()

		pos := 0
		next := func() int { b := int(script[pos%len(script)]); pos++; return b }
		nextW, nextT := 0, 0
		prevFP := map[string]string{}

		rounds := 3 + next()%6
		for round := 0; round < rounds; round++ {
			now := float64(round)
			eng.BeginRound(now)

			for i, nw := 0, next()%5; i < nw && nextW < 4000; i++ {
				eng.AddWorker(model.Worker{
					ID:  nextW,
					Loc: geo.Pt(rng.Float64(), rng.Float64()),
					// Radii large enough that components overlap and merge.
					Speed:  0.05 + rng.Float64()*0.1,
					Radius: 0.05 + rng.Float64()*0.2,
					// Future arrivals exercise the time-gate flips.
					Arrive: now + float64(next()%3) - 1,
				})
				nextW++
			}
			for i, nt := 0, next()%5; i < nt; i++ {
				eng.AddTask(model.Task{
					ID:       nextT,
					Loc:      geo.Pt(rng.Float64(), rng.Float64()),
					Capacity: B + next()%3,
					Created:  now + float64(next()%2),
					Deadline: now + 0.5 + float64(next()%4),
				})
				nextT++
			}

			r := eng.Plan()
			in := r.In
			ids := make([]int, len(in.Workers))
			for i, w := range in.Workers {
				ids[i] = w.ID
			}
			in.Quality = coop.NewSubset(base, ids)

			// Oracle 1: candidate graph equals a fresh build.
			fresh := &model.Instance{B: B, Now: now}
			fresh.Workers = append([]model.Worker(nil), in.Workers...)
			fresh.Tasks = append([]model.Task(nil), in.Tasks...)
			fresh.Quality = in.Quality
			fresh.BuildCandidates(model.IndexRTree)
			if err := candEqual(in.WorkerCand, fresh.WorkerCand); err != nil {
				t.Fatalf("round %d: WorkerCand diverges from fresh build: %v", round, err)
			}
			if err := candEqual(in.TaskCand, fresh.TaskCand); err != nil {
				t.Fatalf("round %d: TaskCand diverges from fresh build: %v", round, err)
			}

			// Oracle 2: bitwise solve equivalence against the fresh instance.
			a, err := eng.Solve(ctx, solver)
			if err != nil {
				t.Fatal(err)
			}
			want, err := solver.Solve(ctx, fresh)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Validate(in); err != nil {
				t.Fatalf("round %d: invalid engine assignment: %v", round, err)
			}
			gotPairs, wantPairs := a.Pairs(), want.Pairs()
			if len(gotPairs) != len(wantPairs) {
				t.Fatalf("round %d: %d pairs != fresh %d\nengine %v (score %v)\nfresh  %v (score %v)\ndirty %v",
					round, len(gotPairs), len(wantPairs), gotPairs, a.TotalScore(in), wantPairs, want.TotalScore(fresh), r.Dirty)
			}
			for i := range gotPairs {
				if gotPairs[i] != wantPairs[i] {
					t.Fatalf("round %d: pair %d: %+v != fresh %+v", round, i, gotPairs[i], wantPairs[i])
				}
			}
			if g, w := a.TotalScore(in), want.TotalScore(fresh); math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("round %d: score %v != fresh %v", round, g, w)
			}

			// Oracle 3: components carried clean must be fingerprint-stable.
			curFP := make(map[string]string, len(r.Comps))
			for ci, c := range r.Comps {
				key, full := fingerprint(in, c.Workers, c.Tasks)
				curFP[key] = full
				if r.Dirty[ci] {
					continue
				}
				prev, ok := prevFP[key]
				if !ok {
					t.Fatalf("round %d: component %s carried clean but did not exist last round", round, key)
				}
				if prev != full {
					t.Fatalf("round %d: component %s carried clean but changed:\nprev %s\nnow  %s", round, key, prev, full)
				}
			}
			prevFP = curFP

			// Random removals (ascending instance positions).
			var remW, remT []int
			for i := range in.Workers {
				if next()%7 == 0 {
					remW = append(remW, i)
				}
			}
			for j := range in.Tasks {
				if next()%5 == 0 {
					remT = append(remT, j)
				}
			}
			eng.Commit(a, remW, remT)
		}
	})
}

// candEqual compares candidate lists treating nil and empty as equal.
func candEqual(got, want [][]int) error {
	if len(got) != len(want) {
		return fmt.Errorf("len %d != %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return fmt.Errorf("entry %d: len %d != %d (%v vs %v)", i, len(got[i]), len(want[i]), got[i], want[i])
		}
		for k := range got[i] {
			if got[i][k] != want[i][k] {
				return fmt.Errorf("entry %d[%d]: %d != %d", i, k, got[i][k], want[i][k])
			}
		}
	}
	return nil
}

// fingerprint renders a component by external IDs: the key identifies the
// component by its sorted worker-ID set, the full form captures exact
// member order, task attributes, and the candidate edges.
func fingerprint(in *model.Instance, workers, tasks []int) (key, full string) {
	wids := make([]int, len(workers))
	for i, w := range workers {
		wids[i] = in.Workers[w].ID
	}
	sorted := append([]int(nil), wids...)
	sort.Ints(sorted)
	var kb strings.Builder
	for _, id := range sorted {
		fmt.Fprintf(&kb, "w%d,", id)
	}

	var fb strings.Builder
	for _, w := range workers {
		fmt.Fprintf(&fb, "w%d;", in.Workers[w].ID)
	}
	for _, tj := range tasks {
		tk := in.Tasks[tj]
		fmt.Fprintf(&fb, "t%d(cap%d,d%g):", tk.ID, tk.Capacity, tk.Deadline)
		for _, wi := range in.TaskCand[tj] {
			fmt.Fprintf(&fb, "w%d,", in.Workers[wi].ID)
		}
		fb.WriteByte(';')
	}
	return kb.String(), fb.String()
}

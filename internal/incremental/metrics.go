package incremental

import "casc/internal/metrics"

// Metric names recorded by the incremental engine.
const (
	// MetricRounds counts engine rounds (one BeginRound..Commit cycle).
	MetricRounds = "casc_incremental_rounds_total"
	// MetricComponentsCarried counts clean components whose previous
	// assignment was carried forward without re-solving.
	MetricComponentsCarried = "casc_incremental_components_carried_total"
	// MetricComponentsResolved counts dirty components re-solved this round.
	MetricComponentsResolved = "casc_incremental_components_resolved_total"
	// MetricEdges gauges the live candidate-edge count (active and gated).
	MetricEdges = "casc_incremental_edges"
	// MetricEdgesAdded counts candidate edges discovered on entity arrival.
	MetricEdgesAdded = "casc_incremental_edges_added_total"
	// MetricEdgesDropped counts candidate edges dropped permanently (slack
	// passed travel time) or by endpoint removal.
	MetricEdgesDropped = "casc_incremental_edges_dropped_total"
	// MetricPrewarmHits counts task arrivals whose candidate discovery was
	// served from a predictor-prebuilt cell list instead of a grid query.
	MetricPrewarmHits = "casc_incremental_prewarm_hits_total"
	// MetricPrewarmMisses counts task arrivals that fell back to a grid
	// query (cold or invalidated cell).
	MetricPrewarmMisses = "casc_incremental_prewarm_misses_total"
)

// engineMetrics resolves the engine's metric handles once at construction.
type engineMetrics struct {
	rounds        *metrics.Counter
	carried       *metrics.Counter
	resolved      *metrics.Counter
	edges         *metrics.Gauge
	edgesAdded    *metrics.Counter
	edgesDropped  *metrics.Counter
	prewarmHits   *metrics.Counter
	prewarmMisses *metrics.Counter
}

func newEngineMetrics(reg *metrics.Registry) *engineMetrics {
	if reg == nil {
		return nil
	}
	return &engineMetrics{
		rounds:        reg.Counter(MetricRounds, "Incremental engine rounds."),
		carried:       reg.Counter(MetricComponentsCarried, "Clean components carried forward without re-solving."),
		resolved:      reg.Counter(MetricComponentsResolved, "Dirty components re-solved."),
		edges:         reg.Gauge(MetricEdges, "Live candidate edges (active and time-gated)."),
		edgesAdded:    reg.Counter(MetricEdgesAdded, "Candidate edges discovered on arrival."),
		edgesDropped:  reg.Counter(MetricEdgesDropped, "Candidate edges dropped (deadline passed travel time or endpoint removed)."),
		prewarmHits:   reg.Counter(MetricPrewarmHits, "Task arrivals served from predictor-prebuilt cell lists."),
		prewarmMisses: reg.Counter(MetricPrewarmMisses, "Task arrivals that fell back to a grid query."),
	}
}

// Package incremental is the persistent cross-round solving engine of the
// batch tier. Instead of rebuilding the candidate graph and re-solving the
// whole instance every round, an Engine owns the live worker/task
// population, maintains the validity graph under arrivals, departures,
// dispatches, and deadline decay, tracks which connected components were
// touched since the previous round, and re-solves only those — carrying the
// previous assignment of every clean component forward verbatim and
// warm-starting the solvers on the dirty ones.
//
// The contract is strict output equivalence: for deterministic solvers
// (TPG, GT, GT+LUB — anything whose result is a pure function of the
// instance), the assignment and score of every round are bitwise identical
// to a from-scratch rebuild-and-solve of the same round. The pillars:
//
//   - Edge exactness. An edge is stored with its travel time once (travel
//     and the radius test depend only on static locations) and the full
//     validity predicate of Definition 3 is re-evaluated against it every
//     round, so the active edge set equals BuildCandidates' output exactly.
//     Slack only shrinks, so travel > slack drops an edge permanently;
//     the time gates (task created, worker arrived) can only switch an
//     edge on, and any flip dirties both endpoints.
//   - Dirty completeness. Component membership can only change through an
//     added, removed, or flipped edge, or an added/removed entity — every
//     one of which dirties the entities involved. A component with no dirty
//     member therefore has identical membership, edges, entity attributes,
//     and (by the caller's quality contract) qualities — its previous
//     solution, replayed in recorded member order, is the solution a fresh
//     solve would produce. A membership record check backs this argument
//     with a runtime verification: on any mismatch the component is
//     re-solved rather than carried.
//   - Order preservation. Entity order mirrors the from-scratch engine's
//     (arrival order with order-preserving compaction, or ascending
//     external ID under OrderByID), candidate lists are built by the same
//     position-major passes as BuildCandidates, and carried groups replay
//     in their original member order, keeping every position-sensitive
//     tie-break and float summation order intact.
package incremental

import (
	"context"
	"sort"

	"casc/internal/assign"
	"casc/internal/geo"
	"casc/internal/grid"
	"casc/internal/metrics"
	"casc/internal/model"
	"casc/internal/partition"
)

// Config configures an Engine.
type Config struct {
	// B is the least group size, fixed for the engine's lifetime.
	B int
	// Travel optionally overrides the Euclidean travel-time model; it must
	// be a pure function of the (worker, task) pair, since the engine
	// evaluates it once per edge at discovery.
	Travel model.TravelFunc
	// OrderByID keeps workers and tasks sorted ascending by external ID
	// (the shard tier's ordering); default is arrival order with
	// order-preserving compaction (the batch tier's ordering).
	OrderByID bool
	// Carry enables clean-component carry-forward and solver warm-starts.
	// It requires the caller's Quality model to be a fixed function of
	// worker external IDs across rounds; callers that cannot promise that
	// (the shard tier's mutating history) leave it off and still get
	// incremental graph maintenance.
	Carry bool
	// Seed is the base seed from which per-component seeds are derived for
	// seed-taking solvers, matching assign.Parallel's derivation.
	Seed int64
	// Metrics, when non-nil, receives the casc_incremental_* series.
	Metrics *metrics.Registry
	// Predict configures the arrival predictor (zero value: disabled).
	Predict PredictConfig
}

// workerState is one live worker. States are heap-allocated once and
// referenced by pointer from edges, so compaction never invalidates them.
type workerState struct {
	uid   int
	pos   int // position in the current round's instance
	w     model.Worker
	back  []*taskState // tasks holding an edge to this worker
	dirty bool
}

// taskState is one live task; it owns the edge records.
type taskState struct {
	uid   int
	pos   int
	t     model.Task
	adj   []tEdge
	dirty bool
}

// tEdge is one candidate edge, stored on the task side. travel is computed
// once at discovery; active caches last round's validity verdict.
type tEdge struct {
	w      *workerState
	travel float64
	active bool
}

// record is a clean-carry snapshot of one component's assignment, keyed by
// the uid of the component's first worker. Members are stored as uids in
// component order so survival and order can be verified exactly; groups
// store worker members as local indices in original commit order.
type record struct {
	workerUIDs []int
	taskUIDs   []int
	groups     [][]int // per local task index; nil entry = empty group
}

// Round is one planned engine round: the assembled instance (Quality is
// left nil for the caller to set before Solve), its components, and the
// per-component dirty classification. Carried/Resolved are filled by Solve.
type Round struct {
	In    *model.Instance
	Comps []partition.Component
	Dirty []bool
	// Carried and Resolved count clean-carried and re-solved components
	// after Solve.
	Carried  int
	Resolved int
}

// Engine is the persistent incremental solving engine. It is not safe for
// concurrent use; the intended cadence per round is
// BeginRound → AddWorker*/AddTask* → Plan → (caller sets Quality) → Solve →
// Commit.
type Engine struct {
	cfg Config
	em  *engineMetrics

	now     float64
	nextUID int

	workers []*workerState
	tasks   []*taskState
	wByUID  map[int]*workerState
	tByUID  map[int]*taskState
	wGrid   *grid.Index
	tGrid   *grid.Index

	maxRadius float64
	edgeCount int

	dirtyW []*workerState
	dirtyT []*taskState

	records map[int]*record
	warm    *assign.Warm
	pred    *predictor
	// arena is the engine-owned solver scratch, attached to every
	// per-component fork in Solve. Components are solved serially and each
	// arena-owned result is lifted into the round assignment before the
	// next component recycles the memory, so one arena serves the whole
	// engine lifetime — steady-state rounds allocate nothing in the
	// solver.
	arena *assign.Arena

	// Per-round scratch, reused across rounds.
	in        model.Instance
	bufs      model.CandidateBuffers
	builder   *partition.Builder
	round     Round
	searchBuf []int
	wLocalIdx []int // parent worker pos -> local index within a component
	wLocalGen []int // generation marker for wLocalIdx validity
	localGen  int
	expired   []int
}

// New returns an empty engine.
func New(cfg Config) *Engine {
	e := &Engine{
		cfg:     cfg,
		em:      newEngineMetrics(cfg.Metrics),
		wByUID:  make(map[int]*workerState),
		tByUID:  make(map[int]*taskState),
		wGrid:   grid.New(0),
		tGrid:   grid.New(0),
		records: make(map[int]*record),
		builder: partition.NewBuilder(),
		pred:    newPredictor(cfg.Predict),
	}
	if cfg.Carry {
		e.warm = assign.NewWarm()
	}
	return e
}

// NumWorkers returns the live worker count.
func (e *Engine) NumWorkers() int { return len(e.workers) }

// NumTasks returns the live task count.
func (e *Engine) NumTasks() int { return len(e.tasks) }

// travelTime evaluates the configured travel model for a pair.
func (e *Engine) travelTime(w model.Worker, t model.Task) float64 {
	if e.cfg.Travel != nil {
		return e.cfg.Travel(w, t)
	}
	return geo.TravelTime(w.Loc, t.Loc, w.Speed)
}

func (e *Engine) markWorkerDirty(ws *workerState) {
	if !ws.dirty {
		ws.dirty = true
		e.dirtyW = append(e.dirtyW, ws)
	}
}

func (e *Engine) markTaskDirty(ts *taskState) {
	if !ts.dirty {
		ts.dirty = true
		e.dirtyT = append(e.dirtyT, ts)
	}
}

// BeginRound advances the engine to timestamp now: tasks past their
// deadline are expired (same predicate as the from-scratch engine: a task
// survives only while Deadline > now), every surviving edge is re-checked
// against the exact validity predicate, and the predictor rolls its
// forecast. It returns the external IDs of the tasks expired this round,
// in entity order.
func (e *Engine) BeginRound(now float64) []int {
	e.now = now
	if e.em != nil {
		e.em.rounds.Inc()
	}

	// Expiry sweep, order-preserving.
	e.expired = e.expired[:0]
	kept := e.tasks[:0]
	for _, ts := range e.tasks {
		if ts.t.Deadline > now {
			kept = append(kept, ts)
			continue
		}
		e.expired = append(e.expired, ts.t.ID)
		e.dropTask(ts)
	}
	e.tasks = kept

	// Edge re-evaluation: the stored travel plus the live time terms
	// reproduce Definition 3 exactly (the radius test is location-static
	// and held at discovery).
	for _, ts := range e.tasks {
		slack := ts.t.Deadline - now
		for k := 0; k < len(ts.adj); {
			ed := &ts.adj[k]
			if ed.travel > slack {
				// Slack only shrinks: this edge can never be valid again.
				if ed.active {
					e.markWorkerDirty(ed.w)
					e.markTaskDirty(ts)
				}
				e.unlink(ed.w, ts)
				ts.adj[k] = ts.adj[len(ts.adj)-1]
				ts.adj = ts.adj[:len(ts.adj)-1]
				e.edgeCount--
				if e.em != nil {
					e.em.edgesDropped.Inc()
				}
				continue
			}
			active := ts.t.Created <= now && ed.w.w.Arrive <= now
			if active != ed.active {
				ed.active = active
				e.markWorkerDirty(ed.w)
				e.markTaskDirty(ts)
			}
			k++
		}
	}

	if e.pred != nil {
		e.pred.roll(e.maxRadius, e.wGrid.SearchCircle)
	}
	return e.expired
}

// dropTask removes ts's edges and index entries (ts itself is compacted by
// the caller). Workers that were actively connected become dirty.
func (e *Engine) dropTask(ts *taskState) {
	for i := range ts.adj {
		ed := &ts.adj[i]
		if ed.active {
			e.markWorkerDirty(ed.w)
		}
		e.unlink(ed.w, ts)
	}
	e.edgeCount -= len(ts.adj)
	if e.em != nil {
		e.em.edgesDropped.Add(uint64(len(ts.adj)))
	}
	ts.adj = nil
	e.tGrid.Delete(ts.t.Loc, ts.uid)
	delete(e.tByUID, ts.uid)
}

// dropWorker removes ws's edges and index entries. Tasks that were actively
// connected become dirty.
func (e *Engine) dropWorker(ws *workerState) {
	for _, ts := range ws.back {
		for k := range ts.adj {
			if ts.adj[k].w == ws {
				if ts.adj[k].active {
					e.markTaskDirty(ts)
				}
				ts.adj[k] = ts.adj[len(ts.adj)-1]
				ts.adj = ts.adj[:len(ts.adj)-1]
				e.edgeCount--
				if e.em != nil {
					e.em.edgesDropped.Inc()
				}
				break
			}
		}
	}
	ws.back = nil
	e.wGrid.Delete(ws.w.Loc, ws.uid)
	delete(e.wByUID, ws.uid)
}

// unlink removes ts from ws's back list.
func (e *Engine) unlink(ws *workerState, ts *taskState) {
	for i, b := range ws.back {
		if b == ts {
			ws.back[i] = ws.back[len(ws.back)-1]
			ws.back = ws.back[:len(ws.back)-1]
			return
		}
	}
}

// AddWorker admits a worker and discovers its candidate edges through the
// task index. Call between BeginRound and Plan.
func (e *Engine) AddWorker(w model.Worker) {
	ws := &workerState{uid: e.nextUID, w: w}
	e.nextUID++
	e.workers = append(e.workers, ws)
	e.wByUID[ws.uid] = ws
	e.wGrid.Insert(w.Loc, ws.uid)
	if w.Radius > e.maxRadius {
		e.maxRadius = w.Radius
	}
	if e.pred != nil {
		e.pred.workerAdded(w.Loc, w.Radius)
	}
	e.markWorkerDirty(ws)

	// The grid search is exact on d ≤ Radius, so only the travel and time
	// terms remain to evaluate.
	e.searchBuf = e.tGrid.SearchCircle(w.Loc, w.Radius, e.searchBuf[:0])
	for _, uid := range e.searchBuf {
		ts := e.tByUID[uid]
		e.link(ws, ts)
	}
}

// link discovers the edge (ws, ts) if it can ever be valid, and appends it.
func (e *Engine) link(ws *workerState, ts *taskState) {
	slack := ts.t.Deadline - e.now
	travel := e.travelTime(ws.w, ts.t)
	if travel > slack {
		// Already unreachable; slack only shrinks, so never add the edge.
		return
	}
	active := ts.t.Created <= e.now && ws.w.Arrive <= e.now
	ts.adj = append(ts.adj, tEdge{w: ws, travel: travel, active: active})
	ws.back = append(ws.back, ts)
	e.edgeCount++
	if e.em != nil {
		e.em.edgesAdded.Inc()
	}
}

// AddTask admits a task and discovers its candidate edges, preferring a
// predictor-prebuilt worker list for the task's cell over a grid query.
// Call between BeginRound and Plan.
func (e *Engine) AddTask(t model.Task) {
	ts := &taskState{uid: e.nextUID, t: t}
	e.nextUID++
	e.tasks = append(e.tasks, ts)
	e.tByUID[ts.uid] = ts
	e.tGrid.Insert(t.Loc, ts.uid)
	e.markTaskDirty(ts)

	var cands []int
	prewarmed := false
	if e.pred != nil {
		e.pred.observeArrival(t.Loc)
		if l := e.pred.list(t.Loc); l != nil {
			cands, prewarmed = l, true
		}
	}
	if !prewarmed {
		e.searchBuf = e.wGrid.SearchCircle(t.Loc, e.maxRadius, e.searchBuf[:0])
		cands = e.searchBuf
	}
	if e.em != nil {
		if prewarmed {
			e.em.prewarmHits.Inc()
		} else {
			e.em.prewarmMisses.Inc()
		}
	}
	for _, uid := range cands {
		ws := e.wByUID[uid]
		if ws == nil {
			continue // stale prewarm entry for a removed worker
		}
		// Both discovery paths over-approximate on the radius term (the
		// grid query uses maxRadius, prewarm lists the cell superset), so
		// the exact disc test applies here.
		if ws.w.Loc.Dist(t.Loc) > ws.w.Radius {
			continue
		}
		e.link(ws, ts)
	}
}

// Plan assembles the round: entity ordering, the instance (Quality left
// nil for the caller), candidate lists from the maintained adjacency, the
// component partition, and the per-component dirty classification.
func (e *Engine) Plan() *Round {
	if e.cfg.OrderByID {
		sortByID(e.workers, e.tasks)
	}
	for i, ws := range e.workers {
		ws.pos = i
	}
	for j, ts := range e.tasks {
		ts.pos = j
	}

	e.in.B = e.cfg.B
	e.in.Now = e.now
	e.in.Travel = e.cfg.Travel
	e.in.Quality = nil
	e.in.Workers = e.in.Workers[:0]
	for _, ws := range e.workers {
		e.in.Workers = append(e.in.Workers, ws.w)
	}
	e.in.Tasks = e.in.Tasks[:0]
	for _, ts := range e.tasks {
		e.in.Tasks = append(e.in.Tasks, ts.t)
	}

	// Task-major fill: ascending task positions append ascending into each
	// worker's list; DeriveTaskCand then mirrors BuildCandidates'
	// worker-major pass. Both lists come out identical to a fresh build.
	e.bufs.Reset(len(e.workers), len(e.tasks))
	for j, ts := range e.tasks {
		for i := range ts.adj {
			if ts.adj[i].active {
				w := ts.adj[i].w
				e.bufs.WorkerCand[w.pos] = append(e.bufs.WorkerCand[w.pos], j)
			}
		}
	}
	e.bufs.DeriveTaskCand()
	e.bufs.Install(&e.in)
	if e.em != nil {
		e.em.edges.Set(float64(e.edgeCount))
	}

	comps := e.builder.Build(partition.Adjacency{WorkerCand: e.in.WorkerCand, TaskCand: e.in.TaskCand})
	dirty := e.round.Dirty[:0]
	for _, c := range comps {
		dirty = append(dirty, e.classify(c))
	}
	e.round = Round{In: &e.in, Comps: comps, Dirty: dirty}
	return &e.round
}

// classify reports whether a component must be re-solved: any dirty member,
// or (under Carry) no verified record of its exact membership.
func (e *Engine) classify(c partition.Component) bool {
	for _, w := range c.Workers {
		if e.workers[w].dirty {
			return true
		}
	}
	for _, t := range c.Tasks {
		if e.tasks[t].dirty {
			return true
		}
	}
	if !e.cfg.Carry {
		return true
	}
	rec := e.records[e.workers[c.Workers[0]].uid]
	if rec == nil || len(rec.workerUIDs) != len(c.Workers) || len(rec.taskUIDs) != len(c.Tasks) {
		return true
	}
	for i, w := range c.Workers {
		if rec.workerUIDs[i] != e.workers[w].uid {
			return true
		}
	}
	for i, t := range c.Tasks {
		if rec.taskUIDs[i] != e.tasks[t].uid {
			return true
		}
	}
	return false
}

// Solve produces the round's assignment: clean components replay their
// recorded groups, dirty components are re-solved on their sub-instance
// (warm-started under Carry) and lifted back. The caller must have set
// Quality on the planned instance. For deterministic solvers the result is
// bitwise identical to solver.Solve on the full instance.
func (e *Engine) Solve(ctx context.Context, solver assign.Solver) (*model.Assignment, error) {
	r := &e.round
	a := model.NewAssignment(r.In)
	r.Carried, r.Resolved = 0, 0
	for ci, c := range r.Comps {
		if ctx.Err() != nil {
			break
		}
		if !r.Dirty[ci] {
			e.replay(c, a)
			r.Carried++
			continue
		}
		sub, idx := r.In.SubInstance(c.Workers, c.Tasks)
		s := solver
		if f, ok := solver.(assign.Forker); ok {
			// Mirror assign.Parallel's per-component seed derivation so
			// seed-taking solvers see the same seeds either way.
			s = f.Fork(assign.ComponentSeed(e.cfg.Seed, c.Key()))
			// Forks are throwaway, so hand them the engine's arena (solves
			// are serial and each result is lifted before the next solve).
			// A non-Forker solver keeps whatever arena its owner set.
			if h, ok := s.(assign.ArenaHolder); ok {
				if e.arena == nil {
					e.arena = assign.NewArena()
				}
				h.SetArena(e.arena)
			}
		}
		sa, err := assign.SolveMaybeWarm(ctx, s, sub, e.warm)
		if err != nil {
			return nil, err
		}
		if sa != nil {
			idx.Lift(sa, a)
		}
		r.Resolved++
	}
	if e.em != nil {
		e.em.carried.Add(uint64(r.Carried))
		e.em.resolved.Add(uint64(r.Resolved))
	}
	return a, nil
}

// replay applies a clean component's recorded groups onto a, in the exact
// member order they were committed.
func (e *Engine) replay(c partition.Component, a *model.Assignment) {
	rec := e.records[e.workers[c.Workers[0]].uid]
	for li, g := range rec.groups {
		t := c.Tasks[li]
		for _, wi := range g {
			a.Assign(c.Workers[wi], t)
		}
	}
}

// Commit ends the round: it snapshots carry records from the assignment,
// clears the consumed dirty state, removes the dispatched/departed entities
// (given as positions in the planned instance), and prunes the warm cache.
// Neighbors of removed entities become dirty for the next round.
func (e *Engine) Commit(a *model.Assignment, removeWorkers, removeTasks []int) {
	r := &e.round
	removedW := make([]bool, len(e.workers))
	for _, i := range removeWorkers {
		removedW[i] = true
	}
	removedT := make([]bool, len(e.tasks))
	for _, j := range removeTasks {
		removedT[j] = true
	}

	if e.cfg.Carry && a != nil {
		e.snapshotRecords(a, removedW, removedT)
	}

	// The round's dirty state was consumed by Plan; reset it before the
	// removals below seed next round's.
	for _, ws := range e.dirtyW {
		ws.dirty = false
	}
	e.dirtyW = e.dirtyW[:0]
	for _, ts := range e.dirtyT {
		ts.dirty = false
	}
	e.dirtyT = e.dirtyT[:0]

	if len(removeWorkers) > 0 {
		kept := e.workers[:0]
		for i, ws := range e.workers {
			if removedW[i] {
				e.dropWorker(ws)
				continue
			}
			kept = append(kept, ws)
		}
		e.workers = kept
	}
	if len(removeTasks) > 0 {
		kept := e.tasks[:0]
		for j, ts := range e.tasks {
			if removedT[j] {
				e.dropTask(ts)
				continue
			}
			kept = append(kept, ts)
		}
		e.tasks = kept
	}

	if e.warm != nil {
		e.warm.Prune(e.taskIDLive)
	}
	r.In = nil
}

// taskIDLive reports whether any live task carries the external ID.
func (e *Engine) taskIDLive(id int) bool {
	for _, ts := range e.tasks {
		if ts.t.ID == id {
			return true
		}
	}
	return false
}

// snapshotRecords rebuilds the carry records from this round's assignment:
// one record per component with no removed member, keyed by first-worker
// uid. Components losing a member are left unrecorded — they will be dirty
// next round anyway, and a stale record could never verify.
func (e *Engine) snapshotRecords(a *model.Assignment, removedW, removedT []bool) {
	if cap(e.wLocalIdx) < len(e.workers) {
		e.wLocalIdx = make([]int, len(e.workers))
		e.wLocalGen = make([]int, len(e.workers))
	}
	e.wLocalIdx = e.wLocalIdx[:len(e.workers)]
	e.wLocalGen = e.wLocalGen[:len(e.workers)]

	records := make(map[int]*record, len(e.round.Comps))
	for _, c := range e.round.Comps {
		if e.anyRemoved(c, removedW, removedT) {
			continue
		}
		e.localGen++
		rec := &record{
			workerUIDs: make([]int, len(c.Workers)),
			taskUIDs:   make([]int, len(c.Tasks)),
			groups:     make([][]int, len(c.Tasks)),
		}
		for li, w := range c.Workers {
			rec.workerUIDs[li] = e.workers[w].uid
			e.wLocalIdx[w] = li
			e.wLocalGen[w] = e.localGen
		}
		for li, t := range c.Tasks {
			rec.taskUIDs[li] = e.tasks[t].uid
			ws := a.TaskWorkers[t]
			if len(ws) == 0 {
				continue
			}
			g := make([]int, len(ws))
			for gi, w := range ws {
				if e.wLocalGen[w] != e.localGen {
					panic("incremental: assigned worker outside its component")
				}
				g[gi] = e.wLocalIdx[w]
			}
			rec.groups[li] = g
		}
		records[rec.workerUIDs[0]] = rec
	}
	e.records = records
}

// sortByID orders both entity slices ascending by external ID (the shard
// tier's canonical ordering; IDs are unique there).
func sortByID(ws []*workerState, ts []*taskState) {
	sort.Slice(ws, func(i, j int) bool { return ws[i].w.ID < ws[j].w.ID })
	sort.Slice(ts, func(i, j int) bool { return ts[i].t.ID < ts[j].t.ID })
}

// anyRemoved reports whether the component loses a member this Commit.
func (e *Engine) anyRemoved(c partition.Component, removedW, removedT []bool) bool {
	for _, w := range c.Workers {
		if removedW[w] {
			return true
		}
	}
	for _, t := range c.Tasks {
		if removedT[t] {
			return true
		}
	}
	return false
}

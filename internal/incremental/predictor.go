package incremental

import (
	"math"

	"casc/internal/geo"
)

// PredictConfig tunes the arrival predictor. The predictor is a pure
// performance device: pre-built lists are supersets filtered through the
// exact validity predicate, so enabling it never changes any result.
type PredictConfig struct {
	// Cells is the predictor grid resolution per axis over the unit square;
	// 0 disables the predictor.
	Cells int
	// Alpha is the EWMA smoothing factor applied to per-round task-arrival
	// counts per cell (0 < Alpha ≤ 1; 0 defaults to 0.3).
	Alpha float64
	// Threshold is the smoothed arrivals-per-round level at which a cell is
	// considered hot and gets a pre-built worker list (0 defaults to 0.5).
	Threshold float64
}

// predictor forecasts where the next round's tasks will arrive (a seeded
// EWMA over per-grid-cell arrival counts) and pre-builds, for each hot
// cell, the superset of workers whose working area can intersect the cell.
// A task arriving in a warm cell then filters that list through the exact
// validity predicate instead of running a spatial query.
//
// Soundness of the superset: a worker w can serve a task t in cell c only
// if d(w, t) ≤ w.Radius, hence d(w, center(c)) ≤ w.Radius + halfDiag ≤
// maxRadius + halfDiag. Lists are built with that radius; workers added
// later invalidate every cell they could ever serve (using their own
// radius, which also covers maxRadius growth), and removed workers are
// skipped at use time by the engine's liveness lookup.
type predictor struct {
	cells     int
	alpha     float64
	threshold float64
	halfDiag  float64

	counts []int     // this round's task arrivals per cell
	ewma   []float64 // smoothed arrivals per round per cell
	lists  [][]int   // per cell: pre-built worker uid superset; nil = cold
	listR  []float64 // query radius each list was built with
}

func newPredictor(cfg PredictConfig) *predictor {
	if cfg.Cells <= 0 {
		return nil
	}
	alpha := cfg.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}
	n := cfg.Cells * cfg.Cells
	return &predictor{
		cells:     cfg.Cells,
		alpha:     alpha,
		threshold: threshold,
		halfDiag:  math.Sqrt2 / (2 * float64(cfg.Cells)),
		counts:    make([]int, n),
		ewma:      make([]float64, n),
		lists:     make([][]int, n),
		listR:     make([]float64, n),
	}
}

// cellOf maps a point to its cell index, clamping to the unit square.
func (p *predictor) cellOf(pt geo.Point) int {
	clamp := func(v float64) int {
		i := int(v * float64(p.cells))
		if i < 0 {
			return 0
		}
		if i >= p.cells {
			return p.cells - 1
		}
		return i
	}
	return clamp(pt.Y)*p.cells + clamp(pt.X)
}

// center returns the center point of cell c.
func (p *predictor) center(c int) geo.Point {
	step := 1 / float64(p.cells)
	return geo.Pt((float64(c%p.cells)+0.5)*step, (float64(c/p.cells)+0.5)*step)
}

// observeArrival records a task arrival for this round's cell counts.
func (p *predictor) observeArrival(pt geo.Point) { p.counts[p.cellOf(pt)]++ }

// roll folds this round's counts into the EWMA and resets them, then
// rebuilds the worker list of every hot cold cell through query (a grid
// search by center and radius). Called once per round after expiry.
func (p *predictor) roll(maxRadius float64, query func(c geo.Point, rad float64, dst []int) []int) {
	for c := range p.counts {
		p.ewma[c] = p.alpha*float64(p.counts[c]) + (1-p.alpha)*p.ewma[c]
		p.counts[c] = 0
		if p.ewma[c] >= p.threshold && p.lists[c] == nil {
			r := maxRadius + p.halfDiag
			p.lists[c] = query(p.center(c), r, p.lists[c][:0])
			p.listR[c] = r
		}
	}
}

// list returns the pre-built worker superset for the cell containing pt,
// or nil when the cell is cold or invalidated.
func (p *predictor) list(pt geo.Point) []int { return p.lists[p.cellOf(pt)] }

// workerAdded invalidates every cell list the new worker could belong to:
// cells whose build query would have found it, and cells whose tasks it
// could serve even beyond the build-time radius (its own radius covers
// maxRadius growth since the build).
func (p *predictor) workerAdded(pt geo.Point, radius float64) {
	for c := range p.lists {
		if p.lists[c] == nil {
			continue
		}
		reach := p.listR[c]
		if r := radius + p.halfDiag; r > reach {
			reach = r
		}
		if pt.Dist(p.center(c)) <= reach {
			p.lists[c] = nil
		}
	}
}

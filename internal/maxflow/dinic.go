// Package maxflow implements Dinic's maximum-flow algorithm on integer
// capacities. It is the substrate of the MFLOW baseline from the paper's
// experimental study (§VI-A), which follows GeoCrowd [11]: each batch is
// transformed into a flow network source → workers (capacity 1) → valid
// tasks (capacity 1 per edge) → sink (capacity a_j), and a maximum flow
// yields an assignment maximizing the number of valid worker-and-task pairs.
package maxflow

import "fmt"

// Graph is a flow network under construction. Nodes are dense integers
// [0, n). Add edges with AddEdge, then call MaxFlow once.
type Graph struct {
	n     int
	edges []edge
	head  [][]int32 // adjacency: node -> indices into edges
}

type edge struct {
	to  int32
	cap int32
	// The reverse edge is at index^1 (edges are added in pairs).
}

// NewGraph returns a graph with n nodes and no edges.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("maxflow: negative node count")
	}
	return &Graph{n: n, head: make([][]int32, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge adds a directed edge from u to v with the given capacity and
// returns its edge index (usable with Flow after MaxFlow runs). Capacity
// must be non-negative.
func (g *Graph) AddEdge(u, v, capacity int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic("maxflow: negative capacity")
	}
	idx := len(g.edges)
	g.edges = append(g.edges, edge{to: int32(v), cap: int32(capacity)})
	g.edges = append(g.edges, edge{to: int32(u), cap: 0})
	g.head[u] = append(g.head[u], int32(idx))
	g.head[v] = append(g.head[v], int32(idx+1))
	return idx
}

// Flow returns the amount of flow pushed through the edge returned by
// AddEdge. Call after MaxFlow.
func (g *Graph) Flow(edgeIdx int) int {
	// Residual capacity of the reverse edge equals the flow on the forward.
	return int(g.edges[edgeIdx^1].cap)
}

// MaxFlow computes the maximum flow from s to t using Dinic's algorithm
// (BFS level graph + DFS blocking flows). It runs in O(V^2 E) generally and
// O(E sqrt(V)) on unit-capacity bipartite networks like the MFLOW reduction.
func (g *Graph) MaxFlow(s, t int) int {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		panic("maxflow: source/sink out of range")
	}
	if s == t {
		return 0
	}
	level := make([]int32, g.n)
	iter := make([]int32, g.n)
	queue := make([]int32, 0, g.n)
	total := 0
	for {
		// BFS: build level graph.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], int32(s))
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, ei := range g.head[u] {
				e := g.edges[ei]
				if e.cap > 0 && level[e.to] < 0 {
					level[e.to] = level[u] + 1
					queue = append(queue, e.to)
				}
			}
		}
		if level[t] < 0 {
			return total
		}
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := g.dfs(s, t, int32(1<<30), level, iter)
			if f == 0 {
				break
			}
			total += int(f)
		}
	}
}

func (g *Graph) dfs(u, t int, f int32, level, iter []int32) int32 {
	if u == t {
		return f
	}
	for ; iter[u] < int32(len(g.head[u])); iter[u]++ {
		ei := g.head[u][iter[u]]
		e := &g.edges[ei]
		if e.cap <= 0 || level[e.to] != level[u]+1 {
			continue
		}
		d := g.dfs(int(e.to), t, min32(f, e.cap), level, iter)
		if d > 0 {
			e.cap -= d
			g.edges[ei^1].cap += d
			return d
		}
	}
	return 0
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

package maxflow

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	g := NewGraph(2)
	e := g.AddEdge(0, 1, 5)
	if got := g.MaxFlow(0, 1); got != 5 {
		t.Fatalf("MaxFlow = %d, want 5", got)
	}
	if got := g.Flow(e); got != 5 {
		t.Fatalf("Flow = %d, want 5", got)
	}
}

func TestSourceEqualsSink(t *testing.T) {
	g := NewGraph(1)
	if got := g.MaxFlow(0, 0); got != 0 {
		t.Errorf("MaxFlow(s,s) = %d", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 10)
	if got := g.MaxFlow(0, 2); got != 0 {
		t.Errorf("disconnected MaxFlow = %d", got)
	}
}

func TestSeriesParallel(t *testing.T) {
	// Two parallel paths: 0->1->3 (cap 3) and 0->2->3 (cap 2 bottleneck).
	g := NewGraph(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 3, 4)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 2)
	if got := g.MaxFlow(0, 3); got != 5 {
		t.Errorf("MaxFlow = %d, want 5", got)
	}
}

func TestClassicCLRS(t *testing.T) {
	// The CLRS figure 26.1 network; max flow 23.
	g := NewGraph(6)
	s, v1, v2, v3, v4, tt := 0, 1, 2, 3, 4, 5
	g.AddEdge(s, v1, 16)
	g.AddEdge(s, v2, 13)
	g.AddEdge(v1, v3, 12)
	g.AddEdge(v2, v1, 4)
	g.AddEdge(v2, v4, 14)
	g.AddEdge(v3, v2, 9)
	g.AddEdge(v3, tt, 20)
	g.AddEdge(v4, v3, 7)
	g.AddEdge(v4, tt, 4)
	if got := g.MaxFlow(s, tt); got != 23 {
		t.Errorf("MaxFlow = %d, want 23", got)
	}
}

func TestBipartiteMatching(t *testing.T) {
	// 3 workers, 3 tasks. Worker 0 -> tasks {0}, worker 1 -> {0,1},
	// worker 2 -> {1,2}. Perfect matching of size 3 exists.
	g := NewGraph(8)
	s, t0 := 0, 7
	for w := 0; w < 3; w++ {
		g.AddEdge(s, 1+w, 1)
	}
	for task := 0; task < 3; task++ {
		g.AddEdge(4+task, t0, 1)
	}
	g.AddEdge(1, 4, 1)
	g.AddEdge(2, 4, 1)
	g.AddEdge(2, 5, 1)
	g.AddEdge(3, 5, 1)
	g.AddEdge(3, 6, 1)
	if got := g.MaxFlow(s, t0); got != 3 {
		t.Errorf("matching = %d, want 3", got)
	}
}

func TestFlowDecomposition(t *testing.T) {
	// Check per-edge flow conservation and capacity bounds after MaxFlow.
	r := rand.New(rand.NewSource(1))
	n := 12
	g := NewGraph(n)
	type rec struct{ u, v, cap, idx int }
	var recs []rec
	for i := 0; i < 60; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		c := 1 + r.Intn(9)
		recs = append(recs, rec{u, v, c, g.AddEdge(u, v, c)})
	}
	flow := g.MaxFlow(0, n-1)
	if flow < 0 {
		t.Fatal("negative flow")
	}
	net := make([]int, n)
	for _, rc := range recs {
		f := g.Flow(rc.idx)
		if f < 0 || f > rc.cap {
			t.Fatalf("edge (%d,%d) flow %d outside [0,%d]", rc.u, rc.v, f, rc.cap)
		}
		net[rc.u] -= f
		net[rc.v] += f
	}
	for v := 1; v < n-1; v++ {
		if net[v] != 0 {
			t.Fatalf("conservation violated at node %d: net %d", v, net[v])
		}
	}
	if net[n-1] != flow || net[0] != -flow {
		t.Fatalf("source/sink imbalance: src %d sink %d flow %d", net[0], net[n-1], flow)
	}
}

// bruteMaxFlow computes max flow via repeated DFS augmentation on an
// adjacency-matrix residual graph — the simplest possible reference.
func bruteMaxFlow(n int, cap [][]int, s, t int) int {
	res := make([][]int, n)
	for i := range res {
		res[i] = append([]int(nil), cap[i]...)
	}
	total := 0
	for {
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		stack := []int{s}
		for len(stack) > 0 && parent[t] == -1 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v := 0; v < n; v++ {
				if res[u][v] > 0 && parent[v] == -1 {
					parent[v] = u
					stack = append(stack, v)
				}
			}
		}
		if parent[t] == -1 {
			return total
		}
		aug := 1 << 30
		for v := t; v != s; v = parent[v] {
			if res[parent[v]][v] < aug {
				aug = res[parent[v]][v]
			}
		}
		for v := t; v != s; v = parent[v] {
			res[parent[v]][v] -= aug
			res[v][parent[v]] += aug
		}
		total += aug
	}
}

func TestRandomAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(8)
		capm := make([][]int, n)
		for i := range capm {
			capm[i] = make([]int, n)
		}
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && r.Float64() < 0.4 {
					c := r.Intn(10)
					capm[i][j] += c
					g.AddEdge(i, j, c)
				}
			}
		}
		want := bruteMaxFlow(n, capm, 0, n-1)
		got := g.MaxFlow(0, n-1)
		if got != want {
			t.Fatalf("trial %d (n=%d): Dinic=%d brute=%d", trial, n, got, want)
		}
	}
}

func TestPanics(t *testing.T) {
	g := NewGraph(2)
	for _, f := range []func(){
		func() { g.AddEdge(-1, 0, 1) },
		func() { g.AddEdge(0, 2, 1) },
		func() { g.AddEdge(0, 1, -1) },
		func() { g.MaxFlow(0, 5) },
		func() { NewGraph(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkBipartiteUnit(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const workers, tasks = 1000, 500
	for i := 0; i < b.N; i++ {
		g := NewGraph(workers + tasks + 2)
		s, t := workers+tasks, workers+tasks+1
		for w := 0; w < workers; w++ {
			g.AddEdge(s, w, 1)
			for e := 0; e < 10; e++ {
				g.AddEdge(w, workers+r.Intn(tasks), 1)
			}
		}
		for task := 0; task < tasks; task++ {
			g.AddEdge(workers+task, t, 5)
		}
		g.MaxFlow(s, t)
	}
}

package grid

import (
	"math/rand"
	"sort"
	"testing"

	"casc/internal/geo"
)

type pt struct {
	p  geo.Point
	id int
}

func randPts(r *rand.Rand, n int) []pt {
	out := make([]pt, n)
	for i := range out {
		out[i] = pt{p: geo.Pt(r.Float64(), r.Float64()), id: i}
	}
	return out
}

func bruteCircle(pts []pt, c geo.Point, rad float64) []int {
	var out []int
	for _, e := range pts {
		if geo.InCircle(e.p, c, rad) {
			out = append(out, e.id)
		}
	}
	sort.Ints(out)
	return out
}

func bruteRect(pts []pt, q geo.Rect) []int {
	var out []int
	for _, e := range pts {
		if q.Contains(e.p) {
			out = append(out, e.id)
		}
	}
	sort.Ints(out)
	return out
}

func sortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmpty(t *testing.T) {
	g := New(0)
	if g.Len() != 0 {
		t.Fatal("non-zero length")
	}
	if got := g.SearchCircle(geo.Pt(0.5, 0.5), 0.3, nil); len(got) != 0 {
		t.Errorf("got %v", got)
	}
	if g.Delete(geo.Pt(0.1, 0.1), 3) {
		t.Error("delete succeeded on empty grid")
	}
}

func TestSearchCircleAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randPts(r, 600)
	for _, res := range []int{1, 4, 17, 64} {
		g := New(res)
		for _, e := range pts {
			g.Insert(e.p, e.id)
		}
		for trial := 0; trial < 150; trial++ {
			c := geo.Pt(r.Float64(), r.Float64())
			rad := r.Float64() * 0.4
			got := sortedCopy(g.SearchCircle(c, rad, nil))
			want := bruteCircle(pts, c, rad)
			if !equalInts(got, want) {
				t.Fatalf("res=%d trial=%d: got %d ids, want %d", res, trial, len(got), len(want))
			}
		}
	}
}

func TestSearchRectAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPts(r, 500)
	g := ForCount(len(pts))
	for _, e := range pts {
		g.Insert(e.p, e.id)
	}
	for trial := 0; trial < 150; trial++ {
		q := geo.RectOf(geo.Pt(r.Float64(), r.Float64()), geo.Pt(r.Float64(), r.Float64()))
		got := sortedCopy(g.SearchRect(q, nil))
		want := bruteRect(pts, q)
		if !equalInts(got, want) {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}

func TestBoundaryPoints(t *testing.T) {
	g := New(8)
	corners := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(0, 1), geo.Pt(1, 1)}
	for i, p := range corners {
		g.Insert(p, i)
	}
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	got := g.SearchCircle(geo.Pt(1, 1), 0.01, nil)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("corner query got %v", got)
	}
	got = g.SearchRect(geo.RectOf(geo.Pt(0, 0), geo.Pt(1, 1)), nil)
	if len(got) != 4 {
		t.Errorf("full rect got %d points", len(got))
	}
}

func TestOutOfRangePointsClamped(t *testing.T) {
	g := New(8)
	g.Insert(geo.Pt(-0.5, 1.7), 1)
	if g.Len() != 1 {
		t.Fatal("insert failed")
	}
	// The point is addressable by a query near its clamped cell but only
	// matches when truly within distance.
	if got := g.SearchCircle(geo.Pt(0, 1), 1.0, nil); len(got) != 1 {
		t.Errorf("got %v, want the out-of-range point (distance ~0.86)", got)
	}
	if got := g.SearchCircle(geo.Pt(0, 1), 0.5, nil); len(got) != 0 {
		t.Errorf("got %v, want nothing (distance ~0.86 > 0.5)", got)
	}
	if !g.Delete(geo.Pt(-0.5, 1.7), 1) {
		t.Error("delete of clamped point failed")
	}
}

func TestDelete(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPts(r, 100)
	g := New(10)
	for _, e := range pts {
		g.Insert(e.p, e.id)
	}
	for i := 0; i < 50; i++ {
		if !g.Delete(pts[i].p, pts[i].id) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if g.Len() != 50 {
		t.Fatalf("Len = %d", g.Len())
	}
	got := sortedCopy(g.SearchCircle(geo.Pt(0.5, 0.5), 1.0, nil))
	want := bruteCircle(pts[50:], geo.Pt(0.5, 0.5), 1.0)
	if !equalInts(got, want) {
		t.Error("post-delete query mismatch")
	}
	if g.Delete(pts[0].p, pts[0].id) {
		t.Error("double delete succeeded")
	}
}

func TestNegativeRadius(t *testing.T) {
	g := New(4)
	g.Insert(geo.Pt(0.5, 0.5), 1)
	if got := g.SearchCircle(geo.Pt(0.5, 0.5), -0.1, nil); len(got) != 0 {
		t.Errorf("negative radius returned %v", got)
	}
}

func TestForCount(t *testing.T) {
	tests := []struct{ n, minRes int }{{0, 4}, {10, 4}, {10000, 32}, {10_000_000, 512}}
	for _, tt := range tests {
		g := ForCount(tt.n)
		if g.resolution < tt.minRes {
			t.Errorf("ForCount(%d) resolution %d < %d", tt.n, g.resolution, tt.minRes)
		}
		if g.resolution > 1024 {
			t.Errorf("ForCount(%d) resolution %d exceeds cap", tt.n, g.resolution)
		}
	}
}

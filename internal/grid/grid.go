// Package grid implements a uniform-grid spatial index over the unit square.
// It is the ablation alternative to the R-tree (see DESIGN.md §4.6): for the
// paper's workloads — points uniformly or Gaussian-clustered in [0,1]^2 and
// circular range queries with radii of 1-20% of the space — a flat grid is
// competitive with a hierarchical index, and the benchmark
// BenchmarkAblationSpatialIndex quantifies the difference.
package grid

import (
	"math"

	"casc/internal/geo"
)

// Index is a uniform grid over [0,1]^2. Points outside the unit square are
// clamped into it for cell addressing (their true coordinates are kept for
// the final distance filter).
type Index struct {
	cells      [][]entry
	resolution int
	size       int
}

type entry struct {
	p  geo.Point
	id int
}

// New returns an empty grid with resolution x resolution cells. A
// resolution of 0 selects a default suitable for a few thousand points.
func New(resolution int) *Index {
	if resolution <= 0 {
		resolution = 32
	}
	return &Index{
		cells:      make([][]entry, resolution*resolution),
		resolution: resolution,
	}
}

// ForCount returns an empty grid sized so the expected points-per-cell is
// roughly constant (~2) for n uniformly spread points.
func ForCount(n int) *Index {
	if n < 1 {
		n = 1
	}
	res := int(math.Sqrt(float64(n) / 2))
	if res < 4 {
		res = 4
	}
	if res > 1024 {
		res = 1024
	}
	return New(res)
}

// Len returns the number of stored points.
func (g *Index) Len() int { return g.size }

func (g *Index) cellIndex(p geo.Point) int {
	c := p.Clamp(0, 1)
	x := int(c.X * float64(g.resolution))
	y := int(c.Y * float64(g.resolution))
	if x == g.resolution {
		x--
	}
	if y == g.resolution {
		y--
	}
	return y*g.resolution + x
}

// Insert adds a point with the given ID.
func (g *Index) Insert(p geo.Point, id int) {
	ci := g.cellIndex(p)
	g.cells[ci] = append(g.cells[ci], entry{p: p, id: id})
	g.size++
}

// Delete removes one point matching (p, id), reporting success.
func (g *Index) Delete(p geo.Point, id int) bool {
	ci := g.cellIndex(p)
	cell := g.cells[ci]
	for i, e := range cell {
		if e.id == id && e.p == p {
			cell[i] = cell[len(cell)-1]
			g.cells[ci] = cell[:len(cell)-1]
			g.size--
			return true
		}
	}
	return false
}

// SearchCircle appends to dst the IDs of all points within the closed disk
// of radius rad centered at c, and returns the extended slice.
func (g *Index) SearchCircle(c geo.Point, rad float64, dst []int) []int {
	if rad < 0 {
		return dst
	}
	step := 1.0 / float64(g.resolution)
	x0 := cellCoord(c.X-rad, g.resolution)
	x1 := cellCoord(c.X+rad, g.resolution)
	y0 := cellCoord(c.Y-rad, g.resolution)
	y1 := cellCoord(c.Y+rad, g.resolution)
	rad2 := rad * rad
	for y := y0; y <= y1; y++ {
		// Skip rows whose vertical band is entirely outside the disk.
		rowRect := geo.Rect{
			Min: geo.Pt(float64(x0)*step, float64(y)*step),
			Max: geo.Pt(float64(x1+1)*step, float64(y+1)*step),
		}
		if !rowRect.IntersectsCircle(c, rad) {
			continue
		}
		for x := x0; x <= x1; x++ {
			for _, e := range g.cells[y*g.resolution+x] {
				if e.p.Dist2(c) <= rad2 {
					dst = append(dst, e.id)
				}
			}
		}
	}
	return dst
}

// SearchRect appends to dst the IDs of all points inside q (boundary
// inclusive), and returns the extended slice.
func (g *Index) SearchRect(q geo.Rect, dst []int) []int {
	x0 := cellCoord(q.Min.X, g.resolution)
	x1 := cellCoord(q.Max.X, g.resolution)
	y0 := cellCoord(q.Min.Y, g.resolution)
	y1 := cellCoord(q.Max.Y, g.resolution)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			for _, e := range g.cells[y*g.resolution+x] {
				if q.Contains(e.p) {
					dst = append(dst, e.id)
				}
			}
		}
	}
	return dst
}

func cellCoord(v float64, res int) int {
	if v < 0 {
		return 0
	}
	c := int(v * float64(res))
	if c >= res {
		c = res - 1
	}
	return c
}

package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64
	}{
		{"same point", Pt(0.3, 0.7), Pt(0.3, 0.7), 0},
		{"unit x", Pt(0, 0), Pt(1, 0), 1},
		{"unit y", Pt(0, 0), Pt(0, 1), 1},
		{"3-4-5", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Dist(tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDistProperties(t *testing.T) {
	symmetric := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		d1, d2 := a.Dist(b), b.Dist(a)
		if math.IsInf(d1, 0) || math.IsInf(d2, 0) {
			return math.IsInf(d1, 0) && math.IsInf(d2, 0)
		}
		return math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("distance not symmetric: %v", err)
	}
	triangle := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		if math.IsInf(a.Dist(b), 0) || math.IsInf(b.Dist(c), 0) || math.IsInf(a.Dist(c), 0) {
			return true // huge random inputs can overflow; not interesting
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9*(1+a.Dist(c))
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Errorf("triangle inequality violated: %v", err)
	}
	dist2Consistent := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		d := a.Dist(b)
		d2 := a.Dist2(b)
		if math.IsInf(d, 0) || math.IsInf(d2, 0) {
			return true
		}
		return math.Abs(d*d-d2) <= 1e-9*(1+d2)
	}
	if err := quick.Check(dist2Consistent, nil); err != nil {
		t.Errorf("Dist2 inconsistent with Dist: %v", err)
	}
}

func TestClamp(t *testing.T) {
	p := Pt(-0.5, 1.5).Clamp(0, 1)
	if p != Pt(0, 1) {
		t.Errorf("Clamp = %v, want (0,1)", p)
	}
	q := Pt(0.25, 0.75).Clamp(0, 1)
	if q != Pt(0.25, 0.75) {
		t.Errorf("Clamp changed in-range point: %v", q)
	}
}

func TestRectOf(t *testing.T) {
	r := RectOf(Pt(1, 0), Pt(0, 1))
	want := Rect{Min: Pt(0, 0), Max: Pt(1, 1)}
	if r != want {
		t.Errorf("RectOf = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Error("RectOf produced invalid rect")
	}
}

func TestRectAreaMargin(t *testing.T) {
	r := RectOf(Pt(0, 0), Pt(2, 3))
	if r.Area() != 6 {
		t.Errorf("Area = %v, want 6", r.Area())
	}
	if r.Margin() != 5 {
		t.Errorf("Margin = %v, want 5", r.Margin())
	}
}

func TestRectUnionEnlargement(t *testing.T) {
	a := RectOf(Pt(0, 0), Pt(1, 1))
	b := RectOf(Pt(2, 2), Pt(3, 3))
	u := a.Union(b)
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Errorf("Union %v does not contain operands", u)
	}
	if got := a.Enlargement(b); math.Abs(got-8) > 1e-12 {
		t.Errorf("Enlargement = %v, want 8 (3x3 union minus 1x1)", got)
	}
	if got := a.Enlargement(RectOf(Pt(0.2, 0.2), Pt(0.8, 0.8))); got != 0 {
		t.Errorf("Enlargement of contained rect = %v, want 0", got)
	}
}

func TestRectIntersects(t *testing.T) {
	a := RectOf(Pt(0, 0), Pt(1, 1))
	tests := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlapping", RectOf(Pt(0.5, 0.5), Pt(2, 2)), true},
		{"touching edge", RectOf(Pt(1, 0), Pt(2, 1)), true},
		{"touching corner", RectOf(Pt(1, 1), Pt(2, 2)), true},
		{"disjoint x", RectOf(Pt(1.1, 0), Pt(2, 1)), false},
		{"disjoint y", RectOf(Pt(0, 1.1), Pt(1, 2)), false},
		{"contained", RectOf(Pt(0.2, 0.2), Pt(0.4, 0.4)), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			if got := tt.b.Intersects(a); got != tt.want {
				t.Errorf("Intersects (flipped) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRectContains(t *testing.T) {
	r := RectOf(Pt(0, 0), Pt(1, 1))
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(1, 1)) || !r.Contains(Pt(0.5, 0.5)) {
		t.Error("Contains should include boundary and interior")
	}
	if r.Contains(Pt(1.001, 0.5)) {
		t.Error("Contains accepted outside point")
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := RectOf(Pt(0, 0), Pt(1, 1))
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(0.5, 0.5), 0},
		{Pt(2, 0.5), 1},
		{Pt(0.5, -2), 2},
		{Pt(4, 5), 5}, // corner at (1,1): 3-4-5 triangle
	}
	for _, tt := range tests {
		if got := r.DistToPoint(tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("DistToPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestIntersectsCircle(t *testing.T) {
	r := RectOf(Pt(0, 0), Pt(1, 1))
	if !r.IntersectsCircle(Pt(0.5, 0.5), 0.01) {
		t.Error("circle inside rect should intersect")
	}
	if !r.IntersectsCircle(Pt(2, 0.5), 1.0) {
		t.Error("circle touching edge should intersect")
	}
	if r.IntersectsCircle(Pt(2, 0.5), 0.99) {
		t.Error("circle short of edge should not intersect")
	}
	if r.IntersectsCircle(Pt(0.5, 0.5), -1) {
		t.Error("negative radius must never intersect")
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Pt(0.5, 0.5), 0.2)
	want := RectOf(Pt(0.3, 0.3), Pt(0.7, 0.7))
	if math.Abs(r.Min.X-want.Min.X) > 1e-12 || math.Abs(r.Max.Y-want.Max.Y) > 1e-12 {
		t.Errorf("RectAround = %v, want %v", r, want)
	}
}

func TestInCircle(t *testing.T) {
	if !InCircle(Pt(0.3, 0.4), Pt(0, 0), 0.5) {
		t.Error("boundary point should be in circle")
	}
	if InCircle(Pt(0.3, 0.4), Pt(0, 0), 0.49) {
		t.Error("outside point reported in circle")
	}
	if InCircle(Pt(0, 0), Pt(0, 0), -0.1) {
		t.Error("negative radius circle contains nothing")
	}
}

func TestTravelTime(t *testing.T) {
	if got := TravelTime(Pt(0, 0), Pt(0, 1), 0.5); math.Abs(got-2) > 1e-12 {
		t.Errorf("TravelTime = %v, want 2", got)
	}
	if got := TravelTime(Pt(0, 0), Pt(0, 1), 0); !math.IsInf(got, 1) {
		t.Errorf("TravelTime with zero speed = %v, want +Inf", got)
	}
	if got := TravelTime(Pt(0.2, 0.2), Pt(0.2, 0.2), 0); got != 0 {
		t.Errorf("TravelTime between identical points = %v, want 0", got)
	}
}

func TestCircleRectConsistency(t *testing.T) {
	// Property: if a point is in the circle and in the rect, the rect must
	// intersect the circle.
	f := func(px, py, cx, cy, rad float64) bool {
		rad = math.Mod(math.Abs(rad), 10)
		p := Pt(math.Mod(px, 10), math.Mod(py, 10))
		c := Pt(math.Mod(cx, 10), math.Mod(cy, 10))
		r := RectOf(Pt(-5, -5), Pt(5, 5))
		if InCircle(p, c, rad) && r.Contains(p) {
			return r.IntersectsCircle(c, rad)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("circle/rect consistency violated: %v", err)
	}
}

// Package geo provides the small amount of planar geometry the CA-SC
// system needs: points in the unit square, Euclidean distances, axis-aligned
// rectangles for spatial indexing, and circle/rectangle predicates used by
// working-area range queries.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the 2D data space. The paper maps all locations
// (both real Meetup records and synthetic data) into [0,1]^2, but nothing in
// this package assumes that range.
type Point struct {
	X, Y float64
}

// Pt is a convenience constructor.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for comparisons against squared radii.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns the translation of p by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{X: p.X + dx, Y: p.Y + dy} }

// Clamp returns p with both coordinates clamped to [lo, hi].
func (p Point) Clamp(lo, hi float64) Point {
	return Point{X: clamp(p.X, lo, hi), Y: clamp(p.Y, lo, hi)}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4f,%.4f)", p.X, p.Y) }

// Rect is a closed axis-aligned rectangle [MinX,MaxX] x [MinY,MaxY].
// The zero Rect is the degenerate rectangle at the origin.
type Rect struct {
	Min, Max Point
}

// RectOf returns the rectangle spanning the two corner points in any order.
func RectOf(a, b Point) Rect {
	return Rect{
		Min: Point{X: math.Min(a.X, b.X), Y: math.Min(a.Y, b.Y)},
		Max: Point{X: math.Max(a.X, b.X), Y: math.Max(a.Y, b.Y)},
	}
}

// RectAround returns the bounding box of the circle centered at c with radius r.
func RectAround(c Point, r float64) Rect {
	return Rect{Min: c.Add(-r, -r), Max: c.Add(r, r)}
}

// PointRect returns the degenerate rectangle containing only p.
func PointRect(p Point) Rect { return Rect{Min: p, Max: p} }

// Valid reports whether r.Min <= r.Max on both axes.
func (r Rect) Valid() bool { return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y) }

// Margin returns half the rectangle's perimeter (the R*-tree "margin").
func (r Rect) Margin() float64 { return (r.Max.X - r.Min.X) + (r.Max.Y - r.Min.Y) }

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{X: math.Min(r.Min.X, s.Min.X), Y: math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{X: math.Max(r.Max.X, s.Max.X), Y: math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Enlargement returns the area increase of r needed to contain s.
func (r Rect) Enlargement(s Rect) float64 { return r.Union(s).Area() - r.Area() }

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return r.Min.X <= p.X && p.X <= r.Max.X && r.Min.Y <= p.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return r.Min.X <= s.Min.X && s.Max.X <= r.Max.X &&
		r.Min.Y <= s.Min.Y && s.Max.Y <= r.Max.Y
}

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// DistToPoint returns the minimum distance from p to any point of r
// (zero when p is inside r).
func (r Rect) DistToPoint(p Point) float64 {
	dx := axisDist(p.X, r.Min.X, r.Max.X)
	dy := axisDist(p.Y, r.Min.Y, r.Max.Y)
	return math.Hypot(dx, dy)
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// IntersectsCircle reports whether r intersects the closed disk centered at
// c with radius rad. This is the primitive behind working-area range queries:
// a worker with radius rad at c can reach tasks whose index rectangles
// satisfy this predicate.
func (r Rect) IntersectsCircle(c Point, rad float64) bool {
	if rad < 0 {
		return false
	}
	return r.DistToPoint(c) <= rad
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s %s]", r.Min, r.Max)
}

// InCircle reports whether p lies within (boundary inclusive) the disk
// centered at c with radius rad.
func InCircle(p, c Point, rad float64) bool {
	return rad >= 0 && p.Dist2(c) <= rad*rad
}

// TravelTime returns the time a worker moving at speed v takes to cover the
// distance from a to b. It returns +Inf when v <= 0 and the points differ,
// and 0 when the points coincide (even for v == 0).
func TravelTime(a, b Point, v float64) float64 {
	d := a.Dist(b)
	if d == 0 {
		return 0
	}
	if v <= 0 {
		return math.Inf(1)
	}
	return d / v
}

// Package online implements the *online* server-assigned-tasks mode the
// paper contrasts with its batch-based mode (§VII: "in the online task
// assignment mode [25], [28], the spatial crowdsourcing servers need to
// immediately assign valid tasks to workers upon the reaching of workers in
// a one-by-one style"). Workers arrive one at a time and must be assigned
// immediately and irrevocably; no future knowledge is available.
//
// The package exists to quantify what the paper's batch mode buys: on the
// same instance, batch GT re-optimizes within the whole batch while online
// policies commit greedily, so the online score is a lower bound that the
// tests pin against the batch solvers.
package online

import (
	"fmt"
	"math/rand"
	"sort"

	"casc/internal/model"
)

// Policy decides, for one arriving worker, which task to join (a candidate
// index into in.WorkerCand[w]'s values, i.e. a task index) or
// model.Unassigned. groups expose the current group composition; the
// policy must not mutate them.
type Policy interface {
	Name() string
	Choose(in *model.Instance, w int, groups []*model.GroupScore) int
}

// Run streams the instance's workers in arrival order (ties by index)
// through the policy and returns the resulting assignment. Chosen tasks
// must have spare capacity; Run validates the policy's choice and treats
// invalid choices as "unassigned".
func Run(in *model.Instance, p Policy) *model.Assignment {
	order := make([]int, len(in.Workers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Workers[order[a]].Arrive < in.Workers[order[b]].Arrive
	})
	groups := make([]*model.GroupScore, len(in.Tasks))
	for t := range groups {
		groups[t] = in.NewGroupScore(in.Tasks[t].Capacity)
	}
	a := model.NewAssignment(in)
	for _, w := range order {
		t := p.Choose(in, w, groups)
		if t == model.Unassigned {
			continue
		}
		if !validChoice(in, w, t) || groups[t].Len() >= groups[t].Capacity() {
			continue
		}
		groups[t].Join(w)
		a.Assign(w, t)
	}
	return a
}

func validChoice(in *model.Instance, w, t int) bool {
	if t < 0 || t >= len(in.Tasks) {
		return false
	}
	for _, c := range in.WorkerCand[w] {
		if c == t {
			return true
		}
	}
	return false
}

// GreedyDelta joins the valid task with the maximum immediate quality
// increase ΔQ; when no task yields a positive ΔQ (groups still below B),
// it joins the fullest valid task so groups keep forming.
type GreedyDelta struct{}

// Name implements Policy.
func (GreedyDelta) Name() string { return "online-greedy" }

// Choose implements Policy.
func (GreedyDelta) Choose(in *model.Instance, w int, groups []*model.GroupScore) int {
	bestT, bestGain := model.Unassigned, 0.0
	for _, t := range in.WorkerCand[w] {
		g := groups[t]
		if g.Len() >= g.Capacity() {
			continue
		}
		if gain := g.JoinDelta(w); gain > bestGain {
			bestT, bestGain = t, gain
		}
	}
	if bestT != model.Unassigned {
		return bestT
	}
	bestLen := -1
	for _, t := range in.WorkerCand[w] {
		g := groups[t]
		if g.Len() >= g.Capacity() && g.Len() != 0 {
			continue
		}
		if g.Len() < g.Capacity() && g.Len() > bestLen {
			bestT, bestLen = t, g.Len()
		}
	}
	return bestT
}

// ThresholdDelta joins only when the immediate ΔQ clears Theta, otherwise
// falls back to group-forming like GreedyDelta. Higher thresholds hold out
// for better matches at the risk of never placing the worker.
type ThresholdDelta struct {
	Theta float64
}

// Name implements Policy.
func (p ThresholdDelta) Name() string { return fmt.Sprintf("online-threshold(%.2f)", p.Theta) }

// Choose implements Policy.
func (p ThresholdDelta) Choose(in *model.Instance, w int, groups []*model.GroupScore) int {
	bestT, bestGain := model.Unassigned, p.Theta
	for _, t := range in.WorkerCand[w] {
		g := groups[t]
		if g.Len() >= g.Capacity() {
			continue
		}
		if gain := g.JoinDelta(w); gain >= bestGain {
			bestT, bestGain = t, gain
		}
	}
	if bestT != model.Unassigned {
		return bestT
	}
	// Group-forming fallback only when nothing has reached B yet for this
	// worker: join the fullest open valid task below B.
	bestLen := -1
	for _, t := range in.WorkerCand[w] {
		g := groups[t]
		if g.Len() >= g.Capacity() || g.Len() >= in.B {
			continue
		}
		if g.Len() > bestLen {
			bestT, bestLen = t, g.Len()
		}
	}
	return bestT
}

// RandomChoice joins a uniformly random valid open task; the online
// baseline.
type RandomChoice struct {
	Rng *rand.Rand
}

// Name implements Policy.
func (RandomChoice) Name() string { return "online-random" }

// Choose implements Policy.
func (p RandomChoice) Choose(in *model.Instance, w int, groups []*model.GroupScore) int {
	var open []int
	for _, t := range in.WorkerCand[w] {
		if groups[t].Len() < groups[t].Capacity() {
			open = append(open, t)
		}
	}
	if len(open) == 0 {
		return model.Unassigned
	}
	return open[p.Rng.Intn(len(open))]
}

package online

import (
	"context"
	"math/rand"
	"testing"

	"casc/internal/assign"
	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/model"
)

func randomInstance(r *rand.Rand, nW, nT int) *model.Instance {
	in := &model.Instance{
		Quality: coop.Synthetic{N: nW, Seed: uint64(r.Int63())},
		B:       3,
	}
	for i := 0; i < nW; i++ {
		in.Workers = append(in.Workers, model.Worker{
			ID:     i,
			Loc:    geo.Pt(r.Float64(), r.Float64()),
			Speed:  0.05,
			Radius: 0.15 + r.Float64()*0.15,
			Arrive: r.Float64(), // online arrival order
		})
	}
	for j := 0; j < nT; j++ {
		in.Tasks = append(in.Tasks, model.Task{
			ID: j, Loc: geo.Pt(r.Float64(), r.Float64()), Capacity: 4, Deadline: 5,
		})
	}
	// Candidates at time 0 but workers have Arrive in (0,1); use Now=1 so
	// everyone is admitted and deadlines still hold.
	in.Now = 1
	in.BuildCandidates(model.IndexRTree)
	return in
}

func TestRunProducesValidAssignments(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(r, 60, 20)
		for _, p := range []Policy{GreedyDelta{}, ThresholdDelta{Theta: 0.3}, RandomChoice{Rng: rand.New(rand.NewSource(2))}} {
			a := Run(in, p)
			if err := a.Validate(in); err != nil {
				t.Fatalf("trial %d %s: %v", trial, p.Name(), err)
			}
		}
	}
}

func TestRespectsArrivalOrder(t *testing.T) {
	// Two workers with great mutual quality arrive LAST; a capacity-2 task
	// has already been filled by earlier mediocre arrivals, so online
	// cannot undo it — while batch GT can.
	q := coop.NewMatrix(4)
	q.Set(0, 1, 0.1) // early pair
	q.Set(2, 3, 0.9) // late pair
	in := &model.Instance{Quality: q, B: 2, Now: 10}
	for i := 0; i < 4; i++ {
		in.Workers = append(in.Workers, model.Worker{
			ID: i, Loc: geo.Pt(0.5, 0.5), Speed: 1, Radius: 0.5, Arrive: float64(i),
		})
	}
	in.Tasks = []model.Task{{ID: 0, Loc: geo.Pt(0.5, 0.5), Capacity: 2, Deadline: 20}}
	in.BuildCandidates(model.IndexLinear)

	a := Run(in, GreedyDelta{})
	if a.TaskOf(0) != 0 || a.TaskOf(1) != 0 {
		t.Fatalf("online did not commit the early arrivals: %v", a.Pairs())
	}
	onlineScore := a.TotalScore(in)

	batch, err := assign.NewGT(assign.GTOptions{}).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if batch.TotalScore(in) <= onlineScore {
		t.Fatalf("batch GT %v should beat committed online %v here",
			batch.TotalScore(in), onlineScore)
	}
}

func TestBatchBeatsOnlineInAggregate(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var online, batchScore float64
	for trial := 0; trial < 8; trial++ {
		in := randomInstance(r, 70, 20)
		online += Run(in, GreedyDelta{}).TotalScore(in)
		b, err := assign.NewGT(assign.GTOptions{}).Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		batchScore += b.TotalScore(in)
	}
	if batchScore < online {
		t.Errorf("batch GT aggregate %v below online greedy %v", batchScore, online)
	}
}

func TestGreedyBeatsRandomOnline(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var greedy, random float64
	for trial := 0; trial < 8; trial++ {
		in := randomInstance(r, 70, 20)
		greedy += Run(in, GreedyDelta{}).TotalScore(in)
		random += Run(in, RandomChoice{Rng: rand.New(rand.NewSource(int64(trial)))}).TotalScore(in)
	}
	if greedy <= random {
		t.Errorf("online greedy %v not above online random %v", greedy, random)
	}
}

func TestThresholdTradeoff(t *testing.T) {
	// A very high threshold must assign no more workers than greedy; a zero
	// threshold behaves like greedy up to ties.
	r := rand.New(rand.NewSource(5))
	in := randomInstance(r, 80, 25)
	greedy := Run(in, GreedyDelta{})
	high := Run(in, ThresholdDelta{Theta: 10})
	// Theta=10 is unreachable (ΔQ ≤ capacity), so only the group-forming
	// fallback places workers; groups never exceed B... they can't even
	// earn ΔQ ≥ 10, so every group stays below or at B via fallback.
	for tsk, ws := range high.TaskWorkers {
		if len(ws) > in.B {
			t.Fatalf("threshold policy grew task %d beyond B without clearing Theta", tsk)
		}
	}
	if high.TotalScore(in) > greedy.TotalScore(in)+1e-9 {
		// Not impossible in theory, but with Theta unreachable the threshold
		// policy forfeits all post-B improvements; flag if it wins.
		t.Logf("note: threshold beat greedy (%v vs %v)", high.TotalScore(in), greedy.TotalScore(in))
	}
}

func TestPolicyNames(t *testing.T) {
	if (GreedyDelta{}).Name() != "online-greedy" {
		t.Error("greedy name")
	}
	if (ThresholdDelta{Theta: 0.25}).Name() != "online-threshold(0.25)" {
		t.Error("threshold name")
	}
	if (RandomChoice{}).Name() != "online-random" {
		t.Error("random name")
	}
}

func TestInvalidPolicyChoiceIgnored(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	in := randomInstance(r, 20, 5)
	a := Run(in, badPolicy{})
	if a.NumAssigned() != 0 {
		t.Error("invalid choices were applied")
	}
	if err := a.Validate(in); err != nil {
		t.Fatal(err)
	}
}

type badPolicy struct{}

func (badPolicy) Name() string { return "bad" }
func (badPolicy) Choose(in *model.Instance, w int, groups []*model.GroupScore) int {
	return len(in.Tasks) + 5 // out of range
}

package model

import (
	"fmt"
	"sort"
)

// SubIndex maps a sub-instance produced by Instance.SubInstance back to its
// parent: position i of the sub-instance corresponds to parent position
// WorkerIDs[i] (and likewise for tasks). Both slices are ascending, so the
// relative order of workers and tasks — and therefore every index-order
// tie-break inside the solvers — is preserved by the remapping.
type SubIndex struct {
	WorkerIDs []int
	TaskIDs   []int
}

// Lift copies every pair of sub, an assignment over the sub-instance, into
// dst, an assignment over the parent instance, translating indices through
// the mapping. It walks TaskWorkers rather than WorkerTask so each lifted
// group keeps the exact member order the solver committed — group quality
// is summed in member order, so preserving it keeps decomposed scores
// bitwise identical to monolithic ones. It panics (via Assignment.Assign)
// if a lifted worker is already assigned in dst, which can only happen
// when two sub-instances share a worker — i.e. when the decomposition was
// not a partition.
func (m *SubIndex) Lift(sub, dst *Assignment) {
	for t, ws := range sub.TaskWorkers {
		for _, w := range ws {
			dst.Assign(m.WorkerIDs[w], m.TaskIDs[t])
		}
	}
}

// subQuality re-indexes a parent quality model onto sub-instance worker
// positions, mirroring coop.Subset but at the model layer so SubInstance
// works with any QualityModel.
type subQuality struct {
	base QualityModel
	ids  []int
}

func (s subQuality) Quality(i, k int) float64 { return s.base.Quality(s.ids[i], s.ids[k]) }
func (s subQuality) NumWorkers() int          { return len(s.ids) }

// SubInstance extracts the sub-problem induced by the given parent worker
// and task positions: a dense instance over copies of those workers and
// tasks with candidate lists sliced to pairs inside the selection, the
// quality model re-indexed, and B, Now and Travel carried over. The input
// index sets may be in any order and are canonicalised ascending; the
// returned SubIndex lifts sub-assignments back to the parent.
//
// Candidates must have been built on the parent (BuildCandidates); the
// sub-instance's lists are derived from the parent's rather than recomputed,
// so the (possibly expensive, possibly stateful) Travel function is never
// re-invoked. A candidate pair whose other endpoint is outside the selection
// is dropped — callers partitioning along connected components never lose a
// pair this way.
func (in *Instance) SubInstance(workerIDs, taskIDs []int) (*Instance, *SubIndex) {
	if in.WorkerCand == nil {
		panic("model: SubInstance before BuildCandidates")
	}
	wIDs := append([]int(nil), workerIDs...)
	tIDs := append([]int(nil), taskIDs...)
	sort.Ints(wIDs)
	sort.Ints(tIDs)

	// Parent position → sub position (-1: outside the selection).
	taskLocal := make([]int, len(in.Tasks))
	for i := range taskLocal {
		taskLocal[i] = -1
	}
	for j, t := range tIDs {
		if t < 0 || t >= len(in.Tasks) {
			panic(fmt.Sprintf("model: SubInstance task index %d out of range [0,%d)", t, len(in.Tasks)))
		}
		if taskLocal[t] != -1 {
			panic(fmt.Sprintf("model: SubInstance duplicate task index %d", t))
		}
		taskLocal[t] = j
	}

	sub := &Instance{
		Workers:    make([]Worker, len(wIDs)),
		Tasks:      make([]Task, len(tIDs)),
		Quality:    subQuality{base: in.Quality, ids: wIDs},
		B:          in.B,
		Now:        in.Now,
		Travel:     in.Travel,
		WorkerCand: make([][]int, len(wIDs)),
		TaskCand:   make([][]int, len(tIDs)),
	}
	for j, t := range tIDs {
		sub.Tasks[j] = in.Tasks[t]
	}
	seen := make(map[int]bool, len(wIDs))
	for i, w := range wIDs {
		if w < 0 || w >= len(in.Workers) {
			panic(fmt.Sprintf("model: SubInstance worker index %d out of range [0,%d)", w, len(in.Workers)))
		}
		if seen[w] {
			panic(fmt.Sprintf("model: SubInstance duplicate worker index %d", w))
		}
		seen[w] = true
		sub.Workers[i] = in.Workers[w]
		cand := make([]int, 0, len(in.WorkerCand[w]))
		for _, t := range in.WorkerCand[w] {
			if j := taskLocal[t]; j != -1 {
				cand = append(cand, j)
			}
		}
		sub.WorkerCand[i] = cand
		// Parent lists are ascending and the remap is monotone, so the sub
		// lists come out ascending too; TaskCand below inherits worker order
		// the same way BuildCandidates emits it.
		for _, j := range cand {
			sub.TaskCand[j] = append(sub.TaskCand[j], i)
		}
	}
	return sub, &SubIndex{WorkerIDs: wIDs, TaskIDs: tIDs}
}

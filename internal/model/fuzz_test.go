package model

import (
	"math"
	"testing"

	"casc/internal/coop"
)

// FuzzGroupScore drives the incremental GroupScore accumulator through an
// arbitrary join/leave/swap sequence and cross-checks Q against the direct
// Equation 2 computation after every step. Run with
// `go test -fuzz=FuzzGroupScore ./internal/model` to explore.
func FuzzGroupScore(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{0, 0, 1, 1, 2, 2, 3, 3})
	f.Add([]byte{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	f.Add([]byte{})

	const n = 8
	f.Fuzz(func(t *testing.T, data []byte) {
		q := coop.NewMatrix(n)
		// Deterministic quality values derived from the pair indices.
		for i := 0; i < n; i++ {
			for k := i + 1; k < n; k++ {
				q.Set(i, k, float64((i*7+k*13)%100)/100)
			}
		}
		in := &Instance{Quality: q, B: 2}
		g := in.NewGroupScore(5)
		member := make([]bool, n)
		count := 0
		for _, b := range data {
			w := int(b) % n
			if member[w] {
				delta := g.LeaveDelta(w)
				before := g.Q()
				g.Leave(w)
				member[w] = false
				count--
				if math.Abs((before-g.Q())-delta) > 1e-9 {
					t.Fatalf("LeaveDelta inconsistent: %v vs %v", before-g.Q(), delta)
				}
			} else if count < 5 {
				delta := g.JoinDelta(w)
				before := g.Q()
				g.Join(w)
				member[w] = true
				count++
				if math.Abs((g.Q()-before)-delta) > 1e-9 {
					t.Fatalf("JoinDelta inconsistent: %v vs %v", g.Q()-before, delta)
				}
			}
			// Cross-check against the direct computation.
			var ws []int
			for i, m := range member {
				if m {
					ws = append(ws, i)
				}
			}
			want := in.GroupQuality(ws, 5)
			if math.Abs(g.Q()-want) > 1e-9 {
				t.Fatalf("incremental Q %v, direct %v (group %v)", g.Q(), want, ws)
			}
		}
	})
}

package model

import (
	"testing"

	"casc/internal/coop"
)

// FuzzSubInstanceLift exercises the SubInstance/Lift round trip with
// arbitrary bipartite candidate graphs and arbitrary (worker, task)
// selections: the remap must keep candidate lists ascending and mirrored,
// preserve exactly the pairs inside the selection, and lifting a
// sub-assignment must reproduce it pair-for-pair — including group member
// order, which the decomposed solvers rely on for bitwise score equality.
func FuzzSubInstanceLift(f *testing.F) {
	f.Add([]byte{4, 4, 0xff, 0xff, 0xff})
	f.Add([]byte{6, 3, 0b1010101, 0b0110011, 0xf0})
	f.Add([]byte{1, 1, 0x01})
	f.Add([]byte{9, 9, 0x13, 0x37, 0xca, 0x5c})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			t.Skip()
		}
		nW := int(data[0])%10 + 1
		nT := int(data[1])%10 + 1
		bits := data[2:]
		bit := func(i int) bool { return bits[i/8%len(bits)]>>(i%8)&1 == 1 }

		q := coop.NewMatrix(nW)
		for i := 0; i < nW; i++ {
			for k := i + 1; k < nW; k++ {
				q.Set(i, k, float64((i*31+k*17)%100)/100)
			}
		}
		in := &Instance{
			Workers:    make([]Worker, nW),
			Tasks:      make([]Task, nT),
			Quality:    q,
			B:          1,
			WorkerCand: make([][]int, nW),
			TaskCand:   make([][]int, nT),
		}
		for j := range in.Tasks {
			in.Tasks[j].Capacity = 1 + int(bits[j%len(bits)])%3
		}
		for w := 0; w < nW; w++ {
			for task := 0; task < nT; task++ {
				if bit(w*nT + task) {
					in.WorkerCand[w] = append(in.WorkerCand[w], task)
					in.TaskCand[task] = append(in.TaskCand[task], w)
				}
			}
		}

		// Select arbitrary subsets; feed them descending to exercise the
		// canonicalisation.
		var wIDs, tIDs []int
		for w := nW - 1; w >= 0; w-- {
			if bit(nW*nT + w) {
				wIDs = append(wIDs, w)
			}
		}
		for task := nT - 1; task >= 0; task-- {
			if bit(nW*nT + nW + task) {
				tIDs = append(tIDs, task)
			}
		}
		sub, m := in.SubInstance(wIDs, tIDs)

		if len(m.WorkerIDs) != len(wIDs) || len(m.TaskIDs) != len(tIDs) {
			t.Fatalf("mapping sizes %d/%d, want %d/%d", len(m.WorkerIDs), len(m.TaskIDs), len(wIDs), len(tIDs))
		}
		for i := 1; i < len(m.WorkerIDs); i++ {
			if m.WorkerIDs[i-1] >= m.WorkerIDs[i] {
				t.Fatalf("WorkerIDs not ascending: %v", m.WorkerIDs)
			}
		}
		for j := 1; j < len(m.TaskIDs); j++ {
			if m.TaskIDs[j-1] >= m.TaskIDs[j] {
				t.Fatalf("TaskIDs not ascending: %v", m.TaskIDs)
			}
		}

		// Candidate lists: exactly the parent pairs inside the selection,
		// ascending, with TaskCand the exact mirror.
		taskLocal := make(map[int]int, len(m.TaskIDs))
		for j, task := range m.TaskIDs {
			taskLocal[task] = j
		}
		for i, w := range m.WorkerIDs {
			var want []int
			for _, task := range in.WorkerCand[w] {
				if j, ok := taskLocal[task]; ok {
					want = append(want, j)
				}
			}
			got := sub.WorkerCand[i]
			if len(got) != len(want) {
				t.Fatalf("sub worker %d candidates %v, want %v", i, got, want)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("sub worker %d candidates %v, want %v", i, got, want)
				}
			}
		}
		for j, cand := range sub.TaskCand {
			for k, i := range cand {
				if k > 0 && cand[k-1] >= i {
					t.Fatalf("sub task %d candidates not ascending: %v", j, cand)
				}
				found := false
				for _, jj := range sub.WorkerCand[i] {
					if jj == j {
						found = true
					}
				}
				if !found {
					t.Fatalf("sub task %d lists worker %d but not vice versa", j, i)
				}
			}
		}

		// Greedy sub-assignment from the remaining bits, then lift.
		suba := NewAssignment(sub)
		used := make([]int, len(sub.Tasks))
		for i := range sub.Workers {
			if !bit(2*nW*nT + nW + nT + i) {
				continue
			}
			for _, j := range sub.WorkerCand[i] {
				if used[j] < sub.Tasks[j].Capacity {
					suba.Assign(i, j)
					used[j]++
					break
				}
			}
		}
		dst := NewAssignment(in)
		m.Lift(suba, dst)

		if dst.NumAssigned() != suba.NumAssigned() {
			t.Fatalf("lift changed pair count: %d vs %d", dst.NumAssigned(), suba.NumAssigned())
		}
		inSel := make(map[int]bool, len(m.WorkerIDs))
		for i, w := range m.WorkerIDs {
			inSel[w] = true
			want := Unassigned
			if st := suba.WorkerTask[i]; st != Unassigned {
				want = m.TaskIDs[st]
			}
			if dst.WorkerTask[w] != want {
				t.Fatalf("parent worker %d lifted to task %d, want %d", w, dst.WorkerTask[w], want)
			}
		}
		for w, task := range dst.WorkerTask {
			if !inSel[w] && task != Unassigned {
				t.Fatalf("unselected parent worker %d became assigned to %d", w, task)
			}
		}
		// Group member order must survive the lift exactly.
		for j, ws := range suba.TaskWorkers {
			lifted := dst.TaskWorkers[m.TaskIDs[j]]
			if len(lifted) != len(ws) {
				t.Fatalf("task %d group size %d, want %d", j, len(lifted), len(ws))
			}
			for k, i := range ws {
				if lifted[k] != m.WorkerIDs[i] {
					t.Fatalf("task %d member order broken: lifted %v from %v via %v", j, lifted, ws, m.WorkerIDs)
				}
			}
		}
	})
}

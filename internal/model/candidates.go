package model

import (
	"fmt"
	"sort"

	"casc/internal/geo"
	"casc/internal/grid"
	"casc/internal/rtree"
)

// IndexKind selects the spatial index used to retrieve the candidate tasks
// of each worker (Algorithm 1, lines 4-5).
type IndexKind int

const (
	// IndexRTree uses an STR-bulk-loaded packed R*-tree (the paper's
	// choice of index; see rtree.RStar for the layout).
	IndexRTree IndexKind = iota
	// IndexGrid uses a uniform grid (ablation alternative).
	IndexGrid
	// IndexLinear scans all tasks per worker (ablation baseline).
	IndexLinear
)

// String implements fmt.Stringer.
func (k IndexKind) String() string {
	switch k {
	case IndexRTree:
		return "rtree"
	case IndexGrid:
		return "grid"
	case IndexLinear:
		return "linear"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// BuildCandidates populates in.WorkerCand and in.TaskCand: for every worker
// it runs a circular range query with radius r_i centered at l_i over the
// task locations, then filters by the deadline-reachability condition of
// Definition 3. Candidate lists are sorted ascending.
func (in *Instance) BuildCandidates(kind IndexKind) {
	nW, nT := len(in.Workers), len(in.Tasks)
	in.WorkerCand = make([][]int, nW)
	in.TaskCand = make([][]int, nT)

	var query func(c geo.Point, rad float64, dst []int) []int
	switch kind {
	case IndexRTree:
		items := make([]rtree.Item, nT)
		for j, t := range in.Tasks {
			items[j] = rtree.Item{Rect: geo.PointRect(t.Loc), ID: j}
		}
		// The packed R*-tree returns the same ID set as the boxed tree
		// (both exact range queries); the sort below makes the candidate
		// lists — and so every downstream solver decision — identical.
		tr := rtree.BulkRStar(items, 0)
		query = tr.SearchCircle
	case IndexGrid:
		g := grid.ForCount(nT)
		for j, t := range in.Tasks {
			g.Insert(t.Loc, j)
		}
		query = g.SearchCircle
	case IndexLinear:
		query = func(c geo.Point, rad float64, dst []int) []int {
			for j, t := range in.Tasks {
				if geo.InCircle(t.Loc, c, rad) {
					dst = append(dst, j)
				}
			}
			return dst
		}
	default:
		panic(fmt.Sprintf("model: unknown index kind %d", kind))
	}

	var buf []int
	for i, w := range in.Workers {
		buf = query(w.Loc, w.Radius, buf[:0])
		var cand []int
		for _, j := range buf {
			if ValidTravel(w, in.Tasks[j], in.Now, in.Travel) {
				cand = append(cand, j)
			}
		}
		sort.Ints(cand)
		in.WorkerCand[i] = cand
		for _, j := range cand {
			in.TaskCand[j] = append(in.TaskCand[j], i)
		}
	}
	// TaskCand lists are built in worker order, already ascending.
}

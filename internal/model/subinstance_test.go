package model

import (
	"math/rand"
	"sort"
	"testing"

	"casc/internal/coop"
	"casc/internal/geo"
)

// randomSubInstance builds a well-connected random batch for the
// SubInstance tests (a local twin of the assign package's helper — model
// cannot import assign).
func randomSubInstance(r *rand.Rand, nW, nT, b int) *Instance {
	in := &Instance{
		Quality: coop.Synthetic{N: nW, Seed: uint64(r.Int63())},
		B:       b,
	}
	for i := 0; i < nW; i++ {
		in.Workers = append(in.Workers, Worker{
			ID:     i,
			Loc:    geo.Pt(r.Float64(), r.Float64()),
			Speed:  0.02 + r.Float64()*0.08,
			Radius: 0.1 + r.Float64()*0.2,
		})
	}
	for j := 0; j < nT; j++ {
		in.Tasks = append(in.Tasks, Task{
			ID:       j,
			Loc:      geo.Pt(r.Float64(), r.Float64()),
			Capacity: b + r.Intn(3),
			Deadline: 2 + r.Float64()*3,
		})
	}
	in.BuildCandidates(IndexLinear)
	return in
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

func TestSubInstanceRemap(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	in := randomSubInstance(r, 30, 12, 2)
	// Deliberately unsorted selections: SubInstance canonicalises.
	wIDs := []int{17, 3, 25, 8, 0, 11, 29, 5}
	tIDs := []int{9, 1, 4, 11, 0}
	sub, m := in.SubInstance(wIDs, tIDs)

	if err := sub.Validate(); err != nil {
		t.Fatalf("sub.Validate: %v", err)
	}
	if !sort.IntsAreSorted(m.WorkerIDs) || !sort.IntsAreSorted(m.TaskIDs) {
		t.Fatalf("mapping not ascending: %v / %v", m.WorkerIDs, m.TaskIDs)
	}
	if len(m.WorkerIDs) != len(wIDs) || len(m.TaskIDs) != len(tIDs) {
		t.Fatalf("mapping sizes %d/%d, want %d/%d", len(m.WorkerIDs), len(m.TaskIDs), len(wIDs), len(tIDs))
	}
	if sub.B != in.B || sub.Now != in.Now {
		t.Errorf("B/Now not carried over")
	}
	for i, pw := range m.WorkerIDs {
		if sub.Workers[i].ID != in.Workers[pw].ID {
			t.Errorf("sub worker %d is parent %d, want parent %d", i, sub.Workers[i].ID, in.Workers[pw].ID)
		}
		var want []int
		for _, pt := range in.WorkerCand[pw] {
			if j := indexOf(m.TaskIDs, pt); j >= 0 {
				want = append(want, j)
			}
		}
		got := sub.WorkerCand[i]
		if len(got) != len(want) {
			t.Fatalf("worker %d candidates %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("worker %d candidates %v, want %v", i, got, want)
			}
		}
	}
	// TaskCand is the exact transpose of WorkerCand, ascending.
	for j, cand := range sub.TaskCand {
		if !sort.IntsAreSorted(cand) {
			t.Errorf("task %d candidate workers %v not ascending", j, cand)
		}
		for _, i := range cand {
			if indexOf(sub.WorkerCand[i], j) < 0 {
				t.Errorf("task %d lists worker %d but not vice versa", j, i)
			}
		}
	}
	// Quality is the parent's, re-indexed.
	for i := range m.WorkerIDs {
		for k := range m.WorkerIDs {
			got := sub.Quality.Quality(i, k)
			want := in.Quality.Quality(m.WorkerIDs[i], m.WorkerIDs[k])
			if got != want {
				t.Fatalf("Quality(%d,%d) = %v, want parent's %v", i, k, got, want)
			}
		}
	}
}

func TestSubInstanceLift(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	in := randomSubInstance(r, 24, 10, 2)
	sub, m := in.SubInstance([]int{2, 5, 7, 9, 13, 18, 21}, []int{0, 3, 6, 8})

	// Greedily fill the sub-assignment, then lift it onto the parent.
	sa := NewAssignment(sub)
	left := make([]int, len(sub.Tasks))
	for j, task := range sub.Tasks {
		left[j] = task.Capacity
	}
	for w, cand := range sub.WorkerCand {
		for _, j := range cand {
			if left[j] > 0 {
				sa.Assign(w, j)
				left[j]--
				break
			}
		}
	}
	pa := NewAssignment(in)
	m.Lift(sa, pa)
	if err := pa.Validate(in); err != nil {
		t.Fatalf("lifted assignment invalid: %v", err)
	}
	if pa.NumAssigned() != sa.NumAssigned() {
		t.Fatalf("lift lost pairs: %d, want %d", pa.NumAssigned(), sa.NumAssigned())
	}
	for w, j := range sa.WorkerTask {
		if j == Unassigned {
			continue
		}
		if got := pa.WorkerTask[m.WorkerIDs[w]]; got != m.TaskIDs[j] {
			t.Errorf("parent worker %d assigned task %d, want %d", m.WorkerIDs[w], got, m.TaskIDs[j])
		}
	}
}

func TestSubInstancePanics(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	in := randomSubInstance(r, 10, 5, 2)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate worker", func() { in.SubInstance([]int{1, 1}, []int{0}) })
	mustPanic("duplicate task", func() { in.SubInstance([]int{1}, []int{0, 0}) })
	mustPanic("worker out of range", func() { in.SubInstance([]int{10}, []int{0}) })
	mustPanic("task out of range", func() { in.SubInstance([]int{0}, []int{5}) })
	bare := &Instance{Workers: in.Workers, Tasks: in.Tasks, Quality: in.Quality, B: in.B}
	mustPanic("no candidates", func() { bare.SubInstance([]int{0}, []int{0}) })
}

package model

// CandidateBuffers holds reusable candidate-list storage for callers that
// rebuild an Instance's WorkerCand/TaskCand every round from maintained
// adjacency (the incremental batch engine). Across rounds both the [][]int
// headers and the inner slices keep their capacity, so a steady-state
// rebuild allocates nothing.
//
// The filling contract mirrors BuildCandidates exactly: the caller appends
// ascending task positions to WorkerCand[i] for each worker position i, then
// calls DeriveTaskCand, then Install. The only observable difference from
// BuildCandidates is that empty lists are zero-length slices rather than
// nil, which no consumer distinguishes (solvers, NumValidPairs, partition,
// and SubInstance all go through len).
type CandidateBuffers struct {
	WorkerCand [][]int
	TaskCand   [][]int
}

// Reset prepares the buffers for nW workers and nT tasks with every list
// empty, reusing prior capacity.
func (b *CandidateBuffers) Reset(nW, nT int) {
	b.WorkerCand = resetLists(b.WorkerCand, nW)
	b.TaskCand = resetLists(b.TaskCand, nT)
}

// DeriveTaskCand fills TaskCand from the filled WorkerCand lists by the same
// worker-major pass BuildCandidates uses: TaskCand[j] collects worker
// positions in ascending worker order, so the lists come out ascending
// without a sort.
func (b *CandidateBuffers) DeriveTaskCand() {
	for i := range b.TaskCand {
		b.TaskCand[i] = b.TaskCand[i][:0]
	}
	for w, cand := range b.WorkerCand {
		for _, j := range cand {
			b.TaskCand[j] = append(b.TaskCand[j], w)
		}
	}
}

// Install points in at the buffers. The instance borrows the storage: it is
// valid until the next Reset, which is the per-round cadence the buffers
// exist for.
func (b *CandidateBuffers) Install(in *Instance) {
	in.WorkerCand = b.WorkerCand
	in.TaskCand = b.TaskCand
}

// resetLists resizes s to n headers, emptying survivors and reusing
// capacity everywhere. The result is non-nil even at n == 0: partition's
// Build distinguishes "built, empty" from "never built" by nilness.
func resetLists(s [][]int, n int) [][]int {
	if cap(s) < n || s == nil {
		grown := make([][]int, n)
		copy(grown, s)
		s = grown
	}
	s = s[:n]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

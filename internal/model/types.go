// Package model defines the CA-SC problem exactly as in §II of the paper:
// cooperation-aware moving workers (Definition 1), spatial tasks
// (Definition 2), valid worker-and-task pairs (Definition 3), the
// cooperation quality revenue Q(W_j) of Equation 2, the overall objective
// Q(T) of Equation 3, and the quality increase ΔQ(w_i, t_j) of Equation 4.
// It also builds the per-worker candidate task sets via a pluggable spatial
// index (Algorithm 1 lines 4-5).
package model

import (
	"fmt"

	"casc/internal/geo"
)

// Worker is a cooperation-aware moving worker (Definition 1). Workers are
// addressed by their position in the Instance's slice; ID records a stable
// external identifier for datasets and logs.
type Worker struct {
	ID     int
	Loc    geo.Point // l_i: current location
	Speed  float64   // v_i: moving speed (space units per time unit)
	Radius float64   // r_i: working-area radius
	Arrive float64   // ϕ_i: timestamp the worker came to the system
}

// Task is a spatial task (Definition 2).
type Task struct {
	ID       int
	Loc      geo.Point // l_j: required location
	Capacity int       // a_j: maximum number of workers
	Created  float64   // ϕ_j: creation timestamp
	Deadline float64   // τ_j: absolute deadline
}

// RemainingTime returns τ_j − now, the slack a worker has to reach the task.
func (t Task) RemainingTime(now float64) float64 { return t.Deadline - now }

// Valid reports whether ⟨w, t⟩ is a valid worker-and-task pair at time now
// (Definition 3): the task was created before the worker is considered, the
// task location lies in the worker's working area, and the worker can reach
// it before the deadline: d(l_i, l_j)/v_i ≤ τ_j − now.
func Valid(w Worker, t Task, now float64) bool {
	return ValidTravel(w, t, now, nil)
}

// TravelFunc returns the travel time for a worker to reach a task; it
// replaces the default Euclidean d(l_i,l_j)/v_i when a more realistic
// movement model (e.g. a road network, see package roadnet) is in play.
// Implementations must be ≥ the Euclidean time divided by any speed-up the
// network could offer — in this repository they are always ≥ Euclidean,
// since roads only detour.
type TravelFunc func(w Worker, t Task) float64

// ValidTravel is Valid with a custom travel-time model (nil falls back to
// Euclidean). The working-area constraint stays Euclidean — it models the
// worker's *preference* disc, not reachability.
func ValidTravel(w Worker, t Task, now float64, travel TravelFunc) bool {
	if t.Created > now || w.Arrive > now {
		return false
	}
	slack := t.Deadline - now
	if slack < 0 {
		return false
	}
	d := w.Loc.Dist(t.Loc)
	if d > w.Radius {
		return false
	}
	if travel == nil {
		return geo.TravelTime(w.Loc, t.Loc, w.Speed) <= slack
	}
	return travel(w, t) <= slack
}

// Instance is one batch of the CA-SC problem: the available workers and
// tasks at timestamp Now, their pairwise cooperation qualities, and the
// minimum group size B. Candidate sets are built by BuildCandidates.
type Instance struct {
	Workers []Worker
	Tasks   []Task
	// Quality yields q_i(w_k) by worker slice positions.
	Quality QualityModel
	// B is the least number of workers required to finish any task.
	B int
	// Now is the batch timestamp ϕ.
	Now float64

	// Travel optionally overrides the Euclidean travel-time model used for
	// the deadline-reachability check of Definition 3 (nil: Euclidean).
	Travel TravelFunc

	// WorkerCand[w] lists the indices of tasks valid for worker w,
	// ascending. TaskCand[t] is the reverse mapping. Both are populated by
	// BuildCandidates.
	WorkerCand [][]int
	TaskCand   [][]int
}

// QualityModel mirrors coop.Model; it is re-declared here so model does not
// import coop (keeping the dependency graph acyclic: coop and model are both
// leaves, assign composes them).
type QualityModel interface {
	Quality(i, k int) float64
	NumWorkers() int
}

// Validate checks structural sanity of the instance: positive B, capacities
// ≥ B would be required for a task to ever complete but capacities ≥ 1 are
// accepted (such tasks simply can't be finished), non-negative speeds and
// radii, and a quality model covering all workers.
func (in *Instance) Validate() error {
	if in.B < 1 {
		return fmt.Errorf("model: B = %d, want ≥ 1", in.B)
	}
	if in.Quality == nil {
		return fmt.Errorf("model: nil quality model")
	}
	if n := in.Quality.NumWorkers(); n < len(in.Workers) {
		return fmt.Errorf("model: quality model covers %d workers, instance has %d", n, len(in.Workers))
	}
	for i, w := range in.Workers {
		if w.Speed < 0 || w.Radius < 0 {
			return fmt.Errorf("model: worker %d has negative speed/radius", i)
		}
	}
	for j, t := range in.Tasks {
		if t.Capacity < 1 {
			return fmt.Errorf("model: task %d capacity %d < 1", j, t.Capacity)
		}
	}
	return nil
}

// NumValidPairs returns the total number of valid worker-and-task pairs
// (after BuildCandidates).
func (in *Instance) NumValidPairs() int {
	n := 0
	for _, c := range in.WorkerCand {
		n += len(c)
	}
	return n
}

// String implements fmt.Stringer for logs.
func (w Worker) String() string {
	return fmt.Sprintf("Worker{%d @%s v=%.3f r=%.3f}", w.ID, w.Loc, w.Speed, w.Radius)
}

// String implements fmt.Stringer for logs.
func (t Task) String() string {
	return fmt.Sprintf("Task{%d @%s cap=%d due=%.2f}", t.ID, t.Loc, t.Capacity, t.Deadline)
}

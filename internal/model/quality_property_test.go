package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"casc/internal/coop"
)

// randGroupInstance builds an instance with a random dense quality matrix.
func randGroupInstance(r *rand.Rand, n, b int) *Instance {
	q := coop.NewMatrix(n)
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			q.Set(i, k, r.Float64())
		}
	}
	return &Instance{Quality: q, B: b}
}

func TestGroupQualityPermutationInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	in := randGroupInstance(r, 10, 2)
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		size := 2 + rr.Intn(6)
		ws := rr.Perm(10)[:size]
		q1 := in.GroupQuality(ws, 8)
		shuffled := append([]int(nil), ws...)
		rr.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		q2 := in.GroupQuality(shuffled, 8)
		return math.Abs(q1-q2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("GroupQuality depends on member order: %v", err)
	}
}

func TestGroupQualityBounds(t *testing.T) {
	// With qualities in [0,1] and |W| ≤ cap, Q(W) ∈ [0, 2·C(|W|,2)/(|W|−1)]
	// = [0, |W|] (ordered-pair sum ≤ |W|(|W|−1), denominator |W|−1).
	r := rand.New(rand.NewSource(32))
	in := randGroupInstance(r, 12, 2)
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		size := 2 + rr.Intn(8)
		ws := rr.Perm(12)[:size]
		q := in.GroupQuality(ws, size)
		return q >= 0 && q <= float64(size)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("GroupQuality out of bounds: %v", err)
	}
}

func TestGroupQualityMonotoneUnderQualityIncrease(t *testing.T) {
	// Raising one pair's quality can only raise the group score.
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 50; trial++ {
		n := 6
		q := coop.NewMatrix(n)
		vals := make(map[[2]int]float64)
		for i := 0; i < n; i++ {
			for k := i + 1; k < n; k++ {
				v := r.Float64() * 0.8
				q.Set(i, k, v)
				vals[[2]int{i, k}] = v
			}
		}
		in := &Instance{Quality: q, B: 2}
		ws := []int{0, 1, 2, 3}
		before := in.GroupQuality(ws, 4)
		q.Set(0, 1, vals[[2]int{0, 1}]+0.1)
		after := in.GroupQuality(ws, 4)
		if after < before-1e-12 {
			t.Fatalf("trial %d: raising q(0,1) lowered Q: %v -> %v", trial, before, after)
		}
	}
}

func TestGroupQualityAdditionOfPerfectWorker(t *testing.T) {
	// Adding a worker with quality 1 to everyone never lowers Q when the
	// group has room (its average contribution is maximal).
	n := 8
	q := coop.NewMatrix(n)
	r := rand.New(rand.NewSource(34))
	for i := 1; i < n; i++ {
		for k := i + 1; k < n; k++ {
			q.Set(i, k, r.Float64())
		}
	}
	for k := 1; k < n; k++ {
		q.Set(0, k, 1) // worker 0 is the universal good colleague
	}
	in := &Instance{Quality: q, B: 2}
	for trial := 0; trial < 30; trial++ {
		size := 2 + r.Intn(5)
		perm := r.Perm(n - 1)
		ws := make([]int, size)
		for i := range ws {
			ws[i] = perm[i] + 1
		}
		before := in.GroupQuality(ws, size+1)
		after := in.GroupQuality(append(ws, 0), size+1)
		if after < before-1e-9 {
			t.Fatalf("adding a perfect worker lowered Q: %v -> %v (group %v)", before, after, ws)
		}
	}
}

func TestCandidatesMonotoneInRadius(t *testing.T) {
	// Growing a worker's radius can only grow its candidate set.
	r := rand.New(rand.NewSource(35))
	in := randomInstance(r, 40, 30)
	in.BuildCandidates(IndexRTree)
	small := make([][]int, len(in.Workers))
	for i, c := range in.WorkerCand {
		small[i] = append([]int(nil), c...)
	}
	for i := range in.Workers {
		in.Workers[i].Radius *= 2
	}
	in.BuildCandidates(IndexRTree)
	for i := range in.Workers {
		set := map[int]bool{}
		for _, t0 := range in.WorkerCand[i] {
			set[t0] = true
		}
		for _, t0 := range small[i] {
			if !set[t0] {
				t.Fatalf("worker %d lost candidate %d after radius grew", i, t0)
			}
		}
	}
}

func TestCandidatesMonotoneInDeadline(t *testing.T) {
	r := rand.New(rand.NewSource(36))
	in := randomInstance(r, 40, 30)
	in.BuildCandidates(IndexGrid)
	small := make([]int, len(in.Workers))
	for i, c := range in.WorkerCand {
		small[i] = len(c)
	}
	for j := range in.Tasks {
		in.Tasks[j].Deadline += 10
	}
	in.BuildCandidates(IndexGrid)
	for i, c := range in.WorkerCand {
		if len(c) < small[i] {
			t.Fatalf("worker %d lost candidates after deadlines extended", i)
		}
	}
}

func TestTotalScoreIsSumOfGroupQualities(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	in := randomInstance(r, 30, 10)
	in.BuildCandidates(IndexLinear)
	a := NewAssignment(in)
	// Assign random valid pairs respecting capacity.
	for w := range in.Workers {
		if len(in.WorkerCand[w]) == 0 || r.Float64() < 0.3 {
			continue
		}
		t0 := in.WorkerCand[w][r.Intn(len(in.WorkerCand[w]))]
		if len(a.TaskWorkers[t0]) < in.Tasks[t0].Capacity {
			a.Assign(w, t0)
		}
	}
	var sum float64
	for t0, ws := range a.TaskWorkers {
		sum += in.GroupQuality(ws, in.Tasks[t0].Capacity)
	}
	if math.Abs(sum-a.TotalScore(in)) > 1e-9 {
		t.Errorf("TotalScore %v != Σ GroupQuality %v", a.TotalScore(in), sum)
	}
}

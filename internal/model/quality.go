package model

// This file implements the cooperation quality revenue of Equation 2, the
// overall objective of Equation 3, and the quality increase of Equation 4,
// plus an incremental per-task accumulator (GroupScore) that lets the
// solvers evaluate join/leave deltas in O(|W_j|) quality lookups instead of
// O(|W_j|^2).

// GroupQuality computes Q(W) for the worker set ws assigned to a task with
// the given capacity (Equation 2):
//
//	Q(W) = 0                                   if |W| < B
//	Q(W) = Σ_i Σ_{k≠i} q_i(w_k) / (min(|W|,cap)−1)   otherwise
//
// ws holds worker slice positions. The ordered-pair sum is computed as
// written in the paper; for symmetric models it equals twice the unordered
// sum.
func (in *Instance) GroupQuality(ws []int, capacity int) float64 {
	n := len(ws)
	if n < in.B {
		return 0
	}
	denom := n
	if capacity < denom {
		denom = capacity
	}
	if denom < 2 {
		// A single-worker "group" has no pairs; with B ≥ 2 this is
		// unreachable, but guard the division anyway.
		return 0
	}
	var sum float64
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				sum += in.Quality.Quality(ws[a], ws[b])
			}
		}
	}
	return sum / float64(denom-1)
}

// WorkerAvgQuality returns q_i(W_j), the average quality score of worker w
// within group ws on a task with the given capacity:
// Σ_{k≠i} q_i(w_k) / (min(|W_j|,cap)−1). It returns 0 when |ws| < B
// (no revenue below the minimum group size).
func (in *Instance) WorkerAvgQuality(w int, ws []int, capacity int) float64 {
	n := len(ws)
	if n < in.B {
		return 0
	}
	denom := n
	if capacity < denom {
		denom = capacity
	}
	if denom < 2 {
		return 0
	}
	var sum float64
	for _, k := range ws {
		if k != w {
			sum += in.Quality.Quality(w, k)
		}
	}
	return sum / float64(denom-1)
}

// DeltaQuality computes ΔQ(w, t) of Equation 4 for worker w joining the
// worker set ws (which must NOT already contain w) of a task with the given
// capacity: Q(W ∪ {w}) − Q(W).
func (in *Instance) DeltaQuality(w int, ws []int, capacity int) float64 {
	with := make([]int, len(ws)+1)
	copy(with, ws)
	with[len(ws)] = w
	return in.GroupQuality(with, capacity) - in.GroupQuality(ws, capacity)
}

// GroupScore incrementally tracks the ordered-pair quality sum S of one
// task's worker set so Q and join/leave deltas cost O(|W|) instead of
// O(|W|^2). It is the workhorse of the GT solver's inner loop.
type GroupScore struct {
	in       *Instance
	capacity int
	members  []int
	pairSum  float64 // Σ_i Σ_{k≠i} q_i(w_k) over current members
}

// NewGroupScore returns an empty accumulator for a task with the given
// capacity.
func (in *Instance) NewGroupScore(capacity int) *GroupScore {
	return &GroupScore{in: in, capacity: capacity}
}

// Reset re-points the accumulator at a (possibly different) instance and
// capacity and empties it, keeping the member slice's storage. It exists so
// the solver scratch arena can recycle GroupScores across solves without
// allocating.
func (g *GroupScore) Reset(in *Instance, capacity int) {
	g.in = in
	g.capacity = capacity
	g.members = g.members[:0]
	g.pairSum = 0
}

// Members returns the current member slice (not a copy; do not mutate).
func (g *GroupScore) Members() []int { return g.members }

// Len returns the number of members.
func (g *GroupScore) Len() int { return len(g.members) }

// Capacity returns the task capacity a_j.
func (g *GroupScore) Capacity() int { return g.capacity }

// Contains reports whether worker w is a member.
func (g *GroupScore) Contains(w int) bool {
	for _, m := range g.members {
		if m == w {
			return true
		}
	}
	return false
}

// crossSum returns Σ_{k ∈ members} (q_w(k) + q_k(w)), the ordered-pair mass
// worker w adds to (or removes from) the group.
func (g *GroupScore) crossSum(w int) float64 {
	var s float64
	for _, m := range g.members {
		if m != w {
			s += g.in.Quality.Quality(w, m) + g.in.Quality.Quality(m, w)
		}
	}
	return s
}

func (g *GroupScore) qOf(n int, pairSum float64) float64 {
	if n < g.in.B {
		return 0
	}
	denom := n
	if g.capacity < denom {
		denom = g.capacity
	}
	if denom < 2 {
		return 0
	}
	return pairSum / float64(denom-1)
}

// Q returns the current Q(W) per Equation 2.
func (g *GroupScore) Q() float64 { return g.qOf(len(g.members), g.pairSum) }

// JoinDelta returns Q(W ∪ {w}) − Q(W) without mutating the group. w must
// not be a member.
func (g *GroupScore) JoinDelta(w int) float64 {
	newSum := g.pairSum + g.crossSum(w)
	return g.qOf(len(g.members)+1, newSum) - g.Q()
}

// LeaveDelta returns Q(W) − Q(W \ {w}), i.e. ΔQ(w, t) of Equation 4, for a
// current member w.
func (g *GroupScore) LeaveDelta(w int) float64 {
	newSum := g.pairSum - g.crossSum(w)
	return g.Q() - g.qOf(len(g.members)-1, newSum)
}

// SwapDelta returns the change in Q when member out is replaced by
// non-member in: Q(W \ {out} ∪ {in}) − Q(W).
func (g *GroupScore) SwapDelta(out, in int) float64 {
	sum := g.pairSum - g.crossSum(out)
	// crossSum of `in` against members-without-out.
	var cs float64
	for _, m := range g.members {
		if m != out && m != in {
			cs += g.in.Quality.Quality(in, m) + g.in.Quality.Quality(m, in)
		}
	}
	sum += cs
	return g.qOf(len(g.members), sum) - g.Q()
}

// Join adds worker w. It panics if w is already a member or the group is at
// capacity — callers decide eviction policy explicitly via Leave/Join.
func (g *GroupScore) Join(w int) {
	if g.Contains(w) {
		panic("model: worker already in group")
	}
	if len(g.members) >= g.capacity {
		panic("model: group at capacity")
	}
	g.pairSum += g.crossSum(w)
	g.members = append(g.members, w)
}

// Leave removes member w. It panics if w is not a member.
func (g *GroupScore) Leave(w int) {
	for i, m := range g.members {
		if m == w {
			g.members[i] = g.members[len(g.members)-1]
			g.members = g.members[:len(g.members)-1]
			g.pairSum -= g.crossSum(w)
			return
		}
	}
	panic("model: worker not in group")
}

// Recompute rebuilds the pair sum from scratch; used by tests to verify the
// incremental bookkeeping.
func (g *GroupScore) Recompute() {
	var sum float64
	for a := 0; a < len(g.members); a++ {
		for b := 0; b < len(g.members); b++ {
			if a != b {
				sum += g.in.Quality.Quality(g.members[a], g.members[b])
			}
		}
	}
	g.pairSum = sum
}

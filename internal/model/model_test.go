package model

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"casc/internal/coop"
	"casc/internal/geo"
)

func TestValidPair(t *testing.T) {
	w := Worker{Loc: geo.Pt(0, 0), Speed: 0.1, Radius: 0.5, Arrive: 0}
	tests := []struct {
		name string
		task Task
		now  float64
		want bool
	}{
		{"reachable in area", Task{Loc: geo.Pt(0.3, 0), Deadline: 10}, 0, true},
		{"outside area", Task{Loc: geo.Pt(0.6, 0), Deadline: 100}, 0, false},
		{"too slow for deadline", Task{Loc: geo.Pt(0.3, 0), Deadline: 2}, 0, false},
		{"exactly at deadline", Task{Loc: geo.Pt(0.3, 0), Deadline: 3}, 0, true},
		{"expired task", Task{Loc: geo.Pt(0.1, 0), Deadline: 5}, 6, false},
		{"task created in the future", Task{Loc: geo.Pt(0.1, 0), Created: 5, Deadline: 10}, 0, false},
		{"on area boundary", Task{Loc: geo.Pt(0.5, 0), Deadline: 100}, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Valid(w, tt.task, tt.now); got != tt.want {
				t.Errorf("Valid = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestValidZeroSpeedWorker(t *testing.T) {
	w := Worker{Loc: geo.Pt(0.2, 0.2), Speed: 0, Radius: 0.5}
	colocated := Task{Loc: geo.Pt(0.2, 0.2), Deadline: 1}
	if !Valid(w, colocated, 0) {
		t.Error("zero-speed worker at the task location should be valid")
	}
	distant := Task{Loc: geo.Pt(0.3, 0.2), Deadline: 1000}
	if Valid(w, distant, 0) {
		t.Error("zero-speed worker can never reach a distant task")
	}
}

func TestValidWorkerNotYetArrived(t *testing.T) {
	w := Worker{Loc: geo.Pt(0, 0), Speed: 1, Radius: 1, Arrive: 5}
	task := Task{Loc: geo.Pt(0.1, 0), Deadline: 10}
	if Valid(w, task, 0) {
		t.Error("worker arriving later should be invalid now")
	}
	if !Valid(w, task, 5) {
		t.Error("worker should be valid once arrived")
	}
}

// smallInstance builds the running example of the paper's introduction
// (Example 1, Figure 1): two tasks needing two workers each, four workers.
// Cooperation qualities are chosen so that the naive assignment
// {w1,w2}→t1, {w3,w4}→t2 scores 0.2 and the good one {w1,w4}→t1,
// {w2,w3}→t2 scores 1.8, as the example states.
func smallInstance() *Instance {
	q := coop.NewMatrix(4)
	q.Set(0, 1, 0.05) // q(w1,w2)
	q.Set(2, 3, 0.05) // q(w3,w4)
	q.Set(0, 3, 0.50) // q(w1,w4)
	q.Set(1, 2, 0.40) // q(w2,w3)
	in := &Instance{
		Workers: []Worker{
			{ID: 1, Loc: geo.Pt(0.2, 0.2), Speed: 1, Radius: 0.4},
			{ID: 2, Loc: geo.Pt(0.4, 0.4), Speed: 1, Radius: 0.9},
			{ID: 3, Loc: geo.Pt(0.7, 0.7), Speed: 1, Radius: 0.9},
			{ID: 4, Loc: geo.Pt(0.3, 0.5), Speed: 1, Radius: 0.9},
		},
		Tasks: []Task{
			{ID: 1, Loc: geo.Pt(0.3, 0.3), Capacity: 2, Deadline: 10},
			{ID: 2, Loc: geo.Pt(0.6, 0.6), Capacity: 2, Deadline: 10},
		},
		Quality: q,
		B:       2,
	}
	return in
}

func TestExample1Scores(t *testing.T) {
	in := smallInstance()
	bad := NewAssignment(in)
	bad.Assign(0, 0)
	bad.Assign(1, 0)
	bad.Assign(2, 1)
	bad.Assign(3, 1)
	if got := bad.TotalScore(in); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("naive assignment score = %v, want 0.2", got)
	}
	good := NewAssignment(in)
	good.Assign(0, 0)
	good.Assign(3, 0)
	good.Assign(1, 1)
	good.Assign(2, 1)
	if got := good.TotalScore(in); math.Abs(got-1.8) > 1e-12 {
		t.Errorf("good assignment score = %v, want 1.8", got)
	}
}

func TestGroupQualityEquation2(t *testing.T) {
	q := coop.NewMatrix(4)
	q.Set(0, 1, 0.6)
	q.Set(0, 2, 0.2)
	q.Set(1, 2, 0.4)
	in := &Instance{Quality: q, B: 2}

	if got := in.GroupQuality([]int{0}, 5); got != 0 {
		t.Errorf("below B: Q = %v, want 0", got)
	}
	// Three workers, capacity 3: ordered pair sum = 2*(0.6+0.2+0.4) = 2.4,
	// denominator min(3,3)-1 = 2 → Q = 1.2.
	if got := in.GroupQuality([]int{0, 1, 2}, 3); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("Q = %v, want 1.2", got)
	}
	// Capacity 2 with 3 workers: denominator min(3,2)-1 = 1 → Q = 2.4.
	if got := in.GroupQuality([]int{0, 1, 2}, 2); math.Abs(got-2.4) > 1e-12 {
		t.Errorf("over-capacity Q = %v, want 2.4", got)
	}
	// Pair: Q = 2*0.6 / 1.
	if got := in.GroupQuality([]int{0, 1}, 5); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("pair Q = %v, want 1.2", got)
	}
}

func TestWorkerAvgQualityDecomposition(t *testing.T) {
	// Q(W) must equal Σ_i q_i(W), per the paper's remark after Definition 2.
	r := rand.New(rand.NewSource(1))
	q := coop.NewMatrix(6)
	for i := 0; i < 6; i++ {
		for k := i + 1; k < 6; k++ {
			q.Set(i, k, r.Float64())
		}
	}
	in := &Instance{Quality: q, B: 2}
	ws := []int{0, 2, 3, 5}
	var sum float64
	for _, w := range ws {
		sum += in.WorkerAvgQuality(w, ws, 4)
	}
	if total := in.GroupQuality(ws, 4); math.Abs(total-sum) > 1e-9 {
		t.Errorf("Σ q_i(W) = %v, Q(W) = %v", sum, total)
	}
	if got := in.WorkerAvgQuality(0, []int{0}, 4); got != 0 {
		t.Errorf("avg quality below B = %v", got)
	}
}

func TestDeltaQualityEquation4(t *testing.T) {
	q := coop.NewMatrix(3)
	q.Set(0, 1, 0.5)
	q.Set(0, 2, 0.3)
	q.Set(1, 2, 0.7)
	in := &Instance{Quality: q, B: 2}
	// Worker 2 joining {0,1} with capacity 3:
	// Q({0,1,2}) = 2*(0.5+0.3+0.7)/2 = 1.5; Q({0,1}) = 1.0; Δ = 0.5.
	if got := in.DeltaQuality(2, []int{0, 1}, 3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ΔQ = %v, want 0.5", got)
	}
	// Worker 1 joining {0}: group reaches B, Δ = Q({0,1}) = 1.0.
	if got := in.DeltaQuality(1, []int{0}, 3); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("ΔQ to reach B = %v, want 1.0", got)
	}
}

func TestGroupScoreIncrementalConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const n = 12
	q := coop.NewMatrix(n)
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			q.Set(i, k, r.Float64())
		}
	}
	in := &Instance{Quality: q, B: 3}
	g := in.NewGroupScore(8)
	inGroup := map[int]bool{}
	for step := 0; step < 2000; step++ {
		w := r.Intn(n)
		if inGroup[w] {
			// Check LeaveDelta against ground truth before leaving.
			before := g.Q()
			want := before - in.GroupQuality(removeOne(g.Members(), w), g.Capacity())
			if got := g.LeaveDelta(w); math.Abs(got-want) > 1e-9 {
				t.Fatalf("step %d: LeaveDelta = %v, want %v", step, got, want)
			}
			g.Leave(w)
			delete(inGroup, w)
		} else if g.Len() < g.Capacity() {
			withW := append(append([]int(nil), g.Members()...), w)
			want := in.GroupQuality(withW, g.Capacity()) - g.Q()
			if got := g.JoinDelta(w); math.Abs(got-want) > 1e-9 {
				t.Fatalf("step %d: JoinDelta = %v, want %v", step, got, want)
			}
			g.Join(w)
			inGroup[w] = true
		}
		if got, want := g.Q(), in.GroupQuality(g.Members(), g.Capacity()); math.Abs(got-want) > 1e-9 {
			t.Fatalf("step %d: incremental Q = %v, recomputed %v", step, got, want)
		}
	}
}

func removeOne(ws []int, w int) []int {
	out := make([]int, 0, len(ws)-1)
	for _, x := range ws {
		if x != w {
			out = append(out, x)
		}
	}
	return out
}

func TestGroupScoreSwapDelta(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const n = 10
	q := coop.NewMatrix(n)
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			q.Set(i, k, r.Float64())
		}
	}
	in := &Instance{Quality: q, B: 2}
	g := in.NewGroupScore(4)
	for _, w := range []int{0, 1, 2, 3} {
		g.Join(w)
	}
	for out := 0; out < 4; out++ {
		for inW := 4; inW < n; inW++ {
			swapped := append(removeOne([]int{0, 1, 2, 3}, out), inW)
			want := in.GroupQuality(swapped, 4) - g.Q()
			if got := g.SwapDelta(out, inW); math.Abs(got-want) > 1e-9 {
				t.Fatalf("SwapDelta(%d,%d) = %v, want %v", out, inW, got, want)
			}
		}
	}
}

func TestGroupScorePanics(t *testing.T) {
	in := &Instance{Quality: coop.NewMatrix(4), B: 2}
	fullGroup := func() *GroupScore {
		g := in.NewGroupScore(2)
		g.Join(0)
		g.Join(1)
		return g
	}
	for name, f := range map[string]func(){
		"join full":       func() { fullGroup().Join(2) },
		"join duplicate":  func() { g := fullGroup(); g.Leave(0); g.Join(1) },
		"leave nonmember": func() { fullGroup().Leave(3) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}

func TestBuildCandidatesAllIndexesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	in := randomInstance(r, 120, 60)
	var results [][][]int
	for _, kind := range []IndexKind{IndexRTree, IndexGrid, IndexLinear} {
		in.BuildCandidates(kind)
		cp := make([][]int, len(in.WorkerCand))
		for i, c := range in.WorkerCand {
			cp[i] = append([]int(nil), c...)
		}
		results = append(results, cp)
	}
	for i := range results[0] {
		for v := 1; v < len(results); v++ {
			if !equalInts(results[0][i], results[v][i]) {
				t.Fatalf("worker %d: index kinds disagree: %v vs %v", i, results[0][i], results[v][i])
			}
		}
	}
	// Cross-check against the definition directly.
	for i, w := range in.Workers {
		var want []int
		for j, task := range in.Tasks {
			if Valid(w, task, in.Now) {
				want = append(want, j)
			}
		}
		if !equalInts(results[0][i], want) {
			t.Fatalf("worker %d: candidates %v, want %v", i, results[0][i], want)
		}
	}
	// Reverse map consistency.
	for j, ws := range in.TaskCand {
		for _, w := range ws {
			if !containsInt(in.WorkerCand[w], j) {
				t.Fatalf("TaskCand inconsistent: task %d lists worker %d", j, w)
			}
		}
	}
}

func randomInstance(r *rand.Rand, nW, nT int) *Instance {
	in := &Instance{
		Quality: coop.Synthetic{N: nW, Seed: 9},
		B:       3,
		Now:     1,
	}
	for i := 0; i < nW; i++ {
		in.Workers = append(in.Workers, Worker{
			ID:     i,
			Loc:    geo.Pt(r.Float64(), r.Float64()),
			Speed:  0.01 + r.Float64()*0.05,
			Radius: 0.02 + r.Float64()*0.15,
		})
	}
	for j := 0; j < nT; j++ {
		in.Tasks = append(in.Tasks, Task{
			ID:       j,
			Loc:      geo.Pt(r.Float64(), r.Float64()),
			Capacity: 3 + r.Intn(3),
			Deadline: 1 + 1 + r.Float64()*4,
		})
	}
	return in
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestAssignmentOps(t *testing.T) {
	in := smallInstance()
	in.BuildCandidates(IndexLinear)
	a := NewAssignment(in)
	a.Assign(0, 0)
	a.Assign(1, 0)
	if a.NumAssigned() != 2 {
		t.Errorf("NumAssigned = %d", a.NumAssigned())
	}
	if a.TaskOf(0) != 0 || a.TaskOf(2) != Unassigned {
		t.Error("TaskOf wrong")
	}
	a.Move(1, 1)
	if a.TaskOf(1) != 1 || len(a.TaskWorkers[0]) != 1 {
		t.Error("Move did not update both maps")
	}
	a.Unassign(0)
	a.Unassign(0) // idempotent
	if a.NumAssigned() != 1 {
		t.Errorf("NumAssigned after unassign = %d", a.NumAssigned())
	}
	pairs := a.Pairs()
	if len(pairs) != 1 || pairs[0] != (Pair{Worker: 1, Task: 1}) {
		t.Errorf("Pairs = %v", pairs)
	}
	c := a.Clone()
	c.Assign(2, 1)
	if a.NumAssigned() != 1 {
		t.Error("Clone shares state with original")
	}
}

func TestAssignmentAssignTwicePanics(t *testing.T) {
	in := smallInstance()
	a := NewAssignment(in)
	a.Assign(0, 0)
	defer func() {
		if recover() == nil {
			t.Error("double assign should panic")
		}
	}()
	a.Assign(0, 1)
}

func TestAssignmentValidate(t *testing.T) {
	in := smallInstance()
	in.BuildCandidates(IndexLinear)
	a := NewAssignment(in)
	a.Assign(0, 0)
	a.Assign(1, 0)
	if err := a.Validate(in); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
	// Violate capacity by hand.
	a.TaskWorkers[0] = append(a.TaskWorkers[0], 2, 3)
	if err := a.Validate(in); err == nil {
		t.Error("capacity violation not caught")
	}
	// Invalid pair: worker 0 (radius 0.4 at (0.2,0.2)) cannot reach task 2
	// at (0.6,0.6) (distance ~0.57).
	b := NewAssignment(in)
	b.Assign(0, 1)
	if err := b.Validate(in); err == nil {
		t.Error("working-area violation not caught")
	}
	// Inconsistent redundant maps.
	c := NewAssignment(in)
	c.Assign(1, 0)
	c.WorkerTask[1] = Unassigned
	if err := c.Validate(in); err == nil {
		t.Error("map inconsistency not caught")
	}
}

func TestInstanceValidate(t *testing.T) {
	in := smallInstance()
	if err := in.Validate(); err != nil {
		t.Errorf("good instance rejected: %v", err)
	}
	bad := smallInstance()
	bad.B = 0
	if err := bad.Validate(); err == nil {
		t.Error("B=0 accepted")
	}
	bad2 := smallInstance()
	bad2.Quality = coop.NewMatrix(2)
	if err := bad2.Validate(); err == nil {
		t.Error("undersized quality model accepted")
	}
	bad3 := smallInstance()
	bad3.Workers[0].Speed = -1
	if err := bad3.Validate(); err == nil {
		t.Error("negative speed accepted")
	}
	bad4 := smallInstance()
	bad4.Tasks[0].Capacity = 0
	if err := bad4.Validate(); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestCompletedTasksAndNumValidPairs(t *testing.T) {
	in := smallInstance()
	in.BuildCandidates(IndexLinear)
	if in.NumValidPairs() == 0 {
		t.Fatal("expected some valid pairs")
	}
	a := NewAssignment(in)
	a.Assign(1, 1)
	if a.CompletedTasks(in) != 0 {
		t.Error("one worker below B counted as complete")
	}
	a.Assign(2, 1)
	if a.CompletedTasks(in) != 1 {
		t.Error("task with B workers not counted")
	}
}

func TestStringers(t *testing.T) {
	w := Worker{ID: 3, Loc: geo.Pt(0.1, 0.2), Speed: 0.05, Radius: 0.3}
	if s := w.String(); !strings.Contains(s, "Worker{3") || !strings.Contains(s, "v=0.050") {
		t.Errorf("worker string: %s", s)
	}
	task := Task{ID: 7, Loc: geo.Pt(0.5, 0.5), Capacity: 4, Deadline: 2.5}
	if s := task.String(); !strings.Contains(s, "Task{7") || !strings.Contains(s, "cap=4") {
		t.Errorf("task string: %s", s)
	}
	in := smallInstance()
	a := NewAssignment(in)
	for i := 0; i < 4; i++ {
		a.Assign(i, i%2)
	}
	s := a.String()
	if !strings.Contains(s, "4 pairs") || !strings.Contains(s, "w0→t0") {
		t.Errorf("assignment string: %s", s)
	}
	// Truncation branch.
	big := &Instance{Quality: coop.NewMatrix(10), B: 2}
	for i := 0; i < 10; i++ {
		big.Workers = append(big.Workers, Worker{ID: i, Loc: geo.Pt(0.5, 0.5), Speed: 1, Radius: 1})
	}
	big.Tasks = []Task{{ID: 0, Loc: geo.Pt(0.5, 0.5), Capacity: 10, Deadline: 5}}
	ab := NewAssignment(big)
	for i := 0; i < 10; i++ {
		ab.Assign(i, 0)
	}
	if s := ab.String(); !strings.Contains(s, "…(+4)") {
		t.Errorf("truncated string: %s", s)
	}
}

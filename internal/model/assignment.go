package model

import (
	"fmt"
	"sort"
)

// Assignment is a set of valid worker-and-task pairs satisfying the CA-SC
// constraints (Definition 4): each worker serves at most one task and each
// task holds at most a_j workers.
type Assignment struct {
	// WorkerTask[w] is the task index worker w serves, or Unassigned.
	WorkerTask []int
	// TaskWorkers[t] lists the worker indices assigned to task t.
	TaskWorkers [][]int
}

// Unassigned marks a worker with no task.
const Unassigned = -1

// NewAssignment returns an empty assignment for the instance.
func NewAssignment(in *Instance) *Assignment {
	a := &Assignment{
		WorkerTask:  make([]int, len(in.Workers)),
		TaskWorkers: make([][]int, len(in.Tasks)),
	}
	for i := range a.WorkerTask {
		a.WorkerTask[i] = Unassigned
	}
	return a
}

// Reset empties the assignment for reuse over in, keeping the capacity of
// both the header slices and the per-task worker lists. It is the
// allocation-free counterpart of NewAssignment for callers (the solver
// scratch arena) that recycle one Assignment across solves; the only
// observable difference is that previously-used task lists come back as
// zero-length slices rather than nil, which no consumer distinguishes.
func (a *Assignment) Reset(in *Instance) {
	if cap(a.WorkerTask) < len(in.Workers) {
		a.WorkerTask = make([]int, len(in.Workers))
	}
	a.WorkerTask = a.WorkerTask[:len(in.Workers)]
	for i := range a.WorkerTask {
		a.WorkerTask[i] = Unassigned
	}
	if cap(a.TaskWorkers) < len(in.Tasks) {
		grown := make([][]int, len(in.Tasks))
		copy(grown, a.TaskWorkers)
		a.TaskWorkers = grown
	}
	a.TaskWorkers = a.TaskWorkers[:len(in.Tasks)]
	for t := range a.TaskWorkers {
		a.TaskWorkers[t] = a.TaskWorkers[t][:0]
	}
}

// Assign pairs worker w with task t. It panics if w is already assigned —
// use Move to change tasks.
func (a *Assignment) Assign(w, t int) {
	if a.WorkerTask[w] != Unassigned {
		panic(fmt.Sprintf("model: worker %d already assigned to task %d", w, a.WorkerTask[w]))
	}
	a.WorkerTask[w] = t
	a.TaskWorkers[t] = append(a.TaskWorkers[t], w)
}

// Unassign removes worker w from its task, if any.
func (a *Assignment) Unassign(w int) {
	t := a.WorkerTask[w]
	if t == Unassigned {
		return
	}
	a.WorkerTask[w] = Unassigned
	ws := a.TaskWorkers[t]
	for i, x := range ws {
		if x == w {
			ws[i] = ws[len(ws)-1]
			a.TaskWorkers[t] = ws[:len(ws)-1]
			return
		}
	}
	panic(fmt.Sprintf("model: assignment inconsistent for worker %d", w))
}

// Move reassigns worker w to task t (Unassign + Assign).
func (a *Assignment) Move(w, t int) {
	a.Unassign(w)
	a.Assign(w, t)
}

// TaskOf returns the task of worker w, or Unassigned.
func (a *Assignment) TaskOf(w int) int { return a.WorkerTask[w] }

// NumAssigned returns the number of workers with a task.
func (a *Assignment) NumAssigned() int {
	n := 0
	for _, t := range a.WorkerTask {
		if t != Unassigned {
			n++
		}
	}
	return n
}

// Pair is one ⟨worker, task⟩ element of an assignment.
type Pair struct {
	Worker, Task int
}

// Pairs returns the assignment as a sorted pair list.
func (a *Assignment) Pairs() []Pair {
	var ps []Pair
	for w, t := range a.WorkerTask {
		if t != Unassigned {
			ps = append(ps, Pair{Worker: w, Task: t})
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Task != ps[j].Task {
			return ps[i].Task < ps[j].Task
		}
		return ps[i].Worker < ps[j].Worker
	})
	return ps
}

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	c := &Assignment{
		WorkerTask:  append([]int(nil), a.WorkerTask...),
		TaskWorkers: make([][]int, len(a.TaskWorkers)),
	}
	for t, ws := range a.TaskWorkers {
		c.TaskWorkers[t] = append([]int(nil), ws...)
	}
	return c
}

// TotalScore computes the overall cooperation quality revenue Q(T) of
// Equation 3: Σ_j Q(W_j), with Q(W_j) = 0 for tasks holding fewer than B
// workers.
func (a *Assignment) TotalScore(in *Instance) float64 {
	var total float64
	for t, ws := range a.TaskWorkers {
		total += in.GroupQuality(ws, in.Tasks[t].Capacity)
	}
	return total
}

// CompletedTasks returns the number of tasks with at least B workers.
func (a *Assignment) CompletedTasks(in *Instance) int {
	n := 0
	for _, ws := range a.TaskWorkers {
		if len(ws) >= in.B {
			n++
		}
	}
	return n
}

// Validate verifies every CA-SC constraint of Definition 4 against the
// instance: consistency of the two redundant maps, validity of every pair
// (working area + deadline), and the capacity bound. It returns the first
// violation found.
func (a *Assignment) Validate(in *Instance) error {
	if len(a.WorkerTask) != len(in.Workers) || len(a.TaskWorkers) != len(in.Tasks) {
		return fmt.Errorf("model: assignment shape mismatch")
	}
	seen := make(map[int]int) // worker -> task via TaskWorkers
	for t, ws := range a.TaskWorkers {
		if len(ws) > in.Tasks[t].Capacity {
			return fmt.Errorf("model: task %d holds %d workers, capacity %d", t, len(ws), in.Tasks[t].Capacity)
		}
		for _, w := range ws {
			if prev, dup := seen[w]; dup {
				return fmt.Errorf("model: worker %d in tasks %d and %d", w, prev, t)
			}
			seen[w] = t
			if !ValidTravel(in.Workers[w], in.Tasks[t], in.Now, in.Travel) {
				return fmt.Errorf("model: invalid pair ⟨w%d, t%d⟩", w, t)
			}
		}
	}
	for w, t := range a.WorkerTask {
		if t == Unassigned {
			if _, ok := seen[w]; ok {
				return fmt.Errorf("model: worker %d in TaskWorkers but marked unassigned", w)
			}
			continue
		}
		if seen[w] != t {
			return fmt.Errorf("model: worker %d maps to task %d but TaskWorkers says %d", w, t, seen[w])
		}
		delete(seen, w)
	}
	if len(seen) != 0 {
		return fmt.Errorf("model: %d workers present only in TaskWorkers", len(seen))
	}
	return nil
}

// String summarizes the assignment for logs: pair count, completed tasks,
// and the first few pairs.
func (a *Assignment) String() string {
	pairs := a.Pairs()
	s := fmt.Sprintf("Assignment{%d pairs", len(pairs))
	for i, p := range pairs {
		if i == 6 {
			s += fmt.Sprintf(" …(+%d)", len(pairs)-6)
			break
		}
		s += fmt.Sprintf(" w%d→t%d", p.Worker, p.Task)
	}
	return s + "}"
}

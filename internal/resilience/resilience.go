// Package resilience keeps the batch loop live under deadline pressure and
// injected faults. The paper's batch model (§V) assumes every round
// finishes before the next arrives; a production platform cannot — a slow
// EXACT or GT round must degrade instead of stalling the loop. The package
// provides two solver decorators built on the assign.Solver contract:
//
//   - Ladder runs an ordered chain of solvers (e.g. EXACT → GT → TPG →
//     RAND) under a per-Solve time budget. Each rung gets a slice of the
//     remaining budget; a rung that exceeds its slice or returns an error
//     is cancelled and the ladder falls through to the next, cheaper rung.
//     The best-scoring feasible result seen so far is returned, with the
//     empty assignment as the always-feasible floor, and casc_ladder_*
//     metrics record the rung chosen, fallbacks, budget overruns, and the
//     score sacrificed against rungs that failed.
//
//   - Chaos injects seeded, deterministic faults — latency, errors, and
//     partial-result truncation — into any solver, for tests and for
//     casc-sim -chaos rehearsals of the ladder's fallback paths.
//
// See DESIGN.md §10 for the budget-slicing and feasibility-floor
// semantics, and docs/OPERATIONS.md for tuning guidance.
package resilience

import (
	"context"
	"fmt"
	"time"

	"casc/internal/assign"
	"casc/internal/metrics"
	"casc/internal/model"
)

// Metric names recorded by the Ladder decorator. All carry a
// {solver="<primary rung name>"} label; rung-level series additionally
// carry {rung="<rung name>"} and fallbacks a {reason=...} label.
const (
	// MetricLadderSolves counts ladder Solve calls.
	MetricLadderSolves = "casc_ladder_solves_total"
	// MetricLadderRungSelected counts which rung's result was returned;
	// rung="floor" means the empty feasibility floor.
	MetricLadderRungSelected = "casc_ladder_rung_selected_total"
	// MetricLadderFallbacks counts rungs fallen through, by rung and
	// reason (error | budget | infeasible | abandoned).
	MetricLadderFallbacks = "casc_ladder_fallback_total"
	// MetricLadderOverruns counts rungs that ran past their budget slice
	// and had to be cancelled.
	MetricLadderOverruns = "casc_ladder_budget_overruns_total"
	// MetricLadderExhausted counts Solve calls that fell all the way to
	// the empty floor — no rung produced a feasible result in budget.
	MetricLadderExhausted = "casc_ladder_exhausted_total"
	// MetricLadderScoreSacrificed is a histogram of the score given up per
	// fallback solve: the best score observed on failed rungs minus the
	// returned score, clamped at zero.
	MetricLadderScoreSacrificed = "casc_ladder_score_sacrificed"
	// MetricLadderRungSeconds is a histogram of per-rung wall time.
	MetricLadderRungSeconds = "casc_ladder_rung_seconds"
)

// Fallback reasons used in the MetricLadderFallbacks reason label.
const (
	// ReasonError: the rung returned an error (its own, or injected).
	ReasonError = "error"
	// ReasonBudget: the rung exceeded its budget slice and was cancelled;
	// its partial result (if any, and feasible) still competes.
	ReasonBudget = "budget"
	// ReasonInfeasible: the rung completed but its assignment failed
	// model validation, so it was discarded.
	ReasonInfeasible = "infeasible"
	// ReasonAbandoned: the rung ignored cancellation past the grace
	// window and was left running; its eventual result is discarded.
	ReasonAbandoned = "abandoned"
)

// FloorRung is the MetricLadderRungSelected rung label recorded when the
// ladder returned the empty feasibility floor.
const FloorRung = "floor"

// DefaultGrace is how long a cancelled rung is given to surrender its
// partial result before the ladder abandons it and moves on.
const DefaultGrace = 2 * time.Millisecond

// Config parameterizes a Ladder.
type Config struct {
	// Budget is the wall-clock allowance for one Solve across all rungs.
	// Zero disables slicing: rungs run to completion in order and the
	// ladder only falls through on errors or infeasible results.
	Budget time.Duration
	// Grace bounds how long the ladder waits, after cancelling a rung,
	// for that rung to return its partial result (default DefaultGrace).
	// A rung still running past the grace is abandoned: the goroutine is
	// left to terminate on its own cancelled context and its eventual
	// result is discarded.
	Grace time.Duration
	// Metrics, when non-nil, receives the casc_ladder_* series.
	Metrics *metrics.Registry
}

// Ladder is an anytime solver: it runs its rungs — ordered from the most
// accurate to the cheapest — under the configured budget and returns the
// best-scoring feasible assignment seen. The zero-pair empty assignment is
// the built-in floor, so Solve always returns a feasible result, even when
// every rung fails or the budget is gone on arrival.
//
// Name reports the primary (first) rung's name, so Ladder composes with
// assign.Instrument, the batch engine, and the harness tables exactly like
// the bare solver it guards.
//
// A Ladder is safe for concurrent use: all per-Solve state is local.
type Ladder struct {
	rungs []assign.Solver
	cfg   Config
	lm    *ladderMetrics
}

// ladderMetrics holds the resolved solve-level metric handles; rung-level
// handles are resolved lazily (labels vary by rung and reason).
type ladderMetrics struct {
	reg        *metrics.Registry
	solver     string
	solves     *metrics.Counter
	exhausted  *metrics.Counter
	sacrificed *metrics.Histogram
}

// NewLadder builds a ladder over the given rung chain. At least one rung
// is required; the first rung names the ladder.
func NewLadder(cfg Config, rungs ...assign.Solver) (*Ladder, error) {
	if len(rungs) == 0 {
		return nil, fmt.Errorf("resilience: ladder needs at least one rung")
	}
	if cfg.Grace <= 0 {
		cfg.Grace = DefaultGrace
	}
	l := &Ladder{rungs: rungs, cfg: cfg}
	if reg := cfg.Metrics; reg != nil {
		lbl := metrics.L("solver", rungs[0].Name())
		l.lm = &ladderMetrics{
			reg:    reg,
			solver: rungs[0].Name(),
			solves: reg.Counter(MetricLadderSolves,
				"Ladder Solve calls.", lbl),
			exhausted: reg.Counter(MetricLadderExhausted,
				"Ladder solves that fell to the empty feasibility floor.", lbl),
			sacrificed: reg.Histogram(MetricLadderScoreSacrificed,
				"Score given up per fallback solve: best failed-rung score minus returned score, clamped at 0.",
				metrics.ScoreBuckets(), lbl),
		}
	}
	return l, nil
}

// Name implements assign.Solver; it is transparent like Parallel's.
func (l *Ladder) Name() string { return l.rungs[0].Name() }

// Rungs returns the rung chain (shared slice; treat as read-only).
func (l *Ladder) Rungs() []assign.Solver { return l.rungs }

// Budget returns the configured per-Solve budget.
func (l *Ladder) Budget() time.Duration { return l.cfg.Budget }

// Outcome reports how one budgeted solve went.
type Outcome struct {
	// Rung is the name of the rung whose result was returned, or
	// FloorRung when the ladder fell to the empty floor.
	Rung string
	// RungIndex is the chain position of that rung; -1 for the floor.
	RungIndex int
	// Fallbacks counts rungs fallen through during this solve.
	Fallbacks int
	// Exhausted is true when no rung produced a feasible result — the
	// returned assignment is the empty floor.
	Exhausted bool
	// Sacrificed is the best score observed on failed rungs minus the
	// returned score, clamped at zero.
	Sacrificed float64
	// Elapsed is the solve's wall time as seen by the ladder clock.
	Elapsed time.Duration
}

// Solve implements assign.Solver. It never returns an error: rung errors
// are fallbacks and the empty assignment is the feasibility floor, so the
// batch loop keeps its round cadence no matter what the rungs do.
func (l *Ladder) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	a, _ := l.solveBudgeted(ctx, in, nil)
	return a, nil
}

// SolveWarm implements assign.WarmStarter: the warm cache is forwarded to
// the primary rung only, and only when that rung runs synchronously (zero
// budget slice). Under a positive budget the watchdog may abandon a rung
// goroutine that is still mid-solve; letting it keep a reference to the
// unsynchronized cache would race with the next round, so budgeted rungs
// always solve cold. Either way the result is bitwise identical to Solve —
// warm starts are strictly output-preserving.
func (l *Ladder) SolveWarm(ctx context.Context, in *model.Instance, warm *assign.Warm) (*model.Assignment, error) {
	a, _ := l.solveBudgeted(ctx, in, warm)
	return a, nil
}

// rungResult carries one rung's return values across the watchdog channel.
type rungResult struct {
	a   *model.Assignment
	err error
}

// SolveBudgeted runs the ladder and additionally reports the Outcome, so
// callers that must act on degradation (the HTTP platform's 503 path) can
// distinguish a clean solve from a fallback or an exhausted budget.
func (l *Ladder) SolveBudgeted(ctx context.Context, in *model.Instance) (*model.Assignment, Outcome) {
	return l.solveBudgeted(ctx, in, nil)
}

func (l *Ladder) solveBudgeted(ctx context.Context, in *model.Instance, warm *assign.Warm) (*model.Assignment, Outcome) {
	start := now()
	out := Outcome{Rung: FloorRung, RungIndex: -1}
	best := model.NewAssignment(in) // the always-feasible floor
	bestScore := 0.0
	bestRung := -1
	lostScore := 0.0 // best score observed on rungs that fell through

	if l.lm != nil {
		l.lm.solves.Inc()
	}
	for i, rung := range l.rungs {
		if ctx.Err() != nil {
			break
		}
		slice := time.Duration(0)
		if l.cfg.Budget > 0 {
			remaining := l.cfg.Budget - now().Sub(start)
			if remaining <= 0 {
				break // budget gone; whatever is best stands
			}
			// Equal share of the remaining budget among the remaining
			// rungs: a fast (or failing) rung donates its leftover slice
			// to the rungs below it.
			slice = remaining / time.Duration(len(l.rungs)-i)
		}

		rungStart := now()
		rungWarm := warm
		if i > 0 {
			rungWarm = nil // only the primary rung's output benefits
		}
		r, timedOut, abandoned := l.runRung(ctx, rung, in, slice, rungWarm)
		l.observeRung(rung.Name(), now().Sub(rungStart))
		if timedOut {
			l.countOverrun(rung.Name())
		}

		if abandoned {
			out.Fallbacks++
			l.countFallback(rung.Name(), ReasonAbandoned)
			continue
		}
		feasible := r.a != nil && r.a.Validate(in) == nil
		score := 0.0
		if feasible {
			score = r.a.TotalScore(in)
			if bestRung == -1 || score > bestScore {
				best, bestScore, bestRung = r.a, score, i
			}
		} else if r.a != nil {
			// Infeasible results are discarded, but their score still
			// informs the sacrifice accounting below.
			score = r.a.TotalScore(in)
		}
		if r.err == nil && !timedOut && feasible {
			break // clean in-budget completion: the ladder exits here
		}
		out.Fallbacks++
		if score > lostScore {
			lostScore = score
		}
		switch {
		case r.err != nil:
			l.countFallback(rung.Name(), ReasonError)
		case timedOut:
			l.countFallback(rung.Name(), ReasonBudget)
		default:
			l.countFallback(rung.Name(), ReasonInfeasible)
		}
	}

	out.Elapsed = now().Sub(start)
	if bestRung >= 0 {
		out.Rung, out.RungIndex = l.rungs[bestRung].Name(), bestRung
	} else {
		out.Exhausted = true
	}
	if sac := lostScore - bestScore; sac > 0 && out.Fallbacks > 0 {
		out.Sacrificed = sac
	}
	if l.lm != nil {
		l.lm.reg.Counter(MetricLadderRungSelected,
			"Ladder solves by the rung whose result was returned (floor = empty fallback).",
			metrics.L("solver", l.lm.solver), metrics.L("rung", out.Rung)).Inc()
		if out.Exhausted {
			l.lm.exhausted.Inc()
		}
		if out.Fallbacks > 0 {
			l.lm.sacrificed.Observe(out.Sacrificed)
		}
	}
	return best, out
}

// runRung executes one rung under its slice of the budget. With a zero
// slice the rung runs unwatched (it still honours ctx itself). Otherwise a
// watchdog cancels the rung when the slice expires and waits up to the
// grace for the partial result; a rung silent past the grace is abandoned
// — its goroutine drains on its own once it observes the cancelled
// context, and its eventual result is discarded unread.
func (l *Ladder) runRung(ctx context.Context, rung assign.Solver, in *model.Instance, slice time.Duration, warm *assign.Warm) (r rungResult, timedOut, abandoned bool) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if slice <= 0 {
		// Synchronous path: no watchdog goroutine can outlive this call, so
		// it is the only place the unsynchronized warm cache may be used.
		a, err := assign.SolveMaybeWarm(rctx, rung, in, warm)
		return rungResult{a, err}, false, false
	}
	done := make(chan rungResult, 1)
	go func() {
		a, err := rung.Solve(rctx, in)
		done <- rungResult{a, err}
	}()
	select {
	case r = <-done:
		return r, false, false
	case <-after(slice):
		timedOut = true
	case <-ctx.Done():
		// The round itself was cancelled; collect what the rung has.
	}
	cancel()
	select {
	case r = <-done:
		return r, timedOut, false
	case <-after(l.cfg.Grace):
		return rungResult{}, timedOut, true
	}
}

func (l *Ladder) countFallback(rung, reason string) {
	if l.lm == nil {
		return
	}
	l.lm.reg.Counter(MetricLadderFallbacks,
		"Ladder rungs fallen through, by rung and reason (error|budget|infeasible|abandoned).",
		metrics.L("solver", l.lm.solver), metrics.L("rung", rung),
		metrics.L("reason", reason)).Inc()
}

func (l *Ladder) countOverrun(rung string) {
	if l.lm == nil {
		return
	}
	l.lm.reg.Counter(MetricLadderOverruns,
		"Ladder rungs cancelled for running past their budget slice.",
		metrics.L("solver", l.lm.solver), metrics.L("rung", rung)).Inc()
}

func (l *Ladder) observeRung(rung string, d time.Duration) {
	if l.lm == nil {
		return
	}
	l.lm.reg.Histogram(MetricLadderRungSeconds,
		"Per-rung wall time in seconds.", metrics.LatencyBuckets(),
		metrics.L("solver", l.lm.solver), metrics.L("rung", rung)).Observe(d.Seconds())
}

// Chain builds the default anytime rung chain for a primary solver:
// primary → TPG → RAND(seed), skipping fallbacks that duplicate the
// primary's name. TPG is the fast deterministic middle rung; RAND is the
// near-instant last resort before the ladder's built-in empty floor.
func Chain(primary assign.Solver, seed int64) []assign.Solver {
	rungs := []assign.Solver{primary}
	if primary.Name() != "TPG" {
		rungs = append(rungs, assign.NewTPG())
	}
	if primary.Name() != "RAND" {
		rungs = append(rungs, assign.NewRandom(seed))
	}
	return rungs
}

package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"casc/internal/assign"
	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/metrics"
	"casc/internal/model"
)

// testInstance builds a well-connected random CA-SC batch, mirroring the
// generator used by the assign package tests.
func testInstance(seed int64, nW, nT, b int) *model.Instance {
	r := rand.New(rand.NewSource(seed))
	in := &model.Instance{
		Quality: coop.Synthetic{N: nW, Seed: uint64(r.Int63())},
		B:       b,
	}
	for i := 0; i < nW; i++ {
		in.Workers = append(in.Workers, model.Worker{
			ID:     i,
			Loc:    geo.Pt(r.Float64(), r.Float64()),
			Speed:  0.02 + r.Float64()*0.08,
			Radius: 0.1 + r.Float64()*0.2,
		})
	}
	for j := 0; j < nT; j++ {
		in.Tasks = append(in.Tasks, model.Task{
			ID:       j,
			Loc:      geo.Pt(r.Float64(), r.Float64()),
			Capacity: b + r.Intn(3),
			Deadline: 2 + r.Float64()*3,
		})
	}
	in.BuildCandidates(model.IndexLinear)
	return in
}

// stubSolver is a scriptable rung for ladder unit tests.
type stubSolver struct {
	name  string
	solve func(ctx context.Context, in *model.Instance) (*model.Assignment, error)
}

func (s *stubSolver) Name() string { return s.name }
func (s *stubSolver) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	return s.solve(ctx, in)
}

// failing returns a rung that always errors.
func failing(name string) *stubSolver {
	return &stubSolver{name: name, solve: func(context.Context, *model.Instance) (*model.Assignment, error) {
		return nil, errors.New(name + ": boom")
	}}
}

// chaosSeeds returns the deterministic seed set for chaos tests; the CI
// matrix extends it through CASC_CHAOS_SEED.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	seeds := []int64{1, 7, 1337}
	if env := os.Getenv("CASC_CHAOS_SEED"); env != "" {
		s, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CASC_CHAOS_SEED=%q: %v", env, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

func TestNewLadderRejectsEmptyChain(t *testing.T) {
	if _, err := NewLadder(Config{}); err == nil {
		t.Fatal("empty rung chain accepted")
	}
}

func TestLadderNameTransparent(t *testing.T) {
	l, err := NewLadder(Config{}, assign.NewTPG(), assign.NewRandom(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Name(); got != "TPG" {
		t.Fatalf("Name() = %q, want primary rung TPG", got)
	}
}

func TestLadderCleanFirstRung(t *testing.T) {
	in := testInstance(11, 40, 15, 2)
	l, err := NewLadder(Config{}, assign.NewTPG(), failing("NEVER"))
	if err != nil {
		t.Fatal(err)
	}
	a, out := l.SolveBudgeted(context.Background(), in)
	if err := a.Validate(in); err != nil {
		t.Fatalf("invalid assignment: %v", err)
	}
	if out.Rung != "TPG" || out.RungIndex != 0 || out.Fallbacks != 0 || out.Exhausted {
		t.Fatalf("outcome = %+v, want clean first-rung selection", out)
	}
	// The ladder result must match the bare rung bitwise.
	want, err := assign.NewTPG().Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalScore(in) != want.TotalScore(in) {
		t.Fatalf("ladder score %v != bare TPG score %v", a.TotalScore(in), want.TotalScore(in))
	}
}

func TestLadderFallsThroughOnError(t *testing.T) {
	in := testInstance(12, 40, 15, 2)
	reg := metrics.NewRegistry()
	l, err := NewLadder(Config{Metrics: reg}, failing("EXACT"), failing("GT"), assign.NewTPG())
	if err != nil {
		t.Fatal(err)
	}
	a, out := l.SolveBudgeted(context.Background(), in)
	if err := a.Validate(in); err != nil {
		t.Fatalf("invalid assignment: %v", err)
	}
	if out.Rung != "TPG" || out.RungIndex != 2 || out.Fallbacks != 2 || out.Exhausted {
		t.Fatalf("outcome = %+v, want TPG after two error fallbacks", out)
	}
	for _, rung := range []string{"EXACT", "GT"} {
		c := reg.Counter(MetricLadderFallbacks, "",
			metrics.L("solver", "EXACT"), metrics.L("rung", rung), metrics.L("reason", ReasonError))
		if c.Value() != 1 {
			t.Errorf("fallback{rung=%s,reason=error} = %d, want 1", rung, c.Value())
		}
	}
}

func TestLadderDiscardsInfeasibleResult(t *testing.T) {
	in := testInstance(13, 30, 10, 2)
	// A rung that fabricates an over-capacity assignment: every worker
	// piled onto task 0.
	cheater := &stubSolver{name: "CHEAT", solve: func(_ context.Context, in *model.Instance) (*model.Assignment, error) {
		a := model.NewAssignment(in)
		for w := range in.Workers {
			a.WorkerTask[w] = 0
			a.TaskWorkers[0] = append(a.TaskWorkers[0], w)
		}
		return a, nil
	}}
	reg := metrics.NewRegistry()
	l, err := NewLadder(Config{Metrics: reg}, cheater, assign.NewRandom(5))
	if err != nil {
		t.Fatal(err)
	}
	a, out := l.SolveBudgeted(context.Background(), in)
	if err := a.Validate(in); err != nil {
		t.Fatalf("invalid assignment leaked through: %v", err)
	}
	if out.Rung != "RAND" || out.Fallbacks != 1 {
		t.Fatalf("outcome = %+v, want RAND after infeasible fallback", out)
	}
	c := reg.Counter(MetricLadderFallbacks, "",
		metrics.L("solver", "CHEAT"), metrics.L("rung", "CHEAT"), metrics.L("reason", ReasonInfeasible))
	if c.Value() != 1 {
		t.Errorf("fallback{reason=infeasible} = %d, want 1", c.Value())
	}
}

func TestLadderFloorWhenAllRungsFail(t *testing.T) {
	in := testInstance(14, 30, 10, 2)
	reg := metrics.NewRegistry()
	l, err := NewLadder(Config{Metrics: reg}, failing("EXACT"), failing("GT"), failing("RAND"))
	if err != nil {
		t.Fatal(err)
	}
	a, out := l.SolveBudgeted(context.Background(), in)
	if err := a.Validate(in); err != nil {
		t.Fatalf("floor assignment invalid: %v", err)
	}
	if a.NumAssigned() != 0 {
		t.Fatalf("floor has %d assigned workers, want 0", a.NumAssigned())
	}
	if !out.Exhausted || out.Rung != FloorRung || out.RungIndex != -1 || out.Fallbacks != 3 {
		t.Fatalf("outcome = %+v, want exhausted floor after 3 fallbacks", out)
	}
	if v := reg.Counter(MetricLadderExhausted, "", metrics.L("solver", "EXACT")).Value(); v != 1 {
		t.Errorf("exhausted counter = %d, want 1", v)
	}
	if v := reg.Counter(MetricLadderRungSelected, "",
		metrics.L("solver", "EXACT"), metrics.L("rung", FloorRung)).Value(); v != 1 {
		t.Errorf("rung_selected{rung=floor} = %d, want 1", v)
	}
}

// fakeAfter scripts the ladder's watchdog timers by call order: true fires
// the timer immediately, false never fires it.
func fakeAfter(t *testing.T, script ...bool) func(time.Duration) <-chan time.Time {
	t.Helper()
	fired := make(chan time.Time)
	close(fired)
	var mu sync.Mutex
	i := 0
	return func(time.Duration) <-chan time.Time {
		mu.Lock()
		defer mu.Unlock()
		if i >= len(script) {
			t.Errorf("unexpected after() call #%d", i+1)
			return make(chan time.Time)
		}
		fire := script[i]
		i++
		if fire {
			return fired
		}
		return make(chan time.Time)
	}
}

func TestLadderBudgetSliceCancelsSlowRung(t *testing.T) {
	in := testInstance(15, 40, 15, 2)
	restore := after
	// Call 1: rung 1's slice expires instantly. Call 2: the grace timer
	// never fires — the cancelled rung's partial wins the drain select.
	// Call 3: rung 2's slice never expires.
	after = fakeAfter(t, true, false, false)
	defer func() { after = restore }()

	// slow honours cancellation and surrenders a valid partial result.
	slow := &stubSolver{name: "SLOW", solve: func(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
		<-ctx.Done()
		return model.NewAssignment(in), nil
	}}
	reg := metrics.NewRegistry()
	l, err := NewLadder(Config{Budget: time.Hour, Metrics: reg}, slow, assign.NewTPG())
	if err != nil {
		t.Fatal(err)
	}
	a, out := l.SolveBudgeted(context.Background(), in)
	if err := a.Validate(in); err != nil {
		t.Fatalf("invalid assignment: %v", err)
	}
	if out.Rung != "TPG" || out.RungIndex != 1 || out.Fallbacks != 1 {
		t.Fatalf("outcome = %+v, want TPG after budget fallback", out)
	}
	if v := reg.Counter(MetricLadderOverruns, "",
		metrics.L("solver", "SLOW"), metrics.L("rung", "SLOW")).Value(); v != 1 {
		t.Errorf("overruns = %d, want 1", v)
	}
	if v := reg.Counter(MetricLadderFallbacks, "",
		metrics.L("solver", "SLOW"), metrics.L("rung", "SLOW"), metrics.L("reason", ReasonBudget)).Value(); v != 1 {
		t.Errorf("fallback{reason=budget} = %d, want 1", v)
	}
}

func TestLadderAbandonsSilentRung(t *testing.T) {
	in := testInstance(16, 40, 15, 2)
	restore := after
	// Call 1: rung 1's slice expires. Call 2: the grace expires too — the
	// rung is abandoned. Call 3: rung 2's slice never expires.
	after = fakeAfter(t, true, true, false)
	defer func() { after = restore }()

	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	// stuck ignores cancellation entirely until the test releases it.
	stuck := &stubSolver{name: "STUCK", solve: func(context.Context, *model.Instance) (*model.Assignment, error) {
		<-release
		return nil, errors.New("too late")
	}}
	reg := metrics.NewRegistry()
	l, err := NewLadder(Config{Budget: time.Hour, Metrics: reg}, stuck, assign.NewTPG())
	if err != nil {
		t.Fatal(err)
	}
	a, out := l.SolveBudgeted(context.Background(), in)
	if err := a.Validate(in); err != nil {
		t.Fatalf("invalid assignment: %v", err)
	}
	if out.Rung != "TPG" || out.Fallbacks != 1 {
		t.Fatalf("outcome = %+v, want TPG after abandoning STUCK", out)
	}
	if v := reg.Counter(MetricLadderFallbacks, "",
		metrics.L("solver", "STUCK"), metrics.L("rung", "STUCK"), metrics.L("reason", ReasonAbandoned)).Value(); v != 1 {
		t.Errorf("fallback{reason=abandoned} = %d, want 1", v)
	}
}

func TestLadderKeepsBestPartialOverWorseLaterRung(t *testing.T) {
	in := testInstance(17, 40, 15, 2)
	// Rung 1 errors but still returns a good feasible partial (allowed by
	// the Solver contract's cancellation behaviour); rung 2 returns a
	// worse-but-clean result. The ladder must keep the better score.
	good, err := assign.NewTPG().Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if good.TotalScore(in) <= 0 {
		t.Skip("instance yields zero TPG score; pick another seed")
	}
	richFail := &stubSolver{name: "RICH", solve: func(context.Context, *model.Instance) (*model.Assignment, error) {
		return good.Clone(), errors.New("budget-style failure with partial")
	}}
	empty := &stubSolver{name: "EMPTY", solve: func(_ context.Context, in *model.Instance) (*model.Assignment, error) {
		return model.NewAssignment(in), nil
	}}
	l, err := NewLadder(Config{}, richFail, empty)
	if err != nil {
		t.Fatal(err)
	}
	a, out := l.SolveBudgeted(context.Background(), in)
	if a.TotalScore(in) != good.TotalScore(in) {
		t.Fatalf("returned score %v, want the failed rung's partial %v", a.TotalScore(in), good.TotalScore(in))
	}
	if out.Rung != "RICH" || out.Exhausted {
		t.Fatalf("outcome = %+v, want RICH partial selected", out)
	}
}

func TestLadderScoreSacrificeAccounting(t *testing.T) {
	in := testInstance(18, 40, 15, 2)
	good, err := assign.NewTPG().Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	score := good.TotalScore(in)
	if score <= 0 {
		t.Skip("instance yields zero TPG score; pick another seed")
	}
	// An infeasible-but-scored result is discarded yet counts as lost
	// score against the empty floor the ladder is left with.
	cheat := &stubSolver{name: "CHEAT", solve: func(_ context.Context, in *model.Instance) (*model.Assignment, error) {
		a := good.Clone()
		// Break map consistency so Validate rejects it; TotalScore reads
		// TaskWorkers, so the (lost) score survives the corruption.
		a.WorkerTask[a.Pairs()[0].Worker] = model.Unassigned
		return a, nil
	}}
	l, err := NewLadder(Config{}, cheat, failing("GT"))
	if err != nil {
		t.Fatal(err)
	}
	_, out := l.SolveBudgeted(context.Background(), in)
	if !out.Exhausted {
		t.Fatalf("outcome = %+v, want exhausted", out)
	}
	if out.Sacrificed <= 0 {
		t.Fatalf("Sacrificed = %v, want > 0 (infeasible rung scored %v)", out.Sacrificed, score)
	}
}

func TestLadderRespectsPreCancelledContext(t *testing.T) {
	in := testInstance(19, 30, 10, 2)
	called := false
	spy := &stubSolver{name: "SPY", solve: func(_ context.Context, in *model.Instance) (*model.Assignment, error) {
		called = true
		return model.NewAssignment(in), nil
	}}
	l, err := NewLadder(Config{}, spy)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, out := l.SolveBudgeted(ctx, in)
	if called {
		t.Error("rung ran under a pre-cancelled context")
	}
	if err := a.Validate(in); err != nil {
		t.Fatalf("floor invalid: %v", err)
	}
	if !out.Exhausted {
		t.Fatalf("outcome = %+v, want exhausted floor", out)
	}
}

func TestLadderSolveNeverErrors(t *testing.T) {
	in := testInstance(20, 30, 10, 2)
	l, err := NewLadder(Config{}, failing("A"), failing("B"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := l.Solve(context.Background(), in)
	if err != nil {
		t.Fatalf("Solve returned error %v; the ladder floor should absorb failures", err)
	}
	if err := a.Validate(in); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestChainComposition(t *testing.T) {
	names := func(rungs []assign.Solver) []string {
		var out []string
		for _, r := range rungs {
			out = append(out, r.Name())
		}
		return out
	}
	gt, err := assign.ByName("GT", 3)
	if err != nil {
		t.Fatal(err)
	}
	got := names(Chain(gt, 3))
	want := []string{"GT", "TPG", "RAND"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Chain(GT) = %v, want %v", got, want)
	}
	if got := names(Chain(assign.NewTPG(), 3)); fmt.Sprint(got) != fmt.Sprint([]string{"TPG", "RAND"}) {
		t.Fatalf("Chain(TPG) = %v, want no duplicate TPG", got)
	}
	if got := names(Chain(assign.NewRandom(3), 3)); fmt.Sprint(got) != fmt.Sprint([]string{"RAND", "TPG"}) {
		t.Fatalf("Chain(RAND) = %v, want no duplicate RAND", got)
	}
}

// TestLadderConcurrentBudgetedRounds hammers one shared ladder from many
// goroutines under a real (tiny) budget; run under -race this doubles as
// the data-race check for concurrent budgeted rounds.
func TestLadderConcurrentBudgetedRounds(t *testing.T) {
	reg := metrics.NewRegistry()
	rungs := WithChaos(
		[]assign.Solver{assign.NewTPG(), assign.NewRandom(9)},
		ChaosConfig{Seed: 42, FailRate: 0.5, Latency: 2 * time.Millisecond, TruncateRate: 0.3, Metrics: reg},
	)
	l, err := NewLadder(Config{Budget: 20 * time.Millisecond, Metrics: reg}, rungs...)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 16
	var wg sync.WaitGroup
	errs := make(chan error, rounds)
	for i := 0; i < rounds; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			in := testInstance(int64(100+i), 30, 10, 2)
			a, _ := l.SolveBudgeted(context.Background(), in)
			if err := a.Validate(in); err != nil {
				errs <- fmt.Errorf("round %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

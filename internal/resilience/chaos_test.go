package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"casc/internal/assign"
	"casc/internal/metrics"
)

func TestChaosZeroConfigIsTransparent(t *testing.T) {
	in := testInstance(30, 40, 15, 2)
	want, err := assign.NewTPG().Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChaos(assign.NewTPG(), ChaosConfig{Seed: 1})
	got, err := c.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Pairs()) != fmt.Sprint(want.Pairs()) {
		t.Fatal("zero-rate chaos changed the result")
	}
	if c.Name() != "TPG" {
		t.Fatalf("Name() = %q, want transparent TPG", c.Name())
	}
}

func TestChaosInjectedErrorIsSentinel(t *testing.T) {
	c := NewChaos(assign.NewTPG(), ChaosConfig{Seed: 2, FailRate: 1})
	in := testInstance(31, 20, 8, 2)
	_, err := c.Solve(context.Background(), in)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want errors.Is(_, ErrInjected)", err)
	}
}

func TestChaosDeterministicSchedule(t *testing.T) {
	in := testInstance(32, 40, 15, 2)
	run := func() []string {
		c := NewChaos(assign.NewTPG(), ChaosConfig{Seed: 99, FailRate: 0.4, TruncateRate: 0.4})
		var trace []string
		for i := 0; i < 20; i++ {
			a, err := c.Solve(context.Background(), in)
			if err != nil {
				trace = append(trace, "err")
				continue
			}
			trace = append(trace, fmt.Sprintf("%.6f", a.TotalScore(in)))
		}
		return trace
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
}

func TestChaosTruncationStaysFeasible(t *testing.T) {
	in := testInstance(33, 60, 20, 2)
	clean, err := assign.NewTPG().Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if clean.NumAssigned() == 0 {
		t.Skip("instance yields no assignment; pick another seed")
	}
	reg := metrics.NewRegistry()
	c := NewChaos(assign.NewTPG(), ChaosConfig{Seed: 3, TruncateRate: 1, TruncateFrac: 0.5, Metrics: reg})
	a, err := c.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(in); err != nil {
		t.Fatalf("truncated result infeasible: %v", err)
	}
	if a.NumAssigned() >= clean.NumAssigned() {
		t.Fatalf("truncation removed nothing: %d >= %d assigned", a.NumAssigned(), clean.NumAssigned())
	}
	if v := reg.Counter(MetricChaosInjections, "",
		metrics.L("solver", "TPG"), metrics.L("kind", KindTruncate)).Value(); v != 1 {
		t.Errorf("injections{kind=truncate} = %d, want 1", v)
	}
}

func TestChaosLatencyRespectsCancel(t *testing.T) {
	restore := after
	after = fakeAfter(t, false) // injected delay never elapses
	defer func() { after = restore }()
	c := NewChaos(assign.NewTPG(), ChaosConfig{Seed: 4, Latency: time.Hour})
	in := testInstance(34, 20, 8, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, err := c.Solve(ctx, in)
	if err != nil {
		t.Fatalf("cancelled latency returned error %v, want nil + empty partial", err)
	}
	if err := a.Validate(in); err != nil || a.NumAssigned() != 0 {
		t.Fatalf("want empty feasible partial, got %v (validate: %v)", a, err)
	}
}

// TestLadderFeasibleUnderFullChaos is the headline guarantee: with 100%
// rung-failure injection on every rung, the ladder still returns a
// feasible assignment (capacity, radius, and deadline constraints hold)
// for every chaos seed, and records the fallbacks.
func TestLadderFeasibleUnderFullChaos(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := testInstance(seed, 50, 20, 2)
			reg := metrics.NewRegistry()
			rungs := WithChaos(
				Chain(assign.NewTPG(), seed),
				ChaosConfig{Seed: seed, FailRate: 1, Metrics: reg},
			)
			l, err := NewLadder(Config{Budget: 50 * time.Millisecond, Metrics: reg}, rungs...)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 5; round++ {
				a, out := l.SolveBudgeted(context.Background(), in)
				if err := a.Validate(in); err != nil {
					t.Fatalf("round %d: infeasible under full chaos: %v", round, err)
				}
				if !out.Exhausted {
					t.Fatalf("round %d: outcome %+v, want exhausted (all rungs fail)", round, out)
				}
			}
			var fallbacks uint64
			for _, rung := range []string{"TPG", "RAND"} {
				fallbacks += reg.Counter(MetricLadderFallbacks, "",
					metrics.L("solver", "TPG"), metrics.L("rung", rung),
					metrics.L("reason", ReasonError)).Value()
			}
			if fallbacks == 0 {
				t.Error("casc_ladder_fallback_total stayed 0 under full chaos")
			}
		})
	}
}

// TestLadderFeasibleUnderMixedChaos drives every fault kind at once and
// checks the returned assignment is always feasible, whatever survives.
func TestLadderFeasibleUnderMixedChaos(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := testInstance(seed+1000, 50, 20, 2)
			rungs := WithChaos(
				Chain(assign.NewTPG(), seed),
				ChaosConfig{Seed: seed, FailRate: 0.5, Latency: time.Millisecond, TruncateRate: 0.5},
			)
			l, err := NewLadder(Config{Budget: 25 * time.Millisecond}, rungs...)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 10; round++ {
				a, _ := l.SolveBudgeted(context.Background(), in)
				if err := a.Validate(in); err != nil {
					t.Fatalf("round %d: infeasible under mixed chaos: %v", round, err)
				}
			}
		})
	}
}

func TestWithChaosDerivesDistinctSeeds(t *testing.T) {
	rungs := WithChaos(
		[]assign.Solver{assign.NewTPG(), assign.NewRandom(1)},
		ChaosConfig{Seed: 7},
	)
	a, ok1 := rungs[0].(*Chaos)
	b, ok2 := rungs[1].(*Chaos)
	if !ok1 || !ok2 {
		t.Fatal("WithChaos did not wrap rungs in *Chaos")
	}
	if a.cfg.Seed == b.cfg.Seed {
		t.Fatalf("rung seeds collide: %d", a.cfg.Seed)
	}
	if a.Name() != "TPG" || b.Name() != "RAND" {
		t.Fatalf("names not transparent: %q, %q", a.Name(), b.Name())
	}
}

package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"casc/internal/assign"
	"casc/internal/metrics"
	"casc/internal/model"
	"casc/internal/stats"
)

// MetricChaosInjections counts injected faults, labelled
// {solver, kind} with kind ∈ {latency, error, truncate}.
const MetricChaosInjections = "casc_chaos_injections_total"

// Injection kinds used in the MetricChaosInjections kind label.
const (
	KindLatency  = "latency"
	KindError    = "error"
	KindTruncate = "truncate"
)

// ErrInjected is the sentinel wrapped by every chaos-injected failure, so
// tests and the ladder's fallback accounting can tell injected faults from
// genuine solver errors with errors.Is.
var ErrInjected = errors.New("resilience: injected fault")

// ChaosConfig parameterizes a Chaos decorator. Rates are probabilities in
// [0, 1]; the zero value injects nothing.
type ChaosConfig struct {
	// Seed drives the decorator's private RNG. Equal seeds (and equal
	// call sequences) reproduce the exact same fault schedule.
	Seed int64
	// FailRate is the probability a Solve fails outright with a wrapped
	// ErrInjected before the inner solver runs.
	FailRate float64
	// Latency is the maximum injected delay; each Solve sleeps a uniform
	// draw from [0, Latency) before anything else. Zero disables.
	Latency time.Duration
	// TruncateRate is the probability a successful result is truncated:
	// a deterministic fraction of its assigned workers is unassigned,
	// simulating a solver cut mid-run. Truncated results stay feasible.
	TruncateRate float64
	// TruncateFrac is the fraction of assigned workers removed by a
	// truncation (default 0.5).
	TruncateFrac float64
	// Metrics, when non-nil, receives casc_chaos_injections_total.
	Metrics *metrics.Registry
}

// Chaos wraps a solver with seeded, deterministic fault injection for
// tests and casc-sim -chaos rehearsals. Faults apply in a fixed order per
// Solve — injected latency, then an injected error, then the inner solve,
// then result truncation — and all random draws for a call happen up front
// from a mutex-guarded stream, so a fixed seed yields a fixed schedule
// even when calls interleave with the inner solver's own concurrency.
type Chaos struct {
	inner assign.Solver
	cfg   ChaosConfig

	mu  sync.Mutex
	rng *randStream
}

// randStream is the minimal slice of *rand.Rand Chaos uses; indirection
// keeps the draws mockable in tests.
type randStream struct {
	r interface {
		Float64() float64
		Int63n(int64) int64
		Int63() int64
	}
}

// NewChaos wraps inner with fault injection per cfg.
func NewChaos(inner assign.Solver, cfg ChaosConfig) *Chaos {
	if cfg.TruncateFrac <= 0 || cfg.TruncateFrac > 1 {
		cfg.TruncateFrac = 0.5
	}
	return &Chaos{inner: inner, cfg: cfg, rng: &randStream{r: stats.NewRNG(cfg.Seed)}}
}

// Name is transparent, like the other solver decorators.
func (c *Chaos) Name() string { return c.inner.Name() }

// chaosPlan is one Solve's fault schedule, drawn up front.
type chaosPlan struct {
	delay    time.Duration
	fail     bool
	truncate bool
	shuffle  int64 // sub-seed for the truncation shuffle
}

func (c *Chaos) plan() chaosPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	var p chaosPlan
	if c.cfg.Latency > 0 {
		p.delay = time.Duration(c.rng.r.Int63n(int64(c.cfg.Latency)))
	}
	p.fail = c.rng.r.Float64() < c.cfg.FailRate
	p.truncate = c.rng.r.Float64() < c.cfg.TruncateRate
	p.shuffle = c.rng.r.Int63()
	return p
}

// Solve implements assign.Solver. On injected latency interrupted by ctx
// cancellation it returns the empty (feasible) assignment with nil error,
// matching the contract's partial-result-on-cancel behaviour.
func (c *Chaos) Solve(ctx context.Context, in *model.Instance) (*model.Assignment, error) {
	p := c.plan()
	if p.delay > 0 {
		c.count(KindLatency)
		select {
		case <-after(p.delay):
		case <-ctx.Done():
			return model.NewAssignment(in), nil
		}
	}
	if p.fail {
		c.count(KindError)
		return nil, fmt.Errorf("chaos(%s): %w", c.inner.Name(), ErrInjected)
	}
	a, err := c.inner.Solve(ctx, in)
	if err == nil && a != nil && p.truncate {
		c.count(KindTruncate)
		truncate(a, c.cfg.TruncateFrac, p.shuffle)
	}
	return a, err
}

// truncate unassigns frac of a's assigned workers, chosen by a seeded
// shuffle of the sorted pair list so the cut is deterministic. Unassign
// keeps both assignment maps consistent, so the result remains feasible —
// it just loses score, like a solver stopped mid-improvement.
func truncate(a *model.Assignment, frac float64, seed int64) {
	pairs := a.Pairs()
	if len(pairs) == 0 {
		return
	}
	stats.Shuffle(stats.NewRNG(seed), pairs)
	cut := int(float64(len(pairs)) * frac)
	if cut == 0 {
		cut = 1
	}
	for _, p := range pairs[:cut] {
		a.Unassign(p.Worker)
	}
}

func (c *Chaos) count(kind string) {
	if c.cfg.Metrics == nil {
		return
	}
	c.cfg.Metrics.Counter(MetricChaosInjections,
		"Faults injected by the chaos decorator, by kind (latency|error|truncate).",
		metrics.L("solver", c.inner.Name()), metrics.L("kind", kind)).Inc()
}

// WithChaos wraps every rung of a ladder chain in its own Chaos decorator,
// deriving per-rung seeds from cfg.Seed with the same splitmix64 stream
// used for component seeds, so rung schedules are independent yet fully
// determined by the one configured seed.
func WithChaos(rungs []assign.Solver, cfg ChaosConfig) []assign.Solver {
	out := make([]assign.Solver, len(rungs))
	for i, r := range rungs {
		rc := cfg
		rc.Seed = assign.ComponentSeed(cfg.Seed, i)
		out[i] = NewChaos(r, rc)
	}
	return out
}

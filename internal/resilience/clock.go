package resilience

import "time"

// The ladder and chaos decorators read wall time and arm timers only
// through these two variables, mirroring the injectable clock in
// internal/assign: tests swap in a fake pair to drive budget expiry and
// injected latency deterministically, without sleeping.
var (
	now   = time.Now
	after = time.After
)

package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"casc/internal/model"
)

// This file defines the arrival-event stream format behind scenario
// record/replay: one JSONL file holds a meta header followed by every
// worker and task arrival of a run, enough to re-feed batch.Run (or a
// sharded cluster) and reproduce the original decision trace bitwise.

// Event kinds.
const (
	EventMeta   = "meta"
	EventWorker = "worker"
	EventTask   = "task"
)

// ReplayMeta is the header record of an event stream: the run
// configuration a replayer needs to rebuild the exact simulation the
// events were recorded under.
type ReplayMeta struct {
	// Scenario names the spec the stream was generated from.
	Scenario string `json:"scenario,omitempty"`
	// Seed is the scenario seed; replays reuse it for the quality model
	// and for per-component solver seed derivation.
	Seed int64 `json:"seed"`
	// Rounds is the number of batch rounds recorded.
	Rounds int `json:"rounds"`
	// B is the least required group size.
	B int `json:"b"`
	// Solver names the solver the original run dispatched with.
	Solver string `json:"solver"`
	// Universe is the quality-model size (total distinct worker IDs).
	Universe int `json:"universe"`
}

// Event is one arrival of an event stream. Exactly one of Meta, Worker or
// Task is set, per Kind.
type Event struct {
	Kind   string        `json:"kind"`
	Round  int           `json:"round,omitempty"`
	Meta   *ReplayMeta   `json:"meta,omitempty"`
	Worker *model.Worker `json:"worker,omitempty"`
	Task   *model.Task   `json:"task,omitempty"`
	// Class is the SLO class name of a task arrival ("" when the scenario
	// declares no classes).
	Class string `json:"class,omitempty"`
}

// WriteEvents writes a meta header followed by the events as JSON Lines.
func WriteEvents(w io.Writer, meta ReplayMeta, events []Event) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(Event{Kind: EventMeta, Meta: &meta}); err != nil {
		return fmt.Errorf("trace: events meta: %w", err)
	}
	for i, ev := range events {
		if ev.Kind == EventMeta {
			return fmt.Errorf("trace: event %d: duplicate meta record", i)
		}
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
	}
	return nil
}

// ReadEvents parses an event stream: the leading meta header and the
// arrivals in file order. Arrival events must carry the matching payload
// and non-negative rounds.
func ReadEvents(r io.Reader) (ReplayMeta, []Event, error) {
	var meta ReplayMeta
	var out []Event
	sawMeta := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return meta, nil, fmt.Errorf("trace: events line %d: %w", line, err)
		}
		switch ev.Kind {
		case EventMeta:
			if sawMeta {
				return meta, nil, fmt.Errorf("trace: events line %d: second meta record", line)
			}
			if ev.Meta == nil {
				return meta, nil, fmt.Errorf("trace: events line %d: meta record without payload", line)
			}
			meta, sawMeta = *ev.Meta, true
		case EventWorker:
			if ev.Worker == nil {
				return meta, nil, fmt.Errorf("trace: events line %d: worker event without payload", line)
			}
			if ev.Round < 0 {
				return meta, nil, fmt.Errorf("trace: events line %d: negative round", line)
			}
			out = append(out, ev)
		case EventTask:
			if ev.Task == nil {
				return meta, nil, fmt.Errorf("trace: events line %d: task event without payload", line)
			}
			if ev.Round < 0 {
				return meta, nil, fmt.Errorf("trace: events line %d: negative round", line)
			}
			out = append(out, ev)
		default:
			return meta, nil, fmt.Errorf("trace: events line %d: unknown kind %q", line, ev.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return meta, nil, fmt.Errorf("trace: %w", err)
	}
	if !sawMeta {
		return meta, nil, fmt.Errorf("trace: event stream has no meta header")
	}
	return meta, out, nil
}

// ReadEventsFile loads an event stream from a file.
func ReadEventsFile(path string) (ReplayMeta, []Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return ReplayMeta{}, nil, err
	}
	defer f.Close()
	return ReadEvents(f)
}

package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"casc/internal/model"
)

func sampleRecords() []Record {
	return []Record{
		{Run: "gt", Round: 0, Solver: "GT", Workers: 10, Tasks: 4,
			Pairs: []model.Pair{{Worker: 1, Task: 0}, {Worker: 2, Task: 0}},
			Score: 1.5, Upper: 2.0, ElapsedMS: 3},
		{Run: "gt", Round: 1, Solver: "GT", Workers: 10, Tasks: 4,
			Pairs: []model.Pair{{Worker: 1, Task: 1}, {Worker: 3, Task: 1}},
			Score: 1.0, Upper: 1.8, ElapsedMS: 5},
		{Run: "rand", Round: 0, Solver: "RAND",
			Pairs: []model.Pair{{Worker: 4, Task: 2}},
			Score: 0.4, Upper: 2.0, ElapsedMS: 1},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range sampleRecords() {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(got) != len(want) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range got {
		if got[i].Run != want[i].Run || got[i].Score != want[i].Score ||
			len(got[i].Pairs) != len(want[i].Pairs) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestReadSkipsBlankLinesRejectsGarbage(t *testing.T) {
	recs, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Errorf("blank-line trace: %v, %d records", err, len(recs))
	}
	if _, err := Read(strings.NewReader("{bad json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSummarize(t *testing.T) {
	sums := Summarize(sampleRecords())
	if len(sums) != 2 {
		t.Fatalf("summaries: %d", len(sums))
	}
	gt := sums[0]
	if gt.Run != "gt" || gt.Solver != "GT" || gt.Rounds != 2 {
		t.Fatalf("gt summary: %+v", gt)
	}
	if math.Abs(gt.TotalScore-2.5) > 1e-12 || gt.DispatchedPairs != 4 {
		t.Fatalf("gt totals: %+v", gt)
	}
	if math.Abs(gt.MeanElapsedMS-4) > 1e-12 {
		t.Fatalf("gt mean elapsed: %v", gt.MeanElapsedMS)
	}
	if math.Abs(gt.Ratio()-2.5/3.8) > 1e-12 {
		t.Fatalf("gt ratio: %v", gt.Ratio())
	}
	if len(gt.ScorePerRound) != 2 || gt.ScorePerRound[1] != 1.0 {
		t.Fatalf("per-round scores: %v", gt.ScorePerRound)
	}
	empty := Summary{}
	if empty.Ratio() != 0 {
		t.Error("empty ratio nonzero")
	}
}

func TestSummarizeMixedSolvers(t *testing.T) {
	recs := []Record{
		{Run: "x", Solver: "GT"},
		{Run: "x", Solver: "TPG"},
	}
	sums := Summarize(recs)
	if sums[0].Solver != "mixed" {
		t.Errorf("solver = %q, want mixed", sums[0].Solver)
	}
}

func TestWorkerLoad(t *testing.T) {
	load := WorkerLoad(sampleRecords())
	if load[1] != 2 || load[2] != 1 || load[4] != 1 {
		t.Errorf("load: %v", load)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(sampleRecords()); err != nil {
		t.Fatalf("good trace rejected: %v", err)
	}
	bad := []Record{{Score: 3, Upper: 1}}
	if err := Validate(bad); err == nil {
		t.Error("score above bound accepted")
	}
	dup := []Record{{Pairs: []model.Pair{{Worker: 1, Task: 0}, {Worker: 1, Task: 1}}, Upper: 1}}
	if err := Validate(dup); err == nil {
		t.Error("duplicate worker accepted")
	}
	neg := []Record{{Round: -1}}
	if err := Validate(neg); err == nil {
		t.Error("negative round accepted")
	}
}

// Package trace records batch-assignment runs as JSON Lines and computes
// summary analytics over recorded traces. A trace is the platform's audit
// log: which solver ran when, which worker-and-task pairs were dispatched,
// at what score, against what bound. Traces replay into analytics without
// re-running solvers, which is how long experiments get re-analyzed after
// the fact.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"casc/internal/model"
)

// Record is one batch of one run.
type Record struct {
	Run       string       `json:"run"`
	Round     int          `json:"round"`
	Time      float64      `json:"time"`
	Solver    string       `json:"solver"`
	Workers   int          `json:"workers"`
	Tasks     int          `json:"tasks"`
	Pairs     []model.Pair `json:"pairs"`
	Score     float64      `json:"score"`
	Upper     float64      `json:"upper"`
	ElapsedMS float64      `json:"elapsed_ms"`
}

// Writer appends records as JSON Lines.
type Writer struct {
	w   io.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps an io.Writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, enc: json.NewEncoder(w)}
}

// Append writes one record.
func (tw *Writer) Append(r Record) error {
	if err := tw.enc.Encode(r); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	tw.n++
	return nil
}

// Count returns how many records were appended.
func (tw *Writer) Count() int { return tw.n }

// Read loads all records from JSON Lines.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// ReadFile loads records from a file.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Summary aggregates a run's records.
type Summary struct {
	Run             string
	Solver          string
	Rounds          int
	TotalScore      float64
	TotalUpper      float64
	DispatchedPairs int
	MeanElapsedMS   float64
	// ScorePerRound is indexed by round order of appearance.
	ScorePerRound []float64
}

// Ratio returns TotalScore/TotalUpper (0 when the bound is 0).
func (s *Summary) Ratio() float64 {
	if s.TotalUpper == 0 {
		return 0
	}
	return s.TotalScore / s.TotalUpper
}

// Summarize groups records by run name and aggregates each. Runs appear in
// first-seen order.
func Summarize(recs []Record) []Summary {
	index := map[string]int{}
	var out []Summary
	for _, r := range recs {
		i, ok := index[r.Run]
		if !ok {
			i = len(out)
			index[r.Run] = i
			out = append(out, Summary{Run: r.Run, Solver: r.Solver})
		}
		s := &out[i]
		if s.Solver != r.Solver {
			s.Solver = "mixed"
		}
		s.Rounds++
		s.TotalScore += r.Score
		s.TotalUpper += r.Upper
		s.DispatchedPairs += len(r.Pairs)
		s.MeanElapsedMS += r.ElapsedMS
		s.ScorePerRound = append(s.ScorePerRound, r.Score)
	}
	for i := range out {
		if out[i].Rounds > 0 {
			out[i].MeanElapsedMS /= float64(out[i].Rounds)
		}
	}
	return out
}

// WorkerLoad counts, per worker ID, how many times it was dispatched across
// the records — the fairness lens on a trace (the paper motivates GT partly
// by fairness to workers).
func WorkerLoad(recs []Record) map[int]int {
	load := map[int]int{}
	for _, r := range recs {
		for _, p := range r.Pairs {
			load[p.Worker]++
		}
	}
	return load
}

// Validate checks a trace's internal consistency: rounds non-negative,
// scores within bounds, no worker dispatched twice in one record.
func Validate(recs []Record) error {
	for i, r := range recs {
		if r.Round < 0 || r.Score < 0 || r.ElapsedMS < 0 {
			return fmt.Errorf("trace: record %d has negative fields", i)
		}
		if r.Score > r.Upper+1e-6 {
			return fmt.Errorf("trace: record %d score %v above bound %v", i, r.Score, r.Upper)
		}
		seen := map[int]bool{}
		for _, p := range r.Pairs {
			if seen[p.Worker] {
				return fmt.Errorf("trace: record %d dispatches worker %d twice", i, p.Worker)
			}
			seen[p.Worker] = true
		}
	}
	return nil
}

package partition

import (
	"reflect"
	"testing"

	"casc/internal/coop"
	"casc/internal/model"
)

// fuzzInstance decodes data into a small instance with an arbitrary
// bipartite validity graph, bypassing geometry: WorkerCand/TaskCand are
// filled directly (ascending, mirrored), which is all Components reads.
func fuzzInstance(data []byte) *model.Instance {
	if len(data) < 3 {
		return nil
	}
	nW := int(data[0])%12 + 1
	nT := int(data[1])%12 + 1
	bits := data[2:]
	in := &model.Instance{
		Workers:    make([]model.Worker, nW),
		Tasks:      make([]model.Task, nT),
		Quality:    coop.Synthetic{N: nW},
		B:          1,
		WorkerCand: make([][]int, nW),
		TaskCand:   make([][]int, nT),
	}
	for w := 0; w < nW; w++ {
		for t := 0; t < nT; t++ {
			i := w*nT + t
			if bits[i/8%len(bits)]>>(i%8)&1 == 1 {
				in.WorkerCand[w] = append(in.WorkerCand[w], t)
				in.TaskCand[t] = append(in.TaskCand[t], w)
			}
		}
	}
	return in
}

// FuzzPartitionComponents drives the union-find decomposition with
// arbitrary validity graphs and checks its contract: the components are a
// disjoint cover of the non-isolated nodes, each is closed under the
// candidate relation and internally connected, index lists stay
// ascending, Pairs add up, and the emitted order is deterministic
// largest-first with unique ascending keys on ties.
func FuzzPartitionComponents(f *testing.F) {
	f.Add([]byte{3, 3, 0b10110101})
	f.Add([]byte{8, 8, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00})
	f.Add([]byte{12, 1, 0x01})
	f.Add([]byte{1, 12, 0x80, 0x01})
	f.Add([]byte{5, 5, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		in := fuzzInstance(data)
		if in == nil {
			t.Skip()
		}
		comps := Components(in)
		if again := Components(in); !reflect.DeepEqual(comps, again) {
			t.Fatalf("Components is nondeterministic:\n%v\nvs\n%v", comps, again)
		}

		seenW := make(map[int]int) // worker -> component index
		seenT := make(map[int]int)
		totalPairs := 0
		for ci, c := range comps {
			if len(c.Workers) == 0 || len(c.Tasks) == 0 || c.Pairs == 0 {
				t.Fatalf("component %d is degenerate: %+v", ci, c)
			}
			for i, w := range c.Workers {
				if i > 0 && c.Workers[i-1] >= w {
					t.Fatalf("component %d workers not ascending: %v", ci, c.Workers)
				}
				if prev, dup := seenW[w]; dup {
					t.Fatalf("worker %d in components %d and %d", w, prev, ci)
				}
				seenW[w] = ci
			}
			for i, task := range c.Tasks {
				if i > 0 && c.Tasks[i-1] >= task {
					t.Fatalf("component %d tasks not ascending: %v", ci, c.Tasks)
				}
				if prev, dup := seenT[task]; dup {
					t.Fatalf("task %d in components %d and %d", task, prev, ci)
				}
				seenT[task] = ci
			}
			// Closure: every candidate edge from a member stays inside.
			pairs := 0
			for _, w := range c.Workers {
				pairs += len(in.WorkerCand[w])
				for _, task := range in.WorkerCand[w] {
					if seenT[task] != ci {
						t.Fatalf("edge (w%d,t%d) leaves component %d", w, task, ci)
					}
				}
			}
			if pairs != c.Pairs {
				t.Fatalf("component %d Pairs = %d, edges = %d", ci, c.Pairs, pairs)
			}
			totalPairs += pairs
			assertConnected(t, in, c)
		}
		if totalPairs != in.NumValidPairs() {
			t.Fatalf("components cover %d pairs, instance has %d", totalPairs, in.NumValidPairs())
		}
		// Cover: every non-isolated node belongs to some component.
		for w, cand := range in.WorkerCand {
			if _, ok := seenW[w]; ok != (len(cand) > 0) {
				t.Fatalf("worker %d (degree %d) coverage = %v", w, len(cand), ok)
			}
		}
		for task, cand := range in.TaskCand {
			if _, ok := seenT[task]; ok != (len(cand) > 0) {
				t.Fatalf("task %d (degree %d) coverage = %v", task, len(cand), ok)
			}
		}
		// Order: size non-increasing, ties broken by ascending unique keys.
		for i := 1; i < len(comps); i++ {
			a, b := comps[i-1], comps[i]
			if a.Size() < b.Size() {
				t.Fatalf("components not largest-first at %d: %d then %d", i, a.Size(), b.Size())
			}
			if a.Size() == b.Size() && a.Key() >= b.Key() {
				t.Fatalf("size tie at %d not broken by ascending key: %d then %d", i, a.Key(), b.Key())
			}
		}
	})
}

// assertConnected BFSes the validity graph restricted to the component and
// requires every member to be reachable from its first worker.
func assertConnected(t *testing.T, in *model.Instance, c Component) {
	t.Helper()
	reachedW := make(map[int]bool)
	reachedT := make(map[int]bool)
	queue := []int{c.Workers[0]} // worker ids; tasks enqueued as ^task
	reachedW[c.Workers[0]] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n >= 0 {
			for _, task := range in.WorkerCand[n] {
				if !reachedT[task] {
					reachedT[task] = true
					queue = append(queue, ^task)
				}
			}
		} else {
			for _, w := range in.TaskCand[^n] {
				if !reachedW[w] {
					reachedW[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	if len(reachedW) != len(c.Workers) || len(reachedT) != len(c.Tasks) {
		t.Fatalf("component {%v,%v} not connected: reached %d workers, %d tasks",
			c.Workers, c.Tasks, len(reachedW), len(reachedT))
	}
}

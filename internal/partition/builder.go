package partition

import "sort"

// Builder computes connected components repeatedly while reusing all of its
// scratch memory: the union-find forest, the root→component table, the
// member arenas, and the component headers themselves. The incremental batch
// engine partitions a slowly-changing instance every round; with a Builder
// the steady-state cost is the union-find scans alone, with zero per-round
// allocations once the arenas have grown to the working-set size.
//
// Build returns exactly what Components returns — same membership, same
// ascending member order, same largest-Size-first / lowest-Key ordering —
// but the returned slice and the Workers/Tasks slices inside it alias the
// Builder's arenas and are only valid until the next Build call. Callers
// that need the result to outlive the next round must copy it.
type Builder struct {
	uf       unionFind
	rootComp []int // node root -> component index, -1 when unseen
	countW   []int // per-component worker counts (then fill cursors)
	countT   []int // per-component task counts (then fill cursors)
	wArena   []int
	tArena   []int
	comps    []Component
}

// NewBuilder returns an empty Builder. The zero value is also usable.
func NewBuilder() *Builder { return &Builder{} }

// Build computes the components of in's validity graph. See the type
// comment for the aliasing contract; everything else matches Components.
func (b *Builder) Build(in componentSource) []Component {
	workerCand, taskCand := in.candidates()
	if workerCand == nil {
		panic("partition: Build before BuildCandidates")
	}
	nW, nT := len(workerCand), len(taskCand)
	b.uf.reset(nW + nT)
	pairs := 0
	for w, cand := range workerCand {
		for _, t := range cand {
			b.uf.union(w, nW+t)
			pairs++
		}
	}
	if pairs == 0 {
		return nil
	}

	b.rootComp = resetInts(b.rootComp, nW+nT, -1)
	nComp := 0
	compOf := func(node int) int {
		root := b.uf.find(node)
		ci := b.rootComp[root]
		if ci < 0 {
			ci = nComp
			nComp++
			b.rootComp[root] = ci
		}
		return ci
	}
	// Counting passes. Ascending scan order is what keeps each component's
	// Workers/Tasks ascending in the fill passes below, which SubInstance
	// and the tie-break equivalence arguments rely on.
	b.comps = b.comps[:0]
	for w := 0; w < nW; w++ {
		if len(workerCand[w]) == 0 {
			continue
		}
		ci := compOf(w)
		b.comps = growComps(b.comps, ci+1)
		b.comps[ci].Pairs += len(workerCand[w])
	}
	b.countW = resetInts(b.countW, nComp, 0)
	b.countT = resetInts(b.countT, nComp, 0)
	for w := 0; w < nW; w++ {
		if len(workerCand[w]) == 0 {
			continue
		}
		b.countW[b.rootComp[b.uf.find(w)]]++
	}
	for t := 0; t < nT; t++ {
		if len(taskCand[t]) == 0 {
			continue
		}
		b.countT[b.rootComp[b.uf.find(nW+t)]]++
	}

	// Carve per-component member slices out of the shared arenas, full
	// length up front, then fill through per-component cursors.
	b.wArena = resetInts(b.wArena, nW, 0)
	b.tArena = resetInts(b.tArena, nT, 0)
	offW, offT := 0, 0
	for ci := 0; ci < nComp; ci++ {
		cw, ct := b.countW[ci], b.countT[ci]
		b.comps[ci].Workers = b.wArena[offW : offW+cw : offW+cw]
		b.comps[ci].Tasks = b.tArena[offT : offT+ct : offT+ct]
		offW += cw
		offT += ct
		b.countW[ci] = 0 // reuse as fill cursor
		b.countT[ci] = 0
	}
	for w := 0; w < nW; w++ {
		if len(workerCand[w]) == 0 {
			continue
		}
		ci := b.rootComp[b.uf.find(w)]
		b.comps[ci].Workers[b.countW[ci]] = w
		b.countW[ci]++
	}
	for t := 0; t < nT; t++ {
		if len(taskCand[t]) == 0 {
			continue
		}
		ci := b.rootComp[b.uf.find(nW+t)]
		b.comps[ci].Tasks[b.countT[ci]] = t
		b.countT[ci]++
	}

	sort.Slice(b.comps, func(i, j int) bool {
		if b.comps[i].Size() != b.comps[j].Size() {
			return b.comps[i].Size() > b.comps[j].Size()
		}
		return b.comps[i].Key() < b.comps[j].Key()
	})
	return b.comps
}

// componentSource abstracts the candidate lists Build partitions over, so
// the incremental engine can hand its maintained adjacency to the same code
// path a model.Instance uses.
type componentSource interface {
	candidates() (workerCand, taskCand [][]int)
}

// Adjacency is a plain candidate-list pair implementing the Build input; the
// incremental engine hands its maintained lists through one of these.
type Adjacency struct {
	WorkerCand [][]int
	TaskCand   [][]int
}

func (a Adjacency) candidates() ([][]int, [][]int) { return a.WorkerCand, a.TaskCand }

// resetInts returns s resized to n with every element set to v, reusing the
// backing array when it is large enough.
func resetInts(s []int, n, v int) []int {
	if cap(s) < n {
		s = make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = v
	}
	return s
}

// growComps extends comps to length n with zero components.
func growComps(comps []Component, n int) []Component {
	for len(comps) < n {
		comps = append(comps, Component{})
	}
	return comps
}

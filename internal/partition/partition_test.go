package partition

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/model"
)

// randomInstance builds a well-connected random CA-SC batch.
func randomInstance(r *rand.Rand, nW, nT, b int) *model.Instance {
	in := &model.Instance{
		Quality: coop.Synthetic{N: nW, Seed: uint64(r.Int63())},
		B:       b,
	}
	for i := 0; i < nW; i++ {
		in.Workers = append(in.Workers, model.Worker{
			ID:     i,
			Loc:    geo.Pt(r.Float64(), r.Float64()),
			Speed:  0.02 + r.Float64()*0.08,
			Radius: 0.1 + r.Float64()*0.2,
		})
	}
	for j := 0; j < nT; j++ {
		in.Tasks = append(in.Tasks, model.Task{
			ID:       j,
			Loc:      geo.Pt(r.Float64(), r.Float64()),
			Capacity: b + r.Intn(3),
			Deadline: 2 + r.Float64()*3,
		})
	}
	in.BuildCandidates(model.IndexRTree)
	return in
}

// clusteredInstance builds an instance whose validity graph splits into
// exactly `clusters` components: workers and tasks are scattered inside
// small spatial clusters whose centers sit ≥ 0.25 apart on a grid, while
// every working area is ≤ 0.1 — so no worker reaches another cluster's
// tasks. Worker and task slice positions are interleaved round-robin
// across clusters so components are non-contiguous index sets.
func clusteredInstance(r *rand.Rand, clusters, wPer, tPer, b int) *model.Instance {
	cols := 1
	for cols*cols < clusters {
		cols++
	}
	centers := make([]geo.Point, clusters)
	for c := range centers {
		centers[c] = geo.Pt(0.125+0.25*float64(c%cols), 0.125+0.25*float64(c/cols))
	}
	jitter := func(c int) geo.Point {
		return geo.Pt(centers[c].X+(r.Float64()-0.5)*0.08, centers[c].Y+(r.Float64()-0.5)*0.08)
	}
	in := &model.Instance{
		Quality: coop.Synthetic{N: clusters * wPer, Seed: uint64(r.Int63())},
		B:       b,
	}
	for i := 0; i < clusters*wPer; i++ {
		in.Workers = append(in.Workers, model.Worker{
			ID:     i,
			Loc:    jitter(i % clusters),
			Speed:  0.05 + r.Float64()*0.05,
			Radius: 0.09 + r.Float64()*0.01,
		})
	}
	for j := 0; j < clusters*tPer; j++ {
		in.Tasks = append(in.Tasks, model.Task{
			ID:       j,
			Loc:      jitter(j % clusters),
			Capacity: b + r.Intn(2),
			Deadline: 5 + r.Float64()*5,
		})
	}
	in.BuildCandidates(model.IndexRTree)
	return in
}

func TestComponentsPartitionValidityGraph(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	in := randomInstance(r, 120, 40, 3)
	comps := Components(in)
	if len(comps) == 0 {
		t.Fatal("no components on a connected instance")
	}
	workerComp := make(map[int]int)
	taskComp := make(map[int]int)
	pairs := 0
	for ci, c := range comps {
		if len(c.Workers) == 0 || len(c.Tasks) == 0 {
			t.Fatalf("component %d lacks workers or tasks", ci)
		}
		if !sort.IntsAreSorted(c.Workers) || !sort.IntsAreSorted(c.Tasks) {
			t.Fatalf("component %d members not ascending", ci)
		}
		for _, w := range c.Workers {
			if prev, dup := workerComp[w]; dup {
				t.Fatalf("worker %d in components %d and %d", w, prev, ci)
			}
			workerComp[w] = ci
		}
		for _, task := range c.Tasks {
			if prev, dup := taskComp[task]; dup {
				t.Fatalf("task %d in components %d and %d", task, prev, ci)
			}
			taskComp[task] = ci
		}
		pairs += c.Pairs
	}
	if pairs != in.NumValidPairs() {
		t.Fatalf("components cover %d pairs, instance has %d", pairs, in.NumValidPairs())
	}
	// Every valid pair stays inside one component, and every endpoint with
	// a candidate is covered.
	for w, cand := range in.WorkerCand {
		if len(cand) == 0 {
			if _, ok := workerComp[w]; ok {
				t.Fatalf("isolated worker %d emitted", w)
			}
			continue
		}
		for _, task := range cand {
			if workerComp[w] != taskComp[task] {
				t.Fatalf("pair (%d,%d) straddles components %d and %d", w, task, workerComp[w], taskComp[task])
			}
		}
	}
}

func TestComponentsDeterministicOrder(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	in := clusteredInstance(r, 9, 10, 4, 2)
	comps := Components(in)
	for i := 1; i < len(comps); i++ {
		if comps[i].Size() > comps[i-1].Size() {
			t.Fatalf("component %d (size %d) after smaller %d (size %d)", i, comps[i].Size(), i-1, comps[i-1].Size())
		}
		if comps[i].Size() == comps[i-1].Size() && comps[i].Key() < comps[i-1].Key() {
			t.Fatalf("size tie broken against key order at %d", i)
		}
	}
	for try := 0; try < 3; try++ {
		if again := Components(in); !reflect.DeepEqual(comps, again) {
			t.Fatal("Components is not deterministic")
		}
	}
}

func TestClusteredComponents(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	const clusters = 9
	in := clusteredInstance(r, clusters, 12, 5, 2)
	comps := Components(in)
	if len(comps) < clusters {
		t.Fatalf("%d components, want ≥ %d (clusters may have split further, never merged)", len(comps), clusters)
	}
	// No component mixes tasks of different spatial clusters.
	for ci, c := range comps {
		cluster := c.Tasks[0] % clusters
		for _, task := range c.Tasks {
			if task%clusters != cluster {
				t.Fatalf("component %d mixes clusters %d and %d", ci, cluster, task%clusters)
			}
		}
	}
}

func TestComponentsEmpty(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{{ID: 0, Loc: geo.Pt(0, 0), Speed: 0.01, Radius: 0.01}},
		Tasks:   []model.Task{{ID: 0, Loc: geo.Pt(1, 1), Capacity: 2, Deadline: 1}},
		Quality: coop.Synthetic{N: 1, Seed: 1},
		B:       2,
	}
	in.BuildCandidates(model.IndexLinear)
	if comps := Components(in); comps != nil {
		t.Fatalf("expected nil components, got %v", comps)
	}
}

func TestDecompose(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	in := clusteredInstance(r, 4, 8, 3, 2)
	subs, maps := Decompose(in)
	comps := Components(in)
	if len(subs) != len(comps) || len(maps) != len(comps) {
		t.Fatalf("Decompose sizes %d/%d, want %d", len(subs), len(maps), len(comps))
	}
	total := 0
	for i, sub := range subs {
		if err := sub.Validate(); err != nil {
			t.Fatalf("sub %d invalid: %v", i, err)
		}
		if sub.NumValidPairs() != comps[i].Pairs {
			t.Errorf("sub %d has %d pairs, component says %d", i, sub.NumValidPairs(), comps[i].Pairs)
		}
		total += len(sub.Workers)
	}
	if want := len(workersWithCandidates(in)); total != want {
		t.Fatalf("subs cover %d workers, want %d", total, want)
	}
}

func workersWithCandidates(in *model.Instance) []int {
	var out []int
	for w, cand := range in.WorkerCand {
		if len(cand) > 0 {
			out = append(out, w)
		}
	}
	return out
}

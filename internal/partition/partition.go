// Package partition decomposes a batch instance into the connected
// components of its worker–task validity graph. The paper's objective Q(T)
// (Equation 3) is additive over tasks and every constraint — capacity,
// working area, deadline — only couples workers that share a candidate
// task, so the components are genuinely independent: solving each in
// isolation and merging loses nothing against solving the whole instance.
package partition

import (
	"sort"

	"casc/internal/model"
)

// Component is one connected component of the worker–task validity graph.
// Workers and Tasks hold parent instance positions, ascending; Pairs counts
// the valid worker-and-task pairs inside the component.
type Component struct {
	Workers []int
	Tasks   []int
	Pairs   int
}

// Size is the node count of the component, the load-balance proxy used to
// order components largest first.
func (c Component) Size() int { return len(c.Workers) + len(c.Tasks) }

// Key is the component's lowest parent task position — a scheduling- and
// ordering-independent identity used for deterministic tie-breaks and
// per-component seed derivation.
func (c Component) Key() int { return c.Tasks[0] }

// Components returns the connected components of the instance's validity
// graph, computed by union-find over the candidate lists. Only components
// containing at least one valid pair are emitted: an isolated worker or
// task can never be assigned, so dropping it loses nothing. The result is
// deterministic — ordered largest Size first (for load balance when
// components are solved on a bounded pool), ties broken by lowest Key —
// and requires candidates to have been built on the instance.
func Components(in *model.Instance) []Component {
	if in.WorkerCand == nil {
		panic("partition: Components before BuildCandidates")
	}
	nW, nT := len(in.Workers), len(in.Tasks)
	// Node layout: workers [0,nW), tasks [nW,nW+nT).
	uf := newUnionFind(nW + nT)
	pairs := 0
	for w, cand := range in.WorkerCand {
		for _, t := range cand {
			uf.union(w, nW+t)
			pairs++
		}
	}
	if pairs == 0 {
		return nil
	}
	byRoot := make(map[int]*Component)
	comp := func(node int) *Component {
		root := uf.find(node)
		c := byRoot[root]
		if c == nil {
			c = &Component{}
			byRoot[root] = c
		}
		return c
	}
	// Ascending scan order keeps each component's Workers/Tasks ascending
	// without a sort, which is what SubInstance and the tie-break
	// equivalence arguments rely on.
	for w := 0; w < nW; w++ {
		if len(in.WorkerCand[w]) == 0 {
			continue
		}
		c := comp(w)
		c.Workers = append(c.Workers, w)
		c.Pairs += len(in.WorkerCand[w])
	}
	for t := 0; t < nT; t++ {
		if len(in.TaskCand[t]) == 0 {
			continue
		}
		comp(nW + t).Tasks = append(comp(nW+t).Tasks, t)
	}
	out := make([]Component, 0, len(byRoot))
	for _, c := range byRoot {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size() != out[j].Size() {
			return out[i].Size() > out[j].Size()
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// Decompose builds the sub-instance of every component along with the
// mapping that lifts its assignments back to the parent, in Components
// order. It is a convenience for callers (like the exact solver) that want
// the split without managing a worker pool.
func Decompose(in *model.Instance) ([]*model.Instance, []*model.SubIndex) {
	comps := Components(in)
	subs := make([]*model.Instance, len(comps))
	maps := make([]*model.SubIndex, len(comps))
	for i, c := range comps {
		subs[i], maps[i] = in.SubInstance(c.Workers, c.Tasks)
	}
	return subs, maps
}

// unionFind is a classic disjoint-set forest with union by size and path
// halving.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

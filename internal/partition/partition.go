// Package partition decomposes a batch instance into the connected
// components of its worker–task validity graph. The paper's objective Q(T)
// (Equation 3) is additive over tasks and every constraint — capacity,
// working area, deadline — only couples workers that share a candidate
// task, so the components are genuinely independent: solving each in
// isolation and merging loses nothing against solving the whole instance.
package partition

import (
	"casc/internal/model"
)

// Component is one connected component of the worker–task validity graph.
// Workers and Tasks hold parent instance positions, ascending; Pairs counts
// the valid worker-and-task pairs inside the component.
type Component struct {
	Workers []int
	Tasks   []int
	Pairs   int
}

// Size is the node count of the component, the load-balance proxy used to
// order components largest first.
func (c Component) Size() int { return len(c.Workers) + len(c.Tasks) }

// Key is the component's lowest parent task position — a scheduling- and
// ordering-independent identity used for deterministic tie-breaks and
// per-component seed derivation.
func (c Component) Key() int { return c.Tasks[0] }

// Components returns the connected components of the instance's validity
// graph, computed by union-find over the candidate lists. Only components
// containing at least one valid pair are emitted: an isolated worker or
// task can never be assigned, so dropping it loses nothing. The result is
// deterministic — ordered largest Size first (for load balance when
// components are solved on a bounded pool), ties broken by lowest Key —
// and requires candidates to have been built on the instance.
func Components(in *model.Instance) []Component {
	if in.WorkerCand == nil {
		panic("partition: Components before BuildCandidates")
	}
	// A throwaway Builder makes the arena aliasing moot; repeated callers
	// (the incremental engine) hold a Builder and call Build directly.
	return NewBuilder().Build(Adjacency{WorkerCand: in.WorkerCand, TaskCand: in.TaskCand})
}

// Decompose builds the sub-instance of every component along with the
// mapping that lifts its assignments back to the parent, in Components
// order. It is a convenience for callers (like the exact solver) that want
// the split without managing a worker pool.
func Decompose(in *model.Instance) ([]*model.Instance, []*model.SubIndex) {
	comps := Components(in)
	subs := make([]*model.Instance, len(comps))
	maps := make([]*model.SubIndex, len(comps))
	for i, c := range comps {
		subs[i], maps[i] = in.SubInstance(c.Workers, c.Tasks)
	}
	return subs, maps
}

// unionFind is a classic disjoint-set forest with union by size and path
// halving, resettable in place so a Builder can reuse its backing arrays
// across rounds. Node layout convention: workers [0,nW), tasks [nW,nW+nT).
type unionFind struct {
	parent []int
	size   []int
}

// reset re-initializes the forest to n singleton sets, reusing the backing
// arrays when they are large enough.
func (u *unionFind) reset(n int) {
	if cap(u.parent) < n {
		u.parent = make([]int, n)
		u.size = make([]int, n)
	}
	u.parent = u.parent[:n]
	u.size = u.size[:n]
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

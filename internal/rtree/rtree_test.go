package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"casc/internal/geo"
)

func randPoints(r *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		p := geo.Pt(r.Float64(), r.Float64())
		items[i] = Item{Rect: geo.PointRect(p), ID: i}
	}
	return items
}

// bruteRange is the ground truth for rectangle queries.
func bruteRange(items []Item, q geo.Rect) []int {
	var out []int
	for _, it := range items {
		if it.Rect.Intersects(q) {
			out = append(out, it.ID)
		}
	}
	sort.Ints(out)
	return out
}

// bruteCircle is the ground truth for circle queries.
func bruteCircle(items []Item, c geo.Point, rad float64) []int {
	var out []int
	for _, it := range items {
		if it.Rect.IntersectsCircle(c, rad) {
			out = append(out, it.ID)
		}
	}
	sort.Ints(out)
	return out
}

func sortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New(0)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if got := tr.Search(geo.RectOf(geo.Pt(0, 0), geo.Pt(1, 1)), nil); len(got) != 0 {
		t.Errorf("search on empty tree returned %v", got)
	}
	if got := tr.Nearest(geo.Pt(0.5, 0.5), 3); got != nil {
		t.Errorf("nearest on empty tree returned %v", got)
	}
	if tr.Delete(Item{Rect: geo.PointRect(geo.Pt(0, 0)), ID: 1}) {
		t.Error("delete on empty tree succeeded")
	}
}

func TestNewPanicsOnTinyFanout(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(2) should panic")
		}
	}()
	New(2)
}

func TestInsertSearchAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	items := randPoints(r, 500)
	tr := New(8)
	for _, it := range items {
		tr.Insert(it)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatalf("invariants after inserts: %v", err)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
	for trial := 0; trial < 200; trial++ {
		q := geo.RectOf(
			geo.Pt(r.Float64(), r.Float64()),
			geo.Pt(r.Float64(), r.Float64()),
		)
		got := sortedCopy(tr.Search(q, nil))
		want := bruteRange(items, q)
		if !equalInts(got, want) {
			t.Fatalf("trial %d: Search(%v) = %v, want %v", trial, q, got, want)
		}
	}
}

func TestSearchCircleAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	items := randPoints(r, 400)
	tr := Bulk(items, 8)
	for trial := 0; trial < 200; trial++ {
		c := geo.Pt(r.Float64(), r.Float64())
		rad := r.Float64() * 0.3
		got := sortedCopy(tr.SearchCircle(c, rad, nil))
		want := bruteCircle(items, c, rad)
		if !equalInts(got, want) {
			t.Fatalf("trial %d: SearchCircle = %v, want %v", trial, got, want)
		}
	}
}

func TestBulkMatchesInsert(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	items := randPoints(r, 300)
	bulk := Bulk(items, 8)
	if err := bulk.checkInvariants(); err != nil {
		t.Fatalf("bulk invariants: %v", err)
	}
	if bulk.Len() != 300 {
		t.Fatalf("bulk Len = %d", bulk.Len())
	}
	inc := New(8)
	for _, it := range items {
		inc.Insert(it)
	}
	for trial := 0; trial < 100; trial++ {
		q := geo.RectAround(geo.Pt(r.Float64(), r.Float64()), r.Float64()*0.2)
		a := sortedCopy(bulk.Search(q, nil))
		b := sortedCopy(inc.Search(q, nil))
		if !equalInts(a, b) {
			t.Fatalf("bulk and incremental trees disagree: %v vs %v", a, b)
		}
	}
}

func TestBulkEmptyAndTiny(t *testing.T) {
	if tr := Bulk(nil, 0); tr.Len() != 0 {
		t.Error("Bulk(nil) not empty")
	}
	one := []Item{{Rect: geo.PointRect(geo.Pt(0.5, 0.5)), ID: 7}}
	tr := Bulk(one, 0)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.SearchCircle(geo.Pt(0.5, 0.5), 0.01, nil)
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("got %v", got)
	}
}

func TestDelete(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	items := randPoints(r, 200)
	tr := New(6)
	for _, it := range items {
		tr.Insert(it)
	}
	// Delete half, verify the rest still queryable and invariants hold.
	live := map[int]bool{}
	for _, it := range items {
		live[it.ID] = true
	}
	for i := 0; i < 100; i++ {
		if !tr.Delete(items[i]) {
			t.Fatalf("Delete item %d failed", i)
		}
		delete(live, items[i].ID)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatalf("invariants after deletes: %v", err)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	all := geo.RectOf(geo.Pt(0, 0), geo.Pt(1, 1))
	got := tr.Search(all, nil)
	if len(got) != 100 {
		t.Fatalf("full search returned %d, want 100", len(got))
	}
	for _, id := range got {
		if !live[id] {
			t.Fatalf("deleted id %d still returned", id)
		}
	}
	// Deleting again must fail.
	if tr.Delete(items[0]) {
		t.Error("double delete succeeded")
	}
}

func TestDeleteAll(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	items := randPoints(r, 150)
	tr := New(4)
	for _, it := range items {
		tr.Insert(it)
	}
	for _, it := range items {
		if !tr.Delete(it) {
			t.Fatalf("delete %d failed", it.ID)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Tree must remain usable after total drain.
	tr.Insert(items[0])
	if got := tr.Search(geo.RectOf(geo.Pt(0, 0), geo.Pt(1, 1)), nil); len(got) != 1 {
		t.Errorf("reinsert after drain: got %v", got)
	}
}

func TestMixedInsertDeleteRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	tr := New(5)
	var live []Item
	nextID := 0
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || r.Float64() < 0.6 {
			it := Item{Rect: geo.PointRect(geo.Pt(r.Float64(), r.Float64())), ID: nextID}
			nextID++
			tr.Insert(it)
			live = append(live, it)
		} else {
			idx := r.Intn(len(live))
			if !tr.Delete(live[idx]) {
				t.Fatalf("step %d: delete failed", step)
			}
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%500 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			q := geo.RectAround(geo.Pt(r.Float64(), r.Float64()), 0.25)
			got := sortedCopy(tr.Search(q, nil))
			want := bruteRange(live, q)
			if !equalInts(got, want) {
				t.Fatalf("step %d: search mismatch", step)
			}
		}
	}
}

func TestNearest(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	items := randPoints(r, 300)
	tr := Bulk(items, 8)
	for trial := 0; trial < 50; trial++ {
		p := geo.Pt(r.Float64(), r.Float64())
		k := 1 + r.Intn(10)
		got := tr.Nearest(p, k)
		if len(got) != k {
			t.Fatalf("Nearest returned %d ids, want %d", len(got), k)
		}
		// Ground truth: sort items by distance.
		byDist := make([]Item, len(items))
		copy(byDist, items)
		sort.Slice(byDist, func(i, j int) bool {
			return byDist[i].Rect.Min.Dist2(p) < byDist[j].Rect.Min.Dist2(p)
		})
		// Verify distances are ordered and match the true k-th distance.
		prev := -1.0
		for rank, id := range got {
			d := items[id].Rect.Min.Dist(p)
			if d < prev-1e-12 {
				t.Fatalf("Nearest out of order at rank %d", rank)
			}
			prev = d
			wantD := byDist[rank].Rect.Min.Dist(p)
			if d > wantD+1e-9 {
				t.Fatalf("rank %d distance %v, optimal %v", rank, d, wantD)
			}
		}
	}
	if got := tr.Nearest(geo.Pt(0.5, 0.5), 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	if got := tr.Nearest(geo.Pt(0.5, 0.5), 1000); len(got) != 300 {
		t.Errorf("k>n returned %d, want 300", len(got))
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Many items at the same location must all be stored and retrieved.
	tr := New(4)
	p := geo.Pt(0.5, 0.5)
	for i := 0; i < 50; i++ {
		tr.Insert(Item{Rect: geo.PointRect(p), ID: i})
	}
	got := tr.SearchCircle(p, 0.001, nil)
	if len(got) != 50 {
		t.Fatalf("got %d ids, want 50", len(got))
	}
	if !tr.Delete(Item{Rect: geo.PointRect(p), ID: 25}) {
		t.Fatal("delete of duplicate-location item failed")
	}
	if got := tr.SearchCircle(p, 0.001, nil); len(got) != 49 {
		t.Fatalf("after delete: %d ids, want 49", len(got))
	}
}

func BenchmarkInsert(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	items := randPoints(r, b.N)
	tr := New(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(items[i])
	}
}

func BenchmarkSearchCircle(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := Bulk(randPoints(r, 10000), 16)
	b.ResetTimer()
	var buf []int
	for i := 0; i < b.N; i++ {
		buf = tr.SearchCircle(geo.Pt(r.Float64(), r.Float64()), 0.05, buf[:0])
	}
}

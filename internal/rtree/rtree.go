// Package rtree implements two in-memory spatial indexes: Tree, an R-tree
// (Guttman 1984) with quadratic node splitting, deletion with reinsertion,
// and Sort-Tile-Recursive (STR) bulk loading; and RStar, an R*-tree
// (Beckmann et al. 1990) over a packed flat-slice node arena — the
// production index of BuildCandidates. Both answer the queries the CA-SC
// framework needs: rectangle range search and circular range search (worker
// working areas); Tree additionally supports deletion and k-nearest
// neighbours.
//
// The batch-based framework of the paper (§III, Algorithm 1 lines 4-5)
// retrieves the valid tasks of each worker with "a range query with a range
// of r_i and a center at the current location l_i" over a spatial index
// "(e.g., R-Tree [24])". This package is that index.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"casc/internal/geo"
)

// Item is an entry stored in the tree: a bounding rectangle plus an opaque
// integer ID chosen by the caller (e.g. a task index).
type Item struct {
	Rect geo.Rect
	ID   int
}

const (
	// DefaultMaxEntries is the default node fan-out M.
	DefaultMaxEntries = 16
	// minFillRatio determines m = M * minFillRatio (Guttman recommends 40%).
	minFillRatio = 0.4
)

// Tree is an R-tree. The zero value is not usable; call New or Bulk.
type Tree struct {
	root       *node
	size       int
	maxEntries int
	minEntries int
	height     int
}

type node struct {
	leaf     bool
	rects    []geo.Rect
	children []*node // non-leaf
	ids      []int   // leaf
}

// New returns an empty tree with the given maximum node fan-out M (use 0 for
// DefaultMaxEntries). M must be at least 4 when specified.
func New(maxEntries int) *Tree {
	if maxEntries == 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxEntries < 4 {
		panic(fmt.Sprintf("rtree: maxEntries %d < 4", maxEntries))
	}
	minEntries := int(float64(maxEntries) * minFillRatio)
	if minEntries < 2 {
		minEntries = 2
	}
	return &Tree{
		root:       &node{leaf: true},
		maxEntries: maxEntries,
		minEntries: minEntries,
		height:     1,
	}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf root).
func (t *Tree) Height() int { return t.height }

func (n *node) bbox() geo.Rect {
	if len(n.rects) == 0 {
		return geo.Rect{}
	}
	b := n.rects[0]
	for _, r := range n.rects[1:] {
		b = b.Union(r)
	}
	return b
}

// Insert adds an item to the tree.
func (t *Tree) Insert(it Item) {
	t.insert(it.Rect, it.ID, nil, 1)
	t.size++
}

// insert places either a leaf entry (subtree == nil) or a whole subtree at
// the given level counted from the leaves (level 1 == leaf level).
func (t *Tree) insert(r geo.Rect, id int, subtree *node, level int) {
	leafPath := t.chooseSubtree(r, level)
	target := leafPath[len(leafPath)-1]
	if subtree == nil {
		target.rects = append(target.rects, r)
		target.ids = append(target.ids, id)
	} else {
		target.rects = append(target.rects, r)
		target.children = append(target.children, subtree)
	}
	// Split upward while nodes overflow.
	for i := len(leafPath) - 1; i >= 0; i-- {
		n := leafPath[i]
		if len(n.rects) <= t.maxEntries {
			continue
		}
		left, right := t.splitNode(n)
		if i == 0 {
			// Grow a new root.
			t.root = &node{
				leaf:     false,
				rects:    []geo.Rect{left.bbox(), right.bbox()},
				children: []*node{left, right},
			}
			t.height++
		} else {
			parent := leafPath[i-1]
			// Replace n with left, append right.
			for ci, c := range parent.children {
				if c == n {
					parent.children[ci] = left
					parent.rects[ci] = left.bbox()
					break
				}
			}
			parent.rects = append(parent.rects, right.bbox())
			parent.children = append(parent.children, right)
		}
	}
	// Refresh bounding boxes along the path.
	for i := len(leafPath) - 2; i >= 0; i-- {
		parent := leafPath[i]
		for ci, c := range parent.children {
			parent.rects[ci] = c.bbox()
		}
	}
}

// chooseSubtree returns the root-to-target path for inserting a rectangle at
// the given level (1 == leaf).
func (t *Tree) chooseSubtree(r geo.Rect, level int) []*node {
	path := []*node{t.root}
	n := t.root
	depth := t.height
	for !n.leaf && depth > level {
		best, bestEnl, bestArea := -1, math.Inf(1), math.Inf(1)
		for i, cr := range n.rects {
			enl := cr.Enlargement(r)
			area := cr.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.children[best]
		path = append(path, n)
		depth--
	}
	return path
}

// splitNode performs Guttman's quadratic split, distributing n's entries
// into two new nodes.
func (t *Tree) splitNode(n *node) (*node, *node) {
	count := len(n.rects)
	// Pick seeds: the pair wasting the most area if grouped together.
	seedA, seedB, worst := 0, 1, math.Inf(-1)
	for i := 0; i < count; i++ {
		for j := i + 1; j < count; j++ {
			waste := n.rects[i].Union(n.rects[j]).Area() - n.rects[i].Area() - n.rects[j].Area()
			if waste > worst {
				seedA, seedB, worst = i, j, waste
			}
		}
	}
	left := &node{leaf: n.leaf}
	right := &node{leaf: n.leaf}
	assign := func(dst *node, idx int) {
		dst.rects = append(dst.rects, n.rects[idx])
		if n.leaf {
			dst.ids = append(dst.ids, n.ids[idx])
		} else {
			dst.children = append(dst.children, n.children[idx])
		}
	}
	assign(left, seedA)
	assign(right, seedB)
	lbox, rbox := n.rects[seedA], n.rects[seedB]

	remaining := make([]int, 0, count-2)
	for i := 0; i < count; i++ {
		if i != seedA && i != seedB {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// Force assignment when one side must take all remaining entries to
		// reach the minimum fill.
		if len(left.rects)+len(remaining) == t.minEntries {
			for _, idx := range remaining {
				assign(left, idx)
				lbox = lbox.Union(n.rects[idx])
			}
			break
		}
		if len(right.rects)+len(remaining) == t.minEntries {
			for _, idx := range remaining {
				assign(right, idx)
				rbox = rbox.Union(n.rects[idx])
			}
			break
		}
		// PickNext: entry with maximum preference difference.
		bestIdx, bestDiff, bestAt := -1, math.Inf(-1), 0
		for at, idx := range remaining {
			dl := lbox.Enlargement(n.rects[idx])
			dr := rbox.Enlargement(n.rects[idx])
			diff := math.Abs(dl - dr)
			if diff > bestDiff {
				bestIdx, bestDiff, bestAt = idx, diff, at
			}
		}
		r := n.rects[bestIdx]
		dl, dr := lbox.Enlargement(r), rbox.Enlargement(r)
		toLeft := dl < dr
		if dl == dr {
			// Tie-break by area, then by entry count.
			switch {
			case lbox.Area() < rbox.Area():
				toLeft = true
			case lbox.Area() > rbox.Area():
				toLeft = false
			default:
				toLeft = len(left.rects) <= len(right.rects)
			}
		}
		if toLeft {
			assign(left, bestIdx)
			lbox = lbox.Union(r)
		} else {
			assign(right, bestIdx)
			rbox = rbox.Union(r)
		}
		remaining = append(remaining[:bestAt], remaining[bestAt+1:]...)
	}
	return left, right
}

// Delete removes one item matching (rect, id). It reports whether an item
// was found and removed. Underfull nodes are dissolved and their entries
// reinserted (Guttman's CondenseTree).
func (t *Tree) Delete(it Item) bool {
	leaf, idx, path := t.findLeaf(t.root, it, []*node{t.root})
	if leaf == nil {
		return false
	}
	leaf.rects = append(leaf.rects[:idx], leaf.rects[idx+1:]...)
	leaf.ids = append(leaf.ids[:idx], leaf.ids[idx+1:]...)
	t.size--
	t.condense(path)
	return true
}

func (t *Tree) findLeaf(n *node, it Item, path []*node) (*node, int, []*node) {
	if n.leaf {
		for i, r := range n.rects {
			if r == it.Rect && n.ids[i] == it.ID {
				return n, i, path
			}
		}
		return nil, 0, nil
	}
	for i, r := range n.rects {
		if r.ContainsRect(it.Rect) {
			if leaf, idx, p := t.findLeaf(n.children[i], it, append(path, n.children[i])); leaf != nil {
				return leaf, idx, p
			}
		}
	}
	return nil, 0, nil
}

// condense walks the deletion path bottom-up removing underfull nodes and
// reinserting their orphaned entries at the correct level.
func (t *Tree) condense(path []*node) {
	type orphan struct {
		rect    geo.Rect
		id      int
		subtree *node
		level   int
	}
	var orphans []orphan
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i]
		parent := path[i-1]
		level := t.height - i // leaf level == 1 when i == height-1
		if len(n.rects) < t.minEntries {
			// Remove n from parent, orphan its entries.
			for ci, c := range parent.children {
				if c == n {
					parent.rects = append(parent.rects[:ci], parent.rects[ci+1:]...)
					parent.children = append(parent.children[:ci], parent.children[ci+1:]...)
					break
				}
			}
			if n.leaf {
				for j := range n.rects {
					orphans = append(orphans, orphan{rect: n.rects[j], id: n.ids[j]})
				}
			} else {
				for j := range n.rects {
					orphans = append(orphans, orphan{rect: n.rects[j], subtree: n.children[j], level: level - 1})
				}
			}
		} else {
			// Tighten bbox in parent.
			for ci, c := range parent.children {
				if c == n {
					parent.rects[ci] = n.bbox()
					break
				}
			}
		}
	}
	// Shrink the root if it has a single child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.height--
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &node{leaf: true}
		t.height = 1
	}
	for _, o := range orphans {
		if o.subtree == nil {
			t.insert(o.rect, o.id, nil, 1)
		} else if o.level >= t.height {
			// The tree shrank below the orphan subtree's level; reinsert its
			// individual entries instead.
			var stack []*node
			stack = append(stack, o.subtree)
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if n.leaf {
					for j := range n.rects {
						t.insert(n.rects[j], n.ids[j], nil, 1)
					}
				} else {
					stack = append(stack, n.children...)
				}
			}
		} else {
			t.insert(o.subtree.bbox(), 0, o.subtree, o.level+1)
		}
	}
}

// Search appends to dst the IDs of all items whose rectangles intersect q
// and returns the extended slice.
func (t *Tree) Search(q geo.Rect, dst []int) []int {
	return t.search(t.root, q, dst)
}

func (t *Tree) search(n *node, q geo.Rect, dst []int) []int {
	for i, r := range n.rects {
		if !r.Intersects(q) {
			continue
		}
		if n.leaf {
			dst = append(dst, n.ids[i])
		} else {
			dst = t.search(n.children[i], q, dst)
		}
	}
	return dst
}

// SearchCircle appends to dst the IDs of all point items (degenerate
// rectangles) lying within the closed disk of radius rad centered at c, and
// returns the extended slice. For non-point items the item's rectangle
// minimum distance to c is used, i.e. items intersecting the disk match.
func (t *Tree) SearchCircle(c geo.Point, rad float64, dst []int) []int {
	return t.searchCircle(t.root, c, rad, dst)
}

func (t *Tree) searchCircle(n *node, c geo.Point, rad float64, dst []int) []int {
	for i, r := range n.rects {
		if !r.IntersectsCircle(c, rad) {
			continue
		}
		if n.leaf {
			dst = append(dst, n.ids[i])
		} else {
			dst = t.searchCircle(n.children[i], c, rad, dst)
		}
	}
	return dst
}

// Nearest returns up to k item IDs ordered by ascending distance from p
// (branch-and-bound best-first search).
func (t *Tree) Nearest(p geo.Point, k int) []int {
	if k <= 0 || t.size == 0 {
		return nil
	}
	type cand struct {
		dist float64
		id   int
		n    *node
	}
	// Simple binary heap on dist.
	var heap []cand
	push := func(c cand) {
		heap = append(heap, c)
		i := len(heap) - 1
		for i > 0 {
			par := (i - 1) / 2
			if heap[par].dist <= heap[i].dist {
				break
			}
			heap[par], heap[i] = heap[i], heap[par]
			i = par
		}
	}
	pop := func() cand {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && heap[l].dist < heap[small].dist {
				small = l
			}
			if r < len(heap) && heap[r].dist < heap[small].dist {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	push(cand{dist: t.root.bbox().DistToPoint(p), n: t.root})
	var out []int
	for len(heap) > 0 && len(out) < k {
		c := pop()
		if c.n == nil {
			out = append(out, c.id)
			continue
		}
		for i, r := range c.n.rects {
			if c.n.leaf {
				push(cand{dist: r.DistToPoint(p), id: c.n.ids[i]})
			} else {
				push(cand{dist: r.DistToPoint(p), n: c.n.children[i]})
			}
		}
	}
	return out
}

// Bulk builds a tree from items using Sort-Tile-Recursive packing. It is
// much faster than repeated Insert for static datasets such as the tasks of
// one batch. maxEntries semantics match New.
func Bulk(items []Item, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(items) == 0 {
		return t
	}
	leaves := strPack(items, t.maxEntries)
	level := leaves
	height := 1
	for len(level) > 1 {
		level = packNodes(level, t.maxEntries)
		height++
	}
	t.root = level[0]
	t.size = len(items)
	t.height = height
	return t
}

// strPack tiles items into leaf nodes.
func strPack(items []Item, m int) []*node {
	sorted := make([]Item, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Rect.Center().X < sorted[j].Rect.Center().X
	})
	nLeaves := (len(sorted) + m - 1) / m
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := nSlices * m
	var leaves []*node
	for s := 0; s < len(sorted); s += sliceSize {
		end := s + sliceSize
		if end > len(sorted) {
			end = len(sorted)
		}
		slice := sorted[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for o := 0; o < len(slice); o += m {
			oe := o + m
			if oe > len(slice) {
				oe = len(slice)
			}
			leaf := &node{leaf: true}
			for _, it := range slice[o:oe] {
				leaf.rects = append(leaf.rects, it.Rect)
				leaf.ids = append(leaf.ids, it.ID)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes groups child nodes into parents, STR style.
func packNodes(children []*node, m int) []*node {
	sort.Slice(children, func(i, j int) bool {
		return children[i].bbox().Center().X < children[j].bbox().Center().X
	})
	nParents := (len(children) + m - 1) / m
	nSlices := int(math.Ceil(math.Sqrt(float64(nParents))))
	sliceSize := nSlices * m
	var parents []*node
	for s := 0; s < len(children); s += sliceSize {
		end := s + sliceSize
		if end > len(children) {
			end = len(children)
		}
		slice := children[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].bbox().Center().Y < slice[j].bbox().Center().Y
		})
		for o := 0; o < len(slice); o += m {
			oe := o + m
			if oe > len(slice) {
				oe = len(slice)
			}
			parent := &node{leaf: false}
			for _, c := range slice[o:oe] {
				parent.rects = append(parent.rects, c.bbox())
				parent.children = append(parent.children, c)
			}
			parents = append(parents, parent)
		}
	}
	return parents
}

// checkInvariants validates structural invariants; used by tests.
func (t *Tree) checkInvariants() error {
	count, err := t.check(t.root, t.height)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: size %d but %d reachable entries", t.size, count)
	}
	return nil
}

func (t *Tree) check(n *node, depth int) (int, error) {
	if n.leaf {
		if depth != 1 {
			return 0, fmt.Errorf("rtree: leaf at depth %d", depth)
		}
		if len(n.rects) != len(n.ids) {
			return 0, fmt.Errorf("rtree: leaf rects/ids mismatch")
		}
		return len(n.rects), nil
	}
	if len(n.rects) != len(n.children) {
		return 0, fmt.Errorf("rtree: node rects/children mismatch")
	}
	total := 0
	for i, c := range n.children {
		if !n.rects[i].ContainsRect(c.bbox()) {
			return 0, fmt.Errorf("rtree: child bbox %v escapes parent rect %v", c.bbox(), n.rects[i])
		}
		sub, err := t.check(c, depth-1)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}

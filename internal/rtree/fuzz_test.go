package rtree

import (
	"sort"
	"testing"

	"casc/internal/geo"
)

// FuzzTreeOps drives the R-tree through an arbitrary byte-encoded sequence
// of insert/delete/query operations, cross-checking every query against a
// linear-scan model and the structural invariants after every mutation.
// Run with `go test -fuzz=FuzzTreeOps ./internal/rtree` to explore; the
// seed corpus below runs in normal test mode.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 10, 20, 1, 30, 40, 2, 15, 25, 9})
	f.Add([]byte{0, 1, 2, 0, 3, 4, 0, 5, 6, 1, 1, 2, 2, 0, 0, 50})
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := New(4)
		var live []Item
		nextID := 0
		pos := 0
		next := func() (byte, bool) {
			if pos >= len(data) {
				return 0, false
			}
			b := data[pos]
			pos++
			return b, true
		}
		for {
			op, ok := next()
			if !ok {
				break
			}
			switch op % 3 {
			case 0: // insert at coords from the next two bytes
				xb, ok1 := next()
				yb, ok2 := next()
				if !ok1 || !ok2 {
					return
				}
				it := Item{
					Rect: geo.PointRect(geo.Pt(float64(xb)/255, float64(yb)/255)),
					ID:   nextID,
				}
				nextID++
				tr.Insert(it)
				live = append(live, it)
			case 1: // delete an existing item chosen by the next byte
				ib, ok1 := next()
				if !ok1 {
					return
				}
				if len(live) == 0 {
					continue
				}
				idx := int(ib) % len(live)
				if !tr.Delete(live[idx]) {
					t.Fatalf("delete of live item %d failed", live[idx].ID)
				}
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
			case 2: // circle query centered from the next two bytes
				xb, ok1 := next()
				yb, ok2 := next()
				if !ok1 || !ok2 {
					return
				}
				c := geo.Pt(float64(xb)/255, float64(yb)/255)
				const rad = 0.3
				got := append([]int(nil), tr.SearchCircle(c, rad, nil)...)
				sort.Ints(got)
				var want []int
				for _, it := range live {
					if geo.InCircle(it.Rect.Min, c, rad) {
						want = append(want, it.ID)
					}
				}
				sort.Ints(want)
				if len(got) != len(want) {
					t.Fatalf("query mismatch: got %d ids, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("query mismatch at %d: %d vs %d", i, got[i], want[i])
					}
				}
			}
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("Len %d, want %d", tr.Len(), len(live))
			}
		}
	})
}

package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"casc/internal/geo"
)

func randRect(r *rand.Rand) geo.Rect {
	x, y := r.Float64(), r.Float64()
	w, h := r.Float64()*0.1, r.Float64()*0.1
	return geo.RectOf(geo.Pt(x, y), geo.Pt(x+w, y+h))
}

func linearSearch(items []Item, q geo.Rect) []int {
	var out []int
	for _, it := range items {
		if it.Rect.Intersects(q) {
			out = append(out, it.ID)
		}
	}
	sort.Ints(out)
	return out
}

func linearCircle(items []Item, c geo.Point, rad float64) []int {
	var out []int
	for _, it := range items {
		if it.Rect.IntersectsCircle(c, rad) {
			out = append(out, it.ID)
		}
	}
	sort.Ints(out)
	return out
}

func requireSameIDs(t *testing.T, got, want []int, label string) {
	t.Helper()
	sort.Ints(got)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d ids, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: id[%d] = %d, want %d", label, i, got[i], want[i])
		}
	}
}

// TestRStarInsertVsLinear cross-checks incremental R* insertion (which
// exercises ChooseSubtree, forced reinsert, and the topological split)
// against a linear scan, with invariants checked as the tree grows.
func TestRStarInsertVsLinear(t *testing.T) {
	for _, fanout := range []int{4, 8, 16} {
		r := rand.New(rand.NewSource(int64(fanout)))
		tr := NewRStar(fanout)
		var items []Item
		for i := 0; i < 400; i++ {
			it := Item{Rect: randRect(r), ID: i}
			tr.Insert(it)
			items = append(items, it)
			if i%37 == 0 {
				if err := tr.checkInvariants(); err != nil {
					t.Fatalf("fanout %d after %d inserts: %v", fanout, i+1, err)
				}
			}
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("fanout %d final: %v", fanout, err)
		}
		if tr.Len() != len(items) {
			t.Fatalf("Len %d, want %d", tr.Len(), len(items))
		}
		for q := 0; q < 50; q++ {
			rect := randRect(r)
			requireSameIDs(t, tr.Search(rect, nil), linearSearch(items, rect), "Search")
			c := geo.Pt(r.Float64(), r.Float64())
			rad := r.Float64() * 0.3
			requireSameIDs(t, tr.SearchCircle(c, rad, nil), linearCircle(items, c, rad), "SearchCircle")
		}
	}
}

// TestRStarBulkVsLinear checks STR packing into the packed arena across
// sizes that cover the single-leaf root, one-level, and multi-level cases.
func TestRStarBulkVsLinear(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 5, 16, 17, 100, 1000} {
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Rect: geo.PointRect(geo.Pt(r.Float64(), r.Float64())), ID: i}
		}
		tr := BulkRStar(items, 0)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len %d", n, tr.Len())
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for q := 0; q < 20; q++ {
			c := geo.Pt(r.Float64(), r.Float64())
			rad := r.Float64() * 0.4
			requireSameIDs(t, tr.SearchCircle(c, rad, nil), linearCircle(items, c, rad), "SearchCircle")
		}
	}
}

// TestRStarBulkMatchesTreeBulk pins that the packed R*-tree and the
// pointer-based tree return identical ID sets for identical queries — the
// property BuildCandidates relies on when swapping the index (candidate
// lists are sorted afterwards, so set equality is output preservation).
func TestRStarBulkMatchesTreeBulk(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	items := make([]Item, 500)
	for i := range items {
		items[i] = Item{Rect: geo.PointRect(geo.Pt(r.Float64(), r.Float64())), ID: i}
	}
	packed := BulkRStar(items, 0)
	boxed := Bulk(items, 0)
	for q := 0; q < 200; q++ {
		c := geo.Pt(r.Float64(), r.Float64())
		rad := r.Float64() * 0.2
		got := append([]int(nil), packed.SearchCircle(c, rad, nil)...)
		want := append([]int(nil), boxed.SearchCircle(c, rad, nil)...)
		sort.Ints(want)
		requireSameIDs(t, got, want, "packed vs boxed")
	}
}

// TestRStarDuplicatePoints stresses forced reinsert and splits with many
// coincident rectangles (zero-area ties throughout the split goodness
// metrics).
func TestRStarDuplicatePoints(t *testing.T) {
	tr := NewRStar(4)
	var items []Item
	for i := 0; i < 100; i++ {
		it := Item{Rect: geo.PointRect(geo.Pt(0.5, 0.5)), ID: i}
		tr.Insert(it)
		items = append(items, it)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	requireSameIDs(t, tr.SearchCircle(geo.Pt(0.5, 0.5), 0.01, nil), linearCircle(items, geo.Pt(0.5, 0.5), 0.01), "coincident")
}

// FuzzRStarOps drives the packed R*-tree through arbitrary insert/query
// sequences, cross-checking against a linear model and the invariants —
// the RStar counterpart of FuzzTreeOps (minus deletes, which RStar does
// not support).
func FuzzRStarOps(f *testing.F) {
	f.Add([]byte{0, 10, 20, 0, 30, 40, 1, 15, 25})
	f.Add([]byte{0, 1, 2, 0, 3, 4, 0, 5, 6, 0, 0, 0, 1, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewRStar(4)
		var live []Item
		nextID := 0
		pos := 0
		next := func() (byte, bool) {
			if pos >= len(data) {
				return 0, false
			}
			b := data[pos]
			pos++
			return b, true
		}
		for {
			op, ok := next()
			if !ok {
				break
			}
			switch op % 2 {
			case 0:
				xb, ok1 := next()
				yb, ok2 := next()
				if !ok1 || !ok2 {
					return
				}
				it := Item{
					Rect: geo.PointRect(geo.Pt(float64(xb)/255, float64(yb)/255)),
					ID:   nextID,
				}
				nextID++
				tr.Insert(it)
				live = append(live, it)
			case 1:
				xb, ok1 := next()
				yb, ok2 := next()
				if !ok1 || !ok2 {
					return
				}
				c := geo.Pt(float64(xb)/255, float64(yb)/255)
				const rad = 0.3
				requireSameIDsFuzz(t, tr.SearchCircle(c, rad, nil), linearCircle(live, c, rad))
			}
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("Len %d, want %d", tr.Len(), len(live))
			}
		}
	})
}

func requireSameIDsFuzz(t *testing.T, got, want []int) {
	t.Helper()
	sort.Ints(got)
	if len(got) != len(want) {
		t.Fatalf("query mismatch: got %d ids, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("query mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

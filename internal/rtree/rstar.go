package rtree

import (
	"fmt"
	"math"
	"sort"

	"casc/internal/geo"
)

// RStar is an R*-tree (Beckmann, Kriegel, Schneider, Seeger 1990) over a
// packed node arena. Where Tree allocates one Go object per node plus three
// slices inside it, RStar stores every node in flat parallel slices indexed
// by an int32 node number: node n's entry slots occupy the half-open block
// [n*stride, n*stride+count[n]) of minX/minY/maxX/maxY/ref, with stride =
// maxEntries+1 so the overflowing entry fits in the block while
// OverflowTreatment decides between forced reinsertion and a split. The
// layout keeps the whole tree in a handful of contiguous allocations —
// queries touch four float64 arrays sequentially per node instead of
// chasing per-node pointers — and node numbers stay valid across growth.
//
// The insertion algorithm is the R* variant: ChooseSubtree switches to the
// minimum-overlap-enlargement criterion when choosing among leaves, the
// first overflow per level per insertion forcibly reinserts the ~30% of
// entries farthest from the node's center, and splits pick the axis by
// minimum margin sum and the distribution by minimum overlap. Compared to
// Guttman's quadratic split this trades a little insertion work for
// measurably less leaf overlap, which is exactly what the per-worker
// circular range queries of BuildCandidates pay for.
//
// BulkRStar packs a static item set with Sort-Tile-Recursive directly into
// the arena (the batch tier's per-round build path); Insert exists for
// dynamic use and for exercising the R* machinery in tests. RStar does not
// support deletion — per-round indexes are rebuilt, not mutated.
type RStar struct {
	maxEntries int
	minEntries int
	// reinsertP is p, the number of entries forced out on the first
	// overflow of a level (the paper's experiments settle on 30% of M).
	reinsertP int
	stride    int
	root      int32
	height    int
	size      int

	count []int32
	leaf  []bool
	minX  []float64
	minY  []float64
	maxX  []float64
	maxY  []float64
	// ref holds the child node number (internal nodes) or the item ID
	// (leaves). Item IDs must fit in int31.
	ref []int32

	// reinserted[lvl] records that OverflowTreatment already ran a forced
	// reinsert at that level during the current Insert (R* runs it at most
	// once per level per data insertion).
	reinserted []bool
}

// NewRStar returns an empty R*-tree with the given maximum node fan-out M
// (0 selects DefaultMaxEntries; M must be at least 4 otherwise).
func NewRStar(maxEntries int) *RStar {
	if maxEntries == 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxEntries < 4 {
		panic(fmt.Sprintf("rtree: maxEntries %d < 4", maxEntries))
	}
	minEntries := int(float64(maxEntries) * minFillRatio)
	if minEntries < 2 {
		minEntries = 2
	}
	p := (maxEntries*3 + 9) / 10
	if p < 1 {
		p = 1
	}
	if p > maxEntries-minEntries {
		p = maxEntries - minEntries
	}
	t := &RStar{
		maxEntries: maxEntries,
		minEntries: minEntries,
		reinsertP:  p,
		stride:     maxEntries + 1,
		height:     1,
	}
	t.root = t.newNode(true)
	return t
}

// Len returns the number of stored items.
func (t *RStar) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf root).
func (t *RStar) Height() int { return t.height }

// newNode appends a zeroed node block to the arena and returns its number.
func (t *RStar) newNode(leaf bool) int32 {
	n := int32(len(t.count))
	t.count = append(t.count, 0)
	t.leaf = append(t.leaf, leaf)
	t.minX = append(t.minX, make([]float64, t.stride)...)
	t.minY = append(t.minY, make([]float64, t.stride)...)
	t.maxX = append(t.maxX, make([]float64, t.stride)...)
	t.maxY = append(t.maxY, make([]float64, t.stride)...)
	t.ref = append(t.ref, make([]int32, t.stride)...)
	return n
}

func (t *RStar) slot(n int32, i int32) int { return int(n)*t.stride + int(i) }

func (t *RStar) entRect(n, i int32) geo.Rect {
	s := t.slot(n, i)
	return geo.Rect{Min: geo.Pt(t.minX[s], t.minY[s]), Max: geo.Pt(t.maxX[s], t.maxY[s])}
}

func (t *RStar) setEnt(n, i int32, r geo.Rect, ref int32) {
	s := t.slot(n, i)
	t.minX[s], t.minY[s] = r.Min.X, r.Min.Y
	t.maxX[s], t.maxY[s] = r.Max.X, r.Max.Y
	t.ref[s] = ref
}

func (t *RStar) appendEnt(n int32, r geo.Rect, ref int32) {
	t.setEnt(n, t.count[n], r, ref)
	t.count[n]++
}

func (t *RStar) nodeBBox(n int32) geo.Rect {
	b := t.entRect(n, 0)
	for i := int32(1); i < t.count[n]; i++ {
		b = b.Union(t.entRect(n, i))
	}
	return b
}

// Insert adds an item. IDs must be non-negative and fit in 31 bits (they
// share the int32 ref array with node numbers).
func (t *RStar) Insert(it Item) {
	if it.ID < 0 || it.ID > math.MaxInt32 {
		panic(fmt.Sprintf("rtree: RStar item ID %d outside int31", it.ID))
	}
	for len(t.reinserted) <= t.height {
		t.reinserted = append(t.reinserted, false)
	}
	for i := range t.reinserted {
		t.reinserted[i] = false
	}
	t.insertEntry(it.Rect, int32(it.ID), 1)
	t.size++
}

// insertEntry places an entry (a leaf item or, during reinsertion, a whole
// subtree reference) at the given level counted from the leaves (1 = leaf).
func (t *RStar) insertEntry(r geo.Rect, ref int32, level int) {
	path, idxs := t.choosePath(r, level)
	t.appendEnt(path[len(path)-1], r, ref)
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		// Tighten the parent entry for the child we came up from before any
		// overflow handling reads this node's rectangles.
		if i < len(path)-1 {
			t.setEntRect(n, idxs[i], t.nodeBBox(path[i+1]))
		}
		if int(t.count[n]) <= t.maxEntries {
			continue
		}
		lvl := t.height - i
		// Reinsertion recursion can split the root and grow the tree, so
		// the per-level flags may trail the current height.
		for len(t.reinserted) <= lvl {
			t.reinserted = append(t.reinserted, false)
		}
		if i > 0 && lvl < t.height && !t.reinserted[lvl] {
			// Forced reinsert: once per level per insertion, and never at
			// the root. Ancestor entries are tightened first so the
			// reinserted entries see a consistent tree.
			t.reinserted[lvl] = true
			for j := i - 1; j >= 0; j-- {
				t.setEntRect(path[j], idxs[j], t.nodeBBox(path[j+1]))
			}
			t.forceReinsert(n, lvl)
			return
		}
		right := t.splitRStar(n)
		if i == 0 {
			newRoot := t.newNode(false)
			t.appendEnt(newRoot, t.nodeBBox(n), n)
			t.appendEnt(newRoot, t.nodeBBox(right), right)
			t.root = newRoot
			t.height++
		} else {
			parent := path[i-1]
			t.setEntRect(parent, idxs[i-1], t.nodeBBox(n))
			t.appendEnt(parent, t.nodeBBox(right), right)
		}
	}
}

func (t *RStar) setEntRect(n, i int32, r geo.Rect) {
	s := t.slot(n, i)
	t.minX[s], t.minY[s] = r.Min.X, r.Min.Y
	t.maxX[s], t.maxY[s] = r.Max.X, r.Max.Y
}

// choosePath descends from the root to the insertion node at the target
// level, returning the node path and, for each non-final path node, the
// entry index of the chosen child. R* criterion: when the children are
// leaves, minimize overlap enlargement (ties: area enlargement, then
// area); otherwise minimize area enlargement (ties: area).
func (t *RStar) choosePath(r geo.Rect, level int) ([]int32, []int32) {
	path := []int32{t.root}
	var idxs []int32
	n := t.root
	depth := t.height
	for depth > level && !t.leaf[n] {
		childrenAreLeaves := t.leaf[t.ref[t.slot(n, 0)]]
		best := int32(-1)
		bestOverlap, bestEnl, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
		for i := int32(0); i < t.count[n]; i++ {
			cr := t.entRect(n, i)
			enl := cr.Enlargement(r)
			area := cr.Area()
			if childrenAreLeaves && depth == level+1 {
				over := t.overlapDelta(n, i, r)
				if over < bestOverlap || (over == bestOverlap && (enl < bestEnl || (enl == bestEnl && area < bestArea))) {
					best, bestOverlap, bestEnl, bestArea = i, over, enl, area
				}
			} else if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		idxs = append(idxs, best)
		n = t.ref[t.slot(n, best)]
		path = append(path, n)
		depth--
	}
	return path, idxs
}

// overlapDelta returns how much the overlap of entry i with its siblings
// grows when i is enlarged to cover r.
func (t *RStar) overlapDelta(n, i int32, r geo.Rect) float64 {
	cur := t.entRect(n, i)
	enlarged := cur.Union(r)
	var delta float64
	for j := int32(0); j < t.count[n]; j++ {
		if j == i {
			continue
		}
		sib := t.entRect(n, j)
		delta += intersectArea(enlarged, sib) - intersectArea(cur, sib)
	}
	return delta
}

func intersectArea(a, b geo.Rect) float64 {
	w := math.Min(a.Max.X, b.Max.X) - math.Max(a.Min.X, b.Min.X)
	if w <= 0 {
		return 0
	}
	h := math.Min(a.Max.Y, b.Max.Y) - math.Max(a.Min.Y, b.Min.Y)
	if h <= 0 {
		return 0
	}
	return w * h
}

// forceReinsert strips the reinsertP entries whose centers lie farthest
// from the overflowing node's center and re-inserts them at the same level
// ("far reinsert"), giving the tree a chance to migrate them into
// better-fitting siblings instead of splitting immediately.
func (t *RStar) forceReinsert(n int32, level int) {
	center := t.nodeBBox(n).Center()
	cnt := int(t.count[n])
	type far struct {
		d   float64
		i   int32
		r   geo.Rect
		ref int32
	}
	order := make([]far, cnt)
	for i := 0; i < cnt; i++ {
		r := t.entRect(n, int32(i))
		order[i] = far{d: r.Center().Dist2(center), i: int32(i), r: r, ref: t.ref[t.slot(n, int32(i))]}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].d != order[b].d {
			return order[a].d > order[b].d
		}
		return order[a].i < order[b].i
	})
	removed := order[:t.reinsertP]
	keep := order[t.reinsertP:]
	for i, e := range keep {
		t.setEnt(n, int32(i), e.r, e.ref)
	}
	t.count[n] = int32(len(keep))
	for _, e := range removed {
		t.insertEntry(e.r, e.ref, level)
	}
}

// splitRStar distributes the stride entries of an overflowing node between
// it and a fresh sibling using the R* topological split: the axis is the
// one whose candidate distributions have the smallest total margin, and the
// distribution along it minimizes group overlap, breaking ties by total
// area. Returns the new sibling (which keeps the second group).
func (t *RStar) splitRStar(n int32) int32 {
	cnt := int(t.count[n])
	m := t.minEntries
	type ent struct {
		r   geo.Rect
		ref int32
	}
	ents := make([]ent, cnt)
	for i := 0; i < cnt; i++ {
		ents[i] = ent{r: t.entRect(n, int32(i)), ref: t.ref[t.slot(n, int32(i))]}
	}

	// Four candidate sort orders: per axis, by lower then by upper value.
	orders := make([][]int, 4)
	keys := []func(r geo.Rect) (float64, float64){
		func(r geo.Rect) (float64, float64) { return r.Min.X, r.Max.X },
		func(r geo.Rect) (float64, float64) { return r.Max.X, r.Min.X },
		func(r geo.Rect) (float64, float64) { return r.Min.Y, r.Max.Y },
		func(r geo.Rect) (float64, float64) { return r.Max.Y, r.Min.Y },
	}
	for oi, key := range keys {
		ord := make([]int, cnt)
		for i := range ord {
			ord[i] = i
		}
		sort.SliceStable(ord, func(a, b int) bool {
			ka, ka2 := key(ents[ord[a]].r)
			kb, kb2 := key(ents[ord[b]].r)
			if ka != kb {
				return ka < kb
			}
			return ka2 < kb2
		})
		orders[oi] = ord
	}

	// prefix[i] = bbox of ord[0..i], suffix[i] = bbox of ord[i..cnt-1].
	prefix := make([]geo.Rect, cnt)
	suffix := make([]geo.Rect, cnt)
	// First-group sizes run m..cnt-m so both groups respect the minimum
	// fill: cnt-2m+1 distributions per sort order.
	nSplits := cnt - 2*m + 1
	marginOf := func(ord []int) float64 {
		prefix[0] = ents[ord[0]].r
		for i := 1; i < cnt; i++ {
			prefix[i] = prefix[i-1].Union(ents[ord[i]].r)
		}
		suffix[cnt-1] = ents[ord[cnt-1]].r
		for i := cnt - 2; i >= 0; i-- {
			suffix[i] = suffix[i+1].Union(ents[ord[i]].r)
		}
		var sum float64
		for k := 0; k < nSplits; k++ {
			split := m + k // first group size
			sum += prefix[split-1].Margin() + suffix[split].Margin()
		}
		return sum
	}
	marginX := marginOf(orders[0]) + marginOf(orders[1])
	marginY := marginOf(orders[2]) + marginOf(orders[3])
	axisOrders := orders[:2]
	if marginY < marginX {
		axisOrders = orders[2:]
	}

	bestOrd, bestSplit := axisOrders[0], m
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	for _, ord := range axisOrders {
		prefix[0] = ents[ord[0]].r
		for i := 1; i < cnt; i++ {
			prefix[i] = prefix[i-1].Union(ents[ord[i]].r)
		}
		suffix[cnt-1] = ents[ord[cnt-1]].r
		for i := cnt - 2; i >= 0; i-- {
			suffix[i] = suffix[i+1].Union(ents[ord[i]].r)
		}
		for k := 0; k < nSplits; k++ {
			split := m + k
			lb, rb := prefix[split-1], suffix[split]
			over := intersectArea(lb, rb)
			area := lb.Area() + rb.Area()
			if over < bestOverlap || (over == bestOverlap && area < bestArea) {
				bestOrd, bestSplit, bestOverlap, bestArea = ord, split, over, area
			}
		}
	}

	right := t.newNode(t.leaf[n])
	for i, ei := range bestOrd {
		if i < bestSplit {
			t.setEnt(n, int32(i), ents[ei].r, ents[ei].ref)
		} else {
			t.appendEnt(right, ents[ei].r, ents[ei].ref)
		}
	}
	t.count[n] = int32(bestSplit)
	return right
}

// Search appends to dst the IDs of all items whose rectangles intersect q
// and returns the extended slice.
func (t *RStar) Search(q geo.Rect, dst []int) []int {
	if t.size == 0 {
		return dst
	}
	stack := []int32{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		base := int(n) * t.stride
		for i := 0; i < int(t.count[n]); i++ {
			s := base + i
			if t.minX[s] > q.Max.X || t.maxX[s] < q.Min.X || t.minY[s] > q.Max.Y || t.maxY[s] < q.Min.Y {
				continue
			}
			if t.leaf[n] {
				dst = append(dst, int(t.ref[s]))
			} else {
				stack = append(stack, t.ref[s])
			}
		}
	}
	return dst
}

// SearchCircle appends to dst the IDs of all items whose rectangles
// intersect the closed disk of radius rad centered at c, and returns the
// extended slice. Matches Tree.SearchCircle semantics.
func (t *RStar) SearchCircle(c geo.Point, rad float64, dst []int) []int {
	if t.size == 0 {
		return dst
	}
	stack := []int32{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		base := int(n) * t.stride
		for i := 0; i < int(t.count[n]); i++ {
			s := base + i
			r := geo.Rect{Min: geo.Pt(t.minX[s], t.minY[s]), Max: geo.Pt(t.maxX[s], t.maxY[s])}
			if !r.IntersectsCircle(c, rad) {
				continue
			}
			if t.leaf[n] {
				dst = append(dst, int(t.ref[s]))
			} else {
				stack = append(stack, t.ref[s])
			}
		}
	}
	return dst
}

// BulkRStar builds an RStar from items by Sort-Tile-Recursive packing
// directly into the packed arena — the per-round build path of
// BuildCandidates. maxEntries semantics match NewRStar. Note the packing is
// STR (bulk loads don't benefit from R* insertion heuristics); the R*
// machinery applies to subsequent Inserts.
func BulkRStar(items []Item, maxEntries int) *RStar {
	t := NewRStar(maxEntries)
	if len(items) == 0 {
		return t
	}
	m := t.maxEntries
	sorted := make([]Item, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Rect.Center().X < sorted[j].Rect.Center().X
	})
	nLeaves := (len(sorted) + m - 1) / m
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := nSlices * m
	var level []int32
	for s := 0; s < len(sorted); s += sliceSize {
		end := s + sliceSize
		if end > len(sorted) {
			end = len(sorted)
		}
		slice := sorted[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for o := 0; o < len(slice); o += m {
			oe := o + m
			if oe > len(slice) {
				oe = len(slice)
			}
			var n int32
			if len(level) == 0 && s == 0 && oe == len(slice) && s+sliceSize >= len(sorted) {
				n = t.root // everything fits in the root leaf
			} else {
				n = t.newNode(true)
			}
			for _, it := range slice[o:oe] {
				if it.ID < 0 || it.ID > math.MaxInt32 {
					panic(fmt.Sprintf("rtree: RStar item ID %d outside int31", it.ID))
				}
				t.appendEnt(n, it.Rect, int32(it.ID))
			}
			level = append(level, n)
		}
	}
	height := 1
	for len(level) > 1 {
		level = t.packLevel(level)
		height++
	}
	t.root = level[0]
	t.height = height
	t.size = len(items)
	return t
}

// packLevel groups child nodes into parents, STR style, in the packed
// arena.
func (t *RStar) packLevel(children []int32) []int32 {
	m := t.maxEntries
	boxes := make([]geo.Rect, len(children))
	for i, c := range children {
		boxes[i] = t.nodeBBox(c)
	}
	ord := make([]int, len(children))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(i, j int) bool {
		return boxes[ord[i]].Center().X < boxes[ord[j]].Center().X
	})
	nParents := (len(children) + m - 1) / m
	nSlices := int(math.Ceil(math.Sqrt(float64(nParents))))
	sliceSize := nSlices * m
	var parents []int32
	for s := 0; s < len(ord); s += sliceSize {
		end := s + sliceSize
		if end > len(ord) {
			end = len(ord)
		}
		slice := ord[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return boxes[slice[i]].Center().Y < boxes[slice[j]].Center().Y
		})
		for o := 0; o < len(slice); o += m {
			oe := o + m
			if oe > len(slice) {
				oe = len(slice)
			}
			parent := t.newNode(false)
			for _, ci := range slice[o:oe] {
				t.appendEnt(parent, boxes[ci], children[ci])
			}
			parents = append(parents, parent)
		}
	}
	return parents
}

// checkInvariants validates structural invariants; used by tests.
func (t *RStar) checkInvariants() error {
	count, err := t.checkNode(t.root, t.height, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: RStar size %d but %d reachable entries", t.size, count)
	}
	return nil
}

func (t *RStar) checkNode(n int32, depth int, isRoot bool) (int, error) {
	c := int(t.count[n])
	if c > t.maxEntries {
		return 0, fmt.Errorf("rtree: RStar node %d has %d entries > max %d", n, c, t.maxEntries)
	}
	if t.leaf[n] {
		if depth != 1 {
			return 0, fmt.Errorf("rtree: RStar leaf %d at depth %d", n, depth)
		}
		return c, nil
	}
	if c == 0 {
		return 0, fmt.Errorf("rtree: RStar internal node %d empty", n)
	}
	total := 0
	for i := int32(0); i < t.count[n]; i++ {
		child := t.ref[t.slot(n, i)]
		if !t.entRect(n, i).ContainsRect(t.nodeBBox(child)) {
			return 0, fmt.Errorf("rtree: RStar child %d bbox escapes parent entry", child)
		}
		sub, err := t.checkNode(child, depth-1, false)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}

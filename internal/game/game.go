// Package game provides a generic best-response dynamics engine for exact
// potential games (Monderer & Shapley 1996), the machinery behind the
// paper's game theoretic approach (§V). The CA-SC strategic game — workers
// as players, valid tasks as strategies, ΔQ as utility — is an exact
// potential game with the overall cooperation quality Q(T) as its potential
// function (Theorem V.1), so best-response dynamics converge to a pure Nash
// equilibrium. The engine also implements the paper's two optimizations:
//
//   - TSI (threshold stop of the iteration): stop once a full round improves
//     the potential by less than ε times its current value (§V-D).
//   - LUB (lazy updating of best responses): recompute a player's best
//     response only when a move may have changed it; which players are
//     affected by a move is reported by the Game implementation following
//     Theorems V.3 and V.4 (§V-D).
package game

import (
	"context"
	"math"
	"sort"
)

// Game is a strategic game exposed to the best-response engine. Player and
// strategy identifiers are small dense integers owned by the implementation.
type Game interface {
	// NumPlayers returns the number of players.
	NumPlayers() int
	// BestResponse returns player p's best strategy against the other
	// players' current strategies, together with the utility gain over p's
	// current strategy. improving is false when no strictly better strategy
	// exists (gain is then 0).
	BestResponse(p int) (strategy int, gain float64, improving bool)
	// Apply switches player p to the given strategy. It returns the players
	// whose best responses may have changed as a consequence (used by LUB).
	// Returning a nil slice means "unknown": the engine marks every player.
	Apply(p, strategy int) (affected []int)
	// Potential returns the current value of the exact potential function.
	Potential() float64
}

// StopReason records why the dynamics ended.
type StopReason string

const (
	// StopNash means a full verification pass found no improving move: the
	// joint strategy is a pure Nash equilibrium.
	StopNash StopReason = "nash"
	// StopThreshold means the TSI rule fired.
	StopThreshold StopReason = "threshold"
	// StopMaxRounds means the round cap was hit.
	StopMaxRounds StopReason = "max-rounds"
	// StopContext means the context was cancelled.
	StopContext StopReason = "context"
)

// Options configure the dynamics.
type Options struct {
	// Epsilon is the TSI threshold: stop when a round's potential gain is
	// below Epsilon times the current potential. Zero disables TSI and runs
	// to a Nash equilibrium.
	Epsilon float64
	// Lazy enables LUB: only players marked dirty by Apply are revisited.
	// When the dirty set drains, one full verification pass certifies the
	// Nash property (so correctness never depends on the affected sets being
	// complete — they only speed things up).
	Lazy bool
	// MaxRounds caps the number of rounds; 0 means the engine's default
	// (10 × players + 100), a safety net far above the convergence bound of
	// Lemma V.1 for the paper's workloads.
	MaxRounds int
	// MinGain is the numeric floor below which a utility improvement is
	// treated as noise; defaults to 1e-12. It prevents float round-off from
	// cycling the dynamics forever.
	MinGain float64
	// Context, when non-nil, allows cancelling long runs.
	Context context.Context
	// OnRound, when non-nil, is invoked after every round with the round
	// number (1-based), the potential value, and the round's gain. It
	// exposes the anytime profile of the dynamics (§V-D: GT "can be
	// interrupted at anytime and a valid solution can still be returned").
	OnRound func(round int, potential, gain float64)
	// GainPriority processes players in descending order of their last
	// observed improvement instead of index order: players who recently had
	// profitable deviations are likely to have them again, so front-loading
	// them accelerates the potential climb per best-response call. An
	// engine-level scheduling ablation; it never changes what converges,
	// only how fast (see BenchmarkAblationGainPriority).
	GainPriority bool
	// Scratch, when non-nil, supplies reusable per-run buffers so a
	// steady-state Run allocates nothing. The buffers are resized to the
	// player count and fully re-initialized, so reuse never changes the
	// dynamics — it only recycles memory. Not safe for concurrent Runs.
	Scratch *Scratch
}

// Scratch holds the engine's per-run working memory for reuse across Runs
// (see Options.Scratch). The zero value is ready to use.
type Scratch struct {
	dirty    []bool
	lastGain []float64
	queue    []int
	cur      []int
}

// prepare resizes the buffers for n players, reusing capacity.
func (s *Scratch) prepare(n int) ([]bool, []float64, []int, []int) {
	if cap(s.dirty) < n {
		s.dirty = make([]bool, n)
		s.lastGain = make([]float64, n)
		s.queue = make([]int, 0, n)
		s.cur = make([]int, 0, n)
	}
	s.dirty = s.dirty[:n]
	s.lastGain = s.lastGain[:n]
	for i := range s.dirty {
		s.dirty[i] = false
		s.lastGain[i] = 0
	}
	return s.dirty, s.lastGain, s.queue[:0], s.cur[:0]
}

// Result reports what the dynamics did.
type Result struct {
	Rounds         int
	Moves          int
	Reason         StopReason
	FinalPotential float64
	// BestResponseCalls counts utility maximizations performed; LUB's
	// savings show up here.
	BestResponseCalls int
}

// Run executes best-response dynamics on g until a pure Nash equilibrium,
// the TSI threshold, the round cap, or context cancellation.
func Run(g Game, opts Options) Result {
	n := g.NumPlayers()
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 10*n + 100
	}
	minGain := opts.MinGain
	if minGain <= 0 {
		minGain = 1e-12
	}
	ctx := opts.Context

	var (
		dirty    []bool
		lastGain []float64
		queue    []int
		cur      []int
	)
	if opts.Scratch != nil {
		dirty, lastGain, queue, cur = opts.Scratch.prepare(n)
	} else {
		dirty = make([]bool, n)
		lastGain = make([]float64, n)
		queue = make([]int, 0, n)
	}
	markAll := func() {
		queue = queue[:0]
		for p := 0; p < n; p++ {
			dirty[p] = true
			queue = append(queue, p)
		}
	}
	mark := func(p int) {
		if !dirty[p] {
			dirty[p] = true
			queue = append(queue, p)
		}
	}
	markAll()

	res := Result{}
	for res.Rounds < maxRounds {
		if ctx != nil && ctx.Err() != nil {
			res.Reason = StopContext
			break
		}
		res.Rounds++
		roundGain := 0.0
		roundMoves := 0
		// Process the current queue snapshot as one "round". New marks made
		// during the round land in the next round's queue. The swap keeps
		// both buffers' storage alive so a scratch-backed run never
		// reallocates: each appears at most n long (mark is dirty-guarded).
		cur = cur[:0]
		cur = append(cur, queue...)
		queue = queue[:0]
		if opts.GainPriority {
			sort.SliceStable(cur, func(a, b int) bool { return lastGain[cur[a]] > lastGain[cur[b]] })
		}
		for _, p := range cur {
			dirty[p] = false
		}
		for _, p := range cur {
			if ctx != nil && ctx.Err() != nil {
				break
			}
			s, gain, improving := g.BestResponse(p)
			res.BestResponseCalls++
			if !improving || gain <= minGain {
				lastGain[p] = 0
				continue
			}
			lastGain[p] = gain
			affected := g.Apply(p, s)
			res.Moves++
			roundMoves++
			roundGain += gain
			if opts.Lazy {
				if affected == nil {
					markAll()
				} else {
					for _, a := range affected {
						mark(a)
					}
				}
			}
		}
		if ctx != nil && ctx.Err() != nil {
			res.Reason = StopContext
			break
		}
		if opts.OnRound != nil {
			opts.OnRound(res.Rounds, g.Potential(), roundGain)
		}
		if !opts.Lazy {
			// Plain GT revisits every player each round.
			if roundMoves == 0 {
				res.Reason = StopNash
				break
			}
			markAll()
		} else if len(queue) == 0 {
			if roundMoves == 0 {
				// Dirty set drained and the last pass moved nobody; verify
				// the Nash property with one full pass.
				if p, ok := findImproving(g, minGain, &res); ok {
					mark(p)
					continue
				}
				res.Reason = StopNash
				break
			}
			// Moves happened but produced no new dirty marks (affected sets
			// may be empty); verify before declaring convergence.
			if p, ok := findImproving(g, minGain, &res); ok {
				mark(p)
				continue
			}
			res.Reason = StopNash
			break
		}
		if opts.Epsilon > 0 && roundGain < opts.Epsilon*math.Max(g.Potential(), minGain) {
			res.Reason = StopThreshold
			break
		}
	}
	if res.Reason == "" {
		res.Reason = StopMaxRounds
	}
	res.FinalPotential = g.Potential()
	return res
}

func findImproving(g Game, minGain float64, res *Result) (int, bool) {
	for p := 0; p < g.NumPlayers(); p++ {
		_, gain, improving := g.BestResponse(p)
		res.BestResponseCalls++
		if improving && gain > minGain {
			return p, true
		}
	}
	return 0, false
}

// IsNash reports whether no player has a strictly improving deviation of
// more than minGain. It is a verification helper for tests and callers.
func IsNash(g Game, minGain float64) bool {
	if minGain <= 0 {
		minGain = 1e-12
	}
	for p := 0; p < g.NumPlayers(); p++ {
		if _, gain, improving := g.BestResponse(p); improving && gain > minGain {
			return false
		}
	}
	return true
}

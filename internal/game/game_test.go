package game

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// congestion is Rosenthal's classic congestion game: each of n players picks
// one of k resources; a player's cost is the load of its resource, so its
// utility is -load. The exact potential is -Σ_r load_r(load_r+1)/2.
// Best-response dynamics provably converge. The "affected" set of a move is
// every player on the two touched resources — a faithful analogue of the
// paper's Theorems V.3/V.4 marking.
type congestion struct {
	choice []int
	load   []int
}

func newCongestion(r *rand.Rand, players, resources int) *congestion {
	g := &congestion{choice: make([]int, players), load: make([]int, resources)}
	for p := range g.choice {
		c := r.Intn(resources)
		g.choice[p] = c
		g.load[c]++
	}
	return g
}

func (g *congestion) NumPlayers() int { return len(g.choice) }

func (g *congestion) utility(p, s int) float64 {
	l := g.load[s]
	if g.choice[p] != s {
		l++ // joining adds itself
	}
	return -float64(l)
}

func (g *congestion) BestResponse(p int) (int, float64, bool) {
	cur := g.utility(p, g.choice[p])
	best, bestU := g.choice[p], cur
	for s := range g.load {
		if u := g.utility(p, s); u > bestU {
			best, bestU = s, u
		}
	}
	return best, bestU - cur, best != g.choice[p]
}

func (g *congestion) Apply(p, s int) []int {
	old := g.choice[p]
	g.load[old]--
	g.load[s]++
	g.choice[p] = s
	var affected []int
	for q, c := range g.choice {
		if c == old || c == s {
			affected = append(affected, q)
		}
	}
	return affected
}

func (g *congestion) Potential() float64 {
	var f float64
	for _, l := range g.load {
		f -= float64(l*(l+1)) / 2
	}
	return f
}

func TestRunConvergesToNash(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := newCongestion(r, 30, 5)
		res := Run(g, Options{})
		if res.Reason != StopNash {
			t.Fatalf("trial %d: reason %s", trial, res.Reason)
		}
		if !IsNash(g, 0) {
			t.Fatalf("trial %d: result is not a Nash equilibrium", trial)
		}
		// A Nash equilibrium of this game balances loads within 1.
		minL, maxL := math.MaxInt, 0
		for _, l := range g.load {
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
		}
		if maxL-minL > 1 {
			t.Fatalf("trial %d: unbalanced equilibrium loads %v", trial, g.load)
		}
	}
}

func TestPotentialMonotone(t *testing.T) {
	// Wrap the game to observe the potential after every move.
	r := rand.New(rand.NewSource(2))
	g := newCongestion(r, 40, 6)
	mon := &monotoneCheck{congestion: g, last: g.Potential(), t: t}
	Run(mon, Options{})
}

type monotoneCheck struct {
	*congestion
	last float64
	t    *testing.T
}

func (m *monotoneCheck) Apply(p, s int) []int {
	out := m.congestion.Apply(p, s)
	cur := m.congestion.Potential()
	if cur < m.last-1e-9 {
		m.t.Fatalf("potential decreased: %v -> %v", m.last, cur)
	}
	m.last = cur
	return out
}

func TestLazyMatchesEager(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		seed := r.Int63()
		eager := newCongestion(rand.New(rand.NewSource(seed)), 50, 7)
		lazy := newCongestion(rand.New(rand.NewSource(seed)), 50, 7)
		re := Run(eager, Options{})
		rl := Run(lazy, Options{Lazy: true})
		if re.Reason != StopNash || rl.Reason != StopNash {
			t.Fatalf("trial %d: reasons %s/%s", trial, re.Reason, rl.Reason)
		}
		// Both must reach Nash equilibria (possibly different ones) with
		// identical potential here, since all equilibria of a balanced
		// congestion game share the load profile.
		if math.Abs(re.FinalPotential-rl.FinalPotential) > 1e-9 {
			t.Fatalf("trial %d: potentials differ: %v vs %v", trial, re.FinalPotential, rl.FinalPotential)
		}
		if !IsNash(lazy, 0) {
			t.Fatalf("trial %d: lazy result not Nash", trial)
		}
	}
}

func TestLazyVerifiesWithIncompleteAffectedSets(t *testing.T) {
	// A game that lies about affected players (always returns empty) must
	// still end at a true Nash thanks to the verification pass.
	r := rand.New(rand.NewSource(4))
	g := &liar{congestion: newCongestion(r, 30, 4)}
	res := Run(g, Options{Lazy: true})
	if res.Reason != StopNash {
		t.Fatalf("reason %s", res.Reason)
	}
	if !IsNash(g, 0) {
		t.Fatal("liar game did not reach Nash")
	}
}

type liar struct{ *congestion }

func (l *liar) Apply(p, s int) []int {
	l.congestion.Apply(p, s)
	return []int{} // empty but non-nil: claims nobody affected
}

func TestNilAffectedMarksAll(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := &nilAffected{congestion: newCongestion(r, 20, 4)}
	res := Run(g, Options{Lazy: true})
	if res.Reason != StopNash || !IsNash(g, 0) {
		t.Fatalf("reason %s", res.Reason)
	}
}

type nilAffected struct{ *congestion }

func (n *nilAffected) Apply(p, s int) []int {
	n.congestion.Apply(p, s)
	return nil
}

func TestMaxRounds(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	g := newCongestion(r, 200, 2)
	res := Run(g, Options{MaxRounds: 1})
	if res.Reason != StopMaxRounds {
		t.Fatalf("reason %s, want max-rounds", res.Reason)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds %d", res.Rounds)
	}
}

func TestContextCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := newCongestion(r, 50, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Run(g, Options{Context: ctx})
	if res.Reason != StopContext {
		t.Fatalf("reason %s, want context", res.Reason)
	}
	if res.Moves != 0 {
		t.Fatalf("moves %d after pre-cancelled context", res.Moves)
	}
}

func TestThresholdStop(t *testing.T) {
	// With a huge epsilon the dynamics stop after the first round even
	// though improvements remain.
	r := rand.New(rand.NewSource(8))
	g := newCongestion(r, 100, 3)
	res := Run(g, Options{Epsilon: 1e9})
	if res.Reason != StopThreshold && res.Reason != StopNash {
		t.Fatalf("reason %s", res.Reason)
	}
	if res.Reason == StopThreshold && res.Rounds != 1 {
		t.Fatalf("rounds %d, want 1", res.Rounds)
	}
}

// chain is a coordination game whose best-response dynamics take Θ(n)
// rounds: player p (p < n−1) wants to copy player p+1, the last player
// wants strategy 1, and everyone starts at 0. Each round exactly one new
// player can improve, so eager dynamics burn n calls per round while lazy
// dynamics only revisit the single affected neighbour — the situation LUB
// (§V-D) is designed for.
type chain struct {
	choice []int
}

func (c *chain) NumPlayers() int { return len(c.choice) }

func (c *chain) utility(p, s int) float64 {
	if p == len(c.choice)-1 {
		return float64(s)
	}
	if s == c.choice[p+1] {
		return 1
	}
	return 0
}

func (c *chain) BestResponse(p int) (int, float64, bool) {
	cur := c.utility(p, c.choice[p])
	best, bestU := c.choice[p], cur
	for s := 0; s <= 1; s++ {
		if u := c.utility(p, s); u > bestU {
			best, bestU = s, u
		}
	}
	return best, bestU - cur, best != c.choice[p]
}

func (c *chain) Apply(p, s int) []int {
	c.choice[p] = s
	if p > 0 {
		return []int{p - 1}
	}
	return []int{}
}

func (c *chain) Potential() float64 {
	var f float64
	for p := range c.choice {
		f += c.utility(p, c.choice[p])
	}
	return f
}

func TestLUBReducesBestResponseCalls(t *testing.T) {
	const n = 200
	eager := &chain{choice: make([]int, n)}
	lazy := &chain{choice: make([]int, n)}
	re := Run(eager, Options{MaxRounds: 10 * n})
	rl := Run(lazy, Options{Lazy: true, MaxRounds: 10 * n})
	if re.Reason != StopNash || rl.Reason != StopNash {
		t.Fatalf("reasons %s/%s", re.Reason, rl.Reason)
	}
	for p := 0; p < n; p++ {
		if eager.choice[p] != 1 || lazy.choice[p] != 1 {
			t.Fatalf("player %d did not converge to 1", p)
		}
	}
	if rl.BestResponseCalls*10 > re.BestResponseCalls {
		t.Errorf("LUB used %d best-response calls, eager %d — expected >10x savings",
			rl.BestResponseCalls, re.BestResponseCalls)
	}
}

func TestIsNashDetectsDeviation(t *testing.T) {
	g := &congestion{choice: []int{0, 0, 0}, load: []int{3, 0}}
	if IsNash(g, 0) {
		t.Error("everyone on one resource with an empty one is not Nash")
	}
	g2 := &congestion{choice: []int{0, 1}, load: []int{1, 1}}
	if !IsNash(g2, 0) {
		t.Error("balanced profile should be Nash")
	}
}

func TestGainPriorityConvergesIdentically(t *testing.T) {
	// Priority scheduling changes the order, not the destination: both
	// variants must reach Nash equilibria of equal potential on the
	// balanced congestion game.
	for seed := int64(0); seed < 10; seed++ {
		plain := newCongestion(rand.New(rand.NewSource(seed)), 40, 6)
		prio := newCongestion(rand.New(rand.NewSource(seed)), 40, 6)
		rp := Run(plain, Options{})
		rq := Run(prio, Options{GainPriority: true})
		if rp.Reason != StopNash || rq.Reason != StopNash {
			t.Fatalf("seed %d: reasons %s/%s", seed, rp.Reason, rq.Reason)
		}
		if !IsNash(prio, 0) {
			t.Fatalf("seed %d: priority run not Nash", seed)
		}
		if math.Abs(rp.FinalPotential-rq.FinalPotential) > 1e-9 {
			t.Fatalf("seed %d: potentials differ %v vs %v", seed, rp.FinalPotential, rq.FinalPotential)
		}
	}
}

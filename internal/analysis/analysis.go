// Package analysis implements casc-lint, a from-scratch static-analysis
// suite (go/parser + go/types only, no golang.org/x/tools) that enforces
// the determinism, cancellation and observability invariants the CA-SC
// solver stack depends on. Component-parallel solving reproduces the
// paper's scores only because every solver path is deterministic under a
// seed; the rules here turn that property — and the cancellation and
// metrics contracts around it — into machine-checked invariants instead
// of conventions guarded by flaky seed-equality tests. See DESIGN.md §9.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by file position. File is the path
// as the loader saw it (absolute); drivers relativize for display.
type Diagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Column, d.Rule, d.Message)
}

// Rule is one analyzer of the suite.
type Rule struct {
	Name string
	Doc  string
	// Scope lists import-path suffixes the rule is restricted to; empty
	// means every package. Options.IgnoreScope bypasses it (used by the
	// golden tests, whose fixtures live under testdata paths).
	Scope []string
	// Check inspects one package and reports findings.
	Check func(p *Package, r *Reporter)
	// Finish, if set, runs once after every package has been checked —
	// for cross-package invariants like metric-name uniqueness.
	Finish func(report func(pos token.Position, format string, args ...any))
}

func (rule *Rule) applies(path string) bool {
	if len(rule.Scope) == 0 {
		return true
	}
	for _, s := range rule.Scope {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// AllRules returns a fresh instance of every rule in the suite. Fresh
// because rules may carry cross-package state (metricname); sharing
// instances between runs would leak findings.
func AllRules() []*Rule {
	return []*Rule{
		newMapOrder(),
		newSeededRand(),
		newCtxLoop(),
		newMetricName(),
		newDroppedErr(),
		newHotAlloc(),
		newArenaEscape(),
		newLockBalance(),
		newCtxProp(),
		newFloatDet(),
	}
}

// RuleNames lists the suite's rule names in presentation order.
func RuleNames() []string {
	var names []string
	for _, r := range AllRules() {
		names = append(names, r.Name)
	}
	return names
}

// Reporter collects diagnostics for one (package, rule) pair.
type Reporter struct {
	pkg  *Package
	rule string
	out  *[]Diagnostic
}

// Report records a finding at the node's position.
func (r *Reporter) Report(n ast.Node, format string, args ...any) {
	r.ReportPos(n.Pos(), format, args...)
}

// ReportPos records a finding at an explicit position.
func (r *Reporter) ReportPos(pos token.Pos, format string, args ...any) {
	p := r.pkg.Fset.Position(pos)
	*r.out = append(*r.out, Diagnostic{
		Rule:    r.rule,
		File:    p.Filename,
		Line:    p.Line,
		Column:  p.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Options configures Run.
type Options struct {
	// Rules is the rule subset to run; nil runs AllRules().
	Rules []*Rule
	// IgnoreScope runs every rule on every package regardless of Scope.
	IgnoreScope bool
}

// SuppressRule is the pseudo-rule under which malformed
// //casclint:ignore comments are reported. It cannot itself be
// suppressed.
const SuppressRule = "casclint"

// Run executes the rules over the packages, applies inline suppressions,
// and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, opts Options) []Diagnostic {
	rules := opts.Rules
	if rules == nil {
		rules = AllRules()
	}
	var diags []Diagnostic
	ran := make(map[*Package]map[string]bool)
	for _, rule := range rules {
		for _, p := range pkgs {
			if !opts.IgnoreScope && !rule.applies(p.Path) {
				continue
			}
			if ran[p] == nil {
				ran[p] = make(map[string]bool)
			}
			ran[p][rule.Name] = true
			rule.Check(p, &Reporter{pkg: p, rule: rule.Name, out: &diags})
		}
		if rule.Finish != nil {
			name := rule.Name
			rule.Finish(func(pos token.Position, format string, args ...any) {
				diags = append(diags, Diagnostic{
					Rule:    name,
					File:    pos.Filename,
					Line:    pos.Line,
					Column:  pos.Column,
					Message: fmt.Sprintf(format, args...),
				})
			})
		}
	}
	diags = applySuppressions(pkgs, diags, ran)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return diags
}

// suppressionRE matches //casclint:ignore <rule>[,<rule>...] <reason>.
// The reason is mandatory: a suppression without a recorded justification
// is itself a finding.
var suppressionRE = regexp.MustCompile(`^//casclint:ignore(?:\s+(\S+))?\s*(.*)$`)

type suppressKey struct {
	file string
	line int
	rule string
}

// suppRec is one (comment, rule) suppression instance, tracked so that a
// suppression whose rule never fires on its lines is itself reported —
// stale suppressions otherwise rot into silent blind spots.
type suppRec struct {
	file   string
	line   int // comment line
	column int
	rule   string
	live   bool // the rule actually ran on this package this run
	used   bool
}

// applySuppressions drops diagnostics covered by a well-formed
// //casclint:ignore comment on the same line or the line directly above,
// and reports under SuppressRule: malformed suppression comments,
// suppressions naming rules the suite does not have, and unused
// suppressions (the named rule ran on the package but fired nothing on the
// covered lines). ran maps each package to the rules that checked it; a
// suppression for a rule that did not run is left alone, not declared
// unused.
func applySuppressions(pkgs []*Package, diags []Diagnostic, ran map[*Package]map[string]bool) []Diagnostic {
	known := make(map[string]bool)
	for _, r := range AllRules() {
		known[r.Name] = true
	}
	var recs []*suppRec
	cover := make(map[suppressKey][]*suppRec)
	var extra []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := suppressionRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					rules, reason := m[1], strings.TrimSpace(m[2])
					if rules == "" || reason == "" {
						extra = append(extra, Diagnostic{
							Rule: SuppressRule, File: pos.Filename,
							Line: pos.Line, Column: pos.Column,
							Message: "malformed suppression: want //casclint:ignore <rule>[,<rule>] <reason>",
						})
						continue
					}
					for _, rule := range strings.Split(rules, ",") {
						if !known[rule] {
							extra = append(extra, Diagnostic{
								Rule: SuppressRule, File: pos.Filename,
								Line: pos.Line, Column: pos.Column,
								Message: fmt.Sprintf("suppression names unknown rule %q", rule),
							})
							continue
						}
						rec := &suppRec{
							file: pos.Filename, line: pos.Line, column: pos.Column,
							rule: rule, live: ran[p][rule],
						}
						recs = append(recs, rec)
						// A suppression covers its own line (trailing
						// comment) and the line below (own-line comment).
						cover[suppressKey{pos.Filename, pos.Line, rule}] = append(cover[suppressKey{pos.Filename, pos.Line, rule}], rec)
						cover[suppressKey{pos.Filename, pos.Line + 1, rule}] = append(cover[suppressKey{pos.Filename, pos.Line + 1, rule}], rec)
					}
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Rule != SuppressRule {
			if rs := cover[suppressKey{d.File, d.Line, d.Rule}]; len(rs) > 0 {
				for _, r := range rs {
					r.used = true
				}
				continue
			}
		}
		kept = append(kept, d)
	}
	for _, r := range recs {
		if r.live && !r.used {
			extra = append(extra, Diagnostic{
				Rule: SuppressRule, File: r.file, Line: r.line, Column: r.column,
				Message: fmt.Sprintf("unused suppression: %s does not fire here; remove it", r.rule),
			})
		}
	}
	return append(kept, extra...)
}

// Report is the JSON document casc-lint -json emits.
type Report struct {
	Version     int          `json:"version"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// WriteJSON renders diagnostics as the stable -json schema. A nil slice
// still marshals as an empty array so consumers can index unconditionally.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Version: 1, Diagnostics: diags})
}

// Package analysis implements casc-lint, a from-scratch static-analysis
// suite (go/parser + go/types only, no golang.org/x/tools) that enforces
// the determinism, cancellation and observability invariants the CA-SC
// solver stack depends on. Component-parallel solving reproduces the
// paper's scores only because every solver path is deterministic under a
// seed; the rules here turn that property — and the cancellation and
// metrics contracts around it — into machine-checked invariants instead
// of conventions guarded by flaky seed-equality tests. See DESIGN.md §9.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by file position. File is the path
// as the loader saw it (absolute); drivers relativize for display.
type Diagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Column, d.Rule, d.Message)
}

// Rule is one analyzer of the suite.
type Rule struct {
	Name string
	Doc  string
	// Scope lists import-path suffixes the rule is restricted to; empty
	// means every package. Options.IgnoreScope bypasses it (used by the
	// golden tests, whose fixtures live under testdata paths).
	Scope []string
	// Check inspects one package and reports findings.
	Check func(p *Package, r *Reporter)
	// Finish, if set, runs once after every package has been checked —
	// for cross-package invariants like metric-name uniqueness.
	Finish func(report func(pos token.Position, format string, args ...any))
}

func (rule *Rule) applies(path string) bool {
	if len(rule.Scope) == 0 {
		return true
	}
	for _, s := range rule.Scope {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// AllRules returns a fresh instance of every rule in the suite. Fresh
// because rules may carry cross-package state (metricname); sharing
// instances between runs would leak findings.
func AllRules() []*Rule {
	return []*Rule{
		newMapOrder(),
		newSeededRand(),
		newCtxLoop(),
		newMetricName(),
		newDroppedErr(),
		newHotAlloc(),
	}
}

// RuleNames lists the suite's rule names in presentation order.
func RuleNames() []string {
	var names []string
	for _, r := range AllRules() {
		names = append(names, r.Name)
	}
	return names
}

// Reporter collects diagnostics for one (package, rule) pair.
type Reporter struct {
	pkg  *Package
	rule string
	out  *[]Diagnostic
}

// Report records a finding at the node's position.
func (r *Reporter) Report(n ast.Node, format string, args ...any) {
	r.ReportPos(n.Pos(), format, args...)
}

// ReportPos records a finding at an explicit position.
func (r *Reporter) ReportPos(pos token.Pos, format string, args ...any) {
	p := r.pkg.Fset.Position(pos)
	*r.out = append(*r.out, Diagnostic{
		Rule:    r.rule,
		File:    p.Filename,
		Line:    p.Line,
		Column:  p.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Options configures Run.
type Options struct {
	// Rules is the rule subset to run; nil runs AllRules().
	Rules []*Rule
	// IgnoreScope runs every rule on every package regardless of Scope.
	IgnoreScope bool
}

// SuppressRule is the pseudo-rule under which malformed
// //casclint:ignore comments are reported. It cannot itself be
// suppressed.
const SuppressRule = "casclint"

// Run executes the rules over the packages, applies inline suppressions,
// and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, opts Options) []Diagnostic {
	rules := opts.Rules
	if rules == nil {
		rules = AllRules()
	}
	var diags []Diagnostic
	for _, rule := range rules {
		for _, p := range pkgs {
			if !opts.IgnoreScope && !rule.applies(p.Path) {
				continue
			}
			rule.Check(p, &Reporter{pkg: p, rule: rule.Name, out: &diags})
		}
		if rule.Finish != nil {
			name := rule.Name
			rule.Finish(func(pos token.Position, format string, args ...any) {
				diags = append(diags, Diagnostic{
					Rule:    name,
					File:    pos.Filename,
					Line:    pos.Line,
					Column:  pos.Column,
					Message: fmt.Sprintf(format, args...),
				})
			})
		}
	}
	diags = applySuppressions(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return diags
}

// suppressionRE matches //casclint:ignore <rule> <reason>. The reason is
// mandatory: a suppression without a recorded justification is itself a
// finding.
var suppressionRE = regexp.MustCompile(`^//casclint:ignore(?:\s+(\S+))?\s*(.*)$`)

type suppressKey struct {
	file string
	line int
	rule string
}

// applySuppressions drops diagnostics covered by a well-formed
// //casclint:ignore comment on the same line or the line directly above,
// and reports malformed suppression comments under SuppressRule.
func applySuppressions(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	index := make(map[suppressKey]bool)
	var extra []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := suppressionRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					rule, reason := m[1], strings.TrimSpace(m[2])
					if rule == "" || reason == "" {
						extra = append(extra, Diagnostic{
							Rule: SuppressRule, File: pos.Filename,
							Line: pos.Line, Column: pos.Column,
							Message: "malformed suppression: want //casclint:ignore <rule> <reason>",
						})
						continue
					}
					// A suppression covers its own line (trailing comment)
					// and the line below (own-line comment).
					index[suppressKey{pos.Filename, pos.Line, rule}] = true
					index[suppressKey{pos.Filename, pos.Line + 1, rule}] = true
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Rule != SuppressRule && index[suppressKey{d.File, d.Line, d.Rule}] {
			continue
		}
		kept = append(kept, d)
	}
	return append(kept, extra...)
}

// Report is the JSON document casc-lint -json emits.
type Report struct {
	Version     int          `json:"version"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// WriteJSON renders diagnostics as the stable -json schema. A nil slice
// still marshals as an empty array so consumers can index unconditionally.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Version: 1, Diagnostics: diags})
}

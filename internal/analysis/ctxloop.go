package analysis

import (
	"go/ast"
	"go/types"
)

// newCtxLoop builds the ctxloop rule: every exported Solve entry point
// must accept a context.Context, and each of its outermost heavy loops —
// the candidate/augmenting loops that dominate solver runtime — must
// observe that context somewhere inside (a ctx.Err()/ctx.Done() poll, or
// passing ctx into the calls it makes). A loop is "heavy" when it calls a
// function or contains a nested loop; plain index arithmetic is exempt.
func newCtxLoop() *Rule {
	return &Rule{
		Name: "ctxloop",
		Doc: "exported Solve must take a context.Context and its heavy " +
			"loops must observe ctx cancellation",
		// internal/resilience is in scope so ladder rungs and the chaos
		// decorator can never ignore cancellation in their Solve paths;
		// internal/shard so cluster-tier Solve paths stay cancellable;
		// internal/incremental so the engine's per-component Solve loop
		// stays reactive under a round budget; internal/scenario so the
		// counterfactual tracer's per-alternate Solve loop can be aborted
		// mid-round.
		Scope: []string{"internal/assign", "internal/resilience", "internal/shard", "internal/incremental", "internal/scenario"},
		Check: checkCtxLoop,
	}
}

func checkCtxLoop(p *Package, rep *Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || fd.Name.Name != "Solve" {
				continue
			}
			ctxObj := contextParam(p, fd)
			if ctxObj == nil {
				rep.Report(fd.Name, "exported Solve must accept a context.Context")
				continue
			}
			checkLoops(p, rep, fd.Body.List, ctxObj)
		}
	}
}

// contextParam returns the object of the first parameter whose type is
// context.Context.
func contextParam(p *Package, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		t := p.Info.TypeOf(field.Type)
		if t == nil || t.String() != "context.Context" {
			continue
		}
		for _, name := range field.Names {
			if o := p.Info.Defs[name]; o != nil {
				return o
			}
		}
	}
	return nil
}

// checkLoops walks statements flagging outermost heavy loops that never
// mention ctx. A compliant loop is not descended into: its interior is
// reactive to cancellation through the observed check.
func checkLoops(p *Package, rep *Reporter, stmts []ast.Stmt, ctx types.Object) {
	for _, st := range stmts {
		ast.Inspect(st, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				if mentionsObj(p, n, ctx) {
					return false // covered; nested loops cancel with it
				}
				if loopIsHeavy(p, n) {
					rep.Report(n, "loop does not observe ctx; poll ctx.Err() or pass ctx into the body")
				}
				return false
			}
			return true
		})
	}
}

// loopIsHeavy reports whether the loop performs real work per iteration:
// any non-builtin call (function, method, or func-valued variable) or a
// nested loop.
func loopIsHeavy(p *Package, loop ast.Node) bool {
	heavy := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if heavy {
			return false
		}
		switch c := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n != loop {
				heavy = true
			}
		case *ast.CallExpr:
			if tv, ok := p.Info.Types[c.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
				if _, b := p.Info.Uses[id].(*types.Builtin); b {
					return true
				}
			}
			heavy = true
		}
		return !heavy
	})
	return heavy
}

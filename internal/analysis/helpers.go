package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method a call invokes, or nil for
// builtins, conversions, and calls through function-typed values.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			fn, _ := p.Info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// isBuiltinCall reports whether the call invokes the named builtin.
func isBuiltinCall(p *Package, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.Info.Uses[id].(*types.Builtin)
	return ok
}

// identObj returns the object an identifier defines or uses, or nil.
func identObj(p *Package, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// mentionsObj reports whether any identifier under n resolves to obj.
func mentionsObj(p *Package, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && (p.Info.Uses[id] == obj || p.Info.Defs[id] == obj) {
			found = true
		}
		return !found
	})
	return found
}

// namedRecv returns "pkgpath.TypeName" for the method's receiver type
// (pointers dereferenced), or "" if fn is not a method on a named type.
func namedRecv(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

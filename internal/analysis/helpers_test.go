package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// failingImporter simulates a build where export data is missing: every
// import errors, so go/types produces partial type information and the
// helpers must degrade to nil results instead of panicking.
type failingImporter struct{}

func (failingImporter) Import(path string) (*types.Package, error) {
	return nil, fmt.Errorf("export data missing for %q", path)
}

// typeCheckPartial parses src and type-checks it leniently (errors
// collected, imports unavailable), returning a Package with whatever Info
// the checker could fill in.
func typeCheckPartial(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "h.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: failingImporter{},
		Error:    func(error) {}, // keep checking past the failed import
	}
	pkg, _ := conf.Check("sandbox", fset, []*ast.File{file}, info)
	return &Package{Path: "sandbox", Fset: fset, Files: []*ast.File{file}, Pkg: pkg, Info: info}
}

const helpersSrc = `package sandbox

import "mystery"

type T struct{ n int }

func (t *T) M() int { return t.n }

func generic[E any](e E) E { return e }

func use() {
	var t T
	_ = t.M()
	mystery.Call()
	f := func() {}
	f()
	_ = len("x")
	_ = generic[int](1)
	_ = int32(1)
}
`

// callsOf returns the package's CallExprs in source order.
func callsOf(p *Package) []*ast.CallExpr {
	var calls []*ast.CallExpr
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				calls = append(calls, c)
			}
			return true
		})
	}
	return calls
}

func TestCalleeFuncFallbacks(t *testing.T) {
	p := typeCheckPartial(t, helpersSrc)
	calls := callsOf(p)
	if len(calls) != 6 {
		t.Fatalf("found %d calls, want 6", len(calls))
	}
	wantName := []string{
		"M",       // method via Selections
		"",        // mystery.Call: import failed, no object — nil, no panic
		"",        // call through a function-typed value
		"",        // builtin len
		"generic", // generic instantiation via the IndexExpr path
		"",        // conversion int32(1)
	}
	for i, call := range calls {
		fn := calleeFunc(p, call)
		got := ""
		if fn != nil {
			got = fn.Name()
		}
		if got != wantName[i] {
			t.Errorf("call %d: calleeFunc = %q, want %q", i, got, wantName[i])
		}
	}
	if !isBuiltinCall(p, calls[3], "len") {
		t.Error("len call not recognized as builtin")
	}
	if isBuiltinCall(p, calls[0], "len") {
		t.Error("method call misidentified as builtin len")
	}
}

// funcDeclNamed returns the package's FuncDecl with the given name.
func funcDeclNamed(t *testing.T, p *Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("no function %s", name)
	return nil
}

func TestIdentObjDefsThenUses(t *testing.T) {
	p := typeCheckPartial(t, helpersSrc)
	// Scope to use()'s body: the method receiver also defines a t.
	var defID, useID *ast.Ident
	ast.Inspect(funcDeclNamed(t, p, "use").Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != "t" {
			return true
		}
		if p.Info.Defs[id] != nil && defID == nil {
			defID = id
		} else if p.Info.Uses[id] != nil {
			useID = id
		}
		return true
	})
	if defID == nil || useID == nil {
		t.Fatal("test source must define and use t")
	}
	dObj := identObj(p, defID)
	uObj := identObj(p, useID)
	if dObj == nil || uObj == nil || dObj != uObj {
		t.Errorf("identObj(def)=%v identObj(use)=%v, want the same object", dObj, uObj)
	}
	if o := identObj(p, &ast.BasicLit{Kind: token.INT, Value: "1"}); o != nil {
		t.Errorf("identObj(non-ident) = %v, want nil", o)
	}
}

func TestMentionsObj(t *testing.T) {
	p := typeCheckPartial(t, helpersSrc)
	useFn := funcDeclNamed(t, p, "use")
	var tObj types.Object
	ast.Inspect(useFn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "t" && p.Info.Defs[id] != nil && tObj == nil {
			tObj = p.Info.Defs[id]
		}
		return true
	})
	if tObj == nil {
		t.Fatal("test source must declare t inside use")
	}
	if !mentionsObj(p, useFn.Body, tObj) {
		t.Error("mentionsObj missed a direct use")
	}
	// The generic function never touches t.
	if mentionsObj(p, funcDeclNamed(t, p, "generic").Body, tObj) {
		t.Error("mentionsObj false positive in unrelated function")
	}
}

func TestNamedRecv(t *testing.T) {
	p := typeCheckPartial(t, helpersSrc)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				t.Fatalf("no object for %s", fd.Name.Name)
			}
			got := namedRecv(fn)
			want := ""
			if fd.Name.Name == "M" {
				want = "sandbox.T" // pointer receiver dereferenced
			}
			if got != want {
				t.Errorf("namedRecv(%s) = %q, want %q", fd.Name.Name, got, want)
			}
		}
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// newArenaEscape builds the arenaescape rule, the static half of the PR 8
// arena contract (DESIGN.md §12): memory drawn from a solver scratch Arena
// is valid only until the next solve on that arena, so no arena-derived
// value may outlive its solve. The rule runs a forward taint analysis over
// each function's CFG — sources are Arena field reads and Arena method
// results (and, in functions that wire an arena via SetArena, the results
// of the Solve/SolveWarm/SolveMaybeWarm contract, which arena.go documents
// as arena-owned) — and flags the four escape routes:
//
//   - returned from an exported function (the Solve* solver entry points
//     are exempt: their arena-owned result is the documented contract);
//   - stored into heap state that outlives the frame (fields reached
//     through parameters, receivers, captured variables, or globals —
//     stores back into the arena itself are arena-owned and fine);
//   - sent on a channel;
//   - captured by a goroutine.
//
// Passing a value through an explicit Clone launders the taint. Facts
// propagate one level interprocedurally through per-function summaries:
// "returns arena memory", "returns its i-th parameter", and "stores its
// i-th parameter beyond its frame" (the last is reported at the call
// site). Calls through function values and cross-package callees are not
// summarized — the analysis is deliberately "may", never exhaustive.
func newArenaEscape() *Rule {
	return &Rule{
		Name: "arenaescape",
		Doc: "arena-owned memory must not outlive its solve: no exported " +
			"returns, heap stores, channel sends, or goroutine captures without Clone",
		// Where arenas live: the solver package that owns them and the
		// incremental engine that threads them across components.
		Scope: []string{"internal/assign", "internal/incremental"},
		Check: checkArenaEscape,
	}
}

// escSummary is one function's interprocedural facts.
type escSummary struct {
	returnsArena bool
	returnsParam []bool
	leaksParam   []bool
}

type arenaEscape struct {
	p     *Package
	sums  map[*types.Func]*escSummary
	decls []escDecl
	cfgs  map[*ast.BlockStmt]*Graph
}

type escDecl struct {
	fd *ast.FuncDecl
	fn *types.Func
}

func checkArenaEscape(p *Package, rep *Reporter) {
	ae := &arenaEscape{p: p, sums: map[*types.Func]*escSummary{}, cfgs: map[*ast.BlockStmt]*Graph{}}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ae.decls = append(ae.decls, escDecl{fd: fd, fn: fn})
			ae.sums[fn] = &escSummary{}
		}
	}
	// Summary fixpoint: helper-returns-helper chains settle in one round
	// per nesting level; three rounds cover everything the tree has.
	for round := 0; round < 3; round++ {
		changed := false
		for _, d := range ae.decls {
			if ae.summarize(d) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Violation pass: the function bodies, then every closure as its own
	// unit (a deferred or spawned closure runs with captured variables as
	// its heap).
	for _, d := range ae.decls {
		ae.analyze(d, rep)
	}
}

func (ae *arenaEscape) cfg(body *ast.BlockStmt) *Graph {
	g, ok := ae.cfgs[body]
	if !ok {
		g = BuildCFG(body)
		ae.cfgs[body] = g
	}
	return g
}

// summarize recomputes d's summary; reports whether it changed.
func (ae *arenaEscape) summarize(d escDecl) bool {
	sum := ae.sums[d.fn]
	changed := false

	// Mode A: arena-seeded.
	r := ae.newRun(d.fd, d.fd.Body, nil)
	r.solve()
	if r.returnsTaint && !sum.returnsArena {
		sum.returnsArena = true
		changed = true
	}

	// Mode B: one run per reference-like parameter.
	sig := d.fn.Type().(*types.Signature)
	n := sig.Params().Len()
	if sum.returnsParam == nil {
		sum.returnsParam = make([]bool, n)
		sum.leaksParam = make([]bool, n)
	}
	params := paramObjects(ae.p, d.fd)
	for i := 0; i < n && i < len(params); i++ {
		if params[i] == nil || !taintableType(sig.Params().At(i).Type()) {
			continue
		}
		if sum.returnsParam[i] && sum.leaksParam[i] {
			continue // already at top
		}
		pr := ae.newRun(d.fd, d.fd.Body, params[i])
		pr.solve()
		if pr.returnsTaint && !sum.returnsParam[i] {
			sum.returnsParam[i] = true
			changed = true
		}
		if pr.leaks && !sum.leaksParam[i] {
			sum.leaksParam[i] = true
			changed = true
		}
	}
	return changed
}

// analyze runs the reporting pass over d's body and each of its closures.
func (ae *arenaEscape) analyze(d escDecl, rep *Reporter) {
	r := ae.newRun(d.fd, d.fd.Body, nil)
	r.viol = map[token.Pos]string{}
	r.solve()
	reportViolations(ae.p, rep, r.viol)

	ast.Inspect(d.fd.Body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		cr := ae.newRun(d.fd, fl.Body, nil)
		cr.viol = map[token.Pos]string{}
		cr.solve()
		reportViolations(ae.p, rep, cr.viol)
		return true // nested literals are separate units too
	})
}

func reportViolations(p *Package, rep *Reporter, viol map[token.Pos]string) {
	positions := make([]token.Pos, 0, len(viol))
	for pos := range viol {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	for _, pos := range positions {
		rep.ReportPos(pos, "%s", viol[pos])
	}
}

// escRun is one taint analysis over one body (function or closure).
type escRun struct {
	ae        *arenaEscape
	fd        *ast.FuncDecl  // enclosing declaration
	body      *ast.BlockStmt // analyzed body (fd.Body, or a closure's)
	seedParam types.Object   // mode B: taint starts at this parameter
	// solveTaints: results of Solve/SolveWarm/SolveMaybeWarm are tainted —
	// set when the enclosing declaration wires an arena via SetArena.
	solveTaints bool

	returnsTaint bool
	leaks        bool
	viol         map[token.Pos]string // nil in summary mode
	seen         map[token.Pos]bool
}

func (ae *arenaEscape) newRun(fd *ast.FuncDecl, body *ast.BlockStmt, seed types.Object) *escRun {
	return &escRun{
		ae:          ae,
		fd:          fd,
		body:        body,
		seedParam:   seed,
		solveTaints: seed == nil && mentionsSetArena(fd),
		seen:        map[token.Pos]bool{},
	}
}

type taintSet map[types.Object]bool

// setTaint keeps the set sparse: only tainted objects are present, so
// clone/join/equal can treat presence as truth.
func setTaint(st taintSet, obj types.Object, tainted bool) {
	if tainted {
		st[obj] = true
	} else {
		delete(st, obj)
	}
}

func (r *escRun) solve() {
	g := r.ae.cfg(r.body)
	SolveForward(g, FlowProblem[taintSet]{
		Boundary: func() taintSet {
			st := taintSet{}
			if r.seedParam != nil {
				st[r.seedParam] = true
			}
			return st
		},
		Transfer: r.transfer,
		Join: func(a, b taintSet) taintSet {
			out := make(taintSet, len(a)+len(b))
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b taintSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	})
}

func (r *escRun) transfer(b *Block, in taintSet) taintSet {
	st := make(taintSet, len(in))
	for k := range in {
		st[k] = true
	}
	if rs, ok := b.Ctrl.(*ast.RangeStmt); ok && r.tainted(rs.X, st) {
		if obj := identObj(r.ae.p, rs.Value); obj != nil && taintableType(obj.Type()) {
			st[obj] = true
		}
	}
	for _, n := range b.Nodes {
		r.node(n, st)
	}
	return st
}

func (r *escRun) node(n ast.Node, st taintSet) {
	r.scanCalls(n, st)
	switch n := n.(type) {
	case *ast.AssignStmt:
		r.assign(n, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						obj := r.ae.p.Info.Defs[name]
						if obj != nil && taintableType(obj.Type()) {
							setTaint(st, obj, r.tainted(vs.Values[i], st))
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if !r.tainted(res, st) {
				continue
			}
			r.returnsTaint = true
			if r.viol != nil && r.body == r.fd.Body && exportedNonSolve(r.ae.p, r.fd) {
				r.violate(n.Pos(), "arena-owned memory returned from exported %s outlives its solve; Clone it first (Solve* results are arena-owned by contract)", r.fd.Name.Name)
			}
		}
	case *ast.SendStmt:
		if r.tainted(n.Value, st) {
			r.leaks = true
			r.violate(n.Pos(), "arena-owned memory sent on a channel escapes its solve; Clone it first")
		}
	case *ast.GoStmt:
		r.goStmt(n, st)
	}
}

// goStmt flags arena memory crossing into a goroutine: tainted call
// arguments, and tainted enclosing variables captured by the closure.
func (r *escRun) goStmt(n *ast.GoStmt, st taintSet) {
	for _, arg := range n.Call.Args {
		if r.tainted(arg, st) {
			r.leaks = true
			r.violate(n.Pos(), "arena-owned memory handed to a goroutine may outlive its solve; Clone it first")
			return
		}
	}
	if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
		captured := false
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := r.ae.p.Info.Uses[id]; obj != nil && st[obj] {
					captured = true
				}
			}
			return !captured
		})
		if captured {
			r.leaks = true
			r.violate(n.Pos(), "arena-owned memory captured by a goroutine may outlive its solve; Clone it first")
		}
	}
}

// assign propagates taint through an assignment and flags heap stores.
func (r *escRun) assign(n *ast.AssignStmt, st taintSet) {
	// Taint of each RHS slot, before any LHS update (swap-safe).
	taints := make([]bool, len(n.Lhs))
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		t := r.tainted(n.Rhs[0], st)
		for i := range taints {
			taints[i] = t
		}
	} else {
		for i := range n.Lhs {
			if i < len(n.Rhs) {
				taints[i] = r.tainted(n.Rhs[i], st)
			}
		}
	}
	for i, lhs := range n.Lhs {
		t := taints[i] && taintableType(r.ae.p.Info.TypeOf(lhs))
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := identObj(r.ae.p, lhs)
			if obj == nil {
				continue // blank
			}
			if t && isPackageLevel(r.ae.p, obj) {
				r.leaks = true
				r.violate(n.Pos(), "arena-owned memory stored in package variable %s outlives its solve; Clone it first", lhs.Name)
				continue
			}
			// Locals and parameters are frame-local bindings.
			setTaint(st, obj, t)
		default:
			if !t {
				continue
			}
			root := rootIdentObj(r.ae.p, lhs)
			if root == nil {
				continue
			}
			switch {
			case st[root] || isArenaType(root.Type()):
				// Storing arena memory into the arena (or into a local
				// container already holding arena memory) stays arena-owned.
			case r.isHeapRoot(root):
				r.leaks = true
				r.violate(n.Pos(), "arena-owned memory stored through %s outlives its solve; Clone it first", root.Name())
			default:
				// A frame-local container now holds arena memory; returning
				// or storing it transfers the taint.
				st[root] = true
			}
		}
	}
}

// scanCalls checks every call under n (closures excluded) against the
// leaks-parameter summaries.
func (r *escRun) scanCalls(n ast.Node, st taintSet) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(r.ae.p, call)
		if callee == nil {
			return true
		}
		sum := r.ae.sums[callee]
		if sum == nil {
			return true
		}
		for i, arg := range call.Args {
			pi := paramIndex(callee, i)
			if pi < len(sum.leaksParam) && sum.leaksParam[pi] && r.tainted(arg, st) {
				r.leaks = true
				r.violate(call.Pos(), "arena-owned memory passed to %s, which stores it beyond its frame; Clone it first", callee.Name())
			}
		}
		return true
	})
}

// tainted reports whether e evaluates to arena-derived memory under st.
func (r *escRun) tainted(e ast.Expr, st taintSet) bool {
	if e == nil {
		return false
	}
	p := r.ae.p
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			obj = p.Info.Defs[e]
		}
		return obj != nil && st[obj]
	case *ast.SelectorExpr:
		if r.seedParam == nil && isArenaType(p.Info.TypeOf(e.X)) {
			return taintableType(p.Info.TypeOf(e))
		}
		return r.tainted(e.X, st) && taintableType(p.Info.TypeOf(e))
	case *ast.IndexExpr:
		return r.tainted(e.X, st) && taintableType(p.Info.TypeOf(e))
	case *ast.SliceExpr:
		return r.tainted(e.X, st)
	case *ast.StarExpr:
		return r.tainted(e.X, st)
	case *ast.UnaryExpr:
		return e.Op == token.AND && r.tainted(e.X, st)
	case *ast.TypeAssertExpr:
		return r.tainted(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if r.tainted(el, st) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return r.taintedCall(e, st)
	}
	return false
}

func (r *escRun) taintedCall(call *ast.CallExpr, st taintSet) bool {
	p := r.ae.p
	// Conversions propagate.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return r.tainted(call.Args[0], st)
	}
	// append: the only builtin that can carry references through.
	if isBuiltinCall(p, call, "append") && len(call.Args) > 0 {
		if r.tainted(call.Args[0], st) {
			return true
		}
		for _, arg := range call.Args[1:] {
			if !r.tainted(arg, st) {
				continue
			}
			t := p.Info.TypeOf(arg)
			if call.Ellipsis != token.NoPos {
				// append(dst, tainted...) copies the elements; only
				// reference-like elements keep pointing into the arena.
				if sl, ok := t.Underlying().(*types.Slice); ok {
					t = sl.Elem()
				}
			}
			if taintableType(t) {
				return true
			}
		}
		return false
	}
	callee := calleeFunc(p, call)
	if callee == nil {
		return false
	}
	name := callee.Name()
	if name == "Clone" {
		return false // the sanctioned escape hatch
	}
	// The solver contract: a Solve result is owned by the solver's arena.
	// That only outlives this frame when the frame wired a persistent
	// arena up (SetArena); a throwaway solver's result is safe to retain,
	// so the contract gate overrides the callee's summary here.
	if name == "Solve" || name == "SolveWarm" || name == "SolveMaybeWarm" {
		return r.seedParam == nil && r.solveTaints
	}
	if r.seedParam == nil {
		// Arena method results are arena memory.
		if isArenaType(recvType(callee)) {
			return taintableType(p.Info.TypeOf(call))
		}
	}
	// One-level summaries for in-package callees.
	if sum := r.ae.sums[callee]; sum != nil {
		if r.seedParam == nil && sum.returnsArena {
			return true
		}
		for i, arg := range call.Args {
			pi := paramIndex(callee, i)
			if pi < len(sum.returnsParam) && sum.returnsParam[pi] && r.tainted(arg, st) {
				return true
			}
		}
	}
	// A method on a tainted receiver returning references conservatively
	// returns arena memory (cascGame and friends).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && recvType(callee) != nil {
		if r.tainted(sel.X, st) && taintableType(p.Info.TypeOf(call)) {
			return true
		}
	}
	return false
}

func (r *escRun) violate(pos token.Pos, format string, args ...any) {
	if r.viol == nil || r.seen[pos] {
		return
	}
	r.seen[pos] = true
	r.viol[pos] = fmt.Sprintf(format, args...)
}

// isHeapRoot reports whether stores through obj outlive the analyzed
// frame: parameters, receivers, globals, and (for closures) captures.
func (r *escRun) isHeapRoot(obj types.Object) bool {
	if isPackageLevel(r.ae.p, obj) {
		return true
	}
	// Declared outside the analyzed body: parameter, receiver, or a
	// variable captured from the enclosing function.
	return obj.Pos() < r.body.Pos() || obj.Pos() >= r.body.End()
}

// --- small shared helpers ---

// exportedNonSolve reports whether fd is an exported entry point outside
// the Solve contract family, with a non-Arena receiver.
func exportedNonSolve(p *Package, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() || strings.HasPrefix(fd.Name.Name, "Solve") {
		return false
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if isArenaType(p.Info.TypeOf(fd.Recv.List[0].Type)) {
			return false
		}
	}
	return true
}

// mentionsSetArena reports whether the declaration wires up an arena.
func mentionsSetArena(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "SetArena" {
			found = true
		}
		return !found
	})
	return found
}

// isArenaType reports whether t (pointers stripped) is a named type called
// Arena — the solver scratch arena (assign.Arena, or a fixture's local
// double).
func isArenaType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Arena"
}

// taintableType reports whether values of t can carry a reference into
// arena memory: slices, maps, pointers, channels, interfaces (except
// error), and aggregates containing them. Scalars copy by value and drop
// taint.
func taintableType(t types.Type) bool {
	return taintableRec(t, make(map[types.Type]bool))
}

func taintableRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return false
	}
	if t.String() == "error" {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	case *types.Interface:
		return true // any interface may box a reference
	case *types.Array:
		return taintableRec(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if taintableRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// isPackageLevel reports whether obj is a package-scope variable.
func isPackageLevel(p *Package, obj types.Object) bool {
	return obj.Parent() == p.Pkg.Scope()
}

// rootIdentObj walks an lvalue chain (selectors, indexes, derefs) to its
// root identifier's object, or nil.
func rootIdentObj(p *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return identObj(p, x)
		default:
			return nil
		}
	}
}

// paramObjects returns the declared parameter objects of fd in signature
// order (grouped fields expanded), nil entries for unnamed parameters.
func paramObjects(p *Package, fd *ast.FuncDecl) []types.Object {
	var objs []types.Object
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			objs = append(objs, nil)
			continue
		}
		for _, name := range field.Names {
			objs = append(objs, p.Info.Defs[name])
		}
	}
	return objs
}

// paramIndex maps argument position i to the callee's parameter index,
// folding variadic tails onto the last parameter.
func paramIndex(fn *types.Func, i int) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return i
	}
	if n := sig.Params().Len(); sig.Variadic() && i >= n-1 {
		return n - 1
	}
	return i
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildTestCFG parses a function body (as source text), builds its CFG and
// checks the structural invariants.
func buildTestCFG(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	g := BuildCFG(fd.Body)
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v\n%s", err, src)
	}
	return g
}

// blockWith returns the first block for which match returns true, or nil.
func blockWith(g *Graph, match func(*Block) bool) *Block {
	for _, b := range g.Blocks {
		if match(b) {
			return b
		}
	}
	return nil
}

// hasNodeText reports whether any node of b renders (via its position span
// in the original source) — blocks are matched structurally instead, so
// tests key on node types and counts.
func countNodes(g *Graph, match func(ast.Node) bool) int {
	n := 0
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			if match(node) {
				n++
			}
		}
	}
	return n
}

func TestCFGStraightLine(t *testing.T) {
	g := buildTestCFG(t, "x := 1\nx++\n_ = x")
	if !g.Reachable()[g.Exit] {
		t.Fatal("exit unreachable in straight-line code")
	}
	if n := countNodes(g, func(n ast.Node) bool { _, ok := n.(*ast.IncDecStmt); return ok }); n != 1 {
		t.Fatalf("x++ appears %d times, want 1", n)
	}
}

func TestCFGIfElseMerges(t *testing.T) {
	g := buildTestCFG(t, "x := 1\nif x > 0 {\n\tx = 2\n} else {\n\tx = 3\n}\n_ = x")
	cond := blockWith(g, func(b *Block) bool { _, ok := b.Ctrl.(*ast.IfStmt); return ok })
	if cond == nil {
		t.Fatal("no block carries the IfStmt as Ctrl")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("if condition block has %d successors, want 2 (then, else)", len(cond.Succs))
	}
	if !g.Reachable()[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	g := buildTestCFG(t, "x := 1\nif x > 0 {\n\tx = 2\n}\n_ = x")
	cond := blockWith(g, func(b *Block) bool { _, ok := b.Ctrl.(*ast.IfStmt); return ok })
	if cond == nil || len(cond.Succs) != 2 {
		t.Fatal("if-without-else must branch to both the body and the after block")
	}
}

func TestCFGForLoop(t *testing.T) {
	g := buildTestCFG(t, "x := 0\nfor i := 0; i < 3; i++ {\n\tx += i\n}\n_ = x")
	head := blockWith(g, func(b *Block) bool { _, ok := b.Ctrl.(*ast.ForStmt); return ok })
	if head == nil {
		t.Fatal("no loop head block")
	}
	// The head must be re-enterable: some block (body or post) loops back.
	back := false
	for _, p := range head.Preds {
		if p != g.Entry && len(head.Preds) > 1 {
			back = true
		}
	}
	if !back {
		t.Fatalf("loop head has no back edge; preds %d", len(head.Preds))
	}
	if !g.Reachable()[g.Exit] {
		t.Fatal("exit unreachable past a conditional loop")
	}
}

func TestCFGInfiniteLoopNoExit(t *testing.T) {
	g := buildTestCFG(t, "x := 0\nfor {\n\tx++\n}")
	if g.Reachable()[g.Exit] {
		t.Fatal("exit must be unreachable past `for {}` with no break")
	}
}

func TestCFGBreakReachesExit(t *testing.T) {
	g := buildTestCFG(t, "x := 0\nfor {\n\tif x > 2 {\n\t\tbreak\n\t}\n\tx++\n}\n_ = x")
	if !g.Reachable()[g.Exit] {
		t.Fatal("break must make the after-loop block (and exit) reachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildTestCFG(t, `x := 0
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if x > 1 {
				break outer
			}
			x++
		}
	}
	_ = x`)
	if !g.Reachable()[g.Exit] {
		t.Fatal("labeled break must reach past the outer loop")
	}
}

func TestCFGLabeledContinue(t *testing.T) {
	g := buildTestCFG(t, `x := 0
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if x > 1 {
				continue outer
			}
			x++
		}
	}
	_ = x`)
	if !g.Reachable()[g.Exit] {
		t.Fatal("exit unreachable with labeled continue")
	}
}

func TestCFGGoto(t *testing.T) {
	g := buildTestCFG(t, "x := 0\n\tgoto done\ndone:\n\tx++\n\t_ = x")
	if !g.Reachable()[g.Exit] {
		t.Fatal("goto target must stay connected to exit")
	}
	if n := countNodes(g, func(n ast.Node) bool { _, ok := n.(*ast.IncDecStmt); return ok }); n != 1 {
		t.Fatalf("x++ after label appears %d times, want 1", n)
	}
}

func TestCFGPanicEndsPath(t *testing.T) {
	g := buildTestCFG(t, "x := 1\nif x > 0 {\n\tpanic(\"boom\")\n}\n_ = x")
	pb := blockWith(g, func(b *Block) bool {
		if len(b.Nodes) == 0 {
			return false
		}
		es, ok := b.Nodes[len(b.Nodes)-1].(*ast.ExprStmt)
		return ok && isPanicStmt(es)
	})
	if pb == nil {
		t.Fatal("no panic block found")
	}
	if len(pb.Succs) != 0 {
		t.Fatalf("panic block has %d successors, want 0 (panic-free path semantics)", len(pb.Succs))
	}
	if !g.Reachable()[g.Exit] {
		t.Fatal("the non-panicking path must still reach exit")
	}
}

func TestCFGReturnEdgesToExit(t *testing.T) {
	g := buildTestCFG(t, "x := 1\nif x > 0 {\n\treturn\n}\n_ = x")
	for _, b := range g.Blocks {
		if !b.Returns() {
			continue
		}
		if !containsBlock(b.Succs, g.Exit) {
			t.Fatalf("return block %d does not edge to exit", b.Index)
		}
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildTestCFG(t, `x := 1
	switch x {
	case 1:
		x = 10
		fallthrough
	case 2:
		x = 20
	default:
		x = 30
	}
	_ = x`)
	// The fallthrough clause block must have two predecessors: the switch
	// head and the falling-through clause.
	second := blockWith(g, func(b *Block) bool {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == "20" {
					return true
				}
			}
		}
		return false
	})
	if second == nil {
		t.Fatal("clause block for case 2 not found")
	}
	if len(second.Preds) != 2 {
		t.Fatalf("fallthrough target has %d preds, want 2 (head + falling clause)", len(second.Preds))
	}
	if !g.Reachable()[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestCFGSwitchNoDefaultFallsPast(t *testing.T) {
	g := buildTestCFG(t, "x := 1\nswitch x {\ncase 1:\n\tx = 10\n}\n_ = x")
	head := blockWith(g, func(b *Block) bool { _, ok := b.Ctrl.(*ast.SwitchStmt); return ok })
	if head == nil {
		t.Fatal("no switch head")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("defaultless switch head has %d succs, want 2 (clause + after)", len(head.Succs))
	}
}

func TestCFGTypeSwitch(t *testing.T) {
	g := buildTestCFG(t, `var v interface{} = 1
	switch v.(type) {
	case int:
		_ = v
	case string:
		_ = v
	}
	_ = v`)
	head := blockWith(g, func(b *Block) bool { _, ok := b.Ctrl.(*ast.TypeSwitchStmt); return ok })
	if head == nil {
		t.Fatal("no type-switch head")
	}
	if !g.Reachable()[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestCFGSelect(t *testing.T) {
	g := buildTestCFG(t, `a := make(chan int)
	b := make(chan int)
	select {
	case v := <-a:
		_ = v
	case <-b:
	default:
	}
	_ = a`)
	head := blockWith(g, func(b *Block) bool { _, ok := b.Ctrl.(*ast.SelectStmt); return ok })
	if head == nil {
		t.Fatal("no select head")
	}
	if len(head.Succs) != 3 {
		t.Fatalf("select head has %d succs, want 3 (two comms + default)", len(head.Succs))
	}
	if !g.Reachable()[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	g := buildTestCFG(t, "s := []int{1, 2}\nx := 0\nfor _, v := range s {\n\tx += v\n}\n_ = x")
	head := blockWith(g, func(b *Block) bool { _, ok := b.Ctrl.(*ast.RangeStmt); return ok })
	if head == nil {
		t.Fatal("no range head")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head has %d succs, want 2 (body + after)", len(head.Succs))
	}
	if !g.Reachable()[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestCFGDeadCodeKept(t *testing.T) {
	g := buildTestCFG(t, "return\nx := 1\n_ = x")
	reach := g.Reachable()
	dead := blockWith(g, func(b *Block) bool {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.AssignStmt); ok {
				return true
			}
		}
		return false
	})
	if dead == nil {
		t.Fatal("dead code block was pruned; real statements must be kept")
	}
	if reach[dead] {
		t.Fatal("statements after return must be unreachable")
	}
}

func TestCFGDeferIsPlainNode(t *testing.T) {
	g := buildTestCFG(t, "defer func() {\n\t_ = 1\n}()\nx := 1\n_ = x")
	if n := countNodes(g, func(n ast.Node) bool { _, ok := n.(*ast.DeferStmt); return ok }); n != 1 {
		t.Fatalf("defer appears %d times, want 1 plain node", n)
	}
	if !g.Reachable()[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

// TestCFGFuncLitOpaque: statements inside a function literal must not leak
// into the enclosing function's CFG.
func TestCFGFuncLitOpaque(t *testing.T) {
	g := buildTestCFG(t, "f := func() {\n\tfor {\n\t}\n}\nf()")
	if h := blockWith(g, func(b *Block) bool { _, ok := b.Ctrl.(*ast.ForStmt); return ok }); h != nil {
		t.Fatal("the literal's infinite loop leaked into the outer CFG")
	}
	if !g.Reachable()[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

// TestCFGPruneKeepsSource verifies pruning only drops empty artifacts: the
// node count across blocks equals the statement count of the source.
func TestCFGPruneOnlyEmptyArtifacts(t *testing.T) {
	body := "x := 0\nif x > 1 {\n\tx = 2\n}\nfor i := 0; i < 2; i++ {\n\tx += i\n}\n_ = x"
	g := buildTestCFG(t, body)
	for _, b := range g.Blocks {
		if b == g.Entry || b == g.Exit {
			continue
		}
		if len(b.Nodes) == 0 && b.Ctrl == nil && len(b.Preds) == 0 {
			t.Fatalf("block %d is an unpruned empty artifact", b.Index)
		}
	}
	if !strings.Contains(body, "x := 0") {
		t.Fatal("self-check")
	}
}

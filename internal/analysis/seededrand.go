package analysis

import (
	"go/ast"
)

// newSeededRand builds the seededrand rule: solver and partition code must
// not consult ambient nondeterminism. Randomness flows through an injected
// seeded *rand.Rand (constructed via rand.New(rand.NewSource(seed))), time
// through an injectable clock value — never the process-global math/rand
// source or direct time.Now/time.Since calls, both of which break the
// seed-reproducibility contract the equivalence tests and the paper's
// reported scores rely on.
func newSeededRand() *Rule {
	return &Rule{
		Name: "seededrand",
		Doc: "global math/rand or wall-clock call in solver/partition code; " +
			"randomness must come from an injected seeded *rand.Rand and " +
			"time from an injectable clock",
		Scope: []string{
			"internal/assign", "internal/partition",
			"internal/model", "internal/coop",
			// The sharded tier replays rounds bitwise across shard counts;
			// ambient clocks or global randomness there would desync the
			// N-shard-vs-1-shard equivalence the load test asserts.
			"internal/shard",
			// The incremental engine promises rounds bitwise identical to a
			// from-scratch solve; ambient nondeterminism anywhere in its
			// carry/re-solve path would break that equivalence silently.
			"internal/incremental",
			// The scenario engine's whole contract is that the event
			// schedule is a pure function of (spec, seed) — DESIGN.md §14;
			// one ambient draw or clock read and record/replay diverges.
			"internal/scenario",
		},
		Check: checkSeededRand,
	}
}

// seededRandAllowed lists the math/rand top-level functions that do not
// touch the global source: the constructors used to build injected
// generators.
var seededRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func checkSeededRand(p *Package, rep *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || namedRecv(fn) != "" {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !seededRandAllowed[fn.Name()] {
					rep.Report(call, "math/rand.%s draws from the global source; use the injected seeded *rand.Rand", fn.Name())
				}
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					rep.Report(call, "time.%s reads the wall clock in solver code; inject a clock (func() time.Time)", fn.Name())
				}
			}
			return true
		})
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: its syntax trees plus the
// type information every rule needs.
type Package struct {
	// Path is the import path ("casc/internal/assign"). Packages loaded
	// from a bare directory (testdata fixtures) get a synthesized path
	// rooted at the module path.
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of one module without depending
// on golang.org/x/tools: the go command provides package and file
// discovery plus compiled export data (`go list -export`), module sources
// are parsed with go/parser, and go/types checks them against the export
// data of their dependencies.
type Loader struct {
	Root string // module root: the directory containing go.mod

	fset    *token.FileSet
	modPath string
	exports map[string]string // import path -> export data file
	gc      types.Importer    // reads export data through lookup
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// NewLoader prepares a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	l := &Loader{
		Root:    root,
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
	}
	mod, err := l.goList("-m", "-f", "{{.Path}}")
	if err != nil {
		return nil, err
	}
	if len(mod) != 1 {
		return nil, fmt.Errorf("analysis: cannot determine module path under %s", root)
	}
	l.modPath = mod[0]
	// One export-data sweep over the whole module and its (stdlib)
	// dependency closure; anything a fixture imports beyond that is
	// resolved on demand in lookup.
	lines, err := l.goList("-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}", "./...")
	if err != nil {
		return nil, err
	}
	l.addExports(lines)
	l.gc = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l, nil
}

func (l *Loader) goList(args ...string) ([]string, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.Root
	out, err := cmd.Output()
	if err != nil {
		detail := ""
		if ee, ok := err.(*exec.ExitError); ok {
			detail = ": " + strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("analysis: go list %s failed%s", strings.Join(args, " "), detail)
	}
	var lines []string
	for _, ln := range strings.Split(string(out), "\n") {
		if ln = strings.TrimRight(ln, "\r"); ln != "" {
			lines = append(lines, ln)
		}
	}
	return lines, nil
}

func (l *Loader) addExports(lines []string) {
	for _, ln := range lines {
		path, file, ok := strings.Cut(ln, "\t")
		if ok && file != "" {
			l.exports[path] = file
		}
	}
}

// lookup feeds export data to the gc importer, fetching entries missing
// from the initial sweep (stdlib packages only fixtures import) lazily.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		lines, err := l.goList("-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}", path)
		if err != nil {
			return nil, err
		}
		l.addExports(lines)
		if file, ok = l.exports[path]; !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
	}
	return os.Open(file)
}

// Import implements types.Importer over export data, making the Loader
// usable as the checker's importer for both stdlib and module imports.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return l.gc.Import(path)
}

// LoadModule loads every package of the module (`go list ./...`),
// type-checked from source. Test files are excluded: the suite's rules
// target production code, and fixtures under testdata are loaded
// explicitly with LoadDir.
func (l *Loader) LoadModule() ([]*Package, error) {
	lines, err := l.goList("-f", "{{.ImportPath}}\t{{.Dir}}\t{{range .GoFiles}}{{.}} {{end}}", "./...")
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, ln := range lines {
		parts := strings.SplitN(ln, "\t", 3)
		if len(parts) != 3 {
			continue
		}
		path, dir := parts[0], parts[1]
		var files []string
		for _, f := range strings.Fields(parts[2]) {
			files = append(files, filepath.Join(dir, f))
		}
		if len(files) == 0 {
			continue
		}
		p, err := l.check(path, dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads the single package in dir (which may sit under testdata,
// invisible to the go command), type-checked against the module's export
// data. All non-test .go files in the directory are included.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			files = append(files, filepath.Join(dir, n))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module root %s", dir, l.Root)
	}
	return l.check(l.modPath+"/"+filepath.ToSlash(rel), dir, files)
}

func (l *Loader) check(path, dir string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, asts, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: asts, Pkg: tpkg, Info: info}, nil
}

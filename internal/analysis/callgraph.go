package analysis

import (
	"go/ast"
	"go/types"
)

// callgraph.go builds the static call graph the interprocedural rules
// (ctxprop, arenaescape's summary pass) consume. Edges are static calls
// resolved through go/types: direct function calls, method calls on
// concrete receivers, and interface method calls (which resolve to the
// interface's *types.Func — a node with no body, so summaries treat it by
// contract, not by inspection). Calls through function-typed values are
// invisible, which keeps every derived fact "may" rather than "must".

// FuncInfo is one function of the graph with the summary facts the rules
// propagate one level interprocedurally.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl // nil for bodyless nodes (interface methods, externals)
	Pkg  *Package
	// Calls lists the static call sites inside Decl's body, closures
	// included (a call made by a closure still runs on behalf of the
	// enclosing function for reachability purposes).
	Calls []CallSite
	// HasLoop reports a for/range anywhere in the body (closures included).
	HasLoop bool
	// Ctx is the function's context.Context parameter object, if any.
	Ctx types.Object
}

// CallSite is one resolved call.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *types.Func
}

// CallGraph accumulates FuncInfo across packages; rules feed it one
// package per Check call and query it in Finish.
type CallGraph struct {
	nodes map[*types.Func]*FuncInfo
	order []*FuncInfo // deterministic iteration: insertion order
}

// NewCallGraph returns an empty graph.
func NewCallGraph() *CallGraph {
	return &CallGraph{nodes: map[*types.Func]*FuncInfo{}}
}

// Lookup returns the node for fn, or nil.
func (cg *CallGraph) Lookup(fn *types.Func) *FuncInfo {
	return cg.nodes[fn]
}

// Funcs returns every function with a body, in insertion order (package
// load order, then file order) — deterministic across runs.
func (cg *CallGraph) Funcs() []*FuncInfo {
	return cg.order
}

// AddPackage indexes every function declaration of p.
func (cg *CallGraph) AddPackage(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &FuncInfo{Fn: obj, Decl: fd, Pkg: p, Ctx: contextParam(p, fd)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					fi.HasLoop = true
				case *ast.CallExpr:
					if callee := calleeFunc(p, n); callee != nil {
						fi.Calls = append(fi.Calls, CallSite{Call: n, Callee: callee})
					}
				}
				return true
			})
			cg.nodes[obj] = fi
			cg.order = append(cg.order, fi)
		}
	}
}

// ReachableFrom returns every function reachable from the roots over
// static call edges, roots included. Bodyless callees terminate paths.
func (cg *CallGraph) ReachableFrom(roots []*FuncInfo) map[*FuncInfo]bool {
	seen := map[*FuncInfo]bool{}
	var stack []*FuncInfo
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		fi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, cs := range fi.Calls {
			if next := cg.nodes[cs.Callee]; next != nil && !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return seen
}

// LoopsWithin reports whether fn loops itself or any of its direct callees
// does — the one-level summary ctxprop uses to decide that handing a
// callee a dead context matters. Interface methods named Solve/SolveWarm
// count as looping by contract (every Solver implementation's hot path
// loops; that contract is what ctxloop enforces on the concrete types).
func (cg *CallGraph) LoopsWithin(fn *types.Func) bool {
	if isSolveContract(fn) {
		return true
	}
	fi := cg.nodes[fn]
	if fi == nil {
		return false
	}
	if fi.HasLoop {
		return true
	}
	for _, cs := range fi.Calls {
		if isSolveContract(cs.Callee) {
			return true
		}
		if next := cg.nodes[cs.Callee]; next != nil && next.HasLoop {
			return true
		}
	}
	return false
}

// isSolveContract reports whether fn is a Solve/SolveWarm method — the
// solver contract whose implementations loop by design.
func isSolveContract(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	name := fn.Name()
	if name != "Solve" && name != "SolveWarm" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

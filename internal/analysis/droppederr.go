package analysis

import (
	"go/ast"
	"go/types"
)

// newDroppedErr builds the droppederr rule: a statement that calls a
// function whose final result is an error and lets it vanish hides
// failures the solver stack is expected to surface (the Solver contract
// threads errors all the way to the harness tables and HTTP handlers).
// Intentional discards must be spelled `_ = f()` or suppressed with a
// reason. Calls to fmt and to the never-failing writers (strings.Builder,
// bytes.Buffer, hash.Hash) are exempt, as is the idiomatic `defer
// f.Close()` on read paths.
func newDroppedErr() *Rule {
	return &Rule{
		Name:  "droppederr",
		Doc:   "discarded error return in non-test code",
		Check: checkDroppedErr,
	}
}

// droppedErrExemptRecv lists receiver types whose methods are documented
// to never return a non-nil error.
var droppedErrExemptRecv = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"hash.Hash":       true,
	"hash.Hash32":     true,
	"hash.Hash64":     true,
}

func checkDroppedErr(p *Package, rep *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			deferred := false
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call, deferred = st.Call, true
			case *ast.GoStmt:
				call = st.Call
			default:
				return true
			}
			if call == nil {
				return true
			}
			sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
			if !ok { // builtin or conversion
				return true
			}
			res := sig.Results()
			if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
				return true
			}
			if fn := calleeFunc(p, call); fn != nil && droppedErrExempt(fn, deferred) {
				return true
			}
			rep.Report(call, "error return is discarded; handle it or assign to _")
			return true
		})
	}
}

func droppedErrExempt(fn *types.Func, deferred bool) bool {
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		return true
	}
	if recv := namedRecv(fn); recv != "" && droppedErrExemptRecv[recv] {
		return true
	}
	return deferred && fn.Name() == "Close"
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorIface)
}

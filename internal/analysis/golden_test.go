package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader builds one Loader per test process: the export-data sweep
// behind it is the expensive part and is identical for every test.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			loaderErr = err
			return
		}
		root, err := FindModuleRoot(wd)
		if err != nil {
			loaderErr = err
			return
		}
		loaderVal, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderVal
}

// wantRE matches golden expectations: `// want <rule>` trailing the line
// the diagnostic must land on.
var wantRE = regexp.MustCompile(`// want (\w+)\s*$`)

type want struct {
	rule string
	line int
}

// fixtureWants scans every .go file of dir for `// want` annotations.
func fixtureWants(t *testing.T, dir string) map[string][]want {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[string][]want)
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRE.FindStringSubmatch(line); m != nil {
				wants[path] = append(wants[path], want{rule: m[1], line: i + 1})
			}
		}
	}
	return wants
}

// lineOf returns the 1-based line whose trimmed content equals text.
func lineOf(t *testing.T, path, text string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == text {
			return i + 1
		}
	}
	t.Fatalf("%s: no line equal to %q", path, text)
	return 0
}

// TestGolden runs each rule against its fixture package and requires the
// produced diagnostics to match the `// want` annotations exactly — same
// rule, same line, nothing extra, nothing missing.
func TestGolden(t *testing.T) {
	l := testLoader(t)
	cases := []struct {
		fixture string
		rules   []string // rules to run; nil = all
	}{
		{fixture: "maporder", rules: []string{"maporder"}},
		{fixture: "seededrand", rules: []string{"seededrand"}},
		{fixture: "ctxloop", rules: []string{"ctxloop"}},
		{fixture: "metricname", rules: []string{"metricname"}},
		{fixture: "droppederr", rules: []string{"droppederr"}},
		{fixture: "hotalloc", rules: []string{"hotalloc"}},
		{fixture: "suppress", rules: []string{"droppederr"}},
		// The shard fixture exercises the three rules whose scope covers
		// internal/shard, in one package shaped like the sharded tier.
		{fixture: "shard", rules: []string{"ctxloop", "seededrand", "metricname"}},
		// The incremental fixture exercises the three rules whose scope
		// covers internal/incremental, shaped like the persistent engine.
		{fixture: "incremental", rules: []string{"ctxloop", "seededrand", "maporder"}},
		// The scenario fixture exercises the two rules extended to cover
		// internal/scenario, shaped like the counterfactual tracer and
		// the arrival generator (DESIGN.md §14 determinism contract).
		{fixture: "scenario", rules: []string{"ctxloop", "seededrand"}},
		// The four CFG/dataflow rules (DESIGN.md §13).
		{fixture: "arenaescape", rules: []string{"arenaescape"}},
		{fixture: "lockbalance", rules: []string{"lockbalance"}},
		{fixture: "ctxprop", rules: []string{"ctxprop"}},
		{fixture: "floatdet", rules: []string{"floatdet"}},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.fixture)
			pkg, err := l.LoadDir(dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			var rules []*Rule
			for _, r := range AllRules() {
				for _, name := range tc.rules {
					if r.Name == name {
						rules = append(rules, r)
					}
				}
			}
			diags := Run([]*Package{pkg}, Options{Rules: rules, IgnoreScope: true})

			wants := fixtureWants(t, dir)
			if tc.fixture == "suppress" {
				// Suppression-hygiene findings are reported under the
				// casclint pseudo-rule at the comment's own line; those
				// lines cannot carry a trailing `// want` without changing
				// the comment they test.
				path, err := filepath.Abs(filepath.Join(dir, "suppress.go"))
				if err != nil {
					t.Fatal(err)
				}
				for _, text := range []string{
					"//casclint:ignore droppederr",                                            // malformed: no reason
					"//casclint:ignore droppederr nothing below can fail",                     // unused
					"//casclint:ignore nosuchrule suppressing a rule the suite does not have", // unknown rule
				} {
					wants[path] = append(wants[path], want{
						rule: SuppressRule,
						line: lineOf(t, path, text),
					})
				}
			}

			type key struct {
				file string
				line int
				rule string
			}
			got := make(map[key]bool)
			for _, d := range diags {
				k := key{d.File, d.Line, d.Rule}
				if got[k] {
					t.Errorf("duplicate diagnostic %s", d)
				}
				got[k] = true
			}
			expected := make(map[key]bool)
			for file, ws := range wants {
				abs, err := filepath.Abs(file)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range ws {
					expected[key{abs, w.line, w.rule}] = true
				}
			}
			var missing, unexpected []string
			for k := range expected {
				if !got[k] {
					missing = append(missing, fmt.Sprintf("%s:%d: %s", k.file, k.line, k.rule))
				}
			}
			for k := range got {
				if !expected[k] {
					unexpected = append(unexpected, fmt.Sprintf("%s:%d: %s", k.file, k.line, k.rule))
				}
			}
			sort.Strings(missing)
			sort.Strings(unexpected)
			for _, m := range missing {
				t.Errorf("missing diagnostic: %s", m)
			}
			for _, u := range unexpected {
				t.Errorf("unexpected diagnostic: %s", u)
			}
			if t.Failed() {
				for _, d := range diags {
					t.Logf("got: %s", d)
				}
			}
		})
	}
}

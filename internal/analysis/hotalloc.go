package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// newHotAlloc builds the hotalloc rule: no per-iteration heap allocation in
// the loops of solver Solve paths. The zero-allocation steady state of the
// arena refactor (DESIGN.md §12) is asserted dynamically by
// testing.AllocsPerRun regression tests; this rule is the static half — it
// catches the allocating idioms at review time, in every solver, including
// the ones no alloc test pins. Flagged inside any loop body of a
// Solve/SolveWarm/solve/solveWarm function or method:
//
//   - make(...) — grow an arena buffer outside the loop instead;
//   - append(nil, ...) / append(T(nil), ...) — the copy-into-fresh-slice
//     idiom (the old sameSet sort copies);
//   - map or chan composite literals — index marks with an epoch stamp
//     replace per-iteration membership maps (see Arena.nextEpoch).
//
// A justified //casclint:ignore hotalloc <reason> suppresses a finding
// where an allocation is genuinely once-per-solve or off the steady-state
// path.
func newHotAlloc() *Rule {
	return &Rule{
		Name: "hotalloc",
		Doc: "no make/append-from-nil/map literals inside Solve loop " +
			"bodies; draw from the solver arena or hoist out of the loop",
		// Same blast radius as ctxloop minus resilience (its decorators'
		// Solve bodies are error-path plumbing, not per-candidate loops):
		// the batch solvers, the cluster tier's routing Solve paths, and
		// the incremental engine's per-round solves.
		Scope: []string{"internal/assign", "internal/shard", "internal/incremental"},
		Check: checkHotAlloc,
	}
}

// solveFuncName reports whether name is a solver entry point the rule
// covers: the exported Solve/SolveWarm contract methods and their
// unexported twins that hold the actual hot loops (TPG.solve, GT.solve).
func solveFuncName(name string) bool {
	switch name {
	case "Solve", "SolveWarm", "solve", "solveWarm":
		return true
	}
	return false
}

func checkHotAlloc(p *Package, rep *Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !solveFuncName(fd.Name.Name) {
				continue
			}
			checkHotAllocFunc(p, rep, fd)
		}
	}
}

func checkHotAllocFunc(p *Package, rep *Reporter, fd *ast.FuncDecl) {
	// Collect the loop bodies first; an allocation is hot when its
	// position falls inside any of them (nested function literals
	// included — a closure allocating per iteration is still per
	// iteration).
	var loops []*ast.BlockStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, l.Body)
		case *ast.RangeStmt:
			loops = append(loops, l.Body)
		}
		return true
	})
	if len(loops) == 0 {
		return
	}
	inLoop := func(pos token.Pos) bool {
		for _, b := range loops {
			if b.Pos() <= pos && pos < b.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if !inLoop(e.Pos()) {
				return true
			}
			if isBuiltinCall(p, e, "make") {
				rep.Report(e, "make inside a Solve loop allocates per iteration; grow an arena buffer outside the loop")
			}
			if isBuiltinCall(p, e, "append") && len(e.Args) > 0 && isNilSeed(p, e.Args[0]) {
				rep.Report(e, "append to nil inside a Solve loop allocates a fresh slice per iteration; reuse a buffer")
			}
		case *ast.CompositeLit:
			if !inLoop(e.Pos()) {
				return true
			}
			if t := p.Info.TypeOf(e); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					rep.Report(e, "map literal inside a Solve loop allocates per iteration; use epoch-stamped index marks instead")
				}
			}
		}
		return true
	})
}

// isNilSeed reports whether the expression is nil or a conversion of nil
// (the `[]int(nil)` spelling of the copy idiom).
func isNilSeed(p *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := p.Info.Types[e]; ok && tv.IsNil() {
		return true
	}
	if c, ok := e.(*ast.CallExpr); ok && len(c.Args) == 1 {
		if tv, ok := p.Info.Types[c.Fun]; ok && tv.IsType() {
			return isNilSeed(p, c.Args[0])
		}
	}
	return false
}

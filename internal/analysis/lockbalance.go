package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// newLockBalance builds the lockbalance rule: every sync.Mutex/sync.RWMutex
// acquisition in the platform tiers must be released on every panic-free
// CFG path out of the function — early returns included — either by an
// explicit Unlock on the path or by a defer that is guaranteed to have been
// registered. The rule runs a forward dataflow over the function's CFG with
// a per-mutex lattice of (held count, registered deferred unlocks): held
// joins with max (a path that still holds the lock dominates), deferred
// with min (only a defer registered on every incoming path is guaranteed).
// A function that unlocks a mutex it never locks is treated as a
// caller-held helper and skipped for that mutex; write-locking a mutex
// whose lock may already be held is reported as a self-deadlock.
func newLockBalance() *Rule {
	return &Rule{
		Name: "lockbalance",
		Doc: "every Lock/RLock on the shard/server/platform mutexes must be " +
			"matched by an Unlock on all panic-free CFG paths",
		// The tiers that guard registries with manual Lock/Unlock pairs
		// (shard keeps several non-deferred fast paths): a leaked lock here
		// freezes a shard or the whole platform under load.
		Scope: []string{"internal/shard", "internal/server"},
		Check: checkLockBalance,
	}
}

// lockFact is one mutex's state on one path. held counts acquisitions
// (clamped; >1 on a write lock is already a finding), deferred counts
// unlock defers registered so far.
type lockFact struct {
	held     int8
	deferred int8
}

// lockState maps canonical mutex keys ("s@1234.mu#w") to facts.
type lockState map[string]lockFact

func cloneLockState(s lockState) lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// lockOp is one classified mutex call site.
type lockOp struct {
	key      string // canonical mutex path + "#w" or "#r"
	acquire  bool
	write    bool
	deferred bool // registered by a defer statement
	node     ast.Node
}

func checkLockBalance(p *Package, rep *Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBalanceFunc(p, rep, fd)
		}
	}
}

func checkLockBalanceFunc(p *Package, rep *Reporter, fd *ast.FuncDecl) {
	lb := &lockBalancer{p: p, firstLock: map[string]token.Pos{}, skip: map[string]bool{}}
	// Fast pre-pass: skip the CFG machinery for lock-free functions, and
	// record per-key facts the dataflow needs (first Lock anchor, TryLock
	// escape hatch, whether the function locks the key at all).
	hasOp := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := lb.classify(call, false)
		if !ok {
			return true
		}
		hasOp = true
		if op.key == "" {
			return true // untrackable receiver; ignored
		}
		if op.acquire {
			lb.locksKey(op.key)
			if _, seen := lb.firstLock[op.key]; !seen {
				lb.firstLock[op.key] = call.Pos()
			}
		}
		return true
	})
	if !hasOp {
		return
	}

	g := BuildCFG(fd.Body)
	res := SolveForward(g, FlowProblem[lockState]{
		Boundary: func() lockState { return lockState{} },
		Transfer: lb.transfer,
		Join:     joinLockState,
		Equal:    equalLockState,
	})

	findings := map[string]posMsg{}
	record := func(key string, pos token.Pos, format string, args ...any) {
		if lb.skip[key] {
			return
		}
		if _, dup := findings[key]; !dup {
			findings[key] = posMsg{pos, fmt.Sprintf(format, args...)}
		}
	}
	// Deadlocks and underflows surface during the (re-runnable) transfer;
	// collect them from the balancer's idempotent side records.
	for _, d := range lb.deadlocks {
		record(d.key, d.pos, "%s", d.msg)
	}
	// Leaks surface at exit: a block flowing into Exit whose out-state
	// still holds a lock that no registered defer releases.
	for _, b := range g.Exit.Preds {
		out, ok := res.Out[b]
		if !ok {
			continue // unreachable return
		}
		retLine := p.Fset.Position(lastNodePos(b)).Line
		for key, fact := range out {
			if int(fact.held)-int(fact.deferred) > 0 {
				record(key, lb.firstLock[key],
					"%s locked here is not released on every return path (path through line %d returns with it held)",
					displayLockKey(key), retLine)
			}
		}
	}

	// Deterministic report order: by position.
	keys := make([]string, 0, len(findings))
	for k := range findings {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := findings[keys[i]], findings[keys[j]]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		f := findings[k]
		rep.ReportPos(f.pos, "%s", f.msg)
	}
}

type posMsg struct {
	pos token.Pos
	msg string
}

type lockIssue struct {
	key string
	pos token.Pos
	msg string
}

// lockBalancer carries the per-function side state of the dataflow pass.
type lockBalancer struct {
	p         *Package
	firstLock map[string]token.Pos
	// skip marks keys excluded from reporting: caller-held helpers (the
	// function unlocks but never locks the key) and TryLock users.
	skip      map[string]bool
	locked    map[string]bool
	deadlocks []lockIssue
	seenIssue map[string]bool
}

func (lb *lockBalancer) locksKey(key string) {
	if lb.locked == nil {
		lb.locked = map[string]bool{}
	}
	lb.locked[key] = true
}

func (lb *lockBalancer) issue(key string, pos token.Pos, format string, args ...any) {
	// Transfer runs to fixpoint, so the same issue can resurface; keep the
	// first occurrence per (key, pos).
	id := fmt.Sprintf("%s@%d", key, pos)
	if lb.seenIssue == nil {
		lb.seenIssue = map[string]bool{}
	}
	if lb.seenIssue[id] {
		return
	}
	lb.seenIssue[id] = true
	lb.deadlocks = append(lb.deadlocks, lockIssue{key: key, pos: pos, msg: fmt.Sprintf(format, args...)})
}

// transfer applies one block's mutex operations in order. The returned
// state is normalized (no zero entries) so Equal is structural.
func (lb *lockBalancer) transfer(b *Block, in lockState) lockState {
	out := cloneLockState(in)
	for _, n := range b.Nodes {
		lb.walkOps(n, out)
	}
	for k, v := range out {
		if v == (lockFact{}) {
			delete(out, k)
		}
	}
	return out
}

// joinLockState merges two path states: held joins with max (a path that
// still holds the lock dominates the merge), deferred with min (only an
// unlock deferred on every incoming path is guaranteed to run).
func joinLockState(a, b lockState) lockState {
	out := lockState{}
	for k, fa := range a {
		fb := b[k] // zero when absent
		f := lockFact{held: fa.held, deferred: min(fa.deferred, fb.deferred)}
		if fb.held > f.held {
			f.held = fb.held
		}
		if f != (lockFact{}) {
			out[k] = f
		}
	}
	for k, fb := range b {
		if _, ok := a[k]; ok {
			continue
		}
		// Absent in a: held joins with 0 (keep max), deferred min(0, x) = 0.
		if fb.held > 0 {
			out[k] = lockFact{held: fb.held}
		}
	}
	return out
}

func equalLockState(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// walkOps finds mutex operations under n in evaluation order, skipping
// function literals (their bodies run elsewhere) except under defer, where
// an immediately-invoked literal's unlocks run at function exit.
func (lb *lockBalancer) walkOps(n ast.Node, st lockState) {
	if ds, ok := n.(*ast.DeferStmt); ok {
		if fl, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
			// defer func() { ... mu.Unlock() ... }()
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if op, ok := lb.classify(call, true); ok && op.key != "" {
						lb.apply(op, st)
					}
				}
				return true
			})
			return
		}
		if op, ok := lb.classify(ds.Call, true); ok && op.key != "" {
			lb.apply(op, st)
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			lb.walkOps(m, st)
			return false
		case *ast.CallExpr:
			if op, ok := lb.classify(m, false); ok && op.key != "" {
				lb.apply(op, st)
			}
		}
		return true
	})
}

func (lb *lockBalancer) apply(op lockOp, st lockState) {
	fact := st[op.key]
	switch {
	case op.deferred && !op.acquire:
		if fact.deferred < 2 {
			fact.deferred++
		}
	case op.deferred && op.acquire:
		// defer mu.Lock() — pathological; treat as untrackable.
		lb.skip[op.key] = true
	case op.acquire:
		if op.write && fact.held >= 1 {
			lb.issue(op.key, op.node.Pos(),
				"%s may already be held here; locking again self-deadlocks", displayLockKey(op.key))
		}
		if fact.held < 2 {
			fact.held++
		}
	default: // explicit unlock
		if fact.held == 0 {
			if lb.locked[op.key] {
				lb.issue(op.key, op.node.Pos(),
					"%s is not held on every path reaching this Unlock", displayLockKey(op.key))
			} else {
				// Caller-held helper: the function releases a lock it never
				// acquires. Out of intraprocedural scope.
				lb.skip[op.key] = true
			}
		} else {
			fact.held--
		}
	}
	st[op.key] = fact
}

// classify resolves a call to a mutex operation. The second return is false
// for non-mutex calls; a mutex call with an untrackable receiver returns
// ok with an empty key.
func (lb *lockBalancer) classify(call *ast.CallExpr, deferred bool) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn := calleeFunc(lb.p, call)
	if fn == nil || !isSyncLockerType(recvType(fn)) {
		return lockOp{}, false
	}
	var acquire, write bool
	switch fn.Name() {
	case "Lock":
		acquire, write = true, true
	case "Unlock":
		write = true
	case "RLock":
		acquire = true
	case "RUnlock":
	case "TryLock", "TryRLock":
		// Conditional acquisition breaks the balance lattice; exclude the
		// mutex from this function's analysis.
		if key := canonicalLockPath(lb.p, sel.X); key != "" {
			lb.skip[key+"#w"] = true
			lb.skip[key+"#r"] = true
		}
		return lockOp{}, false
	default:
		return lockOp{}, false
	}
	key := canonicalLockPath(lb.p, sel.X)
	if key != "" {
		if write {
			key += "#w"
		} else {
			key += "#r"
		}
	}
	return lockOp{key: key, acquire: acquire, write: write, deferred: deferred, node: call}, true
}

// recvType returns the receiver type of a method, nil for plain functions.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// isSyncLockerType reports whether t (pointers stripped) is sync.Mutex or
// sync.RWMutex.
func isSyncLockerType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// canonicalLockPath renders a mutex receiver as a stable key: a chain of
// field selections rooted at a named object ("s.mu", "p.state.mu").
// Anything else (map/slice elements, call results) is untrackable and
// yields "".
func canonicalLockPath(p *Package, e ast.Expr) string {
	var fields []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			fields = append(fields, x.Sel.Name)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return ""
			}
			e = x.X
		case *ast.Ident:
			obj := identObj(p, x)
			if obj == nil {
				return ""
			}
			key := fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
			for i := len(fields) - 1; i >= 0; i-- {
				key += "." + fields[i]
			}
			return key
		default:
			return ""
		}
	}
}

// displayLockKey strips the internal object pin and mode suffix for
// messages: "s@1234.mu#w" → "s.mu".
func displayLockKey(key string) string {
	out := make([]byte, 0, len(key))
	skip := false
	for i := 0; i < len(key); i++ {
		switch key[i] {
		case '@':
			skip = true
		case '.':
			skip = false
			out = append(out, '.')
		case '#':
			return string(out)
		default:
			if !skip {
				out = append(out, key[i])
			}
		}
	}
	return string(out)
}

// lastNodePos returns the position of the block's last node (its
// terminator), or token.NoPos for empty blocks.
func lastNodePos(b *Block) token.Pos {
	if len(b.Nodes) == 0 {
		return token.NoPos
	}
	return b.Nodes[len(b.Nodes)-1].Pos()
}

package analysis

// dataflow.go is the worklist solver the CFG rules share. A FlowProblem
// packages one monotone dataflow problem over a Graph: facts of any type F,
// a boundary fact, a per-block transfer function, and join/equality. The
// solver iterates to fixpoint, visiting only blocks reachable from the
// boundary (forward: entry, backward: exit) — facts on unreachable blocks
// stay absent, which consuming rules treat as bottom.
//
// Contract: Transfer and Join must not mutate their inputs; both return
// (possibly fresh) facts. Termination is the problem's responsibility:
// the fact lattice must have finite height (every rule here uses small
// bounded maps keyed by objects or canonical strings).

// FlowProblem describes one dataflow problem with fact type F.
type FlowProblem[F any] struct {
	// Boundary is the fact entering the entry block (forward) or leaving
	// the exit block (backward).
	Boundary func() F
	// Transfer applies one block's effect to the incoming fact.
	Transfer func(b *Block, in F) F
	// Join combines facts at control-flow merges.
	Join func(a, b F) F
	// Equal detects the fixpoint.
	Equal func(a, b F) bool
}

// FlowResult holds the solved facts per block. In is the fact before the
// block's transfer, Out the fact after it (in execution order for forward
// problems, in reverse order for backward ones). Blocks unreachable from
// the boundary are absent from both maps.
type FlowResult[F any] struct {
	In  map[*Block]F
	Out map[*Block]F
}

// SolveForward runs the problem from entry toward exit.
func SolveForward[F any](g *Graph, p FlowProblem[F]) FlowResult[F] {
	return solve(g, p, false)
}

// SolveBackward runs the problem from exit toward entry: Transfer sees the
// join of the block's successors' facts, and FlowResult.In holds the fact
// "after" the block in execution order.
func SolveBackward[F any](g *Graph, p FlowProblem[F]) FlowResult[F] {
	return solve(g, p, true)
}

func solve[F any](g *Graph, p FlowProblem[F], backward bool) FlowResult[F] {
	res := FlowResult[F]{In: map[*Block]F{}, Out: map[*Block]F{}}
	start := g.Entry
	if backward {
		start = g.Exit
	}
	sources := func(b *Block) []*Block {
		if backward {
			return b.Succs
		}
		return b.Preds
	}
	dests := func(b *Block) []*Block {
		if backward {
			return b.Preds
		}
		return b.Succs
	}

	worklist := []*Block{start}
	queued := map[*Block]bool{start: true}
	for len(worklist) > 0 {
		b := worklist[0]
		worklist = worklist[1:]
		queued[b] = false

		var in F
		if b == start {
			in = p.Boundary()
		} else {
			first := true
			for _, src := range sources(b) {
				out, ok := res.Out[src]
				if !ok {
					continue // not yet computed; optimistic iteration
				}
				if first {
					in, first = out, false
				} else {
					in = p.Join(in, out)
				}
			}
			if first {
				continue // no source fact yet; a source will requeue us
			}
		}
		res.In[b] = in
		out := p.Transfer(b, in)
		if prev, ok := res.Out[b]; ok && p.Equal(prev, out) {
			continue
		}
		res.Out[b] = out
		for _, d := range dests(b) {
			if !queued[d] {
				queued[d] = true
				worklist = append(worklist, d)
			}
		}
	}
	return res
}

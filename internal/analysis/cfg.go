package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// This file builds the intraprocedural control-flow graph the dataflow
// rules (lockbalance, arenaescape, floatdet) run on. Blocks hold shallow
// nodes only: a plain statement appears whole, a control statement
// contributes its header expressions to the block it terminates (recorded
// in Ctrl) while its body statements land in successor blocks. Function
// literals are opaque: their bodies belong to a separate CFG built by
// whoever needs one.
//
// Panic terminates a path without an exit edge — the rules built on top
// reason about panic-free paths (DESIGN.md §13) — and defer is an ordinary
// node whose at-exit semantics are the consuming rule's business
// (lockbalance tracks deferred unlocks as a lattice component).

// Block is one basic block.
type Block struct {
	Index int
	// Nodes are the block's statements and control-header expressions in
	// execution order.
	Nodes []ast.Node
	// Ctrl is the control statement this block terminates with (an
	// *ast.IfStmt whose condition was just evaluated, the *ast.RangeStmt
	// of a loop head, ...), or nil for plain fallthrough blocks.
	Ctrl  ast.Stmt
	Succs []*Block
	Preds []*Block
}

// Returns reports whether the block ends in a return statement.
func (b *Block) Returns() bool {
	if len(b.Nodes) == 0 {
		return false
	}
	_, ok := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
	return ok
}

// Graph is the CFG of one function body. Entry and Exit are synthetic:
// Entry has no predecessors, Exit no successors. A path that panics ends
// without reaching Exit.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// BuildCFG constructs the CFG of a function body. It is purely syntactic
// (no type information), so it can run on anything go/parser accepts;
// `panic` is recognized by name.
func BuildCFG(body *ast.BlockStmt) *Graph {
	b := &cfgBuilder{
		g:      &Graph{},
		labels: map[string]*Block{},
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = &Block{}
	b.cur = b.g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
	}
	for _, pg := range b.gotos {
		if target := b.labels[pg.label]; target != nil {
			b.edge(pg.from, target)
		}
	}
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	b.prune()
	for i, blk := range b.g.Blocks {
		blk.Index = i
	}
	return b.g
}

type branchTarget struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select targets
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	g       *Graph
	cur     *Block // nil after a terminator: the path ended
	targets []branchTarget
	labels  map[string]*Block
	gotos   []pendingGoto
	// fell is the block that ended in a fallthrough, consumed by the
	// enclosing switch when it starts the next case clause.
	fell *Block
	// label pending for the next breakable statement (set by LabeledStmt).
	curLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// start ensures there is a current block, creating an unreachable one for
// dead code after a terminator.
func (b *cfgBuilder) start() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.start()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label of a labeled loop/switch/select.
func (b *cfgBuilder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The labeled statement starts its own block so gotos have a
		// landing point.
		target := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, target)
		}
		b.cur = target
		b.labels[s.Label.Name] = target
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.curLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.start()
		cond.Ctrl = s
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		head.Ctrl = s
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		b.edge(b.start(), head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		contTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			contTo = post
		}
		b.targets = append(b.targets, branchTarget{label: label, breakTo: after, continueTo: contTo})
		b.cur = body
		b.stmt(s.Body)
		b.targets = b.targets[:len(b.targets)-1]
		if b.cur != nil {
			b.edge(b.cur, contTo)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		head.Ctrl = s
		head.Nodes = append(head.Nodes, s.X)
		b.edge(b.start(), head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.targets = append(b.targets, branchTarget{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.targets = b.targets[:len(b.targets)-1]
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s, s.Body.List, label, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s, s.Body.List, label, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.start()
		head.Ctrl = s
		after := b.newBlock()
		b.targets = append(b.targets, branchTarget{label: label, breakTo: after})
		hasDefault := false
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				hasDefault = true
			}
			clause := b.newBlock()
			b.edge(head, clause)
			if cc.Comm != nil {
				clause.Nodes = append(clause.Nodes, cc.Comm)
			}
			b.cur = clause
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.targets = b.targets[:len(b.targets)-1]
		if len(s.Body.List) == 0 || hasDefault {
			// An empty select blocks forever; a default makes the head
			// itself able to continue only through a clause — both cases
			// keep flow inside the clauses, so nothing extra to do. (The
			// empty select leaves after unreachable, matching semantics.)
			_ = hasDefault
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(s)
		from := b.cur
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(s.Label, false); t != nil {
				b.edge(from, t.breakTo)
			}
		case token.CONTINUE:
			if t := b.findTarget(s.Label, true); t != nil {
				b.edge(from, t.continueTo)
			}
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: from, label: s.Label.Name})
			}
		case token.FALLTHROUGH:
			b.fell = from
		}
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if isPanicStmt(s) {
			// The path ends here; panic-free analyses never see an exit
			// edge from a panicking block.
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Decl, IncDec, Send, Go, Defer, ...
		b.add(s)
	}
}

// switchClauses builds the clause blocks of an (expression or type) switch.
func (b *cfgBuilder) switchClauses(sw ast.Stmt, clauses []ast.Stmt, label string, allowFall bool) {
	head := b.start()
	head.Ctrl = sw
	after := b.newBlock()
	b.targets = append(b.targets, branchTarget{label: label, breakTo: after})
	hasDefault := false
	var prevFell *Block
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		clause := b.newBlock()
		b.edge(head, clause)
		if prevFell != nil {
			b.edge(prevFell, clause)
			prevFell = nil
		}
		for _, e := range cc.List {
			clause.Nodes = append(clause.Nodes, e)
		}
		b.cur = clause
		b.stmtList(cc.Body)
		if allowFall && b.fell != nil {
			prevFell = b.fell
			b.fell = nil
		}
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	if !hasDefault {
		b.edge(head, after)
	}
	b.cur = after
}

// findTarget resolves a break/continue to its enclosing target.
func (b *cfgBuilder) findTarget(label *ast.Ident, needContinue bool) *branchTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needContinue && t.continueTo == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t
		}
	}
	return nil
}

// isPanicStmt reports whether the statement is a direct panic(...) call.
func isPanicStmt(s *ast.ExprStmt) bool {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// prune removes empty construction-artifact blocks: no nodes, no control
// role, and no predecessors (dead blocks that still carry statements are
// kept — they are real unreachable code). Removing one block can orphan
// another, so iterate to fixpoint.
func (b *cfgBuilder) prune() {
	for {
		removed := false
		kept := b.g.Blocks[:0]
		for _, blk := range b.g.Blocks {
			if blk != b.g.Entry && blk != b.g.Exit &&
				len(blk.Preds) == 0 && len(blk.Nodes) == 0 && blk.Ctrl == nil {
				for _, s := range blk.Succs {
					s.Preds = removeBlock(s.Preds, blk)
				}
				removed = true
				continue
			}
			kept = append(kept, blk)
		}
		b.g.Blocks = kept
		if !removed {
			return
		}
	}
}

func removeBlock(list []*Block, b *Block) []*Block {
	out := list[:0]
	for _, x := range list {
		if x != b {
			out = append(out, x)
		}
	}
	return out
}

// CheckInvariants verifies the structural CFG invariants: a single entry
// with no predecessors, an exit with no successors, mutually consistent
// edges, and dense block indices. Fuzzing (FuzzCFG) layers reachability
// checks on top for bodies whose grammar guarantees a terminating path.
func (g *Graph) CheckInvariants() error {
	if g.Entry == nil || g.Exit == nil {
		return fmt.Errorf("cfg: nil entry or exit")
	}
	if len(g.Entry.Preds) != 0 {
		return fmt.Errorf("cfg: entry has %d predecessors", len(g.Entry.Preds))
	}
	if len(g.Exit.Succs) != 0 {
		return fmt.Errorf("cfg: exit has %d successors", len(g.Exit.Succs))
	}
	index := make(map[*Block]bool, len(g.Blocks))
	for i, b := range g.Blocks {
		if b == nil {
			return fmt.Errorf("cfg: nil block at %d", i)
		}
		if b.Index != i {
			return fmt.Errorf("cfg: block %d carries index %d", i, b.Index)
		}
		if index[b] {
			return fmt.Errorf("cfg: block %d appears twice", i)
		}
		index[b] = true
	}
	if !index[g.Entry] || !index[g.Exit] {
		return fmt.Errorf("cfg: entry or exit not in Blocks")
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !index[s] {
				return fmt.Errorf("cfg: block %d has successor outside the graph", b.Index)
			}
			if !containsBlock(s.Preds, b) {
				return fmt.Errorf("cfg: edge %d->%d missing from Preds", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !index[p] {
				return fmt.Errorf("cfg: block %d has predecessor outside the graph", b.Index)
			}
			if !containsBlock(p.Succs, b) {
				return fmt.Errorf("cfg: edge %d->%d missing from Succs", p.Index, b.Index)
			}
		}
		if seen := map[*Block]bool{}; true {
			for _, s := range b.Succs {
				if seen[s] {
					return fmt.Errorf("cfg: duplicate edge %d->%d", b.Index, s.Index)
				}
				seen[s] = true
			}
		}
	}
	return nil
}

// Reachable returns the set of blocks reachable from entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func containsBlock(list []*Block, b *Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// stmtGen derives a well-typed function body from a fuzz byte stream. The
// grammar is shaped so exit stays reachable: terminators (return, panic,
// break, continue) appear only inside if-bodies, loops are always
// conditioned or range over a finite slice, and labels appear only on the
// fixed labeled-loop template. goto is covered by unit tests instead.
type stmtGen struct {
	data   []byte
	pos    int
	labels int
	accums int // emitted x-accumulating statements, checked against the CFG
}

func (g *stmtGen) next() (byte, bool) {
	if g.pos >= len(g.data) {
		return 0, false
	}
	b := g.data[g.pos]
	g.pos++
	return b, true
}

func (g *stmtGen) accum(buf *strings.Builder, pad string, kind byte) {
	if kind%2 == 0 {
		fmt.Fprintf(buf, "%sx++\n", pad)
	} else {
		fmt.Fprintf(buf, "%sx += 2\n", pad)
	}
	g.accums++
}

// body emits up to four statements at this nesting level.
func (g *stmtGen) body(buf *strings.Builder, indent, depth, loopDepth int) {
	pad := strings.Repeat("\t", indent)
	for emitted := 0; emitted < 4; emitted++ {
		b, ok := g.next()
		if !ok {
			return
		}
		kind := b % 8
		if depth >= 3 && kind >= 2 {
			kind = b % 2 // too deep: only plain statements
		}
		switch kind {
		case 0, 1:
			g.accum(buf, pad, kind)
		case 2:
			fmt.Fprintf(buf, "%sif x > 1 {\n", pad)
			g.body(buf, indent+1, depth+1, loopDepth)
			fmt.Fprintf(buf, "%s}\n", pad)
		case 3:
			// Terminator, guarded by an if so the fallthrough path lives on.
			fmt.Fprintf(buf, "%sif x < 2 {\n%s\treturn x\n%s}\n", pad, pad, pad)
		case 4:
			if loopDepth > 0 {
				fmt.Fprintf(buf, "%sif x > 3 {\n%s\tcontinue\n%s}\n", pad, pad, pad)
			} else {
				fmt.Fprintf(buf, "%sif x > 99 {\n%s\tpanic(\"fuzz\")\n%s}\n", pad, pad, pad)
			}
		case 5:
			fmt.Fprintf(buf, "%sfor i := 0; i < n; i++ {\n", pad)
			g.body(buf, indent+1, depth+1, loopDepth+1)
			g.accum(buf, pad+"\t", b) // loop bodies are never empty
			fmt.Fprintf(buf, "%s}\n", pad)
		case 6:
			fmt.Fprintf(buf, "%sfor range s {\n", pad)
			g.body(buf, indent+1, depth+1, loopDepth+1)
			g.accum(buf, pad+"\t", b)
			fmt.Fprintf(buf, "%s}\n", pad)
		case 7:
			g.labels++
			l := fmt.Sprintf("l%d", g.labels)
			fmt.Fprintf(buf, "%s%s:\n", pad, l)
			fmt.Fprintf(buf, "%sfor i := 0; i < n; i++ {\n", pad)
			fmt.Fprintf(buf, "%s\tfor j := 0; j < n; j++ {\n", pad)
			fmt.Fprintf(buf, "%s\t\tif x > 1 {\n%s\t\t\tbreak %s\n%s\t\t}\n", pad, pad, l, pad)
			g.accum(buf, pad+"\t\t", b)
			fmt.Fprintf(buf, "%s\t}\n", pad)
			fmt.Fprintf(buf, "%s}\n", pad)
		}
	}
}

// FuzzCFG builds random well-typed function bodies and checks the CFG
// invariants: single entry, consistent edges, dense indices (all via
// CheckInvariants), exit reachable, return blocks edging to exit, and no
// statement dropped or duplicated.
func FuzzCFG(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{7, 7, 7, 7})
	f.Add([]byte{5, 2, 3, 4, 6, 4, 3, 2, 5, 0, 1})
	f.Add([]byte{2, 2, 2, 2, 2, 2, 0, 3, 5, 5, 5, 6, 6, 6, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		gen := &stmtGen{data: data}
		var body strings.Builder
		gen.body(&body, 1, 0, 0)
		src := "package p\n\nfunc f() int {\n" +
			"\ts := []int{1, 2, 3}\n\tn := 3\n\tx := 0\n\t_ = s\n\t_ = n\n" +
			body.String() +
			"\treturn x\n}\n"

		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, 0)
		if err != nil {
			t.Fatalf("generator produced unparsable code: %v\n%s", err, src)
		}
		conf := types.Config{}
		if _, err := conf.Check("p", fset, []*ast.File{file}, nil); err != nil {
			t.Fatalf("generator produced ill-typed code: %v\n%s", err, src)
		}

		fd := file.Decls[0].(*ast.FuncDecl)
		g := BuildCFG(fd.Body)
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v\n%s", err, src)
		}
		reach := g.Reachable()
		if !reach[g.Exit] {
			t.Fatalf("exit unreachable (terminators are if-guarded, so it must be):\n%s", src)
		}
		for _, b := range g.Blocks {
			if b.Returns() && !containsBlock(b.Succs, g.Exit) {
				t.Fatalf("return block %d does not edge to exit:\n%s", b.Index, src)
			}
		}
		// Every emitted x-accumulation appears in exactly one block.
		got := countNodes(g, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IncDecStmt:
				id, ok := n.X.(*ast.Ident)
				return ok && id.Name == "x"
			case *ast.AssignStmt:
				if n.Tok != token.ADD_ASSIGN || len(n.Lhs) != 1 {
					return false
				}
				id, ok := n.Lhs[0].(*ast.Ident)
				return ok && id.Name == "x"
			}
			return false
		})
		if got != gen.accums {
			t.Fatalf("CFG holds %d x-accumulations, generator emitted %d:\n%s", got, gen.accums, src)
		}
	})
}

package analysis

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestJSONSchema pins the -json output shape: a versioned document whose
// diagnostics carry rule/file/line/column/message, and an empty run still
// yields an array (never null).
func TestJSONSchema(t *testing.T) {
	diags := []Diagnostic{
		{Rule: "maporder", File: "internal/assign/tpg.go", Line: 7, Column: 3, Message: "m"},
	}
	var b strings.Builder
	if err := WriteJSON(&b, diags); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if v, ok := doc["version"].(float64); !ok || v != 1 {
		t.Fatalf("version = %v, want 1", doc["version"])
	}
	list, ok := doc["diagnostics"].([]any)
	if !ok || len(list) != 1 {
		t.Fatalf("diagnostics = %v, want one entry", doc["diagnostics"])
	}
	entry, ok := list[0].(map[string]any)
	if !ok {
		t.Fatalf("diagnostic entry is %T, want object", list[0])
	}
	for field, val := range map[string]any{
		"rule": "maporder", "file": "internal/assign/tpg.go",
		"line": float64(7), "column": float64(3), "message": "m",
	} {
		if entry[field] != val {
			t.Errorf("diagnostic[%q] = %v, want %v", field, entry[field], val)
		}
	}

	b.Reset()
	if err := WriteJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"diagnostics": []`) {
		t.Fatalf("empty run must marshal diagnostics as [], got:\n%s", b.String())
	}
}

// TestRuleNamesUnique guards the registry: suppression comments address
// rules by name, so names must be distinct and non-empty, and the
// casclint pseudo-rule must stay reserved.
func TestRuleNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range AllRules() {
		if r.Name == "" || r.Name == SuppressRule {
			t.Errorf("rule has reserved or empty name %q", r.Name)
		}
		if seen[r.Name] {
			t.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Check == nil {
			t.Errorf("rule %q has no Check", r.Name)
		}
		if r.Doc == "" {
			t.Errorf("rule %q has no Doc", r.Name)
		}
	}
}

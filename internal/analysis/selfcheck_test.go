package analysis

import "testing"

// TestRepoClean is the self-check acceptance gate: the full rule suite
// over every package of the module must come out clean. Real findings in
// the tree are either fixed or carry a justified //casclint:ignore — a
// bare suppression fails here too (malformed suppressions are findings).
func TestRepoClean(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader lost part of the module", len(pkgs))
	}
	diags := Run(pkgs, Options{})
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if t.Failed() {
		t.Log("fix the finding or add `//casclint:ignore <rule> <reason>` with a real justification")
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// newFloatDet builds the floatdet rule. Float addition is not associative,
// so a float accumulation whose term order varies between runs yields
// different sums — which breaks the seed-reproducibility contract the
// solver scores depend on. maporder already flags accumulation directly
// inside a range over a map; floatdet covers the two orderings maporder
// cannot see:
//
//   - map-derived order, flow-sensitively: a slice filled by appending
//     inside a range over a map inherits the map's random order. Ranging
//     over it later and compound-assigning floats is nondeterministic —
//     unless a sort.*/slices.Sort* call re-orders the slice on every path
//     in between (that kill is what needs the CFG; maporder's sorted-check
//     is flow-insensitive).
//
//   - goroutine order: a compound float assignment inside a `go` closure
//     targeting a variable declared outside it accumulates in scheduling
//     order, mutex or not. Accumulate per-goroutine and reduce in a fixed
//     order instead.
func newFloatDet() *Rule {
	return &Rule{
		Name: "floatdet",
		Doc: "float accumulation in map-derived or goroutine order is " +
			"nondeterministic; sort first or reduce in a fixed order",
		// Everywhere floats are summed into scores: the solver stack plus
		// the sharded read path.
		Scope: []string{
			"internal/assign",
			"internal/partition",
			"internal/model",
			"internal/coop",
			"internal/incremental",
			"internal/shard",
		},
		Check: checkFloatDet,
	}
}

func checkFloatDet(p *Package, rep *Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapOrderedAccum(p, rep, fd.Body)
			checkGoroutineAccum(p, rep, fd.Body)
		}
	}
}

// floatDetFact tracks which slice variables currently hold map-ordered
// contents.
type floatDetFact map[types.Object]bool

// checkMapOrderedAccum runs the flow-sensitive half over one body.
func checkMapOrderedAccum(p *Package, rep *Reporter, body *ast.BlockStmt) {
	spans := mapRangeSpans(p, body)
	if len(spans) == 0 {
		return
	}
	g := BuildCFG(body)
	seen := map[token.Pos]bool{} // transfer reruns to fixpoint; report once
	transfer := func(b *Block, in floatDetFact) floatDetFact {
		st := make(floatDetFact, len(in))
		for k := range in {
			st[k] = true
		}
		if rs, ok := b.Ctrl.(*ast.RangeStmt); ok {
			if obj := identObj(p, ast.Unparen(rs.X)); obj != nil && st[obj] {
				reportFloatAccum(p, rep, rs, obj, seen)
			}
		}
		for _, n := range b.Nodes {
			floatDetNode(p, n, spans, st)
		}
		return st
	}
	SolveForward(g, FlowProblem[floatDetFact]{
		Boundary: func() floatDetFact { return floatDetFact{} },
		Transfer: transfer,
		Join: func(a, b floatDetFact) floatDetFact {
			out := make(floatDetFact, len(a)+len(b))
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b floatDetFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	})
}

// floatDetNode applies one statement's gen/kill effect to st.
func floatDetNode(p *Package, n ast.Node, spans []*ast.RangeStmt, st floatDetFact) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			obj := identObj(p, ast.Unparen(lhs))
			if obj == nil || i >= len(n.Rhs) {
				continue
			}
			rhs := ast.Unparen(n.Rhs[i])
			// x = append(x, ...) inside a range over a map, where x
			// outlives that range: x inherits map order.
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinCall(p, call, "append") {
				if span := enclosingMapRange(spans, n.Pos()); span != nil && obj.Pos() < span.Pos() {
					st[obj] = true
					continue
				}
				// append outside a map range keeps whatever order the
				// operands had.
				tainted := false
				for _, arg := range call.Args {
					if o := identObj(p, ast.Unparen(arg)); o != nil && st[o] {
						tainted = true
					}
				}
				if tainted {
					st[obj] = true
				} else {
					delete(st, obj)
				}
				continue
			}
			// Copies propagate; any other reassignment resets the slice.
			if o := identObj(p, rhs); o != nil && st[o] {
				st[obj] = true
			} else {
				delete(st, obj)
			}
		}
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if obj := sortedArg(p, call); obj != nil {
				delete(st, obj) // sorted: order is canonical again
			}
		}
	}
}

// reportFloatAccum flags float compound assignments inside a range over a
// map-ordered slice when the target outlives the loop.
func reportFloatAccum(p *Package, rep *Reporter, rs *ast.RangeStmt, slice types.Object, seen map[token.Pos]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || !isCompoundAssign(as.Tok) || seen[as.Pos()] {
			return true
		}
		for _, lhs := range as.Lhs {
			if !isFloatType(p.Info.TypeOf(lhs)) {
				continue
			}
			root := rootIdentObj(p, lhs)
			if root == nil || (root.Pos() >= rs.Pos() && root.Pos() < rs.End()) {
				continue // loop-local accumulators die with the loop
			}
			seen[as.Pos()] = true
			rep.Report(as, "float accumulation into %s follows map iteration order via %s; sort %s before ranging",
				root.Name(), slice.Name(), slice.Name())
		}
		return true
	})
}

// checkGoroutineAccum flags float compound assignments inside go closures
// that target variables captured from the enclosing function.
func checkGoroutineAccum(p *Package, rep *Reporter, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fl, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || !isCompoundAssign(as.Tok) {
				return true
			}
			for _, lhs := range as.Lhs {
				if !isFloatType(p.Info.TypeOf(lhs)) {
					continue
				}
				root := rootIdentObj(p, lhs)
				if root == nil || (root.Pos() >= fl.Body.Pos() && root.Pos() < fl.Body.End()) {
					continue // goroutine-local accumulator
				}
				rep.Report(as, "float accumulation into %s from a goroutine depends on scheduling order; accumulate per-goroutine and reduce in a fixed order", root.Name())
			}
			return true
		})
		return true
	})
}

// mapRangeSpans collects every range-over-map statement in the body.
func mapRangeSpans(p *Package, body *ast.BlockStmt) []*ast.RangeStmt {
	var spans []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if t := p.Info.TypeOf(rs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					spans = append(spans, rs)
				}
			}
		}
		return true
	})
	return spans
}

// enclosingMapRange returns the innermost map-range whose body spans pos.
func enclosingMapRange(spans []*ast.RangeStmt, pos token.Pos) *ast.RangeStmt {
	var best *ast.RangeStmt
	for _, rs := range spans {
		if pos >= rs.Body.Pos() && pos < rs.Body.End() {
			if best == nil || rs.Body.Pos() > best.Body.Pos() {
				best = rs
			}
		}
	}
	return best
}

// sortedArg returns the slice variable a sort.*/slices.Sort* call
// re-orders, or nil.
func sortedArg(p *Package, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := p.Info.Uses[pkgID].(*types.PkgName)
	if !ok {
		return nil
	}
	switch pn.Imported().Path() {
	case "sort", "slices":
	default:
		return nil
	}
	switch sel.Sel.Name {
	case "Sort", "SortFunc", "SortStableFunc", "Slice", "SliceStable",
		"Float64s", "Ints", "Strings", "Stable":
		return identObj(p, ast.Unparen(call.Args[0]))
	}
	return nil
}

// isCompoundAssign reports +=, -=, *=, /= — the accumulation tokens.
func isCompoundAssign(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

// isFloatType reports whether t is a floating-point basic type.
func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

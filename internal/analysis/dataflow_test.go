package analysis

import (
	"go/ast"
	"testing"
)

// assignedSet is the forward fact for the tests: the set of variable names
// that may have been assigned on some path to a point.
type assignedSet map[string]bool

func assignedNames(n ast.Node) []string {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	var names []string
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			names = append(names, id.Name)
		}
	}
	return names
}

func assignedProblem() FlowProblem[assignedSet] {
	return FlowProblem[assignedSet]{
		Boundary: func() assignedSet { return assignedSet{} },
		Transfer: func(b *Block, in assignedSet) assignedSet {
			out := make(assignedSet, len(in))
			for k := range in {
				out[k] = true
			}
			for _, n := range b.Nodes {
				for _, name := range assignedNames(n) {
					out[name] = true
				}
			}
			return out
		},
		Join: func(a, b assignedSet) assignedSet {
			out := make(assignedSet, len(a)+len(b))
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b assignedSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
}

// TestSolveForwardJoinsBranches: assignments on either arm of an if must
// both be present (may-analysis union) after the merge.
func TestSolveForwardJoinsBranches(t *testing.T) {
	g := buildTestCFG(t, `c := true
	if c {
		a := 1
		_ = a
	} else {
		b := 2
		_ = b
	}
	_ = c`)
	res := SolveForward(g, assignedProblem())
	in, ok := res.In[g.Exit]
	if !ok {
		t.Fatal("no fact computed at exit")
	}
	for _, name := range []string{"a", "b", "c"} {
		if !in[name] {
			t.Errorf("exit fact missing %q; got %v", name, in)
		}
	}
}

// TestSolveForwardLoopFixpoint: a fact generated inside a loop body must
// propagate around the back edge and stabilize.
func TestSolveForwardLoopFixpoint(t *testing.T) {
	g := buildTestCFG(t, `n := 3
	for i := 0; i < n; i++ {
		x := i
		_ = x
	}
	_ = n`)
	res := SolveForward(g, assignedProblem())
	head := blockWith(g, func(b *Block) bool { _, ok := b.Ctrl.(*ast.ForStmt); return ok })
	if head == nil {
		t.Fatal("no loop head")
	}
	// After one trip around the loop the head's input must include the
	// body-local assignment; the solver only terminates once that fact has
	// circulated.
	if in := res.In[head]; !in["x"] {
		t.Errorf("loop head input missing body-assigned x: %v", in)
	}
	if in := res.In[g.Exit]; !in["x"] || !in["n"] {
		t.Errorf("exit fact incomplete: %v", in)
	}
}

// TestSolveForwardSkipsUnreachable: blocks with no path from entry get no
// fact at all rather than a bottom/boundary fact.
func TestSolveForwardSkipsUnreachable(t *testing.T) {
	g := buildTestCFG(t, "return\nx := 1\n_ = x")
	res := SolveForward(g, assignedProblem())
	dead := blockWith(g, func(b *Block) bool {
		for _, n := range b.Nodes {
			if len(assignedNames(n)) > 0 {
				return true
			}
		}
		return false
	})
	if dead == nil {
		t.Fatal("dead block not found")
	}
	if _, ok := res.In[dead]; ok {
		t.Error("unreachable block received a forward fact")
	}
}

// reachesExit is the backward fact: true iff some panic-free path from the
// point reaches the function exit.
func reachesExitProblem() FlowProblem[bool] {
	return FlowProblem[bool]{
		Boundary: func() bool { return true },
		Transfer: func(b *Block, in bool) bool { return in },
		Join:     func(a, b bool) bool { return a || b },
		Equal:    func(a, b bool) bool { return a == b },
	}
}

// TestSolveBackwardPanicPath: the block ending in panic has no exit edge,
// so the backward solve never hands it a fact.
func TestSolveBackwardPanicPath(t *testing.T) {
	g := buildTestCFG(t, `c := true
	if c {
		panic("boom")
	}
	_ = c`)
	res := SolveBackward(g, reachesExitProblem())
	pb := blockWith(g, func(b *Block) bool {
		if len(b.Nodes) == 0 {
			return false
		}
		es, ok := b.Nodes[len(b.Nodes)-1].(*ast.ExprStmt)
		return ok && isPanicStmt(es)
	})
	if pb == nil {
		t.Fatal("no panic block")
	}
	if _, ok := res.Out[pb]; ok {
		t.Error("panic block received a backward fact; it has no path to exit")
	}
	if v, ok := res.In[g.Entry]; !ok || !v {
		t.Errorf("entry must reach exit along the non-panic arm; got %v ok=%v", v, ok)
	}
}

// TestSolveBackwardLoop: backward facts must also circulate through loops.
func TestSolveBackwardLoop(t *testing.T) {
	g := buildTestCFG(t, `x := 0
	for {
		if x > 2 {
			break
		}
		x++
	}
	_ = x`)
	res := SolveBackward(g, reachesExitProblem())
	if v, ok := res.In[g.Entry]; !ok || !v {
		t.Errorf("entry fails to reach exit through break; got %v ok=%v", v, ok)
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// newCtxProp builds the ctxprop rule, the interprocedural extension of
// ctxloop. ctxloop proves every solver loop polls its ctx; that guarantee
// is void if a caller hands the loop a context that can never be
// cancelled. ctxprop flags call sites that pass context.Background() or
// context.TODO() to a callee that loops — directly, one call level down
// (the call-graph summary), or by the Solve/SolveWarm contract — when the
// call is on a solve path. The fix is to propagate the caller's ctx,
// threading a ctx parameter through the caller first if it has none.
//
// Candidates are collected per package in Check; the verdict needs the
// whole call graph (the callee may live in another package), so findings
// are emitted from Finish.
func newCtxProp() *Rule {
	cg := NewCallGraph()
	var cands []ctxPropCand
	return &Rule{
		Name: "ctxprop",
		Doc: "looping solve-path callees must receive the caller's ctx, " +
			"not context.Background() or context.TODO()",
		Scope: []string{
			"internal/assign",
			"internal/resilience",
			"internal/shard",
			"internal/incremental",
			"internal/batch",
			"internal/server",
		},
		Check: func(p *Package, rep *Reporter) {
			cg.AddPackage(p)
			cands = append(cands, collectCtxPropCands(p)...)
		},
		Finish: func(report func(pos token.Position, format string, args ...any)) {
			for _, c := range cands {
				if !cg.LoopsWithin(c.callee) {
					continue
				}
				if c.callerCtx {
					report(c.pos, "%s loops on the solve path; pass the caller's ctx, not context.%s()",
						c.callee.Name(), c.fresh)
				} else {
					report(c.pos, "%s loops on the solve path; thread a ctx parameter through %s instead of passing context.%s()",
						c.callee.Name(), c.caller, c.fresh)
				}
			}
		},
	}
}

type ctxPropCand struct {
	pos       token.Position
	callee    *types.Func
	caller    string // enclosing function name, for the no-ctx message
	callerCtx bool   // enclosing function has a ctx parameter
	fresh     string // "Background" or "TODO"
}

// collectCtxPropCands finds calls passing a freshly minted root context to
// a callee that takes a ctx parameter. Whether the callee loops is decided
// later, against the full call graph.
func collectCtxPropCands(p *Package) []ctxPropCand {
	var cands []ctxPropCand
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			callerCtx := contextParam(p, fd) != nil
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, arg := range call.Args {
					inner, ok := ast.Unparen(arg).(*ast.CallExpr)
					if !ok {
						continue
					}
					fresh := freshContextName(p, inner)
					if fresh == "" {
						continue
					}
					callee := calleeFunc(p, call)
					if callee == nil {
						continue
					}
					cands = append(cands, ctxPropCand{
						pos:       p.Fset.Position(inner.Pos()),
						callee:    callee,
						caller:    fd.Name.Name,
						callerCtx: callerCtx,
						fresh:     fresh,
					})
				}
				return true
			})
		}
	}
	return cands
}

// freshContextName reports which root-context constructor the call is —
// "Background" or "TODO" — or "" if it is neither.
func freshContextName(p *Package, call *ast.CallExpr) string {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name
	}
	return ""
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// newMapOrder builds the maporder rule: inside the solver-stack packages,
// a range over a map must not let Go's randomized iteration order reach
// assignment-affecting state. A loop is accepted when its body only
// performs order-insensitive work — integer accumulation, writes keyed by
// the (unique) range key, deletes, loop-local scratch — or when it
// collects into slices that the enclosing function visibly sorts (the
// sorted-keys idiom). Anything else is a potential determinism leak: the
// paper's scores (Eq. 2-3) are reproduced bitwise only because no solver
// decision depends on map order.
func newMapOrder() *Rule {
	return &Rule{
		Name: "maporder",
		Doc: "range over a map whose body can leak iteration order into " +
			"solver-visible state without a sorted-keys idiom",
		Scope: []string{
			"internal/assign", "internal/partition",
			"internal/model", "internal/coop",
			// The incremental engine keys live entities by uid maps; an
			// iteration-order leak into its instance assembly would change
			// candidate order and with it every downstream solver decision.
			"internal/incremental",
		},
		Check: checkMapOrder,
	}
}

func checkMapOrder(p *Package, rep *Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				s := &mapOrderScan{p: p, fn: fd.Body, locals: map[types.Object]bool{}}
				if o := identObj(p, rs.Key); o != nil {
					s.key = o
					s.locals[o] = true
				}
				if o := identObj(p, rs.Value); o != nil {
					s.locals[o] = true
				}
				s.stmts(rs.Body.List)
				if s.bad != nil {
					// Anchor at the range statement — that is where a
					// suppression or sorted-keys rewrite belongs.
					bad := p.Fset.Position(s.bad.Pos())
					rep.Report(rs, "map iteration order may leak: %s (line %d)", s.why, bad.Line)
				}
				return true
			})
		}
	}
}

// mapOrderScan walks one range-over-map body classifying statements as
// order-insensitive or not; the first offender is recorded in bad/why.
type mapOrderScan struct {
	p      *Package
	fn     *ast.BlockStmt // enclosing function body, searched for sorts
	key    types.Object   // the range key variable, if named
	locals map[types.Object]bool
	bad    ast.Node
	why    string
}

func (s *mapOrderScan) fail(n ast.Node, why string) {
	if s.bad == nil {
		s.bad, s.why = n, why
	}
}

func (s *mapOrderScan) stmts(list []ast.Stmt) {
	for _, st := range list {
		if s.bad != nil {
			return
		}
		s.stmt(st)
	}
}

func (s *mapOrderScan) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		s.assign(st)
	case *ast.IncDecStmt:
		// ++/-- is commutative accumulation wherever the operand lives.
	case *ast.DeclStmt:
		s.declare(st)
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && isBuiltinCall(s.p, call, "delete") {
			return
		}
		s.fail(st, "call with possible side effects runs in map order")
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.stmts(st.Body.List)
		if st.Else != nil {
			s.stmt(st.Else)
		}
	case *ast.BlockStmt:
		s.stmts(st.List)
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Post != nil {
			s.stmt(st.Post)
		}
		s.stmts(st.Body.List)
	case *ast.RangeStmt:
		if st.Tok == token.DEFINE {
			if o := identObj(s.p, st.Key); o != nil {
				s.locals[o] = true
			}
			if o := identObj(s.p, st.Value); o != nil {
				s.locals[o] = true
			}
		}
		s.stmts(st.Body.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body)
			}
		}
	case *ast.BranchStmt:
		if st.Tok == token.GOTO {
			s.fail(st, "goto out of a map-order loop")
		}
	case *ast.EmptyStmt:
	default:
		// return, send, go, defer, select, labeled statements, ...
		s.fail(st, "statement kind is not order-insensitive")
	}
}

func (s *mapOrderScan) declare(st *ast.DeclStmt) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		if vs, ok := spec.(*ast.ValueSpec); ok {
			for _, name := range vs.Names {
				if o := s.p.Info.Defs[name]; o != nil {
					s.locals[o] = true
				}
			}
		}
	}
}

func (s *mapOrderScan) assign(st *ast.AssignStmt) {
	switch st.Tok {
	case token.DEFINE:
		// Loop-local scratch; dies with the iteration.
		for _, lhs := range st.Lhs {
			if o := identObj(s.p, lhs); o != nil {
				s.locals[o] = true
			}
		}
		return
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation — but only exactly so for integers;
		// float rounding makes even += depend on summation order.
		t := s.p.Info.TypeOf(st.Lhs[0])
		if t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				return
			}
		}
		s.fail(st, "non-integer compound assignment accumulates in map order (float rounding is order-dependent)")
		return
	case token.ASSIGN:
		// append-and-sort-later idiom?
		if target, ok := s.appendTarget(st); ok {
			if obj := identObj(s.p, target); obj != nil {
				if s.locals[obj] || sortedInFunc(s.p, s.fn, obj) {
					return
				}
				s.fail(st, "append in map order without a later sort of the target slice")
				return
			}
			s.fail(st, "append in map order to a non-identifier target")
			return
		}
		for _, lhs := range st.Lhs {
			if !s.safeLHS(lhs) {
				s.fail(st, "write to outer state whose value can depend on iteration order")
				return
			}
		}
		return
	default:
		s.fail(st, "assignment operator is not order-insensitive")
	}
}

// appendTarget matches `x = append(x, ...)` and returns x.
func (s *mapOrderScan) appendTarget(st *ast.AssignStmt) (ast.Expr, bool) {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return nil, false
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltinCall(s.p, call, "append") || len(call.Args) == 0 {
		return nil, false
	}
	return st.Lhs[0], true
}

// safeLHS accepts assignment targets that cannot observe iteration order:
// loop-locals, and container writes indexed by the unique range key.
func (s *mapOrderScan) safeLHS(lhs ast.Expr) bool {
	if o := identObj(s.p, lhs); o != nil && s.locals[o] {
		return true
	}
	// Unwrap selectors/derefs down to an index expression: m[k].f = v,
	// (*m[k]).f = v, s[k] = v are all keyed by k.
	for {
		switch e := lhs.(type) {
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			return s.key != nil && mentionsObj(s.p, e.Index, s.key)
		default:
			return false
		}
	}
}

// sortedInFunc reports whether fn contains a sort.* or slices.Sort* call
// with obj among its arguments — the "collect then sort" idiom that
// restores determinism after an unordered collection phase.
func sortedInFunc(p *Package, fn *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(p, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		switch callee.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Strings", "Float64s",
			"SortFunc", "SortStableFunc":
		default:
			return true
		}
		for _, arg := range call.Args {
			if mentionsObj(p, arg, obj) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

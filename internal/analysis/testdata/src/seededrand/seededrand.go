// Package seededrand is a casc-lint golden fixture.
package seededrand

import (
	"math/rand"
	"time"
)

func leakGlobalRand() int {
	return rand.Intn(10) // want seededrand
}

func leakGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want seededrand
}

func okSeededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func okInjectedRand(r *rand.Rand) int {
	return r.Intn(10)
}

func leakWallClock() time.Time {
	return time.Now() // want seededrand
}

func leakSince(start time.Time) time.Duration {
	return time.Since(start) // want seededrand
}

func okInjectedClock(clock func() time.Time) time.Time {
	return clock()
}

// Package arenaescape is a casc-lint golden fixture for the arena
// ownership contract: memory drawn from an Arena is valid only until the
// next solve, so it must not be returned across the exported API, stored
// in heap state, sent on channels, or captured by goroutines — unless it
// went through Clone first.
package arenaescape

// Arena is the fixture's stand-in for assign.Arena: the rule keys on the
// type name.
type Arena struct {
	ints []int
}

func NewArena() *Arena { return &Arena{} }

func (a *Arena) intsFor(n int) []int {
	if cap(a.ints) < n {
		a.ints = make([]int, n) // ok: the arena owns its own buffers
	}
	return a.ints[:n]
}

// Ints hands out arena memory by contract — Arena's own accessors are
// exempt from the exported-return check.
func (a *Arena) Ints(n int) []int { return a.intsFor(n) }

// Clone is the sanctioned escape hatch.
func Clone(v []int) []int {
	out := make([]int, len(v))
	copy(out, v)
	return out
}

// --- returns across the exported API ---

func Leak(a *Arena) []int {
	buf := a.intsFor(4)
	return buf // want arenaescape
}

func CloneOK(a *Arena) []int {
	return Clone(a.intsFor(4)) // ok: cloned before crossing the API
}

func grab(a *Arena) []int { return a.intsFor(8) } // ok: unexported

func Reexport(a *Arena) []int {
	return grab(a) // want arenaescape
}

// --- heap stores ---

type cache struct{ last []int }

func (c *cache) Stash(a *Arena) {
	c.last = a.intsFor(4) // want arenaescape
}

var sticky []int

func StoreGlobal(a *Arena) {
	sticky = a.intsFor(2) // want arenaescape
}

func SumOK(a *Arena) int {
	rows := make([][]int, 0, 2)
	rows = append(rows, a.intsFor(2)) // ok: rows is frame-local
	total := 0
	for _, row := range rows {
		for _, v := range row {
			total += v
		}
	}
	return total // ok: an int carries no reference into the arena
}

// --- one-level interprocedural: a callee that stores its parameter ---

type sink struct{ kept []int }

func (s *sink) keep(v []int) { s.kept = v }

func Deposit(a *Arena, s *sink) {
	s.keep(a.intsFor(2)) // want arenaescape
}

// --- channels and goroutines ---

func Send(a *Arena, ch chan []int) {
	ch <- a.intsFor(2) // want arenaescape
}

func Spawn(a *Arena) {
	buf := a.intsFor(2)
	go func() { // want arenaescape
		_ = buf[0]
	}()
}

// --- the Solve contract: results are arena-owned only when an arena is
// wired up in the calling frame ---

type Solver struct{ arena *Arena }

func (s *Solver) SetArena(a *Arena) { s.arena = a }

func (s *Solver) Solve(in []int) []int {
	if s.arena == nil {
		return append([]int(nil), in...)
	}
	buf := s.arena.intsFor(len(in))
	copy(buf, in)
	return buf // ok: Solve results are arena-owned by contract
}

func UseThrowaway(in []int) []int {
	s := &Solver{}
	return s.Solve(in) // ok: no arena wired in this frame
}

func UseWired(in []int) []int {
	s := &Solver{}
	s.SetArena(NewArena())
	out := s.Solve(in)
	return out // want arenaescape
}

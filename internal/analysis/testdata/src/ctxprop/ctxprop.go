// Package ctxprop is a casc-lint golden fixture for context propagation:
// a callee that loops on the solve path must receive the caller's ctx, not
// a freshly minted root context that can never be cancelled.
package ctxprop

import "context"

type Solver struct{}

// Solve loops by contract — handing it context.Background() severs the
// cancellation chain ctxloop guarantees inside it.
func (s *Solver) Solve(ctx context.Context, in []int) int {
	n := 0
	for range in {
		if ctx.Err() != nil {
			return n
		}
		n++
	}
	return n
}

// Spin loops directly.
func Spin(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		total += i
	}
	return total
}

// wraps has no loop of its own but calls one — the one-level summary.
func wraps(ctx context.Context, n int) int {
	return Spin(ctx, n)
}

// Flat never loops; a fresh context is harmless here.
func Flat(ctx context.Context, a int) int {
	_ = ctx
	return a + 1
}

func DeadSolve(ctx context.Context, in []int) int {
	s := &Solver{}
	return s.Solve(context.Background(), in) // want ctxprop
}

func NoCtxCaller(in []int) int {
	return Spin(context.TODO(), len(in)) // want ctxprop
}

func OneLevel(n int) int {
	return wraps(context.Background(), n) // want ctxprop
}

func PropagatesOK(ctx context.Context, in []int) int {
	return new(Solver).Solve(ctx, in) // ok: caller's ctx flows through
}

func FlatOK() int {
	return Flat(context.Background(), 1) // ok: callee never loops
}

// Package hotalloc is a casc-lint golden fixture.
package hotalloc

import "context"

type item struct{ id int }

func consume(...int) {}

type PerIterMake struct{}

// Solve allocates a scratch slice per candidate: flagged.
func (PerIterMake) Solve(ctx context.Context, items []item) {
	for range items {
		buf := make([]int, 8) // want hotalloc
		consume(buf...)
	}
}

type Hoisted struct{}

// Solve hoists the scratch outside the loop: compliant.
func (Hoisted) Solve(ctx context.Context, items []item) {
	buf := make([]int, 0, 8)
	for _, it := range items {
		buf = append(buf, it.id)
	}
	consume(buf...)
}

type NilAppend struct{}

// Solve copies into a fresh slice per iteration via append-to-nil, in the
// bare and the converted spelling: flagged. Appending to an existing
// buffer variable is not (that is the reuse idiom the rule pushes toward).
func (NilAppend) Solve(ctx context.Context, items []item) {
	ids := []int{1, 2, 3}
	buf := make([]int, 0, 8)
	for range items {
		cp := append([]int(nil), ids...) // want hotalloc
		buf = append(buf[:0], ids...)
		consume(cp...)
		consume(buf...)
	}
}

type MapPerIter struct{}

// Solve builds a membership map per iteration: flagged.
func (MapPerIter) Solve(ctx context.Context, items []item) {
	for _, it := range items {
		seen := map[int]bool{it.id: true} // want hotalloc
		if seen[it.id] {
			consume(it.id)
		}
	}
}

type InnerSolve struct{}

// solve (the unexported hot-path twin) is covered too, including
// allocations inside closures running per iteration.
func (InnerSolve) solve(items []item) {
	for range items {
		f := func() []int {
			return make([]int, 4) // want hotalloc
		}
		consume(f()...)
	}
}

type Suppressed struct{}

// Solve carries a justified suppression: clean.
func (Suppressed) Solve(ctx context.Context, items []item) {
	for i := range items {
		if i == 0 {
			consume(make([]int, 1)...) //casclint:ignore hotalloc runs once, on the first iteration only
		}
	}
}

type NotSolve struct{}

// Prepare is not a Solve path; per-iteration allocation is out of scope.
func (NotSolve) Prepare(items []item) {
	for range items {
		consume(make([]int, 2)...)
	}
}

// Package floatdet is a casc-lint golden fixture for order-dependent
// float accumulation: float addition is not associative, so summing in
// map-derived or goroutine-scheduling order breaks seed reproducibility.
package floatdet

import "sort"

// MapOrderedSum accumulates over a slice that inherited map iteration
// order and was never sorted.
func MapOrderedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	total := 0.0
	for _, k := range keys {
		total += m[k] // want floatdet
	}
	return total
}

// SortedSum re-canonicalizes the order first — clean.
func SortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k] // ok: sorted above
	}
	return total
}

// HalfSorted sorts on one branch only; the unsorted path survives the
// CFG join, so the accumulation is still order-dependent.
func HalfSorted(m map[string]float64, canonical bool) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	if canonical {
		sort.Strings(keys)
	}
	total := 0.0
	for _, k := range keys {
		total += m[k] // want floatdet
	}
	return total
}

// IntOrderOK: integer addition is associative; map-derived order cannot
// change the sum.
func IntOrderOK(m map[string]int) int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	total := 0
	for _, k := range keys {
		total += m[k] // ok: int accumulation is order-independent
	}
	return total
}

// GoSum accumulates into a captured float from goroutines — the sum
// depends on scheduling order even though every term arrives.
func GoSum(vals []float64) float64 {
	total := 0.0
	done := make(chan struct{})
	for _, v := range vals {
		v := v
		go func() {
			total += v // want floatdet
			done <- struct{}{}
		}()
	}
	for range vals {
		<-done
	}
	return total
}

// GoLocalOK accumulates into a goroutine-local variable — deterministic
// per goroutine.
func GoLocalOK(vals []float64, out chan float64) {
	go func() {
		local := 0.0
		for _, v := range vals {
			local += v // ok: goroutine-local accumulator
		}
		out <- local
	}()
}

// Package maporder is a casc-lint golden fixture. Lines marked
// `// want <rule>` must produce exactly that diagnostic.
package maporder

import "sort"

func leakAppendValues(m map[string]int) []int {
	var out []int
	for _, v := range m { // want maporder
		out = append(out, v)
	}
	return out
}

func okAppendThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func okSortSlice(m map[int]float64) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func okIntegerAccumulation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func leakFloatAccumulation(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want maporder
		total += v
	}
	return total
}

func okKeyedWrites(m map[int]int, out []int) {
	for k, v := range m {
		out[k] = v * 2
	}
}

func okCountsAndDeletes(m, other map[int]int) int {
	n := 0
	for k := range m {
		n++
		delete(other, k)
	}
	return n
}

func leakLastWriteWins(m map[int]int) int {
	var last int
	for _, v := range m { // want maporder
		last = v
	}
	return last
}

func leakOrderDependentMax(m map[int]float64) int {
	bestK, best := -1, -1.0
	for k, v := range m { // want maporder
		if v > best {
			best, bestK = v, k
		}
	}
	return bestK
}

func leakCallInBody(m map[int]int, sink func(int)) {
	for k := range m { // want maporder
		sink(k)
	}
}

func leakReturnInLoop(m map[int]int) int {
	for k := range m { // want maporder
		return k
	}
	return -1
}

func okLocalScratch(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		s := 0
		for _, v := range vs {
			s += v
		}
		n += s
	}
	return n
}

func leakAppendNoSort(m map[int]int) []int {
	var ks []int
	for k := range m { // want maporder
		ks = append(ks, k)
	}
	return ks
}

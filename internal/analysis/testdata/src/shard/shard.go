// Package shard is a casc-lint golden fixture mirroring the sharded
// platform tier's obligations under the repo-wide invariants: shard
// Solve paths observe cancellation, time reaches shard code through an
// injectable clock value, and per-shard metric families are declared
// constants.
package shard

import (
	"context"
	"time"

	"casc/internal/metrics"
)

const fixtureSolves = "casc_fixture_shard_solves_total"

type subInstance struct{ workers []int }

func solveComponent(subInstance) {}

type Cluster struct{ shards []subInstance }

// Solve fans per-shard sub-instances out without ever observing ctx:
// a stuck shard would wedge the whole cluster round.
func (c *Cluster) Solve(ctx context.Context) {
	for _, sub := range c.shards { // want ctxloop
		solveComponent(sub)
	}
}

type PollingCluster struct{ shards []subInstance }

// Solve polls ctx between shard solves: compliant.
func (c *PollingCluster) Solve(ctx context.Context) error {
	for _, sub := range c.shards {
		if err := ctx.Err(); err != nil {
			return err
		}
		solveComponent(sub)
	}
	return nil
}

// leakWallClock stamps arrivals straight from the wall clock, breaking
// seed reproducibility of sharded rounds.
func leakWallClock() float64 {
	return float64(time.Now().UnixNano()) // want seededrand
}

// now is the injectable-clock idiom the real shard package uses: a
// value assignment, swappable in tests, is compliant.
var now = time.Now

func okInjectedClock() time.Time {
	return now()
}

func registerShardMetrics(reg *metrics.Registry) {
	reg.Counter(fixtureSolves, "Declared constant: compliant.").Inc()
	reg.Gauge("casc_fixture_shard_open_tasks", "Inline literal.").Set(0) // want metricname
}

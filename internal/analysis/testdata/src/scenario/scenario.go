// Package scenario is a casc-lint golden fixture mirroring the scenario
// engine's obligations under the repo-wide invariants (DESIGN.md §14):
// the counterfactual alternate-solve loop observes cancellation, and the
// event schedule draws only from injected seeded sources — an ambient
// rand call or clock read would make a recorded run unreplayable.
package scenario

import (
	"context"
	"math/rand"
	"time"
)

type alternate struct{ name string }

func solveAlternate(alternate) float64 { return 0 }

type Tracer struct {
	alts []alternate
}

// Solve scores every alternate without ever observing ctx: a budgeted
// round could not abort the counterfactual sweep.
func (t *Tracer) Solve(ctx context.Context) float64 {
	var best float64
	for _, a := range t.alts { // want ctxloop
		if s := solveAlternate(a); s > best {
			best = s
		}
	}
	return best
}

type PollingTracer struct{ alts []alternate }

// Solve polls ctx between alternate solves: compliant.
func (t *PollingTracer) Solve(ctx context.Context) (float64, error) {
	var best float64
	for _, a := range t.alts {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if s := solveAlternate(a); s > best {
			best = s
		}
	}
	return best, nil
}

// burstJitter perturbs a flash-crowd round off the process-global
// source: two runs of the same spec would script different bursts.
func burstJitter() int {
	return rand.Intn(4) // want seededrand
}

// arrivalStamp reads the wall clock instead of deriving the arrival time
// from the round counter, so a replay could never reproduce it.
func arrivalStamp() time.Time {
	return time.Now() // want seededrand
}

// seededArrivals draws the round's count from an injected generator, the
// idiom the contract requires: compliant.
func seededArrivals(rng *rand.Rand, rate float64) int {
	return int(rate * rng.Float64() * 2)
}

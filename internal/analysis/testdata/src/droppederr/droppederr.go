// Package droppederr is a casc-lint golden fixture.
package droppederr

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func pairResult() (int, error) { return 0, nil }

func dropStatement() {
	mayFail() // want droppederr
}

func dropPair() {
	pairResult() // want droppederr
}

func okExplicitDiscard() {
	_ = mayFail()
}

func okHandled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

func okFmtExempt() {
	fmt.Println("fmt is exempt")
	fmt.Fprintf(os.Stderr, "also exempt\n")
}

func okBuilderExempt(b *strings.Builder) {
	b.WriteString("never fails")
}

func dropInGoroutine() {
	go mayFail() // want droppederr
}

func dropDeferredNonClose() {
	defer mayFail() // want droppederr
}

func okDeferredClose(f *os.File) {
	defer f.Close()
}

func dropEagerClose(f *os.File) {
	f.Close() // want droppederr
}

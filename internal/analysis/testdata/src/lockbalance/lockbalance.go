// Package lockbalance is a casc-lint golden fixture for lock/unlock
// balance over the CFG: every acquisition must be released on every
// panic-free path out of the function.
package lockbalance

import "sync"

type registry struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items map[string]int
}

// --- balanced: the shapes the real tree uses ---

func (r *registry) GetDefer(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.items[k]
}

func (r *registry) PutManual(k string, v int) {
	r.mu.Lock()
	r.items[k] = v
	r.mu.Unlock()
}

func (r *registry) SwapDeferClosure(k string, v int) int {
	r.mu.Lock()
	defer func() {
		r.mu.Unlock()
	}()
	old := r.items[k]
	r.items[k] = v
	return old
}

func (r *registry) BothPaths(k string) (int, bool) {
	r.mu.Lock()
	v, ok := r.items[k]
	if !ok {
		r.mu.Unlock()
		return 0, false
	}
	r.mu.Unlock()
	return v, true
}

// --- leaks: a path returns with the lock held ---

func (r *registry) LeakyGet(k string) (int, bool) {
	r.mu.Lock() // want lockbalance
	v, ok := r.items[k]
	if !ok {
		return 0, false
	}
	r.mu.Unlock()
	return v, true
}

func (r *registry) LeakyRead(k string) int {
	r.rw.RLock() // want lockbalance
	if len(r.items) == 0 {
		return -1
	}
	v := r.items[k]
	r.rw.RUnlock()
	return v
}

func (r *registry) BranchLeak(k string, flush bool) {
	r.mu.Lock() // want lockbalance
	if flush {
		r.items = map[string]int{}
		r.mu.Unlock()
		return
	}
	delete(r.items, k)
}

// --- self-deadlock: write-locking a mutex that may already be held ---

func (r *registry) DoubleLock() {
	r.mu.Lock()
	r.mu.Lock() // want lockbalance
	r.mu.Unlock()
	r.mu.Unlock()
}

// --- underflow: unlocking before any lock, in a function that does lock ---

func (r *registry) UnlockFirst() {
	r.mu.Unlock() // want lockbalance
	r.mu.Lock()
	r.mu.Unlock()
}

// --- out of intraprocedural scope: skipped, not flagged ---

// unlockOnly releases a lock its caller acquired.
func (r *registry) unlockOnly() {
	r.mu.Unlock() // ok: caller-held helper
}

// TryPut uses conditional acquisition, which the balance lattice excludes.
func (r *registry) TryPut(k string, v int) bool {
	if !r.mu.TryLock() {
		return false
	}
	r.items[k] = v
	r.mu.Unlock()
	return true
}

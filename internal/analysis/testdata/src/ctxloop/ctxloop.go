// Package ctxloop is a casc-lint golden fixture.
package ctxloop

import "context"

type item struct{ score float64 }

func work(item) {}

type NoCtx struct{}

// Solve lacks a context parameter entirely.
func (NoCtx) Solve(items []item) { // want ctxloop
	for _, it := range items {
		work(it)
	}
}

type Blind struct{}

// Solve takes ctx but its candidate loop never observes it.
func (Blind) Solve(ctx context.Context, items []item) {
	for _, it := range items { // want ctxloop
		work(it)
	}
}

type Polling struct{}

// Solve polls ctx.Err in its loop: compliant.
func (Polling) Solve(ctx context.Context, items []item) error {
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return err
		}
		work(it)
	}
	return nil
}

type Threading struct{}

func workCtx(ctx context.Context, it item) {}

// Solve passes ctx into the loop body: compliant — the callee observes it.
func (Threading) Solve(ctx context.Context, items []item) {
	for _, it := range items {
		workCtx(ctx, it)
	}
}

type Light struct{}

// Solve's loop does no heavy work (no calls, no nested loops): exempt.
func (Light) Solve(ctx context.Context, xs []int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return sum
}

type Nested struct{}

// Solve's outer loop observes ctx; the nested loop inside is covered.
func (Nested) Solve(ctx context.Context, items [][]item) {
	for _, row := range items {
		if ctx.Err() != nil {
			return
		}
		for _, it := range row {
			work(it)
		}
	}
}

// unexported solve is not an entry point.
func solve(items []item) {
	for _, it := range items {
		work(it)
	}
}

// Package suppress is a casc-lint golden fixture for the inline
// suppression syntax.
package suppress

func mayFail() error { return nil }

func suppressedOwnLine() {
	//casclint:ignore droppederr fixture demonstrates an own-line suppression
	mayFail()
}

func suppressedTrailing() {
	mayFail() //casclint:ignore droppederr fixture demonstrates a trailing suppression
}

func wrongRuleSuppression() {
	//casclint:ignore maporder suppressing the wrong rule does not help
	mayFail() // want droppederr
}

func missingReason() {
	//casclint:ignore droppederr
	mayFail() // want droppederr
}

func unsuppressed() {
	mayFail() // want droppederr
}

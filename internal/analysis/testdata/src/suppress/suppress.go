// Package suppress is a casc-lint golden fixture for the inline
// suppression syntax.
package suppress

func mayFail() error { return nil }

func suppressedOwnLine() {
	//casclint:ignore droppederr fixture demonstrates an own-line suppression
	mayFail()
}

func suppressedTrailing() {
	mayFail() //casclint:ignore droppederr fixture demonstrates a trailing suppression
}

func wrongRuleSuppression() {
	//casclint:ignore maporder suppressing the wrong rule does not help
	mayFail() // want droppederr
}

func missingReason() {
	//casclint:ignore droppederr
	mayFail() // want droppederr
}

func unsuppressed() {
	mayFail() // want droppederr
}

func unusedSuppression() {
	//casclint:ignore droppederr nothing below can fail
	_ = 1 + 1
}

func unknownRuleSuppression() {
	//casclint:ignore nosuchrule suppressing a rule the suite does not have
	mayFail() // want droppederr
}

func multiRuleSuppression() {
	//casclint:ignore droppederr,maporder one comment may cover several rules
	mayFail()
}

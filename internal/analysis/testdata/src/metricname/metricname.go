// Package metricname is a casc-lint golden fixture.
package metricname

import "casc/internal/metrics"

const (
	goodName = "casc_fixture_ops_total"
	badShape = "fixture-ops-total"
	// dupA and dupB declare the same family name.
	dupA = "casc_fixture_dup_total"
	dupB = "casc_fixture_dup_total" // want metricname
)

func register(reg *metrics.Registry, dynamic string) {
	reg.Counter(goodName, "Well-named counter.").Inc()
	reg.Counter(badShape, "Badly shaped name.").Inc()                 // want metricname
	reg.Counter("casc_fixture_inline_total", "Inline literal.").Inc() // want metricname
	reg.Gauge(dynamic, "Non-constant name.").Set(1)                   // want metricname
	reg.Histogram(goodName+"_seconds", "Derived constant is fine.", nil)
	reg.Counter(dupA, "Registering a duplicated name is fine here; the duplicate is flagged at its declaration.").Inc()
}

// Package incremental is a casc-lint golden fixture mirroring the
// persistent engine's obligations under the repo-wide invariants: the
// per-component re-solve loop observes cancellation, randomness and round
// time are injected rather than ambient, and uid-map iteration order
// never reaches the assembled instance.
package incremental

import (
	"context"
	"math/rand"
	"sort"
	"time"
)

type component struct{ workers []int }

func resolve(component) {}

type Engine struct {
	comps []component
	dirty map[int]bool
}

// Solve re-solves the dirty components without ever observing ctx: a
// round-budget overrun would not be noticed until the full sweep ends.
func (e *Engine) Solve(ctx context.Context) {
	for _, c := range e.comps { // want ctxloop
		resolve(c)
	}
}

type PollingEngine struct{ comps []component }

// Solve polls ctx between component re-solves: compliant.
func (e *PollingEngine) Solve(ctx context.Context) error {
	for _, c := range e.comps {
		if err := ctx.Err(); err != nil {
			return err
		}
		resolve(c)
	}
	return nil
}

// prewarmJitter staggers predictor refreshes off the process-global
// source, so replaying a round would draw different offsets.
func prewarmJitter() int {
	return rand.Intn(8) // want seededrand
}

// roundStamp reads the wall clock instead of the injected round time.
func roundStamp() time.Time {
	return time.Now() // want seededrand
}

// liveUIDs rebuilds the live-entity list in map order: candidate order —
// and every solver decision downstream of it — would inherit the leak.
func (e *Engine) liveUIDs() []int {
	var live []int
	for uid := range e.dirty { // want maporder
		live = append(live, uid)
	}
	return live
}

// sortedUIDs collects then sorts, the idiom that restores determinism.
func (e *Engine) sortedUIDs() []int {
	var live []int
	for uid := range e.dirty {
		live = append(live, uid)
	}
	sort.Ints(live)
	return live
}

package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// metricNameRE is the required shape of every metric family name.
var metricNameRE = regexp.MustCompile(`^casc_[a-z0-9_]+$`)

// newMetricName builds the metricname rule: every registration on the
// metrics registry (Counter/Gauge/Histogram) must name its family through
// a declared constant matching casc_[a-z0-9_]+, and no two constants may
// declare the same family name — duplicate names would silently merge
// unrelated series in the exposition. The generic registry package itself
// is exempt (it registers caller-supplied names).
func newMetricName() *Rule {
	type declSite struct {
		pos token.Position
	}
	consts := make(map[string][]declSite)
	rule := &Rule{
		Name: "metricname",
		Doc: "metrics registrations must use casc_[a-z0-9_]+ named " +
			"constants, unique across the repository",
	}
	rule.Check = func(p *Package, rep *Reporter) {
		if strings.HasSuffix(p.Path, "internal/metrics") {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p, call)
				if fn == nil || !isRegistration(fn) || len(call.Args) == 0 {
					return true
				}
				arg := call.Args[0]
				tv, ok := p.Info.Types[arg]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					rep.Report(arg, "metric name must be a declared string constant")
					return true
				}
				name := constant.StringVal(tv.Value)
				if !metricNameRE.MatchString(name) {
					rep.Report(arg, "metric name %q does not match casc_[a-z0-9_]+", name)
				}
				if _, lit := ast.Unparen(arg).(*ast.BasicLit); lit {
					rep.Report(arg, "metric name %q must be a named constant, not an inline literal", name)
				}
				return true
			})
		}
		// Collect package-level casc_* string constants for the
		// cross-package uniqueness check in Finish.
		scope := p.Pkg.Scope()
		for _, nm := range scope.Names() {
			c, ok := scope.Lookup(nm).(*types.Const)
			if !ok || c.Val().Kind() != constant.String {
				continue
			}
			if v := constant.StringVal(c.Val()); strings.HasPrefix(v, "casc_") {
				consts[v] = append(consts[v], declSite{pos: p.Fset.Position(c.Pos())})
			}
		}
	}
	rule.Finish = func(report func(pos token.Position, format string, args ...any)) {
		names := make([]string, 0, len(consts))
		for v := range consts {
			names = append(names, v)
		}
		sort.Strings(names)
		for _, v := range names {
			sites := consts[v]
			if len(sites) < 2 {
				continue
			}
			sort.Slice(sites, func(i, j int) bool {
				a, b := sites[i].pos, sites[j].pos
				if a.Filename != b.Filename {
					return a.Filename < b.Filename
				}
				return a.Line < b.Line
			})
			for _, s := range sites[1:] {
				report(s.pos, "metric name %q already declared at %s:%d", v,
					sites[0].pos.Filename, sites[0].pos.Line)
			}
		}
	}
	return rule
}

// isRegistration matches the Counter/Gauge/Histogram methods of the
// metrics registry.
func isRegistration(fn *types.Func) bool {
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	recv := namedRecv(fn)
	return strings.HasSuffix(recv, "internal/metrics.Registry")
}

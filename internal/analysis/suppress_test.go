package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSuppressPkg builds a Package just rich enough for
// applySuppressions: parsed files with comments, no type information.
func parseSuppressPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "supp.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{Path: "casc/internal/assign", Fset: fset, Files: []*ast.File{file}}
}

// srcLine returns the 1-based line of the first source line containing sub.
func srcLine(t *testing.T, src, sub string) int {
	t.Helper()
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, sub) {
			return i + 1
		}
	}
	t.Fatalf("no line contains %q", sub)
	return 0
}

const suppressSrc = `package s

func a() int {
	return 1 //casclint:ignore maporder trailing comment still covers this line
}

//casclint:ignore	seededrand	tab-separated fields parse the same
func b() {}

//casclint:ignore maporder,seededrand one comment may cover several rules
func c() {}

//casclint:ignore maporder
func d() {}

//casclint:ignore maporder this one covers nothing and must be reported
func e() {}

//casclint:ignore ctxloop rule did not run, so unused cannot be decided
func g() {}
`

func suppressDiag(rule string, line int) Diagnostic {
	return Diagnostic{Rule: rule, File: "supp.go", Line: line, Column: 2, Message: "x"}
}

func TestSuppressionParsingEdgeCases(t *testing.T) {
	p := parseSuppressPkg(t, suppressSrc)
	ran := map[*Package]map[string]bool{p: {"maporder": true, "seededrand": true}}
	survivor := suppressDiag("maporder", srcLine(t, suppressSrc, "func d()"))
	survivor.Message = "survives"
	in := []Diagnostic{
		suppressDiag("maporder", srcLine(t, suppressSrc, "trailing comment")), // same line as the comment
		suppressDiag("seededrand", srcLine(t, suppressSrc, "func b()")),       // line below tab-separated comment
		suppressDiag("maporder", srcLine(t, suppressSrc, "func c()")),         // multi-rule comment, first rule
		suppressDiag("seededrand", srcLine(t, suppressSrc, "func c()")),       // multi-rule comment, second rule
		survivor, // under a malformed (reasonless) comment: must NOT be suppressed
	}
	out := applySuppressions([]*Package{p}, in, ran)

	byRule := map[string][]Diagnostic{}
	for _, d := range out {
		byRule[d.Rule] = append(byRule[d.Rule], d)
	}
	if got := byRule["seededrand"]; len(got) != 0 {
		t.Errorf("seededrand diagnostics survived suppression: %v", got)
	}
	if got := byRule["maporder"]; len(got) != 1 || got[0].Message != "survives" {
		t.Errorf("malformed suppression must not suppress; maporder survivors = %v", got)
	}

	malformedLine := 0
	for i, line := range strings.Split(suppressSrc, "\n") {
		if strings.TrimSpace(line) == "//casclint:ignore maporder" {
			malformedLine = i + 1
		}
	}
	if malformedLine == 0 {
		t.Fatal("self-check: malformed comment line not found")
	}
	wantCasclint := map[int]string{
		malformedLine: "malformed",
		srcLine(t, suppressSrc, "covers nothing"): "unused suppression",
	}
	gotCasclint := map[int]string{}
	for _, d := range byRule[SuppressRule] {
		gotCasclint[d.Line] = d.Message
	}
	for line, frag := range wantCasclint {
		if !strings.Contains(gotCasclint[line], frag) {
			t.Errorf("line %d: want casclint finding containing %q, got %q", line, frag, gotCasclint[line])
		}
	}
	// The ctxloop suppression's rule never ran on this package: it neither
	// suppresses anything nor counts as unused.
	ctxLine := srcLine(t, suppressSrc, "rule did not run")
	if msg, ok := gotCasclint[ctxLine]; ok {
		t.Errorf("suppression for a rule that did not run was reported: %q", msg)
	}
	if len(byRule[SuppressRule]) != len(wantCasclint) {
		t.Errorf("casclint findings = %v, want exactly %d", byRule[SuppressRule], len(wantCasclint))
	}
}

func TestSuppressionUnknownRule(t *testing.T) {
	src := "package s\n\n//casclint:ignore nosuchrule reason text here\nfunc a() {}\n"
	p := parseSuppressPkg(t, src)
	out := applySuppressions([]*Package{p}, nil, map[*Package]map[string]bool{})
	if len(out) != 1 || out[0].Rule != SuppressRule ||
		!strings.Contains(out[0].Message, `unknown rule "nosuchrule"`) {
		t.Errorf("unknown-rule suppression not reported; got %v", out)
	}
}

// TestSuppressionMultiRulePartialUse: with a two-rule comment where only
// one rule fires, the fired rule's record is used but the idle rule's
// record is unused — and must be reported.
func TestSuppressionMultiRulePartialUse(t *testing.T) {
	src := "package s\n\n//casclint:ignore maporder,seededrand only maporder fires below\nfunc a() {}\n"
	p := parseSuppressPkg(t, src)
	ran := map[*Package]map[string]bool{p: {"maporder": true, "seededrand": true}}
	in := []Diagnostic{suppressDiag("maporder", srcLine(t, src, "func a()"))}
	out := applySuppressions([]*Package{p}, in, ran)
	if len(out) != 1 || out[0].Rule != SuppressRule ||
		!strings.Contains(out[0].Message, "seededrand does not fire here") {
		t.Errorf("idle rule of a multi-rule suppression must be reported unused; got %v", out)
	}
}

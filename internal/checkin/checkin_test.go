package checkin

import (
	"context"
	"sort"
	"testing"

	"casc/internal/assign"
	"casc/internal/stats"
)

func smallConfig() Config {
	return Config{
		NumUsers:       300,
		NumVenues:      80,
		VisitsPerUser:  15,
		RevisitBias:    0.6,
		Neighbourhoods: 4,
		Seed:           5,
	}
}

func TestGenerateShape(t *testing.T) {
	tr := Generate(smallConfig())
	if tr.NumUsers() != 300 || tr.NumVenues() != 80 {
		t.Fatalf("shape: %d users, %d venues", tr.NumUsers(), tr.NumVenues())
	}
	if len(tr.Visits) == 0 {
		t.Fatal("no visits generated")
	}
	lastT := -1.0
	for _, v := range tr.Visits {
		if v.User < 0 || v.User >= 300 || v.Venue < 0 || v.Venue >= 80 {
			t.Fatalf("visit out of range: %+v", v)
		}
		if v.Time < lastT {
			t.Fatal("visits not sorted by time")
		}
		lastT = v.Time
	}
	for _, loc := range tr.VenueLocs {
		if loc.X < 0 || loc.X > 1 || loc.Y < 0 || loc.Y > 1 {
			t.Fatalf("venue outside unit square: %v", loc)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(smallConfig()), Generate(smallConfig())
	if len(a.Visits) != len(b.Visits) {
		t.Fatal("same seed, different visit counts")
	}
	for i := range a.Visits {
		if a.Visits[i] != b.Visits[i] {
			t.Fatal("same seed, different visits")
		}
	}
}

func TestGeneratePanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no users":   {NumVenues: 1, VisitsPerUser: 1},
		"badeplore":  {NumUsers: 1, NumVenues: 1, VisitsPerUser: 1, RevisitBias: 1.0},
		"no_centers": {NumUsers: 1, NumVenues: 0, VisitsPerUser: 1},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			Generate(cfg)
		})
	}
}

func TestVenuePopularityIsHeavyTailed(t *testing.T) {
	tr := Generate(smallConfig())
	pops := append([]int(nil), tr.venuePopularity...)
	sort.Sort(sort.Reverse(sort.IntSlice(pops)))
	total := 0
	for _, p := range pops {
		total += p
	}
	top10 := 0
	for _, p := range pops[:8] { // top 10% of 80 venues
		top10 += p
	}
	if frac := float64(top10) / float64(total); frac < 0.2 {
		t.Errorf("top-10%% venues hold only %.2f of visits; tail not heavy", frac)
	}
}

func TestRevisitBiasConcentratesUsers(t *testing.T) {
	// With strong revisit bias a user's visits concentrate on few venues.
	biased := Generate(Config{NumUsers: 200, NumVenues: 80, VisitsPerUser: 20,
		RevisitBias: 0.8, Neighbourhoods: 4, Seed: 9})
	explore := Generate(Config{NumUsers: 200, NumVenues: 80, VisitsPerUser: 20,
		RevisitBias: 0.0, Neighbourhoods: 4, Seed: 9})
	distinct := func(tr *Trace) float64 {
		var sum, visits float64
		for u := 0; u < tr.NumUsers(); u++ {
			sum += float64(len(tr.userVenueCounts[u]))
			for _, c := range tr.userVenueCounts[u] {
				visits += float64(c)
			}
		}
		return sum / visits // distinct venues per visit
	}
	if distinct(biased) >= distinct(explore) {
		t.Errorf("revisit bias did not concentrate visits: %.3f vs %.3f",
			distinct(biased), distinct(explore))
	}
}

func TestQualityProperties(t *testing.T) {
	tr := Generate(smallConfig())
	q := tr.Quality()
	if q.NumWorkers() != 300 {
		t.Fatalf("quality covers %d", q.NumWorkers())
	}
	var hi float64
	for i := 0; i < 80; i++ {
		for k := i + 1; k < 80; k++ {
			v := q.Quality(i, k)
			if v < 0.25-1e-12 || v > 0.75+1e-12 {
				t.Fatalf("quality(%d,%d)=%v outside [0.25,0.75]", i, k, v)
			}
			if v != q.Quality(k, i) {
				t.Fatalf("asymmetric at (%d,%d)", i, k)
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi <= 0.25 {
		t.Error("no co-visiting pairs found; generator broken")
	}
	if q.Quality(3, 3) != 0 {
		t.Error("diagonal nonzero")
	}
}

func TestSampleSolvable(t *testing.T) {
	tr := Generate(smallConfig())
	r := stats.NewRNG(2)
	p := DefaultSample()
	p.NumWorkers, p.NumTasks = 150, 60
	in, err := tr.Sample(r, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.NumValidPairs() == 0 {
		t.Fatal("no valid pairs in check-in sample")
	}
	a, err := assign.NewGT(assign.GTOptions{}).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(in); err != nil {
		t.Fatal(err)
	}
	if a.TotalScore(in) <= 0 {
		t.Error("GT scored zero on check-in sample")
	}
	if ub := assign.Upper(in); a.TotalScore(in) > ub+1e-9 {
		t.Error("score above UPPER")
	}
}

func TestSampleErrors(t *testing.T) {
	tr := Generate(smallConfig())
	r := stats.NewRNG(3)
	p := DefaultSample()
	p.NumWorkers = 100000
	if _, err := tr.Sample(r, p, 0); err == nil {
		t.Error("oversample accepted")
	}
	p = DefaultSample()
	p.NumWorkers, p.NumTasks = 50, 20
	p.B = 1
	if _, err := tr.Sample(r, p, 0); err == nil {
		t.Error("B=1 accepted")
	}
}

// Package checkin synthesizes location-based-social-network check-in
// traces in the style of Gowalla and Foursquare, which §VI-A of the paper
// mentions mapping into the unit square. A trace is a sequence of
// (user, venue, time) visits with the empirical regularities of LBSN data:
// power-law venue popularity, per-user home locations with
// distance-decayed venue choice, and strong revisit bias. From a trace the
// package derives CA-SC batches the same way the Meetup pipeline does —
// workers at their most recent check-in, tasks at popular venues, and a
// co-visit cooperation quality (users who frequent the same venues are
// assumed to coordinate well, the check-in analogue of the Meetup
// co-group Jaccard).
package checkin

import (
	"fmt"
	"math/rand"
	"sort"

	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/model"
	"casc/internal/stats"
)

// Config sizes the synthetic trace.
type Config struct {
	NumUsers  int
	NumVenues int
	// VisitsPerUser is the mean number of check-ins per user.
	VisitsPerUser int
	// RevisitBias is the probability a check-in repeats one of the user's
	// previous venues instead of exploring (Gowalla-like traces show
	// ~0.5-0.7).
	RevisitBias float64
	// Neighbourhoods is the number of geographic clusters.
	Neighbourhoods int
	Seed           int64
}

// Default is a city-scale trace comparable to the meetup substitute.
func Default() Config {
	return Config{
		NumUsers:       3000,
		NumVenues:      600,
		VisitsPerUser:  20,
		RevisitBias:    0.6,
		Neighbourhoods: 8,
		Seed:           7,
	}
}

// Visit is one check-in.
type Visit struct {
	User  int
	Venue int
	Time  float64
}

// Trace is a generated check-in dataset.
type Trace struct {
	VenueLocs []geo.Point
	HomeLocs  []geo.Point
	Visits    []Visit // sorted by Time
	// userVenueCounts[u] maps venue -> visit count.
	userVenueCounts []map[int]int
	// lastLoc[u] is the user's most recent check-in location.
	lastLoc []geo.Point
	// venuePopularity[v] counts total visits.
	venuePopularity []int
}

// Generate builds a trace. It panics on non-positive sizes.
func Generate(cfg Config) *Trace {
	if cfg.NumUsers <= 0 || cfg.NumVenues <= 0 || cfg.VisitsPerUser <= 0 {
		panic(fmt.Sprintf("checkin: bad config %+v", cfg))
	}
	if cfg.RevisitBias < 0 || cfg.RevisitBias >= 1 {
		panic("checkin: revisit bias outside [0,1)")
	}
	if cfg.Neighbourhoods <= 0 {
		cfg.Neighbourhoods = 1
	}
	r := stats.NewRNG(cfg.Seed)

	tr := &Trace{
		VenueLocs:       make([]geo.Point, cfg.NumVenues),
		HomeLocs:        make([]geo.Point, cfg.NumUsers),
		userVenueCounts: make([]map[int]int, cfg.NumUsers),
		lastLoc:         make([]geo.Point, cfg.NumUsers),
		venuePopularity: make([]int, cfg.NumVenues),
	}
	centers := make([]geo.Point, cfg.Neighbourhoods)
	for i := range centers {
		centers[i] = geo.Pt(0.15+0.7*r.Float64(), 0.15+0.7*r.Float64())
	}
	near := func(c geo.Point, sigma float64) geo.Point {
		x, y := stats.GaussianPoint(r, c.X, c.Y, sigma)
		return geo.Pt(x, y)
	}
	for v := range tr.VenueLocs {
		tr.VenueLocs[v] = near(centers[r.Intn(len(centers))], 0.05)
	}
	// Base venue attractiveness: zipf sizes reused as popularity weights.
	weights := stats.ZipfSizes(r, cfg.NumVenues, 1.1, 50)

	for u := range tr.HomeLocs {
		home := near(centers[r.Intn(len(centers))], 0.08)
		tr.HomeLocs[u] = home
		tr.lastLoc[u] = home
		tr.userVenueCounts[u] = make(map[int]int)
	}

	// Per-user candidate venues weighted by popularity / (distance decay).
	// Precompute a modest candidate list per user (nearest ~40 venues by
	// weighted attractiveness) to keep generation linear-ish.
	type scored struct {
		v int
		w float64
	}
	totalVisits := cfg.NumUsers * cfg.VisitsPerUser
	timeStep := 1.0 / float64(totalVisits)
	now := 0.0
	var visits []Visit
	cand := make([]scored, cfg.NumVenues)
	for u := 0; u < cfg.NumUsers; u++ {
		home := tr.HomeLocs[u]
		for v := range tr.VenueLocs {
			d := home.Dist(tr.VenueLocs[v])
			cand[v] = scored{v: v, w: float64(weights[v]) / (0.01 + d*d)}
		}
		sort.Slice(cand, func(a, b int) bool { return cand[a].w > cand[b].w })
		top := cand
		if len(top) > 40 {
			top = top[:40]
		}
		var totalW float64
		for _, c := range top {
			totalW += c.w
		}
		nVisits := 1 + r.Intn(2*cfg.VisitsPerUser) // mean ≈ VisitsPerUser
		var history []int
		for i := 0; i < nVisits; i++ {
			var venue int
			if len(history) > 0 && r.Float64() < cfg.RevisitBias {
				venue = history[r.Intn(len(history))]
			} else {
				x := r.Float64() * totalW
				venue = top[len(top)-1].v
				for _, c := range top {
					if x < c.w {
						venue = c.v
						break
					}
					x -= c.w
				}
			}
			history = append(history, venue)
			visits = append(visits, Visit{User: u, Venue: venue, Time: now})
			now += timeStep
			tr.userVenueCounts[u][venue]++
			tr.venuePopularity[venue]++
			tr.lastLoc[u] = tr.VenueLocs[venue]
		}
	}
	sort.Slice(visits, func(a, b int) bool { return visits[a].Time < visits[b].Time })
	tr.Visits = visits
	return tr
}

// NumUsers returns the user count.
func (tr *Trace) NumUsers() int { return len(tr.HomeLocs) }

// NumVenues returns the venue count.
func (tr *Trace) NumVenues() int { return len(tr.VenueLocs) }

// Quality returns the co-visit cooperation model: the paper's Equation 1
// with α = ω = 0.5 and the historical term replaced by the cosine-like
// overlap of visit-count vectors — users who frequent the same venues
// score high. Values lie in [0.25, 0.75] like the Meetup model.
func (tr *Trace) Quality() coop.Model {
	return coop.NewCached(&covisit{tr: tr})
}

type covisit struct{ tr *Trace }

func (c *covisit) NumWorkers() int { return c.tr.NumUsers() }

func (c *covisit) Quality(i, k int) float64 {
	if i == k {
		return 0
	}
	a, b := c.tr.userVenueCounts[i], c.tr.userVenueCounts[k]
	if len(a) > len(b) {
		a, b = b, a
	}
	var inter, totA, totB int
	for v, ca := range a {
		totA += ca
		if cb, ok := b[v]; ok {
			if ca < cb {
				inter += ca
			} else {
				inter += cb
			}
		}
	}
	for _, cb := range b {
		totB += cb
	}
	union := totA + totB - inter
	frac := 0.0
	if union > 0 {
		frac = float64(inter) / float64(union)
	}
	return 0.25 + 0.5*frac
}

// SampleParams configure one CA-SC batch drawn from the trace.
type SampleParams struct {
	NumWorkers    int
	NumTasks      int
	Capacity      int
	B             int
	SpeedRange    [2]float64
	RadiusRange   [2]float64
	RemainingTime float64
}

// DefaultSample mirrors Table II's bold defaults.
func DefaultSample() SampleParams {
	return SampleParams{
		NumWorkers:    1000,
		NumTasks:      500,
		Capacity:      5,
		B:             3,
		SpeedRange:    [2]float64{0.01, 0.05},
		RadiusRange:   [2]float64{0.05, 0.10},
		RemainingTime: 3,
	}
}

// Sample draws a CA-SC batch: m users become workers at their most recent
// check-in locations; n tasks appear at venues sampled proportionally to
// popularity (spatial tasks cluster where people actually go).
func (tr *Trace) Sample(r *rand.Rand, p SampleParams, now float64) (*model.Instance, error) {
	if p.NumWorkers > tr.NumUsers() {
		return nil, fmt.Errorf("checkin: want %d workers, trace has %d users", p.NumWorkers, tr.NumUsers())
	}
	if p.B < 2 || p.Capacity < p.B {
		return nil, fmt.Errorf("checkin: bad B=%d capacity=%d", p.B, p.Capacity)
	}
	users := stats.SampleWithoutReplacement(r, tr.NumUsers(), p.NumWorkers)
	in := &model.Instance{B: p.B, Now: now}
	for _, u := range users {
		in.Workers = append(in.Workers, model.Worker{
			ID:     u,
			Loc:    tr.lastLoc[u],
			Speed:  stats.TruncGaussian(r, p.SpeedRange[0], p.SpeedRange[1], stats.PaperSigma),
			Radius: stats.TruncGaussian(r, p.RadiusRange[0], p.RadiusRange[1], stats.PaperSigma),
			Arrive: now,
		})
	}
	// Popularity-weighted venue sampling (with replacement across distinct
	// tasks: two tasks can share a hot venue, as in real platforms).
	var totalPop int
	for _, c := range tr.venuePopularity {
		totalPop += c
	}
	for j := 0; j < p.NumTasks; j++ {
		venue := 0
		if totalPop > 0 {
			x := r.Intn(totalPop)
			for v, c := range tr.venuePopularity {
				if x < c {
					venue = v
					break
				}
				x -= c
			}
		} else {
			venue = r.Intn(tr.NumVenues())
		}
		in.Tasks = append(in.Tasks, model.Task{
			ID:       j,
			Loc:      tr.VenueLocs[venue],
			Capacity: p.Capacity,
			Created:  now,
			Deadline: now + p.RemainingTime,
		})
	}
	in.Quality = coop.NewSubset(tr.Quality(), users)
	in.BuildCandidates(model.IndexRTree)
	return in, nil
}

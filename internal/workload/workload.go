// Package workload generates the synthetic CA-SC workloads of §VI-A/§VI-C:
// worker and task locations in [0,1]^2 drawn from the Uniform (UNIF) or
// Skewed (SKEW) distribution (80% in a Gaussian cluster centered at
// (0.5,0.5) with σ = 0.2, the rest uniform), worker speeds and working
// radii drawn from the paper's truncated Gaussian mapped onto a range, and
// the full Table II parameter grid with its bold default values.
package workload

import (
	"fmt"

	"casc/internal/coop"
	"casc/internal/geo"
	"casc/internal/model"
	"casc/internal/stats"
)

// Dist selects the location distribution.
type Dist int

const (
	// UNIF draws locations uniformly over the unit square.
	UNIF Dist = iota
	// SKEW draws 80% of locations from N((0.5,0.5), 0.2^2) clamped to the
	// unit square and the rest uniformly.
	SKEW
)

// String implements fmt.Stringer.
func (d Dist) String() string {
	switch d {
	case UNIF:
		return "UNIF"
	case SKEW:
		return "SKEW"
	default:
		return fmt.Sprintf("Dist(%d)", int(d))
	}
}

// Params are the experiment knobs of Table II. Ranges expressed in the
// paper as percentages of the data space are stored here as fractions
// (e.g. [1,5]% → [0.01, 0.05]).
type Params struct {
	NumWorkers    int        // m: workers per batch
	NumTasks      int        // n: tasks per batch
	Capacity      int        // a_j for every task
	B             int        // least required workers per task
	SpeedRange    [2]float64 // [v−, v+]
	RadiusRange   [2]float64 // [r−, r+]
	RemainingTime float64    // τ_j − ϕ at generation time
	Dist          Dist
	Seed          int64
}

// Default returns the bold defaults of Table II: a_j = 5, [v−,v+] = [1,5]%,
// [r−,r+] = [5,10]%, τ = 3, m = 1000, n = 500, B = 3, UNIF locations.
func Default() Params {
	return Params{
		NumWorkers:    1000,
		NumTasks:      500,
		Capacity:      5,
		B:             3,
		SpeedRange:    [2]float64{0.01, 0.05},
		RadiusRange:   [2]float64{0.05, 0.10},
		RemainingTime: 3,
		Dist:          UNIF,
		Seed:          1,
	}
}

// Table II sweep values (defaults in Default).
var (
	// CapacityValues is the Fig. 2 sweep.
	CapacityValues = []int{3, 4, 5, 6}
	// SpeedRanges is the Fig. 3 sweep ([v−,v+] as fractions).
	SpeedRanges = [][2]float64{{0.01, 0.03}, {0.01, 0.05}, {0.01, 0.08}, {0.01, 0.10}}
	// RadiusRanges is the Fig. 4 sweep.
	RadiusRanges = [][2]float64{{0.01, 0.05}, {0.05, 0.10}, {0.10, 0.15}, {0.15, 0.20}}
	// RemainingTimes is the Fig. 5 sweep.
	RemainingTimes = []float64{1, 2, 3, 4, 5}
	// EpsilonValues is the Fig. 6 sweep for GT+TSI.
	EpsilonValues = []float64{0, 0.01, 0.03, 0.05, 0.08}
	// WorkerCounts is the Fig. 7 sweep.
	WorkerCounts = []int{500, 800, 1000, 2000, 5000}
	// TaskCounts is the Fig. 8 sweep.
	TaskCounts = []int{100, 300, 500, 800, 1000}
	// DefaultRounds is R, the number of batch rounds per experiment.
	DefaultRounds = 10
)

// Validate rejects parameter combinations the generator cannot honour.
func (p Params) Validate() error {
	if p.NumWorkers < 0 || p.NumTasks < 0 {
		return fmt.Errorf("workload: negative sizes m=%d n=%d", p.NumWorkers, p.NumTasks)
	}
	if p.B < 2 {
		return fmt.Errorf("workload: B=%d, want ≥ 2 (groups need pairs)", p.B)
	}
	if p.Capacity < p.B {
		return fmt.Errorf("workload: capacity %d below B=%d", p.Capacity, p.B)
	}
	if p.SpeedRange[0] > p.SpeedRange[1] || p.SpeedRange[0] < 0 {
		return fmt.Errorf("workload: bad speed range %v", p.SpeedRange)
	}
	if p.RadiusRange[0] > p.RadiusRange[1] || p.RadiusRange[0] < 0 {
		return fmt.Errorf("workload: bad radius range %v", p.RadiusRange)
	}
	if p.RemainingTime <= 0 {
		return fmt.Errorf("workload: remaining time %v, want > 0", p.RemainingTime)
	}
	return nil
}

// location draws one point per the configured distribution.
func (p Params) location(r interface {
	Float64() float64
	NormFloat64() float64
}) geo.Point {
	if p.Dist == SKEW && r.Float64() < 0.8 {
		x, y := clamp01(0.5+r.NormFloat64()*0.2), clamp01(0.5+r.NormFloat64()*0.2)
		return geo.Pt(x, y)
	}
	return geo.Pt(r.Float64(), r.Float64())
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Workers generates m workers present at time now.
func (p Params) Workers(now float64) []model.Worker {
	r := stats.NewRNG(p.Seed)
	out := make([]model.Worker, p.NumWorkers)
	for i := range out {
		out[i] = model.Worker{
			ID:     i,
			Loc:    p.location(r),
			Speed:  stats.TruncGaussian(r, p.SpeedRange[0], p.SpeedRange[1], stats.PaperSigma),
			Radius: stats.TruncGaussian(r, p.RadiusRange[0], p.RadiusRange[1], stats.PaperSigma),
			Arrive: now,
		}
	}
	return out
}

// Tasks generates n tasks created at time now with deadline now + τ.
func (p Params) Tasks(now float64) []model.Task {
	r := stats.NewRNG(p.Seed + 1)
	out := make([]model.Task, p.NumTasks)
	for j := range out {
		out[j] = model.Task{
			ID:       j,
			Loc:      p.location(r),
			Capacity: p.Capacity,
			Created:  now,
			Deadline: now + p.RemainingTime,
		}
	}
	return out
}

// Instance generates one complete batch instance at time now with candidate
// sets built over the given spatial index. Pairwise qualities come from the
// deterministic synthetic model seeded from Params.Seed.
func (p Params) Instance(now float64, kind model.IndexKind) (*model.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	in := &model.Instance{
		Workers: p.Workers(now),
		Tasks:   p.Tasks(now),
		Quality: coop.Synthetic{N: p.NumWorkers, Seed: uint64(p.Seed)},
		B:       p.B,
		Now:     now,
	}
	in.BuildCandidates(kind)
	return in, nil
}

// WithSeed returns a copy with the given seed; used to derive independent
// rounds from one base configuration.
func (p Params) WithSeed(seed int64) Params {
	p.Seed = seed
	return p
}

package workload

import (
	"math"
	"testing"

	"casc/internal/model"
)

func TestDefaultMatchesTableII(t *testing.T) {
	p := Default()
	if p.NumWorkers != 1000 || p.NumTasks != 500 || p.Capacity != 5 || p.B != 3 {
		t.Errorf("defaults m/n/a/B = %d/%d/%d/%d", p.NumWorkers, p.NumTasks, p.Capacity, p.B)
	}
	if p.SpeedRange != [2]float64{0.01, 0.05} || p.RadiusRange != [2]float64{0.05, 0.10} {
		t.Errorf("defaults speed/radius = %v/%v", p.SpeedRange, p.RadiusRange)
	}
	if p.RemainingTime != 3 {
		t.Errorf("default τ = %v", p.RemainingTime)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := map[string]func(*Params){
		"negative m":     func(p *Params) { p.NumWorkers = -1 },
		"B below 2":      func(p *Params) { p.B = 1 },
		"cap below B":    func(p *Params) { p.Capacity = 2 },
		"inverted speed": func(p *Params) { p.SpeedRange = [2]float64{0.5, 0.1} },
		"neg radius":     func(p *Params) { p.RadiusRange = [2]float64{-0.1, 0.1} },
		"zero tau":       func(p *Params) { p.RemainingTime = 0 },
	}
	for name, mutate := range cases {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestWorkersWithinRanges(t *testing.T) {
	p := Default()
	p.NumWorkers = 2000
	ws := p.Workers(5)
	if len(ws) != 2000 {
		t.Fatalf("generated %d workers", len(ws))
	}
	for _, w := range ws {
		if w.Speed < p.SpeedRange[0] || w.Speed > p.SpeedRange[1] {
			t.Fatalf("speed %v outside %v", w.Speed, p.SpeedRange)
		}
		if w.Radius < p.RadiusRange[0] || w.Radius > p.RadiusRange[1] {
			t.Fatalf("radius %v outside %v", w.Radius, p.RadiusRange)
		}
		if w.Loc.X < 0 || w.Loc.X > 1 || w.Loc.Y < 0 || w.Loc.Y > 1 {
			t.Fatalf("location %v outside unit square", w.Loc)
		}
		if w.Arrive != 5 {
			t.Fatalf("arrive %v, want 5", w.Arrive)
		}
	}
}

func TestTasksDeadlines(t *testing.T) {
	p := Default()
	p.RemainingTime = 2
	ts := p.Tasks(10)
	if len(ts) != p.NumTasks {
		t.Fatalf("generated %d tasks", len(ts))
	}
	for _, task := range ts {
		if task.Created != 10 || task.Deadline != 12 {
			t.Fatalf("created/deadline = %v/%v", task.Created, task.Deadline)
		}
		if task.Capacity != p.Capacity {
			t.Fatalf("capacity %d", task.Capacity)
		}
	}
}

func TestSkewClusters(t *testing.T) {
	p := Default()
	p.Dist = SKEW
	p.NumWorkers = 5000
	ws := p.Workers(0)
	// At least ~70% of points should fall within 0.45 of the center (80%
	// are Gaussian with σ=0.2; P(|N|<2.25σ) per axis is high).
	near := 0
	for _, w := range ws {
		if math.Hypot(w.Loc.X-0.5, w.Loc.Y-0.5) < 0.45 {
			near++
		}
	}
	if frac := float64(near) / float64(len(ws)); frac < 0.7 {
		t.Errorf("only %.2f of SKEW points near center", frac)
	}
	// UNIF should be much flatter: expected fraction within r=0.45 of
	// center is π·0.45² ≈ 0.64 minus corner clipping.
	p.Dist = UNIF
	wsU := p.Workers(0)
	nearU := 0
	for _, w := range wsU {
		if math.Hypot(w.Loc.X-0.5, w.Loc.Y-0.5) < 0.45 {
			nearU++
		}
	}
	if near <= nearU {
		t.Errorf("SKEW (%d) not more clustered than UNIF (%d)", near, nearU)
	}
}

func TestInstanceDeterministicPerSeed(t *testing.T) {
	p := Default()
	p.NumWorkers, p.NumTasks = 100, 50
	a, err := p.Instance(0, model.IndexRTree)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Instance(0, model.IndexRTree)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Workers {
		if a.Workers[i] != b.Workers[i] {
			t.Fatal("same seed produced different workers")
		}
	}
	c, err := p.WithSeed(99).Instance(0, model.IndexRTree)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Workers {
		if a.Workers[i].Loc != c.Workers[i].Loc {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workers")
	}
}

func TestInstanceHasReasonableConnectivity(t *testing.T) {
	p := Default()
	p.NumWorkers, p.NumTasks = 500, 100
	in, err := p.Instance(0, model.IndexRTree)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.NumValidPairs() == 0 {
		t.Fatal("default workload produced no valid pairs")
	}
	// With r ∈ [5,10]% the mean candidate count should be a few percent of n.
	avg := float64(in.NumValidPairs()) / float64(p.NumWorkers)
	if avg < 0.5 || avg > 50 {
		t.Errorf("average candidates per worker = %v, implausible", avg)
	}
}

func TestInstanceRejectsInvalidParams(t *testing.T) {
	p := Default()
	p.B = 0
	if _, err := p.Instance(0, model.IndexRTree); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestDistString(t *testing.T) {
	if UNIF.String() != "UNIF" || SKEW.String() != "SKEW" {
		t.Error("Dist.String wrong")
	}
	if Dist(9).String() == "" {
		t.Error("unknown dist should still print")
	}
}

func TestSweepValuesMatchPaper(t *testing.T) {
	if len(CapacityValues) != 4 || CapacityValues[0] != 3 || CapacityValues[3] != 6 {
		t.Error("capacity sweep wrong")
	}
	if len(EpsilonValues) != 5 || EpsilonValues[4] != 0.08 {
		t.Error("epsilon sweep wrong")
	}
	if len(WorkerCounts) != 5 || WorkerCounts[4] != 5000 {
		t.Error("worker sweep wrong")
	}
	if len(TaskCounts) != 5 || TaskCounts[4] != 1000 {
		t.Error("task sweep wrong")
	}
	if DefaultRounds != 10 {
		t.Error("R != 10")
	}
}

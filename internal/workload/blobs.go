package workload

import (
	"casc/internal/geo"
	"casc/internal/model"
	"casc/internal/stats"
)

// BlobParams generates the shard load-test workload: a grid of isolated
// Gaussian "blob" sites whose spacing exceeds twice the worker radius, so
// the validity graph decomposes into one component per site. A band of hot
// rows at the bottom of the square concentrates workers but starves them
// of tasks, producing heavy best-response contention confined to one
// region — the spatial skew the sharded tier exists to isolate. Per-worker
// best-response cost is uniform (every worker reaches only its own site's
// tasks); what varies is how many game rounds a site needs to converge,
// which is exactly the coupling a monolithic solve pays for globally and a
// sharded solve pays for only in the hot region.
type BlobParams struct {
	NumWorkers int // m: total workers
	// GridSize is the number of blob sites per axis (default 50).
	GridSize int
	// HotRows is how many of the bottom site rows are contention-heavy
	// (default 6).
	HotRows int
	// HotFrac is the fraction of workers packed into the hot rows
	// (default 0.2).
	HotFrac float64
	// Sigma is the per-site location jitter (default 0.004); Radius the
	// uniform worker radius (default 0.006). Defaults keep sites isolated:
	// site spacing is 1/GridSize = 0.02 > 2*(3σ-ish reach + radius) holds
	// in practice because jitter is clamped to ±Spacing/4 around the site.
	Sigma  float64
	Radius float64
	// Speed is the uniform worker speed (default 0.05).
	Speed float64
	// HotTasks and LightTasks are tasks per hot / light site (defaults 2
	// and 10): hot sites have far fewer slots than workers.
	HotTasks, LightTasks int
	// Capacity is a_j for every task (default 5); B the platform quorum
	// (default 3).
	Capacity int
	B        int
	Seed     int64
}

// WithBlobDefaults fills zero fields with the load-test defaults.
func (p BlobParams) WithBlobDefaults() BlobParams {
	if p.NumWorkers == 0 {
		p.NumWorkers = 100000
	}
	if p.GridSize == 0 {
		p.GridSize = 50
	}
	if p.HotRows == 0 {
		p.HotRows = 6
	}
	if p.HotFrac == 0 {
		p.HotFrac = 0.2
	}
	if p.Sigma == 0 {
		p.Sigma = 0.004
	}
	if p.Radius == 0 {
		p.Radius = 0.006
	}
	if p.Speed == 0 {
		p.Speed = 0.05
	}
	if p.HotTasks == 0 {
		p.HotTasks = 2
	}
	if p.LightTasks == 0 {
		p.LightTasks = 10
	}
	if p.Capacity == 0 {
		p.Capacity = 5
	}
	if p.B == 0 {
		p.B = 3
	}
	return p
}

// BlobWorkload is one generated round: worker and task specs ready to be
// registered on a platform or cluster (IDs are assigned at registration).
// Task Deadline is relative remaining time; callers add the platform clock.
type BlobWorkload struct {
	Workers []model.Worker
	Tasks   []model.Task
}

// sites returns the blob site centers in row-major order (bottom rows
// first) along with how many of them are hot, so callers can split the
// slice into hot and light sites.
func (p BlobParams) sites() (all []geo.Point, hot int) {
	spacing := 1.0 / float64(p.GridSize)
	for iy := 0; iy < p.GridSize; iy++ {
		for ix := 0; ix < p.GridSize; ix++ {
			all = append(all, geo.Pt(spacing/2+spacing*float64(ix), spacing/2+spacing*float64(iy)))
		}
	}
	return all, p.HotRows * p.GridSize
}

// jitter draws a clamped Gaussian offset around a site center so blobs
// never bleed into a neighboring site's reach.
func (p BlobParams) jitter(rng interface{ NormFloat64() float64 }, c geo.Point) geo.Point {
	spacing := 1.0 / float64(p.GridSize)
	lim := spacing / 4
	dx := rng.NormFloat64() * p.Sigma
	dy := rng.NormFloat64() * p.Sigma
	if dx > lim {
		dx = lim
	} else if dx < -lim {
		dx = -lim
	}
	if dy > lim {
		dy = lim
	} else if dy < -lim {
		dy = -lim
	}
	return geo.Pt(c.X+dx, c.Y+dy)
}

// GenerateBlobs produces one round of the load-test workload: hot-row
// workers round-robin over the hot sites, the rest round-robin over the
// light sites, and each site gets its HotTasks/LightTasks task quota.
func GenerateBlobs(p BlobParams) BlobWorkload {
	p = p.WithBlobDefaults()
	rng := stats.NewRNG(p.Seed)
	all, hotCount := p.sites()
	hotSites, lightSites := all[:hotCount], all[hotCount:]

	var w BlobWorkload
	mHot := int(float64(p.NumWorkers) * p.HotFrac)
	for i := 0; i < p.NumWorkers; i++ {
		var site geo.Point
		if i < mHot {
			site = hotSites[i%len(hotSites)]
		} else {
			site = lightSites[(i-mHot)%len(lightSites)]
		}
		w.Workers = append(w.Workers, model.Worker{
			Loc: p.jitter(rng, site), Speed: p.Speed, Radius: p.Radius,
		})
	}
	addTasks := func(sites []geo.Point, perSite int) {
		for _, site := range sites {
			for j := 0; j < perSite; j++ {
				w.Tasks = append(w.Tasks, model.Task{
					Loc: p.jitter(rng, site), Capacity: p.Capacity, Deadline: 1.5,
				})
			}
		}
	}
	addTasks(hotSites, p.HotTasks)
	addTasks(lightSites, p.LightTasks)
	return w
}

package workload

import (
	"casc/internal/geo"
	"casc/internal/model"
	"casc/internal/stats"
)

// ChurnParams generates the incremental-engine benchmark workload: a grid
// of isolated sites (spacing exceeds any worker's reach, so the validity
// graph decomposes into one component per site) where most sites are
// permanently stuck — one worker short of the quorum B, holding a handful
// of long-deadline tasks that can never dispatch — and a small set of
// active sites receives a fresh quorum of workers and a short-deadline
// task every round. Round over round, only the active sites' components
// change: a from-scratch solver rebuilds and re-solves every site each
// round, while the incremental engine re-solves just the active ones and
// carries the stuck majority forward.
type ChurnParams struct {
	// GridSize is the number of sites per axis (default 24; keep it below
	// 50 so site spacing stays above twice the worker radius).
	GridSize int
	// StuckWorkers is how many workers idle at every site (default B-1, so
	// stuck sites can never gather a quorum: every best-response move gains
	// zero and the site never dispatches and never changes).
	StuckWorkers int
	// StuckTasks is how many immortal tasks every site holds (default 10).
	// Together with StuckWorkers it sets how much work a from-scratch
	// solver re-spends per stuck site each round.
	StuckTasks int
	// ActiveEvery makes one site in every ActiveEvery sites active
	// (default 50).
	ActiveEvery int
	// ActiveWorkers is how many fresh workers arrive at each active site
	// per round (default B, so a dispatch-sized cohort lands every round
	// and keeps the component churning and contended).
	ActiveWorkers int
	// Sigma is the per-site location jitter and Radius the uniform worker
	// radius; defaults (0.002, 0.01) keep every site internally connected
	// and sites mutually isolated at GridSize < 50.
	Sigma  float64
	Radius float64
	// Speed is the uniform worker speed (default 0.05).
	Speed float64
	// Capacity is a_j for every task and B the platform quorum (defaults
	// 10 and 10: stuck sites idle one worker short, active sites dispatch
	// as soon as a fresh quorum lands).
	Capacity int
	B        int
	// StuckHorizon is the stuck tasks' relative deadline (default 1e6 —
	// effectively immortal); ActiveHorizon the active tasks' (default 2.5,
	// so undispatched active tasks expire and exercise that path).
	StuckHorizon  float64
	ActiveHorizon float64
	Seed          int64
}

// WithChurnDefaults fills zero fields with the benchmark defaults.
func (p ChurnParams) WithChurnDefaults() ChurnParams {
	if p.GridSize == 0 {
		p.GridSize = 24
	}
	if p.Capacity == 0 {
		p.Capacity = 10
	}
	if p.B == 0 {
		p.B = 10
	}
	if p.StuckWorkers == 0 {
		p.StuckWorkers = p.B - 1
	}
	if p.StuckTasks == 0 {
		p.StuckTasks = 10
	}
	if p.ActiveEvery == 0 {
		p.ActiveEvery = 50
	}
	if p.ActiveWorkers == 0 {
		p.ActiveWorkers = p.B
	}
	if p.Sigma == 0 {
		p.Sigma = 0.002
	}
	if p.Radius == 0 {
		p.Radius = 0.01
	}
	if p.Speed == 0 {
		p.Speed = 0.05
	}
	if p.StuckHorizon == 0 {
		p.StuckHorizon = 1e6
	}
	if p.ActiveHorizon == 0 {
		p.ActiveHorizon = 2.5
	}
	return p
}

// Churn is the instantiated workload. Per-round output is a pure function
// of the round number, so a simulation can be replayed bit-for-bit.
type Churn struct {
	p       ChurnParams
	sites   []geo.Point
	active  []int // indices into sites
	baseW   int   // workers emitted at round 0
	baseT   int   // tasks emitted at round 0
	blobber BlobParams
}

// NewChurn lays out the sites and picks every ActiveEvery-th as active.
func NewChurn(p ChurnParams) *Churn {
	p = p.WithChurnDefaults()
	c := &Churn{p: p, blobber: BlobParams{GridSize: p.GridSize, Sigma: p.Sigma}}
	all, _ := c.blobber.sites()
	c.sites = all
	for i := range all {
		if i%p.ActiveEvery == 0 {
			c.active = append(c.active, i)
		}
	}
	c.baseW = len(c.sites)*p.StuckWorkers + len(c.active)*p.ActiveWorkers
	c.baseT = len(c.sites)*p.StuckTasks + len(c.active)
	return c
}

// NumSites returns the total and active site counts.
func (c *Churn) NumSites() (total, active int) { return len(c.sites), len(c.active) }

// B returns the platform quorum the workload was built for.
func (c *Churn) B() int { return c.p.B }

// MaxWorkers bounds the worker IDs a simulation of the given length can
// see, sizing the quality model.
func (c *Churn) MaxWorkers(rounds int) int {
	return c.baseW + rounds*len(c.active)*c.p.ActiveWorkers
}

// WorkersAt returns round r's worker arrivals: at round 0 the stuck
// population plus a quorum per active site, afterwards a fresh quorum per
// active site. IDs are sequential across rounds.
func (c *Churn) WorkersAt(round int) []model.Worker {
	rng := stats.NewRNG(c.p.Seed + 2*int64(round))
	mk := func(id int, site geo.Point) model.Worker {
		return model.Worker{
			ID: id, Loc: c.blobber.jitter(rng, site),
			Speed: c.p.Speed, Radius: c.p.Radius, Arrive: float64(round),
		}
	}
	var ws []model.Worker
	if round == 0 {
		id := 0
		for _, site := range c.sites {
			for k := 0; k < c.p.StuckWorkers; k++ {
				ws = append(ws, mk(id, site))
				id++
			}
		}
		for _, si := range c.active {
			for k := 0; k < c.p.ActiveWorkers; k++ {
				ws = append(ws, mk(id, c.sites[si]))
				id++
			}
		}
		return ws
	}
	base := c.baseW + (round-1)*len(c.active)*c.p.ActiveWorkers
	id := base
	for _, si := range c.active {
		for k := 0; k < c.p.ActiveWorkers; k++ {
			ws = append(ws, mk(id, c.sites[si]))
			id++
		}
	}
	return ws
}

// TasksAt returns round r's task arrivals: at round 0 the immortal stuck
// tasks per site plus one short-lived task per active site, afterwards one
// short-lived task per active site.
func (c *Churn) TasksAt(round int) []model.Task {
	rng := stats.NewRNG(c.p.Seed + 2*int64(round) + 1)
	mk := func(id int, site geo.Point, horizon float64) model.Task {
		return model.Task{
			ID: id, Loc: c.blobber.jitter(rng, site), Capacity: c.p.Capacity,
			Created: float64(round), Deadline: float64(round) + horizon,
		}
	}
	var ts []model.Task
	if round == 0 {
		id := 0
		for _, site := range c.sites {
			for k := 0; k < c.p.StuckTasks; k++ {
				ts = append(ts, mk(id, site, c.p.StuckHorizon))
				id++
			}
		}
		for _, si := range c.active {
			ts = append(ts, mk(id, c.sites[si], c.p.ActiveHorizon))
			id++
		}
		return ts
	}
	base := c.baseT + (round-1)*len(c.active)
	for i, si := range c.active {
		ts = append(ts, mk(base+i, c.sites[si], c.p.ActiveHorizon))
	}
	return ts
}

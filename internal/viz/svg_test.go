package viz

import (
	"bytes"
	"context"
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"casc/internal/assign"
	"casc/internal/model"
	"casc/internal/workload"
)

func testInstance(t *testing.T) (*model.Instance, *model.Assignment) {
	t.Helper()
	p := workload.Default()
	p.NumWorkers, p.NumTasks = 60, 20
	p.Seed = 9
	in, err := p.Instance(0, model.IndexRTree)
	if err != nil {
		t.Fatal(err)
	}
	a, err := assign.NewGT(assign.GTOptions{}).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	return in, a
}

func TestAssignmentRendersWellFormedXML(t *testing.T) {
	in, a := testInstance(t)
	var buf bytes.Buffer
	if err := Assignment(&buf, in, a, Options{Title: "test <render> & escape", ShowAreas: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("output is not well-formed XML: %v", err)
		}
	}
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Error("missing svg envelope")
	}
	if !strings.Contains(out, "&lt;render&gt;") {
		t.Error("title not escaped")
	}
	// One triangle per worker, one rect per task (plus background rect).
	if got := strings.Count(out, "<path "); got != len(in.Workers) {
		t.Errorf("%d worker marks, want %d", got, len(in.Workers))
	}
	if got := strings.Count(out, "<rect "); got != len(in.Tasks)+1 {
		t.Errorf("%d rects, want %d", got, len(in.Tasks)+1)
	}
	// Assignment edges: one line per assigned worker.
	if got := strings.Count(out, "<line "); got != a.NumAssigned() {
		t.Errorf("%d edges, want %d", got, a.NumAssigned())
	}
	// Working-area circles.
	if got := strings.Count(out, "<circle "); got != len(in.Workers) {
		t.Errorf("%d area circles, want %d", got, len(in.Workers))
	}
}

func TestInstanceWithoutAssignment(t *testing.T) {
	in, _ := testInstance(t)
	var buf bytes.Buffer
	if err := Instance(&buf, in, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<line ") {
		t.Error("instance-only rendering has assignment edges")
	}
	if strings.Contains(buf.String(), "<circle ") {
		t.Error("areas drawn without ShowAreas")
	}
}

func TestSaveAssignment(t *testing.T) {
	in, a := testInstance(t)
	path := filepath.Join(t.TempDir(), "out.svg")
	if err := SaveAssignment(path, in, a, Options{Size: 400}); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, `width="400"`) {
		t.Error("size option ignored")
	}
}

func readFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	return string(data), err
}

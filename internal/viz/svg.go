// Package viz renders CA-SC instances and assignments as standalone SVG —
// the quickest way to see what a solver actually did: worker positions and
// working areas, task positions and capacities, and assignment edges
// connecting each dispatched group. The output needs no external assets
// and opens in any browser.
package viz

import (
	"fmt"
	"io"
	"os"
	"strings"

	"casc/internal/model"
)

// Options control rendering.
type Options struct {
	// Size is the square canvas side in pixels (default 800).
	Size int
	// ShowAreas draws each worker's working-area circle.
	ShowAreas bool
	// ShowUnassigned keeps workers without a task visible (default on when
	// rendering a plain instance; always on).
	Title string
}

// colors for assignment groups, cycled per task.
var groupColors = []string{
	"#4363d8", "#e6194B", "#3cb44b", "#f58231", "#911eb4",
	"#42d4f4", "#f032e6", "#9A6324", "#469990", "#808000",
}

// Instance renders the instance alone (no assignment).
func Instance(w io.Writer, in *model.Instance, opt Options) error {
	return render(w, in, nil, opt)
}

// Assignment renders the instance with assignment edges and per-group
// colors.
func Assignment(w io.Writer, in *model.Instance, a *model.Assignment, opt Options) error {
	return render(w, in, a, opt)
}

// SaveAssignment writes the rendering to a file.
func SaveAssignment(path string, in *model.Instance, a *model.Assignment, opt Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Assignment(f, in, a, opt); err != nil {
		return err
	}
	return f.Close()
}

func render(w io.Writer, in *model.Instance, a *model.Assignment, opt Options) error {
	size := opt.Size
	if size <= 0 {
		size = 800
	}
	s := float64(size)
	px := func(v float64) float64 { return v * s }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		size, size, size, size)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#fafafa"/>`+"\n", size, size)
	if opt.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" fill="#333">%s</text>`+"\n",
			10, escape(opt.Title))
	}

	// Working areas first (underneath everything).
	if opt.ShowAreas {
		for _, wk := range in.Workers {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#4363d8" fill-opacity="0.04" stroke="#4363d8" stroke-opacity="0.15"/>`+"\n",
				px(wk.Loc.X), px(wk.Loc.Y), px(wk.Radius))
		}
	}

	// Assignment edges.
	if a != nil {
		for t, ws := range a.TaskWorkers {
			if len(ws) == 0 {
				continue
			}
			color := groupColors[t%len(groupColors)]
			task := in.Tasks[t]
			for _, wi := range ws {
				wk := in.Workers[wi]
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.5" stroke-opacity="0.8"/>`+"\n",
					px(wk.Loc.X), px(wk.Loc.Y), px(task.Loc.X), px(task.Loc.Y), color)
			}
		}
	}

	// Tasks: squares sized by capacity.
	for t, task := range in.Tasks {
		color := "#555"
		served := false
		if a != nil && len(a.TaskWorkers[t]) >= in.B {
			color = groupColors[t%len(groupColors)]
			served = true
		}
		half := 4.0 + float64(task.Capacity)
		fill := "none"
		if served {
			fill = color
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.85" stroke="%s" stroke-width="1.5"/>`+"\n",
			px(task.Loc.X)-half, px(task.Loc.Y)-half, 2*half, 2*half, fill, color)
	}

	// Workers: triangles (assigned take their group color).
	for wi, wk := range in.Workers {
		color := "#999"
		if a != nil {
			if t := a.WorkerTask[wi]; t != model.Unassigned {
				color = groupColors[t%len(groupColors)]
			}
		}
		x, y := px(wk.Loc.X), px(wk.Loc.Y)
		fmt.Fprintf(&b, `<path d="M %.1f %.1f L %.1f %.1f L %.1f %.1f Z" fill="%s"/>`+"\n",
			x, y-5, x-4.5, y+4, x+4.5, y+4, color)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
